// Command yield sweeps the supply voltage and reports the cell failure
// probability together with array-level yield — the numbers the paper's
// introduction motivates ("tens of megabytes of on-chip cache" make even a
// 1e-4 per-cell failure probability catastrophic). Optionally includes RTN
// and a single-error-correcting code per word.
//
//	yield -vdds 0.5,0.6,0.7 -megabits 32
//	yield -vdds 0.5 -rtn -alpha 0.3 -ecc 1 -wordbits 72
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ecripse"
	"ecripse/internal/stats"
)

func main() {
	var (
		vddList  = flag.String("vdds", "0.5,0.6,0.7", "comma-separated supply voltages [V]")
		megabits = flag.Float64("megabits", 32, "array size in megabits")
		withRTN  = flag.Bool("rtn", false, "include RTN at the given duty ratio")
		alpha    = flag.Float64("alpha", 0.5, "storage duty ratio (with -rtn)")
		nis      = flag.Int("nis", 100000, "importance samples per point")
		eccBits  = flag.Int("ecc", 0, "correctable bits per word (0 = no ECC)")
		wordBits = flag.Int("wordbits", 72, "word width for ECC accounting")
		seed     = flag.Int64("seed", 1, "random seed")
		mode     = flag.String("mode", "read", "failure criterion: read, write or hold")
		tempK    = flag.Float64("temp", 300, "junction temperature [K]")
	)
	flag.Parse()

	var failMode ecripse.FailureMode
	switch *mode {
	case "read":
		failMode = ecripse.ReadFailure
	case "write":
		failMode = ecripse.WriteFailure
	case "hold":
		failMode = ecripse.HoldFailure
	default:
		fmt.Fprintf(os.Stderr, "yield: unknown -mode %q\n", *mode)
		os.Exit(2)
	}

	cells := *megabits * 1024 * 1024
	fmt.Printf("# %s-failure yield, %.0f Mb array", failMode, *megabits)
	if *eccBits > 0 {
		fmt.Printf(", %d-bit correction per %d-bit word", *eccBits, *wordBits)
	}
	if *withRTN {
		fmt.Printf(", RTN at alpha=%.2f", *alpha)
	}
	fmt.Println()
	fmt.Println("# vdd,Pfail,CI95,array-yield,sims")

	for _, tok := range strings.Split(*vddList, ",") {
		vdd, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yield: bad vdd %q: %v\n", tok, err)
			os.Exit(2)
		}
		cell := ecripse.NewCellAt(vdd, *tempK)
		est := ecripse.New(cell, ecripse.Options{NIS: *nis, Mode: failMode})
		var res ecripse.Result
		if *withRTN {
			res = est.FailureProbabilityRTN(*seed, ecripse.TableIRTN(cell), *alpha)
		} else {
			res = est.FailureProbability(*seed)
		}
		p := res.Estimate.P
		var y float64
		if *eccBits > 0 {
			y = stats.ECCArrayYield(p, cells/float64(*wordBits), *wordBits, *eccBits)
		} else {
			y = stats.ArrayYield(p, cells)
		}
		fmt.Printf("%.3f,%.4e,%.4e,%.4g,%d\n", vdd, p, res.Estimate.CI95, y, res.Estimate.Sims)
	}
}
