// Command ecripse estimates the read-failure probability of the paper's 6T
// SRAM cell, RDF-only or RTN-aware, using the two-stage classifier-
// accelerated flow.
//
// Usage examples:
//
//	ecripse -conditions                 # print Table I
//	ecripse -vdd 0.7                    # RDF-only at nominal supply
//	ecripse -vdd 0.7 -rtn -alpha 0.3    # RTN-aware at duty ratio 0.3
//	ecripse -vdd 0.5 -nis 400000 -series convergence.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ecripse"
	"ecripse/internal/experiments"
	"ecripse/internal/obsv"
	"ecripse/internal/service"
)

// splitLines splits rendered multi-line text for re-indentation.
func splitLines(s string) []string {
	return strings.Split(strings.TrimRight(s, "\n"), "\n")
}

// parseAxis reads one sweep axis flag: "" (no axis), a comma-separated
// value list, or a from:to:steps range.
func parseAxis(s string) (*service.Axis, error) {
	if s == "" {
		return nil, nil
	}
	if strings.Contains(s, ":") {
		parts := strings.Split(s, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("range %q: want from:to:steps", s)
		}
		from, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return nil, fmt.Errorf("range %q: %w", s, err)
		}
		to, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("range %q: %w", s, err)
		}
		steps, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("range %q: %w", s, err)
		}
		return &service.Axis{From: from, To: to, Steps: steps}, nil
	}
	var vals []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("value %q: %w", f, err)
		}
		vals = append(vals, v)
	}
	return &service.Axis{Values: vals}, nil
}

// runSweep executes a sweep spec in-process and prints the grid as CSV.
// Per-point failures go to stderr and turn the exit code non-zero; the
// surviving points are still printed.
func runSweep(spec service.SweepSpec) int {
	start := time.Now()
	res, sweepErr := service.RunSweepLocal(context.Background(), spec, nil)
	if res == nil {
		fmt.Fprintln(os.Stderr, "ecripse:", sweepErr)
		return 1
	}
	fmt.Println("# alpha,vdd,temp_k,Pfail,CI95,sims,warm")
	failed := 0
	for _, p := range res.Points {
		if p.Error != "" {
			failed++
			fmt.Fprintf(os.Stderr, "ecripse: sweep point %d failed: %s\n", p.Index, p.Error)
			continue
		}
		fmt.Printf("%s,%s,%s,%.6e,%.6e,%d,%v\n",
			axisCSV(p.Alpha), axisCSV(p.Vdd), axisCSV(p.TempK),
			p.Estimate.P, p.Estimate.CI95, p.Estimate.Sims, p.Warm)
	}
	fmt.Printf("# sweep: %d points, %d warm-started, %d total sims, ~%d sims saved by warm starts, wall=%s\n",
		len(res.Points), res.WarmPoints, res.TotalSims, res.SimsSaved,
		time.Since(start).Round(time.Millisecond))
	if sweepErr != nil {
		fmt.Fprintf(os.Stderr, "ecripse: %d sweep points failed\n", failed)
		return 1
	}
	return 0
}

// axisCSV renders an optional axis coordinate ("" when the axis is absent).
func axisCSV(v *float64) string {
	if v == nil {
		return ""
	}
	return strconv.FormatFloat(*v, 'g', -1, 64)
}

func main() {
	var (
		vdd        = flag.Float64("vdd", ecripse.VddNominal, "supply voltage [V]")
		withRTN    = flag.Bool("rtn", false, "include RTN-induced variability")
		alpha      = flag.Float64("alpha", 0.5, "storage duty ratio (with -rtn)")
		nis        = flag.Int("nis", 200000, "importance samples")
		m          = flag.Int("m", 20, "RTN samples per RDF sample (with -rtn)")
		seed       = flag.Int64("seed", 1, "random seed")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for the hot loops (results are identical at any value)")
		noClass    = flag.Bool("noclassifier", false, "disable the SVM blockade (every sample simulated)")
		adaptive   = flag.Bool("adaptive", false, "tiered-fidelity indicator: coarse VTC grid first, full grid only near the failure boundary")
		mode       = flag.String("mode", "read", "failure criterion: read, write or hold")
		conditions = flag.Bool("conditions", false, "print the Table I experimental conditions and exit")
		seriesPath = flag.String("series", "", "write the convergence series CSV to this file")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget; the run stops cleanly and reports the partial series")
		maxSims    = flag.Int64("max-sims", 0, "transistor-level simulation budget; the run stops cleanly at the budget")
		trace      = flag.Bool("trace", false, "print the stage span timeline and per-round convergence diagnostics")
		health     = flag.Bool("health", false, "evaluate the statistical-health watchdog and print its verdict")
		sweepAlpha = flag.String("sweep-alpha", "", `duty-ratio sweep axis: comma list ("0,0.5,1") or from:to:steps ("0:1:11"); requires -rtn`)
		sweepVdd   = flag.String("sweep-vdd", "", "supply sweep axis [V]: comma list or from:to:steps (replaces -vdd)")
		sweepTemp  = flag.String("sweep-temp", "", "temperature sweep axis [K]: comma list or from:to:steps")
		sweepWarm  = flag.Bool("sweep-warm", true, "warm-start each sweep point from its neighbor (with -sweep-*)")
	)
	flag.Parse()

	if *conditions {
		experiments.TableI(os.Stdout)
		return
	}

	if *sweepAlpha != "" || *sweepVdd != "" || *sweepTemp != "" {
		base := service.JobSpec{
			Mode: *mode, RTN: *withRTN, Seed: *seed, N: *nis, M: *m,
			NoClassifier: *noClass, AdaptiveGrid: *adaptive,
			Parallelism: *parallel, MaxSims: *maxSims,
		}
		if *sweepVdd == "" {
			base.Vdd = *vdd
		}
		if *sweepAlpha == "" && *withRTN {
			base.Alpha = *alpha
		}
		spec := service.SweepSpec{Base: base, WarmStart: *sweepWarm}
		var err error
		if spec.Alpha, err = parseAxis(*sweepAlpha); err != nil {
			fmt.Fprintln(os.Stderr, "ecripse: -sweep-alpha:", err)
			os.Exit(2)
		}
		if spec.Vdd, err = parseAxis(*sweepVdd); err != nil {
			fmt.Fprintln(os.Stderr, "ecripse: -sweep-vdd:", err)
			os.Exit(2)
		}
		if spec.TempK, err = parseAxis(*sweepTemp); err != nil {
			fmt.Fprintln(os.Stderr, "ecripse: -sweep-temp:", err)
			os.Exit(2)
		}
		os.Exit(runSweep(spec))
	}

	var failMode ecripse.FailureMode
	switch *mode {
	case "read":
		failMode = ecripse.ReadFailure
	case "write":
		failMode = ecripse.WriteFailure
	case "hold":
		failMode = ecripse.HoldFailure
	default:
		fmt.Fprintf(os.Stderr, "ecripse: unknown -mode %q (want read, write or hold)\n", *mode)
		os.Exit(2)
	}

	cell := ecripse.NewCell(*vdd)
	est := ecripse.New(cell, ecripse.Options{
		NIS: *nis, M: *m, NoClassifier: *noClass, Mode: failMode,
		AdaptiveGrid: *adaptive, Parallelism: *parallel,
	})

	// Budget plumbing: a wall-clock deadline and/or a simulation budget both
	// funnel into one context; the estimators stop cleanly at their next
	// cancellation checkpoint and still report the partial series.
	ctx := context.Background()
	var cancel context.CancelFunc
	if *timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, *timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	if *maxSims > 0 {
		est.LimitSims(*maxSims, cancel)
	}
	var tr *obsv.Trace
	if *trace {
		tr = obsv.NewTrace()
		ctx = obsv.WithTrace(ctx, tr)
	}
	var hm *obsv.HealthMonitor
	if *health {
		hm = obsv.NewHealthMonitor(obsv.HealthConfig{}, nil)
		ctx = obsv.WithHealth(ctx, hm)
	}

	runStart := time.Now()
	var res ecripse.Result
	var runErr error
	if *withRTN {
		cfg := ecripse.TableIRTN(cell)
		res, runErr = est.FailureProbabilityRTNCtx(ctx, *seed, cfg, *alpha)
		fmt.Printf("RTN-aware failure probability (Vdd=%.2f V, alpha=%.2f):\n", *vdd, *alpha)
	} else {
		res, runErr = est.FailureProbabilityCtx(ctx, *seed)
		fmt.Printf("RDF-only %s-failure probability (Vdd=%.2f V):\n", failMode, *vdd)
	}
	if runErr != nil {
		switch {
		case *maxSims > 0 && est.Simulations() >= *maxSims:
			fmt.Printf("  [stopped at the -max-sims budget of %d; partial result]\n", *maxSims)
		default:
			fmt.Printf("  [stopped by -timeout after %s; partial result]\n", *timeout)
		}
	}
	elapsed := time.Since(runStart)
	fmt.Printf("  %v\n", res.Estimate)
	fmt.Printf("  cost: init=%d warmup=%d stage1=%d stage2=%d transistor-level simulations  wall=%s (%d workers)\n",
		res.InitSims, res.WarmupSims, res.Stage1Sims, res.Stage2Sims,
		elapsed.Round(time.Millisecond), *parallel)
	fmt.Printf("  solver: %d root solves, %d iterations\n", res.RootSolves, res.SolverIters)
	if res.LaneSlots > 0 {
		fmt.Printf("  batch kernel: %d lane slots, %.1f%% occupied\n", res.LaneSlots, 100*res.LaneUtilization())
	}
	if res.PipelinedBatches > 0 {
		fmt.Printf("  pipeline: %d batches, %.1f%% of generation overlapped (stall=%s settle=%s)\n",
			res.PipelinedBatches, 100*res.OverlapFraction(),
			time.Duration(res.PipelineStallNS).Round(time.Microsecond),
			time.Duration(res.PipelineSettleNS).Round(time.Microsecond))
	}
	if *adaptive && res.CoarseSims > 0 {
		fmt.Printf("  adaptive: %d coarse-tier samples, %d escalated to the full grid (%.1f%%)\n",
			res.CoarseSims, res.Escalated, 100*float64(res.Escalated)/float64(res.CoarseSims))
	}

	if *trace {
		fmt.Printf("  trace:\n")
		for _, line := range splitLines(tr.Timeline()) {
			fmt.Printf("    %s\n", line)
		}
		if len(res.PFRounds) > 0 {
			fmt.Printf("  stage-1 convergence (per round: min ESS, max weight fraction, min unique survivors):\n")
			for _, r := range res.PFRounds {
				minESS, maxFrac, minUnique := ecripse.RoundSummary(r.Filters)
				fmt.Printf("    round %d: sims=%d ess=%.1f max_w=%.3f unique=%d\n",
					r.Round, r.Sims, minESS, maxFrac, minUnique)
			}
		}
	}

	if *health {
		for _, line := range splitLines(hm.Report().Summary()) {
			fmt.Printf("  %s\n", line)
		}
		for _, v := range hm.WallViolations() {
			fmt.Printf("  [%s] (wall-clock, not cached) %s\n", v.Rule, v.Detail)
		}
	}

	if *seriesPath != "" {
		f, err := os.Create(*seriesPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecripse:", err)
			os.Exit(1)
		}
		defer f.Close()
		experiments.WriteSeries(f, experiments.MethodSeries{Name: "ecripse", Series: res.Series, Estimate: res.Estimate})
		fmt.Printf("  convergence series written to %s\n", *seriesPath)
	}
}
