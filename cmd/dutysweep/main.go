// Command dutysweep regenerates the paper's Fig. 8: the RTN-aware failure
// probability versus the storage duty ratio alpha, with initialization and
// classifier shared across all bias points, plus the RDF-only reference
// (the paper's 1.33e-4).
package main

import (
	"flag"
	"fmt"
	"os"

	"ecripse/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	scaleFlag := flag.String("scale", "default", "workload scale: smoke, default or full")
	flag.Parse()

	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dutysweep:", err)
		os.Exit(2)
	}
	experiments.Fig8(*seed, scale).Write(os.Stdout)
}
