// Command dutysweep regenerates the paper's Fig. 8: the RTN-aware failure
// probability versus the storage duty ratio alpha, plus the RDF-only
// reference (the paper's 1.33e-4). The grid runs as one sweep-native job
// through the service planner: each duty point is warm-started from its
// predecessor's final particle cloud and trained classifier (disable with
// -warm=false), reproducing the shared-initialization optimization the
// paper highlights with Fig. 7(b).
//
// A point whose job errors is never silently dropped: every per-point
// failure is reported on stderr and the command exits non-zero, with the
// successfully computed points still written to stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"

	"ecripse/internal/montecarlo"
	"ecripse/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run executes the sweep and returns the process exit code. runFn overrides
// the per-point job runner (tests inject failures); nil selects the real
// estimator.
func run(argv []string, stdout, stderr io.Writer, runFn func(context.Context, service.JobSpec, *montecarlo.Counter) (*service.RunResult, error)) int {
	fs := flag.NewFlagSet("dutysweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "random seed")
	scaleFlag := fs.String("scale", "default", "workload scale: smoke, default or full")
	warm := fs.Bool("warm", true, "warm-start each duty point from its predecessor (cloud + classifier)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines per point (results are identical at any value)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	var alphas []float64
	var n, m int
	switch *scaleFlag {
	case "smoke":
		alphas = []float64{0, 0.5, 1}
		n, m = 20000, 5
	case "default":
		alphas = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
		n, m = 100000, 20
	case "full":
		alphas = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
		n, m = 300000, 20
	default:
		fmt.Fprintf(stderr, "dutysweep: unknown -scale %q (want smoke, default or full)\n", *scaleFlag)
		return 2
	}

	ctx := context.Background()
	spec := service.SweepSpec{
		Base:      service.JobSpec{RTN: true, Seed: *seed, N: n, M: m, Parallelism: *parallel},
		Alpha:     &service.Axis{Values: alphas},
		WarmStart: *warm,
	}

	rdfFn := runFn
	if rdfFn == nil {
		rdfFn = service.RunSpec
	}
	rdf, err := rdfFn(ctx, service.JobSpec{Seed: *seed + 1, N: n, Parallelism: *parallel}, &montecarlo.Counter{})
	if err != nil {
		fmt.Fprintf(stderr, "dutysweep: RDF-only reference: %v\n", err)
		return 1
	}

	res, sweepErr := service.RunSweepLocal(ctx, spec, runFn)
	if res == nil {
		fmt.Fprintf(stderr, "dutysweep: %v\n", sweepErr)
		return 1
	}

	fmt.Fprintf(stdout, "# RDF-only reference: %v\n", rdf.Estimate.Stats())
	fmt.Fprintln(stdout, "# alpha,Pfail,CI95,sims")
	worst, best, minAlpha := 0.0, math.Inf(1), math.NaN()
	failed := 0
	for _, p := range res.Points {
		if p.Error != "" {
			failed++
			fmt.Fprintf(stderr, "dutysweep: point %d (alpha=%.2f) failed: %s\n", p.Index, axisValue(p.Alpha), p.Error)
			continue
		}
		a := axisValue(p.Alpha)
		fmt.Fprintf(stdout, "%.2f,%.6e,%.6e,%d\n", a, p.Estimate.P, p.Estimate.CI95, p.Estimate.Sims)
		if p.Estimate.P > worst {
			worst = p.Estimate.P
		}
		if p.Estimate.P < best {
			best = p.Estimate.P
			minAlpha = a
		}
	}
	ratio := 0.0
	if rdf.Estimate.P > 0 {
		ratio = worst / rdf.Estimate.P
	}
	fmt.Fprintf(stdout, "# minimum at alpha=%.2f; worst-case RTN/RDF ratio %.1fx (paper: ~6x, minimum at 0.5)\n",
		minAlpha, ratio)
	fmt.Fprintf(stdout, "# sweep: %d points, %d warm-started, %d total sims, ~%d sims saved by warm starts\n",
		len(res.Points), res.WarmPoints, res.TotalSims, res.SimsSaved)

	if sweepErr != nil {
		fmt.Fprintf(stderr, "dutysweep: %d of %d points failed\n", failed, spec.NumPoints())
		return 1
	}
	return 0
}

// axisValue unwraps an optional axis coordinate for printing.
func axisValue(v *float64) float64 {
	if v == nil {
		return math.NaN()
	}
	return *v
}
