package main

import (
	"context"
	"errors"
	"strings"
	"testing"

	"ecripse/internal/montecarlo"
	"ecripse/internal/service"
)

// fakeRunner succeeds with a canned estimate except at the duty points in
// failAt, which error like a real job would.
func fakeRunner(failAt map[float64]bool) func(context.Context, service.JobSpec, *montecarlo.Counter) (*service.RunResult, error) {
	return func(_ context.Context, s service.JobSpec, _ *montecarlo.Counter) (*service.RunResult, error) {
		if len(s.Sweep) == 1 && failAt[s.Sweep[0]] {
			return nil, errors.New("injected solver blow-up")
		}
		return &service.RunResult{
			Estimate: service.Estimate{P: 1e-5, CI95: 1e-6, N: 100, Sims: 100},
			Cost:     service.CostSplit{Total: 100},
		}, nil
	}
}

func TestRunAllPointsSucceed(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-scale", "smoke", "-warm=false"}, &out, &errb, fakeRunner(nil))
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errb.String())
	}
	for _, want := range []string{"0.00,", "0.50,", "1.00,"} {
		if !strings.Contains(out.String(), "\n"+want) {
			t.Errorf("stdout missing point line %q:\n%s", want, out.String())
		}
	}
}

// TestRunPropagatesPointErrors is the regression test for the silent-drop
// bug: a cold sweep whose middle point errors must report the failure on
// stderr and exit non-zero, while still printing the surviving points.
func TestRunPropagatesPointErrors(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-scale", "smoke", "-warm=false"}, &out, &errb,
		fakeRunner(map[float64]bool{0.5: true}))
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "alpha=0.50") || !strings.Contains(errb.String(), "injected solver blow-up") {
		t.Errorf("stderr does not name the failed point:\n%s", errb.String())
	}
	if !strings.Contains(errb.String(), "1 of 3 points failed") {
		t.Errorf("stderr missing failure summary:\n%s", errb.String())
	}
	if strings.Contains(out.String(), "0.50,") {
		t.Errorf("stdout contains a line for the failed point:\n%s", out.String())
	}
	for _, want := range []string{"0.00,", "1.00,"} {
		if !strings.Contains(out.String(), "\n"+want) {
			t.Errorf("stdout missing surviving point %q:\n%s", want, out.String())
		}
	}
}

func TestRunWarmSweepStopsAtFirstError(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-scale", "smoke"}, &out, &errb,
		fakeRunner(map[float64]bool{0.5: true}))
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, errb.String())
	}
	// The warm chain breaks at the failed point; its successor never runs.
	if strings.Contains(out.String(), "\n1.00,") {
		t.Errorf("stdout has the successor of a failed warm point:\n%s", out.String())
	}
}

func TestRunRejectsUnknownScale(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-scale", "huge"}, &out, &errb, fakeRunner(nil)); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
