// Command compare regenerates the paper's convergence comparisons:
//
//	compare -fig 6              # proposed vs conventional SIS, RDF-only, Vdd=0.7 (Fig. 6)
//	compare -fig 7 -alpha 0.3   # proposed vs naive MC with RTN, Vdd=0.5 (Fig. 7a)
//	compare -fig 7 -both        # both panels, sharing initialization (Fig. 7a+b)
//
// Output is CSV series (simulations, estimate, CI, relative error) plus the
// headline speedup ratios.
package main

import (
	"flag"
	"fmt"
	"os"

	"ecripse/internal/experiments"
)

func main() {
	fig := flag.Int("fig", 6, "figure to regenerate: 6 or 7")
	alpha := flag.Float64("alpha", 0.3, "duty ratio for -fig 7")
	both := flag.Bool("both", false, "-fig 7: run both panels (alpha 0.3 then 0.5) with shared initialization")
	seed := flag.Int64("seed", 1, "random seed")
	scaleFlag := flag.String("scale", "default", "workload scale: smoke, default or full")
	diag := flag.Bool("diag", false, "append the proposed run's stage-1 convergence diagnostics")
	flag.Parse()

	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(2)
	}

	switch *fig {
	case 6:
		r := experiments.Fig6(*seed, scale)
		r.Write(os.Stdout)
		if *diag {
			experiments.WriteDiag(os.Stdout, r.Proposed.Name, r.ProposedDiag)
		}
	case 7:
		if *both {
			r1, eng := experiments.Fig7(*seed, scale, 0.3, nil)
			r1.Write(os.Stdout)
			r2, _ := experiments.Fig7(*seed+1, scale, 0.5, eng)
			r2.Write(os.Stdout)
			fmt.Printf("# shared initialization: panel (b) used %d sims vs panel (a) %d\n",
				r2.Proposed.Estimate.Sims, r1.Proposed.Estimate.Sims)
			if *diag {
				experiments.WriteDiag(os.Stdout, r1.Proposed.Name, r1.ProposedDiag)
				experiments.WriteDiag(os.Stdout, r2.Proposed.Name, r2.ProposedDiag)
			}
		} else {
			r, _ := experiments.Fig7(*seed, scale, *alpha, nil)
			r.Write(os.Stdout)
			if *diag {
				experiments.WriteDiag(os.Stdout, r.Proposed.Name, r.ProposedDiag)
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "compare: -fig must be 6 or 7")
		os.Exit(2)
	}
}
