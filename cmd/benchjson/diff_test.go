package main

import (
	"math"
	"testing"
)

func rec(name string, procs int, ns float64) Record {
	return Record{Name: name, Procs: procs, Iterations: 1, Metrics: map[string]float64{"ns/op": ns}}
}

func TestMediansAggregateRepetitions(t *testing.T) {
	rows := medians([]Record{
		rec("BenchmarkA", 8, 100),
		rec("BenchmarkA", 8, 300), // noisy outlier
		rec("BenchmarkA", 8, 110),
		rec("BenchmarkB", 8, 50),
	}, "ns/op")
	if got := rows["BenchmarkA\x008"].Old; got != 110 {
		t.Fatalf("median of {100,300,110} = %v, want 110", got)
	}
	if got := rows["BenchmarkB\x008"].Old; got != 50 {
		t.Fatalf("single-record median = %v, want 50", got)
	}
}

func TestMediansEvenCountAverages(t *testing.T) {
	rows := medians([]Record{rec("BenchmarkA", 0, 100), rec("BenchmarkA", 0, 200)}, "ns/op")
	if got := rows["BenchmarkA\x000"].Old; got != 150 {
		t.Fatalf("even-count median = %v, want 150", got)
	}
}

func TestDiffDocsRatiosAndGeomean(t *testing.T) {
	oldDoc := Document{Records: []Record{
		rec("BenchmarkA", 8, 200),
		rec("BenchmarkB", 8, 100),
		rec("BenchmarkOldOnly", 8, 10),
	}}
	newDoc := Document{Records: []Record{
		rec("BenchmarkA", 8, 100), // 2x faster
		rec("BenchmarkB", 8, 200), // 2x slower
		rec("BenchmarkNewOnly", 8, 10),
	}}
	rows := diffDocs(oldDoc, newDoc, "ns/op")
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (one-sided benchmarks skipped)", len(rows))
	}
	if rows[0].Name != "BenchmarkA" || rows[0].Ratio != 0.5 {
		t.Fatalf("row 0 = %+v, want BenchmarkA at 0.5x", rows[0])
	}
	if rows[1].Name != "BenchmarkB" || rows[1].Ratio != 2.0 {
		t.Fatalf("row 1 = %+v, want BenchmarkB at 2.0x", rows[1])
	}
	if g := geomean(rows); math.Abs(g-1) > 1e-12 {
		t.Fatalf("geomean of {0.5, 2.0} = %v, want 1", g)
	}
}

func TestMatchRowsFiltersByName(t *testing.T) {
	rows := []diffRow{
		{Name: "BenchmarkFig7Smoke"}, {Name: "BenchmarkFig8Smoke"}, {Name: "BenchmarkVTC"},
	}
	got, err := matchRows(rows, "Fig7|Fig8")
	if err != nil {
		t.Fatalf("matchRows: %v", err)
	}
	if len(got) != 2 || got[0].Name != "BenchmarkFig7Smoke" || got[1].Name != "BenchmarkFig8Smoke" {
		t.Fatalf("matched rows = %+v", got)
	}
	if all, _ := matchRows(rows[:2], ""); len(all) != 2 {
		t.Fatalf("empty pattern should keep all rows, got %+v", all)
	}
	if _, err := matchRows(rows, "("); err == nil {
		t.Fatal("invalid pattern did not error")
	}
}

func TestDiffDocsSkipsMissingMetric(t *testing.T) {
	oldDoc := Document{Records: []Record{
		{Name: "BenchmarkA", Iterations: 1, Metrics: map[string]float64{"sims": 4096}},
	}}
	newDoc := Document{Records: []Record{
		{Name: "BenchmarkA", Iterations: 1, Metrics: map[string]float64{"sims": 4096}},
	}}
	if rows := diffDocs(oldDoc, newDoc, "ns/op"); len(rows) != 0 {
		t.Fatalf("benchmarks without the metric should be skipped, got %d rows", len(rows))
	}
	if rows := diffDocs(oldDoc, newDoc, "sims"); len(rows) != 1 || rows[0].Ratio != 1 {
		t.Fatalf("sims metric diff = %+v, want one 1.0x row", rows)
	}
}
