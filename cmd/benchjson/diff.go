package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
)

// diffRow is one benchmark's old-vs-new comparison for a single metric.
// Ratio is new/old: above 1 the benchmark got slower (for cost-like metrics
// such as ns/op), below 1 faster.
type diffRow struct {
	Name     string
	Procs    int
	Old, New float64
	Ratio    float64
}

func (r diffRow) label() string {
	if r.Procs > 0 {
		return fmt.Sprintf("%s-%d", r.Name, r.Procs)
	}
	return r.Name
}

// medians aggregates repeated records (from -count N runs) to one value per
// benchmark: the median is robust to a single noisy repetition.
func medians(recs []Record, metric string) map[string]diffRow {
	byKey := map[string][]float64{}
	meta := map[string]diffRow{}
	for _, rec := range recs {
		v, ok := rec.Metrics[metric]
		if !ok {
			continue
		}
		key := fmt.Sprintf("%s\x00%d", rec.Name, rec.Procs)
		byKey[key] = append(byKey[key], v)
		meta[key] = diffRow{Name: rec.Name, Procs: rec.Procs}
	}
	out := map[string]diffRow{}
	for key, vs := range byKey {
		sort.Float64s(vs)
		m := vs[len(vs)/2]
		if len(vs)%2 == 0 {
			m = 0.5 * (vs[len(vs)/2-1] + vs[len(vs)/2])
		}
		row := meta[key]
		row.Old = m // caller reassigns; medians is side-agnostic
		out[key] = row
	}
	return out
}

// diffDocs compares the shared benchmarks of two documents on one metric,
// sorted by name. Benchmarks present on only one side are skipped (they
// have no baseline to regress against).
func diffDocs(oldDoc, newDoc Document, metric string) []diffRow {
	oldMed := medians(oldDoc.Records, metric)
	newMed := medians(newDoc.Records, metric)
	var rows []diffRow
	for key, o := range oldMed {
		n, ok := newMed[key]
		if !ok || o.Old == 0 {
			continue
		}
		rows = append(rows, diffRow{
			Name: o.Name, Procs: o.Procs,
			Old: o.Old, New: n.Old, Ratio: n.Old / o.Old,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].label() < rows[j].label() })
	return rows
}

// geomean is the geometric mean of the rows' ratios — the usual headline
// number for a benchmark suite comparison.
func geomean(rows []diffRow) float64 {
	if len(rows) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, r := range rows {
		sum += math.Log(r.Ratio)
	}
	return math.Exp(sum / float64(len(rows)))
}

// matchRows keeps the rows whose benchmark name matches pattern (all rows
// when pattern is empty) — the -match flag, so a CI gate can compare just
// the suite it cares about.
func matchRows(rows []diffRow, pattern string) ([]diffRow, error) {
	if pattern == "" {
		return rows, nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, err
	}
	kept := rows[:0]
	for _, r := range rows {
		if re.MatchString(r.Name) {
			kept = append(kept, r)
		}
	}
	return kept, nil
}

func loadDoc(path string) (Document, error) {
	var doc Document
	b, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// runDiff implements the `benchjson diff` subcommand: compare two benchmark
// JSON documents per benchmark and summarize with a geometric-mean ratio.
func runDiff(args []string) {
	fs := flag.NewFlagSet("benchjson diff", flag.ExitOnError)
	metric := fs.String("metric", "ns/op", "metric to compare")
	threshold := fs.Float64("threshold", 1.10, "new/old ratio above which a benchmark counts as regressed")
	failOnRegress := fs.Bool("fail", false, "exit nonzero when any benchmark regresses past -threshold")
	match := fs.String("match", "", "compare only benchmarks whose name matches this regexp")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchjson diff [flags] old.json new.json")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	oldDoc, err := loadDoc(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson diff: %v\n", err)
		os.Exit(1)
	}
	newDoc, err := loadDoc(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson diff: %v\n", err)
		os.Exit(1)
	}
	rows, err := matchRows(diffDocs(oldDoc, newDoc, *metric), *match)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson diff: bad -match: %v\n", err)
		os.Exit(2)
	}
	if len(rows) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson diff: no shared benchmarks report %q\n", *metric)
		os.Exit(1)
	}
	var regressed []diffRow
	fmt.Printf("%-52s %14s %14s %8s %8s\n", "benchmark", "old "+*metric, "new "+*metric, "ratio", "delta")
	for _, r := range rows {
		fmt.Printf("%-52s %14.1f %14.1f %7.3fx %+7.1f%%\n",
			r.label(), r.Old, r.New, r.Ratio, 100*(r.Ratio-1))
		if r.Ratio > *threshold {
			regressed = append(regressed, r)
		}
	}
	fmt.Printf("\ngeomean ratio (%s, %s -> %s): %.3fx\n", *metric, oldDoc.Date, newDoc.Date, geomean(rows))
	if len(regressed) > 0 {
		fmt.Printf("%d benchmark(s) regressed past %.2fx:\n", len(regressed), *threshold)
		for _, r := range regressed {
			fmt.Printf("  %s: %.3fx\n", r.label(), r.Ratio)
		}
		if *failOnRegress {
			os.Exit(1)
		}
	}
}
