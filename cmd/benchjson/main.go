// Command benchjson converts `go test -bench` text output into a JSON
// trajectory record so benchmark baselines can be diffed across PRs.
//
// Usage:
//
//	go test -bench . -benchmem -benchtime 1x -count 5 | benchjson -o BENCH_2026-08-06.json
//	benchjson diff [-metric ns/op] [-threshold 1.10] [-fail] old.json new.json
//
// The diff subcommand compares two such documents benchmark-by-benchmark
// (median per benchmark when -count produced repetitions), prints the
// per-benchmark ratio and the geometric-mean ratio, and lists benchmarks
// whose new/old ratio exceeds -threshold; with -fail those make the exit
// status nonzero, which is how CI turns the report into a gate.
//
// Each benchmark result line
//
//	BenchmarkFig6ProposedVsConventional/vdd-0.50-8  1  123456 ns/op  4096 sims
//
// becomes one record carrying the name, the GOMAXPROCS suffix, the
// iteration count and every reported metric (ns/op, B/op, allocs/op and
// any custom b.ReportMetric units such as sims or pfail). With -count N
// the same benchmark yields N records; downstream tooling aggregates.
// Non-benchmark lines (PASS, ok, pkg headers) are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Record is one benchmark result line.
type Record struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Document is the emitted file: run metadata plus all records.
type Document struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GoMaxProcs int      `json:"gomaxprocs"`
	GoOS       string   `json:"goos"`
	GoArch     string   `json:"goarch"`
	Records    []Record `json:"records"`
}

// benchLine matches "Benchmark<Name>[-procs] <iters> <metrics...>".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+(.+)$`)

// parseLine decodes one benchmark output line, or returns ok=false for
// lines that are not benchmark results.
func parseLine(line string) (Record, bool) {
	m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(m[3], 10, 64)
	if err != nil {
		return Record{}, false
	}
	rec := Record{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
	if m[2] != "" {
		rec.Procs, _ = strconv.Atoi(m[2])
	}
	fields := strings.Fields(m[4])
	// Metrics come in "<value> <unit>" pairs.
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		rec.Metrics[fields[i+1]] = v
	}
	if len(rec.Metrics) == 0 {
		return Record{}, false
	}
	return rec, true
}

// parse reads benchmark output and collects all result records.
func parse(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if rec, ok := parseLine(sc.Text()); ok {
			recs = append(recs, rec)
		}
	}
	return recs, sc.Err()
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		runDiff(os.Args[2:])
		return
	}
	out := flag.String("o", "", "output file (default stdout)")
	date := flag.String("date", time.Now().UTC().Format("2006-01-02"), "run date stamped into the document")
	flag.Parse()

	recs, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(recs) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	doc := Document{
		Date:       *date,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		Records:    recs,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d records to %s\n", len(recs), *out)
}
