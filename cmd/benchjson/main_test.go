package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	rec, ok := parseLine("BenchmarkGMMLogPDF-8   \t 1563   761234 ns/op  120 B/op  3 allocs/op")
	if !ok {
		t.Fatal("line not recognised")
	}
	if rec.Name != "BenchmarkGMMLogPDF" || rec.Procs != 8 || rec.Iterations != 1563 {
		t.Fatalf("bad header fields: %+v", rec)
	}
	want := map[string]float64{"ns/op": 761234, "B/op": 120, "allocs/op": 3}
	for k, v := range want {
		if rec.Metrics[k] != v {
			t.Errorf("metric %s = %v, want %v", k, rec.Metrics[k], v)
		}
	}
}

func TestParseLineCustomMetricsAndSubBench(t *testing.T) {
	rec, ok := parseLine("BenchmarkAblationClassifier/with-classifier-4  1  2.5e+08 ns/op  4096 sims  1.2e-11 pfail")
	if !ok {
		t.Fatal("line not recognised")
	}
	if rec.Name != "BenchmarkAblationClassifier/with-classifier" || rec.Procs != 4 {
		t.Fatalf("bad name/procs: %+v", rec)
	}
	if rec.Metrics["sims"] != 4096 || rec.Metrics["pfail"] != 1.2e-11 {
		t.Fatalf("custom metrics lost: %+v", rec.Metrics)
	}
}

func TestParseSkipsNonBenchmarkLines(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: ecripse
BenchmarkDeviceIds-2  100  52 ns/op
BenchmarkDeviceIds-2  100  51 ns/op
PASS
ok  	ecripse	1.234s
`
	recs, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("parsed %d records, want 2", len(recs))
	}
	if recs[1].Metrics["ns/op"] != 51 {
		t.Fatalf("second record wrong: %+v", recs[1])
	}
}

func TestParseLineNoProcsSuffix(t *testing.T) {
	// go test omits the -N suffix when GOMAXPROCS is 1... actually it keeps
	// it, but hand-written fixtures and some tools drop it; accept both.
	rec, ok := parseLine("BenchmarkRTNSample 2048 900 ns/op")
	if !ok {
		t.Fatal("line not recognised")
	}
	if rec.Procs != 0 || rec.Iterations != 2048 {
		t.Fatalf("bad fields: %+v", rec)
	}
}
