// Command ecripsed is the yield-analysis daemon: an HTTP/JSON service that
// runs the repository's estimators (ECRIPSE, naive MC, SIS, statistical
// blockade, subset simulation) as asynchronous jobs behind a bounded queue,
// a worker pool and a content-addressed result cache.
//
// Usage:
//
//	ecripsed -addr :8080 -workers 8 -queue 128 -cache 512 -data-dir /var/lib/ecripsed
//
// With -data-dir set, every job event and completed result is journaled to
// disk and replayed on the next boot: terminal jobs and their results come
// back as-is, and jobs that were queued or running when the process died
// are re-enqueued under their original IDs (specs are deterministic, so the
// re-run reproduces the lost results). Without it, state lives in process
// memory as before.
//
// Endpoints: POST/GET/DELETE /v1/jobs[/{id}], GET /v1/jobs/{id}/events
// (SSE progress and convergence diagnostics), GET /v1/jobs/{id}/trace (span
// timeline), GET /metrics (JSON; ?format=prometheus for text exposition),
// GET /healthz. With -debug-addr set, net/http/pprof and expvar are served
// on a separate listener (keep it private — it exposes heap and goroutine
// internals). See the README's "Running the service" and "Observability"
// sections for a walkthrough. SIGINT/SIGTERM trigger a graceful drain:
// intake stops, running jobs finish, then the process exits.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ecripse/internal/service"
	"ecripse/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 4, "worker pool size")
		queueCap     = flag.Int("queue", 64, "job queue capacity")
		cacheCap     = flag.Int("cache", 256, "result cache entries (negative disables)")
		jobParallel  = flag.Int("job-parallelism", 0, "cap on a job's intra-estimator workers (0 = GOMAXPROCS/workers, negative disables)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "graceful-drain deadline on shutdown")
		dataDir      = flag.String("data-dir", "", "journal job events and results here; empty keeps state in memory")
		fsync        = flag.Bool("fsync", true, "fsync the journal on every append (power-loss durability)")
		compactBytes = flag.Int64("compact-bytes", 8<<20, "journal segment size that triggers snapshot compaction (<0 disables)")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address (empty disables)")
		logLevel     = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		slog.Error("invalid -log-level", "value", *logLevel, "err", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	cfg := service.Config{
		Workers:           *workers,
		QueueCapacity:     *queueCap,
		CacheCapacity:     *cacheCap,
		MaxJobParallelism: *jobParallel,
		Logger:            logger,
	}
	var closeStore func()
	if *dataDir != "" {
		st, err := store.Open(*dataDir, store.Options{
			NoSync:       !*fsync,
			CompactBytes: *compactBytes,
			Logf: func(format string, args ...any) {
				logger.Info("store", "msg", fmt.Sprintf(format, args...))
			},
		})
		if err != nil {
			logger.Error("open store", "dir", *dataDir, "err", err)
			os.Exit(1)
		}
		cfg.Store = st
		closeStore = func() {
			if err := st.Close(); err != nil {
				logger.Error("close store", "err", err)
			}
		}
		logger.Info("journaling", "dir", *dataDir, "fsync", *fsync, "compact_bytes", *compactBytes)
	}

	svc := service.New(cfg)
	if m := svc.Snapshot(); m.ReplayedJobs > 0 {
		logger.Info("recovery replayed interrupted jobs", "jobs", m.ReplayedJobs)
	}
	srv := &http.Server{Addr: *addr, Handler: service.NewServer(svc)}

	if *debugAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg.Handle("/debug/vars", expvar.Handler())
		go func() {
			logger.Info("debug listener", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				logger.Error("debug listener failed", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "workers", *workers, "queue", *queueCap, "cache", *cacheCap)

	select {
	case err := <-errCh:
		logger.Error("serve", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("signal received, draining", "deadline", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		logger.Warn("drain", "err", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown", "err", err)
	}
	if closeStore != nil {
		closeStore()
	}
	logger.Info("bye")
}
