// Command ecripsed is the yield-analysis daemon: an HTTP/JSON service that
// runs the repository's estimators (ECRIPSE, naive MC, SIS, statistical
// blockade, subset simulation) as asynchronous jobs behind a bounded queue,
// a worker pool and a content-addressed result cache.
//
// Usage:
//
//	ecripsed -addr :8080 -workers 8 -queue 128 -cache 512 -data-dir /var/lib/ecripsed
//
// With -data-dir set, every job event and completed result is journaled to
// disk and replayed on the next boot: terminal jobs and their results come
// back as-is, and jobs that were queued or running when the process died
// are re-enqueued under their original IDs (specs are deterministic, so the
// re-run reproduces the lost results). Without it, state lives in process
// memory as before.
//
// Endpoints: POST/GET/DELETE /v1/jobs[/{id}], POST /v1/jobs:batch,
// POST/GET/DELETE /v1/sweeps[/{id}] (multi-point parameter grids with
// cross-point warm starts; see the README's "Sweeps" section),
// GET /v1/jobs/{id}/events and /v1/sweeps/{id}/events (SSE progress and
// convergence diagnostics),
// GET /v1/jobs/{id}/trace (span timeline), GET /v1/cache/{key} (peer cache
// lookup), GET /metrics (JSON; ?format=prometheus for text exposition),
// GET /healthz. With -debug-addr set, net/http/pprof and expvar are served
// on a separate listener (keep it private — it exposes heap and goroutine
// internals). See the README's "Running the service" and "Observability"
// sections for a walkthrough. SIGINT/SIGTERM trigger a graceful drain:
// intake stops, running jobs finish, then the process exits.
//
// Clustering: with -node-id and -peers set, the node becomes one shard of a
// multi-node cluster — every node is an entry point, jobs are partitioned
// across nodes by spec content hash over a consistent-hash ring, submits a
// peer already computed are answered from its cache, and a dead peer's
// dispatched jobs are re-enqueued on their ring successors. With -api-keys
// set, clients authenticate with bearer keys and are rate-limited and
// quota-accounted per tenant. See the README's "Cluster" section.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ecripse/internal/cluster"
	"ecripse/internal/service"
	"ecripse/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 4, "worker pool size")
		queueCap     = flag.Int("queue", 64, "job queue capacity")
		cacheCap     = flag.Int("cache", 256, "result cache entries (negative disables)")
		jobParallel  = flag.Int("job-parallelism", 0, "cap on a job's intra-estimator workers (0 = GOMAXPROCS/workers, negative disables)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "graceful-drain deadline on shutdown")
		dataDir      = flag.String("data-dir", "", "journal job events and results here; empty keeps state in memory")
		fsync        = flag.Bool("fsync", true, "fsync the journal on every append (power-loss durability)")
		compactBytes = flag.Int64("compact-bytes", 8<<20, "journal segment size that triggers snapshot compaction (<0 disables)")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address (empty disables)")
		traceSpans   = flag.Int("trace-max-spans", 0, "span cap per job/sweep trace; overflow is dropped and counted (0 = default 4096)")
		logLevel     = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")

		nodeID            = flag.String("node-id", "", "shard name in a cluster; prefixes job IDs (required with -peers)")
		peersFlag         = flag.String("peers", "", "comma-separated peer shards, name=url each; turns the node into a cluster entry point")
		apiKeys           = flag.String("api-keys", "", "JSON array of tenant API keys; empty disables auth")
		maxBody           = flag.Int64("max-body", service.DefaultMaxBodyBytes, "request-body size limit in bytes (oversized submits answer 413)")
		readHeaderTimeout = flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout (slow-loris guard)")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout")
		probeInterval     = flag.Duration("probe-interval", 2*time.Second, "peer health-probe period")
		probeFails        = flag.Int("probe-fails", 3, "consecutive probe failures that mark a peer down")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		slog.Error("invalid -log-level", "value", *logLevel, "err", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	peers, err := parsePeers(*peersFlag)
	if err != nil {
		logger.Error("invalid -peers", "err", err)
		os.Exit(2)
	}
	if len(peers) > 0 && *nodeID == "" {
		logger.Error("-peers requires -node-id")
		os.Exit(2)
	}
	var tenants *service.Tenants
	if *apiKeys != "" {
		tenants, err = service.LoadTenants(*apiKeys)
		if err != nil {
			logger.Error("load API keys", "path", *apiKeys, "err", err)
			os.Exit(1)
		}
	}

	cfg := service.Config{
		Workers:           *workers,
		QueueCapacity:     *queueCap,
		CacheCapacity:     *cacheCap,
		MaxJobParallelism: *jobParallel,
		NodeID:            *nodeID,
		Tenants:           tenants,
		TraceMaxSpans:     *traceSpans,
		Logger:            logger,
	}
	// The cluster dispatch layer is built after the service (it wraps the
	// service's HTTP handler), so the read-through hook closes over a slot
	// filled in below. Submits only arrive once the listener is up, well
	// after the slot is set.
	var rt *cluster.Router
	if len(peers) > 0 {
		cfg.RemoteCache = func(key string) (json.RawMessage, bool) {
			if rt == nil {
				return nil, false
			}
			return rt.PeerCacheLookup(context.Background(), key)
		}
	}
	var closeStore func()
	if *dataDir != "" {
		st, err := store.Open(*dataDir, store.Options{
			NoSync:       !*fsync,
			CompactBytes: *compactBytes,
			Logf: func(format string, args ...any) {
				logger.Info("store", "msg", fmt.Sprintf(format, args...))
			},
		})
		if err != nil {
			logger.Error("open store", "dir", *dataDir, "err", err)
			os.Exit(1)
		}
		cfg.Store = st
		closeStore = func() {
			if err := st.Close(); err != nil {
				logger.Error("close store", "err", err)
			}
		}
		logger.Info("journaling", "dir", *dataDir, "fsync", *fsync, "compact_bytes", *compactBytes)
	}

	svc := service.New(cfg)
	if m := svc.Snapshot(); m.ReplayedJobs > 0 {
		logger.Info("recovery replayed interrupted jobs", "jobs", m.ReplayedJobs)
	}
	api := service.NewServer(svc)
	api.MaxBodyBytes = *maxBody
	api.Tenants = tenants

	handler := http.Handler(api)
	if len(peers) > 0 {
		rt, err = cluster.NewRouter(cluster.Config{
			Shards:        append(peers, cluster.Shard{Name: *nodeID, Local: api}),
			Tenants:       tenants,
			MaxBodyBytes:  *maxBody,
			ProbeInterval: *probeInterval,
			ProbeFailures: *probeFails,
			Logger:        logger,
		})
		if err != nil {
			logger.Error("build cluster layer", "err", err)
			os.Exit(1)
		}
		rt.Start()
		defer rt.Close()
		handler = rt
		logger.Info("cluster mode", "node", *nodeID, "peers", len(peers))
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       *idleTimeout,
	}

	if *debugAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg.Handle("/debug/vars", expvar.Handler())
		go func() {
			logger.Info("debug listener", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				logger.Error("debug listener failed", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "workers", *workers, "queue", *queueCap, "cache", *cacheCap)

	select {
	case err := <-errCh:
		logger.Error("serve", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("signal received, draining", "deadline", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		logger.Warn("drain", "err", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown", "err", err)
	}
	if closeStore != nil {
		closeStore()
	}
	logger.Info("bye")
}

// parsePeers parses "s2=http://host:8080,s3=http://host2:8080" ("" → none).
func parsePeers(s string) ([]cluster.Shard, error) {
	var out []cluster.Shard
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("malformed peer %q (want name=url)", part)
		}
		out = append(out, cluster.Shard{Name: name, URL: url})
	}
	return out, nil
}
