// Command ecripsed is the yield-analysis daemon: an HTTP/JSON service that
// runs the repository's estimators (ECRIPSE, naive MC, SIS, statistical
// blockade, subset simulation) as asynchronous jobs behind a bounded queue,
// a worker pool and a content-addressed result cache.
//
// Usage:
//
//	ecripsed -addr :8080 -workers 8 -queue 128 -cache 512
//
// Endpoints: POST/GET/DELETE /v1/jobs[/{id}], GET /v1/jobs/{id}/events
// (SSE progress), GET /metrics, GET /healthz. See the README's "Running the
// service" section for a curl walkthrough. SIGINT/SIGTERM trigger a
// graceful drain: intake stops, running jobs finish, then the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"ecripse/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 4, "worker pool size")
		queueCap     = flag.Int("queue", 64, "job queue capacity")
		cacheCap     = flag.Int("cache", 256, "result cache entries (negative disables)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "graceful-drain deadline on shutdown")
	)
	flag.Parse()

	svc := service.New(service.Config{
		Workers:       *workers,
		QueueCapacity: *queueCap,
		CacheCapacity: *cacheCap,
	})
	srv := &http.Server{Addr: *addr, Handler: service.NewServer(svc)}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("ecripsed: listening on %s (workers=%d queue=%d cache=%d)",
		*addr, *workers, *queueCap, *cacheCap)

	select {
	case err := <-errCh:
		log.Fatalf("ecripsed: serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("ecripsed: signal received, draining (deadline %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		log.Printf("ecripsed: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("ecripsed: shutdown: %v", err)
	}
	log.Printf("ecripsed: bye")
}
