// Command ecripsed is the yield-analysis daemon: an HTTP/JSON service that
// runs the repository's estimators (ECRIPSE, naive MC, SIS, statistical
// blockade, subset simulation) as asynchronous jobs behind a bounded queue,
// a worker pool and a content-addressed result cache.
//
// Usage:
//
//	ecripsed -addr :8080 -workers 8 -queue 128 -cache 512 -data-dir /var/lib/ecripsed
//
// With -data-dir set, every job event and completed result is journaled to
// disk and replayed on the next boot: terminal jobs and their results come
// back as-is, and jobs that were queued or running when the process died
// are re-enqueued under their original IDs (specs are deterministic, so the
// re-run reproduces the lost results). Without it, state lives in process
// memory as before.
//
// Endpoints: POST/GET/DELETE /v1/jobs[/{id}], GET /v1/jobs/{id}/events
// (SSE progress), GET /metrics, GET /healthz. See the README's "Running the
// service" and "Durability" sections for a walkthrough. SIGINT/SIGTERM
// trigger a graceful drain: intake stops, running jobs finish, then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"ecripse/internal/service"
	"ecripse/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 4, "worker pool size")
		queueCap     = flag.Int("queue", 64, "job queue capacity")
		cacheCap     = flag.Int("cache", 256, "result cache entries (negative disables)")
		jobParallel  = flag.Int("job-parallelism", 0, "cap on a job's intra-estimator workers (0 = GOMAXPROCS/workers, negative disables)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "graceful-drain deadline on shutdown")
		dataDir      = flag.String("data-dir", "", "journal job events and results here; empty keeps state in memory")
		fsync        = flag.Bool("fsync", true, "fsync the journal on every append (power-loss durability)")
		compactBytes = flag.Int64("compact-bytes", 8<<20, "journal segment size that triggers snapshot compaction (<0 disables)")
	)
	flag.Parse()

	cfg := service.Config{
		Workers:           *workers,
		QueueCapacity:     *queueCap,
		CacheCapacity:     *cacheCap,
		MaxJobParallelism: *jobParallel,
	}
	var closeStore func()
	if *dataDir != "" {
		st, err := store.Open(*dataDir, store.Options{
			NoSync:       !*fsync,
			CompactBytes: *compactBytes,
		})
		if err != nil {
			log.Fatalf("ecripsed: open store: %v", err)
		}
		cfg.Store = st
		closeStore = func() {
			if err := st.Close(); err != nil {
				log.Printf("ecripsed: close store: %v", err)
			}
		}
		log.Printf("ecripsed: journaling to %s (fsync=%v compact-bytes=%d)", *dataDir, *fsync, *compactBytes)
	}

	svc := service.New(cfg)
	if m := svc.Snapshot(); m.ReplayedJobs > 0 {
		log.Printf("ecripsed: recovery replayed %d interrupted job(s)", m.ReplayedJobs)
	}
	srv := &http.Server{Addr: *addr, Handler: service.NewServer(svc)}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("ecripsed: listening on %s (workers=%d queue=%d cache=%d)",
		*addr, *workers, *queueCap, *cacheCap)

	select {
	case err := <-errCh:
		log.Fatalf("ecripsed: serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("ecripsed: signal received, draining (deadline %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		log.Printf("ecripsed: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("ecripsed: shutdown: %v", err)
	}
	if closeStore != nil {
		closeStore()
	}
	log.Printf("ecripsed: bye")
}
