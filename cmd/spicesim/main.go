// Command spicesim runs the built-in circuit simulator on a SPICE-style
// netlist deck: a DC operating point by default, or a fixed-step transient.
//
//	spicesim cell.sp                     # DC operating point
//	spicesim -tran 2e-9 -step 1e-12 cell.sp
//	echo "V1 a 0 1\nR1 a 0 1k" | spicesim -
//
// Supported elements: R, C, V (DC or PULSE), I, M with the built-in
// PTM-16HP-like models; see internal/spice/netlist.go for the grammar.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ecripse/internal/spice"
)

func main() {
	tran := flag.Float64("tran", 0, "transient stop time [s] (0 = DC operating point)")
	step := flag.Float64("step", 0, "transient step size [s] (default tstop/1000)")
	adaptive := flag.Bool("adaptive", false, "use error-controlled adaptive time steps")
	tol := flag.Float64("tol", 1e-4, "adaptive per-step voltage error target [V]")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: spicesim [-tran T -step h] <deck.sp | ->")
		os.Exit(2)
	}
	var r io.Reader
	if flag.Arg(0) == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "spicesim:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}

	ckt, err := spice.ParseNetlist(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spicesim:", err)
		os.Exit(1)
	}

	if *tran <= 0 {
		sol, err := ckt.DCSolve(nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spicesim:", err)
			os.Exit(1)
		}
		fmt.Printf("# DC operating point (%d Newton iterations)\n", sol.Iterations)
		for i := 1; i < ckt.NumNodes(); i++ {
			fmt.Printf("V(%s) = %.6g V\n", ckt.NodeName(i), sol.V[i])
		}
		return
	}

	var res *spice.TransientResult
	if *adaptive {
		res, err = ckt.TransientAdaptive(*tran, *tol, nil)
	} else {
		h := *step
		if h <= 0 {
			h = *tran / 1000
		}
		res, err = ckt.Transient(*tran, h, nil)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "spicesim:", err)
		os.Exit(1)
	}
	fmt.Print("# time")
	for i := 1; i < ckt.NumNodes(); i++ {
		fmt.Printf(",V(%s)", ckt.NodeName(i))
	}
	fmt.Println()
	for k, t := range res.Times {
		fmt.Printf("%.6g", t)
		for i := 1; i < ckt.NumNodes(); i++ {
			fmt.Printf(",%.6g", res.V[k][i])
		}
		fmt.Println()
	}
}
