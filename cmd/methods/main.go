// Command methods runs every rare-event estimator in the repository on the
// same problem (RDF-only read failure of the Table I cell) and prints a
// comparison table: naive Monte Carlo, quasi-MC, sequential importance
// sampling (the paper's conventional baseline [8]), statistical blockade
// [12], subset simulation, and ECRIPSE.
//
//	methods -vdd 0.5
//	methods -vdd 0.7 -scale full
package main

import (
	"flag"
	"fmt"
	"os"

	"ecripse/internal/experiments"
)

func main() {
	vdd := flag.Float64("vdd", 0.5, "supply voltage [V]")
	seed := flag.Int64("seed", 1, "random seed")
	scaleFlag := flag.String("scale", "default", "workload scale: smoke, default or full")
	flag.Parse()

	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "methods:", err)
		os.Exit(2)
	}
	experiments.Methods(*seed, scale, *vdd).Write(os.Stdout)
}
