// Command ecripse-router is the cluster coordinator: it fronts N ecripsed
// shards with the full single-node HTTP API, partitioning jobs across them
// by spec content hash over a consistent-hash ring.
//
// Usage:
//
//	ecripse-router -addr :8090 \
//	    -shards s1=http://10.0.0.1:8080,s2=http://10.0.0.2:8080 \
//	    -api-keys keys.json -data-dir /var/lib/ecripse-router
//
// Every submit is dispatched to the shard owning the spec's content hash —
// so a repeat of the same spec through any entry point lands where its
// result is cached — unless another shard already holds the cached result,
// in which case the submit is steered there and answered without
// recomputation. GET/DELETE/SSE requests follow the job to its shard;
// /metrics rolls the whole cluster up (add ?format=prometheus for a
// shard-labeled text exposition, including the shards'
// ecripsed_health_violations_total watchdog counters).
//
// The router is also the root of the cluster's distributed traces: every
// dispatched submit and sweep carries a W3C traceparent header (minted here
// unless the client sent one), and GET /v1/sweeps/{id}/trace reassembles one
// coherent tree — the router's route/dispatch spans, the owning shard's
// sweep controller spans, and every point job's engine spans — all sharing
// one trace ID.
//
// With -data-dir set, every dispatch is journaled. A shard that stops
// answering health probes is removed from the ring and its unfinished jobs
// are re-enqueued on their ring successors; because specs are deterministic,
// the re-run reproduces exactly the results the dead shard would have
// produced. With -api-keys set, the router authenticates clients and
// enforces per-tenant rate limits and quotas at the cluster's front door;
// the shards themselves can then stay on a private network.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ecripse/internal/cluster"
	"ecripse/internal/service"
	"ecripse/internal/store"
)

func main() {
	var (
		addr              = flag.String("addr", ":8090", "listen address")
		shardsFlag        = flag.String("shards", "", "comma-separated shard list, name=url each (required)")
		vnodes            = flag.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = default)")
		apiKeys           = flag.String("api-keys", "", "JSON array of tenant API keys; empty disables auth")
		dataDir           = flag.String("data-dir", "", "journal dispatched jobs here; empty keeps the table in memory")
		fsync             = flag.Bool("fsync", true, "fsync the journal on every append")
		probeInterval     = flag.Duration("probe-interval", 2*time.Second, "shard health-probe period")
		probeFails        = flag.Int("probe-fails", 3, "consecutive probe failures that mark a shard down")
		maxBody           = flag.Int64("max-body", service.DefaultMaxBodyBytes, "request-body size limit in bytes (oversized submits answer 413)")
		maxBatch          = flag.Int("max-batch", service.DefaultMaxBatchJobs, "max specs in one POST /v1/jobs:batch")
		readHeaderTimeout = flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout (slow-loris guard)")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout")
		logLevel          = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		slog.Error("invalid -log-level", "value", *logLevel, "err", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	shards, err := parseShards(*shardsFlag)
	if err != nil {
		logger.Error("invalid -shards", "err", err)
		os.Exit(2)
	}

	cfg := cluster.Config{
		Shards:        shards,
		VirtualNodes:  *vnodes,
		MaxBodyBytes:  *maxBody,
		MaxBatchJobs:  *maxBatch,
		ProbeInterval: *probeInterval,
		ProbeFailures: *probeFails,
		Logger:        logger,
	}
	if *apiKeys != "" {
		tenants, terr := service.LoadTenants(*apiKeys)
		if terr != nil {
			logger.Error("load API keys", "path", *apiKeys, "err", terr)
			os.Exit(1)
		}
		cfg.Tenants = tenants
	}
	var closeStore func()
	if *dataDir != "" {
		st, serr := store.Open(*dataDir, store.Options{
			NoSync: !*fsync,
			Logf: func(format string, args ...any) {
				logger.Info("store", "msg", fmt.Sprintf(format, args...))
			},
		})
		if serr != nil {
			logger.Error("open store", "dir", *dataDir, "err", serr)
			os.Exit(1)
		}
		cfg.Store = st
		closeStore = func() {
			if cerr := st.Close(); cerr != nil {
				logger.Error("close store", "err", cerr)
			}
		}
	}

	rt, err := cluster.NewRouter(cfg)
	if err != nil {
		logger.Error("build router", "err", err)
		os.Exit(1)
	}
	rt.Start()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt,
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("routing", "addr", *addr, "shards", len(shards), "auth", *apiKeys != "")

	select {
	case err := <-errCh:
		logger.Error("serve", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("signal received, shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown", "err", err)
	}
	rt.Close()
	if closeStore != nil {
		closeStore()
	}
	logger.Info("bye")
}

// parseShards parses "s1=http://host:8080,s2=http://host2:8080".
func parseShards(s string) ([]cluster.Shard, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("at least one shard is required (-shards name=url,...)")
	}
	var out []cluster.Shard
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("malformed shard %q (want name=url)", part)
		}
		out = append(out, cluster.Shard{Name: name, URL: url})
	}
	return out, nil
}
