// Command butterfly dumps the read butterfly curves and noise margins of
// the Table I cell (the paper's Fig. 5), optionally with per-transistor
// threshold shifts.
//
//	butterfly                                  # nominal cell
//	butterfly -shift D1=0.35 -shift A1=-0.2    # a defective cell
//	butterfly -hold                            # hold (retention) butterfly
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ecripse"
)

type shiftFlags []string

func (s *shiftFlags) String() string     { return strings.Join(*s, ",") }
func (s *shiftFlags) Set(v string) error { *s = append(*s, v); return nil }

var nameToIndex = map[string]int{
	"L1": ecripse.L1, "L2": ecripse.L2,
	"D1": ecripse.D1, "D2": ecripse.D2,
	"A1": ecripse.A1, "A2": ecripse.A2,
}

func parseShifts(specs []string) (ecripse.Shifts, error) {
	var sh ecripse.Shifts
	for _, spec := range specs {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			return sh, fmt.Errorf("bad -shift %q (want NAME=VOLTS)", spec)
		}
		idx, ok := nameToIndex[strings.ToUpper(strings.TrimSpace(parts[0]))]
		if !ok {
			return sh, fmt.Errorf("unknown transistor %q (want L1,L2,D1,D2,A1,A2)", parts[0])
		}
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return sh, fmt.Errorf("bad shift value %q: %v", parts[1], err)
		}
		sh[idx] = v
	}
	return sh, nil
}

func main() {
	var shifts shiftFlags
	vdd := flag.Float64("vdd", ecripse.VddNominal, "supply voltage [V]")
	grid := flag.Int("grid", 128, "VTC sample points")
	hold := flag.Bool("hold", false, "hold condition (word line off) instead of read")
	flag.Var(&shifts, "shift", "threshold shift NAME=VOLTS (repeatable)")
	flag.Parse()

	sh, err := parseShifts(shifts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "butterfly:", err)
		os.Exit(2)
	}

	cell := ecripse.NewCell(*vdd)
	opt := &ecripse.SNMOptions{GridN: *grid, Hold: *hold}
	a, b := cell.Butterfly(sh, opt)
	res := cell.NoiseMargin(sh, opt)

	mode := "read"
	if *hold {
		mode = "hold"
	}
	fmt.Printf("# %s butterfly, Vdd=%.2f V, shifts=%v\n", mode, *vdd, sh)
	fmt.Printf("# lobe1=%.4f V lobe2=%.4f V SNM=%.4f V fails=%v\n", res.Lobe1, res.Lobe2, res.SNM(), res.Fails())
	fmt.Println("# V1,V2_curveA,V1_curveB_at_same_index,V2_grid")
	for i := range a.In {
		fmt.Printf("%.4f,%.4f,%.4f,%.4f\n", a.In[i], a.Out[i], b.Out[i], b.In[i])
	}
}
