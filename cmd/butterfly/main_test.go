package main

import "testing"

func TestParseShifts(t *testing.T) {
	sh, err := parseShifts([]string{"D1=0.35", "a1=-0.2", " L2 = 0.01"})
	if err == nil {
		// " L2 = 0.01" contains spaces around '='; SplitN on "=" gives
		// " L2 " and " 0.01" — name is trimmed, value parse must cope or
		// error cleanly. ParseFloat(" 0.01") errors, so err is expected.
		t.Fatal("expected error for spaced assignment")
	}
	sh, err = parseShifts([]string{"D1=0.35", "a1=-0.2"})
	if err != nil {
		t.Fatalf("parseShifts: %v", err)
	}
	if sh[2] != 0.35 { // D1 index
		t.Fatalf("D1 = %v", sh[2])
	}
	if sh[4] != -0.2 { // A1 index
		t.Fatalf("A1 = %v", sh[4])
	}
}

func TestParseShiftsErrors(t *testing.T) {
	for _, bad := range []string{"D1", "X9=0.1", "D1=abc"} {
		if _, err := parseShifts([]string{bad}); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}
