// Command particles dumps the particle-filter tracking snapshots of the
// paper's Fig. 4: boundary-search initialization, weighted candidates after
// a prediction/measurement round, and the resampled cloud, on a 2-D slice
// (ΔVth of D1 and A1) of the variability space.
package main

import (
	"flag"
	"os"

	"ecripse/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()
	experiments.Fig4(*seed).WriteCSV(os.Stdout)
}
