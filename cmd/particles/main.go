// Command particles dumps the particle-filter tracking snapshots of the
// paper's Fig. 4: boundary-search initialization, weighted candidates after
// a prediction/measurement round, and the resampled cloud, on a 2-D slice
// (ΔVth of D1 and A1) of the variability space.
//
// With -diag it also prints the per-round convergence diagnostics (ESS,
// weight concentration, resampling diversity per lobe).
package main

import (
	"flag"
	"os"

	"ecripse/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	diag := flag.Bool("diag", false, "append per-round convergence diagnostics")
	flag.Parse()
	r := experiments.Fig4(*seed)
	r.WriteCSV(os.Stdout)
	if *diag {
		experiments.WriteDiag(os.Stdout, "fig4 ensemble", r.Diag)
	}
}
