// Command particles dumps the particle-filter tracking snapshots of the
// paper's Fig. 4: boundary-search initialization, weighted candidates after
// a prediction/measurement round, and the resampled cloud, on a 2-D slice
// (ΔVth of D1 and A1) of the variability space.
//
// With -diag it also prints the per-round convergence diagnostics (ESS,
// weight concentration, resampling diversity per lobe). With -health the
// recorded rounds are replayed through the statistical-health watchdog and
// its verdict is printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"ecripse/internal/core"
	"ecripse/internal/experiments"
	"ecripse/internal/obsv"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	diag := flag.Bool("diag", false, "append per-round convergence diagnostics")
	health := flag.Bool("health", false, "replay the rounds through the statistical-health watchdog and print its verdict")
	flag.Parse()
	r := experiments.Fig4(*seed)
	r.WriteCSV(os.Stdout)
	if *diag {
		experiments.WriteDiag(os.Stdout, "fig4 ensemble", r.Diag)
	}
	if *health {
		hm := obsv.NewHealthMonitor(obsv.HealthConfig{}, nil)
		for _, rd := range r.Diag {
			hm.ObservePFRound(rd.Round, core.HealthFilters(rd.Filters))
		}
		fmt.Fprintf(os.Stdout, "# %s", hm.Report().Summary())
	}
}
