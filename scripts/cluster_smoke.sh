#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end cluster failover exercise.
#
# Boots a two-shard cluster behind ecripse-router, batch-submits a spread of
# naive-MC jobs slow enough to be caught mid-run, SIGKILLs one shard, and
# requires every job — including the dead shard's — to reach "done" through
# the router (journaled specs re-enqueue on the ring successor and re-run
# deterministically). Finally asserts the cluster metrics roll-up reflects
# the kill. Artifacts (logs, data dirs) land in $SMOKE_DIR for CI upload.
#
# Usage: scripts/cluster_smoke.sh  (from the repository root)
set -u

SMOKE_DIR="${SMOKE_DIR:-$(mktemp -d /tmp/cluster-smoke.XXXXXX)}"
mkdir -p "$SMOKE_DIR"
ROUTER_PORT="${ROUTER_PORT:-18100}"
S1_PORT="${S1_PORT:-18101}"
S2_PORT="${S2_PORT:-18102}"
ROUTER="http://127.0.0.1:$ROUTER_PORT"
JOBS=10          # distinct seeds, so the ring spreads them across both shards
JOB_N=8000       # ~2-4s of naive MC per job: long enough to die mid-run
DONE_TIMEOUT=240 # seconds for the whole batch to finish after the kill

PIDS=()
fail() {
    echo "FAIL: $*" >&2
    echo "--- router log ---" >&2; tail -40 "$SMOKE_DIR/router.log" >&2 || true
    echo "--- s1 log ---" >&2;     tail -20 "$SMOKE_DIR/s1.log" >&2 || true
    echo "--- s2 log ---" >&2;     tail -20 "$SMOKE_DIR/s2.log" >&2 || true
    echo "artifacts: $SMOKE_DIR" >&2
    exit 1
}
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

json() { python3 -c "import sys,json; d=json.load(sys.stdin); print($1)"; }

wait_http() { # url attempts
    for _ in $(seq 1 "$2"); do
        curl -fsS -o /dev/null "$1" && return 0
        sleep 0.2
    done
    return 1
}

echo "== build =="
go build -o "$SMOKE_DIR/ecripsed" ./cmd/ecripsed || fail "build ecripsed"
go build -o "$SMOKE_DIR/ecripse-router" ./cmd/ecripse-router || fail "build ecripse-router"

echo "== boot two shards + router =="
"$SMOKE_DIR/ecripsed" -addr "127.0.0.1:$S1_PORT" -workers 2 -node-id s1 \
    -data-dir "$SMOKE_DIR/s1-data" -fsync=false -log-level warn \
    >"$SMOKE_DIR/s1.log" 2>&1 &
S1_PID=$!; PIDS+=("$S1_PID")
"$SMOKE_DIR/ecripsed" -addr "127.0.0.1:$S2_PORT" -workers 2 -node-id s2 \
    -data-dir "$SMOKE_DIR/s2-data" -fsync=false -log-level warn \
    >"$SMOKE_DIR/s2.log" 2>&1 &
PIDS+=("$!")
"$SMOKE_DIR/ecripse-router" -addr "127.0.0.1:$ROUTER_PORT" \
    -shards "s1=http://127.0.0.1:$S1_PORT,s2=http://127.0.0.1:$S2_PORT" \
    -data-dir "$SMOKE_DIR/router-data" -fsync=false \
    -probe-interval 500ms -probe-fails 2 \
    >"$SMOKE_DIR/router.log" 2>&1 &
PIDS+=("$!")

wait_http "http://127.0.0.1:$S1_PORT/healthz" 50 || fail "s1 never answered /healthz"
wait_http "http://127.0.0.1:$S2_PORT/healthz" 50 || fail "s2 never answered /healthz"
wait_http "$ROUTER/healthz" 50 || fail "router never answered /healthz"

echo "== batch submit $JOBS naive-MC jobs through the router =="
BATCH="["
for i in $(seq 1 "$JOBS"); do
    [ "$i" -gt 1 ] && BATCH+=","
    BATCH+="{\"estimator\":\"naive\",\"n\":$JOB_N,\"seed\":$i}"
done
BATCH+="]"
RESP=$(curl -fsS -XPOST -H 'Content-Type: application/json' \
    -d "$BATCH" "$ROUTER/v1/jobs:batch") || fail "batch submit"
mapfile -t IDS < <(echo "$RESP" | json '"\n".join(it["job"]["id"] for it in d)') \
    || fail "batch response malformed: $RESP"
[ "${#IDS[@]}" -eq "$JOBS" ] || fail "batch returned ${#IDS[@]} jobs, want $JOBS: $RESP"

S1_JOBS=0; S2_JOBS=0
for id in "${IDS[@]}"; do
    case "$id" in
        s1-*) S1_JOBS=$((S1_JOBS + 1)) ;;
        s2-*) S2_JOBS=$((S2_JOBS + 1)) ;;
        *) fail "job ID $id carries no shard prefix" ;;
    esac
done
echo "ring spread: $S1_JOBS jobs on s1, $S2_JOBS on s2"
[ "$S1_JOBS" -gt 0 ] && [ "$S2_JOBS" -gt 0 ] \
    || fail "ring placed nothing on one shard — the kill would exercise nothing"

echo "== trace propagation: client traceparent -> router -> shard =="
TP_ID="4bf92f3577b34da6a3ce929d0e0e4736"
TRESP=$(curl -fsS -XPOST -H 'Content-Type: application/json' \
    -H "Traceparent: 00-$TP_ID-00f067aa0ba902b7-01" \
    -d '{"estimator":"naive","n":200,"seed":4242}' "$ROUTER/v1/jobs") \
    || fail "traced submit"
TID=$(echo "$TRESP" | json 'd["id"]') || fail "traced submit response malformed: $TRESP"
for _ in $(seq 1 100); do
    TSTATE=$(curl -fsS "$ROUTER/v1/jobs/$TID" | json 'd["state"]' 2>/dev/null || echo "?")
    [ "$TSTATE" = "done" ] && break
    sleep 0.2
done
[ "$TSTATE" = "done" ] || fail "traced job $TID stuck in '$TSTATE'"
# The trace served through the router carries the client's trace ID and the
# shard-side engine span — one tree, one ID, across the dispatch hop.
TJSON=$(curl -fsS "$ROUTER/v1/jobs/$TID/trace") || fail "router trace fetch"
[ "$(echo "$TJSON" | json 'd["trace_id"]')" = "$TP_ID" ] \
    || fail "router-served trace lost the client trace ID: $TJSON"
[ "$(echo "$TJSON" | json 'any(s["name"]=="run" for s in d["spans"])')" = "True" ] \
    || fail "router-served trace lacks the shard engine span: $TJSON"
# And the owning shard itself adopted the same ID rather than minting one.
case "$TID" in s1-*) SHARD_URL="http://127.0.0.1:$S1_PORT" ;; *) SHARD_URL="http://127.0.0.1:$S2_PORT" ;; esac
DIRECT_ID=$(curl -fsS "$SHARD_URL/v1/jobs/$TID/trace" | json 'd["trace_id"]') \
    || fail "direct shard trace fetch"
[ "$DIRECT_ID" = "$TP_ID" ] || fail "shard minted its own trace ID $DIRECT_ID, want $TP_ID"
echo "trace $TP_ID propagated router -> $(echo "$TID" | cut -d- -f1)"

echo "== SIGKILL s1 mid-run =="
sleep 1 # let s1 start running its share
kill -9 "$S1_PID" || fail "kill s1"

echo "== wait for every job to complete through the router =="
DEADLINE=$(( $(date +%s) + DONE_TIMEOUT ))
for id in "${IDS[@]}"; do
    while :; do
        STATE=$(curl -fsS "$ROUTER/v1/jobs/$id" | json 'd["state"]' 2>/dev/null || echo "?")
        [ "$STATE" = "done" ] && break
        [ "$STATE" = "failed" ] || [ "$STATE" = "canceled" ] && fail "job $id reached $STATE"
        [ "$(date +%s)" -ge "$DEADLINE" ] && fail "job $id stuck in '$STATE' after ${DONE_TIMEOUT}s"
        sleep 0.5
    done
done
echo "all $JOBS jobs done (including the $S1_JOBS from the killed shard)"

echo "== assert the metrics roll-up reflects the failover =="
PROM=$(curl -fsS "$ROUTER/metrics?format=prometheus") || fail "prometheus scrape"
echo "$PROM" | grep -q 'ecripse_router_shard_up{shard="s1"} 0' \
    || fail "s1 still reported up after the kill"
echo "$PROM" | grep -q 'ecripse_router_shard_up{shard="s2"} 1' \
    || fail "s2 not reported up"
echo "$PROM" | grep -q 'ecripsed_jobs{shard="s2",state="done"}' \
    || fail "no shard-labeled job series for s2"
REDISPATCHED=$(echo "$PROM" | sed -n 's/^ecripse_router_redispatched_total //p')
[ "${REDISPATCHED:-0}" -ge "$S1_JOBS" ] \
    || fail "redispatched_total=$REDISPATCHED, want >= $S1_JOBS"
DOWN=$(echo "$PROM" | sed -n 's/^ecripse_router_shard_down_events_total //p')
[ "${DOWN:-0}" -ge 1 ] || fail "no shard-down event recorded"

echo "PASS: $JOBS jobs completed across the kill; $REDISPATCHED redispatched"
