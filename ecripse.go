// Package ecripse is a Go reproduction of "ECRIPSE: An Efficient Method for
// Calculating RTN-Induced Failure Probability of an SRAM Cell" (Awano,
// Hiromoto, Sato — DATE 2015).
//
// The library estimates the read-failure probability of a 6T SRAM cell
// under process variation (random dopant fluctuation, RDF) and random
// telegraph noise (RTN), using the paper's two-stage flow: an ensemble of
// particle filters estimates the optimal importance-sampling alternative
// distribution, and an SVM classifier over degree-4 polynomial features
// blockades most transistor-level simulations.
//
// Quick start:
//
//	cell := ecripse.NewCell(ecripse.VddNominal)
//	est := ecripse.New(cell, ecripse.Options{})
//	res := est.FailureProbability(1) // RDF-only, seed 1
//	fmt.Println(res.Estimate)
//
//	cfg := ecripse.TableIRTN(cell)
//	withRTN := est.FailureProbabilityRTN(1, cfg, 0.5) // duty ratio 0.5
//
// The cost model matches the paper: every estimator routes its
// transistor-level simulations through one counter, and Result.Series is the
// convergence trace of the estimate against that counter (the x-axis of the
// paper's Figs. 6 and 7).
package ecripse

import (
	"context"
	"math/rand"

	"ecripse/internal/blockade"
	"ecripse/internal/core"
	"ecripse/internal/device"
	"ecripse/internal/linalg"
	"ecripse/internal/montecarlo"
	"ecripse/internal/rtn"
	"ecripse/internal/sis"
	"ecripse/internal/sram"
	"ecripse/internal/stats"
	"ecripse/internal/subset"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Cell is the 6T SRAM cell of the paper's Table I.
	Cell = sram.Cell
	// Shifts is a per-transistor threshold-voltage shift vector [V].
	Shifts = sram.Shifts
	// SNMOptions controls butterfly sampling for noise margins.
	SNMOptions = sram.SNMOptions
	// SNMResult carries the two lobe margins of a butterfly plot.
	SNMResult = sram.SNMResult
	// Curve is a sampled voltage-transfer characteristic.
	Curve = sram.Curve
	// Options tunes the ECRIPSE estimator (see internal/core).
	Options = core.Options
	// Result is an estimation outcome with convergence trace and cost split.
	Result = core.Result
	// SweepPoint is one duty-ratio sample of a Fig. 8-style sweep.
	SweepPoint = core.SweepPoint
	// RTNConfig holds the RTN model constants (Table I).
	RTNConfig = rtn.Config
	// RTNTrap is a two-state defect for time-domain traces.
	RTNTrap = rtn.Trap
	// Estimate is a point estimate with 95% confidence interval.
	Estimate = stats.Estimate
	// Series is a convergence trace (estimate vs. simulation count).
	Series = stats.Series
	// Point is one entry of a Series.
	Point = stats.Point
	// Vector is a dense float64 vector in the normalized variability space.
	Vector = linalg.Vector
	// FailureMode selects the cell specification the estimator checks.
	FailureMode = core.FailureMode
	// CellSpec describes a custom 6T geometry for design-space exploration.
	CellSpec = sram.CellSpec
	// PFRoundDiag is one round of stage-1 convergence diagnostics
	// (Result.PFRounds).
	PFRoundDiag = core.PFRoundDiag
	// FilterDiag is one particle filter's convergence state within a round.
	FilterDiag = core.FilterDiag
)

// RoundSummary reduces a round's per-filter diagnostics to its worst-case
// collapse signals: minimum effective sample size, maximum single-weight
// fraction, and minimum count of unique resampling survivors.
func RoundSummary(filters []FilterDiag) (minESS, maxFrac float64, minUnique int) {
	return core.RoundSummary(filters)
}

// Failure modes: the paper's read-stability criterion plus the write and
// hold extensions (set Options.Mode).
const (
	ReadFailure  = core.ReadFailure
	WriteFailure = core.WriteFailure
	HoldFailure  = core.HoldFailure
)

// Supply voltages of the paper's experiments.
const (
	// VddNominal is the 16 nm HP nominal supply (Figs. 6, 8).
	VddNominal = device.VddNominal
	// VddLow is the lowered supply of Fig. 7, where naive MC converges.
	VddLow = device.VddLow
)

// Transistor indices of the Shifts vector, in Table I order.
const (
	L1 = sram.L1 // load (PMOS) on the V1 side
	L2 = sram.L2
	D1 = sram.D1 // driver (NMOS)
	D2 = sram.D2
	A1 = sram.A1 // access (NMOS)
	A2 = sram.A2
	// NumTransistors is the dimensionality of the variability space.
	NumTransistors = sram.NumTransistors
)

// NewCell builds the Table I cell at the given supply voltage.
func NewCell(vdd float64) *Cell { return sram.NewCell(vdd) }

// NewCellAt builds the Table I cell at the given supply voltage and
// junction temperature [K] (reads and retention degrade with temperature;
// write-ability improves).
func NewCellAt(vdd, tempK float64) *Cell { return sram.NewCellAt(vdd, tempK) }

// NewCellFrom builds a cell from a custom geometry specification; zero
// fields take the Table I values.
func NewCellFrom(spec CellSpec) *Cell { return sram.NewCellFrom(spec) }

// TableIRTN returns the RTN model constants of Table I, calibrated to the
// cell (see DESIGN.md §2 for the calibration discussion).
func TableIRTN(cell *Cell) RTNConfig { return rtn.TableIConfig(cell) }

// Estimator is the user-facing handle for the ECRIPSE flow. It keeps the
// boundary initialization and the trained classifier across calls so that
// multiple gate-bias conditions share their cost, as in the paper's
// Figs. 7(b) and 8.
type Estimator struct {
	cell   *Cell
	opts   Options
	engine *core.Engine
}

// New creates an estimator for the cell. Zero-valued Options select the
// defaults documented in the Options type.
func New(cell *Cell, opts Options) *Estimator {
	return &Estimator{
		cell:   cell,
		opts:   opts,
		engine: core.NewEngine(cell, nil, opts),
	}
}

// Simulations returns the total transistor-level simulations consumed so far.
func (e *Estimator) Simulations() int64 { return e.engine.Counter.Count() }

// FailureProbability estimates the RDF-only failure probability
// (the configuration of the paper's Fig. 6 and the 1.33e-4 reference).
func (e *Estimator) FailureProbability(seed int64) Result {
	return e.engine.Run(rand.New(rand.NewSource(seed)), nil)
}

// FailureProbabilityCtx is FailureProbability with cancellation: when ctx
// fires (deadline, interrupt, or a LimitSims budget), the run stops cleanly
// at the next checkpoint and the partial Result is returned together with
// ctx.Err(). With an uncancelled context it is identical to
// FailureProbability.
func (e *Estimator) FailureProbabilityCtx(ctx context.Context, seed int64) (Result, error) {
	return e.engine.RunCtx(ctx, rand.New(rand.NewSource(seed)), nil)
}

// FailureProbabilityRTN estimates the RTN-aware failure probability at the
// storage duty ratio alpha (eqs. (11)–(13)).
func (e *Estimator) FailureProbabilityRTN(seed int64, cfg RTNConfig, alpha float64) Result {
	sampler := rtn.NewSampler(e.cell, cfg, alpha)
	return e.engine.Run(rand.New(rand.NewSource(seed)), sampler)
}

// FailureProbabilityRTNCtx is FailureProbabilityRTN with cancellation (see
// FailureProbabilityCtx).
func (e *Estimator) FailureProbabilityRTNCtx(ctx context.Context, seed int64, cfg RTNConfig, alpha float64) (Result, error) {
	sampler := rtn.NewSampler(e.cell, cfg, alpha)
	return e.engine.RunCtx(ctx, rand.New(rand.NewSource(seed)), sampler)
}

// LimitSims installs a transistor-level simulation budget on the
// estimator's counter: the first simulation that reaches max invokes stop
// (typically a context.CancelFunc wired to the ctx passed to a *Ctx method),
// so the run unwinds cleanly with a partial result. Call it before starting
// a run.
func (e *Estimator) LimitSims(max int64, stop func()) {
	e.engine.Counter.SetLimit(max, stop)
}

// DutySweep runs the Fig. 8 workload: one RTN-aware estimate per duty
// ratio, sharing initialization and classifier across all points.
func (e *Estimator) DutySweep(seed int64, cfg RTNConfig, alphas []float64) []SweepPoint {
	rng := rand.New(rand.NewSource(seed))
	out := make([]SweepPoint, 0, len(alphas))
	for _, a := range alphas {
		res := e.engine.Run(rng, rtn.NewSampler(e.cell, cfg, a))
		out = append(out, SweepPoint{Alpha: a, Result: res})
	}
	return out
}

// NaiveMC runs the naive Monte Carlo baseline (paper eq. (2)): n trials at
// the cell's bias, optionally with RTN at duty alpha (pass a negative alpha
// for RDF-only). Every trial costs one transistor-level simulation.
func NaiveMC(cell *Cell, seed int64, n int, cfg RTNConfig, alpha float64) (Series, Estimate) {
	rng := rand.New(rand.NewSource(seed))
	sigma := cell.SigmaVth()
	snm := &sram.SNMOptions{GridN: 24, BisectIter: 24}
	var sampler *rtn.Sampler
	if alpha >= 0 {
		sampler = rtn.NewSampler(cell, cfg, alpha)
	}
	var c montecarlo.Counter
	trial := func(r *rand.Rand) bool {
		c.Add(1)
		var sh sram.Shifts
		for i := range sh {
			sh[i] = sigma[i] * r.NormFloat64()
		}
		if sampler != nil {
			sh = sh.Add(sampler.Sample(r))
		}
		return cell.Fails(sh, snm)
	}
	series := montecarlo.Naive(rng, trial, n, &c, 0)
	fin := series.Final()
	return series, Estimate{P: fin.P, CI95: fin.CI95, RelErr: fin.RelErr, N: n, Sims: c.Count()}
}

// Conventional runs the sequential-importance-sampling baseline in the
// style of the paper's reference [8] (every evaluation fully simulated).
// It returns the convergence series and the estimate; opts may be nil.
func Conventional(cell *Cell, seed int64, nis int) (Series, Estimate) {
	rng := rand.New(rand.NewSource(seed))
	sigma := cell.SigmaVth()
	snm := &sram.SNMOptions{GridN: 24, BisectIter: 24}
	var c montecarlo.Counter
	value := func(x linalg.Vector) float64 {
		c.Add(1)
		var sh sram.Shifts
		for i := range sh {
			sh[i] = x[i] * sigma[i]
		}
		if cell.Fails(sh, snm) {
			return 1
		}
		return 0
	}
	res := sis.Estimate(rng, sram.NumTransistors, value, &c, &sis.Options{NIS: nis}, nil)
	return res.Series, res.Estimate
}

// StatisticalBlockade runs the classifier-filtered nominal-sampling
// baseline of the paper's reference [12] (Singhee & Rutenbar): n nominal
// Monte Carlo samples streamed through an SVM filter so only candidate
// failures are simulated. Unlike ECRIPSE it does not use importance
// sampling, so its accuracy stays hit-count limited; it exists for the
// Section II-C comparison.
func StatisticalBlockade(cell *Cell, seed int64, n int) (Series, Estimate) {
	rng := rand.New(rand.NewSource(seed))
	sigma := cell.SigmaVth()
	snm := &sram.SNMOptions{GridN: 24, BisectIter: 24}
	var c montecarlo.Counter
	fails := func(x linalg.Vector) bool {
		c.Add(1)
		var sh sram.Shifts
		for i := range sh {
			sh[i] = x[i] * sigma[i]
		}
		return cell.Fails(sh, snm)
	}
	res := blockade.Estimate(rng, sram.NumTransistors, fails, &c, n, nil)
	return res.Series, res.Estimate
}

// SubsetSimulation estimates the cell failure probability by subset
// simulation (Au & Beck) on the continuous read-noise-margin function: a
// classifier-free, proposal-free rare-event baseline. n is the samples per
// level; the simulation count is roughly n × levels.
func SubsetSimulation(cell *Cell, seed int64, n int) Estimate {
	sigma := cell.SigmaVth()
	snm := &sram.SNMOptions{GridN: 24, BisectIter: 24}
	g := func(x linalg.Vector) float64 {
		var sh sram.Shifts
		for i := range sh {
			sh[i] = x[i] * sigma[i]
		}
		return cell.ReadSNM(sh, snm)
	}
	rng := rand.New(rand.NewSource(seed))
	res := subset.Estimate(rng, sram.NumTransistors, g, &subset.Options{N: n})
	return res.Estimate
}

// RTNTraceForCell generates a time-domain ΔVth waveform of transistor tr
// under duty ratio alpha — the picture of the paper's Fig. 3(b).
func RTNTraceForCell(cell *Cell, cfg RTNConfig, seed int64, tr int, alpha, dt float64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	sampler := rtn.NewSampler(cell, cfg, alpha)
	traps := sampler.CellTraps(rng, tr)
	return rtn.Trace(rng, traps, dt, n)
}
