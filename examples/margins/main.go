// Margins explores the classic 6T sizing trade-off with the extension
// analyses built on the paper's substrate: read, hold and write margins —
// and their failure probabilities — as the access transistor strength
// varies, plus the N-curve metrics of the nominal cell.
//
//	go run ./examples/margins
package main

import (
	"fmt"

	"ecripse"
)

func main() {
	cell := ecripse.NewCell(ecripse.VddLow)
	var nominal ecripse.Shifts

	fmt.Printf("Static margins at Vdd = %.2f V (nominal cell):\n", cell.Vdd)
	fmt.Printf("  read SNM     : %5.1f mV\n", 1000*cell.ReadSNM(nominal, nil))
	fmt.Printf("  hold SNM     : %5.1f mV\n", 1000*cell.HoldSNM(nominal, nil))
	fmt.Printf("  write margin : %5.1f mV\n", 1000*cell.WriteMargin(nominal, nil))
	nc := cell.NCurveStability(nominal, nil)
	fmt.Printf("  N-curve      : SVNM %5.1f mV, SINM %.2f uA\n\n", 1000*nc.SVNM, 1e6*nc.SINM)

	fmt.Println("The read/write trade-off: shifting both access-device thresholds")
	fmt.Println("(negative = stronger access) moves the two failure modes in")
	fmt.Println("opposite directions:")
	fmt.Println()
	fmt.Println("  dVth(A)   read SNM   write margin    P(read fail)  P(write fail)")
	for _, dv := range []float64{-0.06, -0.03, 0, 0.03, 0.06} {
		var sh ecripse.Shifts
		sh[ecripse.A1], sh[ecripse.A2] = dv, dv
		read := cell.ReadSNM(sh, nil)
		write := cell.WriteMargin(sh, nil)

		readP := probability(cell, dv, ecripse.ReadFailure)
		writeP := probability(cell, dv, ecripse.WriteFailure)
		fmt.Printf("  %+5.0f mV   %5.1f mV   %8.1f mV    %12.2e  %13.2e\n",
			1000*dv, 1000*read, 1000*write, readP, writeP)
	}
	fmt.Println()
	fmt.Println("A stronger access device helps writes and hurts reads; the yield")
	fmt.Println("optimum balances the two failure probabilities.")
}

// probability estimates the failure probability of the cell with a
// deterministic access-device offset applied on top of the random RDF.
func probability(base *ecripse.Cell, accessShift float64, mode ecripse.FailureMode) float64 {
	// Shift the prototypes: a design offset, not a random variable.
	cell := ecripse.NewCell(base.Vdd)
	cell.Devs[ecripse.A1].DVth = accessShift
	cell.Devs[ecripse.A2].DVth = accessShift
	est := ecripse.New(cell, ecripse.Options{NIS: 20000, Mode: mode})
	return est.FailureProbability(1).Estimate.P
}
