// Butterfly renders read butterfly curves as ASCII art — the picture of the
// paper's Fig. 5 — for a healthy cell and for a cell whose driver/access
// mismatch has closed one eye (negative read noise margin).
//
//	go run ./examples/butterfly
package main

import (
	"fmt"
	"strings"

	"ecripse"
)

const plotN = 33 // character grid (plotN x plotN)

func plot(cell *ecripse.Cell, sh ecripse.Shifts) string {
	opt := &ecripse.SNMOptions{GridN: 256}
	a, b := cell.Butterfly(sh, opt)
	vdd := cell.Vdd

	grid := make([][]byte, plotN)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", plotN))
	}
	put := func(x, y float64, ch byte) {
		i := int(y / vdd * float64(plotN-1))
		j := int(x / vdd * float64(plotN-1))
		if i < 0 || i >= plotN || j < 0 || j >= plotN {
			return
		}
		row := plotN - 1 - i
		if grid[row][j] == ' ' || grid[row][j] != ch {
			grid[row][j] = ch
		}
	}
	for i := range a.In {
		put(a.In[i], a.Out[i], '*') // curve A: V2 = fR(V1)
	}
	for i := range b.In {
		put(b.Out[i], b.In[i], 'o') // curve B: V1 = fL(V2), transposed
	}
	var sb strings.Builder
	sb.WriteString("V2\n")
	for _, row := range grid {
		sb.WriteString("|" + string(row) + "\n")
	}
	sb.WriteString("+" + strings.Repeat("-", plotN) + " V1\n")
	return sb.String()
}

func main() {
	cell := ecripse.NewCell(ecripse.VddNominal)

	var nominal ecripse.Shifts
	fmt.Println("Healthy cell (two eyes, positive RNM):")
	fmt.Print(plot(cell, nominal))
	fmt.Printf("read noise margin: %+.1f mV\n\n", 1000*cell.ReadSNM(nominal, nil))

	defective := ecripse.Shifts{}
	defective[ecripse.D1] = 0.35 // threshold shifts in volts
	defective[ecripse.A1] = -0.20
	fmt.Println("Defective cell (one eye closed, negative RNM => read failure):")
	fmt.Print(plot(cell, defective))
	fmt.Printf("read noise margin: %+.1f mV\n", 1000*cell.ReadSNM(defective, nil))
}
