// Rtntrace renders a time-domain RTN waveform (the picture of the paper's
// Fig. 3(b)): the threshold voltage of one transistor jumping between
// discrete levels as individual gate-oxide traps capture and emit carriers,
// and how the duty ratio moves the trap occupancy.
//
//	go run ./examples/rtntrace
package main

import (
	"fmt"
	"strings"

	"ecripse"
)

func main() {
	cell := ecripse.NewCell(ecripse.VddNominal)
	cfg := ecripse.TableIRTN(cell)

	fmt.Println("Trap occupancy vs gate duty ratio (paper eqs. (7)-(10)):")
	fmt.Println("  duty   tau_c    tau_e    occupancy")
	for _, duty := range []float64{0, 0.25, 0.5, 0.75, 1} {
		tc, te := cfg.TimeConstants(duty)
		fmt.Printf("  %.2f   %.4f   %.4f   %.4f\n", duty, tc, te, cfg.Occupancy(duty))
	}
	fmt.Println()

	const (
		dt = 2e-3 // 2 ms sample period
		n  = 72   // samples per line
	)
	fmt.Println("Time-domain ΔVth of driver D1 (duty 0.5), 2 ms/sample:")
	trace := ecripse.RTNTraceForCell(cell, cfg, 7, ecripse.D1, 0.5, dt, n*4)

	maxV := 0.0
	for _, v := range trace {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		fmt.Println("  (this draw of the Poisson trap count came up empty — rerun with another seed)")
		return
	}
	levels := 6
	for row := levels; row >= 0; row-- {
		threshold := maxV * float64(row) / float64(levels)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			if trace[i] >= threshold && trace[i] > 0 {
				sb.WriteByte('#')
			} else {
				sb.WriteByte(' ')
			}
		}
		fmt.Printf("  %5.1fmV |%s\n", 1000*threshold, sb.String())
	}
	fmt.Printf("  %s\n", strings.Repeat("-", n+10))
	fmt.Printf("  peak ΔVth in this window: %.1f mV\n", 1000*maxV)
}
