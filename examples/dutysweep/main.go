// Dutysweep shows how the storage duty ratio modulates the RTN-aware
// failure probability — the shape of the paper's Fig. 8 — as an ASCII bar
// chart, using shared initialization across all bias points.
//
//	go run ./examples/dutysweep
package main

import (
	"fmt"
	"math"
	"strings"

	"ecripse"
)

func main() {
	cell := ecripse.NewCell(ecripse.VddLow) // lowered supply keeps this example quick
	cfg := ecripse.TableIRTN(cell)
	est := ecripse.New(cell, ecripse.Options{NIS: 40000, M: 10})

	alphas := []float64{0, 0.25, 0.5, 0.75, 1.0}
	pts := est.DutySweep(1, cfg, alphas)
	rdf := est.FailureProbability(2)

	fmt.Printf("RTN-aware failure probability vs duty ratio (Vdd = %.2f V)\n\n", cell.Vdd)
	maxP := rdf.Estimate.P
	for _, p := range pts {
		maxP = math.Max(maxP, p.Result.Estimate.P)
	}
	bar := func(p float64) string {
		n := int(40 * p / maxP)
		return strings.Repeat("#", n)
	}
	for _, p := range pts {
		fmt.Printf("  alpha=%.2f  %.3e  %s\n", p.Alpha, p.Result.Estimate.P, bar(p.Result.Estimate.P))
	}
	fmt.Printf("  RDF-only   %.3e  %s\n\n", rdf.Estimate.P, bar(rdf.Estimate.P))
	fmt.Println("The minimum sits at alpha = 0.5 (cell stores 0 and 1 equally often)")
	fmt.Println("and the curve is bilaterally symmetric — the cell itself is symmetric.")
	fmt.Printf("Ignoring RTN is optimistic by %.1fx at the worst duty ratio.\n",
		pts[0].Result.Estimate.P/rdf.Estimate.P)
	fmt.Printf("\nTotal transistor-level simulations for all %d estimates: %d\n",
		len(alphas)+1, est.Simulations())
}
