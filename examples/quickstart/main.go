// Quickstart: estimate the SRAM read-failure probability with and without
// RTN using the public API, and show the simulation-count accounting that
// makes ECRIPSE fast.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"ecripse"
)

func main() {
	// The paper's Fig. 7 setting: lowered supply so even naive Monte Carlo
	// could converge — and this example stays fast.
	cell := ecripse.NewCell(ecripse.VddLow)
	fmt.Printf("6T SRAM cell at Vdd = %.2f V\n", ecripse.VddLow)
	fmt.Printf("nominal read noise margin: %.1f mV\n\n", 1000*cell.ReadSNM(ecripse.Shifts{}, nil))

	est := ecripse.New(cell, ecripse.Options{NIS: 100000, M: 10})

	rdf := est.FailureProbability(1)
	fmt.Println("RDF-only (process variation only):")
	fmt.Printf("  %v\n\n", rdf.Estimate)

	cfg := ecripse.TableIRTN(cell)
	withRTN := est.FailureProbabilityRTN(1, cfg, 0.3)
	fmt.Println("RTN-aware (duty ratio 0.3):")
	fmt.Printf("  %v\n\n", withRTN.Estimate)

	fmt.Printf("RTN degrades the failure probability by %.1fx.\n",
		withRTN.Estimate.P/rdf.Estimate.P)
	fmt.Printf("Total transistor-level simulations for both estimates: %d\n", est.Simulations())
	fmt.Printf("(naive Monte Carlo would need ~%.0g trials for the RDF-only number alone)\n",
		100/rdf.Estimate.P)
}
