package ecripse

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation plus the ablations called out in DESIGN.md §5. The figure
// benchmarks run the Smoke-scale workloads (the command-line tools run the
// same drivers at default/full scale); custom metrics report the quantities
// the paper plots — transistor-level simulations and the estimates —
// alongside wall-clock time.
//
//	go test -bench . -benchtime 1x
//
// Micro-benchmarks for the hot kernels (indicator evaluation, device model,
// mixture density, classifier) follow at the end.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"ecripse/internal/blockade"
	"ecripse/internal/core"
	"ecripse/internal/device"
	"ecripse/internal/experiments"
	"ecripse/internal/linalg"
	"ecripse/internal/montecarlo"
	"ecripse/internal/randx"
	"ecripse/internal/rtn"
	"ecripse/internal/service"
	"ecripse/internal/sram"
	"ecripse/internal/svm"
)

// BenchmarkTableIConditions renders the experimental-conditions table.
func BenchmarkTableIConditions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.TableI(io.Discard)
	}
}

// BenchmarkFig4ParticleTracking regenerates the particle-filter snapshots.
func BenchmarkFig4ParticleTracking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4(int64(i + 1))
		if len(r.Resampled) == 0 {
			b.Fatal("no particles")
		}
	}
}

// BenchmarkFig5Butterfly regenerates the butterfly curves and margins.
func BenchmarkFig5Butterfly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5()
		if r.DefectiveSNM >= 0 {
			b.Fatal("defective cell did not fail")
		}
	}
}

// BenchmarkFig6ProposedVsConventional runs the RDF-only convergence
// comparison and reports the simulation counts of both methods.
func BenchmarkFig6ProposedVsConventional(b *testing.B) {
	var propSims, convSims, speedup float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6(int64(i+1), experiments.Smoke)
		propSims += float64(r.Proposed.Estimate.Sims)
		convSims += float64(r.Conventional.Estimate.Sims)
		speedup += r.SpeedupAtMatchedError
	}
	n := float64(b.N)
	b.ReportMetric(propSims/n, "proposed-sims")
	b.ReportMetric(convSims/n, "conventional-sims")
	b.ReportMetric(speedup/n, "speedup-at-matched-err")
}

// BenchmarkFig7ProposedVsNaive runs the RTN-aware comparison at alpha=0.3.
func BenchmarkFig7ProposedVsNaive(b *testing.B) {
	var propSims, naiveSims float64
	for i := 0; i < b.N; i++ {
		r, _ := experiments.Fig7(int64(i+1), experiments.Smoke, 0.3, nil)
		propSims += float64(r.Proposed.Estimate.Sims)
		naiveSims += float64(r.Naive.Estimate.Sims)
	}
	n := float64(b.N)
	b.ReportMetric(propSims/n, "proposed-sims")
	b.ReportMetric(naiveSims/n, "naive-sims")
}

// BenchmarkFig8DutySweep runs the duty-ratio sweep and reports the paper's
// headline RTN/RDF ratio.
func BenchmarkFig8DutySweep(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8(int64(i+1), experiments.Smoke)
		ratio += r.WorstOverRDF
	}
	b.ReportMetric(ratio/float64(b.N), "rtn-over-rdf")
}

// BenchmarkSweepFig7 runs the paper's Fig. 7/8 duty-ratio grid as one
// planner-driven sweep and reports the total transistor-level simulation
// count. SWEEP_BENCH_MODE=cold|warm pins the planner mode while keeping the
// benchmark name stable, which is how CI produces two comparable documents
// and gates `benchjson diff -metric sims` on the warm/cold ratio; with the
// variable unset both modes run as sub-benchmarks for the local trajectory
// file. The warm chain re-derives nothing a neighbor already knows, so its
// sims figure must stay a small fraction of the cold one.
func BenchmarkSweepFig7(b *testing.B) {
	switch mode := os.Getenv("SWEEP_BENCH_MODE"); mode {
	case "cold":
		benchSweep(b, false)
	case "warm":
		benchSweep(b, true)
	case "":
		b.Run("cold", func(b *testing.B) { benchSweep(b, false) })
		b.Run("warm", func(b *testing.B) { benchSweep(b, true) })
	default:
		b.Fatalf("SWEEP_BENCH_MODE=%q (want cold, warm, or unset)", mode)
	}
}

func benchSweep(b *testing.B, warm bool) {
	var sims, saved float64
	for i := 0; i < b.N; i++ {
		spec := service.SweepSpec{
			Base:      service.JobSpec{RTN: true, Vdd: device.VddLow, Seed: int64(i + 1), N: 20000, M: 5},
			Alpha:     &service.Axis{From: 0, To: 1, Steps: 9},
			WarmStart: warm,
		}
		res, err := service.RunSweepLocal(context.Background(), spec, nil)
		if err != nil {
			b.Fatal(err)
		}
		sims += float64(res.TotalSims)
		saved += float64(res.SimsSaved)
	}
	n := float64(b.N)
	b.ReportMetric(sims/n, "sims")
	b.ReportMetric(saved/n, "sims-saved")
}

// --- Ablations (DESIGN.md §5) -------------------------------------------

func ablationRun(b *testing.B, opts core.Options) (sims float64, p float64) {
	b.Helper()
	cell := sram.NewCell(device.VddLow)
	var simsTotal, pTotal float64
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		res := core.RDFOnly(rng, cell, opts)
		simsTotal += float64(res.Estimate.Sims)
		pTotal += res.Estimate.P
	}
	return simsTotal / float64(b.N), pTotal / float64(b.N)
}

// BenchmarkAblationClassifier compares the blockade against full simulation.
func BenchmarkAblationClassifier(b *testing.B) {
	b.Run("with-classifier", func(b *testing.B) {
		sims, p := ablationRun(b, core.Options{NIS: 20000})
		b.ReportMetric(sims, "sims")
		b.ReportMetric(p, "pfail")
	})
	b.Run("no-classifier", func(b *testing.B) {
		sims, p := ablationRun(b, core.Options{NIS: 20000, NoClassifier: true})
		b.ReportMetric(sims, "sims")
		b.ReportMetric(p, "pfail")
	})
}

// BenchmarkAblationTwoStage compares the two-stage flow against the
// single-stage variant (no particle-filter refinement).
func BenchmarkAblationTwoStage(b *testing.B) {
	b.Run("two-stage", func(b *testing.B) {
		sims, p := ablationRun(b, core.Options{NIS: 20000, PFIters: 10})
		b.ReportMetric(sims, "sims")
		b.ReportMetric(p, "pfail")
	})
	b.Run("single-stage", func(b *testing.B) {
		sims, p := ablationRun(b, core.Options{NIS: 20000, PFIters: -1})
		b.ReportMetric(sims, "sims")
		b.ReportMetric(p, "pfail")
	})
}

// BenchmarkAblationMultiFilter compares the filter-ensemble sizes; a single
// filter risks collapsing onto one of the two failure lobes.
func BenchmarkAblationMultiFilter(b *testing.B) {
	for _, filters := range []int{1, 2, 4} {
		name := map[int]string{1: "filters-1", 2: "filters-2", 4: "filters-4"}[filters]
		b.Run(name, func(b *testing.B) {
			sims, p := ablationRun(b, core.Options{NIS: 20000, Filters: filters})
			b.ReportMetric(sims, "sims")
			b.ReportMetric(p, "pfail")
		})
	}
}

// BenchmarkAblationPolyDegree varies the classifier's polynomial degree
// (the paper uses 4).
func BenchmarkAblationPolyDegree(b *testing.B) {
	for _, deg := range []int{1, 2, 4} {
		name := map[int]string{1: "degree-1", 2: "degree-2", 4: "degree-4"}[deg]
		b.Run(name, func(b *testing.B) {
			sims, p := ablationRun(b, core.Options{NIS: 20000, PolyDegree: deg})
			b.ReportMetric(sims, "sims")
			b.ReportMetric(p, "pfail")
		})
	}
}

// BenchmarkAblationInitReuse measures the saving from sharing the boundary
// initialization across bias conditions (the Fig. 7(b) observation).
func BenchmarkAblationInitReuse(b *testing.B) {
	cell := sram.NewCell(device.VddLow)
	cfg := rtn.TableIConfig(cell)
	var first, second float64
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		eng := core.NewEngine(cell, nil, core.Options{NIS: 10000, M: 5})
		r1 := eng.Run(rng, rtn.NewSampler(cell, cfg, 0.3))
		r2 := eng.Run(rng, rtn.NewSampler(cell, cfg, 0.5))
		first += float64(r1.Estimate.Sims)
		second += float64(r2.Estimate.Sims)
	}
	n := float64(b.N)
	b.ReportMetric(first/n, "first-bias-sims")
	b.ReportMetric(second/n, "second-bias-sims")
}

// BenchmarkEngineParallelism runs the BenchmarkAblationClassifier-scale
// estimate (NIS=20000 at the low supply) at several intra-job worker counts.
// The estimates are bit-identical across sub-benchmarks (asserted by
// TestRegressParallelismDeterminism); this benchmark records the wall-clock
// speedup the deterministic parallel path buys on the host. On a single-core
// runner the variants tie; the trajectory file makes multi-core gains
// visible over time.
func BenchmarkEngineParallelism(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			sims, p := ablationRun(b, core.Options{NIS: 20000, Parallelism: workers})
			b.ReportMetric(sims, "sims")
			b.ReportMetric(p, "pfail")
		})
	}
}

// --- Multi-core scaling (pipelined vs staged stage-2) -------------------

// execPathOpts pins the stage-2 execution path from ECRIPSE_EXEC_PATH
// ("staged" forces the barrier-staged loop, "pipelined" or unset keeps the
// default double-buffered pipeline) while leaving the benchmark name
// unchanged — so `make bench-scaling` records two comparable documents and
// benchjson diff pairs them by (name, procs). Estimates are bit-identical
// either way; only wall-clock may differ.
func execPathOpts(b *testing.B, opts core.Options) core.Options {
	b.Helper()
	switch mode := os.Getenv("ECRIPSE_EXEC_PATH"); mode {
	case "staged":
		opts.NoPipeline = true
	case "pipelined", "":
	default:
		b.Fatalf("ECRIPSE_EXEC_PATH=%q (want staged, pipelined, or unset)", mode)
	}
	return opts
}

// BenchmarkFig7Scaling runs the Fig. 7 workload — the RTN-aware read-failure
// estimate at alpha=0.3 — with intra-job parallelism tied to GOMAXPROCS, so
// `-cpu 1,2,4,8` sweeps the worker count and the ns/op trajectory shows how
// far the stage-2 loop scales. The lane sub-benchmarks vary the lockstep
// kernel width the settlement barriers solve at.
func BenchmarkFig7Scaling(b *testing.B) {
	cell := sram.NewCell(device.VddLow)
	cfg := rtn.TableIConfig(cell)
	for _, lanes := range []int{64, 256} {
		b.Run(fmt.Sprintf("lanes-%d", lanes), func(b *testing.B) {
			opts := execPathOpts(b, core.Options{
				NIS: 10000, M: 5, BatchLanes: lanes,
				Parallelism: runtime.GOMAXPROCS(0),
			})
			var sims, p float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i + 1)))
				res := core.NewEngine(cell, nil, opts).Run(rng, rtn.NewSampler(cell, cfg, 0.3))
				sims += float64(res.Estimate.Sims)
				p += res.Estimate.P
			}
			n := float64(b.N)
			b.ReportMetric(sims/n, "sims")
			b.ReportMetric(p/n, "pfail")
		})
	}
}

// BenchmarkFig8Scaling runs a three-point Fig. 8 duty-ratio slice on one
// engine (boundary init shared, stage 2 re-run per bias point), the
// sweep-shaped workload whose stage-2 loops dominate wall time. Parallelism
// follows GOMAXPROCS exactly as in BenchmarkFig7Scaling.
func BenchmarkFig8Scaling(b *testing.B) {
	cell := sram.NewCell(device.VddLow)
	cfg := rtn.TableIConfig(cell)
	opts := execPathOpts(b, core.Options{
		NIS: 6000, M: 5, Parallelism: runtime.GOMAXPROCS(0),
	})
	alphas := []float64{0.1, 0.3, 0.5}
	var sims float64
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		for _, pt := range core.DutySweep(rng, cell, cfg, alphas, opts) {
			sims += float64(pt.Result.Estimate.Sims)
		}
	}
	b.ReportMetric(sims/float64(b.N), "sims")
}

// --- Hot-kernel micro-benchmarks ----------------------------------------

// BenchmarkIndicatorEvaluation is one transistor-level simulation: the read
// noise margin of a shifted cell at estimator settings.
func BenchmarkIndicatorEvaluation(b *testing.B) {
	cell := sram.NewCell(device.VddNominal)
	opt := &sram.SNMOptions{GridN: 24, BisectIter: 24}
	sh := sram.Shifts{0.01, -0.01, 0.02, 0, -0.01, 0.015}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cell.Fails(sh, opt)
	}
}

// BenchmarkDeviceIds is a single compact-model current evaluation.
func BenchmarkDeviceIds(b *testing.B) {
	d := device.NewDevice(device.PTM16HPNMOS(), 30e-9, 16e-9)
	b.ReportAllocs()
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += d.Ids(0.7, 0.35, 0, 0)
	}
	_ = s
}

// BenchmarkGMMLogPDF evaluates the 600-component mixture density used by
// the stage-2 proposal.
func BenchmarkGMMLogPDF(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	means := make([]linalg.Vector, 600)
	weights := make([]float64, 600)
	for i := range means {
		means[i] = randx.NormalVector(rng, 6).Scale(4)
		weights[i] = rng.Float64()
	}
	g := &montecarlo.GMM{Means: means, Sigma: linalg.Vector{0.5, 0.5, 0.5, 0.5, 0.5, 0.5}, Weights: weights}
	x := randx.NormalVector(rng, 6).Scale(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.LogPDF(x)
	}
}

// BenchmarkClassifierPredict is one blockade query: degree-4 polynomial
// transform of a 6-D point plus the linear score.
func BenchmarkClassifierPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pf := svm.NewPolyFeatures(6, 4, 0)
	c := svm.NewClassifier(pf, 0)
	xs := make([]linalg.Vector, 200)
	ys := make([]bool, 200)
	for i := range xs {
		xs[i] = randx.NormalVector(rng, 6).Scale(4)
		ys[i] = xs[i].Norm() > 4
	}
	c.Train(rng, xs, ys, 5)
	x := randx.NormalVector(rng, 6).Scale(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Predict(x)
	}
}

// BenchmarkPolyScore is the compiled blockade query: the same degree-4
// transform and linear score as ClassifierPredict, through the compiled
// incremental-product kernel (bit-identical scores).
func BenchmarkPolyScore(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pf := svm.NewPolyFeatures(6, 4, 0)
	c := svm.NewClassifier(pf, 0)
	xs := make([]linalg.Vector, 200)
	ys := make([]bool, 200)
	for i := range xs {
		xs[i] = randx.NormalVector(rng, 6).Scale(4)
		ys[i] = xs[i].Norm() > 4
	}
	c.Train(rng, xs, ys, 5)
	s := c.Compile()
	x := randx.NormalVector(rng, 6).Scale(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Score(x)
	}
}

// BenchmarkPolyScoreBatch is the SoA batch-scoring path used at the
// estimators' 256-sample batch barriers; ns/op is per sample.
func BenchmarkPolyScoreBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pf := svm.NewPolyFeatures(6, 4, 0)
	c := svm.NewClassifier(pf, 0)
	xs := make([]linalg.Vector, 200)
	ys := make([]bool, 200)
	for i := range xs {
		xs[i] = randx.NormalVector(rng, 6).Scale(4)
		ys[i] = xs[i].Norm() > 4
	}
	c.Train(rng, xs, ys, 5)
	s := c.Compile()
	const batch = 256
	probe := make([]linalg.Vector, batch)
	for i := range probe {
		probe[i] = randx.NormalVector(rng, 6).Scale(4)
	}
	out := make([]float64, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		s.ScoreBatch(probe, out)
	}
}

// BenchmarkNoiseMargin is one full Seevinck margin extraction on the
// fast indicator grid (two warm-started VTC sweeps plus the rotation).
func BenchmarkNoiseMargin(b *testing.B) {
	cell := sram.NewCell(device.VddNominal)
	opt := &sram.SNMOptions{GridN: 24, BisectIter: 24}
	sh := sram.Shifts{0.01, -0.01, 0.02, 0, -0.01, 0.015}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cell.NoiseMargin(sh, opt)
	}
}

// BenchmarkPoissonSampler draws the eq.-(10) trap counts.
func BenchmarkPoissonSampler(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	s := 0
	for i := 0; i < b.N; i++ {
		s += randx.Poisson(rng, 1.92)
	}
	_ = s
}

// BenchmarkRTNSample draws one full per-cell RTN shift vector.
func BenchmarkRTNSample(b *testing.B) {
	cell := sram.NewCell(device.VddNominal)
	sampler := rtn.NewSampler(cell, rtn.TableIConfig(cell), 0.3)
	rng := rand.New(rand.NewSource(4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sampler.Sample(rng)
	}
}

// BenchmarkBaselineStatisticalBlockade runs the reference-[12]-style
// blockade on the 0.5 V read-failure problem, for comparison with
// BenchmarkAblationClassifier (ECRIPSE's importance-sampling blockade).
func BenchmarkBaselineStatisticalBlockade(b *testing.B) {
	cell := sram.NewCell(device.VddLow)
	sigma := cell.SigmaVth()
	opt := &sram.SNMOptions{GridN: 24, BisectIter: 24}
	var sims, p float64
	for i := 0; i < b.N; i++ {
		var c montecarlo.Counter
		fails := func(x linalg.Vector) bool {
			c.Add(1)
			var sh sram.Shifts
			for j := range sh {
				sh[j] = x[j] * sigma[j]
			}
			return cell.Fails(sh, opt)
		}
		rng := rand.New(rand.NewSource(int64(i + 1)))
		res := blockade.Estimate(rng, sram.NumTransistors, fails, &c, 20000, &blockade.Options{TrainN: 1500})
		sims += float64(res.Estimate.Sims)
		p += res.Estimate.P
	}
	n := float64(b.N)
	b.ReportMetric(sims/n, "sims")
	b.ReportMetric(p/n, "pfail")
}

// BenchmarkBaselineSubsetSimulation runs the Au-Beck subset-simulation
// baseline on the 0.5 V read-failure problem.
func BenchmarkBaselineSubsetSimulation(b *testing.B) {
	cell := sram.NewCell(device.VddLow)
	var sims, p float64
	for i := 0; i < b.N; i++ {
		est := SubsetSimulation(cell, int64(i+1), 1200)
		sims += float64(est.Sims)
		p += est.P
	}
	n := float64(b.N)
	b.ReportMetric(sims/n, "sims")
	b.ReportMetric(p/n, "pfail")
}
