package ecripse_test

import (
	"fmt"

	"ecripse"
)

// The basic flow: build the Table I cell, estimate the RDF-only failure
// probability, then add RTN at a duty ratio.
func Example() {
	cell := ecripse.NewCell(ecripse.VddLow)
	est := ecripse.New(cell, ecripse.Options{NIS: 60000})

	rdf := est.FailureProbability(1)
	cfg := ecripse.TableIRTN(cell)
	withRTN := est.FailureProbabilityRTN(1, cfg, 0.3)

	fmt.Printf("RTN worsens Pfail: %v\n", withRTN.Estimate.P > rdf.Estimate.P)
	fmt.Printf("simulations stayed below 10%% of samples: %v\n",
		est.Simulations() < int64(2*60000/10))
	// Output:
	// RTN worsens Pfail: true
	// simulations stayed below 10% of samples: true
}

// Static cell analyses need no estimator: margins come straight from the
// butterfly machinery.
func ExampleCell_margins() {
	cell := ecripse.NewCell(ecripse.VddNominal)
	var nominal ecripse.Shifts

	read := cell.ReadSNM(nominal, nil)
	hold := cell.HoldSNM(nominal, nil)
	write := cell.WriteMargin(nominal, nil)
	fmt.Printf("hold > read: %v\n", hold > read)
	fmt.Printf("all margins positive: %v\n", read > 0 && hold > 0 && write > 0)
	// Output:
	// hold > read: true
	// all margins positive: true
}

// A deterministic mismatch pushes the cell over the read-failure boundary;
// the signed noise margin reports how far.
func ExampleCell_defective() {
	cell := ecripse.NewCell(ecripse.VddNominal)
	defective := ecripse.Shifts{}
	defective[ecripse.D1] = 0.35  // very weak driver
	defective[ecripse.A1] = -0.20 // very strong access

	res := cell.NoiseMargin(defective, nil)
	fmt.Printf("fails: %v\n", res.Fails())
	fmt.Printf("one eye collapsed: %v\n", res.Lobe1 < 0 && res.Lobe2 > 0)
	// Output:
	// fails: true
	// one eye collapsed: true
}

// The duty-ratio dependence of the paper's Fig. 8: the failure probability
// is worst when the cell always stores the same value.
func ExampleEstimator_DutySweep() {
	cell := ecripse.NewCell(ecripse.VddLow)
	est := ecripse.New(cell, ecripse.Options{NIS: 20000, M: 5})
	cfg := ecripse.TableIRTN(cell)

	pts := est.DutySweep(3, cfg, []float64{0, 0.5, 1})
	fmt.Printf("minimum at alpha=0.5: %v\n",
		pts[1].Result.Estimate.P < pts[0].Result.Estimate.P &&
			pts[1].Result.Estimate.P < pts[2].Result.Estimate.P)
	// Output:
	// minimum at alpha=0.5: true
}
