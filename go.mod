module ecripse

go 1.22
