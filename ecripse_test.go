package ecripse

import (
	"math"
	"testing"
)

func TestPublicQuickstartFlow(t *testing.T) {
	cell := NewCell(VddLow)
	est := New(cell, Options{NIS: 40000})
	res := est.FailureProbability(1)
	// Naive-MC reference at 0.5 V: ≈3.86e-3.
	if res.Estimate.P < 2.5e-3 || res.Estimate.P > 5.5e-3 {
		t.Fatalf("Pfail = %v", res.Estimate.P)
	}
	if est.Simulations() == 0 {
		t.Fatal("no simulations accounted")
	}
}

func TestPublicRTNWorseThanRDF(t *testing.T) {
	cell := NewCell(VddLow)
	est := New(cell, Options{NIS: 30000, M: 10})
	cfg := TableIRTN(cell)
	rdf := est.FailureProbability(2)
	withRTN := est.FailureProbabilityRTN(2, cfg, 0.3)
	if withRTN.Estimate.P <= rdf.Estimate.P {
		t.Fatalf("RTN %v not worse than RDF %v", withRTN.Estimate.P, rdf.Estimate.P)
	}
}

func TestPublicDutySweep(t *testing.T) {
	cell := NewCell(VddLow)
	est := New(cell, Options{NIS: 8000, M: 5})
	cfg := TableIRTN(cell)
	pts := est.DutySweep(3, cfg, []float64{0.2, 0.8})
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Result.Estimate.P <= 0 {
			t.Fatalf("alpha %v: zero estimate", p.Alpha)
		}
	}
}

func TestPublicNaiveMC(t *testing.T) {
	cell := NewCell(VddLow)
	cfg := TableIRTN(cell)
	series, est := NaiveMC(cell, 4, 30000, cfg, -1)
	if est.Sims != 30000 {
		t.Fatalf("sims = %d", est.Sims)
	}
	if est.P < 1.5e-3 || est.P > 7e-3 {
		t.Fatalf("naive P = %v", est.P)
	}
	if len(series) == 0 {
		t.Fatal("no convergence series")
	}
}

func TestPublicConventional(t *testing.T) {
	cell := NewCell(VddLow)
	series, est := Conventional(cell, 5, 8000)
	if est.Sims < 8000 {
		t.Fatalf("conventional must simulate every sample: %d", est.Sims)
	}
	if est.P < 1.5e-3 || est.P > 8e-3 {
		t.Fatalf("conventional P = %v", est.P)
	}
	if len(series) == 0 {
		t.Fatal("no series")
	}
}

func TestPublicCellSurface(t *testing.T) {
	cell := NewCell(VddNominal)
	var sh Shifts
	snm := cell.ReadSNM(sh, nil)
	if snm <= 0 {
		t.Fatalf("nominal cell SNM = %v", snm)
	}
	a, b := cell.Butterfly(sh, nil)
	if len(a.In) == 0 || len(b.In) == 0 {
		t.Fatal("butterfly curves empty")
	}
	if n := len(cell.SigmaVth()); n != NumTransistors {
		t.Fatalf("sigma dim = %d", n)
	}
}

func TestPublicRTNTrace(t *testing.T) {
	cell := NewCell(VddNominal)
	cfg := TableIRTN(cell)
	trace := RTNTraceForCell(cell, cfg, 6, D1, 0.5, 1e-3, 5000)
	if len(trace) != 5000 {
		t.Fatalf("trace length %d", len(trace))
	}
	for _, v := range trace {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("bad trace value %v", v)
		}
	}
}

func TestPublicTransistorIndices(t *testing.T) {
	if NumTransistors != 6 {
		t.Fatalf("NumTransistors = %d", NumTransistors)
	}
	seen := map[int]bool{L1: true, L2: true, D1: true, D2: true, A1: true, A2: true}
	if len(seen) != 6 {
		t.Fatal("transistor indices collide")
	}
}

func TestPublicStatisticalBlockade(t *testing.T) {
	cell := NewCell(VddLow)
	series, est := StatisticalBlockade(cell, 9, 30000)
	if len(series) == 0 {
		t.Fatal("no series")
	}
	// One-sided bias: may undercount but never exceed ~truth (3.9e-3).
	if est.P > 6e-3 {
		t.Fatalf("blockade overestimated: %v", est.P)
	}
	if est.P <= 0 {
		t.Fatal("blockade found nothing")
	}
	if est.Sims >= 30000+2000 {
		t.Fatal("blockade did not block anything")
	}
}

func TestPublicSubsetSimulation(t *testing.T) {
	cell := NewCell(VddLow)
	est := SubsetSimulation(cell, 11, 1200)
	const want = 3.9e-3 // naive-MC reference
	if est.P < want*0.5 || est.P > want*2 {
		t.Fatalf("subset P = %v want ~%v", est.P, want)
	}
	if est.Sims <= 0 || est.Sims > 20000 {
		t.Fatalf("sims = %d", est.Sims)
	}
}

func TestPublicCellSpec(t *testing.T) {
	// A high-beta cell via the public spec API: better read, worse sigma
	// asymmetry handled internally.
	base := NewCell(VddNominal)
	highBeta := NewCellFrom(CellSpec{DriverW: 60e-9})
	var sh Shifts
	if highBeta.ReadSNM(sh, nil) <= base.ReadSNM(sh, nil) {
		t.Fatal("beta upsizing had no effect through the public API")
	}
}

func TestPublicSeedConsistency(t *testing.T) {
	// Independent seeds must give mutually consistent estimates.
	cell := NewCell(VddLow)
	var ps, cis []float64
	for seed := int64(1); seed <= 3; seed++ {
		est := New(cell, Options{NIS: 40000})
		r := est.FailureProbability(seed)
		ps = append(ps, r.Estimate.P)
		cis = append(cis, r.Estimate.CI95)
	}
	for i := 0; i < len(ps); i++ {
		for j := i + 1; j < len(ps); j++ {
			diff := ps[i] - ps[j]
			if diff < 0 {
				diff = -diff
			}
			if diff > 4*(cis[i]+cis[j]) {
				t.Fatalf("seeds disagree: %v vs %v (CIs %v, %v)", ps[i], ps[j], cis[i], cis[j])
			}
		}
	}
}

func TestPublicNewCellAt(t *testing.T) {
	hot := NewCellAt(VddNominal, 400)
	cold := NewCellAt(VddNominal, 250)
	var sh Shifts
	if hot.ReadSNM(sh, nil) >= cold.ReadSNM(sh, nil) {
		t.Fatal("temperature had no effect through the public API")
	}
}
