# Convenience targets for the ecripse reproduction.

GO ?= go

.PHONY: all build test race bench figures figures-full clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/montecarlo/ ./internal/sram/ ./internal/spice/

# One benchmark per table/figure of the paper plus ablations (smoke scale).
bench:
	$(GO) test -bench . -benchmem -benchtime 1x -run XXX .

# Regenerate the paper's evaluation at default scale into results/.
figures:
	mkdir -p results
	$(GO) run ./cmd/ecripse -conditions                      | tee results/table1.txt
	$(GO) run ./cmd/particles                                 > results/fig4.csv
	$(GO) run ./cmd/butterfly                                 > results/fig5_nominal.csv
	$(GO) run ./cmd/butterfly -shift D1=0.35 -shift A1=-0.2   > results/fig5_defective.csv
	$(GO) run ./cmd/compare -fig 6                            > results/fig6.csv
	$(GO) run ./cmd/compare -fig 7 -both                      > results/fig7.csv
	$(GO) run ./cmd/dutysweep                                 > results/fig8.csv
	$(GO) run ./cmd/methods -vdd 0.5                          | tee results/methods.txt

# Paper-scale runs (minutes).
figures-full:
	mkdir -p results
	$(GO) run ./cmd/compare -fig 6 -scale full                > results/fig6_full.csv
	$(GO) run ./cmd/compare -fig 7 -both -scale full          > results/fig7_full.csv
	$(GO) run ./cmd/dutysweep -scale full                     > results/fig8_full.csv

clean:
	rm -f test_output.txt bench_output.txt
