# Convenience targets for the ecripse reproduction.

GO ?= go

.PHONY: all build test race lint-metrics bench bench-batch bench-diff bench-smoke bench-sweep bench-scaling figures figures-full clean

# Fig-6/7/8 end-to-end benchmarks plus the hot kernels and the engine
# parallelism scaling sweep.
BENCH_PATTERN ?= Fig6|Fig7|Fig8|EngineParallelism|IndicatorEvaluation|DeviceIds|GMMLogPDF|ClassifierPredict|PolyScore|NoiseMargin|PoissonSampler|RTNSample

# Baseline document that bench-diff compares against (the oldest committed
# trajectory point by default; override on the command line).
BENCH_BASELINE ?= results/bench/BENCH_2026-08-06.json

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/montecarlo/ ./internal/sram/ ./internal/spice/

# Blocking Prometheus-exposition lint: every text exposition the repo
# serves — the shard's /metrics, the router's cluster roll-up, and both
# with populated watchdog (ecripsed_health_violations_total) families —
# must pass the promtool-style in-test linter.
lint-metrics:
	$(GO) test -count=1 -run 'TestPromWriterRendering|TestLintPromCatchesViolations' ./internal/obsv/
	$(GO) test -count=1 -run 'TestMetricsPrometheusLint|TestWatchdogFlagsDegeneratePF' ./internal/service/
	$(GO) test -count=1 -run 'TestRouterPrometheusRollup|TestRouterHealthRollup' ./internal/cluster/

# Record a benchmark baseline: 5 repetitions of the figure and hot-kernel
# benchmarks, converted to results/bench/BENCH_<date>.json so future PRs
# can diff ns/op, sims and allocs against this trajectory.
bench:
	mkdir -p results/bench
	$(GO) test -bench '$(BENCH_PATTERN)' -benchmem -benchtime 1x -count 5 -run XXX -timeout 60m . \
		| tee results/bench/bench_raw.txt
	out=results/bench/BENCH_$$(date -u +%F).json; \
	if [ -e $$out ]; then out=results/bench/BENCH_$$(date -u +%F)-$$(date -u +%H%M%S).json; fi; \
	$(GO) run ./cmd/benchjson -o $$out < results/bench/bench_raw.txt

# Scalar-vs-lockstep indicator throughput: BenchmarkNoiseMarginBatch solves
# the same 256 samples per-sample and through the batch VTC kernel at lane
# widths 64/128/256 (margins/s), recorded as results/bench/BATCH_<date>.json
# so lane-width regressions show up in the trajectory.
bench-batch:
	mkdir -p results/bench
	$(GO) test -bench NoiseMarginBatch -benchmem -benchtime 2s -count 3 -run XXX -timeout 30m ./internal/sram/ \
		| tee results/bench/batch_raw.txt
	out=results/bench/BATCH_$$(date -u +%F).json; \
	if [ -e $$out ]; then out=results/bench/BATCH_$$(date -u +%F)-$$(date -u +%H%M%S).json; fi; \
	$(GO) run ./cmd/benchjson -o $$out < results/bench/batch_raw.txt

# Run the suite once and diff it against the committed baseline
# ($(BENCH_BASELINE)); prints per-benchmark ratios and the geomean.
bench-diff:
	mkdir -p results/bench
	$(GO) test -bench '$(BENCH_PATTERN)' -benchmem -benchtime 1x -count 3 -run XXX -timeout 60m . \
		> results/bench/bench_new_raw.txt
	$(GO) run ./cmd/benchjson -o results/bench/bench_new.json < results/bench/bench_new_raw.txt
	$(GO) run ./cmd/benchjson diff -threshold 1.15 $(BENCH_BASELINE) results/bench/bench_new.json

# Quick single-pass run of every benchmark (no recording) — the CI smoke.
bench-smoke:
	$(GO) test -bench . -benchmem -benchtime 1x -short -run XXX .

# Warm-vs-cold sweep comparison: record both modes of BenchmarkSweepFig7 as
# results/bench/SWEEP_<date>_{cold,warm}.json and print the sims ratio. The
# same diff (threshold 0.5, i.e. warm must at least halve the simulation
# count) gates CI.
bench-sweep:
	mkdir -p results/bench
	SWEEP_BENCH_MODE=cold $(GO) test -bench SweepFig7 -benchtime 1x -count 3 -run XXX -timeout 30m . \
		| tee results/bench/sweep_cold_raw.txt
	SWEEP_BENCH_MODE=warm $(GO) test -bench SweepFig7 -benchtime 1x -count 3 -run XXX -timeout 30m . \
		| tee results/bench/sweep_warm_raw.txt
	$(GO) run ./cmd/benchjson -o results/bench/SWEEP_$$(date -u +%F)_cold.json < results/bench/sweep_cold_raw.txt
	$(GO) run ./cmd/benchjson -o results/bench/SWEEP_$$(date -u +%F)_warm.json < results/bench/sweep_warm_raw.txt
	$(GO) run ./cmd/benchjson diff -fail -threshold 0.5 -metric sims -match Sweep \
		results/bench/SWEEP_$$(date -u +%F)_cold.json results/bench/SWEEP_$$(date -u +%F)_warm.json

# Multi-core scaling trajectory: the Fig. 7/8 scaling workloads on both
# stage-2 execution paths (ECRIPSE_EXEC_PATH pins the path, the benchmark
# names stay identical) at GOMAXPROCS 1/2/4/8, recorded as
# results/bench/SCALING_<date>_{staged,pipelined}.json. The diff prints the
# pipelined/staged wall-clock ratio per (benchmark, procs) pair; CI runs
# the same comparison as a blocking gate at -cpu 4 (threshold 0.9, i.e.
# pipelining must buy at least 10% at four cores). On a single-core host
# the paths tie — the trajectory file records that honestly.
bench-scaling:
	mkdir -p results/bench
	ECRIPSE_EXEC_PATH=staged $(GO) test -bench 'Fig7Scaling|Fig8Scaling' -cpu 1,2,4,8 -benchtime 1x -count 3 -run XXX -timeout 60m . \
		| tee results/bench/scaling_staged_raw.txt
	ECRIPSE_EXEC_PATH=pipelined $(GO) test -bench 'Fig7Scaling|Fig8Scaling' -cpu 1,2,4,8 -benchtime 1x -count 3 -run XXX -timeout 60m . \
		| tee results/bench/scaling_pipelined_raw.txt
	$(GO) run ./cmd/benchjson -o results/bench/SCALING_$$(date -u +%F)_staged.json < results/bench/scaling_staged_raw.txt
	$(GO) run ./cmd/benchjson -o results/bench/SCALING_$$(date -u +%F)_pipelined.json < results/bench/scaling_pipelined_raw.txt
	$(GO) run ./cmd/benchjson diff -threshold 0.9 -match 'Fig7Scaling|Fig8Scaling' \
		results/bench/SCALING_$$(date -u +%F)_staged.json results/bench/SCALING_$$(date -u +%F)_pipelined.json

# Regenerate the paper's evaluation at default scale into results/.
figures:
	mkdir -p results
	$(GO) run ./cmd/ecripse -conditions                      | tee results/table1.txt
	$(GO) run ./cmd/particles                                 > results/fig4.csv
	$(GO) run ./cmd/butterfly                                 > results/fig5_nominal.csv
	$(GO) run ./cmd/butterfly -shift D1=0.35 -shift A1=-0.2   > results/fig5_defective.csv
	$(GO) run ./cmd/compare -fig 6                            > results/fig6.csv
	$(GO) run ./cmd/compare -fig 7 -both                      > results/fig7.csv
	$(GO) run ./cmd/dutysweep                                 > results/fig8.csv
	$(GO) run ./cmd/methods -vdd 0.5                          | tee results/methods.txt

# Paper-scale runs (minutes).
figures-full:
	mkdir -p results
	$(GO) run ./cmd/compare -fig 6 -scale full                > results/fig6_full.csv
	$(GO) run ./cmd/compare -fig 7 -both -scale full          > results/fig7_full.csv
	$(GO) run ./cmd/dutysweep -scale full                     > results/fig8_full.csv

clean:
	rm -f test_output.txt bench_output.txt results/bench/bench_raw.txt \
		results/bench/bench_new_raw.txt results/bench/bench_new.json \
		results/bench/batch_raw.txt \
		results/bench/sweep_cold_raw.txt results/bench/sweep_warm_raw.txt \
		results/bench/scaling_staged_raw.txt results/bench/scaling_pipelined_raw.txt
