package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHaltonFirstElements(t *testing.T) {
	h := NewHalton(2)
	// Base 2: 1/2, 1/4, 3/4, ... Base 3: 1/3, 2/3, 1/9, ...
	want := [][2]float64{{0.5, 1.0 / 3}, {0.25, 2.0 / 3}, {0.75, 1.0 / 9}}
	for i, w := range want {
		got := h.Next()
		if math.Abs(got[0]-w[0]) > 1e-15 || math.Abs(got[1]-w[1]) > 1e-15 {
			t.Fatalf("element %d = %v want %v", i, got, w)
		}
	}
}

func TestHaltonInUnitCube(t *testing.T) {
	h := NewHalton(6)
	for i := 0; i < 5000; i++ {
		p := h.Next()
		for d, x := range p {
			if x <= 0 || x >= 1 {
				t.Fatalf("element %d dim %d out of (0,1): %v", i, d, x)
			}
		}
	}
}

func TestHaltonUniformity(t *testing.T) {
	// Low-discrepancy: bin counts in 10 equal bins must be nearly exact.
	h := NewHalton(1)
	const n = 10000
	var bins [10]int
	for i := 0; i < n; i++ {
		bins[int(h.Next()[0]*10)]++
	}
	for b, c := range bins {
		if c < n/10-50 || c > n/10+50 {
			t.Fatalf("bin %d count %d, want ~%d", b, c, n/10)
		}
	}
}

func TestHaltonDimensionPanics(t *testing.T) {
	for _, d := range []int{0, 13} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("dim %d: expected panic", d)
				}
			}()
			NewHalton(d)
		}()
	}
}

func TestInvNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.841344746068543, 1},
		{0.158655253931457, -1},
		{0.977249868051821, 2},
		{0.999968328758167, 4},
		{1.33e-4, -3.646342}, // the paper's failure probability as a z-score
	}
	for _, tc := range cases {
		got := InvNormalCDF(tc.p)
		if math.Abs(got-tc.want) > 2e-4 {
			t.Fatalf("InvNormalCDF(%v) = %v want %v", tc.p, got, tc.want)
		}
	}
}

func TestInvNormalCDFEdges(t *testing.T) {
	if !math.IsInf(InvNormalCDF(0), -1) || !math.IsInf(InvNormalCDF(1), 1) {
		t.Fatal("edges not ±Inf")
	}
	if !math.IsNaN(InvNormalCDF(-0.1)) || !math.IsNaN(InvNormalCDF(1.1)) {
		t.Fatal("out-of-range not NaN")
	}
}

// Property: InvNormalCDF inverts the forward CDF to high accuracy.
func TestPropertyInvNormalRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		p := (float64(raw) + 0.5) / 65536 // (0, 1)
		x := InvNormalCDF(p)
		back := 0.5 * math.Erfc(-x/math.Sqrt2)
		return math.Abs(back-p) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNextNormalMoments(t *testing.T) {
	h := NewHalton(3)
	const n = 20000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		for _, x := range h.NextNormal() {
			sum += x
			sum2 += x * x
		}
	}
	mean := sum / (3 * n)
	vr := sum2/(3*n) - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(vr-1) > 0.02 {
		t.Fatalf("var = %v", vr)
	}
}
