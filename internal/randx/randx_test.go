package randx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ecripse/internal/linalg"
)

func TestNormalVectorMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 100000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := NormalVector(rng, 3)
		for _, x := range v {
			sum += x
			sum2 += x * x
		}
	}
	mean := sum / (3 * n)
	vr := sum2/(3*n) - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(vr-1) > 0.02 {
		t.Fatalf("var = %v", vr)
	}
}

func TestSphereDirectionUnitNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		d := 1 + rng.Intn(8)
		v := SphereDirection(rng, d)
		if math.Abs(v.Norm()-1) > 1e-12 {
			t.Fatalf("norm = %v for d=%d", v.Norm(), d)
		}
	}
}

func TestSphereDirectionIsotropy(t *testing.T) {
	// Mean direction of many draws must vanish.
	rng := rand.New(rand.NewSource(3))
	const n = 50000
	mean := linalg.NewVector(4)
	for i := 0; i < n; i++ {
		mean.AddInPlace(SphereDirection(rng, 4))
	}
	for d, x := range mean {
		if math.Abs(x/n) > 0.01 {
			t.Fatalf("dimension %d mean = %v", d, x/n)
		}
	}
}

func TestStdNormalPDFOrigin(t *testing.T) {
	for d := 1; d <= 6; d++ {
		x := linalg.NewVector(d)
		want := math.Pow(2*math.Pi, -float64(d)/2)
		if got := StdNormalPDF(x); math.Abs(got-want) > 1e-12*want {
			t.Fatalf("d=%d: pdf(0) = %v want %v", d, got, want)
		}
	}
}

func TestNormalLogPDFMatchesStdAtUnitSigma(t *testing.T) {
	x := linalg.Vector{0.3, -1.2, 2.0}
	mu := linalg.NewVector(3)
	sigma := linalg.Vector{1, 1, 1}
	if got, want := NormalLogPDF(x, mu, sigma), StdNormalLogPDF(x); math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestNormalLogPDFScaling(t *testing.T) {
	// N(x|mu, s²) = N((x-mu)/s | 0,1)/s per dimension.
	x := linalg.Vector{0.5}
	mu := linalg.Vector{0.1}
	sigma := linalg.Vector{2.5}
	z := (x[0] - mu[0]) / sigma[0]
	want := StdNormalLogPDF(linalg.Vector{z}) - math.Log(sigma[0])
	if got := NormalLogPDF(x, mu, sigma); math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func testPoissonMoments(t *testing.T, lambda float64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(lambda*1000) + 7))
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		k := float64(Poisson(rng, lambda))
		sum += k
		sum2 += k * k
	}
	mean := sum / float64(n)
	vr := sum2/float64(n) - mean*mean
	tol := 5 * math.Sqrt(lambda/float64(n)) // ~5 sigma of the sample mean
	if math.Abs(mean-lambda) > tol+0.01 {
		t.Fatalf("lambda=%v: mean = %v (tol %v)", lambda, mean, tol)
	}
	if math.Abs(vr-lambda) > 10*tol*math.Sqrt(lambda)+0.05 {
		t.Fatalf("lambda=%v: var = %v", lambda, vr)
	}
}

func TestPoissonSmallLambda(t *testing.T)  { testPoissonMoments(t, 1.92, 200000) }
func TestPoissonMediumLambda(t *testing.T) { testPoissonMoments(t, 12.0, 100000) }
func TestPoissonLargeLambda(t *testing.T)  { testPoissonMoments(t, 120.0, 100000) }

func TestPoissonEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if Poisson(rng, 0) != 0 {
		t.Fatal("Poisson(0) != 0")
	}
	if Poisson(rng, -3) != 0 {
		t.Fatal("Poisson(-3) != 0")
	}
}

func TestPoissonNeverNegative(t *testing.T) {
	f := func(seed int64, l uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		lambda := float64(l) / 2.0 // 0 .. 127.5 crosses both samplers
		for i := 0; i < 100; i++ {
			if Poisson(rng, lambda) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCategoricalDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[Categorical(rng, weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index drawn %d times", counts[1])
	}
	frac0 := float64(counts[0]) / n
	if math.Abs(frac0-0.25) > 0.01 {
		t.Fatalf("P(0) = %v want 0.25", frac0)
	}
}

func TestCategoricalAllZeroUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[Categorical(rng, []float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)/40000-0.25) > 0.02 {
			t.Fatalf("index %d count %d not uniform", i, c)
		}
	}
}

func TestCategoricalNegativeTreatedAsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 10000; i++ {
		if Categorical(rng, []float64{-5, 1}) == 0 {
			t.Fatal("negative-weight index drawn")
		}
	}
}

func TestSystematicResampleProportions(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	weights := []float64{1, 2, 3, 4}
	counts := make([]int, 4)
	const n = 10000
	idx := SystematicResample(rng, weights, n)
	if len(idx) != n {
		t.Fatalf("len = %d", len(idx))
	}
	for _, i := range idx {
		counts[i]++
	}
	for i, w := range weights {
		want := w / 10 * n
		if math.Abs(float64(counts[i])-want) > n*0.02 {
			t.Fatalf("index %d: count %d want ~%v", i, counts[i], want)
		}
	}
}

func TestSystematicResampleLowVariance(t *testing.T) {
	// With equal weights and n == len(weights), systematic resampling must
	// return every index exactly once.
	rng := rand.New(rand.NewSource(10))
	weights := []float64{1, 1, 1, 1, 1}
	for trial := 0; trial < 100; trial++ {
		idx := SystematicResample(rng, weights, 5)
		seen := make(map[int]bool)
		for _, i := range idx {
			seen[i] = true
		}
		if len(seen) != 5 {
			t.Fatalf("trial %d: got %v", trial, idx)
		}
	}
}

func TestSystematicResampleDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	if got := SystematicResample(rng, nil, 5); got != nil {
		t.Fatalf("nil weights: %v", got)
	}
	if got := SystematicResample(rng, []float64{1}, 0); got != nil {
		t.Fatalf("n=0: %v", got)
	}
	idx := SystematicResample(rng, []float64{0, 0}, 10)
	if len(idx) != 10 {
		t.Fatalf("all-zero weights: len %d", len(idx))
	}
	for _, i := range idx {
		if i < 0 || i > 1 {
			t.Fatalf("index out of range: %d", i)
		}
	}
}

// Property: resampled indices are always in range and counts sum to n.
func TestPropertySystematicResampleInRange(t *testing.T) {
	f := func(seed int64, raw []float64, n uint8) bool {
		if len(raw) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		w := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			w[i] = math.Abs(math.Mod(x, 100))
		}
		k := int(n%50) + 1
		idx := SystematicResample(rng, w, k)
		if len(idx) != k {
			return false
		}
		for _, i := range idx {
			if i < 0 || i >= len(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
