package randx

import "math/rand"

// This file implements the splittable counter-based PRNG that underpins the
// deterministic parallel estimators: every Monte Carlo draw, particle-filter
// candidate and boundary-search direction is assigned a global sample index,
// and Stream(seed, index) hands that index its own statistically independent
// substream. Workers can then evaluate disjoint index ranges in any order —
// the randomness each sample sees depends only on (seed, index), never on
// scheduling — so an estimate is bit-identical at any worker count. That
// invariant is what the service-layer result cache and the crash-recovery
// replay lean on.
//
// The generator is SplitMix64 (Steele, Lea, Flood — "Fast splittable
// pseudorandom number generators", OOPSLA 2014): a Weyl sequence advanced by
// the golden-ratio increment, pushed through a strong 64-bit finalizer. A
// substream is opened by hashing (seed, index) into a pseudo-random starting
// position of the 2^64-period master sequence; with the ~2^32 substreams and
// ~2^20 draws per substream this repository uses, the birthday bound on any
// two substreams overlapping is far below 2^-20.

// splitMixGamma is the golden-ratio Weyl increment of SplitMix64.
const splitMixGamma = 0x9E3779B97F4A7C15

// mix64 is the SplitMix64 output finalizer (a variant of the MurmurHash3
// fmix64 avalanche function with David Stafford's "Mix13" constants).
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// SplitMix is a SplitMix64 generator positioned on one (seed, index)
// substream. It implements rand.Source64, so wrapping it in rand.New gives
// access to the full math/rand distribution set (NormFloat64, Intn, Perm…).
//
// The zero value is a valid source (substream (0, 0)); use Init or Stream to
// position it. A SplitMix must not be shared between goroutines; the whole
// point is to give each unit of parallel work its own.
type SplitMix struct {
	state uint64
}

// Init positions the source at the start of substream (seed, index),
// discarding any previous state. Reusing one SplitMix across many indices
// (Init, draw, Init, draw…) is the allocation-free pattern for tight loops.
func (s *SplitMix) Init(seed int64, index uint64) {
	// Hash the seed and the index through independent mix rounds so that
	// neighbouring indices land at unrelated positions of the master Weyl
	// sequence (index*gamma alone would make stream k a one-step shift of
	// stream k-1, i.e. a total overlap).
	s.state = mix64(mix64(uint64(seed)) + mix64(index+splitMixGamma))
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *SplitMix) Uint64() uint64 {
	s.state += splitMixGamma
	return mix64(s.state)
}

// Int63 implements rand.Source.
func (s *SplitMix) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements rand.Source: it positions the source at substream (seed, 0).
func (s *SplitMix) Seed(seed int64) { s.Init(seed, 0) }

// Stream returns a *rand.Rand on substream (seed, index). Draws from
// distinct indices are statistically independent; draws from equal
// (seed, index) pairs are identical. One allocation per call — hot loops
// that open a stream per sample should use a Streams pool and re-position
// a per-worker source between samples instead.
func Stream(seed int64, index uint64) *rand.Rand {
	src := &SplitMix{}
	src.Init(seed, index)
	return rand.New(src)
}

// Streams is a fixed pool of per-worker substream generators sharing one
// seed. Worker w calls At(w, index) to re-position its generator on the
// index's substream without allocating; two workers may use the pool
// concurrently as long as each sticks to its own slot.
type Streams struct {
	seed int64
	srcs []SplitMix
	rngs []*rand.Rand
}

// NewStreams builds a pool of workers generators for the given seed.
func NewStreams(seed int64, workers int) *Streams {
	if workers < 1 {
		workers = 1
	}
	s := &Streams{
		seed: seed,
		srcs: make([]SplitMix, workers),
		rngs: make([]*rand.Rand, workers),
	}
	for w := range s.rngs {
		s.rngs[w] = rand.New(&s.srcs[w])
	}
	return s
}

// At positions worker w's generator at the start of substream
// (seed, index) and returns it. The returned *rand.Rand is owned by slot w
// and is only valid until the next At(w, ·) call.
func (s *Streams) At(w int, index uint64) *rand.Rand {
	s.srcs[w].Init(s.seed, index)
	return s.rngs[w]
}
