// Package randx supplies the random variates needed by the estimators:
// standard-normal vectors, Poisson counts (paper eq. (10)), uniform
// directions on the unit D-sphere (used to seed the failure-boundary search)
// and the standard-normal densities that appear in the importance-sampling
// weights.
//
// Every function takes an explicit *rand.Rand so that every experiment in
// this repository is reproducible from a seed; nothing touches the global
// math/rand state.
package randx

import (
	"math"
	"math/rand"

	"ecripse/internal/linalg"
)

// Log2Pi is log(2π), used by the Gaussian log densities.
const Log2Pi = 1.8378770664093454835606594728112353

// NormalVector fills a new D-dimensional vector with independent standard
// normal draws.
func NormalVector(rng *rand.Rand, d int) linalg.Vector {
	v := make(linalg.Vector, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// SphereDirection returns a uniformly distributed unit vector on the
// D-sphere, via normalizing a standard-normal draw. d must be >= 1.
func SphereDirection(rng *rand.Rand, d int) linalg.Vector {
	for {
		v := NormalVector(rng, d)
		if n := v.Norm(); n > 1e-12 {
			return v.Scale(1 / n)
		}
	}
}

// StdNormalLogPDF returns log N(x | 0, I) for a D-dimensional x.
func StdNormalLogPDF(x linalg.Vector) float64 {
	return -0.5*float64(len(x))*Log2Pi - 0.5*x.Norm2()
}

// StdNormalPDF returns N(x | 0, I) for a D-dimensional x.
func StdNormalPDF(x linalg.Vector) float64 {
	return math.Exp(StdNormalLogPDF(x))
}

// NormalLogPDF returns log N(x | mu, diag(sigma²)) where sigma holds the
// per-dimension standard deviations.
func NormalLogPDF(x, mu, sigma linalg.Vector) float64 {
	if len(x) != len(mu) || len(x) != len(sigma) {
		panic("randx: dimension mismatch in NormalLogPDF")
	}
	s := -0.5 * float64(len(x)) * Log2Pi
	for i := range x {
		sd := sigma[i]
		z := (x[i] - mu[i]) / sd
		s -= math.Log(sd) + 0.5*z*z
	}
	return s
}

// Poisson draws from a Poisson distribution with mean lambda.
//
// For small lambda it uses Knuth's multiplication method; for large lambda it
// uses the PTRS transformed-rejection sampler of Hörmann (1993), which is
// exact and O(1). lambda <= 0 always returns 0.
func Poisson(rng *rand.Rand, lambda float64) int {
	switch {
	case lambda <= 0:
		return 0
	case lambda < 30:
		return poissonKnuth(rng, lambda)
	default:
		return poissonPTRS(rng, lambda)
	}
}

func poissonKnuth(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// poissonPTRS implements W. Hörmann, "The transformed rejection method for
// generating Poisson random variables", Insurance: Mathematics and Economics
// 12 (1993). Valid for lambda >= 10; we use it from 30 up.
func poissonPTRS(rng *rand.Rand, lambda float64) int {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLambda := math.Log(lambda)
	for {
		u := rng.Float64() - 0.5
		v := rng.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logLambda-lambda-logGamma(k+1) {
			return int(k)
		}
	}
}

func logGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Categorical draws an index in [0, len(weights)) with probability
// proportional to weights[i]. Negative weights are treated as zero. If all
// weights are zero it returns a uniform draw.
func Categorical(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return rng.Intn(len(weights))
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w > 0 {
			acc += w
		}
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// SystematicResample returns n indices drawn by systematic (low-variance)
// resampling from the given weights: a single uniform offset partitions the
// cumulative weight into n equal strata. This is the resampler used by the
// particle filter (Section III-B step (4)).
func SystematicResample(rng *rand.Rand, weights []float64, n int) []int {
	m := len(weights)
	if m == 0 || n <= 0 {
		return nil
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	out := make([]int, n)
	if total <= 0 {
		for i := range out {
			out[i] = rng.Intn(m)
		}
		return out
	}
	step := total / float64(n)
	u := rng.Float64() * step
	acc := 0.0
	j := 0
	for i := 0; i < m && j < n; i++ {
		w := weights[i]
		if w > 0 {
			acc += w
		}
		for j < n && u <= acc {
			out[j] = i
			j++
			u += step
		}
	}
	for ; j < n; j++ { // numerical tail guard
		out[j] = m - 1
	}
	return out
}
