package randx

import (
	"math"
	"testing"
)

// TestStreamDeterminism: equal (seed, index) pairs must generate identical
// draws — the property the whole deterministic-parallelism design rests on.
func TestStreamDeterminism(t *testing.T) {
	for _, seed := range []int64{0, 1, -7, 1 << 40} {
		for _, idx := range []uint64{0, 1, 255, 1 << 33} {
			a, b := Stream(seed, idx), Stream(seed, idx)
			for k := 0; k < 64; k++ {
				if av, bv := a.Uint64(), b.Uint64(); av != bv {
					t.Fatalf("stream (%d,%d) diverged at draw %d: %x vs %x", seed, idx, k, av, bv)
				}
			}
		}
	}
}

// TestStreamDistinctness: different indices (and different seeds) must give
// different streams; in particular stream k must not be a shifted copy of
// stream k+1 (the classic counter-PRNG mistake).
func TestStreamDistinctness(t *testing.T) {
	const draws = 32
	seqs := map[uint64][]uint64{}
	for idx := uint64(0); idx < 64; idx++ {
		r := Stream(42, idx)
		s := make([]uint64, draws)
		for k := range s {
			s[k] = r.Uint64()
		}
		seqs[idx] = s
	}
	// No first draw collides, and no stream's tail equals another's head
	// (shift-by-one overlap).
	seen := map[uint64]uint64{}
	for idx, s := range seqs {
		if prev, dup := seen[s[0]]; dup {
			t.Fatalf("streams %d and %d share their first draw", prev, idx)
		}
		seen[s[0]] = idx
	}
	for idx := uint64(0); idx+1 < 64; idx++ {
		a, b := seqs[idx], seqs[idx+1]
		overlap := 0
		for k := 0; k+1 < draws; k++ {
			if a[k+1] == b[k] {
				overlap++
			}
		}
		if overlap > 0 {
			t.Fatalf("stream %d is a shifted copy of stream %d (%d overlapping draws)", idx+1, idx, overlap)
		}
	}

	if Stream(1, 0).Uint64() == Stream(2, 0).Uint64() {
		t.Fatal("different seeds produced the same stream 0")
	}
}

// TestStreamUniformity: pooled across many substreams, Float64 draws must
// look U(0,1) — mean 1/2, variance 1/12 — and NormFloat64 draws standard
// normal. Loose 5-sigma-ish bands; the point is catching a broken mixer,
// not certifying the generator.
func TestStreamUniformity(t *testing.T) {
	const streams, draws = 512, 64
	var n float64
	var sum, sum2 float64
	var nsum, nsum2 float64
	for idx := uint64(0); idx < streams; idx++ {
		r := Stream(7, idx)
		for k := 0; k < draws; k++ {
			u := r.Float64()
			if u < 0 || u >= 1 {
				t.Fatalf("Float64 out of range: %v", u)
			}
			sum += u
			sum2 += u * u
			g := r.NormFloat64()
			nsum += g
			nsum2 += g * g
			n++
		}
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Errorf("uniform variance %v, want ~%v", variance, 1.0/12)
	}
	nmean := nsum / n
	nvar := nsum2/n - nmean*nmean
	if math.Abs(nmean) > 0.02 {
		t.Errorf("normal mean %v, want ~0", nmean)
	}
	if math.Abs(nvar-1) > 0.05 {
		t.Errorf("normal variance %v, want ~1", nvar)
	}
}

// TestStreamCrossCorrelation: neighbouring substreams must be uncorrelated —
// the sample correlation of streams (k, k+1) over many pairs stays near 0.
func TestStreamCrossCorrelation(t *testing.T) {
	const pairs, draws = 256, 128
	for lag := uint64(1); lag <= 2; lag++ {
		var sxy, sx, sy, sx2, sy2, n float64
		for idx := uint64(0); idx < pairs; idx++ {
			a, b := Stream(11, idx), Stream(11, idx+lag)
			for k := 0; k < draws; k++ {
				x, y := a.Float64(), b.Float64()
				sxy += x * y
				sx += x
				sy += y
				sx2 += x * x
				sy2 += y * y
				n++
			}
		}
		cov := sxy/n - (sx/n)*(sy/n)
		sd := math.Sqrt((sx2/n - (sx/n)*(sx/n)) * (sy2/n - (sy/n)*(sy/n)))
		if corr := cov / sd; math.Abs(corr) > 0.02 {
			t.Errorf("lag-%d cross-stream correlation %v, want ~0", lag, corr)
		}
	}
}

// TestStreamsPoolMatchesStream: the allocation-free per-worker pool must
// reproduce exactly what a fresh Stream produces, across re-positioning.
func TestStreamsPoolMatchesStream(t *testing.T) {
	pool := NewStreams(99, 3)
	for _, idx := range []uint64{5, 0, 1 << 20, 5} {
		want := Stream(99, idx)
		got := pool.At(1, idx)
		for k := 0; k < 16; k++ {
			w, g := want.NormFloat64(), got.NormFloat64()
			if w != g {
				t.Fatalf("pool draw %d of stream %d: got %v want %v", k, idx, g, w)
			}
		}
	}
}

// TestSplitMixSourceInterface: the raw source must satisfy the Source64
// contract (Int63 in [0, 2^63)) and Seed must reposition to substream 0.
func TestSplitMixSourceInterface(t *testing.T) {
	var s SplitMix
	s.Seed(123)
	for k := 0; k < 1000; k++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
	var a, b SplitMix
	a.Seed(55)
	b.Init(55, 0)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Seed(s) must equal Init(s, 0)")
	}
}
