package randx

import (
	"math"

	"ecripse/internal/linalg"
)

// Quasi-Monte Carlo support: Halton low-discrepancy sequences mapped to the
// standard normal via the inverse CDF. Used by the QMC variant of the naive
// baseline (an ablation: low-discrepancy points improve the convergence
// constant of mean estimates but cannot rescue rare-event estimation).

// haltonPrimes are the bases for the first dimensions of the sequence.
var haltonPrimes = []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}

// MaxHaltonDim is the largest supported Halton dimensionality.
const MaxHaltonDim = 12

// Halton generates the D-dimensional Halton sequence. Index 0 corresponds
// to sequence element 1 (the all-zeros element is skipped, since the
// inverse-normal map sends 0 to −Inf).
type Halton struct {
	dim  int
	next int
}

// NewHalton returns a Halton generator of the given dimension (1..12).
func NewHalton(dim int) *Halton {
	if dim < 1 || dim > MaxHaltonDim {
		panic("randx: Halton dimension out of range")
	}
	return &Halton{dim: dim, next: 1}
}

// radicalInverse returns the base-b radical inverse of n.
func radicalInverse(n, b int) float64 {
	inv := 1.0 / float64(b)
	f := inv
	r := 0.0
	for n > 0 {
		r += f * float64(n%b)
		n /= b
		f *= inv
	}
	return r
}

// Next returns the next point in the unit hypercube (0,1)^D.
func (h *Halton) Next() linalg.Vector {
	out := make(linalg.Vector, h.dim)
	for d := 0; d < h.dim; d++ {
		out[d] = radicalInverse(h.next, haltonPrimes[d])
	}
	h.next++
	return out
}

// NextNormal returns the next point mapped to N(0, I) through the inverse
// normal CDF per dimension.
func (h *Halton) NextNormal() linalg.Vector {
	u := h.Next()
	for d := range u {
		u[d] = InvNormalCDF(u[d])
	}
	return u
}

// InvNormalCDF computes the standard-normal quantile function Φ⁻¹(p) using
// Acklam's rational approximation (relative error < 1.15e-9) with one
// Halley refinement step. p must be in (0, 1).
func InvNormalCDF(p float64) float64 {
	if !(p > 0 && p < 1) {
		if p == 0 {
			return math.Inf(-1)
		}
		if p == 1 {
			return math.Inf(1)
		}
		return math.NaN()
	}

	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var (
		a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
			1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
		b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
			6.680131188771972e+01, -1.328068155288572e+01}
		c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
			-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
		d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
			3.754408661907416e+00}
	)

	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement using the forward CDF (via erfc).
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}
