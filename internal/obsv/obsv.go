// Package obsv is the repository's observability layer: lightweight
// context-propagated spans (per-job stage timelines), fixed-bucket atomic
// histograms with a Prometheus text exposition, and a diagnostic-event
// emitter that streams estimator convergence diagnostics to whoever is
// listening (the service's SSE stream, the CLI's -trace summary).
//
// Everything is gated by presence: a context without a Trace produces no-op
// spans, a nil Emitter swallows events, and a nil *Histogram ignores
// observations. The engine's inner loops therefore pay one nil check when
// telemetry is off, and never allocate on the hot path when it is on —
// spans exist at phase/round/batch granularity only, and histogram
// observations are atomic bucket increments.
package obsv

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// appendf is fmt.Appendf under a short local name (Timeline builds its text
// incrementally).
func appendf(b []byte, format string, args ...any) []byte {
	return fmt.Appendf(b, format, args...)
}

// Attr is one span attribute. Values should be numbers, strings or bools so
// the JSON view stays flat.
type Attr struct {
	Key   string
	Value any
}

// F, I and S build float, int and string attributes.
func F(key string, v float64) Attr { return Attr{Key: key, Value: v} }
func I(key string, v int64) Attr   { return Attr{Key: key, Value: v} }
func S(key string, v string) Attr  { return Attr{Key: key, Value: v} }

// spanData is the recorded form of one span.
type spanData struct {
	name   string
	parent int // index into the trace, -1 for roots
	start  time.Time
	end    time.Time
	attrs  []Attr
}

// DefaultMaxSpans bounds how many spans a Trace records before it starts
// dropping: a pathological job (millions of PF rounds, a runaway sweep) must
// not bloat the journal or the trace endpoint responses. Dropped spans are
// counted and surfaced as a `truncated` attribute on the final span view.
const DefaultMaxSpans = 4096

// Trace is an append-only recorder of finished and in-flight spans,
// typically one per job. Safe for concurrent use. A Trace may carry a
// distributed trace ID (see TraceContext); spans recorded here are one
// node's fragment of that trace, reassembled by ID at the sweep-trace
// endpoint.
type Trace struct {
	mu       sync.Mutex
	id       string // 32-hex distributed trace ID; "" for purely local traces
	spans    []spanData
	maxSpans int   // 0 means DefaultMaxSpans
	dropped  int64 // spans rejected by the cap
}

// NewTrace creates an empty trace.
func NewTrace() *Trace { return &Trace{} }

// SetID installs the distributed trace ID. Typically called once at job
// creation, before any propagation.
func (t *Trace) SetID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.id = id
	t.mu.Unlock()
}

// ID returns the distributed trace ID ("" when unset).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.id
}

// SetMaxSpans overrides the span cap (n <= 0 restores DefaultMaxSpans).
func (t *Trace) SetMaxSpans(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if n <= 0 {
		n = 0
	}
	t.maxSpans = n
	t.mu.Unlock()
}

// Dropped returns how many spans the cap has rejected so far.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// capLocked returns the effective span cap. Callers hold t.mu.
func (t *Trace) capLocked() int {
	if t.maxSpans > 0 {
		return t.maxSpans
	}
	return DefaultMaxSpans
}

// Span is a handle to one recorded span. The zero/nil span is a no-op, which
// is what StartSpan returns when the context carries no trace.
type Span struct {
	tr  *Trace
	idx int
}

// start appends an in-flight span and returns its handle, or nil once the
// span cap is reached (the caller's nil-safe Span methods make the drop
// free).
func (t *Trace) start(name string, parent int, attrs []Attr) *Span {
	t.mu.Lock()
	if len(t.spans) >= t.capLocked() {
		t.dropped++
		t.mu.Unlock()
		return nil
	}
	idx := len(t.spans)
	t.spans = append(t.spans, spanData{name: name, parent: parent, start: time.Now(), attrs: attrs})
	t.mu.Unlock()
	return &Span{tr: t, idx: idx}
}

// Add records an already-timed span (e.g. queue wait, reconstructed from job
// timestamps) and returns its index for use as a parent. parent is the index
// of the enclosing span, or -1 for a root.
func (t *Trace) Add(name string, parent int, start, end time.Time, attrs ...Attr) int {
	if t == nil {
		return -1
	}
	t.mu.Lock()
	if len(t.spans) >= t.capLocked() {
		t.dropped++
		t.mu.Unlock()
		return -1
	}
	idx := len(t.spans)
	t.spans = append(t.spans, spanData{name: name, parent: parent, start: start, end: end, attrs: attrs})
	t.mu.Unlock()
	return idx
}

// End marks the span finished. Nil-safe; a second End keeps the first end
// time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if sp := &s.tr.spans[s.idx]; sp.end.IsZero() {
		sp.end = time.Now()
	}
	s.tr.mu.Unlock()
}

// SetAttr attaches (or overwrites) one attribute. Nil-safe.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	sp := &s.tr.spans[s.idx]
outer:
	for _, a := range attrs {
		for i := range sp.attrs {
			if sp.attrs[i].Key == a.Key {
				sp.attrs[i].Value = a.Value
				continue outer
			}
		}
		sp.attrs = append(sp.attrs, a)
	}
	s.tr.mu.Unlock()
}

// Index returns the span's position in its trace (-1 for the nil span), for
// use as an explicit parent in Trace.Add.
func (s *Span) Index() int {
	if s == nil {
		return -1
	}
	return s.idx
}

// SpanView is the JSON form of one span. An in-flight span has no end time
// and a negative duration.
type SpanView struct {
	Name   string         `json:"name"`
	Parent int            `json:"parent"` // index into the same timeline; -1 for roots
	Start  string         `json:"start"`  // RFC3339Nano, UTC
	DurMS  float64        `json:"dur_ms"` // -1 while in flight
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// Spans renders the timeline in recording order. The Parent indices refer to
// positions within the returned slice. When the span cap dropped spans, the
// final view carries a `truncated` attribute with the drop count.
func (t *Trace) Spans() []SpanView {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanView, len(t.spans))
	for i, sp := range t.spans {
		v := SpanView{
			Name:   sp.name,
			Parent: sp.parent,
			Start:  sp.start.UTC().Format(time.RFC3339Nano),
			DurMS:  -1,
		}
		if !sp.end.IsZero() {
			v.DurMS = float64(sp.end.Sub(sp.start)) / float64(time.Millisecond)
		}
		if len(sp.attrs) > 0 {
			v.Attrs = make(map[string]any, len(sp.attrs))
			for _, a := range sp.attrs {
				v.Attrs[a.Key] = a.Value
			}
		}
		out[i] = v
	}
	if t.dropped > 0 && len(out) > 0 {
		last := &out[len(out)-1]
		if last.Attrs == nil {
			last.Attrs = make(map[string]any, 1)
		}
		last.Attrs["truncated"] = t.dropped
	}
	return out
}

// Len returns the number of recorded spans.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Timeline renders the trace as an indented text tree (the CLI -trace
// output): each line is a span with its duration and attributes, children
// indented under their parents, attribute keys sorted for stable output.
func (t *Trace) Timeline() string {
	views := t.Spans()
	children := make(map[int][]int)
	var roots []int
	for i, v := range views {
		if v.Parent >= 0 && v.Parent < len(views) {
			children[v.Parent] = append(children[v.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	var b []byte
	var walk func(idx, depth int)
	walk = func(idx, depth int) {
		v := views[idx]
		for i := 0; i < depth; i++ {
			b = append(b, "  "...)
		}
		b = append(b, v.Name...)
		if v.DurMS >= 0 {
			b = appendf(b, "  %.1fms", v.DurMS)
		} else {
			b = append(b, "  (in flight)"...)
		}
		if len(v.Attrs) > 0 {
			keys := make([]string, 0, len(v.Attrs))
			for k := range v.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				b = appendf(b, "  %s=%v", k, v.Attrs[k])
			}
		}
		b = append(b, '\n')
		for _, c := range children[idx] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return string(b)
}

// Context propagation. Two independent carriers ride the context: the span
// trace and the diagnostic-event emitter.

type traceKey struct{}
type emitterKey struct{}
type spanKey struct{}

// WithTrace returns a context carrying the trace; spans started under it are
// recorded there.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// StartSpan starts a span named name under the context's current span (if
// any) and returns a derived context in which the new span is current. When
// the context carries no trace it returns ctx unchanged and a nil (no-op)
// span — the caller never branches.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t := TraceFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	parent := -1
	if ps, _ := ctx.Value(spanKey{}).(*Span); ps != nil {
		parent = ps.idx
	}
	sp := t.start(name, parent, attrs)
	if sp == nil {
		// Span cap reached: keep the caller's current-span context so later
		// (possibly un-dropped) children still attach somewhere sensible.
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// Emitter receives diagnostic events: kind names the event (e.g. "pf_round",
// "is_batch") and data is a JSON-marshalable snapshot. Emitters must be safe
// for concurrent use; the engine only emits from barrier (single-threaded)
// code, but several jobs may share one sink.
type Emitter func(kind string, data any)

// WithEmitter returns a context carrying the emitter.
func WithEmitter(ctx context.Context, e Emitter) context.Context {
	return context.WithValue(ctx, emitterKey{}, e)
}

// EmitterFrom returns the context's emitter, or nil.
func EmitterFrom(ctx context.Context) Emitter {
	e, _ := ctx.Value(emitterKey{}).(Emitter)
	return e
}
