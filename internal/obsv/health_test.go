package obsv

import (
	"context"
	"strings"
	"testing"
	"time"
)

// collapsed returns a FilterHealth far below every per-filter threshold.
func collapsed() FilterHealth {
	return FilterHealth{Particles: 40, ESS: 1.2, MaxWeightFrac: 0.97, Unique: 1}
}

// healthyFilter returns a FilterHealth that violates nothing.
func healthyFilter() FilterHealth {
	return FilterHealth{Particles: 40, ESS: 18, MaxWeightFrac: 0.12, Unique: 21}
}

// TestHealthGraceRoundsSkipped pins the warm-up exemption: the structurally
// collapsed first round (the cloud right after boundary-search init) must not
// flag, count checks, or pre-charge the ESS persistence counter.
func TestHealthGraceRoundsSkipped(t *testing.T) {
	m := NewHealthMonitor(HealthConfig{}, nil)
	m.ObservePFRound(0, []FilterHealth{collapsed()})
	r := m.Report()
	if !r.Healthy || r.Checks != 0 {
		t.Fatalf("grace round evaluated: %+v", r)
	}
	// One sub-threshold round after grace is a dip, not a collapse
	// (ESSPersist defaults to 2) — but the acute rules fire immediately.
	m.ObservePFRound(1, []FilterHealth{{Particles: 40, ESS: 2, MaxWeightFrac: 0.5, Unique: 10}})
	if r := m.Report(); !r.Healthy {
		t.Fatalf("single post-grace ESS dip flagged: %+v", r)
	}
	// A recovery resets the run; two later consecutive dips fire once each
	// from the second dip on.
	m.ObservePFRound(2, []FilterHealth{healthyFilter()})
	m.ObservePFRound(3, []FilterHealth{{Particles: 40, ESS: 2, MaxWeightFrac: 0.5, Unique: 10}})
	m.ObservePFRound(4, []FilterHealth{{Particles: 40, ESS: 2, MaxWeightFrac: 0.5, Unique: 10}})
	r = m.Report()
	if r.Healthy || len(r.Violations) != 1 {
		t.Fatalf("persistent collapse not flagged exactly once: %+v", r)
	}
	v := r.Violations[0]
	if v.Rule != RuleESSCollapse || v.Round != 4 || v.Filter != 0 {
		t.Fatalf("violation = %+v", v)
	}
}

// TestHealthAcuteRulesFireImmediately: max-weight spikes and lobe starvation
// have no persistence requirement — one occurrence after grace flags.
func TestHealthAcuteRulesFireImmediately(t *testing.T) {
	m := NewHealthMonitor(HealthConfig{}, nil)
	m.ObservePFRound(1, []FilterHealth{{Particles: 40, ESS: 20, MaxWeightFrac: 0.95, Unique: 2}})
	r := m.Report()
	if len(r.Violations) != 2 {
		t.Fatalf("violations = %+v", r.Violations)
	}
	rules := map[string]bool{}
	for _, v := range r.Violations {
		rules[v.Rule] = true
	}
	if !rules[RuleMaxWeight] || !rules[RuleLobeStarvation] {
		t.Fatalf("rules fired = %v", rules)
	}
}

// TestHealthConfigNegativeDisables pins the explicit-zero semantics: negative
// GraceRounds means no grace, negative ESSPersist means fire on first dip.
func TestHealthConfigNegativeDisables(t *testing.T) {
	m := NewHealthMonitor(HealthConfig{GraceRounds: -1, ESSPersist: -1}, nil)
	m.ObservePFRound(0, []FilterHealth{{Particles: 40, ESS: 2, MaxWeightFrac: 0.5, Unique: 10}})
	r := m.Report()
	if r.Healthy || len(r.Violations) != 1 || r.Violations[0].Rule != RuleESSCollapse {
		t.Fatalf("round-0 dip with grace disabled: %+v", r)
	}
}

// TestHealthCIStall drives the stage-2 barrier rule: a CI half-width that
// stops shrinking for CIStallWindow consecutive barriers fires exactly once.
func TestHealthCIStall(t *testing.T) {
	m := NewHealthMonitor(HealthConfig{CIStallWindow: 4}, nil)
	ci := 1.0
	for i := 0; i < 3; i++ { // healthy shrink
		m.ObserveISBatch(256*(i+1), 1e-7, ci)
		ci *= 0.8
	}
	for i := 3; i < 12; i++ { // flat from here on
		m.ObserveISBatch(256*(i+1), 1e-7, ci)
	}
	r := m.Report()
	if len(r.Violations) != 1 || r.Violations[0].Rule != RuleCIStall {
		t.Fatalf("CI stall violations = %+v", r.Violations)
	}
	if !strings.Contains(r.Violations[0].Detail, "flat") {
		t.Fatalf("detail = %q", r.Violations[0].Detail)
	}
}

// TestHealthFlipDrift: once a baseline disagreement rate exists, a window
// drifting above it by more than FlipRateDrift flags.
func TestHealthFlipDrift(t *testing.T) {
	m := NewHealthMonitor(HealthConfig{}, nil)
	m.ObserveFlips("is", 0, 100, 2) // builds the 2% baseline (>= FlipMinObs)
	m.ObserveFlips("is", 1, 100, 3) // within drift
	if r := m.Report(); !r.Healthy {
		t.Fatalf("in-band flip rate flagged: %+v", r)
	}
	m.ObserveFlips("is", 2, 100, 40) // 40% vs ~2.5% baseline
	r := m.Report()
	if len(r.Violations) != 1 || r.Violations[0].Rule != RuleFlipDrift {
		t.Fatalf("flip drift violations = %+v", r.Violations)
	}
}

// TestHealthWallClockSeparation pins the determinism contract: the pipeline
// stall rule reaches the observer and WallViolations but never Report.
func TestHealthWallClockSeparation(t *testing.T) {
	var observed []HealthViolation
	m := NewHealthMonitor(HealthConfig{}, func(v HealthViolation) { observed = append(observed, v) })
	m.ObservePipeline(10, 1000, 900) // 90% stall fraction
	if r := m.Report(); !r.Healthy || len(r.Violations) != 0 {
		t.Fatalf("wall-clock verdict leaked into Report: %+v", r)
	}
	wall := m.WallViolations()
	if len(wall) != 1 || wall[0].Rule != RulePipelineStall {
		t.Fatalf("WallViolations = %+v", wall)
	}
	if len(observed) != 1 || observed[0].Rule != RulePipelineStall {
		t.Fatalf("observer saw %+v", observed)
	}
}

// TestHealthViolationCap: a pathological run firing every round keeps the
// stored list bounded, with the overflow counted in Suppressed.
func TestHealthViolationCap(t *testing.T) {
	m := NewHealthMonitor(HealthConfig{}, nil)
	for round := 1; round <= maxViolations+50; round++ {
		m.ObservePFRound(round, []FilterHealth{{Particles: 40, ESS: 20, MaxWeightFrac: 0.99, Unique: 20}})
	}
	r := m.Report()
	if len(r.Violations) != maxViolations || r.Suppressed != 50 {
		t.Fatalf("cap: %d stored, %d suppressed", len(r.Violations), r.Suppressed)
	}
	if r.Healthy {
		t.Fatal("suppressed violations reported healthy")
	}
}

// TestHealthSummaryRendering covers the three Summary shapes.
func TestHealthSummaryRendering(t *testing.T) {
	if got := (*HealthReport)(nil).Summary(); !strings.Contains(got, "not evaluated") {
		t.Fatalf("nil summary = %q", got)
	}
	m := NewHealthMonitor(HealthConfig{}, nil)
	m.ObservePFRound(1, []FilterHealth{healthyFilter()})
	if got := m.Report().Summary(); !strings.HasPrefix(got, "health: OK") {
		t.Fatalf("healthy summary = %q", got)
	}
	m.ObservePFRound(2, []FilterHealth{{Particles: 40, ESS: 20, MaxWeightFrac: 0.95, Unique: 20}})
	got := m.Report().Summary()
	if !strings.Contains(got, "1 violation") || !strings.Contains(got, RuleMaxWeight) {
		t.Fatalf("unhealthy summary = %q", got)
	}
}

// TestTraceSpanCap is the regression test for the persisted-trace bound: the
// cap drops overflow spans, counts them, and surfaces the count as a
// `truncated` attribute on the final rendered span.
func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace()
	tr.SetMaxSpans(3)
	now := time.Now()
	for i := 0; i < 3; i++ {
		if idx := tr.Add("kept", -1, now, now); idx != i {
			t.Fatalf("Add %d returned %d", i, idx)
		}
	}
	// Overflow via both recording paths: Add and StartSpan.
	if idx := tr.Add("dropped", -1, now, now); idx != -1 {
		t.Fatalf("over-cap Add returned %d, want -1", idx)
	}
	ctx := WithTrace(context.Background(), tr)
	if _, sp := StartSpan(ctx, "dropped2"); sp != nil {
		t.Fatal("over-cap StartSpan returned a live span")
	}
	if tr.Len() != 3 || tr.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 3/2", tr.Len(), tr.Dropped())
	}
	views := tr.Spans()
	if len(views) != 3 {
		t.Fatalf("rendered %d spans", len(views))
	}
	if got := views[2].Attrs["truncated"]; got != int64(2) {
		t.Fatalf("truncated attr = %v (%T), want int64(2)", got, got)
	}
	if _, ok := views[0].Attrs["truncated"]; ok {
		t.Fatal("truncated attr leaked onto a non-final span")
	}
	// SetMaxSpans(0) restores the default cap.
	tr2 := NewTrace()
	tr2.SetMaxSpans(0)
	if got := tr2.capLocked(); got != DefaultMaxSpans {
		t.Fatalf("default cap = %d", got)
	}
}

// TestTraceparentRoundTrip pins the W3C serialization and its parser.
func TestTraceparentRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatalf("minted context invalid: %+v", tc)
	}
	h := tc.Traceparent()
	if !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("traceparent = %q", h)
	}
	back, ok := ParseTraceparent(h)
	if !ok || back != tc {
		t.Fatalf("round trip: %+v ok=%v, want %+v", back, ok, tc)
	}
	child := tc.Child()
	if child.TraceID != tc.TraceID || child.SpanID == tc.SpanID {
		t.Fatalf("child = %+v from %+v", child, tc)
	}

	for _, bad := range []string{
		"",
		"00-abc-def-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // all-zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // all-zero span ID
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // reserved version
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
	// Future versions with trailing fields still parse.
	if _, ok := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok {
		t.Error("future-version traceparent rejected")
	}
}
