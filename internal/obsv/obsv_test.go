package obsv

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestSpanNestingAndAttrs(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)

	ctx1, root := StartSpan(ctx, "run", S("job", "j1"))
	ctx2, child := StartSpan(ctx1, "pf.round", I("round", 0))
	child.SetAttr(F("ess", 12.5), I("round", 0)) // overwrite + add
	child.End()
	_, sib := StartSpan(ctx2, "inner")
	sib.End()
	root.End()
	root.End() // second End keeps first end time

	views := tr.Spans()
	if len(views) != 3 {
		t.Fatalf("want 3 spans, got %d", len(views))
	}
	if views[0].Parent != -1 || views[1].Parent != 0 || views[2].Parent != 1 {
		t.Fatalf("bad parents: %+v", views)
	}
	if views[1].Attrs["ess"] != 12.5 {
		t.Fatalf("attr not set: %+v", views[1].Attrs)
	}
	if views[0].DurMS < 0 {
		t.Fatalf("root should be finished")
	}
}

func TestStartSpanNoTraceIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "orphan", S("k", "v"))
	if sp != nil {
		t.Fatalf("want nil span without trace")
	}
	if ctx2 != ctx {
		t.Fatalf("context should be unchanged")
	}
	// All methods nil-safe.
	sp.End()
	sp.SetAttr(F("x", 1))
	if sp.Index() != -1 {
		t.Fatalf("nil span index should be -1")
	}
}

func TestTraceAddSynthesizedSpan(t *testing.T) {
	tr := NewTrace()
	start := time.Now().Add(-time.Second)
	idx := tr.Add("queue.wait", -1, start, start.Add(500*time.Millisecond))
	if idx != 0 {
		t.Fatalf("want index 0, got %d", idx)
	}
	v := tr.Spans()[0]
	if v.DurMS < 499 || v.DurMS > 501 {
		t.Fatalf("want ~500ms, got %v", v.DurMS)
	}
	var nilTrace *Trace
	if nilTrace.Add("x", -1, start, start) != -1 {
		t.Fatalf("nil trace Add should return -1")
	}
	if nilTrace.Len() != 0 || nilTrace.Spans() != nil {
		t.Fatalf("nil trace accessors should be empty")
	}
}

func TestTimeline(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	ctx, root := StartSpan(ctx, "run")
	_, child := StartSpan(ctx, "pf.round", F("ess", 30.2), I("unique", 17))
	child.End()
	root.End()
	_, inflight := StartSpan(WithTrace(context.Background(), tr), "persist")
	_ = inflight

	tl := tr.Timeline()
	lines := strings.Split(strings.TrimRight(tl, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d:\n%s", len(lines), tl)
	}
	if !strings.HasPrefix(lines[0], "run") {
		t.Fatalf("line 0: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  pf.round") {
		t.Fatalf("child should be indented: %q", lines[1])
	}
	// Attr keys sorted: ess before unique.
	if !strings.Contains(lines[1], "ess=30.2  unique=17") {
		t.Fatalf("attrs missing or unsorted: %q", lines[1])
	}
	if !strings.Contains(lines[2], "(in flight)") {
		t.Fatalf("in-flight marker missing: %q", lines[2])
	}
}

func TestEmitterPropagation(t *testing.T) {
	var got []string
	ctx := WithEmitter(context.Background(), func(kind string, data any) {
		got = append(got, kind)
	})
	if e := EmitterFrom(ctx); e == nil {
		t.Fatal("emitter missing")
	} else {
		e("pf_round", nil)
		e("is_batch", nil)
	}
	if EmitterFrom(context.Background()) != nil {
		t.Fatal("want nil emitter from bare context")
	}
	if len(got) != 2 || got[0] != "pf_round" {
		t.Fatalf("events: %v", got)
	}
}
