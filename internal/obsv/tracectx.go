package obsv

import (
	"context"
	"strings"
	"sync/atomic"
	"time"
)

// TraceContext is the propagatable identity of a distributed trace: the
// 128-bit trace ID shared by every span in the tree, plus the 64-bit ID of
// the span that parents whatever the receiving node records next. It
// serializes as a W3C-style traceparent header
// ("00-<32 hex trace-id>-<16 hex parent-span-id>-01") so the cluster router
// can inject it on proxied submits and the service can extract it, stitching
// router → dispatch → engine spans into one tree.
//
// Trace identifiers are observability-only: they are derived from a private
// process-local generator, never from an estimator RNG, so minting them
// cannot perturb result bits.
type TraceContext struct {
	TraceID string // 32 lowercase hex chars
	SpanID  string // 16 lowercase hex chars
}

// TraceparentHeader is the canonical header name carrying a TraceContext.
const TraceparentHeader = "Traceparent"

// idGen is the process-local generator behind NewTraceID/NewSpanID: a
// splitmix64 walk over an atomic counter seeded from the wall clock at
// startup. Uniqueness matters; unpredictability does not.
var idGen atomic.Uint64

func init() {
	idGen.Store(uint64(time.Now().UnixNano()) ^ 0x9e3779b97f4a7c15)
}

// nextID advances the generator one splitmix64 step.
func nextID() uint64 {
	z := idGen.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

const hexDigits = "0123456789abcdef"

// hex64 renders v as 16 lowercase hex chars.
func hex64(v uint64) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// NewTraceID mints a fresh 32-hex-char trace ID (guaranteed non-zero).
func NewTraceID() string {
	hi, lo := nextID(), nextID()
	if hi == 0 && lo == 0 {
		hi = 1
	}
	return hex64(hi) + hex64(lo)
}

// NewSpanID mints a fresh 16-hex-char span ID (guaranteed non-zero).
func NewSpanID() string {
	v := nextID()
	if v == 0 {
		v = 1
	}
	return hex64(v)
}

// NewTraceContext mints a root trace context: fresh trace ID, fresh span ID.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
}

// Child derives a context in the same trace under a fresh span ID.
func (tc TraceContext) Child() TraceContext {
	return TraceContext{TraceID: tc.TraceID, SpanID: NewSpanID()}
}

// isHex reports whether s is entirely lowercase-hex (uppercase rejected, per
// the W3C grammar) and not all zeros.
func isHex(s string) bool {
	nonzero := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			nonzero = true
		}
	}
	return nonzero
}

// Valid reports whether the context carries a well-formed, non-zero trace ID
// and span ID.
func (tc TraceContext) Valid() bool {
	return len(tc.TraceID) == 32 && isHex(tc.TraceID) &&
		len(tc.SpanID) == 16 && isHex(tc.SpanID)
}

// Traceparent renders the W3C serialization, version 00, sampled flag set.
// Invalid contexts render as "".
func (tc TraceContext) Traceparent() string {
	if !tc.Valid() {
		return ""
	}
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-01"
}

// ParseTraceparent decodes a traceparent header value. It accepts any
// version except the reserved "ff", ignores trailing fields beyond the
// flags (future versions may append), and rejects malformed or all-zero
// IDs — returning ok=false rather than a partial context.
func ParseTraceparent(h string) (TraceContext, bool) {
	h = strings.TrimSpace(h)
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return TraceContext{}, false
	}
	ver, tid, sid := parts[0], parts[1], parts[2]
	if len(ver) != 2 || !isHexByte(ver) || ver == "ff" {
		return TraceContext{}, false
	}
	tc := TraceContext{TraceID: tid, SpanID: sid}
	if !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}

// isHexByte reports whether s is exactly two lowercase-hex digits (zeros
// allowed — "00" is the current traceparent version).
func isHexByte(s string) bool {
	if len(s) != 2 {
		return false
	}
	for i := 0; i < 2; i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

type traceCtxKey struct{}

// WithTraceContext returns a context carrying the trace context (e.g. one
// extracted from an inbound traceparent header).
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom returns the context's trace context; the zero value (not
// Valid) when none was attached.
func TraceContextFrom(ctx context.Context) TraceContext {
	tc, _ := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc
}
