package obsv

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Histogram is a fixed-bucket cumulative-style histogram in the Prometheus
// mold: observations land in the first bucket whose upper bound is >= the
// value, with an implicit +Inf bucket catching the rest. All state is
// atomic, so Observe is safe (and allocation-free) on concurrent hot paths;
// a nil *Histogram ignores observations.
//
// Buckets are chosen at construction and never change — rendering a scrape
// is a plain load of each counter.
type Histogram struct {
	name    string
	help    string
	bounds  []float64      // sorted upper bounds, exclusive of +Inf
	counts  []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram creates a histogram with the given metric name, help string
// and bucket upper bounds (sorted ascending; +Inf is implicit and must not
// be included). It panics on an empty or unsorted bound list — histogram
// shapes are compile-time decisions here.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obsv: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic("obsv: histogram bounds must be strictly increasing")
		}
	}
	if math.IsInf(bounds[len(bounds)-1], +1) {
		panic("obsv: +Inf bound is implicit")
	}
	return &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Name returns the metric name the histogram renders under.
func (h *Histogram) Name() string { return h.name }

// Observe records one observation. Nil-safe.
func (h *Histogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records n observations of value v in one shot (used where only a
// batch tally is available, e.g. per-curve solver iterations averaged over
// the curve's solves). Nil-safe; n <= 0 is ignored.
func (h *Histogram) ObserveN(v float64, n int64) {
	if h == nil || n <= 0 {
		return
	}
	// Linear scan: bucket lists are short (<= ~16) and the scan is branch-
	// predictable, beating binary search at this size.
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx].Add(n)
	h.count.Add(n)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Snapshot returns the cumulative bucket counts aligned with Bounds plus the
// +Inf bucket as the final entry.
func (h *Histogram) Snapshot() (bounds []float64, cumulative []int64) {
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]int64, len(h.counts))
	var acc int64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return bounds, cumulative
}

// ExpBuckets returns n strictly increasing bounds starting at start and
// multiplying by factor — the usual latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obsv: invalid exponential bucket shape")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n <= 0 {
		panic("obsv: invalid linear bucket shape")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Prometheus text exposition (format version 0.0.4). Hand-rolled — the
// repository takes no dependencies — and covering exactly what the service
// exposes: gauges, counters, and histograms, with optional labels.

// PromWriter renders metrics in the Prometheus text format, enforcing the
// one-HELP/TYPE-block-per-metric rule.
type PromWriter struct {
	w    io.Writer
	err  error
	seen map[string]bool
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, seen: make(map[string]bool)}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// header emits the HELP/TYPE block once per metric family.
func (p *PromWriter) header(name, typ, help string) {
	if p.seen[name] {
		return
	}
	p.seen[name] = true
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Gauge emits one gauge sample.
func (p *PromWriter) Gauge(name, help string, v float64, labels ...[2]string) {
	p.header(name, "gauge", help)
	p.sample(name, labels, v)
}

// Counter emits one counter sample. Counter names must end in _total (the
// lint test enforces it).
func (p *PromWriter) Counter(name, help string, v float64, labels ...[2]string) {
	p.header(name, "counter", help)
	p.sample(name, labels, v)
}

// Histogram renders h as a full histogram family: cumulative _bucket samples
// with le labels (including +Inf), then _sum and _count.
func (p *PromWriter) Histogram(h *Histogram) {
	if h == nil {
		return
	}
	p.header(h.name, "histogram", h.help)
	bounds, cum := h.Snapshot()
	for i, b := range bounds {
		p.sample(h.name+"_bucket", [][2]string{{"le", formatFloat(b)}}, float64(cum[i]))
	}
	p.sample(h.name+"_bucket", [][2]string{{"le", "+Inf"}}, float64(cum[len(cum)-1]))
	p.sample(h.name+"_sum", nil, h.Sum())
	p.sample(h.name+"_count", nil, float64(h.count.Load()))
}

func (p *PromWriter) sample(name string, labels [][2]string, v float64) {
	if len(labels) == 0 {
		p.printf("%s %s\n", name, formatFloat(v))
		return
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("%s=%q", l[0], escapeLabel(l[1]))
	}
	p.printf("%s{%s} %s\n", name, strings.Join(parts, ","), formatFloat(v))
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// LintProm checks a Prometheus text exposition against the promtool-style
// rules the acceptance tests encode:
//
//   - metric and label names match the Prometheus grammar
//   - every sampled metric family has exactly one HELP and one TYPE line,
//     appearing before its first sample
//   - counters end in _total
//   - histogram bucket le bounds are strictly increasing and end at +Inf,
//     bucket counts are monotonically non-decreasing, and the +Inf bucket
//     equals the _count sample
//   - no duplicate samples (same name and label set)
//
// It returns one message per violation; an empty slice means the exposition
// is clean.
func LintProm(text string) []string {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	type family struct {
		helped, typed bool
		typ           string
		sampled       bool
	}
	families := map[string]*family{}
	fam := func(name string) *family {
		f, ok := families[name]
		if !ok {
			f = &family{}
			families[name] = f
		}
		return f
	}
	type histState struct {
		les     []float64
		counts  []float64
		sawInf  bool
		infVal  float64
		count   float64
		hasCnt  bool
		hasSum  bool
		baseFam string
	}
	hists := map[string]*histState{}
	seenSamples := map[string]bool{}

	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, _ := strings.Cut(rest, " ")
			f := fam(name)
			if f.helped {
				addf("line %d: duplicate HELP for %s", lineNo, name)
			}
			if f.sampled {
				addf("line %d: HELP for %s after its samples", lineNo, name)
			}
			f.helped = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, _ := strings.Cut(rest, " ")
			f := fam(name)
			if f.typed {
				addf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			if f.sampled {
				addf("line %d: TYPE for %s after its samples", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				addf("line %d: unknown TYPE %q for %s", lineNo, typ, name)
			}
			f.typed = true
			f.typ = typ
			if typ == "counter" && !strings.HasSuffix(name, "_total") {
				addf("line %d: counter %s does not end in _total", lineNo, name)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			addf("line %d: %v", lineNo, err)
			continue
		}
		if !validMetricName(name) {
			addf("line %d: invalid metric name %q", lineNo, name)
		}
		for _, l := range labels {
			if !validLabelName(l[0]) {
				addf("line %d: invalid label name %q", lineNo, l[0])
			}
		}
		sampleKey := line[:strings.LastIndex(line, " ")]
		if seenSamples[sampleKey] {
			addf("line %d: duplicate sample %s", lineNo, sampleKey)
		}
		seenSamples[sampleKey] = true

		// Resolve the family: histogram/summary samples belong to the base
		// metric.
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name {
				if f, ok := families[trimmed]; ok && (f.typ == "histogram" || f.typ == "summary") {
					base = trimmed
				}
				break
			}
		}
		f := fam(base)
		f.sampled = true
		if !f.helped || !f.typed {
			addf("line %d: sample for %s without preceding HELP+TYPE", lineNo, base)
		}

		if f.typ == "histogram" {
			hs, ok := hists[base]
			if !ok {
				hs = &histState{baseFam: base}
				hists[base] = hs
			}
			switch {
			case name == base+"_bucket":
				le := ""
				for _, l := range labels {
					if l[0] == "le" {
						le = l[1]
					}
				}
				if le == "" {
					addf("line %d: histogram bucket without le label", lineNo)
					break
				}
				if le == "+Inf" {
					hs.sawInf = true
					hs.infVal = value
					break
				}
				b, perr := strconv.ParseFloat(le, 64)
				if perr != nil {
					addf("line %d: unparsable le %q", lineNo, le)
					break
				}
				if hs.sawInf {
					addf("line %d: bucket le=%q after +Inf", lineNo, le)
				}
				hs.les = append(hs.les, b)
				hs.counts = append(hs.counts, value)
			case name == base+"_sum":
				hs.hasSum = true
			case name == base+"_count":
				hs.hasCnt = true
				hs.count = value
			}
		}
	}

	for name, hs := range hists {
		for i := 1; i < len(hs.les); i++ {
			if !(hs.les[i] > hs.les[i-1]) {
				addf("histogram %s: le bounds not strictly increasing (%v after %v)", name, hs.les[i], hs.les[i-1])
			}
		}
		prev := math.Inf(-1)
		for i, c := range hs.counts {
			if c < prev {
				addf("histogram %s: bucket counts decrease at le=%v", name, hs.les[i])
			}
			prev = c
		}
		if !hs.sawInf {
			addf("histogram %s: missing le=\"+Inf\" bucket", name)
		} else {
			if len(hs.counts) > 0 && hs.infVal < hs.counts[len(hs.counts)-1] {
				addf("histogram %s: +Inf bucket below preceding bucket", name)
			}
			if hs.hasCnt && hs.infVal != hs.count {
				addf("histogram %s: +Inf bucket (%v) != _count (%v)", name, hs.infVal, hs.count)
			}
		}
		if !hs.hasSum {
			addf("histogram %s: missing _sum", name)
		}
		if !hs.hasCnt {
			addf("histogram %s: missing _count", name)
		}
	}

	// Families declared but never sampled are suspicious in a scrape built
	// from live state.
	var names []string
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if f := families[name]; !f.sampled {
			addf("metric %s has HELP/TYPE but no samples", name)
		}
	}
	sort.Strings(problems)
	return problems
}

// parseSample splits one exposition sample line into name, labels and value.
func parseSample(line string) (name string, labels [][2]string, value float64, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	} else {
		name, rest = rest[:i], rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		body := rest[1:end]
		rest = rest[end+1:]
		for _, pair := range splitLabels(body) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				return "", nil, 0, fmt.Errorf("malformed label %q", pair)
			}
			uq, uerr := strconv.Unquote(v)
			if uerr != nil {
				return "", nil, 0, fmt.Errorf("malformed label value %s", v)
			}
			labels = append(labels, [2]string{k, uq})
		}
	}
	rest = strings.TrimSpace(rest)
	// The value may be followed by an optional timestamp; take the first
	// token.
	tok, _, _ := strings.Cut(rest, " ")
	if tok == "+Inf" || tok == "-Inf" || tok == "NaN" {
		return name, labels, math.NaN(), nil
	}
	value, err = strconv.ParseFloat(tok, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparsable value %q", tok)
	}
	return name, labels, value, nil
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(body string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			if i == 0 || body[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	if start < len(body) {
		out = append(out, body[start:])
	}
	return out
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
