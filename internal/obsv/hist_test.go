package obsv

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketPlacement(t *testing.T) {
	h := NewHistogram("t_seconds", "test", []float64{1, 2, 4})
	h.Observe(0.5) // bucket le=1
	h.Observe(1)   // le=1 (inclusive upper bound)
	h.Observe(3)   // le=4
	h.Observe(100) // +Inf
	bounds, cum := h.Snapshot()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("shape: %v %v", bounds, cum)
	}
	want := []int64{2, 2, 3, 4}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d]=%d want %d (%v)", i, cum[i], w, cum)
		}
	}
	if h.Count() != 4 {
		t.Fatalf("count %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-104.5) > 1e-12 {
		t.Fatalf("sum %v", got)
	}
}

func TestHistogramObserveN(t *testing.T) {
	h := NewHistogram("t", "test", []float64{10})
	h.ObserveN(5, 7)
	h.ObserveN(5, 0)  // ignored
	h.ObserveN(5, -3) // ignored
	if h.Count() != 7 || h.Sum() != 35 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
	var nilH *Histogram
	nilH.Observe(1) // must not panic
	if nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Fatal("nil histogram should be empty")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("t", "test", ExpBuckets(0.001, 2, 10))
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%50) * 0.001)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count %d want %d", h.Count(), workers*per)
	}
	_, cum := h.Snapshot()
	if cum[len(cum)-1] != workers*per {
		t.Fatalf("+Inf bucket %d", cum[len(cum)-1])
	}
}

func TestBucketHelpers(t *testing.T) {
	e := ExpBuckets(0.01, 2, 4)
	wantE := []float64{0.01, 0.02, 0.04, 0.08}
	for i := range wantE {
		if math.Abs(e[i]-wantE[i]) > 1e-12 {
			t.Fatalf("exp: %v", e)
		}
	}
	l := LinearBuckets(5, 5, 3)
	wantL := []float64{5, 10, 15}
	for i := range wantL {
		if l[i] != wantL[i] {
			t.Fatalf("lin: %v", l)
		}
	}
}

func TestPromWriterRendering(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Gauge("ecripsed_queue_depth", "Jobs waiting in queue.", 3)
	p.Counter("ecripsed_sims_total", "Total SPICE-equivalent simulations.", 12345)
	p.Gauge("ecripsed_jobs", "Jobs by state.", 2, [2]string{"state", "done"})
	p.Gauge("ecripsed_jobs", "Jobs by state.", 1, [2]string{"state", "running"})
	h := NewHistogram("ecripsed_job_duration_seconds", "Job wall time.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(5)
	p.Histogram(h)
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	out := b.String()

	for _, want := range []string{
		"# HELP ecripsed_queue_depth Jobs waiting in queue.\n# TYPE ecripsed_queue_depth gauge\necripsed_queue_depth 3\n",
		"ecripsed_jobs{state=\"done\"} 2\n",
		"ecripsed_jobs{state=\"running\"} 1\n",
		"ecripsed_job_duration_seconds_bucket{le=\"0.1\"} 1\n",
		"ecripsed_job_duration_seconds_bucket{le=\"+Inf\"} 2\n",
		"ecripsed_job_duration_seconds_sum 5.05\n",
		"ecripsed_job_duration_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// The labeled gauge must have exactly one HELP/TYPE block.
	if strings.Count(out, "# TYPE ecripsed_jobs gauge") != 1 {
		t.Fatalf("duplicate TYPE block:\n%s", out)
	}
	if problems := LintProm(out); len(problems) != 0 {
		t.Fatalf("lint problems: %v", problems)
	}
}

func TestLintPromCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string // substring expected in some problem
	}{
		{
			"counter without _total",
			"# HELP x_count hits\n# TYPE x_count counter\nx_count 1\n",
			"does not end in _total",
		},
		{
			"sample without help",
			"orphan_metric 1\n",
			"without preceding HELP+TYPE",
		},
		{
			"duplicate sample",
			"# HELP a_m m\n# TYPE a_m gauge\na_m 1\na_m 2\n",
			"duplicate sample",
		},
		{
			"histogram missing +Inf",
			"# HELP h hist\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"missing le=\"+Inf\"",
		},
		{
			"histogram count mismatch",
			"# HELP h hist\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
			"!= _count",
		},
		{
			"decreasing buckets",
			"# HELP h hist\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"bucket counts decrease",
		},
		{
			"unordered le",
			"# HELP h hist\n# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
			"not strictly increasing",
		},
		{
			"invalid metric name",
			"# HELP 1bad m\n# TYPE 1bad gauge\n1bad 1\n",
			"invalid metric name",
		},
		{
			"declared but unsampled",
			"# HELP ghost m\n# TYPE ghost gauge\n",
			"no samples",
		},
	}
	for _, tc := range cases {
		problems := LintProm(tc.text)
		found := false
		for _, p := range problems {
			if strings.Contains(p, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: want a problem containing %q, got %v", tc.name, tc.want, problems)
		}
	}
}
