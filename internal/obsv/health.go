// Statistical-health watchdog: a rule engine the estimator feeds at its
// existing synchronization boundaries (particle-filter rounds and 256-draw
// stage-2 barriers). The rules flag the degeneracies that make an ECRIPSE
// estimate untrustworthy long before the CI does — ESS collapse, a single
// weight dominating a filter, a starved failure lobe, a CI half-width that
// stopped shrinking, blockade-classifier flip-rate drift — plus one
// wall-clock rule (pipelined-path stall-fraction regression).
//
// Determinism contract: every rule except the pipeline-stall rule is a pure
// function of scheduling-independent diagnostics, so the Report() that lands
// in a cached result is bit-identical at any parallelism and on every
// stage-2 execution path. Wall-clock-derived verdicts NEVER enter Report():
// they only fire the observer callback and are listed separately by
// WallViolations(), keeping the content-addressed result cache honest.
package obsv

import (
	"context"
	"fmt"
	"sync"
)

// Health rule names (the `rule` label of ecripsed_health_violations_total).
const (
	RuleESSCollapse    = "ess_collapse"     // filter ESS below ESSFrac × particles
	RuleMaxWeight      = "max_weight_spike" // one weight carries > MaxWeightFrac of a filter's mass
	RuleLobeStarvation = "lobe_starvation"  // fewer than MinUnique distinct candidates survived resampling
	RuleCIStall        = "ci_stall"         // CI half-width stopped shrinking across CIStallWindow barriers
	RuleFlipDrift      = "flip_drift"       // classifier disagreement rate drifted above its baseline
	RulePipelineStall  = "pipeline_stall"   // wall-clock only: stage-2 stall fraction regressed
)

// HealthConfig holds the rule thresholds. The zero value means "use
// DefaultHealthConfig" wherever a monitor is constructed from it. Integer
// fields where zero is a meaningful setting (GraceRounds, ESSPersist) treat
// zero as "default" and any negative value as an explicit zero.
type HealthConfig struct {
	// GraceRounds exempts the first rounds from the per-filter rules: the
	// cloud right after the concentrated boundary-search init is structurally
	// collapsed (ESS ≈ 1 before the first resampling spreads it), so flagging
	// round 0 would mark every run unhealthy. Negative means no grace.
	GraceRounds int `json:"grace_rounds"`
	// ESSFrac: a filter whose round ESS falls below ESSFrac × Particles is
	// collapsing onto few candidates.
	ESSFrac float64 `json:"ess_frac"`
	// ESSPersist: the ESS rule fires only after the same filter has stayed
	// below threshold for this many consecutive observed rounds — one noisy
	// dip is normal PF behavior, a sustained run means the lobe is stuck.
	// Negative means fire on the first dip.
	ESSPersist int `json:"ess_persist"`
	// MaxWeightFrac: a single candidate carrying more than this fraction of
	// a filter's weight mass dominates the lobe.
	MaxWeightFrac float64 `json:"max_weight_frac"`
	// MinUnique: fewer distinct candidates surviving resampling means the
	// lobe is starved (0 unique = the degenerate kept-cloud round).
	MinUnique int `json:"min_unique"`
	// CIStallWindow / CIStallTol: the CI half-width must shrink by at least
	// CIStallTol (relative) once per CIStallWindow consecutive barriers.
	CIStallWindow int     `json:"ci_stall_window"`
	CIStallTol    float64 `json:"ci_stall_tol"`
	// FlipMinObs / FlipRateDrift: once FlipMinObs replayed observations have
	// accumulated, a barrier window whose classifier disagreement rate
	// exceeds the running baseline by more than FlipRateDrift is drifting.
	FlipMinObs    int64   `json:"flip_min_obs"`
	FlipRateDrift float64 `json:"flip_rate_drift"`
	// StallFrac: wall-clock rule — the pipelined driver spending more than
	// this fraction of generation time stalled at barriers.
	StallFrac float64 `json:"stall_frac"`
}

// DefaultHealthConfig returns the thresholds used when no config is given.
func DefaultHealthConfig() HealthConfig {
	return HealthConfig{
		GraceRounds:   1,
		ESSFrac:       0.2,
		ESSPersist:    2,
		MaxWeightFrac: 0.9,
		MinUnique:     3,
		CIStallWindow: 8,
		CIStallTol:    0.01,
		FlipMinObs:    64,
		FlipRateDrift: 0.25,
		StallFrac:     0.5,
	}
}

// fill replaces zero fields with their defaults so a partially-specified
// config behaves sensibly.
func (c *HealthConfig) fill() {
	d := DefaultHealthConfig()
	switch {
	case c.GraceRounds == 0:
		c.GraceRounds = d.GraceRounds
	case c.GraceRounds < 0:
		c.GraceRounds = 0
	}
	if c.ESSFrac <= 0 {
		c.ESSFrac = d.ESSFrac
	}
	switch {
	case c.ESSPersist == 0:
		c.ESSPersist = d.ESSPersist
	case c.ESSPersist < 0:
		c.ESSPersist = 1
	}
	if c.MaxWeightFrac <= 0 {
		c.MaxWeightFrac = d.MaxWeightFrac
	}
	if c.MinUnique <= 0 {
		c.MinUnique = d.MinUnique
	}
	if c.CIStallWindow <= 0 {
		c.CIStallWindow = d.CIStallWindow
	}
	if c.CIStallTol <= 0 {
		c.CIStallTol = d.CIStallTol
	}
	if c.FlipMinObs <= 0 {
		c.FlipMinObs = d.FlipMinObs
	}
	if c.FlipRateDrift <= 0 {
		c.FlipRateDrift = d.FlipRateDrift
	}
	if c.StallFrac <= 0 {
		c.StallFrac = d.StallFrac
	}
}

// HealthViolation is one rule firing at one boundary.
type HealthViolation struct {
	Rule      string  `json:"rule"`
	Stage     string  `json:"stage"`            // "pf" or "is"
	Round     int     `json:"round"`            // PF round or IS barrier ordinal
	Filter    int     `json:"filter"`           // filter index for per-lobe rules; -1 otherwise
	Value     float64 `json:"value"`            // the observed statistic
	Threshold float64 `json:"threshold"`        // the limit it crossed
	Detail    string  `json:"detail,omitempty"` // human-readable one-liner
}

// HealthReport is the deterministic verdict block attached to results.
type HealthReport struct {
	// Healthy is true when no deterministic rule fired.
	Healthy bool `json:"healthy"`
	// Checks counts rule evaluations (a coverage signal: 0 means the
	// watchdog never ran, not that the run was clean).
	Checks int64 `json:"checks"`
	// Violations lists the deterministic rule firings, capped at
	// maxViolations; Suppressed counts the overflow.
	Violations []HealthViolation `json:"violations,omitempty"`
	Suppressed int64             `json:"suppressed,omitempty"`
}

// maxViolations bounds the stored violation list (a pathological run firing
// every round must not bloat cached results); the total count survives in
// Suppressed.
const maxViolations = 128

// FilterHealth is the per-filter slice of one PF round the monitor consumes
// (mirrors core.FilterDiag without importing it — core depends on obsv).
type FilterHealth struct {
	Particles     int
	ESS           float64
	MaxWeightFrac float64
	Unique        int
}

// HealthMonitor evaluates the rules. Safe for concurrent use, though the
// engine only observes from single-threaded barrier code. The optional
// observer fires on EVERY violation — deterministic and wall-clock alike —
// which is how violations stream over SSE and count into Prometheus.
type HealthMonitor struct {
	cfg      HealthConfig
	observer func(HealthViolation)

	mu         sync.Mutex
	checks     int64
	violations []HealthViolation
	suppressed int64
	wall       []HealthViolation // wall-clock verdicts, never in Report()

	// Per-filter ESS-persistence state: consecutive observed rounds each
	// filter has spent below its ESS threshold.
	essRun map[int]int

	// CI-stall state.
	lastCI    float64
	stallRun  int
	ciFired   bool
	isBarrier int

	// Flip-drift state.
	flipObs      int64
	flipDisagree int64
}

// NewHealthMonitor builds a monitor; zero-valued config fields take their
// defaults, observer may be nil.
func NewHealthMonitor(cfg HealthConfig, observer func(HealthViolation)) *HealthMonitor {
	cfg.fill()
	return &HealthMonitor{cfg: cfg, observer: observer, essRun: make(map[int]int)}
}

// record appends a deterministic violation (capped) and fires the observer.
func (m *HealthMonitor) record(v HealthViolation) {
	if len(m.violations) < maxViolations {
		m.violations = append(m.violations, v)
	} else {
		m.suppressed++
	}
	if m.observer != nil {
		m.observer(v)
	}
}

// ObservePFRound evaluates the per-filter stage-1 rules for one round.
// Rounds inside the grace window only update persistence state; the ESS rule
// additionally waits for ESSPersist consecutive sub-threshold rounds so a
// single noisy dip never flags a healthy filter.
func (m *HealthMonitor) ObservePFRound(round int, filters []FilterHealth) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// Grace rounds are skipped entirely — they neither fire rules nor feed
	// the persistence counters, so a structural round-0 collapse cannot
	// pre-charge the ESS run.
	if round < m.cfg.GraceRounds {
		return
	}
	for fi, f := range filters {
		m.checks += 3
		if minESS := m.cfg.ESSFrac * float64(f.Particles); f.ESS < minESS {
			m.essRun[fi]++
			if m.essRun[fi] >= m.cfg.ESSPersist {
				m.record(HealthViolation{
					Rule: RuleESSCollapse, Stage: "pf", Round: round, Filter: fi,
					Value: f.ESS, Threshold: minESS,
					Detail: fmt.Sprintf("filter %d ESS %.2f < %.2f (%.0f%% of %d particles) for %d consecutive rounds",
						fi, f.ESS, minESS, m.cfg.ESSFrac*100, f.Particles, m.essRun[fi]),
				})
			}
		} else {
			m.essRun[fi] = 0
		}
		if f.MaxWeightFrac > m.cfg.MaxWeightFrac {
			m.record(HealthViolation{
				Rule: RuleMaxWeight, Stage: "pf", Round: round, Filter: fi,
				Value: f.MaxWeightFrac, Threshold: m.cfg.MaxWeightFrac,
				Detail: fmt.Sprintf("filter %d max-weight fraction %.3f > %.3f", fi, f.MaxWeightFrac, m.cfg.MaxWeightFrac),
			})
		}
		if f.Unique < m.cfg.MinUnique {
			m.record(HealthViolation{
				Rule: RuleLobeStarvation, Stage: "pf", Round: round, Filter: fi,
				Value: float64(f.Unique), Threshold: float64(m.cfg.MinUnique),
				Detail: fmt.Sprintf("filter %d kept %d unique candidates < %d", fi, f.Unique, m.cfg.MinUnique),
			})
		}
	}
}

// ObserveISBatch evaluates the CI-stall rule at one stage-2 barrier. The
// rule fires once per run: CIStallWindow consecutive barriers in which the
// 95% half-width failed to shrink by CIStallTol (relative) while a non-zero
// estimate exists.
func (m *HealthMonitor) ObserveISBatch(samples int, p, ciHalf float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.isBarrier++
	m.checks++
	if p > 0 && m.lastCI > 0 && ciHalf > 0 {
		if (m.lastCI-ciHalf)/m.lastCI < m.cfg.CIStallTol {
			m.stallRun++
		} else {
			m.stallRun = 0
		}
		if m.stallRun >= m.cfg.CIStallWindow && !m.ciFired {
			m.ciFired = true
			m.record(HealthViolation{
				Rule: RuleCIStall, Stage: "is", Round: m.isBarrier - 1, Filter: -1,
				Value: ciHalf, Threshold: m.cfg.CIStallTol,
				Detail: fmt.Sprintf("CI half-width %.3g flat for %d barriers (samples=%d)", ciHalf, m.stallRun, samples),
			})
		}
	}
	m.lastCI = ciHalf
}

// ObserveFlips evaluates the classifier flip-rate drift rule for one
// barrier window: `replayed` observations replayed into the classifier, of
// which `disagreed` contradicted the frozen prediction. Once a baseline of
// FlipMinObs observations exists, a window whose disagreement rate exceeds
// the running baseline by FlipRateDrift is flagged.
func (m *HealthMonitor) ObserveFlips(stage string, round int, replayed, disagreed int64) {
	if m == nil || replayed <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.checks++
	if m.flipObs >= m.cfg.FlipMinObs && replayed >= 16 {
		baseline := float64(m.flipDisagree) / float64(m.flipObs)
		rate := float64(disagreed) / float64(replayed)
		if rate-baseline > m.cfg.FlipRateDrift {
			m.record(HealthViolation{
				Rule: RuleFlipDrift, Stage: stage, Round: round, Filter: -1,
				Value: rate, Threshold: baseline + m.cfg.FlipRateDrift,
				Detail: fmt.Sprintf("classifier disagreement %.3f vs baseline %.3f over %d replays", rate, baseline, replayed),
			})
		}
	}
	m.flipObs += replayed
	m.flipDisagree += disagreed
}

// ObservePipeline evaluates the wall-clock stall-fraction rule once at the
// end of a pipelined stage 2. Its verdict fires the observer and is listed
// by WallViolations() but never enters Report() — wall-clock numbers must
// not reach content-addressed results.
func (m *HealthMonitor) ObservePipeline(batches, genNS, stallNS int64) {
	if m == nil || batches <= 0 || genNS <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	frac := float64(stallNS) / float64(genNS)
	if frac > m.cfg.StallFrac {
		v := HealthViolation{
			Rule: RulePipelineStall, Stage: "is", Round: int(batches), Filter: -1,
			Value: frac, Threshold: m.cfg.StallFrac,
			Detail: fmt.Sprintf("pipeline stalled %.0f%% of generation time over %d batches", frac*100, batches),
		}
		m.wall = append(m.wall, v)
		if m.observer != nil {
			m.observer(v)
		}
	}
}

// Report returns the deterministic verdict block (safe to cache with the
// result). The returned slices are copies.
func (m *HealthMonitor) Report() *HealthReport {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	r := &HealthReport{
		Healthy:    len(m.violations) == 0 && m.suppressed == 0,
		Checks:     m.checks,
		Suppressed: m.suppressed,
	}
	if len(m.violations) > 0 {
		r.Violations = append([]HealthViolation(nil), m.violations...)
	}
	return r
}

// WallViolations returns the wall-clock-derived verdicts (observational
// only; excluded from Report).
func (m *HealthMonitor) WallViolations() []HealthViolation {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]HealthViolation(nil), m.wall...)
}

// Context carrier: the engine looks the monitor up at RunCtx entry, exactly
// like the emitter.

type healthKey struct{}

// WithHealth returns a context carrying the monitor.
func WithHealth(ctx context.Context, m *HealthMonitor) context.Context {
	return context.WithValue(ctx, healthKey{}, m)
}

// HealthFrom returns the context's monitor, or nil.
func HealthFrom(ctx context.Context) *HealthMonitor {
	m, _ := ctx.Value(healthKey{}).(*HealthMonitor)
	return m
}

// Summary renders the report as a short text block (the CLI -health
// output): one line per violation, a one-line verdict otherwise.
func (r *HealthReport) Summary() string {
	if r == nil {
		return "health: not evaluated\n"
	}
	if r.Healthy {
		return fmt.Sprintf("health: OK (%d checks)\n", r.Checks)
	}
	b := appendf(nil, "health: %d violation(s) in %d checks\n", int64(len(r.Violations))+r.Suppressed, r.Checks)
	for _, v := range r.Violations {
		b = appendf(b, "  [%s] %s round %d: %s\n", v.Rule, v.Stage, v.Round, v.Detail)
	}
	if r.Suppressed > 0 {
		b = appendf(b, "  (+%d suppressed)\n", r.Suppressed)
	}
	return string(b)
}
