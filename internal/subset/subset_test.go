package subset

import (
	"math"
	"math/rand"
	"testing"

	"ecripse/internal/linalg"
	"ecripse/internal/sram"
)

func TestSubsetLinearMargin(t *testing.T) {
	// g(x) = 3 − x0: failure P(x0 > 3) = 1.3499e-3.
	g := func(x linalg.Vector) float64 { return 3 - x[0] }
	var ps []float64
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		res := Estimate(rng, 4, g, &Options{N: 2000})
		ps = append(ps, res.Estimate.P)
		if res.Levels < 2 {
			t.Fatalf("seed %d: expected multiple levels, got %d", seed, res.Levels)
		}
	}
	mean := 0.0
	for _, p := range ps {
		mean += p
	}
	mean /= float64(len(ps))
	const want = 1.3499e-3
	if mean < want*0.6 || mean > want*1.6 {
		t.Fatalf("mean estimate over seeds = %v want ~%v (runs: %v)", mean, want, ps)
	}
}

func TestSubsetDeepTail(t *testing.T) {
	// P(x0 > 4.5) = 3.398e-6 — far beyond plain MC at this budget.
	g := func(x linalg.Vector) float64 { return 4.5 - x[0] }
	rng := rand.New(rand.NewSource(7))
	res := Estimate(rng, 2, g, &Options{N: 3000})
	const want = 3.398e-6
	if res.Estimate.P < want/4 || res.Estimate.P > want*4 {
		t.Fatalf("deep-tail estimate %v want ~%v", res.Estimate.P, want)
	}
	// Cost stays a small multiple of levels × N.
	if res.Sims > int64(12*3000) {
		t.Fatalf("cost blew up: %d sims", res.Sims)
	}
}

func TestSubsetThresholdsDecrease(t *testing.T) {
	g := func(x linalg.Vector) float64 { return 3.5 - x[0] }
	rng := rand.New(rand.NewSource(3))
	res := Estimate(rng, 3, g, nil)
	for i := 1; i < len(res.Thresholds); i++ {
		if res.Thresholds[i] >= res.Thresholds[i-1] {
			t.Fatalf("thresholds not decreasing: %v", res.Thresholds)
		}
	}
	if len(res.Thresholds) > 0 && res.Thresholds[len(res.Thresholds)-1] <= 0 {
		t.Fatal("intermediate threshold crossed zero")
	}
}

func TestSubsetFrequentEventOneLevel(t *testing.T) {
	// P(x0 > 0.5) = 0.3085: the first-level threshold is already <= 0.
	g := func(x linalg.Vector) float64 { return 0.5 - x[0] }
	rng := rand.New(rand.NewSource(4))
	res := Estimate(rng, 1, g, &Options{N: 5000})
	if res.Levels != 1 {
		t.Fatalf("levels = %d", res.Levels)
	}
	if math.Abs(res.Estimate.P-0.3085) > 0.02 {
		t.Fatalf("P = %v", res.Estimate.P)
	}
}

func TestSubsetOnSRAMCell(t *testing.T) {
	// Read margin at 0.5 V: reference Pfail ≈ 3.9e-3.
	cell := sram.NewCell(0.5)
	sigma := cell.SigmaVth()
	opt := &sram.SNMOptions{GridN: 24, BisectIter: 24}
	g := func(x linalg.Vector) float64 {
		var sh sram.Shifts
		for i := range sh {
			sh[i] = x[i] * sigma[i]
		}
		return cell.ReadSNM(sh, opt)
	}
	rng := rand.New(rand.NewSource(5))
	res := Estimate(rng, sram.NumTransistors, g, &Options{N: 1500})
	const want = 3.9e-3
	if res.Estimate.P < want*0.5 || res.Estimate.P > want*2 {
		t.Fatalf("SRAM subset estimate %v want ~%v", res.Estimate.P, want)
	}
	if res.Sims > 20000 {
		t.Fatalf("cost too high: %d", res.Sims)
	}
}

func TestSubsetMaxLevelsGuard(t *testing.T) {
	// A margin that never fails: the level cap must terminate the run with
	// an infinite relative error rather than looping.
	g := func(x linalg.Vector) float64 { return 100 }
	rng := rand.New(rand.NewSource(6))
	res := Estimate(rng, 2, g, &Options{N: 200, MaxLevels: 3})
	if !math.IsInf(res.Estimate.RelErr, 1) {
		t.Fatalf("expected unbounded relerr, got %v", res.Estimate.RelErr)
	}
	if res.Levels != 3 {
		t.Fatalf("levels = %d", res.Levels)
	}
}
