// Package subset implements subset simulation (Au & Beck, 2001) — the
// third rare-event estimator family alongside importance sampling and
// statistical blockade. The failure probability is decomposed into a
// product of conditional probabilities over nested level sets of a
// continuous performance margin g(x) (here: the read noise margin), each
// estimated by Markov-chain Monte Carlo conditioned on the previous level.
//
// Subset simulation needs only the continuous margin, no classifier and no
// alternative distribution; its cost is levels × samples, which makes it a
// strong general-purpose baseline but — unlike ECRIPSE — every evaluation
// is a real simulation and nothing amortizes across bias conditions.
package subset

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"ecripse/internal/linalg"
	"ecripse/internal/stats"
)

// Margin is a continuous performance function; failure is g(x) < 0.
// Every call is expected to cost one transistor-level simulation.
type Margin func(x linalg.Vector) float64

// Options configures the estimator.
type Options struct {
	N         int     // samples per level (default 1000)
	P0        float64 // conditional level probability (default 0.1)
	MaxLevels int     // safety cap (default 12)
	Step      float64 // componentwise Metropolis proposal std (default 0.8)
}

func (o *Options) fill() {
	if o.N == 0 {
		o.N = 1000
	}
	if o.P0 == 0 {
		o.P0 = 0.1
	}
	if o.MaxLevels == 0 {
		o.MaxLevels = 12
	}
	if o.Step == 0 {
		o.Step = 0.8
	}
}

// Result reports the estimate and the level thresholds.
type Result struct {
	Estimate   stats.Estimate
	Thresholds []float64 // intermediate margin levels L1 > L2 > ... > 0
	Levels     int
	Sims       int64
}

// Estimate runs subset simulation in a dim-dimensional standard-normal
// space. The returned CI95/RelErr use the standard SuS delta-method
// approximation (independent-level assumption), which is known to be
// slightly optimistic; treat it as indicative.
func Estimate(rng *rand.Rand, dim int, g Margin, opts *Options) Result {
	res, _ := EstimateCtx(context.Background(), rng, dim, g, opts)
	return res
}

// EstimateCtx is Estimate with cancellation, checked between levels and
// between Markov chains within a level. On cancellation the result reached
// so far (the conditional-probability product down to the last completed
// level, flagged with an infinite relative error) is returned with
// ctx.Err(); with an uncancelled context it is bit-identical to Estimate.
func EstimateCtx(ctx context.Context, rng *rand.Rand, dim int, g Margin, opts *Options) (Result, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	o.fill()

	var sims int64
	eval := func(x linalg.Vector) float64 {
		sims++
		return g(x)
	}

	// Level 0: plain Monte Carlo.
	xs := make([]linalg.Vector, o.N)
	gs := make([]float64, o.N)
	for i := range xs {
		x := make(linalg.Vector, dim)
		for d := range x {
			x[d] = rng.NormFloat64()
		}
		xs[i] = x
		gs[i] = eval(x)
	}

	logP := 0.0
	varSum := 0.0 // Σ (1-pi)/(pi·N) — delta-method variance of log P
	var thresholds []float64

	partial := func(levels int) (Result, error) {
		p := math.Exp(logP)
		cov := math.Sqrt(varSum)
		return Result{
			Estimate: stats.Estimate{
				P: p, CI95: stats.Z95 * cov * p, RelErr: math.Inf(1),
				N: o.N * levels, Sims: sims,
			},
			Thresholds: thresholds,
			Levels:     levels,
			Sims:       sims,
		}, ctx.Err()
	}

	for level := 0; level < o.MaxLevels; level++ {
		if ctx.Err() != nil {
			return partial(level)
		}
		// Threshold at the p0 quantile of the current population.
		idx := make([]int, len(gs))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return gs[idx[a]] < gs[idx[b]] })
		k := int(o.P0 * float64(o.N))
		if k < 1 {
			k = 1
		}
		threshold := gs[idx[k-1]]

		if threshold <= 0 {
			// Final level: count failures directly.
			fails := 0
			for _, v := range gs {
				if v < 0 {
					fails++
				}
			}
			pf := float64(fails) / float64(o.N)
			if pf <= 0 {
				pf = 0.5 / float64(o.N) // degenerate guard
			}
			logP += math.Log(pf)
			varSum += (1 - pf) / (pf * float64(o.N))
			p := math.Exp(logP)
			cov := math.Sqrt(varSum) // coefficient of variation of the product
			return Result{
				Estimate: stats.Estimate{
					P: p, CI95: stats.Z95 * cov * p, RelErr: stats.Z95 * cov,
					N: o.N * (level + 1), Sims: sims,
				},
				Thresholds: thresholds,
				Levels:     level + 1,
				Sims:       sims,
			}, nil
		}

		thresholds = append(thresholds, threshold)
		logP += math.Log(o.P0)
		varSum += (1 - o.P0) / (o.P0 * float64(o.N))

		// Seeds: the k samples at or below the threshold.
		seeds := make([]linalg.Vector, 0, k)
		seedGs := make([]float64, 0, k)
		for _, i := range idx[:k] {
			seeds = append(seeds, xs[i])
			seedGs = append(seedGs, gs[i])
		}

		// Regenerate N samples by modified Metropolis chains from the seeds,
		// conditioned on g < threshold.
		newXs := make([]linalg.Vector, 0, o.N)
		newGs := make([]float64, 0, o.N)
		chainLen := o.N / len(seeds)
		for s := range seeds {
			if ctx.Err() != nil {
				return partial(level)
			}
			x := seeds[s].Clone()
			gx := seedGs[s]
			steps := chainLen
			if s < o.N%len(seeds) {
				steps++
			}
			for t := 0; t < steps; t++ {
				cand := x.Clone()
				for d := range cand {
					// Componentwise Metropolis w.r.t. the standard normal.
					prop := cand[d] + o.Step*rng.NormFloat64()
					ratio := math.Exp(0.5 * (cand[d]*cand[d] - prop*prop))
					if rng.Float64() < math.Min(1, ratio) {
						cand[d] = prop
					}
				}
				if gc := eval(cand); gc < threshold {
					x, gx = cand, gc
				}
				newXs = append(newXs, x.Clone())
				newGs = append(newGs, gx)
			}
		}
		xs, gs = newXs, newGs
	}

	// Ran out of levels: report the bound reached.
	p := math.Exp(logP)
	cov := math.Sqrt(varSum)
	return Result{
		Estimate: stats.Estimate{
			P: p, CI95: stats.Z95 * cov * p, RelErr: math.Inf(1),
			N: o.N * o.MaxLevels, Sims: sims,
		},
		Thresholds: thresholds,
		Levels:     o.MaxLevels,
		Sims:       sims,
	}, nil
}
