// Package rtn implements the paper's random-telegraph-noise model
// (Section II-D): bias-dependent capture/emission time constants under a
// switching gate with duty ratio α (eqs. (7)–(8)), Poisson-distributed
// effective trapped-charge counts (eq. (10)) and the resulting
// threshold-voltage shift ΔVth = q·Neff/(Cox·L·W) (eq. (9)).
//
// It also provides a two-state Markov time-domain trace generator, which is
// not needed by the failure-probability estimators but reproduces the
// waveform picture of Fig. 3(b) and lets tests validate the stationary
// occupancy against the analytic value.
package rtn

import (
	"fmt"
	"math"
	"math/rand"

	"ecripse/internal/randx"
	"ecripse/internal/sram"
)

// ElementaryCharge is q in coulombs.
const ElementaryCharge = 1.602176634e-19

// Config carries the RTN model constants of Table I.
type Config struct {
	// Lambda is the defect density [1/m²]; Table I: 4e-3 nm⁻² = 4e15 m⁻².
	Lambda float64
	// Time constants [s] in the ON and OFF gate states (Table I).
	TauOnE, TauOffE float64
	TauOnC, TauOffC float64
	// AccessDuty is the ON duty of the access transistors (word-line
	// activity), used only when IncludeAccess is true.
	AccessDuty float64
	// IncludeAccess adds trap populations to the access transistors. The
	// default excludes them: their gate duty is workload-dependent and not
	// part of the paper's storage-duty model, and in this substrate a
	// weakened access device *stabilizes* the read (see DESIGN.md §2), so a
	// large constant access-trap population would mask the duty-dependent
	// effect Fig. 8 studies.
	IncludeAccess bool
	// AmpScale multiplies the per-trap ΔVth amplitude; the cell's
	// calibration factor and the RTN boost are applied here so the
	// RTN-vs-RDF failure-probability ratios land in the paper's regime.
	AmpScale float64
	// ExponentialAmps draws each trapped charge's amplitude from an
	// exponential distribution with the eq.-(9) mean instead of the fixed
	// value — the amplitude heterogeneity widely reported for oxide traps
	// (an extension beyond the paper; mean shift is unchanged, variance
	// doubles).
	ExponentialAmps bool
}

// AmpBoost is the calibration of the RTN per-trap amplitude relative to the
// (already CalibrationK-scaled) RDF disturbances. The paper's BSIM cell has
// a strongly negative driver ΔVth sensitivity which our EKV substitute
// lacks (the disturb-level and trip-point effects cancel), so the same trap
// population moves our cell's margin less; the boost restores the paper's
// RTN-aware/RDF-only failure-probability ratio (≈6× at the worst duty
// ratio). See DESIGN.md §2 and EXPERIMENTS.md.
const AmpBoost = 3.0

// TableIConfig returns the experimental conditions of Table I with the
// amplitude calibrated to the given cell.
func TableIConfig(cell *sram.Cell) Config {
	return Config{
		Lambda:     4e-3 * 1e18, // 4e-3 nm⁻² in m⁻²
		TauOnE:     1.2,
		TauOffE:    0.1,
		TauOnC:     0.01,
		TauOffC:    0.12,
		AccessDuty: 0,
		AmpScale:   cell.CalK * AmpBoost,
	}
}

// TimeConstants returns the duty-averaged capture and emission time
// constants of a device that is ON a fraction duty of the time
// (paper eqs. (7) and (8)).
func (c Config) TimeConstants(duty float64) (tauC, tauE float64) {
	if duty < 0 || duty > 1 {
		panic(fmt.Sprintf("rtn: duty %v out of [0,1]", duty))
	}
	tauC = duty*c.TauOnC + (1-duty)*c.TauOffC
	tauE = duty*c.TauOnE + (1-duty)*c.TauOffE
	return tauC, tauE
}

// Occupancy returns the trap-occupation probability τc/(τc+τe) used by the
// paper's eq. (10). (Note: the paper writes the ratio with τc in the
// numerator; see DESIGN.md §2 for the convention discussion.)
func (c Config) Occupancy(duty float64) float64 {
	tc, te := c.TimeConstants(duty)
	return tc / (tc + te)
}

// DeviceDuty maps the cell-storage duty ratio alpha (the fraction of time
// the cell stores "0", i.e. V1 = 0 and V2 = Vdd) to the ON duty of
// transistor tr:
//
//	D1 (gate V2, NMOS): ON while storing 0        → alpha
//	L2 (gate V1, PMOS): ON while V1 low           → alpha
//	D2 (gate V1, NMOS): ON while storing 1        → 1 − alpha
//	L1 (gate V2, PMOS): ON while V2 low           → 1 − alpha
//	A1, A2: word-line activity                    → AccessDuty
//
// The mapping is mirror-symmetric under alpha → 1−alpha, which is the origin
// of the bilateral symmetry of the paper's Fig. 8.
func (c Config) DeviceDuty(tr int, alpha float64) float64 {
	if alpha < 0 || alpha > 1 {
		panic(fmt.Sprintf("rtn: alpha %v out of [0,1]", alpha))
	}
	switch tr {
	case sram.D1, sram.L2:
		return alpha
	case sram.D2, sram.L1:
		return 1 - alpha
	case sram.A1, sram.A2:
		return c.AccessDuty
	default:
		panic(fmt.Sprintf("rtn: unknown transistor index %d", tr))
	}
}

// Sampler draws per-transistor RTN threshold shifts for a fixed cell and
// duty ratio. Construction precomputes the per-device Poisson means and
// per-trap amplitudes; Sample is then cheap and allocation-free.
type Sampler struct {
	cfg    Config
	alpha  float64
	mean   [sram.NumTransistors]float64 // Poisson mean: occupancy·λ·L·W
	amp    [sram.NumTransistors]float64 // ΔVth per trapped charge [V]
	traps  [sram.NumTransistors]float64 // mean total defect count λ·L·W
	occupt [sram.NumTransistors]float64
}

// NewSampler builds a sampler for the cell at duty ratio alpha.
func NewSampler(cell *sram.Cell, cfg Config, alpha float64) *Sampler {
	s := &Sampler{cfg: cfg, alpha: alpha}
	for i := 0; i < sram.NumTransistors; i++ {
		d := &cell.Devs[i]
		nTraps := cfg.Lambda * d.L * d.W
		if !cfg.IncludeAccess && (i == sram.A1 || i == sram.A2) {
			nTraps = 0
		}
		occ := cfg.Occupancy(cfg.DeviceDuty(i, alpha))
		s.traps[i] = nTraps
		s.occupt[i] = occ
		s.mean[i] = occ * nTraps
		s.amp[i] = cfg.AmpScale * ElementaryCharge / (d.Cox() * d.L * d.W)
	}
	return s
}

// Alpha returns the duty ratio the sampler was built for.
func (s *Sampler) Alpha() float64 { return s.alpha }

// MeanTraps returns the mean total defect count λ·L·W of transistor tr.
func (s *Sampler) MeanTraps(tr int) float64 { return s.traps[tr] }

// Occupancy returns the trap-occupation probability of transistor tr.
func (s *Sampler) Occupancy(tr int) float64 { return s.occupt[tr] }

// TrapAmplitude returns the ΔVth per trapped charge of transistor tr [V].
func (s *Sampler) TrapAmplitude(tr int) float64 { return s.amp[tr] }

// Sample draws one RTN shift vector: Neff ~ Poisson(occ·λ·L·W) per device,
// ΔVth = amp·Neff (paper eqs. (9)–(10)); with ExponentialAmps each trapped
// charge contributes an Exp(amp)-distributed shift instead.
func (s *Sampler) Sample(rng *rand.Rand) sram.Shifts {
	var sh sram.Shifts
	for i := range sh {
		n := randx.Poisson(rng, s.mean[i])
		if !s.cfg.ExponentialAmps {
			sh[i] = s.amp[i] * float64(n)
			continue
		}
		total := 0.0
		for k := 0; k < n; k++ {
			total += rng.ExpFloat64() * s.amp[i]
		}
		sh[i] = total
	}
	return sh
}

// MeanShift returns the expected RTN shift vector E[ΔVth] = amp·occ·λ·L·W.
func (s *Sampler) MeanShift() sram.Shifts {
	var sh sram.Shifts
	for i := range sh {
		sh[i] = s.amp[i] * s.mean[i]
	}
	return sh
}

// StdShift returns the per-device standard deviation of the RTN shift:
// amp·sqrt(mean) for fixed amplitudes (compound-Poisson with unit jumps),
// amp·sqrt(2·mean) with exponential amplitudes (E[A²] = 2·amp²).
func (s *Sampler) StdShift() sram.Shifts {
	factor := 1.0
	if s.cfg.ExponentialAmps {
		factor = 2
	}
	var sh sram.Shifts
	for i := range sh {
		sh[i] = s.amp[i] * math.Sqrt(factor*s.mean[i])
	}
	return sh
}
