package rtn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ecripse/internal/sram"
)

func cfgAndCell() (Config, *sram.Cell) {
	cell := sram.NewCell(0.7)
	return TableIConfig(cell), cell
}

func TestTimeConstantsEndpoints(t *testing.T) {
	cfg, _ := cfgAndCell()
	tc, te := cfg.TimeConstants(1)
	if tc != cfg.TauOnC || te != cfg.TauOnE {
		t.Fatalf("duty=1: tc=%v te=%v", tc, te)
	}
	tc, te = cfg.TimeConstants(0)
	if tc != cfg.TauOffC || te != cfg.TauOffE {
		t.Fatalf("duty=0: tc=%v te=%v", tc, te)
	}
}

func TestOccupancyTableIValues(t *testing.T) {
	cfg, _ := cfgAndCell()
	// duty 0: 0.12/(0.12+0.1) = 0.5454…
	if got := cfg.Occupancy(0); math.Abs(got-0.12/0.22) > 1e-12 {
		t.Fatalf("occ(0) = %v", got)
	}
	// duty 1: 0.01/(0.01+1.2) = 0.008264…
	if got := cfg.Occupancy(1); math.Abs(got-0.01/1.21) > 1e-12 {
		t.Fatalf("occ(1) = %v", got)
	}
	// duty 0.5: 0.065/(0.065+0.65) = 0.0909…
	if got := cfg.Occupancy(0.5); math.Abs(got-0.065/0.715) > 1e-12 {
		t.Fatalf("occ(0.5) = %v", got)
	}
}

func TestOccupancyMonotoneInDuty(t *testing.T) {
	// With Table I constants, more ON time means lower occupancy.
	cfg, _ := cfgAndCell()
	prev := math.Inf(1)
	for d := 0.0; d <= 1.0001; d += 0.05 {
		occ := cfg.Occupancy(math.Min(d, 1))
		if occ > prev {
			t.Fatalf("occupancy not decreasing at duty %v", d)
		}
		prev = occ
	}
}

func TestDeviceDutyMirrorSymmetry(t *testing.T) {
	cfg, _ := cfgAndCell()
	// Mirror pairs under alpha -> 1-alpha: D1<->D2, L1<->L2, A1<->A2.
	pairs := [][2]int{{sram.D1, sram.D2}, {sram.L1, sram.L2}, {sram.A1, sram.A2}}
	for _, alpha := range []float64{0, 0.25, 0.5, 0.8, 1} {
		for _, p := range pairs {
			a := cfg.DeviceDuty(p[0], alpha)
			b := cfg.DeviceDuty(p[1], 1-alpha)
			if math.Abs(a-b) > 1e-15 {
				t.Fatalf("mirror broken: duty(%d,%v)=%v duty(%d,%v)=%v", p[0], alpha, a, p[1], 1-alpha, b)
			}
		}
	}
}

func TestDeviceDutyPanics(t *testing.T) {
	cfg, _ := cfgAndCell()
	for _, fn := range []func(){
		func() { cfg.DeviceDuty(sram.D1, -0.1) },
		func() { cfg.DeviceDuty(99, 0.5) },
		func() { cfg.TimeConstants(1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMeanTrapsSmallestTransistor(t *testing.T) {
	// Paper: λ = 4e-3 nm⁻² means the 30nm×16nm transistor holds 1.92
	// defects on average.
	cfg, cell := cfgAndCell()
	s := NewSampler(cell, cfg, 0.5)
	if got := s.MeanTraps(sram.D1); math.Abs(got-1.92) > 1e-9 {
		t.Fatalf("driver mean traps = %v", got)
	}
	if got := s.MeanTraps(sram.L1); math.Abs(got-3.84) > 1e-9 {
		t.Fatalf("load mean traps = %v", got)
	}
}

func TestTrapAmplitudeMagnitude(t *testing.T) {
	// q/(Cox·L·W) for the 16x30 nm NMOS with tox=0.95nm is ≈ 9.2 mV,
	// times the calibration factor.
	cfg, cell := cfgAndCell()
	s := NewSampler(cell, cfg, 0.5)
	want := cell.CalK * AmpBoost * 9.18e-3
	if got := s.TrapAmplitude(sram.D1); math.Abs(got-want) > 6e-4 {
		t.Fatalf("driver trap amplitude = %v want ~%v", got, want)
	}
	// Load is twice as wide: half the amplitude.
	if got := s.TrapAmplitude(sram.L1); math.Abs(got-want/2) > 3e-4 {
		t.Fatalf("load trap amplitude = %v", got)
	}
}

func TestSampleMomentsMatchAnalytic(t *testing.T) {
	cfg, cell := cfgAndCell()
	s := NewSampler(cell, cfg, 0.3)
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	var sum, sum2 [sram.NumTransistors]float64
	for i := 0; i < n; i++ {
		sh := s.Sample(rng)
		for j, v := range sh {
			sum[j] += v
			sum2[j] += v * v
		}
	}
	mean := s.MeanShift()
	std := s.StdShift()
	for j := 0; j < sram.NumTransistors; j++ {
		m := sum[j] / n
		sd := math.Sqrt(sum2[j]/n - m*m)
		if math.Abs(m-mean[j]) > 5e-4 {
			t.Fatalf("device %d mean %v want %v", j, m, mean[j])
		}
		if math.Abs(sd-std[j]) > 1e-3 {
			t.Fatalf("device %d std %v want %v", j, sd, std[j])
		}
	}
}

func TestSampleNonNegative(t *testing.T) {
	// RTN shifts are one-sided: traps only weaken devices.
	cfg, cell := cfgAndCell()
	s := NewSampler(cell, cfg, 0.9)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		for _, v := range s.Sample(rng) {
			if v < 0 {
				t.Fatal("negative RTN shift")
			}
		}
	}
}

func TestAccessDutyZeroMeansMaxOccupancy(t *testing.T) {
	cfg, cell := cfgAndCell()
	s := NewSampler(cell, cfg, 0.5)
	if got, want := s.Occupancy(sram.A1), cfg.Occupancy(0); got != want {
		t.Fatalf("access occupancy = %v want %v", got, want)
	}
}

func TestAlphaSymmetryOfSampler(t *testing.T) {
	cfg, cell := cfgAndCell()
	a := NewSampler(cell, cfg, 0.2)
	b := NewSampler(cell, cfg, 0.8)
	// Mirrored devices swap their means.
	if math.Abs(a.MeanShift()[sram.D1]-b.MeanShift()[sram.D2]) > 1e-15 {
		t.Fatal("mean shift not mirror symmetric")
	}
	if math.Abs(a.MeanShift()[sram.L2]-b.MeanShift()[sram.L1]) > 1e-15 {
		t.Fatal("load mean shift not mirror symmetric")
	}
}

func TestTraceStationaryOccupancy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := Trap{TauC: 0.12, TauE: 0.1, Amp: 1}
	// Physical stationary occupancy: dwell-time weighted.
	occ := tr.TauE / (tr.TauC + tr.TauE)
	trace := Trace(rng, []Trap{tr}, 0.001, 2_000_000)
	frac := 0.0
	for _, v := range trace {
		if v > 0.5 {
			frac++
		}
	}
	frac /= float64(len(trace))
	if math.Abs(frac-occ) > 0.02 {
		t.Fatalf("trace occupancy %v want %v", frac, occ)
	}
}

func TestTraceTwoLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := Trap{TauC: 0.1, TauE: 0.1, Amp: 0.0092}
	trace := Trace(rng, []Trap{tr}, 0.01, 10000)
	for _, v := range trace {
		if v != 0 && math.Abs(v-0.0092) > 1e-15 {
			t.Fatalf("unexpected trace level %v", v)
		}
	}
}

func TestTraceSumsTraps(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	traps := []Trap{
		{TauC: 0.05, TauE: 0.1, Amp: 1},
		{TauC: 0.2, TauE: 0.05, Amp: 2},
	}
	trace := Trace(rng, traps, 0.005, 50000)
	seen := map[float64]bool{}
	for _, v := range trace {
		seen[v] = true
		if v < 0 || v > 3 {
			t.Fatalf("trace out of range: %v", v)
		}
	}
	if len(seen) < 3 {
		t.Fatalf("expected multiple levels, saw %v", seen)
	}
}

func TestCellTrapsCount(t *testing.T) {
	cfg, cell := cfgAndCell()
	s := NewSampler(cell, cfg, 0.5)
	rng := rand.New(rand.NewSource(6))
	total := 0
	const n = 20000
	for i := 0; i < n; i++ {
		total += len(s.CellTraps(rng, sram.D1))
	}
	mean := float64(total) / n
	if math.Abs(mean-1.92) > 0.05 {
		t.Fatalf("mean trap count %v want 1.92", mean)
	}
}

// Property: occupancy is always a probability.
func TestPropertyOccupancyInUnitInterval(t *testing.T) {
	cfg, _ := cfgAndCell()
	f := func(d uint8) bool {
		duty := float64(d) / 255
		occ := cfg.Occupancy(duty)
		return occ >= 0 && occ <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExponentialAmplitudeMoments(t *testing.T) {
	cfg, cell := cfgAndCell()
	cfg.ExponentialAmps = true
	s := NewSampler(cell, cfg, 0.3)
	rng := rand.New(rand.NewSource(21))
	const n = 300000
	var sum, sum2 float64
	tr := sram.D1
	for i := 0; i < n; i++ {
		v := s.Sample(rng)[tr]
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-s.MeanShift()[tr]) > 2e-3*s.MeanShift()[tr]+2e-4 {
		t.Fatalf("mean %v want %v", mean, s.MeanShift()[tr])
	}
	if math.Abs(sd-s.StdShift()[tr]) > 0.02*s.StdShift()[tr] {
		t.Fatalf("std %v want %v", sd, s.StdShift()[tr])
	}
}

func TestExponentialAmplitudesWidenDistribution(t *testing.T) {
	cfg, cell := cfgAndCell()
	fixed := NewSampler(cell, cfg, 0.3)
	cfg.ExponentialAmps = true
	exp := NewSampler(cell, cfg, 0.3)
	if exp.MeanShift() != fixed.MeanShift() {
		t.Fatal("mean shift must not change")
	}
	if exp.StdShift()[sram.D1] <= fixed.StdShift()[sram.D1] {
		t.Fatal("exponential amplitudes must widen the distribution")
	}
}
