package rtn

import (
	"math/rand"

	"ecripse/internal/randx"
)

// Trap is a single two-state defect for time-domain simulation: it captures
// a carrier after an exponential waiting time with mean TauC and emits after
// a mean TauE, shifting the threshold by Amp while occupied (Fig. 3).
type Trap struct {
	TauC, TauE float64 // mean capture / emission times [s]
	Amp        float64 // ΔVth while occupied [V]
}

// Trace simulates the summed ΔVth waveform of a set of independent traps,
// sampled every dt seconds for n points. Initial occupancy of each trap is
// drawn from the *physical* stationary distribution τe/(τc+τe) (the mean
// dwell in the occupied state is the emission time constant), so the trace
// is stationary from t = 0. Note that the estimators follow the paper's
// eq. (10), which writes the occupancy as τc/(τc+τe); with the Table I
// constants the two conventions mirror the duty axis (see DESIGN.md §2).
func Trace(rng *rand.Rand, traps []Trap, dt float64, n int) []float64 {
	type state struct {
		occupied bool
		next     float64 // time of next transition [s]
	}
	states := make([]state, len(traps))
	for i, tr := range traps {
		occ := tr.TauE / (tr.TauC + tr.TauE)
		s := state{occupied: rng.Float64() < occ}
		s.next = nextTransition(rng, tr, s.occupied, 0)
		states[i] = s
	}

	out := make([]float64, n)
	for k := 0; k < n; k++ {
		t := float64(k) * dt
		total := 0.0
		for i := range states {
			s := &states[i]
			for s.next <= t {
				s.occupied = !s.occupied
				s.next = nextTransition(rng, traps[i], s.occupied, s.next)
			}
			if s.occupied {
				total += traps[i].Amp
			}
		}
		out[k] = total
	}
	return out
}

// nextTransition draws the next switching time from time now given the
// current occupancy: an occupied trap emits after Exp(TauE), an empty trap
// captures after Exp(TauC).
func nextTransition(rng *rand.Rand, tr Trap, occupied bool, now float64) float64 {
	mean := tr.TauC
	if occupied {
		mean = tr.TauE
	}
	return now + rng.ExpFloat64()*mean
}

// CellTraps builds the time-domain trap set of one transistor from a
// sampler: the integer count is drawn as Poisson(λ·L·W) and every trap gets
// the device's per-charge amplitude and the duty-averaged time constants.
func (s *Sampler) CellTraps(rng *rand.Rand, tr int) []Trap {
	n := randx.Poisson(rng, s.traps[tr])
	tc, te := s.cfg.TimeConstants(s.cfg.DeviceDuty(tr, s.alpha))
	out := make([]Trap, n)
	for i := range out {
		out[i] = Trap{TauC: tc, TauE: te, Amp: s.amp[tr]}
	}
	return out
}
