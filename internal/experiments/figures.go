package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"

	"ecripse/internal/core"
	"ecripse/internal/linalg"
	"ecripse/internal/montecarlo"
	"ecripse/internal/rtn"
	"ecripse/internal/sis"
	"ecripse/internal/sram"
	"ecripse/internal/stats"
)

// statsEstimate packages a final series point as an Estimate.
func statsEstimate(p stats.Point, n int, sims int64) stats.Estimate {
	return stats.Estimate{P: p.P, CI95: p.CI95, RelErr: p.RelErr, N: n, Sims: sims}
}

// cellValue wraps the SRAM indicator as a counted montecarlo.Value in the
// normalized space.
func cellValue(cell *sram.Cell, c *montecarlo.Counter) montecarlo.Value {
	sigma := cell.SigmaVth()
	opt := &sram.SNMOptions{GridN: 24, BisectIter: 24}
	return func(x linalg.Vector) float64 {
		c.Add(1)
		var sh sram.Shifts
		for i := range sh {
			sh[i] = x[i] * sigma[i]
		}
		if cell.Fails(sh, opt) {
			return 1
		}
		return 0
	}
}

// Fig6Result compares the proposed method with the conventional baseline
// on the RDF-only problem at nominal supply.
type Fig6Result struct {
	Proposed     MethodSeries
	Conventional MethodSeries
	// SpeedupAtMatchedError is conventional sims / proposed sims at the
	// tightest relative error both methods reach (the paper reports 36x
	// fewer simulations / 15.6x wall clock at 1%).
	SpeedupAtMatchedError float64
	MatchedRelErr         float64
	// ProposedDiag is the proposed run's per-round stage-1 convergence
	// diagnostics (ESS, weight concentration, resampling diversity).
	ProposedDiag []core.PFRoundDiag
}

// Fig6 runs the comparison. Proposed IS samples are mostly classified
// (nearly free); the conventional flow pays one simulation per sample.
func Fig6(seed int64, scale Scale) Fig6Result {
	var nisProposed, nisConv int
	switch scale {
	case Smoke:
		nisProposed, nisConv = 40000, 4000
	case Default:
		nisProposed, nisConv = 400000, 60000
	case Full:
		nisProposed, nisConv = 1000000, 400000
	}
	cell := sram.NewCell(0.7)

	rngP := rand.New(rand.NewSource(seed))
	engP := core.NewEngine(cell, nil, core.Options{NIS: nisProposed, RecordEvery: nisProposed / 200})
	resP := engP.Run(rngP, nil)
	proposed := MethodSeries{Name: "proposed (ECRIPSE)", Series: resP.Series, Estimate: resP.Estimate}

	rngC := rand.New(rand.NewSource(seed + 1))
	var cc montecarlo.Counter
	resC := sis.Estimate(rngC, sram.NumTransistors, cellValue(cell, &cc), &cc,
		&sis.Options{NIS: nisConv, RecordEvery: nisConv / 200}, nil)
	conventional := MethodSeries{Name: "conventional (SIS [8])", Series: resC.Series, Estimate: resC.Estimate}

	out := Fig6Result{Proposed: proposed, Conventional: conventional, ProposedDiag: resP.PFRounds}
	// Matched-error speedup: find the tightest error the conventional run
	// achieved, then the simulations each method needed to reach it.
	target := resC.Estimate.RelErr
	if pSims, ok := resP.Series.SimsToRelErrStable(target); ok {
		if cSims, ok2 := resC.Series.SimsToRelErrStable(target); ok2 && pSims > 0 {
			out.SpeedupAtMatchedError = float64(cSims) / float64(pSims)
			out.MatchedRelErr = target
		}
	}
	return out
}

// Write renders both series and the headline ratio.
func (r Fig6Result) Write(w io.Writer) {
	WriteSeries(w, r.Conventional)
	WriteSeries(w, r.Proposed)
	if r.SpeedupAtMatchedError > 0 {
		fmt.Fprintf(w, "# matched relative error %.3f: %.1fx fewer transistor-level simulations (paper: 36x at 1%%)\n",
			r.MatchedRelErr, r.SpeedupAtMatchedError)
	}
}

// Fig7Result compares the proposed method with naive Monte Carlo on the
// RTN-aware problem at lowered supply.
type Fig7Result struct {
	Alpha    float64
	Naive    MethodSeries
	Proposed MethodSeries
	// Speedup is naive sims / proposed sims at the naive run's final
	// relative error (the paper reports ~40x at alpha = 0.3).
	Speedup float64
	// ProposedDiag is the proposed run's per-round stage-1 convergence
	// diagnostics.
	ProposedDiag []core.PFRoundDiag
}

// Fig7 runs one panel (the paper shows alpha = 0.3 and 0.5). The engine may
// be reused across panels to reproduce the Fig. 7(b) shared-initialization
// observation; pass nil to create a fresh one.
func Fig7(seed int64, scale Scale, alpha float64, eng *core.Engine) (Fig7Result, *core.Engine) {
	var nNaive, nisProposed, m int
	switch scale {
	case Smoke:
		nNaive, nisProposed, m = 20000, 20000, 5
	case Default:
		nNaive, nisProposed, m = 120000, 150000, 20
	case Full:
		nNaive, nisProposed, m = 1000000, 400000, 20
	}
	cell := sram.NewCell(0.5)
	cfg := rtn.TableIConfig(cell)
	sampler := rtn.NewSampler(cell, cfg, alpha)
	sigma := cell.SigmaVth()
	snm := &sram.SNMOptions{GridN: 24, BisectIter: 24}

	rngN := rand.New(rand.NewSource(seed))
	var cn montecarlo.Counter
	// The naive reference settles its indicator calls through the lockstep
	// batch solver: draws stay on the sequential rng in trial order, labels
	// are bit-identical to cell.Fails, and NaiveBatched replays the scalar
	// recording schedule — so the series matches the per-trial loop exactly
	// while the margins march through the batch kernel.
	shs := make([]sram.Shifts, montecarlo.DefaultBatch)
	outs := make([]sram.SNMResult, montecarlo.DefaultBatch)
	draw := func(r *rand.Rand, slot int) {
		var sh sram.Shifts
		for i := range sh {
			sh[i] = sigma[i] * r.NormFloat64()
		}
		shs[slot] = sh.Add(sampler.Sample(r))
	}
	label := func(slots int, fails []bool) {
		cn.Add(int64(slots))
		cell.FailsBatch(shs[:slots], fails, outs[:slots], snm)
	}
	naiveSeries := montecarlo.NaiveBatched(context.Background(), rngN, draw, label, nNaive, montecarlo.DefaultBatch, &cn, nNaive/200)
	fin := naiveSeries.Final()
	naive := MethodSeries{Name: fmt.Sprintf("naive MC (alpha=%.1f)", alpha), Series: naiveSeries,
		Estimate: statsEstimate(fin, nNaive, cn.Count())}

	if eng == nil {
		eng = core.NewEngine(cell, nil, core.Options{NIS: nisProposed, M: m, RecordEvery: nisProposed / 200})
	}
	rngP := rand.New(rand.NewSource(seed + 1))
	resP := eng.Run(rngP, sampler)
	proposed := MethodSeries{Name: fmt.Sprintf("proposed (alpha=%.1f)", alpha), Series: resP.Series, Estimate: resP.Estimate}

	out := Fig7Result{Alpha: alpha, Naive: naive, Proposed: proposed, ProposedDiag: resP.PFRounds}
	if pSims, ok := resP.Series.SimsToRelErrStable(fin.RelErr); ok && pSims > 0 {
		out.Speedup = float64(cn.Count()) / float64(pSims)
	}
	return out, eng
}

// Write renders both series and the speedup.
func (r Fig7Result) Write(w io.Writer) {
	WriteSeries(w, r.Naive)
	WriteSeries(w, r.Proposed)
	if r.Speedup > 0 {
		fmt.Fprintf(w, "# speedup at naive's final relative error: %.1fx (paper: ~40x)\n", r.Speedup)
	}
}

// Fig8Result is the duty-ratio sweep plus the RDF-only reference.
type Fig8Result struct {
	Points  []core.SweepPoint
	RDFOnly core.Result
	// WorstOverRDF is max Pfail(alpha) / Pfail(RDF-only) — the paper's
	// "six times optimistic" headline.
	WorstOverRDF float64
	// MinAlpha is the duty ratio attaining the minimum.
	MinAlpha float64
}

// Fig8 sweeps the duty ratio at nominal supply.
func Fig8(seed int64, scale Scale) Fig8Result {
	var alphas []float64
	var nis, m int
	switch scale {
	case Smoke:
		alphas = []float64{0, 0.5, 1}
		nis, m = 20000, 5
	case Default:
		alphas = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
		nis, m = 100000, 20
	case Full:
		alphas = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
		nis, m = 300000, 20
	}
	cell := sram.NewCell(0.7)
	cfg := rtn.TableIConfig(cell)
	rng := rand.New(rand.NewSource(seed))
	opts := core.Options{NIS: nis, M: m}

	rdf := core.RDFOnly(rand.New(rand.NewSource(seed+1)), cell, opts)
	pts := core.DutySweep(rng, cell, cfg, alphas, opts)

	out := Fig8Result{Points: pts, RDFOnly: rdf, MinAlpha: math.NaN()}
	worst, best := 0.0, math.Inf(1)
	for _, p := range pts {
		if p.Result.Estimate.P > worst {
			worst = p.Result.Estimate.P
		}
		if p.Result.Estimate.P < best {
			best = p.Result.Estimate.P
			out.MinAlpha = p.Alpha
		}
	}
	if rdf.Estimate.P > 0 {
		out.WorstOverRDF = worst / rdf.Estimate.P
	}
	return out
}

// Write renders the sweep as the paper's Fig. 8 data plus headline ratios.
func (r Fig8Result) Write(w io.Writer) {
	fmt.Fprintf(w, "# RDF-only reference: %v\n", r.RDFOnly.Estimate)
	fmt.Fprintln(w, "# alpha,Pfail,CI95,sims")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%.2f,%.6e,%.6e,%d\n", p.Alpha, p.Result.Estimate.P, p.Result.Estimate.CI95, p.Result.Estimate.Sims)
	}
	fmt.Fprintf(w, "# minimum at alpha=%.2f; worst-case RTN/RDF ratio %.1fx (paper: ~6x, minimum at 0.5)\n",
		r.MinAlpha, r.WorstOverRDF)
}
