// Package experiments contains one driver per table/figure of the paper's
// evaluation (Section IV). Each driver runs the corresponding workload on
// the library and renders the same rows/series the paper reports, at a
// selectable scale so that command-line runs can be thorough while unit
// tests and benchmarks stay fast.
package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"ecripse/internal/core"
	"ecripse/internal/linalg"
	"ecripse/internal/pfilter"
	"ecripse/internal/randx"
	"ecripse/internal/rtn"
	"ecripse/internal/sram"
	"ecripse/internal/stats"
)

// Scale selects the workload size.
type Scale int

const (
	// Smoke is sized for unit tests and testing.B benchmarks.
	Smoke Scale = iota
	// Default is sized for interactive command-line runs (seconds–minutes).
	Default
	// Full approaches the paper's sample counts (minutes).
	Full
)

// ParseScale maps a -scale flag value.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "smoke":
		return Smoke, nil
	case "default", "":
		return Default, nil
	case "full":
		return Full, nil
	}
	return 0, fmt.Errorf("unknown scale %q (want smoke, default or full)", s)
}

// TableI renders the experimental conditions (the paper's Table I plus the
// two documented calibration constants of this reproduction).
func TableI(w io.Writer) {
	cell := sram.NewCell(0.7)
	fmt.Fprintln(w, "Table I — experimental conditions")
	fmt.Fprintf(w, "  AVTH (Pelgrom)      : 500 mV·nm (x%.1f calibration -> %.0f mV·nm effective)\n",
		cell.CalK, cell.CalK*500)
	fmt.Fprintf(w, "  Channel length      : %.0f nm\n", sram.ChannelLength*1e9)
	fmt.Fprintf(w, "  Channel width       : load %.0f / driver %.0f / access %.0f nm\n",
		sram.LoadWidth*1e9, sram.DriverWidth*1e9, sram.AccessWidth*1e9)
	fmt.Fprintf(w, "  tox                 : %.2f nm\n", cell.Devs[sram.D1].Tox*1e9)
	cfg := rtn.TableIConfig(cell)
	fmt.Fprintf(w, "  lambda              : %.0e nm^-2\n", cfg.Lambda/1e18)
	fmt.Fprintf(w, "  tau_e on/off        : %.2f / %.2f\n", cfg.TauOnE, cfg.TauOffE)
	fmt.Fprintf(w, "  tau_c on/off        : %.2f / %.2f\n", cfg.TauOnC, cfg.TauOffC)
	fmt.Fprintf(w, "  RTN amplitude boost : x%.1f (substitution calibration, DESIGN.md §2)\n", rtn.AmpBoost)
	sig := cell.SigmaVth()
	fmt.Fprintf(w, "  sigma(Vth)          : load %.1f mV, driver/access %.1f mV\n",
		sig[sram.L1]*1e3, sig[sram.D1]*1e3)
}

// Fig4Result carries 2-D particle snapshots for the three panels of Fig. 4.
type Fig4Result struct {
	Initial    []linalg.Vector
	Candidates []linalg.Vector
	Weights    []float64
	Resampled  []linalg.Vector
	// Diag tracks the ensemble's convergence round by round (ESS, weight
	// concentration, resampling diversity per lobe).
	Diag []core.PFRoundDiag
}

// Fig4 reproduces the particle-filter tracking example on a 2-D slice of
// the variability space (ΔVth of D1 and A1, all other devices nominal).
func Fig4(seed int64) Fig4Result {
	cell := sram.NewCell(0.7)
	sigma := cell.SigmaVth()
	opt := &sram.SNMOptions{GridN: 24, BisectIter: 24}
	fails := func(x linalg.Vector) bool {
		var sh sram.Shifts
		sh[sram.D1] = x[0] * sigma[sram.D1]
		sh[sram.A1] = x[1] * sigma[sram.A1]
		return cell.Fails(sh, opt)
	}
	weight := func(x linalg.Vector) float64 {
		if !fails(x) {
			return 0
		}
		return randx.StdNormalPDF(x)
	}
	rng := rand.New(rand.NewSource(seed))
	init := pfilter.BoundaryInit(rng, 2, 64, 10, 0.05, fails)
	ens := pfilter.New(rng, pfilter.Options{Particles: 50, Filters: 2}, init)
	out := Fig4Result{Initial: init}
	var rec []pfilter.StepRecord
	for i := 0; i < 10; i++ {
		rec = ens.Step(rng, weight)
		diag := core.PFRoundDiag{Round: i}
		for _, r := range rec {
			diag.Filters = append(diag.Filters, core.NewFilterDiag(r))
		}
		out.Diag = append(out.Diag, diag)
	}
	for _, r := range rec {
		out.Candidates = append(out.Candidates, r.Candidates...)
		out.Weights = append(out.Weights, r.Weights...)
		out.Resampled = append(out.Resampled, r.Resampled...)
	}
	return out
}

// WriteCSV dumps the three panels as CSV blocks.
func (r Fig4Result) WriteCSV(w io.Writer) {
	dump := func(name string, pts []linalg.Vector, ws []float64) {
		fmt.Fprintf(w, "# %s\n", name)
		for i, p := range pts {
			if ws != nil {
				fmt.Fprintf(w, "%.4f,%.4f,%.4g\n", p[0], p[1], ws[i])
			} else {
				fmt.Fprintf(w, "%.4f,%.4f\n", p[0], p[1])
			}
		}
	}
	dump("initial (after boundary search)", r.Initial, nil)
	dump("candidates with weights (after prediction+measurement)", r.Candidates, r.Weights)
	dump("resampled", r.Resampled, nil)
}

// Fig5Result carries the butterfly curves of a non-defective and a
// defective cell.
type Fig5Result struct {
	NominalA, NominalB     sram.Curve
	DefectiveA, DefectiveB sram.Curve
	NominalSNM             float64
	DefectiveSNM           float64
}

// Fig5 reproduces the butterfly-curve examples: the nominal Table I cell
// and a cell pushed past the failure boundary by a driver/access mismatch.
func Fig5() Fig5Result {
	cell := sram.NewCell(0.7)
	var nominal sram.Shifts
	defective := sram.Shifts{0, 0, 0.35, 0, -0.2, 0} // weak D1, strong A1
	opt := &sram.SNMOptions{GridN: 128}
	na, nb := cell.Butterfly(nominal, opt)
	da, db := cell.Butterfly(defective, opt)
	return Fig5Result{
		NominalA: na, NominalB: nb,
		DefectiveA: da, DefectiveB: db,
		NominalSNM:   cell.ReadSNM(nominal, opt),
		DefectiveSNM: cell.ReadSNM(defective, opt),
	}
}

// WriteCSV dumps both butterflies in the (V1, V2) plane.
func (r Fig5Result) WriteCSV(w io.Writer) {
	fmt.Fprintf(w, "# nominal cell, RNM = %.4f V\n", r.NominalSNM)
	fmt.Fprintln(w, "# V1,V2(curveA),V2 such that V1=fL(V2) (curveB transposed)")
	for i := range r.NominalA.In {
		fmt.Fprintf(w, "%.4f,%.4f,%.4f\n", r.NominalA.In[i], r.NominalA.Out[i], r.NominalB.Out[i])
	}
	fmt.Fprintf(w, "# defective cell, RNM = %.4f V\n", r.DefectiveSNM)
	for i := range r.DefectiveA.In {
		fmt.Fprintf(w, "%.4f,%.4f,%.4f\n", r.DefectiveA.In[i], r.DefectiveA.Out[i], r.DefectiveB.Out[i])
	}
}

// MethodSeries is one labelled convergence trace.
type MethodSeries struct {
	Name     string
	Series   stats.Series
	Estimate stats.Estimate
}

// WriteSeries renders a convergence trace as the paper's plot data:
// simulations, estimate, CI and relative error per recorded point.
func WriteSeries(w io.Writer, ms MethodSeries) {
	fmt.Fprintf(w, "# %s: final %v\n", ms.Name, ms.Estimate)
	fmt.Fprintln(w, "# sims,Pfail,CI95,relerr")
	for _, p := range ms.Series {
		fmt.Fprintf(w, "%d,%.6e,%.6e,%.4f\n", p.Sims, p.P, p.CI95, p.RelErr)
	}
}

// WriteDiag renders the stage-1 convergence diagnostics as CSV: one row per
// particle-filter round with the ensemble's worst-case collapse signals and
// the per-lobe particle split.
func WriteDiag(w io.Writer, name string, rounds []core.PFRoundDiag) {
	if len(rounds) == 0 {
		fmt.Fprintf(w, "# %s: no stage-1 diagnostics recorded\n", name)
		return
	}
	fmt.Fprintf(w, "# %s: stage-1 diagnostics (%d filters)\n", name, len(rounds[0].Filters))
	fmt.Fprintln(w, "# round,sims,min_ess,max_weight_frac,min_unique,per_lobe_particles")
	for _, r := range rounds {
		minESS, maxFrac, minUnique := core.RoundSummary(r.Filters)
		split := ""
		for i, f := range r.Filters {
			if i > 0 {
				split += "|"
			}
			split += fmt.Sprintf("%d", f.Particles)
		}
		fmt.Fprintf(w, "%d,%d,%.2f,%.4f,%d,%s\n", r.Round, r.Sims, minESS, maxFrac, minUnique, split)
	}
}
