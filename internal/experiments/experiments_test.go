package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseScale(t *testing.T) {
	for in, want := range map[string]Scale{"smoke": Smoke, "default": Default, "": Default, "full": Full} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Fatalf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func TestTableIRendersConditions(t *testing.T) {
	var b bytes.Buffer
	TableI(&b)
	out := b.String()
	for _, want := range []string{"500 mV·nm", "16 nm", "load 60 / driver 30 / access 30", "0.95 nm", "4e-03 nm^-2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I output missing %q:\n%s", want, out)
		}
	}
}

func TestFig4SnapshotsTrackFailureRegion(t *testing.T) {
	r := Fig4(1)
	if len(r.Initial) == 0 || len(r.Candidates) == 0 || len(r.Resampled) == 0 {
		t.Fatalf("empty panels: %d %d %d", len(r.Initial), len(r.Candidates), len(r.Resampled))
	}
	if len(r.Candidates) != len(r.Weights) {
		t.Fatal("weights do not match candidates")
	}
	var b bytes.Buffer
	r.WriteCSV(&b)
	if c := strings.Count(b.String(), "# "); c != 3 {
		t.Fatalf("expected 3 CSV panels, got %d", c)
	}
}

func TestFig5DefectiveCellFails(t *testing.T) {
	r := Fig5()
	if r.NominalSNM <= 0 {
		t.Fatalf("nominal SNM = %v", r.NominalSNM)
	}
	if r.DefectiveSNM >= 0 {
		t.Fatalf("defective SNM = %v, want negative", r.DefectiveSNM)
	}
	var b bytes.Buffer
	r.WriteCSV(&b)
	if !strings.Contains(b.String(), "defective cell") {
		t.Fatal("CSV missing defective block")
	}
}

func TestFig6SmokeProposedBeatsConventional(t *testing.T) {
	r := Fig6(1, Smoke)
	if r.Proposed.Estimate.P <= 0 || r.Conventional.Estimate.P <= 0 {
		t.Fatalf("estimates: %v %v", r.Proposed.Estimate.P, r.Conventional.Estimate.P)
	}
	// The blockade must yield dramatically fewer simulations.
	if r.Proposed.Estimate.Sims*2 > r.Conventional.Estimate.Sims {
		t.Fatalf("proposed %d sims vs conventional %d", r.Proposed.Estimate.Sims, r.Conventional.Estimate.Sims)
	}
	var b bytes.Buffer
	r.Write(&b)
	if !strings.Contains(b.String(), "proposed (ECRIPSE)") {
		t.Fatal("missing proposed series")
	}
}

func TestFig7SmokeSpeedsUpNaive(t *testing.T) {
	r, eng := Fig7(1, Smoke, 0.3, nil)
	if eng == nil {
		t.Fatal("engine not returned")
	}
	if r.Naive.Estimate.Sims != 20000 {
		t.Fatalf("naive sims = %d", r.Naive.Estimate.Sims)
	}
	// Agreement within generous bounds (smoke runs are small).
	np, pp := r.Naive.Estimate.P, r.Proposed.Estimate.P
	if pp < np/2 || pp > np*2 {
		t.Fatalf("naive %v vs proposed %v", np, pp)
	}
	// Reuse the engine for the second panel (Fig. 7(b)): fewer sims.
	r2, _ := Fig7(2, Smoke, 0.5, eng)
	if r2.Proposed.Estimate.Sims >= r.Proposed.Estimate.Sims {
		t.Fatalf("shared init did not save sims: %d vs %d",
			r2.Proposed.Estimate.Sims, r.Proposed.Estimate.Sims)
	}
}

func TestFig8SmokeShape(t *testing.T) {
	r := Fig8(1, Smoke)
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	if r.MinAlpha != 0.5 {
		t.Fatalf("minimum at alpha=%v, want 0.5", r.MinAlpha)
	}
	if r.WorstOverRDF < 2 {
		t.Fatalf("RTN/RDF ratio = %v, want clearly > 1", r.WorstOverRDF)
	}
	var b bytes.Buffer
	r.Write(&b)
	if !strings.Contains(b.String(), "RDF-only reference") {
		t.Fatal("missing reference line")
	}
}

func TestMethodsComparison(t *testing.T) {
	r := Methods(1, Smoke, 0.5)
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// All estimators agree with the reference within a loose factor (the
	// blockade's one-sided recall bias gets extra slack downward).
	for _, row := range r.Rows {
		p := row.Estimate.P
		lo := r.Reference / 3
		if row.Name == "statistical blockade [12]" {
			lo = r.Reference / 10
		}
		if p < lo || p > r.Reference*3 {
			t.Fatalf("%s: %v vs reference %v", row.Name, p, r.Reference)
		}
	}
	// ECRIPSE must be the cheapest per achieved relative error.
	var ecripseRow, naiveRow MethodRow
	for _, row := range r.Rows {
		switch row.Name {
		case "ECRIPSE (proposed)":
			ecripseRow = row
		case "naive MC":
			naiveRow = row
		}
	}
	if ecripseRow.Estimate.Sims >= naiveRow.Estimate.Sims {
		t.Fatal("ECRIPSE not cheaper than naive")
	}
	if ecripseRow.Estimate.RelErr >= naiveRow.Estimate.RelErr {
		t.Fatal("ECRIPSE not tighter than naive")
	}
	var b bytes.Buffer
	r.Write(&b)
	if !strings.Contains(b.String(), "ECRIPSE (proposed)") {
		t.Fatal("table missing ECRIPSE row")
	}
}
