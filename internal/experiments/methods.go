package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"ecripse/internal/blockade"
	"ecripse/internal/core"
	"ecripse/internal/linalg"
	"ecripse/internal/montecarlo"
	"ecripse/internal/sis"
	"ecripse/internal/sram"
	"ecripse/internal/stats"
	"ecripse/internal/subset"
)

// MethodRow is one estimator's result in the cross-method comparison.
type MethodRow struct {
	Name     string
	Estimate stats.Estimate
}

// MethodsResult compares every estimator in the repository on the same
// problem: the RDF-only read-failure probability of the Table I cell.
type MethodsResult struct {
	Vdd       float64
	Reference float64 // naive MC at the largest budget, the ground truth
	Rows      []MethodRow
}

// Methods runs the comparison. It is the "survey table" that situates
// ECRIPSE among naive MC, quasi-MC, sequential importance sampling [8],
// statistical blockade [12] and subset simulation.
func Methods(seed int64, scale Scale, vdd float64) MethodsResult {
	var nNaive, nisSIS, nBlockade, nSubset, nisEcripse int
	switch scale {
	case Smoke:
		nNaive, nisSIS, nBlockade, nSubset, nisEcripse = 20000, 5000, 15000, 1000, 40000
	case Default:
		nNaive, nisSIS, nBlockade, nSubset, nisEcripse = 120000, 30000, 80000, 2000, 200000
	case Full:
		nNaive, nisSIS, nBlockade, nSubset, nisEcripse = 500000, 100000, 300000, 4000, 600000
	}
	cell := sram.NewCell(vdd)
	sigma := cell.SigmaVth()
	snm := &sram.SNMOptions{GridN: 24, BisectIter: 24}

	shiftOf := func(x linalg.Vector) sram.Shifts {
		var sh sram.Shifts
		for i := range sh {
			sh[i] = x[i] * sigma[i]
		}
		return sh
	}

	out := MethodsResult{Vdd: vdd}

	// Naive MC (also the reference).
	{
		var c montecarlo.Counter
		trial := func(r *rand.Rand) bool {
			c.Add(1)
			var sh sram.Shifts
			for i := range sh {
				sh[i] = sigma[i] * r.NormFloat64()
			}
			return cell.Fails(sh, snm)
		}
		series := montecarlo.Naive(rand.New(rand.NewSource(seed)), trial, nNaive, &c, 0)
		fin := series.Final()
		est := stats.Estimate{P: fin.P, CI95: fin.CI95, RelErr: fin.RelErr, N: nNaive, Sims: c.Count()}
		out.Reference = est.P
		out.Rows = append(out.Rows, MethodRow{"naive MC", est})
	}

	// Quasi-MC naive (Halton).
	{
		var c montecarlo.Counter
		value := func(x linalg.Vector) float64 {
			c.Add(1)
			if cell.Fails(shiftOf(x), snm) {
				return 1
			}
			return 0
		}
		series := montecarlo.NaiveQMC(sram.NumTransistors, value, nNaive, &c, 0)
		fin := series.Final()
		out.Rows = append(out.Rows, MethodRow{"quasi-MC (Halton)",
			stats.Estimate{P: fin.P, CI95: fin.CI95, RelErr: fin.RelErr, N: nNaive, Sims: c.Count()}})
	}

	// Conventional SIS [8].
	{
		var c montecarlo.Counter
		res := sis.Estimate(rand.New(rand.NewSource(seed+1)), sram.NumTransistors,
			cellValue(cell, &c), &c, &sis.Options{NIS: nisSIS}, nil)
		out.Rows = append(out.Rows, MethodRow{"sequential IS [8]", res.Estimate})
	}

	// Statistical blockade [12].
	{
		var c montecarlo.Counter
		fails := func(x linalg.Vector) bool {
			c.Add(1)
			return cell.Fails(shiftOf(x), snm)
		}
		res := blockade.Estimate(rand.New(rand.NewSource(seed+2)), sram.NumTransistors,
			fails, &c, nBlockade, nil)
		out.Rows = append(out.Rows, MethodRow{"statistical blockade [12]", res.Estimate})
	}

	// Subset simulation.
	{
		g := func(x linalg.Vector) float64 { return cell.ReadSNM(shiftOf(x), snm) }
		res := subset.Estimate(rand.New(rand.NewSource(seed+3)), sram.NumTransistors,
			g, &subset.Options{N: nSubset})
		out.Rows = append(out.Rows, MethodRow{"subset simulation", res.Estimate})
	}

	// ECRIPSE.
	{
		res := core.RDFOnly(rand.New(rand.NewSource(seed+4)), cell, core.Options{NIS: nisEcripse})
		out.Rows = append(out.Rows, MethodRow{"ECRIPSE (proposed)", res.Estimate})
	}
	return out
}

// Write renders the comparison table.
func (r MethodsResult) Write(w io.Writer) {
	fmt.Fprintf(w, "# estimator comparison, RDF-only read failure, Vdd=%.2f V (reference %.3e)\n", r.Vdd, r.Reference)
	fmt.Fprintf(w, "%-28s %12s %12s %8s %10s\n", "# method", "Pfail", "CI95", "relerr", "sims")
	for _, row := range r.Rows {
		e := row.Estimate
		fmt.Fprintf(w, "%-28s %12.4e %12.4e %8.3f %10d\n", row.Name, e.P, e.CI95, e.RelErr, e.Sims)
	}
}
