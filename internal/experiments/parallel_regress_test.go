package experiments

import (
	"math/rand"
	"reflect"
	"testing"

	"ecripse/internal/core"
	"ecripse/internal/montecarlo"
	"ecripse/internal/rtn"
	"ecripse/internal/sram"
)

// parallelCase is one engine configuration whose result must be
// parallelism-invariant. Modest budgets keep the three-way run affordable
// in CI while still crossing many stage-2 batch barriers.
type parallelCase struct {
	name string
	rtn  bool
	opts core.Options
}

func parallelCases() []parallelCase {
	return []parallelCase{
		{
			name: "rdf-vdd0.5",
			opts: core.Options{NIS: 4000, Directions: 128, WarmupTrain: 200},
		},
		{
			name: "rtn-vdd0.5",
			rtn:  true,
			opts: core.Options{NIS: 1500, M: 5, Directions: 128, WarmupTrain: 200},
		},
		{
			name: "rdf-noclassifier",
			opts: core.Options{NIS: 2000, Directions: 64, NoClassifier: true},
		},
	}
}

// runParallelCase executes one engine flow at the given parallelism from a
// fresh seed-1 state.
func runParallelCase(c parallelCase, parallelism int) core.Result {
	cell := sram.NewCell(0.5)
	rng := rand.New(rand.NewSource(1))
	opts := c.opts
	opts.Parallelism = parallelism
	eng := core.NewEngine(cell, &montecarlo.Counter{}, opts)
	var sampler *rtn.Sampler
	if c.rtn {
		sampler = rtn.NewSampler(cell, rtn.TableIConfig(cell), 0.5)
	}
	return eng.Run(rng, sampler)
}

// TestRegressParallelismDeterminism is the determinism half of the
// regression suite: the same engine spec run at parallelism 1, 2 and 8 must
// produce bit-identical estimates, convergence series and cost splits. This
// is the invariant the service result cache and the store's crash-recovery
// replay are built on; any scheduling-dependent randomness or merge-order
// slip shows up here as an exact-inequality failure, not a statistical
// drift. Unlike TestRegressEstimators it needs no golden file — parallelism
// 1 is the baseline — and it is cheap enough to run in -short mode.
func TestRegressParallelismDeterminism(t *testing.T) {
	for _, c := range parallelCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			want := runParallelCase(c, 1)
			if want.Estimate.P <= 0 {
				t.Fatalf("baseline estimate collapsed: %v", want.Estimate)
			}
			if len(want.Series) == 0 {
				t.Fatal("baseline recorded no convergence series")
			}
			for _, parallelism := range []int{2, 8} {
				got := runParallelCase(c, parallelism)
				if got.Estimate != want.Estimate {
					t.Errorf("parallelism=%d estimate differs:\n got  %+v\n want %+v",
						parallelism, got.Estimate, want.Estimate)
				}
				if !reflect.DeepEqual(got.Series, want.Series) {
					t.Errorf("parallelism=%d convergence series differs (%d vs %d points)",
						parallelism, len(got.Series), len(want.Series))
				}
				if got.InitSims != want.InitSims || got.WarmupSims != want.WarmupSims ||
					got.Stage1Sims != want.Stage1Sims || got.Stage2Sims != want.Stage2Sims ||
					got.Classified != want.Classified {
					t.Errorf("parallelism=%d cost split differs:\n got  init=%d warmup=%d s1=%d s2=%d cls=%d\n want init=%d warmup=%d s1=%d s2=%d cls=%d",
						parallelism,
						got.InitSims, got.WarmupSims, got.Stage1Sims, got.Stage2Sims, got.Classified,
						want.InitSims, want.WarmupSims, want.Stage1Sims, want.Stage2Sims, want.Classified)
				}
			}
		})
	}
}
