package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ecripse/internal/blockade"
	"ecripse/internal/linalg"
	"ecripse/internal/montecarlo"
	"ecripse/internal/sis"
	"ecripse/internal/sram"
	"ecripse/internal/stats"
)

// goldenPath is the statistical-regression baseline, checked in so that CI
// compares every run against the same numbers. Regenerate after an
// intentional estimator change with:
//
//	REGRESS_UPDATE=1 go test -run TestRegressEstimators ./internal/experiments/
const goldenPath = "../../results/golden/regress.json"

// regressCase is one fixed-seed estimator run at a paper operating point.
// The golden fields (P, CI95, Sims) are what the run produced when the
// baseline was recorded.
type regressCase struct {
	Name      string  `json:"name"`
	Vdd       float64 `json:"vdd"`
	Estimator string  `json:"estimator"`
	Seed      int64   `json:"seed"`
	N         int     `json:"n"`
	P         float64 `json:"p"`
	CI95      float64 `json:"ci95"`
	Sims      int64   `json:"sims"`
}

type regressGolden struct {
	// TolCI is the acceptance band in units of the golden CI95: a run
	// regresses when |p - golden.p| > TolCI * golden.ci95. Four half-widths
	// leave room for benign resampling-order refactors (the seed pins the
	// stream today, so an unchanged tree reproduces the goldens exactly)
	// while still catching physics or estimator regressions, which move the
	// estimate by many CIs.
	TolCI float64       `json:"tol_ci"`
	Cases []regressCase `json:"cases"`
}

// runRegressCase executes one case exactly as recorded: fresh cell at the
// case's supply, fresh seeded RNG, RDF-only failure indicator.
func runRegressCase(c regressCase) (stats.Estimate, error) {
	cell := sram.NewCell(c.Vdd)
	rng := rand.New(rand.NewSource(c.Seed))
	var cc montecarlo.Counter
	switch c.Estimator {
	case "sis":
		res := sis.Estimate(rng, sram.NumTransistors, cellValue(cell, &cc), &cc,
			&sis.Options{NIS: c.N}, nil)
		return res.Estimate, nil
	case "blockade":
		sigma := cell.SigmaVth()
		opt := &sram.SNMOptions{GridN: 24, BisectIter: 24}
		fails := func(x linalg.Vector) bool {
			cc.Add(1)
			var sh sram.Shifts
			for i := range sh {
				sh[i] = x[i] * sigma[i]
			}
			return cell.Fails(sh, opt)
		}
		res := blockade.Estimate(rng, sram.NumTransistors, fails, &cc, c.N, nil)
		return res.Estimate, nil
	}
	return stats.Estimate{}, fmt.Errorf("unknown estimator %q", c.Estimator)
}

// TestRegressEstimators is the statistical regression suite: fixed-seed SIS
// and statistical-blockade runs at the paper's operating points (the Fig. 6
// nominal 0.7 V cell and the Fig. 7 lowered 0.5 V supply) must land within
// the documented confidence band of the checked-in golden estimates, and
// the physics must keep its sign: failure probability rises as the supply
// drops. Skipped under -short; REGRESS_UPDATE=1 rewrites the baseline.
func TestRegressEstimators(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical regression suite skipped in -short mode")
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden baseline: %v (regenerate with REGRESS_UPDATE=1)", err)
	}
	var golden regressGolden
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatalf("decode %s: %v", goldenPath, err)
	}
	if golden.TolCI <= 0 || len(golden.Cases) == 0 {
		t.Fatalf("golden baseline malformed: %+v", golden)
	}

	update := os.Getenv("REGRESS_UPDATE") != ""
	got := make(map[string]stats.Estimate, len(golden.Cases))
	for i := range golden.Cases {
		c := &golden.Cases[i]
		t.Run(c.Name, func(t *testing.T) {
			start := time.Now()
			est, err := runRegressCase(*c)
			if err != nil {
				t.Fatal(err)
			}
			got[c.Name] = est
			t.Logf("%s: %v (%.1fs)", c.Name, est, time.Since(start).Seconds())
			if update {
				c.P, c.CI95, c.Sims = est.P, est.CI95, est.Sims
				return
			}
			if est.P <= 0 {
				t.Fatalf("estimate collapsed to %v", est.P)
			}
			if diff, bound := est.P-c.P, golden.TolCI*c.CI95; diff < -bound || diff > bound {
				t.Errorf("Pfail drifted outside the regression band:\n got    %.6e (CI95 ±%.3e)\n golden %.6e (CI95 ±%.3e)\n |diff| %.3e > %g×CI95 = %.3e",
					est.P, est.CI95, c.P, c.CI95, abs(diff), golden.TolCI, bound)
			}
			// A variance blow-up is a regression even when the mean survives.
			if c.CI95 > 0 && est.CI95 > 4*c.CI95 {
				t.Errorf("CI95 blew up: %.3e vs golden %.3e", est.CI95, c.CI95)
			}
		})
	}

	if update {
		out, err := json.MarshalIndent(golden, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}

	// Monotonicity sanity across operating points: lowering the supply from
	// the Fig. 6 nominal 0.7 V to the Fig. 7 0.5 V must raise Pfail by a
	// wide margin (orders of magnitude in the paper).
	lo, hi := got["sis-vdd0.7"], got["sis-vdd0.5"]
	if lo.P > 0 && hi.P > 0 && hi.P <= lo.P {
		t.Errorf("Pfail not monotone in supply: P(0.5 V) = %.3e <= P(0.7 V) = %.3e", hi.P, lo.P)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
