package sis

import (
	"math/rand"
	"testing"

	"ecripse/internal/linalg"
	"ecripse/internal/montecarlo"
	"ecripse/internal/pfilter"

	"ecripse/internal/sram"
)

// syntheticValue is a cheap 2-D rare-event indicator with known probability:
// P(x0 > 3) = 1.3499e-3.
func syntheticValue(c *montecarlo.Counter) montecarlo.Value {
	return func(x linalg.Vector) float64 {
		c.Add(1)
		if x[0] > 3 {
			return 1
		}
		return 0
	}
}

func TestEstimateSyntheticProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var c montecarlo.Counter
	res := Estimate(rng, 2, syntheticValue(&c), &c, &Options{NIS: 30000, Directions: 64}, nil)
	const want = 1.3499e-3
	if res.Estimate.P < want*0.8 || res.Estimate.P > want*1.25 {
		t.Fatalf("P = %v want ~%v", res.Estimate.P, want)
	}
	if res.Estimate.RelErr > 0.2 {
		t.Fatalf("relerr = %v", res.Estimate.RelErr)
	}
}

func TestEverySampleCostsASimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var c montecarlo.Counter
	res := Estimate(rng, 2, syntheticValue(&c), &c, &Options{NIS: 5000, Directions: 32}, nil)
	if res.ISSims != 5000 {
		t.Fatalf("IS sims = %d, conventional flow must simulate all", res.ISSims)
	}
	if res.PFSims == 0 || res.InitSims == 0 {
		t.Fatalf("missing stage costs: %+v", res)
	}
	if got := res.InitSims + res.PFSims + res.ISSims; got != res.Estimate.Sims {
		t.Fatalf("cost breakdown %d != total %d", got, res.Estimate.Sims)
	}
}

func TestReusedInitialSkipsBoundarySearch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var c montecarlo.Counter
	val := syntheticValue(&c)
	initial := pfilter.BoundaryInit(rng, 2, 64, 8, 0.05, func(x linalg.Vector) bool { return val(x) > 0 })
	c.Reset()
	res := Estimate(rng, 2, val, &c, &Options{NIS: 2000, Directions: 64}, initial)
	if res.InitSims != 0 {
		t.Fatalf("boundary search ran despite provided initial: %d", res.InitSims)
	}
}

func TestEstimateOnSRAMCellMatchesCore(t *testing.T) {
	// The conventional baseline must agree with naive-MC truth at 0.5 V
	// (≈3.86e-3) within its own confidence interval scale.
	cell := sram.NewCell(0.5)
	sigma := cell.SigmaVth()
	opt := &sram.SNMOptions{GridN: 24, BisectIter: 24}
	var c montecarlo.Counter
	value := func(x linalg.Vector) float64 {
		c.Add(1)
		var sh sram.Shifts
		for i := range sh {
			sh[i] = x[i] * sigma[i]
		}
		if cell.Fails(sh, opt) {
			return 1
		}
		return 0
	}
	rng := rand.New(rand.NewSource(4))
	res := Estimate(rng, sram.NumTransistors, value, &c, &Options{NIS: 12000, Directions: 128}, nil)
	const want = 3.86e-3
	lo, hi := want*0.6, want*1.6
	if res.Estimate.P < lo || res.Estimate.P > hi {
		t.Fatalf("P = %v want in [%v, %v]", res.Estimate.P, lo, hi)
	}
}

func TestDefensiveMixtureBoundsWeights(t *testing.T) {
	// With Rho = 0.2 no importance weight can exceed 5; probe the proposal
	// by reconstructing terms from the series tail stability.
	rng := rand.New(rand.NewSource(5))
	var c montecarlo.Counter
	res := Estimate(rng, 2, syntheticValue(&c), &c, &Options{NIS: 4000, Rho: 0.2, Directions: 32}, nil)
	if res.Estimate.P <= 0 {
		t.Fatal("estimate collapsed to zero")
	}
	// Max possible single-term jump in the running mean is bounded by
	// (1/rho)/n; verify the series never jumps more than that.
	prev := res.Series[0].P
	for i, pt := range res.Series {
		if i == 0 {
			continue
		}
		if diff := pt.P - prev; diff > 5.0/float64(i) {
			t.Fatalf("weight bound violated at point %d: jump %v", i, diff)
		}
		prev = pt.P
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.fill()
	if o.Particles != 50 || o.Filters != 2 || o.Iterations != 10 || o.NIS != 20000 {
		t.Fatalf("defaults: %+v", o)
	}
	if o.Kernel != 0.3 || o.RMax != 8 || o.Rho != 0.1 {
		t.Fatalf("defaults: %+v", o)
	}
}

func TestFractionalValues(t *testing.T) {
	// SIS also supports the RTN-aware fractional inner probability.
	rng := rand.New(rand.NewSource(6))
	var c montecarlo.Counter
	value := func(x linalg.Vector) float64 {
		c.Add(1)
		if x[0] > 3 {
			return 0.5 // always half-failing beyond the boundary
		}
		return 0
	}
	res := Estimate(rng, 2, value, &c, &Options{NIS: 30000, Directions: 64}, nil)
	want := 0.5 * 1.3499e-3
	if res.Estimate.P < want*0.75 || res.Estimate.P > want*1.3 {
		t.Fatalf("P = %v want ~%v", res.Estimate.P, want)
	}
}
