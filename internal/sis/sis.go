// Package sis implements the conventional baseline of the paper's Fig. 6:
// a sequential-importance-sampling failure-probability estimator in the
// style of Katayama et al., ICCAD 2010 (the paper's reference [8]).
//
// It uses the same particle-filter machinery as the proposed method to
// estimate the optimal alternative distribution, but with the two
// distinguishing costs the paper attributes to the conventional flow:
// every particle weight and every importance-sampling term is evaluated
// with a real transistor-level simulation (no classifier blockade), and
// there is no cheap first stage (the filter is refined on full-cost
// evaluations).
package sis

import (
	"context"
	"math/rand"

	"ecripse/internal/linalg"
	"ecripse/internal/montecarlo"
	"ecripse/internal/pfilter"
	"ecripse/internal/randx"
	"ecripse/internal/stats"
)

// Options configures the baseline estimator.
type Options struct {
	Particles   int     // particles per filter (default 50)
	Filters     int     // independent filters (default 2)
	Iterations  int     // particle-filter rounds (default 10)
	Kernel      float64 // prediction/proposal sigma (default 0.3)
	Directions  int     // boundary-search directions (default 64)
	RMax        float64 // boundary-search radius (default 8)
	RTol        float64 // boundary bisection tolerance (default 0.05)
	NIS         int     // importance-sampling draws (default 20000)
	Rho         float64 // defensive-mixture weight of the nominal P (default 0.1)
	RecordEvery int     // series resolution in simulations (default NIS/50)
}

func (o *Options) fill() {
	if o.Particles == 0 {
		o.Particles = 50
	}
	if o.Filters == 0 {
		o.Filters = 2
	}
	if o.Iterations == 0 {
		o.Iterations = 10
	}
	if o.Kernel == 0 {
		o.Kernel = 0.3
	}
	if o.Directions == 0 {
		o.Directions = 256
	}
	if o.RMax == 0 {
		o.RMax = 8
	}
	if o.RTol == 0 {
		o.RTol = 0.05
	}
	if o.NIS == 0 {
		o.NIS = 20000
	}
	if o.Rho == 0 {
		o.Rho = 0.1
	}
}

// Result carries the estimate, its convergence trace and cost breakdown.
type Result struct {
	Series   stats.Series
	Estimate stats.Estimate
	InitSims int64 // boundary-search simulations
	PFSims   int64 // particle-filter weight simulations
	ISSims   int64 // importance-sampling simulations
}

// Estimate runs the conventional flow on the indicator value (a 0/1 or
// fractional failure value in the normalized space) whose every call costs
// simulations counted by c. initial may carry boundary particles reused
// from a previous run; when nil the boundary search runs here.
func Estimate(rng *rand.Rand, dim int, value montecarlo.Value, c *montecarlo.Counter, opts *Options, initial []linalg.Vector) Result {
	res, _ := EstimateCtx(context.Background(), rng, dim, value, c, opts, initial)
	return res
}

// EstimateCtx is Estimate with cancellation, checked between particle-filter
// rounds and before every importance-sampling draw. On cancellation the
// partial Result is returned with ctx.Err(); with an uncancelled context it
// is bit-identical to Estimate.
func EstimateCtx(ctx context.Context, rng *rand.Rand, dim int, value montecarlo.Value, c *montecarlo.Counter, opts *Options, initial []linalg.Vector) (Result, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	o.fill()

	start := c.Count()
	if initial == nil {
		initial = pfilter.BoundaryInit(rng, dim, o.Directions, o.RMax, o.RTol,
			func(x linalg.Vector) bool { return value(x) > 0 })
	}
	initSims := c.Count() - start

	weight := func(x linalg.Vector) float64 {
		v := value(x) // full simulation cost — no blockade
		if v <= 0 {
			return 0
		}
		return v * randx.StdNormalPDF(x)
	}
	ens := pfilter.New(rng, pfilter.Options{
		Particles: o.Particles,
		Filters:   o.Filters,
		KernelStd: o.Kernel,
	}, initial)
	pfStart := c.Count()
	for it := 0; it < o.Iterations && ctx.Err() == nil; it++ {
		ens.Step(rng, weight)
	}
	pfSims := c.Count() - pfStart

	isStart := c.Count()
	q := &montecarlo.DefensiveMixture{Q: ens.PoolGMM(nil, 600), Rho: o.Rho, Dim: dim}
	series := montecarlo.ImportanceSampleCtx(ctx, rng, q, value, o.NIS, c, o.RecordEvery)
	isSims := c.Count() - isStart

	fin := series.Final()
	return Result{
		Series: series,
		Estimate: stats.Estimate{
			P: fin.P, CI95: fin.CI95, RelErr: fin.RelErr, N: o.NIS, Sims: c.Count() - start,
		},
		InitSims: initSims,
		PFSims:   pfSims,
		ISSims:   isSims,
	}, ctx.Err()
}
