package store

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"reflect"
	"sync"
	"testing"
	"time"

	"ecripse/internal/montecarlo"
	"ecripse/internal/service"
)

// sweepCrashSpec is the grid both lives of the sweep crash test submit: a
// 40-point warm alpha sweep, long enough that a SIGKILL lands mid-chain.
func sweepCrashSpec() service.SweepSpec {
	return service.SweepSpec{
		Base:      service.JobSpec{RTN: true, Seed: 11, N: 500, M: 2},
		Alpha:     &service.Axis{From: 0, To: 1, Steps: 40},
		WarmStart: true,
	}
}

// sweepPointRunFunc builds a deterministic point runner whose payload is a
// pure function of the point spec — the property the real estimator has and
// the one that makes cache-served resume indistinguishable from recompute.
// Each completed point is announced on announce (the victim process reports
// progress to its parent this way), delay stretches the run so the kill has
// a grid to land in, and calls tallies invocations per alpha.
func sweepPointRunFunc(delay time.Duration, announce io.Writer, calls *sync.Map) func(context.Context, service.JobSpec, *montecarlo.Counter) (*service.RunResult, error) {
	return func(ctx context.Context, spec service.JobSpec, c *montecarlo.Counter) (*service.RunResult, error) {
		alpha := 0.0
		if len(spec.Sweep) == 1 {
			alpha = spec.Sweep[0]
		}
		if calls != nil {
			n, _ := calls.LoadOrStore(alpha, new(int64))
			*n.(*int64)++
		}
		if delay > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(delay):
			}
		}
		c.Add(int64(spec.N))
		res := &service.RunResult{
			Estimate: service.Estimate{P: 1e-7 * (1 + alpha), CI95: 1e-9, N: spec.N, Sims: int64(spec.N)},
			Cost:     service.CostSplit{Total: int64(spec.N), Init: 40, Warmup: 60},
		}
		if announce != nil {
			fmt.Fprintf(announce, "POINT %g\n", alpha)
		}
		return res, nil
	}
}

// TestSweepCrashHelper is not a test: it is the victim process of
// TestSweepRecoveryAfterSIGKILL. Re-executed with SWEEP_CRASH_DIR set, it
// journals a warm sweep point by point until the parent kills it mid-grid.
func TestSweepCrashHelper(t *testing.T) {
	dir := os.Getenv("SWEEP_CRASH_DIR")
	if dir == "" {
		t.Skip("helper process for TestSweepRecoveryAfterSIGKILL")
	}
	fs, err := Open(dir, Options{NoSync: true, Logf: t.Logf})
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: open: %v\n", err)
		os.Exit(1)
	}
	svc := service.New(service.Config{
		Workers: 1, QueueCapacity: 64,
		Store:   fs,
		RunFunc: sweepPointRunFunc(20*time.Millisecond, os.Stdout, nil),
	})
	sw, err := svc.SubmitSweep(sweepCrashSpec())
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: submit sweep: %v\n", err)
		os.Exit(1)
	}
	<-sw.Done() // the parent kills us long before the grid finishes
}

// TestSweepRecoveryAfterSIGKILL kills a real process mid-sweep and requires
// the next boot to finish the grid from the journal: the interrupted sweep
// restarts automatically, every point that completed before the kill is
// answered from the restored result cache without re-simulation, and the
// final aggregate is identical to an uninterrupted run of the same spec.
func TestSweepRecoveryAfterSIGKILL(t *testing.T) {
	dir := testDir(t)
	cmd := exec.Command(os.Args[0], "-test.run=^TestSweepCrashHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "SWEEP_CRASH_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start helper: %v", err)
	}

	// Kill without warning once a handful of points have committed — far
	// enough in that there is history to recover, far from the end so there
	// is a remainder to resume.
	lines := make(chan string)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			default: // parent stopped listening; keep draining the pipe
			}
		}
		close(lines)
	}()
	seen := 0
	deadline := time.After(30 * time.Second)
	for seen < 6 {
		select {
		case ln, ok := <-lines:
			if !ok {
				t.Fatal("helper exited before completing 6 points")
			}
			if _, err := fmt.Sscanf(ln, "POINT %f", new(float64)); err == nil {
				seen++
			}
		case <-deadline:
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("helper committed only %d points in 30s", seen)
		}
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL helper: %v", err)
	}
	cmd.Wait() // exit status is the kill signal; only reaping matters

	// Reopen and take stock of what the journal preserved.
	fs, err := Open(dir, Options{Logf: t.Logf})
	if err != nil {
		t.Fatalf("reopen after SIGKILL: %v", err)
	}
	rec := fs.Recover()
	if len(rec.Sweeps) != 1 {
		t.Fatalf("recovered %d sweeps, want 1", len(rec.Sweeps))
	}
	if st := rec.Sweeps[0].State; st.Terminal() {
		t.Fatalf("interrupted sweep recovered terminal (%q)", st)
	}
	doneAlpha := map[float64]bool{}
	for _, rj := range rec.Jobs {
		if rj.State != service.StateDone {
			continue
		}
		var js struct {
			Sweep []float64 `json:"sweep"`
		}
		if err := json.Unmarshal(rj.Spec, &js); err == nil && len(js.Sweep) == 1 {
			doneAlpha[js.Sweep[0]] = true
		}
	}
	if len(doneAlpha) == 0 || len(doneAlpha) >= 40 {
		t.Fatalf("kill did not land mid-grid: %d of 40 points done", len(doneAlpha))
	}
	t.Logf("killed with %d of 40 points done, %d results journaled", len(doneAlpha), len(rec.Results))

	// Second life: New restarts the interrupted sweep's controller itself;
	// the runner tallies every alpha it is asked to simulate again.
	var calls sync.Map
	svc := service.New(service.Config{
		Workers: 1, QueueCapacity: 64,
		Store:   fs,
		RunFunc: sweepPointRunFunc(0, nil, &calls),
	})
	sw, err := svc.GetSweep(rec.Sweeps[0].ID)
	if err != nil {
		t.Fatalf("recovered sweep %s not tracked: %v", rec.Sweeps[0].ID, err)
	}
	select {
	case <-sw.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("resumed sweep not terminal within 30s (state %q, %d/40 points)", sw.State(), sw.PointsDone())
	}
	if sw.State() != service.StateDone {
		t.Fatalf("resumed sweep ended %q: %+v", sw.State(), sw.Snapshot(false).Error)
	}
	res := sw.Result()
	if res == nil || len(res.Points) != 40 {
		t.Fatalf("resumed aggregate incomplete: %+v", res)
	}

	// Every pre-kill point was answered from the restored cache, not re-run.
	for alpha := range doneAlpha {
		if n, ok := calls.Load(alpha); ok {
			t.Errorf("alpha=%g was re-simulated %d times despite its journaled result", alpha, *n.(*int64))
		}
	}
	if res.CachedPoints < len(doneAlpha) {
		t.Errorf("cached_points = %d, want >= %d recovered results served from cache", res.CachedPoints, len(doneAlpha))
	}

	// The reassembled sweep trace survives the crash: the resumed controller
	// minted a fresh trace for its own spans, but every pre-kill point's
	// engine timeline — restored from the original jobs' OpTrace journal
	// records — is grafted back into the tree and labeled with the job that
	// actually computed it.
	traceID, spans := svc.AssembleSweepTrace(sw)
	if len(traceID) != 32 {
		t.Fatalf("reassembled trace ID = %q, want 32 hex chars", traceID)
	}
	pointSpans, runSpans, grafted := 0, 0, 0
	for _, sp := range spans {
		switch sp.Name {
		case "point":
			pointSpans++
			if jobAttr, _ := sp.Attrs["job"].(string); jobAttr == "" {
				t.Errorf("point span lacks a job attr: %+v", sp)
			}
		case "run":
			runSpans++
			if _, ok := sp.Attrs["source_job"]; ok {
				grafted++
			}
		}
	}
	if pointSpans != 40 || runSpans != 40 {
		t.Errorf("reassembled trace has %d point / %d run spans, want 40/40", pointSpans, runSpans)
	}
	if grafted < len(doneAlpha) {
		t.Errorf("only %d engine spans grafted from recovered journal records, want >= %d pre-kill points", grafted, len(doneAlpha))
	}

	// The resumed aggregate matches an uninterrupted run of the same spec
	// point for point (IDs and cache provenance aside — those are the only
	// fields allowed to differ).
	ref := service.New(service.Config{
		Workers: 1, QueueCapacity: 64,
		RunFunc: sweepPointRunFunc(0, nil, nil),
	})
	rsw, err := ref.SubmitSweep(sweepCrashSpec())
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	select {
	case <-rsw.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("reference sweep not terminal within 30s")
	}
	rres := rsw.Result()
	if rres == nil || len(rres.Points) != len(res.Points) {
		t.Fatalf("reference aggregate incomplete: %+v", rres)
	}
	if res.TotalSims != rres.TotalSims || res.SimsSaved != rres.SimsSaved || res.WarmPoints != rres.WarmPoints {
		t.Errorf("aggregate drifted across the crash: total_sims %d/%d, sims_saved %d/%d, warm %d/%d",
			res.TotalSims, rres.TotalSims, res.SimsSaved, rres.SimsSaved, res.WarmPoints, rres.WarmPoints)
	}
	for i := range res.Points {
		got, want := res.Points[i], rres.Points[i]
		if got.Key != want.Key || got.Warm != want.Warm ||
			!reflect.DeepEqual(got.Alpha, want.Alpha) ||
			!reflect.DeepEqual(got.Estimate, want.Estimate) ||
			!reflect.DeepEqual(got.Cost, want.Cost) {
			t.Errorf("point %d differs from the uninterrupted run:\n resumed %+v\n reference %+v", i, got, want)
		}
	}

	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	fs.Close()
}
