package store

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"ecripse/internal/service"
)

// TestTenantAndOwnerRoundTrip pins the cluster record types: the latest
// OpTenant usage snapshot and the latest OpOwner placement per job survive a
// close-and-reopen, with later records superseding earlier ones.
func TestTenantAndOwnerRoundTrip(t *testing.T) {
	dir := testDir(t)
	fs, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	if err := fs.AppendTenant("acme", service.TenantUsage{Jobs: 1, Sims: 100}); err != nil {
		t.Fatalf("tenant 1: %v", err)
	}
	if err := fs.AppendTenant("acme", service.TenantUsage{Jobs: 2, Sims: 250}); err != nil {
		t.Fatalf("tenant 2: %v", err)
	}
	if err := fs.AppendTenant("globex", service.TenantUsage{Jobs: 7, Sims: 0}); err != nil {
		t.Fatalf("tenant 3: %v", err)
	}

	spec := json.RawMessage(`{"seed":1}`)
	at := time.Unix(1_700_000_000, 0)
	if err := fs.AppendSubmit("s1-j000001", spec, "key-1", "acme", false, at); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := fs.AppendOwner("s1-j000001", "s1", "s1-j000001"); err != nil {
		t.Fatalf("owner 1: %v", err)
	}
	// A failover re-enqueue rewrites the placement; the journal keeps both
	// records and recovery must surface only the newest.
	if err := fs.AppendOwner("s1-j000001", "s2", "s2-j000009"); err != nil {
		t.Fatalf("owner 2: %v", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	fs2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer fs2.Close()
	rec := fs2.Recover()
	if got := rec.Tenants["acme"]; got != (service.TenantUsage{Jobs: 2, Sims: 250}) {
		t.Errorf("acme usage = %+v, want the latest snapshot {2 250}", got)
	}
	if got := rec.Tenants["globex"]; got != (service.TenantUsage{Jobs: 7}) {
		t.Errorf("globex usage = %+v, want {7 0}", got)
	}
	own, ok := rec.Owners["s1-j000001"]
	if !ok {
		t.Fatal("owner record lost")
	}
	if own.Shard != "s2" || own.Remote != "s2-j000009" {
		t.Errorf("placement = %+v, want the post-failover {s2 s2-j000009}", own)
	}
	if len(rec.Jobs) != 1 || rec.Jobs[0].Tenant != "acme" {
		t.Fatalf("recovered jobs = %+v, want one acme submit", rec.Jobs)
	}
}

// TestClusterRecordsSurviveCompaction drives enough traffic to trigger
// snapshot compaction and requires the tenant and owner state to come back
// from the snapshot, not just the live segment.
func TestClusterRecordsSurviveCompaction(t *testing.T) {
	dir := testDir(t)
	fs, err := Open(dir, Options{NoSync: true, CompactBytes: 2048})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const jobs = 40
	for i := 1; i <= jobs; i++ {
		appendJob(t, fs, i)
		if err := fs.AppendOwner(fmt.Sprintf("j%06d", i), "s1", fmt.Sprintf("j%06d", i)); err != nil {
			t.Fatalf("owner %d: %v", i, err)
		}
		if err := fs.AppendTenant("acme", service.TenantUsage{Jobs: int64(i), Sims: int64(i) * 100}); err != nil {
			t.Fatalf("tenant %d: %v", i, err)
		}
	}
	if fs.Stats().Compactions == 0 {
		t.Fatal("no compaction triggered — the test exercises nothing")
	}
	fs.Close()

	fs2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer fs2.Close()
	rec := fs2.Recover()
	if got := rec.Tenants["acme"]; got != (service.TenantUsage{Jobs: jobs, Sims: jobs * 100}) {
		t.Errorf("acme usage through compaction = %+v", got)
	}
	if len(rec.Owners) != jobs {
		t.Fatalf("recovered %d owner records, want %d", len(rec.Owners), jobs)
	}
	for i := 1; i <= jobs; i++ {
		id := fmt.Sprintf("j%06d", i)
		if own := rec.Owners[id]; own.Shard != "s1" || own.Remote != id {
			t.Fatalf("owner %s = %+v", id, own)
		}
	}
}
