package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"time"
)

// Op enumerates the journal record types.
type Op string

const (
	// OpSubmit introduces a job: id, normalized spec, content key, and
	// whether the submission was answered inline from the cache.
	OpSubmit Op = "submit"
	// OpState records a lifecycle transition of a previously submitted job.
	OpState Op = "state"
	// OpResult stores a completed result payload under its content key.
	OpResult Op = "result"
	// OpDrop voids a submit whose enqueue was refused (queue full).
	OpDrop Op = "drop"
	// OpTrace attaches a finished job's span timeline. Traces are job-keyed
	// (wall-clock data, never content-addressed) and replace on re-run.
	OpTrace Op = "trace"
	// OpTenant snapshots a tenant's accumulated usage (jobs, sims); the
	// latest record per tenant wins on replay, so quota accounting survives
	// restarts.
	OpTenant Op = "tenant"
	// OpOwner records a dispatched job's current shard placement (cluster
	// routers only); the latest record per job wins, so a failover
	// re-assignment replaces the original dispatch.
	OpOwner Op = "owner"
	// OpSweep introduces a sweep: id (in Job), normalized SweepSpec, content
	// key and tenant. Older binaries replay it as an unknown op — warned
	// about and ignored, never fatal.
	OpSweep Op = "sweep"
	// OpSweepState records a sweep lifecycle transition; terminal done
	// records carry the aggregate result payload in Result (sweep aggregates
	// are journal state keyed by sweep ID, not content-addressed).
	OpSweepState Op = "sweep_state"
)

// Record is one journal entry. Seq is assigned by the store and is strictly
// increasing across segments; replay applies records in seq order and skips
// anything at or below the snapshot's horizon.
type Record struct {
	Seq    uint64          `json:"seq"`
	Op     Op              `json:"op"`
	Job    string          `json:"job,omitempty"`
	Spec   json.RawMessage `json:"spec,omitempty"`
	Key    string          `json:"key,omitempty"`
	State  string          `json:"state,omitempty"`
	Error  string          `json:"error,omitempty"`
	Cached bool            `json:"cached,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Trace  json.RawMessage `json:"trace,omitempty"`
	// Tenant names the submitting client on OpSubmit records and the
	// accounted tenant on OpTenant records; Jobs/Sims are the OpTenant
	// usage snapshot.
	Tenant string `json:"tenant,omitempty"`
	Jobs   int64  `json:"jobs,omitempty"`
	Sims   int64  `json:"sims,omitempty"`
	// Shard and Remote are the OpOwner placement: the owning node and the
	// job's ID on it.
	Shard  string    `json:"shard,omitempty"`
	Remote string    `json:"remote,omitempty"`
	At     time.Time `json:"at"`
}

// Records are framed as [payload length u32le][crc32c(payload) u32le][payload].
// The length header lets the reader detect a torn tail (fewer bytes on disk
// than the header promises); the checksum catches bit rot and partial
// overwrites inside the payload.
const (
	frameHeader = 8
	// maxRecordBytes bounds one payload; a larger length header is treated
	// as corruption, not as an allocation request.
	maxRecordBytes = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodeFrame renders the record as one framed journal entry.
func encodeFrame(rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encode record %d: %w", rec.Seq, err)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeader:], payload)
	return frame, nil
}

// decodeFrame reads the first frame of b. It returns the decoded record and
// the remaining bytes, or ok=false with a reason when the bytes are a torn
// or corrupt frame — the caller truncates the segment there.
func decodeFrame(b []byte) (rec *Record, rest []byte, reason string, ok bool) {
	if len(b) < frameHeader {
		return nil, b, fmt.Sprintf("torn header (%d trailing bytes)", len(b)), false
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n == 0 || n > maxRecordBytes {
		return nil, b, fmt.Sprintf("implausible record length %d", n), false
	}
	if uint64(len(b)) < frameHeader+uint64(n) {
		return nil, b, fmt.Sprintf("torn record (%d of %d payload bytes)", len(b)-frameHeader, n), false
	}
	payload := b[frameHeader : frameHeader+n]
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(b[4:8]); got != want {
		return nil, b, fmt.Sprintf("checksum mismatch (%08x != %08x)", got, want), false
	}
	var r Record
	if err := json.Unmarshal(payload, &r); err != nil {
		return nil, b, "undecodable payload: " + err.Error(), false
	}
	return &r, b[frameHeader+n:], "", true
}
