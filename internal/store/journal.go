package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Data-dir layout: journal segments named by the first sequence number they
// may contain, snapshots by the last sequence number they cover. Lexical
// order of the fixed-width hex names equals numeric order, so a plain
// sorted directory listing replays correctly.
const (
	segPrefix  = "journal-"
	segSuffix  = ".wal"
	snapPrefix = "snapshot-"
	snapSuffix = ".snap"
)

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix)
}

func snapName(lastSeq uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, lastSeq, snapSuffix)
}

// listByPrefix returns the matching file names in dir, sorted ascending.
func listByPrefix(dir, prefix, suffix string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); !e.IsDir() && strings.HasPrefix(n, prefix) && strings.HasSuffix(n, suffix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// fileSeq parses the sequence number out of a segment or snapshot name.
func fileSeq(name, prefix, suffix string) (uint64, bool) {
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	n, err := strconv.ParseUint(hexPart, 16, 64)
	return n, err == nil
}

// segment is the live journal file appends go to.
type segment struct {
	f    *os.File
	path string
	size int64
}

// createSegment opens a fresh segment for firstSeq. O_TRUNC is deliberate:
// a name collision can only be a previous boot's segment that yielded no
// readable records (otherwise the sequence would have advanced past it), so
// truncating loses nothing recoverable.
func createSegment(dir string, firstSeq uint64) (*segment, error) {
	path := filepath.Join(dir, segName(firstSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: create segment: %w", err)
	}
	return &segment{f: f, path: path}, nil
}

// append writes one framed record, fsyncing when sync is set.
func (s *segment) append(frame []byte, sync bool) error {
	if _, err := s.f.Write(frame); err != nil {
		return fmt.Errorf("store: append %s: %w", filepath.Base(s.path), err)
	}
	s.size += int64(len(frame))
	if sync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: fsync %s: %w", filepath.Base(s.path), err)
		}
	}
	return nil
}

func (s *segment) close() error {
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// scanSegment replays every intact record of one segment file into apply.
// A torn or corrupt frame ends the scan: the file is truncated at the bad
// frame's offset with a warning — boot always proceeds with whatever prefix
// was readable.
func scanSegment(path string, apply func(*Record), logf func(string, ...any)) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rest := data
	for len(rest) > 0 {
		rec, next, reason, ok := decodeFrame(rest)
		if !ok {
			offset := int64(len(data) - len(rest))
			logf("store: %s: %s at offset %d; truncating %d bytes",
				filepath.Base(path), reason, offset, int64(len(rest)))
			if err := os.Truncate(path, offset); err != nil {
				logf("store: truncate %s: %v", filepath.Base(path), err)
			}
			return nil
		}
		apply(rec)
		rest = next
	}
	return nil
}

// syncDir fsyncs a directory so renames and removals survive power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
