package store

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"ecripse/internal/obsv"
	"ecripse/internal/service"
)

// TestTracePersistenceAndRecovery journals a completed job's span timeline
// and requires a recovered service to serve the exact persisted spans — the
// trace of a job that ran in a previous process life survives the crash.
func TestTracePersistenceAndRecovery(t *testing.T) {
	dir := testDir(t)
	fs1, err := Open(dir, Options{Logf: t.Logf})
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	var calls sync.Map
	svc1 := service.New(service.Config{
		Workers: 1, QueueCapacity: 4,
		Store:   fs1,
		RunFunc: runFunc(100, nil, &calls),
	})
	spec := service.JobSpec{Estimator: service.EstNaive, Seed: 1, N: 500}
	j1, err := svc1.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitTerminal(t, j1, 5*time.Second)
	// The live trace must already carry the service phases.
	deadline := time.Now().Add(5 * time.Second)
	var live json.RawMessage
	for live = j1.TracePayload(); ; live = j1.TracePayload() {
		if live != nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if live == nil {
		t.Fatal("finished job has no trace payload")
	}
	var tp struct {
		TraceID string          `json:"trace_id"`
		Spans   []obsv.SpanView `json:"spans"`
	}
	if err := json.Unmarshal(live, &tp); err != nil {
		t.Fatalf("decode live trace: %v", err)
	}
	if len(tp.TraceID) != 32 {
		t.Fatalf("trace payload carries trace ID %q, want 32 hex chars", tp.TraceID)
	}
	names := map[string]bool{}
	for _, sp := range tp.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"queue.wait", "run", "persist"} {
		if !names[want] {
			t.Fatalf("live trace lacks span %q: %v", want, names)
		}
	}

	// "Crash": close the store without draining; give the persist append a
	// moment to land first (the terminal transition races the test).
	waitAppend(t, fs1, j1.ID)
	_ = fs1.Close()

	fs2, err := Open(dir, Options{Logf: t.Logf})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer fs2.Close()
	svc2 := service.New(service.Config{
		Workers: 1, QueueCapacity: 4,
		Store:   fs2,
		RunFunc: runFunc(100, nil, &calls),
	})
	j2, err := svc2.Get(j1.ID)
	if err != nil {
		t.Fatalf("recovered job missing: %v", err)
	}
	recovered := j2.TracePayload()
	if recovered == nil {
		t.Fatal("recovered job has no trace payload")
	}
	if !bytes.Equal(recovered, live) {
		t.Fatalf("recovered trace differs from persisted:\n%s\n%s", recovered, live)
	}
}

// waitAppend polls until the store's mirror holds a trace for the job (the
// service appends it asynchronously on the terminal transition).
func waitAppend(t *testing.T, fs *FileStore, id string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		fs.mu.Lock()
		js, ok := fs.mem.index[id]
		has := ok && js.Trace != nil
		fs.mu.Unlock()
		if has {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("trace for %s never reached the store", id)
}
