package store

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ecripse/internal/service"
)

// TestCrashAppendHelper is not a test: it is the victim process of
// TestRecoveryAfterSIGKILL. Re-executed with STORE_CRASH_DIR set, it
// appends submit→running→result→done groups as fast as it can until the
// parent kills it with SIGKILL mid-write.
func TestCrashAppendHelper(t *testing.T) {
	dir := os.Getenv("STORE_CRASH_DIR")
	if dir == "" {
		t.Skip("helper process for TestRecoveryAfterSIGKILL")
	}
	fs, err := Open(dir, Options{NoSync: true, CompactBytes: -1, Logf: t.Logf})
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: open: %v\n", err)
		os.Exit(1)
	}
	// Padding makes records span several write calls' worth of bytes so a
	// SIGKILL has a real chance of landing inside a frame.
	pad := strings.Repeat("x", 512)
	for i := 1; ; i++ {
		id := fmt.Sprintf("j%06d", i)
		key := fmt.Sprintf("key-%06d", i)
		spec := json.RawMessage(fmt.Sprintf(`{"estimator":"naive","seed":%d,"note":%q}`, i, pad))
		payload := json.RawMessage(fmt.Sprintf(`{"estimate":{"p":%d.5e-7},"pad":%q}`, i, pad))
		at := time.Unix(int64(1700000000+i), 0)
		fs.AppendSubmit(id, spec, key, "", false, at)
		fs.AppendState(id, service.StateRunning, "", at)
		fs.AppendResult(key, payload)
		fs.AppendState(id, service.StateDone, "", at)
	}
}

// TestRecoveryAfterSIGKILL kills a real process mid-append and requires the
// reopened store to recover a consistent prefix: jobs in submission order,
// every fully recorded job done with its result present, and only the
// trailing job allowed to be caught in an intermediate state.
func TestRecoveryAfterSIGKILL(t *testing.T) {
	dir := testDir(t)
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashAppendHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "STORE_CRASH_DIR="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatalf("start helper: %v", err)
	}

	// Wait for the journal to grow, then kill without warning.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var total int64
		if segs, err := listByPrefix(dir, segPrefix, segSuffix); err == nil {
			for _, name := range segs {
				if info, err := os.Stat(filepath.Join(dir, name)); err == nil {
					total += info.Size()
				}
			}
		}
		if total > 64<<10 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("helper journal never grew (size %d)", total)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL helper: %v", err)
	}
	cmd.Wait() // exit status is the kill signal; only reaping matters

	lc := &logCapture{t: t}
	fs, err := Open(dir, Options{Logf: lc.logf})
	if err != nil {
		t.Fatalf("reopen after SIGKILL: %v", err)
	}
	defer fs.Close()
	rec := fs.Recover()
	if len(rec.Jobs) == 0 {
		t.Fatal("nothing recovered despite a >64 KiB journal")
	}
	for i, rj := range rec.Jobs {
		if want := fmt.Sprintf("j%06d", i+1); rj.ID != want {
			t.Fatalf("job %d id = %q, want %q (order or prefix broken)", i, rj.ID, want)
		}
		last := i == len(rec.Jobs)-1
		switch rj.State {
		case service.StateDone:
			key := fmt.Sprintf("key-%06d", i+1)
			payload, ok := rec.Results[key]
			if !ok {
				t.Fatalf("job %s done but its result is missing", rj.ID)
			}
			want := fmt.Sprintf(`"p":%d.5e-7`, i+1)
			if !strings.Contains(string(payload), want) {
				t.Fatalf("job %s result corrupted: %.80s", rj.ID, payload)
			}
		case service.StateQueued, service.StateRunning:
			if !last {
				t.Fatalf("job %s is %q but %d jobs follow it — the kill tore more than the tail",
					rj.ID, rj.State, len(rec.Jobs)-1-i)
			}
		default:
			t.Fatalf("job %s recovered in unexpected state %q", rj.ID, rj.State)
		}
		var spec struct {
			Seed int `json:"seed"`
		}
		if err := json.Unmarshal(rj.Spec, &spec); err != nil || spec.Seed != i+1 {
			t.Fatalf("job %s spec corrupted (seed %d, err %v)", rj.ID, spec.Seed, err)
		}
	}
	t.Logf("recovered %d jobs, %d results, %d truncated segment(s)", len(rec.Jobs), len(rec.Results), fs.torn)

	// The repaired store accepts appends and survives one more boot.
	if err := fs.AppendSubmit("jnew", json.RawMessage(`{}`), "knew", "", false, time.Now()); err != nil {
		t.Fatalf("append after crash recovery: %v", err)
	}
	fs.Close()
	fs2, err := Open(dir, Options{Logf: t.Logf})
	if err != nil {
		t.Fatalf("third boot: %v", err)
	}
	defer fs2.Close()
	if got := len(fs2.Recover().Jobs); got != len(rec.Jobs)+1 {
		t.Fatalf("third boot recovered %d jobs, want %d", got, len(rec.Jobs)+1)
	}
}
