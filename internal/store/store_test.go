package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ecripse/internal/service"
)

// testDir returns a directory for a store under test. By default it is a
// cleaned-up t.TempDir; when STORE_TEST_ARTIFACTS names a directory (CI
// does this), the data dir is created there and left behind so a failing
// run's journal can be uploaded as an artifact.
func testDir(t *testing.T) string {
	t.Helper()
	root := os.Getenv("STORE_TEST_ARTIFACTS")
	if root == "" {
		return t.TempDir()
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		t.Fatalf("artifacts root: %v", err)
	}
	dir, err := os.MkdirTemp(root, strings.ReplaceAll(t.Name(), "/", "_")+"-*")
	if err != nil {
		t.Fatalf("artifacts dir: %v", err)
	}
	return dir
}

// logCapture tees store warnings into the test log and keeps them for
// assertions.
type logCapture struct {
	t  *testing.T
	mu sync.Mutex
	ms []string
}

func (lc *logCapture) logf(format string, args ...any) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	msg := fmt.Sprintf(format, args...)
	lc.ms = append(lc.ms, msg)
	lc.t.Log(msg)
}

func (lc *logCapture) contains(sub string) bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	for _, m := range lc.ms {
		if strings.Contains(m, sub) {
			return true
		}
	}
	return false
}

// appendJob writes the full submit→running→result→done group for one job.
func appendJob(t *testing.T, fs *FileStore, i int) {
	t.Helper()
	id := fmt.Sprintf("j%06d", i)
	key := fmt.Sprintf("key-%06d", i)
	spec := json.RawMessage(fmt.Sprintf(`{"estimator":"naive","seed":%d}`, i))
	payload := json.RawMessage(fmt.Sprintf(`{"estimate":{"p":%d.5e-7}}`, i))
	at := time.Unix(int64(1700000000+i), 0)
	if err := fs.AppendSubmit(id, spec, key, "", false, at); err != nil {
		t.Fatalf("submit %s: %v", id, err)
	}
	if err := fs.AppendState(id, service.StateRunning, "", at.Add(time.Second)); err != nil {
		t.Fatalf("running %s: %v", id, err)
	}
	if err := fs.AppendResult(key, payload); err != nil {
		t.Fatalf("result %s: %v", id, err)
	}
	if err := fs.AppendState(id, service.StateDone, "", at.Add(2*time.Second)); err != nil {
		t.Fatalf("done %s: %v", id, err)
	}
}

// segmentFiles lists the journal segments of dir, newest last.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := listByPrefix(dir, segPrefix, segSuffix)
	if err != nil {
		t.Fatalf("list segments: %v", err)
	}
	return names
}

func TestRecoveryRoundTrip(t *testing.T) {
	dir := testDir(t)
	fs, err := Open(dir, Options{Logf: t.Logf})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendJob(t, fs, 1)
	appendJob(t, fs, 2)
	// Job 3 is interrupted after the running record.
	if err := fs.AppendSubmit("j000003", json.RawMessage(`{"seed":3}`), "key-3", "", false, time.Now()); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := fs.AppendState("j000003", service.StateRunning, "", time.Now()); err != nil {
		t.Fatalf("running: %v", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := fs.AppendDrop("j000003"); err != ErrClosed {
		t.Fatalf("append after close: err = %v, want ErrClosed", err)
	}

	fs2, err := Open(dir, Options{Logf: t.Logf})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer fs2.Close()
	rec := fs2.Recover()
	if len(rec.Jobs) != 3 {
		t.Fatalf("recovered %d jobs, want 3", len(rec.Jobs))
	}
	for i, want := range []service.State{service.StateDone, service.StateDone, service.StateRunning} {
		if rec.Jobs[i].State != want {
			t.Fatalf("job %d state = %q, want %q", i, rec.Jobs[i].State, want)
		}
	}
	if got := rec.Jobs[0].ID; got != "j000001" {
		t.Fatalf("job order broken: first id %q", got)
	}
	if len(rec.Results) != 2 {
		t.Fatalf("recovered %d results, want 2", len(rec.Results))
	}
	want := fmt.Sprintf(`{"estimate":{"p":%d.5e-7}}`, 2)
	if got := string(rec.Results["key-000002"]); got != want {
		t.Fatalf("result payload = %s, want %s", got, want)
	}
	if !rec.Jobs[2].Started.After(rec.Jobs[2].Created) {
		t.Fatalf("timestamps not restored: created %v started %v", rec.Jobs[2].Created, rec.Jobs[2].Started)
	}
}

func TestRecoveryDropVoidsSubmit(t *testing.T) {
	dir := testDir(t)
	fs, err := Open(dir, Options{Logf: t.Logf})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendJob(t, fs, 1)
	if err := fs.AppendSubmit("j000002", json.RawMessage(`{"seed":2}`), "key-2", "", false, time.Now()); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := fs.AppendDrop("j000002"); err != nil {
		t.Fatalf("drop: %v", err)
	}
	fs.Close()

	fs2, err := Open(dir, Options{Logf: t.Logf})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer fs2.Close()
	if rec := fs2.Recover(); len(rec.Jobs) != 1 || rec.Jobs[0].ID != "j000001" {
		t.Fatalf("dropped job resurrected: %+v", rec.Jobs)
	}
}

func TestRecoveryTornTailTruncated(t *testing.T) {
	dir := testDir(t)
	fs, err := Open(dir, Options{Logf: t.Logf})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendJob(t, fs, 1) // 4 records; the torn tail will eat the done record
	fs.Close()

	segs := segmentFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("segments = %v, want 1", segs)
	}
	path := filepath.Join(dir, segs[0])
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	lc := &logCapture{t: t}
	fs2, err := Open(dir, Options{Logf: lc.logf})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer fs2.Close()
	if !lc.contains("truncating") {
		t.Fatalf("no truncation warning logged: %v", lc.ms)
	}
	rec := fs2.Recover()
	if len(rec.Jobs) != 1 || rec.Jobs[0].State != service.StateRunning {
		t.Fatalf("job after torn done record: %+v, want running", rec.Jobs)
	}
	if len(rec.Results) != 1 {
		t.Fatalf("result record before the tear must survive, got %d", len(rec.Results))
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat after reopen: %v", err)
	}
	if after.Size() >= info.Size()-3 {
		t.Fatalf("torn record not physically truncated: %d >= %d", after.Size(), info.Size()-3)
	}

	// The store keeps working after the repair and a third boot is clean.
	if err := fs2.AppendState("j000001", service.StateDone, "", time.Now()); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	fs2.Close()
	fs3, err := Open(dir, Options{Logf: t.Logf})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer fs3.Close()
	if rec := fs3.Recover(); rec.Jobs[0].State != service.StateDone {
		t.Fatalf("state after repair = %q, want done", rec.Jobs[0].State)
	}
}

func TestRecoveryCorruptRecordTruncated(t *testing.T) {
	dir := testDir(t)
	fs, err := Open(dir, Options{Logf: t.Logf})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendJob(t, fs, 1)
	appendJob(t, fs, 2)
	fs.Close()

	// Flip one byte in the middle of the segment: everything from the
	// corrupt record on is discarded, the prefix survives.
	path := filepath.Join(dir, segmentFiles(t, dir)[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	lc := &logCapture{t: t}
	fs2, err := Open(dir, Options{Logf: lc.logf})
	if err != nil {
		t.Fatalf("reopen with corrupt record: %v", err)
	}
	defer fs2.Close()
	if !lc.contains("truncating") {
		t.Fatalf("no corruption warning logged: %v", lc.ms)
	}
	rec := fs2.Recover()
	if len(rec.Jobs) == 0 || rec.Jobs[0].ID != "j000001" {
		t.Fatalf("prefix before corruption lost: %+v", rec.Jobs)
	}
	if len(rec.Jobs) == 2 && rec.Jobs[1].State == service.StateDone && len(rec.Results) == 2 {
		t.Fatal("corruption had no effect — test corrupted nothing")
	}
}

func TestRecoverySnapshotCompaction(t *testing.T) {
	dir := testDir(t)
	lc := &logCapture{t: t}
	fs, err := Open(dir, Options{NoSync: true, CompactBytes: 2048, Logf: lc.logf})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const jobs = 40
	for i := 1; i <= jobs; i++ {
		appendJob(t, fs, i)
	}
	st := fs.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after %d appends over a 2 KiB threshold", st.Appends)
	}
	if st.Appends != int64(jobs)*4 {
		t.Fatalf("appends = %d, want %d", st.Appends, jobs*4)
	}
	if segs := segmentFiles(t, dir); len(segs) != 1 {
		t.Fatalf("segments after compaction = %v, want exactly the live one", segs)
	}
	snaps, err := listByPrefix(dir, snapPrefix, snapSuffix)
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshots = %v (err %v), want exactly one", snaps, err)
	}
	fs.Close()

	fs2, err := Open(dir, Options{Logf: lc.logf})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer fs2.Close()
	rec := fs2.Recover()
	if len(rec.Jobs) != jobs || len(rec.Results) != jobs {
		t.Fatalf("recovered %d jobs / %d results, want %d / %d", len(rec.Jobs), len(rec.Results), jobs, jobs)
	}
	for i, rj := range rec.Jobs {
		if want := fmt.Sprintf("j%06d", i+1); rj.ID != want || rj.State != service.StateDone {
			t.Fatalf("job %d = %s %q, want %s done", i, rj.ID, rj.State, want)
		}
	}
	if want := fmt.Sprintf(`{"estimate":{"p":%d.5e-7}}`, jobs); string(rec.Results[fmt.Sprintf("key-%06d", jobs)]) != want {
		t.Fatalf("result payload corrupted through compaction")
	}
}

func TestRecoverySkipsCorruptSnapshot(t *testing.T) {
	dir := testDir(t)
	fs, err := Open(dir, Options{NoSync: true, CompactBytes: 1024, Logf: t.Logf})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 1; i <= 20; i++ {
		appendJob(t, fs, i)
	}
	if fs.Stats().Compactions == 0 {
		t.Fatal("setup: expected at least one compaction")
	}
	fs.Close()

	snaps, err := listByPrefix(dir, snapPrefix, snapSuffix)
	if err != nil || len(snaps) == 0 {
		t.Fatalf("snapshots: %v (%v)", snaps, err)
	}
	path := filepath.Join(dir, snaps[len(snaps)-1])
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatalf("corrupt snapshot: %v", err)
	}

	lc := &logCapture{t: t}
	fs2, err := Open(dir, Options{Logf: lc.logf})
	if err != nil {
		t.Fatalf("open with corrupt snapshot must not refuse boot: %v", err)
	}
	defer fs2.Close()
	if !lc.contains("skipping snapshot") {
		t.Fatalf("no snapshot warning logged: %v", lc.ms)
	}
	// State covered only by the snapshot is gone, but the store is usable.
	if err := fs2.AppendSubmit("jx", json.RawMessage(`{}`), "kx", "", false, time.Now()); err != nil {
		t.Fatalf("append after snapshot loss: %v", err)
	}
}
