package store

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"ecripse/internal/montecarlo"
	"ecripse/internal/service"
)

// seedPayload is the deterministic result an uninterrupted run of a spec
// would produce: it depends only on the spec, exactly like the real runner.
func seedPayload(spec service.JobSpec) *service.RunResult {
	return &service.RunResult{
		Estimate: service.Estimate{P: float64(spec.Seed) * 1e-7, N: spec.N, Sims: int64(spec.N)},
		Cost:     service.CostSplit{Total: int64(spec.N)},
	}
}

func marshalPayload(t *testing.T, spec service.JobSpec) []byte {
	t.Helper()
	if err := spec.Normalize(); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	b, err := json.Marshal(seedPayload(spec))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// runFunc builds a deterministic test runner. Seeds >= blockFrom block
// until release is closed (simulating long estimator runs in flight when
// the process dies); calls counts invocations per seed.
func runFunc(blockFrom int64, release <-chan struct{}, calls *sync.Map) func(context.Context, service.JobSpec, *montecarlo.Counter) (*service.RunResult, error) {
	return func(ctx context.Context, spec service.JobSpec, c *montecarlo.Counter) (*service.RunResult, error) {
		n, _ := calls.LoadOrStore(spec.Seed, new(int64))
		*n.(*int64)++
		if spec.Seed >= blockFrom {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		c.Add(int64(spec.N))
		return seedPayload(spec), nil
	}
}

func waitTerminal(t *testing.T, j *service.Job, within time.Duration) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(within):
		t.Fatalf("job %s not terminal within %s (state %q)", j.ID, within, j.State())
	}
}

// TestRecoveryServiceReplay is the acceptance test for the persistent
// store: a service journaling to a data dir "crashes" (no drain, store cut
// off mid-flight), and a second service opened on the same dir serves the
// same job IDs — completed results byte-identical from the restored cache
// without re-simulation, interrupted jobs re-enqueued and finishing with
// the exact payload an uninterrupted run would have produced.
func TestRecoveryServiceReplay(t *testing.T) {
	dir := testDir(t)
	fs1, err := Open(dir, Options{Logf: t.Logf})
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	release := make(chan struct{})
	defer close(release) // lets the abandoned first-life worker unwind
	var calls1 sync.Map
	svc1 := service.New(service.Config{
		Workers: 1, QueueCapacity: 8,
		Store:   fs1,
		RunFunc: runFunc(100, release, &calls1),
	})

	spec := func(seed int64) service.JobSpec {
		return service.JobSpec{Estimator: service.EstNaive, Seed: seed, N: 1000}
	}

	// A completes; B blocks mid-run; C and D sit in the queue; E duplicates
	// A's spec and is answered inline from the cache.
	jA, err := svc1.Submit(spec(1))
	if err != nil {
		t.Fatalf("submit A: %v", err)
	}
	waitTerminal(t, jA, 5*time.Second)
	resultA := append([]byte(nil), jA.Result()...)
	if want := marshalPayload(t, spec(1)); !bytes.Equal(resultA, want) {
		t.Fatalf("unexpected pre-crash payload:\n%s\n%s", resultA, want)
	}

	jB, err := svc1.Submit(spec(100))
	if err != nil {
		t.Fatalf("submit B: %v", err)
	}
	for deadline := time.Now().Add(5 * time.Second); jB.State() != service.StateRunning; {
		if time.Now().After(deadline) {
			t.Fatalf("B never started (state %q)", jB.State())
		}
		time.Sleep(time.Millisecond)
	}
	jC, err := svc1.Submit(spec(101))
	if err != nil {
		t.Fatalf("submit C: %v", err)
	}
	jD, err := svc1.Submit(spec(102))
	if err != nil {
		t.Fatalf("submit D: %v", err)
	}
	jE, err := svc1.Submit(spec(1))
	if err != nil {
		t.Fatalf("submit E: %v", err)
	}
	waitTerminal(t, jE, 5*time.Second)
	if !jE.Snapshot(true).Cached {
		t.Fatal("E was not a cache hit")
	}

	// Crash: the store is cut off with B running and C, D queued. No drain.
	if err := fs1.Close(); err != nil {
		t.Fatalf("close store: %v", err)
	}

	// Second life: same dir, a runner that never blocks.
	fs2, err := Open(dir, Options{Logf: t.Logf})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rec := fs2.Recover()
	if len(rec.Jobs) != 5 {
		t.Fatalf("recovered %d jobs, want 5", len(rec.Jobs))
	}
	wantStates := map[string]service.State{
		jA.ID: service.StateDone,
		jB.ID: service.StateRunning,
		jC.ID: service.StateQueued,
		jD.ID: service.StateQueued,
		jE.ID: service.StateDone,
	}
	for _, rj := range rec.Jobs {
		if rj.State != wantStates[rj.ID] {
			t.Fatalf("recovered %s state = %q, want %q", rj.ID, rj.State, wantStates[rj.ID])
		}
	}

	var calls2 sync.Map
	svc2 := service.New(service.Config{
		Workers: 1, QueueCapacity: 8,
		Store:   fs2,
		RunFunc: runFunc(1<<62, nil, &calls2),
	})

	// Previously completed jobs come back under their IDs with the result
	// attached, and nothing re-simulates their specs.
	gA, err := svc2.Get(jA.ID)
	if err != nil {
		t.Fatalf("get A after restart: %v", err)
	}
	if gA.State() != service.StateDone || !bytes.Equal(gA.Result(), resultA) {
		t.Fatalf("restored A: state %q, byte-identical %v", gA.State(), bytes.Equal(gA.Result(), resultA))
	}
	gE, err := svc2.Get(jE.ID)
	if err != nil {
		t.Fatalf("get E after restart: %v", err)
	}
	if gE.State() != service.StateDone || !bytes.Equal(gE.Result(), resultA) {
		t.Fatalf("restored E: state %q", gE.State())
	}

	// Interrupted jobs were re-enqueued and complete with the payload an
	// uninterrupted run would have produced.
	for _, id := range []string{jB.ID, jC.ID, jD.ID} {
		g, err := svc2.Get(id)
		if err != nil {
			t.Fatalf("get %s after restart: %v", id, err)
		}
		waitTerminal(t, g, 10*time.Second)
		if g.State() != service.StateDone {
			t.Fatalf("replayed %s state = %q (err %q)", id, g.State(), g.Snapshot(false).Error)
		}
		if want := marshalPayload(t, g.Spec); !bytes.Equal(g.Result(), want) {
			t.Fatalf("replayed %s result differs from an uninterrupted run:\n%s\n%s", id, g.Result(), want)
		}
	}
	if n, ok := calls2.Load(int64(1)); ok {
		t.Fatalf("seed 1 was re-simulated %d times after restart despite the restored cache", *n.(*int64))
	}

	m := svc2.Snapshot()
	if m.ReplayedJobs != 3 {
		t.Fatalf("replayed_jobs = %d, want 3", m.ReplayedJobs)
	}
	if m.Store == nil || m.Store.Appends == 0 {
		t.Fatalf("store metrics missing: %+v", m.Store)
	}

	// Fresh submissions continue the ID sequence instead of reusing it.
	jF, err := svc2.Submit(spec(7))
	if err != nil {
		t.Fatalf("submit F: %v", err)
	}
	if want := fmt.Sprintf("j%06d", 6); jF.ID != want {
		t.Fatalf("post-recovery id = %q, want %q", jF.ID, want)
	}
	waitTerminal(t, jF, 5*time.Second)

	if err := svc2.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	fs2.Close()

	// Third life: everything is terminal now; nothing runs at all.
	fs3, err := Open(dir, Options{Logf: t.Logf})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	var calls3 sync.Map
	svc3 := service.New(service.Config{
		Workers: 1, QueueCapacity: 8,
		Store:   fs3,
		RunFunc: runFunc(1<<62, nil, &calls3),
	})
	for _, id := range []string{jA.ID, jB.ID, jC.ID, jD.ID, jE.ID, jF.ID} {
		g, err := svc3.Get(id)
		if err != nil {
			t.Fatalf("get %s in third life: %v", id, err)
		}
		if g.State() != service.StateDone || g.Result() == nil {
			t.Fatalf("third-life %s: state %q, result %v", id, g.State(), g.Result() != nil)
		}
	}
	calls3.Range(func(k, v any) bool {
		t.Fatalf("third life re-simulated seed %v", k)
		return false
	})
	if m := svc3.Snapshot(); m.ReplayedJobs != 0 {
		t.Fatalf("third-life replayed_jobs = %d, want 0", m.ReplayedJobs)
	}
	if err := svc3.Drain(context.Background()); err != nil {
		t.Fatalf("drain third life: %v", err)
	}
	fs3.Close()
}
