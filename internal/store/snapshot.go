package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ecripse/internal/service"
)

// jobState is the store's mirror of one job, as of the last applied record.
type jobState struct {
	ID       string          `json:"id"`
	Spec     json.RawMessage `json:"spec"`
	Key      string          `json:"key"`
	State    string          `json:"state"`
	Error    string          `json:"error,omitempty"`
	Cached   bool            `json:"cached,omitempty"`
	Tenant   string          `json:"tenant,omitempty"`
	Created  time.Time       `json:"created"`
	Started  time.Time       `json:"started"`
	Finished time.Time       `json:"finished"`
	// Trace is the job's persisted span timeline, if it finished under a
	// trace-recording service. Absent in older snapshots (same version).
	Trace json.RawMessage `json:"trace,omitempty"`
}

// sweepState is the store's mirror of one sweep, as of the last applied
// record. Result is the aggregate payload of a done sweep.
type sweepState struct {
	ID       string          `json:"id"`
	Spec     json.RawMessage `json:"spec"`
	Key      string          `json:"key"`
	State    string          `json:"state"`
	Error    string          `json:"error,omitempty"`
	Tenant   string          `json:"tenant,omitempty"`
	Created  time.Time       `json:"created"`
	Started  time.Time       `json:"started"`
	Finished time.Time       `json:"finished"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// memState is the materialized journal: what a replay of every record up to
// LastSeq produces. The store maintains it incrementally on each append so
// that a snapshot is a plain marshal, and recovery hands it to the service.
type memState struct {
	Version int                        `json:"version"`
	LastSeq uint64                     `json:"last_seq"`
	Jobs    []*jobState                `json:"jobs"` // submission order
	Results map[string]json.RawMessage `json:"results"`
	// Tenants is the latest usage snapshot per tenant; Owners the latest
	// shard placement per dispatched job (cluster routers); Sweeps every
	// known sweep in submission order. All absent in older snapshots (same
	// version — additive fields).
	Tenants map[string]service.TenantUsage `json:"tenants,omitempty"`
	Owners  map[string]service.OwnerRecord `json:"owners,omitempty"`
	Sweeps  []*sweepState                  `json:"sweeps,omitempty"`

	index      map[string]*jobState   // id → entry; rebuilt after load
	sweepIndex map[string]*sweepState // id → entry; rebuilt after load
}

const snapshotVersion = 1

func newMemState() *memState {
	return &memState{Version: snapshotVersion, Results: make(map[string]json.RawMessage)}
}

func (m *memState) reindex() {
	m.index = make(map[string]*jobState, len(m.Jobs))
	for _, js := range m.Jobs {
		m.index[js.ID] = js
	}
	m.sweepIndex = make(map[string]*sweepState, len(m.Sweeps))
	for _, ss := range m.Sweeps {
		m.sweepIndex[ss.ID] = ss
	}
	if m.Results == nil {
		m.Results = make(map[string]json.RawMessage)
	}
}

// apply folds one record into the mirror. Unknown jobs and duplicate
// submits are warned about and tolerated: replay must never refuse a boot.
func (m *memState) apply(rec *Record, logf func(string, ...any)) {
	switch rec.Op {
	case OpSubmit:
		if _, dup := m.index[rec.Job]; dup {
			logf("store: replay: duplicate submit for %s (seq %d), keeping the first", rec.Job, rec.Seq)
			break
		}
		js := &jobState{
			ID:      rec.Job,
			Spec:    rec.Spec,
			Key:     rec.Key,
			State:   string(service.StateQueued),
			Cached:  rec.Cached,
			Tenant:  rec.Tenant,
			Created: rec.At,
		}
		m.Jobs = append(m.Jobs, js)
		m.index[rec.Job] = js
	case OpState:
		js, ok := m.index[rec.Job]
		if !ok {
			logf("store: replay: state %q for unknown job %s (seq %d), ignoring", rec.State, rec.Job, rec.Seq)
			break
		}
		js.State = rec.State
		js.Error = rec.Error
		switch {
		case rec.State == string(service.StateRunning):
			js.Started = rec.At
		case service.State(rec.State).Terminal():
			js.Finished = rec.At
		}
	case OpResult:
		m.Results[rec.Key] = rec.Result
	case OpTrace:
		js, ok := m.index[rec.Job]
		if !ok {
			logf("store: replay: trace for unknown job %s (seq %d), ignoring", rec.Job, rec.Seq)
			break
		}
		js.Trace = rec.Trace
	case OpTenant:
		if m.Tenants == nil {
			m.Tenants = make(map[string]service.TenantUsage)
		}
		m.Tenants[rec.Tenant] = service.TenantUsage{Jobs: rec.Jobs, Sims: rec.Sims}
	case OpOwner:
		if m.Owners == nil {
			m.Owners = make(map[string]service.OwnerRecord)
		}
		m.Owners[rec.Job] = service.OwnerRecord{Shard: rec.Shard, Remote: rec.Remote}
	case OpSweep:
		if _, dup := m.sweepIndex[rec.Job]; dup {
			logf("store: replay: duplicate sweep submit for %s (seq %d), keeping the first", rec.Job, rec.Seq)
			break
		}
		ss := &sweepState{
			ID:      rec.Job,
			Spec:    rec.Spec,
			Key:     rec.Key,
			State:   string(service.StateQueued),
			Tenant:  rec.Tenant,
			Created: rec.At,
		}
		m.Sweeps = append(m.Sweeps, ss)
		m.sweepIndex[rec.Job] = ss
	case OpSweepState:
		ss, ok := m.sweepIndex[rec.Job]
		if !ok {
			logf("store: replay: sweep state %q for unknown sweep %s (seq %d), ignoring", rec.State, rec.Job, rec.Seq)
			break
		}
		ss.State = rec.State
		ss.Error = rec.Error
		switch {
		case rec.State == string(service.StateRunning):
			ss.Started = rec.At
		case service.State(rec.State).Terminal():
			ss.Finished = rec.At
			ss.Result = rec.Result
		}
	case OpDrop:
		if js, ok := m.index[rec.Job]; ok {
			delete(m.index, rec.Job)
			for i, o := range m.Jobs {
				if o == js {
					m.Jobs = append(m.Jobs[:i], m.Jobs[i+1:]...)
					break
				}
			}
		}
	default:
		logf("store: replay: unknown op %q (seq %d), ignoring", rec.Op, rec.Seq)
	}
	if rec.Seq > m.LastSeq {
		m.LastSeq = rec.Seq
	}
}

// recovery converts the mirror into the service's boot-time view.
func (m *memState) recovery() *service.Recovery {
	rec := &service.Recovery{Results: make(map[string]json.RawMessage, len(m.Results))}
	for k, v := range m.Results {
		rec.Results[k] = v
	}
	for _, js := range m.Jobs {
		rec.Jobs = append(rec.Jobs, service.RecoveredJob{
			ID:       js.ID,
			Spec:     js.Spec,
			Key:      js.Key,
			State:    service.State(js.State),
			Error:    js.Error,
			Cached:   js.Cached,
			Tenant:   js.Tenant,
			Created:  js.Created,
			Started:  js.Started,
			Finished: js.Finished,
			Trace:    js.Trace,
		})
	}
	for _, ss := range m.Sweeps {
		rec.Sweeps = append(rec.Sweeps, service.RecoveredSweep{
			ID:       ss.ID,
			Spec:     ss.Spec,
			Key:      ss.Key,
			State:    service.State(ss.State),
			Error:    ss.Error,
			Tenant:   ss.Tenant,
			Created:  ss.Created,
			Started:  ss.Started,
			Finished: ss.Finished,
			Result:   ss.Result,
		})
	}
	if len(m.Tenants) > 0 {
		rec.Tenants = make(map[string]service.TenantUsage, len(m.Tenants))
		for k, v := range m.Tenants {
			rec.Tenants[k] = v
		}
	}
	if len(m.Owners) > 0 {
		rec.Owners = make(map[string]service.OwnerRecord, len(m.Owners))
		for k, v := range m.Owners {
			rec.Owners[k] = v
		}
	}
	return rec
}

// writeSnapshot persists the mirror atomically: marshal to a temp file,
// fsync, rename into place, fsync the directory.
func writeSnapshot(dir string, m *memState) (string, error) {
	data, err := json.Marshal(m)
	if err != nil {
		return "", fmt.Errorf("store: marshal snapshot: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "snapshot-*.tmp")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	path := filepath.Join(dir, snapName(m.LastSeq))
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	return path, syncDir(dir)
}

// loadSnapshot reads one snapshot file back into a mirror.
func loadSnapshot(path string) (*memState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := newMemState()
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("store: decode snapshot %s: %w", filepath.Base(path), err)
	}
	if m.Version != snapshotVersion {
		return nil, fmt.Errorf("store: snapshot %s has version %d, want %d", filepath.Base(path), m.Version, snapshotVersion)
	}
	m.reindex()
	return m, nil
}
