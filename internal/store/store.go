// Package store is the write-ahead persistence layer of the ecripsed
// daemon. Every job state transition and every completed result is appended
// to a CRC-framed, optionally fsync'd segment journal under a data
// directory; on boot the journal (plus the newest snapshot, if any) is
// replayed into the state the service recovers from. Once the live segment
// outgrows a threshold the whole mirror is compacted into a snapshot and
// the segments are deleted.
//
// Corruption policy: a torn or corrupt frame ends a segment — it is
// truncated there with a warning and boot proceeds with the readable
// prefix. An unreadable snapshot falls back to the next older one. The
// store never refuses to open a data directory.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ecripse/internal/service"
)

// ErrClosed is returned by appends after Close.
var ErrClosed = errors.New("store: closed")

// Options configures a FileStore.
type Options struct {
	// NoSync disables the per-append fsync. Appends get much cheaper; a
	// process crash still loses nothing (the OS holds the pages), but a
	// power failure may drop the last few records. The replay path handles
	// the resulting torn tail either way.
	NoSync bool
	// CompactBytes is the live-segment size that triggers snapshot
	// compaction (default 8 MiB; negative disables compaction).
	CompactBytes int64
	// Logf receives recovery warnings and compaction notices
	// (default log.Printf).
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.CompactBytes == 0 {
		o.CompactBytes = 8 << 20
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
}

// FileStore implements service.Store on a data directory.
type FileStore struct {
	mu   sync.Mutex
	dir  string
	opts Options
	mem  *memState
	seg  *segment
	seq  uint64 // last assigned sequence number
	torn int    // segments truncated during open (for tests/inspection)

	appends     int64
	compactions int64
	closed      bool
}

// Open replays the data directory and prepares a fresh live segment.
// It creates dir if needed and never fails on corrupt contents — those are
// truncated or skipped with warnings through Options.Logf.
func Open(dir string, opts Options) (*FileStore, error) {
	opts.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}

	// Newest loadable snapshot wins; unreadable ones are skipped.
	snaps, err := listByPrefix(dir, snapPrefix, snapSuffix)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	var mem *memState
	for i := len(snaps) - 1; i >= 0; i-- {
		m, lerr := loadSnapshot(filepath.Join(dir, snaps[i]))
		if lerr != nil {
			opts.Logf("store: skipping snapshot %s: %v", snaps[i], lerr)
			continue
		}
		mem = m
		break
	}
	if mem == nil {
		mem = newMemState()
		mem.reindex()
	}

	// Replay every segment record beyond the snapshot horizon, in order.
	segs, err := listByPrefix(dir, segPrefix, segSuffix)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	fs := &FileStore{dir: dir, opts: opts, mem: mem}
	for _, name := range segs {
		path := filepath.Join(dir, name)
		before, _ := os.Stat(path)
		if err := scanSegment(path, func(rec *Record) {
			if rec.Seq > mem.LastSeq {
				mem.apply(rec, opts.Logf)
			}
		}, opts.Logf); err != nil {
			return nil, fmt.Errorf("store: replay %s: %w", name, err)
		}
		if after, serr := os.Stat(path); serr == nil && before != nil && after.Size() < before.Size() {
			fs.torn++
		}
	}

	fs.seq = mem.LastSeq
	seg, err := createSegment(dir, fs.seq+1)
	if err != nil {
		return nil, err
	}
	fs.seg = seg
	return fs, nil
}

// Dir returns the data directory the store journals to.
func (fs *FileStore) Dir() string { return fs.dir }

// append assigns the next sequence number, writes the framed record, folds
// it into the mirror and compacts when the live segment is over budget.
func (fs *FileStore) append(rec Record) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	rec.Seq = fs.seq + 1
	frame, err := encodeFrame(&rec)
	if err != nil {
		return err
	}
	if err := fs.seg.append(frame, !fs.opts.NoSync); err != nil {
		// The write may have landed partially; the sequence number stays
		// burnt so replay (which tolerates gaps) cannot misattribute it.
		fs.seq = rec.Seq
		return err
	}
	fs.seq = rec.Seq
	fs.mem.apply(&rec, fs.opts.Logf)
	fs.appends++
	if fs.opts.CompactBytes > 0 && fs.seg.size >= fs.opts.CompactBytes {
		if cerr := fs.compactLocked(); cerr != nil {
			fs.opts.Logf("store: compaction: %v", cerr)
		}
	}
	return nil
}

// compactLocked folds the journal into a snapshot and starts an empty
// segment. Order matters for crash safety: the snapshot reaches disk
// (rename + dir fsync) before any segment is deleted, so every crash point
// leaves either the old segments or a snapshot covering them.
func (fs *FileStore) compactLocked() error {
	if _, err := writeSnapshot(fs.dir, fs.mem); err != nil {
		return err
	}
	if err := fs.seg.close(); err != nil {
		fs.opts.Logf("store: close segment: %v", err)
	}
	segs, err := listByPrefix(fs.dir, segPrefix, segSuffix)
	if err != nil {
		return err
	}
	for _, name := range segs {
		if err := os.Remove(filepath.Join(fs.dir, name)); err != nil {
			fs.opts.Logf("store: remove %s: %v", name, err)
		}
	}
	snaps, err := listByPrefix(fs.dir, snapPrefix, snapSuffix)
	if err == nil {
		for _, name := range snaps[:max(0, len(snaps)-1)] {
			if err := os.Remove(filepath.Join(fs.dir, name)); err != nil {
				fs.opts.Logf("store: remove %s: %v", name, err)
			}
		}
	}
	if err := syncDir(fs.dir); err != nil {
		fs.opts.Logf("store: fsync dir: %v", err)
	}
	seg, err := createSegment(fs.dir, fs.seq+1)
	if err != nil {
		return err
	}
	fs.seg = seg
	fs.compactions++
	fs.opts.Logf("store: compacted %d records into %s", fs.seq, snapName(fs.mem.LastSeq))
	return nil
}

// Recover implements service.Store.
func (fs *FileStore) Recover() *service.Recovery {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.mem.recovery()
}

// AppendSubmit implements service.Store.
func (fs *FileStore) AppendSubmit(id string, spec json.RawMessage, key, tenant string, cached bool, at time.Time) error {
	return fs.append(Record{Op: OpSubmit, Job: id, Spec: spec, Key: key, Tenant: tenant, Cached: cached, At: at})
}

// AppendState implements service.Store.
func (fs *FileStore) AppendState(id string, state service.State, errMsg string, at time.Time) error {
	return fs.append(Record{Op: OpState, Job: id, State: string(state), Error: errMsg, At: at})
}

// AppendResult implements service.Store.
func (fs *FileStore) AppendResult(key string, payload json.RawMessage) error {
	return fs.append(Record{Op: OpResult, Key: key, Result: payload})
}

// AppendDrop implements service.Store.
func (fs *FileStore) AppendDrop(id string) error {
	return fs.append(Record{Op: OpDrop, Job: id})
}

// AppendTrace implements service.Store.
func (fs *FileStore) AppendTrace(id string, trace json.RawMessage) error {
	return fs.append(Record{Op: OpTrace, Job: id, Trace: trace})
}

// AppendTenant implements service.Store.
func (fs *FileStore) AppendTenant(name string, u service.TenantUsage) error {
	return fs.append(Record{Op: OpTenant, Tenant: name, Jobs: u.Jobs, Sims: u.Sims})
}

// AppendOwner implements service.Store.
func (fs *FileStore) AppendOwner(id, shard, remote string) error {
	return fs.append(Record{Op: OpOwner, Job: id, Shard: shard, Remote: remote})
}

// AppendSweep implements service.Store.
func (fs *FileStore) AppendSweep(id string, spec json.RawMessage, key, tenant string, at time.Time) error {
	return fs.append(Record{Op: OpSweep, Job: id, Spec: spec, Key: key, Tenant: tenant, At: at})
}

// AppendSweepState implements service.Store.
func (fs *FileStore) AppendSweepState(id string, state service.State, errMsg string, result json.RawMessage, at time.Time) error {
	return fs.append(Record{Op: OpSweepState, Job: id, State: string(state), Error: errMsg, Result: result, At: at})
}

// Stats implements service.Store.
func (fs *FileStore) Stats() service.StoreStats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	st := service.StoreStats{Appends: fs.appends, Compactions: fs.compactions}
	if fs.seg != nil {
		st.SegmentBytes = fs.seg.size
	}
	return st
}

// Close flushes and closes the live segment. Later appends return ErrClosed.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil
	}
	fs.closed = true
	if !fs.opts.NoSync {
		if err := fs.seg.f.Sync(); err != nil {
			fs.opts.Logf("store: fsync on close: %v", err)
		}
	}
	return fs.seg.close()
}
