package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"ecripse/internal/linalg"
	"ecripse/internal/sram"
	"ecripse/internal/svm"
)

// WarmState is the portable cross-point warm-start snapshot of an engine: the
// stage-1 starting particle cloud, the classifier trust radius, and the
// trained blockade classifier serialized via svm's Save/Load model format. It
// is what a sweep planner carries from one grid point to its neighbor so the
// next point skips boundary bisection and classifier warm-up entirely. The
// whole struct round-trips through JSON bit-exactly (Go's float64 encoding is
// shortest-round-trip), so a warm-started run is a deterministic function of
// (spec, predecessor result) — the property that lets warm results be
// content-cached.
type WarmState struct {
	// Cloud is the ensemble's stage-1 starting cloud in the normalized
	// space, in Ensemble.Particles() order (filters concatenated). It is the
	// grouped boundary initialization — NOT the post-iteration cloud, whose
	// resampling-collapsed diversity would bias chained importance proposals
	// low — so it passes through a warm chain unchanged, exactly like the
	// shared initialization of the paper's Fig. 7(b).
	Cloud []linalg.Vector `json:"cloud"`
	// TrustR is the classifier trust radius that accompanied the classifier.
	TrustR float64 `json:"trust_r,omitempty"`
	// Classifier is the svm model document (empty when the exporting engine
	// ran with NoClassifier, or when the importer should label everything
	// with the true simulator).
	Classifier json.RawMessage `json:"classifier,omitempty"`
}

// Warm exports the engine's warm-start state. It errors before the first
// completed Run (there is no starting cloud captured yet). The classifier,
// when present, includes every online update made during the run — the
// importing engine continues training from where this one stopped.
func (e *Engine) Warm() (*WarmState, error) {
	if len(e.startCloud) == 0 {
		return nil, errors.New("core: no particle cloud to export (complete a run first)")
	}
	ws := &WarmState{TrustR: e.trustR, Cloud: make([]linalg.Vector, len(e.startCloud))}
	for i, p := range e.startCloud {
		ws.Cloud[i] = p.Clone()
	}
	if e.classifier != nil {
		var buf bytes.Buffer
		if err := e.classifier.Save(&buf); err != nil {
			return nil, fmt.Errorf("core: serialize classifier: %w", err)
		}
		ws.Classifier = buf.Bytes()
	}
	return ws, nil
}

// SeedWarm installs a neighbor point's warm state: the cloud becomes the
// initial particle set (so InitCtx skips boundary bisection AND classifier
// warm-up — the amortization the paper demonstrates in Fig. 7(b)), the
// stage-1 ensemble is rebuilt from the cloud with the original per-filter
// grouping via pfilter.Warm, and the classifier (when carried) resumes with
// its trained weights and trust radius. A WarmState without a classifier
// seeds the cloud only; every label is then answered by the true simulator,
// which stays unbiased at the cost of the classifier savings — the right
// trade when the neighbor ran at a different operating point (Vdd/TempK) and
// its classifier would mislabel this cell.
//
// SeedWarm must be called before the first Init/Run and errors on an already
// initialized engine. Warm seeding changes the engine's randomness
// consumption versus a cold run, so warm results are distinct deterministic
// outcomes: callers that content-address results must include the warm
// linkage in the cache key.
func (e *Engine) SeedWarm(ws *WarmState) error {
	if ws == nil || len(ws.Cloud) == 0 {
		return errors.New("core: empty warm state")
	}
	if e.initial != nil {
		return errors.New("core: engine already initialized; seed warm state before the first run")
	}
	for i, p := range ws.Cloud {
		if len(p) != sram.NumTransistors {
			return fmt.Errorf("core: warm cloud point %d has dimension %d, want %d", i, len(p), sram.NumTransistors)
		}
		for _, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: warm cloud point %d is not finite", i)
			}
		}
	}
	if len(ws.Classifier) > 0 && !e.Opts.NoClassifier {
		cls, err := svm.Load(bytes.NewReader(ws.Classifier))
		if err != nil {
			return fmt.Errorf("core: load warm classifier: %w", err)
		}
		e.classifier = cls
		e.trustR = ws.TrustR
	}
	if e.trustR <= 0 || math.IsNaN(e.trustR) || math.IsInf(e.trustR, 0) {
		// Same rule InitCtx uses: trust slightly beyond the farthest particle.
		r := 0.0
		for _, p := range ws.Cloud {
			if n := p.Norm(); n > r {
				r = n
			}
		}
		e.trustR = 1.1 * r
	}
	e.initial = make([]linalg.Vector, len(ws.Cloud))
	for i, p := range ws.Cloud {
		e.initial[i] = p.Clone()
	}
	e.warmed = true
	return nil
}

// Warmed reports whether the engine was seeded via SeedWarm.
func (e *Engine) Warmed() bool { return e.warmed }
