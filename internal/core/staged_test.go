package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ecripse/internal/rtn"
	"ecripse/internal/sram"
)

// requireResultMatch pins every deterministic field of got to want:
// estimate bits, convergence series, cost split, solver-effort counters,
// adaptive split, stage-1 diagnostics and proposal. Lane and pipeline
// counters are path-dependent and checked by the caller.
func requireResultMatch(t *testing.T, label string, got, want Result) {
	t.Helper()
	if math.Float64bits(got.Estimate.P) != math.Float64bits(want.Estimate.P) ||
		math.Float64bits(got.Estimate.CI95) != math.Float64bits(want.Estimate.CI95) {
		t.Fatalf("%s: estimate diverged: got %+v, want %+v", label, got.Estimate, want.Estimate)
	}
	if got.Estimate.Sims != want.Estimate.Sims {
		t.Fatalf("%s: simulation count diverged: got %d, want %d", label, got.Estimate.Sims, want.Estimate.Sims)
	}
	if !reflect.DeepEqual(got.Series, want.Series) {
		t.Fatalf("%s: convergence series diverged:\ngot %v\nwant %v", label, got.Series, want.Series)
	}
	if got.InitSims != want.InitSims || got.WarmupSims != want.WarmupSims ||
		got.Stage1Sims != want.Stage1Sims || got.Stage2Sims != want.Stage2Sims ||
		got.Classified != want.Classified {
		t.Fatalf("%s: cost split diverged:\ngot %v\nwant %v", label, got, want)
	}
	if got.RootSolves != want.RootSolves || got.SolverIters != want.SolverIters {
		t.Fatalf("%s: solver effort diverged: got solves=%d iters=%d, want solves=%d iters=%d",
			label, got.RootSolves, got.SolverIters, want.RootSolves, want.SolverIters)
	}
	if got.CoarseSims != want.CoarseSims || got.Escalated != want.Escalated {
		t.Fatalf("%s: adaptive split diverged: got %v, want %v", label, got, want)
	}
	if !reflect.DeepEqual(got.PFRounds, want.PFRounds) {
		t.Fatalf("%s: stage-1 diagnostics diverged", label)
	}
	if !reflect.DeepEqual(got.Proposal.Means, want.Proposal.Means) {
		t.Fatalf("%s: proposal means diverged", label)
	}
}

// stagedCases are the five engine configurations the path-equivalence
// suites pin: plain RDF, RTN, adaptive tiering, the no-classifier ablation
// and hold mode at a non-default lane width.
var stagedCases = []struct {
	name string
	opts Options
	rtn  bool
}{
	{"rdf", Options{NIS: 4000, Directions: 64, WarmupTrain: 120, PFIters: 3, RecordEvery: 300}, false},
	{"rtn", Options{NIS: 1200, M: 5, Directions: 64, WarmupTrain: 120, PFIters: 3}, true},
	{"adaptive-parallel", Options{NIS: 3000, AdaptiveGrid: true, Parallelism: 4, Directions: 64, WarmupTrain: 120, PFIters: 2}, false},
	{"noclassifier", Options{NIS: 800, NoClassifier: true, Directions: 48, PFIters: 2}, false},
	{"hold-lanes256", Options{Mode: HoldFailure, NIS: 1500, BatchLanes: 256, Directions: 48, WarmupTrain: 120, PFIters: 2}, false},
}

// stagedSampler builds the RTN sampler a case asks for.
func stagedSampler(cell *sram.Cell, cfg rtn.Config, want bool) *rtn.Sampler {
	if !want {
		return nil
	}
	return rtn.NewSampler(cell, cfg, 0.3)
}

// TestStagedMatchesScalar pins the batched evaluation paths — staged
// boundary search, warm-up labeling, particle-filter measurement and
// stage-2 importance sampling, all settling their indicator calls through
// simulateBatch, with stage 2 either barrier-staged or pipelined — to the
// per-sample scalar path bit for bit: identical estimate, convergence
// series, cost split and solver-effort counters for the same seed.
func TestStagedMatchesScalar(t *testing.T) {
	cell := sram.NewCell(0.5)
	cfg := rtn.TableIConfig(cell)
	for _, tc := range stagedCases {
		t.Run(tc.name, func(t *testing.T) {
			sampler := stagedSampler(cell, cfg, tc.rtn)
			scalarOpts := tc.opts
			scalarOpts.scalarPath = true
			want := NewEngine(cell, nil, scalarOpts).Run(rand.New(rand.NewSource(91)), sampler)

			stagedOpts := tc.opts
			stagedOpts.NoPipeline = true
			staged := NewEngine(cell, nil, stagedOpts).Run(rand.New(rand.NewSource(91)), sampler)
			requireResultMatch(t, "staged-vs-scalar", staged, want)

			piped := NewEngine(cell, nil, tc.opts).Run(rand.New(rand.NewSource(91)), sampler)
			requireResultMatch(t, "pipelined-vs-scalar", piped, want)

			// The lane counters are the one legitimate difference: only the
			// batched paths issue kernel slots. Write mode keeps the scalar
			// solver, so it is exempt.
			if want.LaneSlots != 0 {
				t.Fatalf("scalar path issued lane slots: %d", want.LaneSlots)
			}
			for _, got := range []Result{staged, piped} {
				if tc.opts.Mode != WriteFailure && got.LaneSlots == 0 {
					t.Fatalf("batched path issued no lane slots")
				}
				if got.LaneOccupied > got.LaneSlots {
					t.Fatalf("lane occupancy %d exceeds slots %d", got.LaneOccupied, got.LaneSlots)
				}
			}
			if staged.LaneSlots != piped.LaneSlots || staged.LaneOccupied != piped.LaneOccupied {
				t.Fatalf("lane accounting diverged between staged (%d/%d) and pipelined (%d/%d)",
					staged.LaneOccupied, staged.LaneSlots, piped.LaneOccupied, piped.LaneSlots)
			}
			// Pipeline accounting: only the pipelined path runs barrier
			// windows, exactly ceil(NIS/batch) of them.
			if want.PipelinedBatches != 0 || staged.PipelinedBatches != 0 {
				t.Fatalf("non-pipelined paths recorded pipelined batches")
			}
			if wantBatches := int64((tc.opts.NIS + stage2Batch - 1) / stage2Batch); piped.PipelinedBatches != wantBatches {
				t.Fatalf("pipelined batches = %d, want %d", piped.PipelinedBatches, wantBatches)
			}
			if piped.PipelineGenNS <= 0 {
				t.Fatalf("pipelined path recorded no generation time")
			}
		})
	}
}

// TestPipelinedParallelismMatrix pins the pipelined and staged paths to the
// serial scalar reference across worker counts 1, 2 and 8 for every engine
// configuration: one schedule, one bit pattern, at any parallelism, on
// either stage-2 execution strategy. Run under -race in CI, this is the
// suite that licenses the pipeline's concurrency.
func TestPipelinedParallelismMatrix(t *testing.T) {
	cell := sram.NewCell(0.5)
	cfg := rtn.TableIConfig(cell)
	for _, tc := range stagedCases {
		t.Run(tc.name, func(t *testing.T) {
			sampler := stagedSampler(cell, cfg, tc.rtn)
			// Shrink the workloads: the matrix multiplies runs sevenfold and
			// the schedule is identical at any size.
			opts := tc.opts
			opts.NIS = tc.opts.NIS / 4
			opts.Directions = 48
			opts.PFIters = 2
			scalarOpts := opts
			scalarOpts.scalarPath = true
			scalarOpts.Parallelism = 1
			want := NewEngine(cell, nil, scalarOpts).Run(rand.New(rand.NewSource(17)), sampler)
			for _, par := range []int{1, 2, 8} {
				stagedOpts := opts
				stagedOpts.Parallelism = par
				stagedOpts.NoPipeline = true
				got := NewEngine(cell, nil, stagedOpts).Run(rand.New(rand.NewSource(17)), sampler)
				requireResultMatch(t, fmt.Sprintf("staged par=%d", par), got, want)

				pipedOpts := opts
				pipedOpts.Parallelism = par
				got = NewEngine(cell, nil, pipedOpts).Run(rand.New(rand.NewSource(17)), sampler)
				requireResultMatch(t, fmt.Sprintf("pipelined par=%d", par), got, want)
			}
		})
	}
}

// TestLaneUtilizationReported checks the derived utilization and its
// String rendering.
func TestLaneUtilizationReported(t *testing.T) {
	r := Result{LaneSlots: 200, LaneOccupied: 150}
	if u := r.LaneUtilization(); u != 0.75 {
		t.Fatalf("utilization = %v, want 0.75", u)
	}
	if s := r.String(); !strings.Contains(s, "lanes: 75% occupied") {
		t.Fatalf("String() = %q, missing lane utilization", s)
	}
	if u := (Result{}).LaneUtilization(); u != 0 {
		t.Fatalf("empty utilization = %v", u)
	}
}
