package core

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ecripse/internal/rtn"
	"ecripse/internal/sram"
)

// TestStagedMatchesScalar pins the batched evaluation path — staged
// boundary search, warm-up labeling, particle-filter measurement and
// stage-2 importance sampling, all settling their indicator calls through
// simulateBatch — to the per-sample scalar path bit for bit: identical
// estimate, convergence series, cost split and solver-effort counters for
// the same seed.
func TestStagedMatchesScalar(t *testing.T) {
	cell := sram.NewCell(0.5)
	cfg := rtn.TableIConfig(cell)
	cases := []struct {
		name string
		opts Options
		rtn  bool
	}{
		{"rdf", Options{NIS: 4000, Directions: 64, WarmupTrain: 120, PFIters: 3, RecordEvery: 300}, false},
		{"rtn", Options{NIS: 1200, M: 5, Directions: 64, WarmupTrain: 120, PFIters: 3}, true},
		{"adaptive-parallel", Options{NIS: 3000, AdaptiveGrid: true, Parallelism: 4, Directions: 64, WarmupTrain: 120, PFIters: 2}, false},
		{"noclassifier", Options{NIS: 800, NoClassifier: true, Directions: 48, PFIters: 2}, false},
		{"hold-lanes256", Options{Mode: HoldFailure, NIS: 1500, BatchLanes: 256, Directions: 48, WarmupTrain: 120, PFIters: 2}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sampler *rtn.Sampler
			if tc.rtn {
				sampler = rtn.NewSampler(cell, cfg, 0.3)
			}
			scalarOpts := tc.opts
			scalarOpts.scalarPath = true
			want := NewEngine(cell, nil, scalarOpts).Run(rand.New(rand.NewSource(91)), sampler)
			got := NewEngine(cell, nil, tc.opts).Run(rand.New(rand.NewSource(91)), sampler)

			if math.Float64bits(got.Estimate.P) != math.Float64bits(want.Estimate.P) ||
				math.Float64bits(got.Estimate.CI95) != math.Float64bits(want.Estimate.CI95) {
				t.Fatalf("estimate diverged: staged %+v, scalar %+v", got.Estimate, want.Estimate)
			}
			if got.Estimate.Sims != want.Estimate.Sims {
				t.Fatalf("simulation count diverged: staged %d, scalar %d", got.Estimate.Sims, want.Estimate.Sims)
			}
			if !reflect.DeepEqual(got.Series, want.Series) {
				t.Fatalf("convergence series diverged:\nstaged %v\nscalar %v", got.Series, want.Series)
			}
			if got.InitSims != want.InitSims || got.WarmupSims != want.WarmupSims ||
				got.Stage1Sims != want.Stage1Sims || got.Stage2Sims != want.Stage2Sims ||
				got.Classified != want.Classified {
				t.Fatalf("cost split diverged:\nstaged %v\nscalar %v", got, want)
			}
			if got.RootSolves != want.RootSolves || got.SolverIters != want.SolverIters {
				t.Fatalf("solver effort diverged: staged solves=%d iters=%d, scalar solves=%d iters=%d",
					got.RootSolves, got.SolverIters, want.RootSolves, want.SolverIters)
			}
			if got.CoarseSims != want.CoarseSims || got.Escalated != want.Escalated {
				t.Fatalf("adaptive split diverged: staged %v, scalar %v", got, want)
			}
			if !reflect.DeepEqual(got.PFRounds, want.PFRounds) {
				t.Fatalf("stage-1 diagnostics diverged")
			}
			if !reflect.DeepEqual(got.Proposal.Means, want.Proposal.Means) {
				t.Fatalf("proposal means diverged")
			}
			// The lane counters are the one legitimate difference: only the
			// batched path issues kernel slots. Write mode keeps the scalar
			// solver, so it is exempt.
			if want.LaneSlots != 0 {
				t.Fatalf("scalar path issued lane slots: %d", want.LaneSlots)
			}
			if tc.opts.Mode != WriteFailure && got.LaneSlots == 0 {
				t.Fatalf("staged path issued no lane slots")
			}
			if got.LaneOccupied > got.LaneSlots {
				t.Fatalf("lane occupancy %d exceeds slots %d", got.LaneOccupied, got.LaneSlots)
			}
		})
	}
}

// TestLaneUtilizationReported checks the derived utilization and its
// String rendering.
func TestLaneUtilizationReported(t *testing.T) {
	r := Result{LaneSlots: 200, LaneOccupied: 150}
	if u := r.LaneUtilization(); u != 0.75 {
		t.Fatalf("utilization = %v, want 0.75", u)
	}
	if s := r.String(); !strings.Contains(s, "lanes: 75% occupied") {
		t.Fatalf("String() = %q, missing lane utilization", s)
	}
	if u := (Result{}).LaneUtilization(); u != 0 {
		t.Fatalf("empty utilization = %v", u)
	}
}
