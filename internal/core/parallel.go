package core

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"ecripse/internal/linalg"
	"ecripse/internal/svm"
)

// stage2Batch is the barrier size of the stage-2 importance-sampling loop.
// It is a fixed constant — never derived from the worker count — because the
// classifier's adaptation schedule (and with it every downstream number)
// changes with the batch size, and results must be identical at any
// parallelism level.
const stage2Batch = 256

// labelObs is one simulated label deferred for classifier replay.
type labelObs struct {
	u      linalg.Vector
	failed bool
}

// batchLabeler is the engine's deterministic-parallel labeling path. Within
// a batch, worker goroutines label samples against the classifier state
// frozen at the batch start: confident samples are classified for free,
// everything else is simulated and the (point, label) observation is parked
// in the slot of its global sample index. At the barrier, flushRange applies
// the parked observations to the classifier in index order — the exact
// update sequence a serial run of the same schedule would produce, so the
// evolving weights (and every later decision) are scheduling-independent.
type batchLabeler struct {
	e       *Engine
	trained bool // classifier state frozen at the last barrier
	pending [][]labelObs
	scorers sync.Pool     // *svm.Scorer; per-goroutine feature scratch
	perW    []*svm.Scorer // per-worker scorers for worker-indexed callers

	// Flip accounting for the health watchdog (countFlips gates the extra
	// barrier-time Score per replayed observation). Both counters advance
	// only inside flushRange — single-threaded, index-ordered — so they are
	// identical on every execution path and at any worker count. Cumulative;
	// the engine reads deltas at round/barrier boundaries.
	countFlips   bool
	flipReplayed int64 // observations replayed with a trained classifier
	flipDisagree int64 // replays whose simulated label contradicted the prediction
}

func newBatchLabeler(e *Engine) *batchLabeler {
	l := &batchLabeler{e: e, perW: make([]*svm.Scorer, e.Opts.Parallelism)}
	l.scorers.New = func() any { return e.classifier.NewScorer() }
	return l
}

// begin re-frames the labeler for n sample indices and re-freezes the
// classifier state.
func (l *batchLabeler) begin(n int) {
	if cap(l.pending) < n {
		l.pending = make([][]labelObs, n)
	}
	l.pending = l.pending[:n]
	l.trained = !l.e.classifierOff() && l.e.classifier.Trained()
}

// record parks a simulated observation of sample idx for barrier replay.
// Race-free: each index is owned by exactly one worker at a time.
func (l *batchLabeler) record(idx int, u linalg.Vector, failed bool) {
	if l.e.classifierOff() {
		return
	}
	l.pending[idx] = append(l.pending[idx], labelObs{u: u, failed: failed})
}

// flushRange replays the parked observations of samples [lo, hi) into the
// classifier in index order and re-freezes the trained flag. Must be called
// single-threaded, at a barrier.
func (l *batchLabeler) flushRange(lo, hi int) {
	if l.e.classifierOff() {
		return
	}
	for idx := lo; idx < hi; idx++ {
		for _, o := range l.pending[idx] {
			if l.countFlips && l.e.classifier.Trained() {
				// Score against the classifier state the replay has evolved
				// so far — the same deterministic index-ordered sequence on
				// every path. Scoring reads weights only; it cannot perturb
				// the update below.
				l.flipReplayed++
				if (l.e.classifier.Score(o.u) > 0) != o.failed {
					l.flipDisagree++
				}
			}
			l.e.classifier.Update(o.u, o.failed)
		}
		l.pending[idx] = l.pending[idx][:0]
	}
	l.trained = l.e.classifier.Trained()
}

// score evaluates the frozen classifier through a pooled per-goroutine
// scorer (the shared Classifier scratch buffer would race).
func (l *batchLabeler) score(u linalg.Vector) float64 {
	sc := l.scorers.Get().(*svm.Scorer)
	s := sc.Score(u)
	l.scorers.Put(sc)
	return s
}

// scoreW evaluates the frozen classifier through worker w's dedicated
// scorer — the pooled Get/Put pair of score, without the pool. Callers that
// know their worker index (the pipelined Score pass) use this; slot w is
// owned by one goroutine at a time, per the ParFor contract.
func (l *batchLabeler) scoreW(w int, u linalg.Vector) float64 {
	if w >= len(l.perW) {
		return l.score(u) // defensive: more workers than Parallelism
	}
	sc := l.perW[w]
	if sc == nil {
		sc = l.e.classifier.NewScorer()
		l.perW[w] = sc
	}
	return sc.Score(u)
}

// labelStage1 is the stage-1 labeling rule under the batch contract: a
// TrainFrac share of calls (decided by the sample's own substream) is
// simulated and parked for replay; the rest is classified against the
// frozen weights.
func (l *batchLabeler) labelStage1(rng *rand.Rand, idx int, u linalg.Vector) bool {
	e := l.e
	if e.classifierOff() || !l.trained || rng.Float64() < e.Opts.TrainFrac {
		failed := e.simulate(u)
		l.record(idx, u, failed)
		return failed
	}
	atomic.AddInt64(&e.classified, 1)
	return l.score(u) > 0
}

// labelStage2 is the stage-2 rule: confident in-trust-region samples are
// classified for free; uncertain-band samples, out-of-trust-region samples
// and the NoClassifier ablation are simulated (and parked for replay). One
// score evaluation decides both the band test and the prediction.
func (l *batchLabeler) labelStage2(idx int, u linalg.Vector) bool {
	e := l.e
	if !e.classifierOff() && l.trained && (e.trustR <= 0 || u.Norm() <= e.trustR) {
		if s := l.score(u); s <= -e.Opts.Band || s >= e.Opts.Band {
			atomic.AddInt64(&e.classified, 1)
			return s > 0
		}
	}
	failed := e.simulate(u)
	l.record(idx, u, failed)
	return failed
}
