package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"ecripse/internal/obsv"
	"ecripse/internal/sram"
)

// smallOpts keeps telemetry tests fast: tiny boundary search, short stage 1,
// modest stage 2.
func smallOpts() Options {
	return Options{
		Particles:  10,
		PFIters:    4,
		Directions: 48,
		NIS:        2000,
	}
}

// TestTelemetryDoesNotPerturbResults is the invariant the whole layer rests
// on: running with trace + emitter + indicator histogram attached must yield
// the bit-identical estimate, series, diagnostics and cost split of a bare
// run with the same seed.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	cell := sram.NewCell(0.5)

	run := func(withTelemetry bool) (Result, *obsv.Trace, int) {
		opts := smallOpts()
		ctx := context.Background()
		var tr *obsv.Trace
		events := 0
		if withTelemetry {
			tr = obsv.NewTrace()
			ctx = obsv.WithTrace(ctx, tr)
			ctx = obsv.WithEmitter(ctx, func(kind string, data any) { events++ })
			opts.IndicatorHist = obsv.NewHistogram("test_indicator_seconds", "t", obsv.ExpBuckets(1e-6, 10, 6))
		}
		eng := NewEngine(cell, nil, opts)
		res, err := eng.RunCtx(ctx, rand.New(rand.NewSource(7)), nil)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res, tr, events
	}

	bare, _, _ := run(false)
	instr, tr, events := run(true)

	if bare.Estimate != instr.Estimate {
		t.Fatalf("estimate changed under telemetry:\nbare:  %+v\ninstr: %+v", bare.Estimate, instr.Estimate)
	}
	if !reflect.DeepEqual(bare.Series, instr.Series) {
		t.Fatalf("series changed under telemetry")
	}
	if !reflect.DeepEqual(bare.PFRounds, instr.PFRounds) {
		t.Fatalf("PF diagnostics changed under telemetry")
	}
	if bare.Stage1Sims != instr.Stage1Sims || bare.Stage2Sims != instr.Stage2Sims ||
		bare.InitSims != instr.InitSims || bare.WarmupSims != instr.WarmupSims ||
		bare.Classified != instr.Classified {
		t.Fatalf("cost split changed under telemetry:\nbare:  %+v\ninstr: %+v", bare, instr)
	}

	// The instrumented run must actually have observed things.
	if events == 0 {
		t.Fatal("no diagnostic events emitted")
	}
	if tr.Len() == 0 {
		t.Fatal("no spans recorded")
	}
	names := map[string]int{}
	var pfAttrs map[string]any
	for _, v := range tr.Spans() {
		names[v.Name]++
		if v.Name == "pf.round" && pfAttrs == nil {
			pfAttrs = v.Attrs
		}
		if v.DurMS < 0 {
			t.Fatalf("span %s left in flight", v.Name)
		}
	}
	for _, want := range []string{"boundary.init", "blockade.train", "pf.round", "stage2.is"} {
		if names[want] == 0 {
			t.Fatalf("missing span %q (have %v)", want, names)
		}
	}
	if names["pf.round"] != smallOpts().PFIters {
		t.Fatalf("want %d pf.round spans, got %d", smallOpts().PFIters, names["pf.round"])
	}
	for _, key := range []string{"ess", "max_weight_frac", "unique"} {
		if _, ok := pfAttrs[key]; !ok {
			t.Fatalf("pf.round span missing attr %q: %v", key, pfAttrs)
		}
	}
}

// TestPFRoundDiagnostics sanity-checks the recorded convergence numbers.
func TestPFRoundDiagnostics(t *testing.T) {
	cell := sram.NewCell(0.5)
	eng := NewEngine(cell, nil, smallOpts())
	res := eng.Run(rand.New(rand.NewSource(11)), nil)

	if len(res.PFRounds) != smallOpts().PFIters {
		t.Fatalf("want %d rounds, got %d", smallOpts().PFIters, len(res.PFRounds))
	}
	for _, rd := range res.PFRounds {
		if len(rd.Filters) == 0 {
			t.Fatalf("round %d has no filter diagnostics", rd.Round)
		}
		for fi, f := range rd.Filters {
			if f.Particles <= 0 {
				t.Fatalf("round %d filter %d: no particles", rd.Round, fi)
			}
			if f.ESS < 0 || f.ESS > float64(f.Particles)+1e-9 {
				t.Fatalf("round %d filter %d: ESS %v out of [0, %d]", rd.Round, fi, f.ESS, f.Particles)
			}
			if f.MaxWeightFrac < 0 || f.MaxWeightFrac > 1+1e-12 {
				t.Fatalf("round %d filter %d: max weight frac %v", rd.Round, fi, f.MaxWeightFrac)
			}
			if f.Unique < 0 || f.Unique > f.Particles {
				t.Fatalf("round %d filter %d: unique %d out of range", rd.Round, fi, f.Unique)
			}
			// A non-degenerate round resampled something.
			if f.ESS > 0 && f.Unique == 0 {
				t.Fatalf("round %d filter %d: positive ESS but zero unique", rd.Round, fi)
			}
		}
	}
	// Var rides the convergence series now.
	if fin := res.Series.Final(); fin.P > 0 && fin.Var <= 0 {
		t.Fatalf("final series point has no variance: %+v", fin)
	}
}
