package core

import (
	"fmt"

	"ecripse/internal/montecarlo"
	"ecripse/internal/stats"
)

// Result is the outcome of one ECRIPSE run: the failure-probability
// estimate, its convergence trace against the simulation counter, the cost
// breakdown across the stages, and the alternative distribution (useful for
// diagnostics and for seeding further runs).
type Result struct {
	Series   stats.Series
	Estimate stats.Estimate

	InitSims   int64 // boundary search (shared across bias conditions)
	WarmupSims int64 // classifier warm-up labels
	Stage1Sims int64 // particle-filter training labels
	Stage2Sims int64 // stage-2 uncertain-band simulations
	Classified int64 // labels answered by the classifier (no simulation)

	// Solver effort and tiered-fidelity accounting for this run.
	RootSolves  int64 // half-cell root solves spent
	SolverIters int64 // residual evaluations inside the root-search loops
	CoarseSims  int64 // adaptive samples evaluated at the coarse tier (0 in exact mode)
	Escalated   int64 // adaptive samples escalated to the full grid

	// Lane-utilization accounting for the batched indicator (0 on the
	// scalar path): kernel slots issued by the lockstep solver and the
	// slots that carried a live (unconverged) lane. Occupied/Slots is the
	// fraction of batch-kernel work spent on real residuals.
	LaneSlots    int64
	LaneOccupied int64

	// Pipelined-execution accounting for the stage-2 loop. PipelinedBatches
	// is deterministic (the number of barrier windows the pipelined driver
	// completed; 0 on the staged and scalar paths). The NS fields are
	// wall-clock overlap telemetry — generation time, barrier stall waiting
	// on generation, and settlement time — and are observational only: the
	// service layer keeps them out of content-addressed results, exactly
	// like job wall time.
	PipelinedBatches int64
	PipelineGenNS    int64
	PipelineStallNS  int64
	PipelineSettleNS int64

	// PFRounds records the stage-1 convergence diagnostics, one entry per
	// particle-filter round. Deterministic (derived from weights and
	// resampling indices only), so it is cached and persisted with the rest
	// of the result.
	PFRounds []PFRoundDiag

	Proposal *montecarlo.GMM
}

// String summarizes the run in one line.
func (r Result) String() string {
	s := fmt.Sprintf("%v  (init=%d warmup=%d stage1=%d stage2=%d classified=%d solves=%d)",
		r.Estimate, r.InitSims, r.WarmupSims, r.Stage1Sims, r.Stage2Sims, r.Classified, r.RootSolves)
	if r.CoarseSims > 0 {
		s += fmt.Sprintf(" [adaptive: coarse=%d escalated=%d]", r.CoarseSims, r.Escalated)
	}
	if r.LaneSlots > 0 {
		s += fmt.Sprintf(" [lanes: %.0f%% occupied]", 100*r.LaneUtilization())
	}
	if r.PipelinedBatches > 0 {
		s += fmt.Sprintf(" [pipeline: %d batches, %.0f%% overlapped]", r.PipelinedBatches, 100*r.OverlapFraction())
	}
	return s
}

// OverlapFraction is the share of stage-2 generation wall-clock hidden
// behind barrier settlement (0 when the pipelined path did not run).
func (r Result) OverlapFraction() float64 {
	return montecarlo.PipelineStats{
		GenNS: r.PipelineGenNS, StallNS: r.PipelineStallNS,
	}.OverlapFraction()
}

// LaneUtilization is LaneOccupied/LaneSlots, the live fraction of the
// batch kernel's lockstep work (0 when the batch path did not run).
func (r Result) LaneUtilization() float64 {
	if r.LaneSlots == 0 {
		return 0
	}
	return float64(r.LaneOccupied) / float64(r.LaneSlots)
}
