package core

import (
	"math/rand"
	"testing"

	"ecripse/internal/linalg"
	"ecripse/internal/sram"
)

// benchPoints draws n normalized variability points spread from the typical
// region out to ~4 sigma, so a barrier mixes passing, failing and (under
// AdaptiveGrid) escalating samples like a real stage-2 batch does.
func benchPoints(n int) []linalg.Vector {
	rng := rand.New(rand.NewSource(42))
	us := make([]linalg.Vector, n)
	for i := range us {
		u := linalg.NewVector(sram.NumTransistors)
		scale := 1 + 3*rng.Float64()
		for d := range u {
			u[d] = scale * rng.NormFloat64()
		}
		us[i] = u
	}
	return us
}

// BenchmarkSimulateBatch measures one stage-2 settlement barrier: a full
// batch of indicator calls through the lockstep margin solver. Run with
// -benchmem — after the first barrier warms the engine scratch, the steady
// state must be allocation-free (the per-barrier shs/margins/escalation
// buffers and solver tallies are all pooled on the engine).
func BenchmarkSimulateBatch(b *testing.B) {
	cases := []struct {
		name string
		opts Options
	}{
		{"exact", Options{}},
		{"adaptive", Options{AdaptiveGrid: true}},
		{"adaptive-par4", Options{AdaptiveGrid: true, Parallelism: 4}},
		{"hold-lanes256", Options{Mode: HoldFailure, BatchLanes: 256}},
	}
	us := benchPoints(stage2Batch)
	out := make([]bool, len(us))
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			e := NewEngine(sram.NewCell(0.5), nil, tc.opts)
			e.simulateBatch(us, out) // warm the engine scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.simulateBatch(us, out)
			}
		})
	}
}
