package core

import (
	"ecripse/internal/obsv"
	"ecripse/internal/pfilter"
	"ecripse/internal/stats"
)

// FilterDiag is the convergence state of one particle filter after one
// prediction/measurement/resampling round. All fields are pure functions of
// the deterministic weights and resampling indices, so they are identical at
// any Parallelism setting and safe to cache with the result.
type FilterDiag struct {
	// Particles is the filter's cloud size (the per-lobe particle split —
	// every filter tracks one failure lobe).
	Particles int `json:"particles"`
	// ESS is the effective sample size (Σw)²/Σw² of the round's measurement
	// weights. ESS near Particles means a healthy spread; ESS near 1 means
	// one candidate dominates.
	ESS float64 `json:"ess"`
	// MaxWeightFrac is the largest single weight divided by the weight sum —
	// the complementary collapse signal (→1 as the filter degenerates).
	MaxWeightFrac float64 `json:"max_weight_frac"`
	// Unique is the number of distinct candidates surviving resampling
	// (0 on a degenerate round where the previous cloud was kept).
	Unique int `json:"unique"`
	// WeightSum is the round's positive weight mass; zero marks a starved
	// lobe (no candidate saw failure probability, the cloud froze).
	WeightSum float64 `json:"weight_sum"`
}

// PFRoundDiag aggregates one stage-1 round across the ensemble.
type PFRoundDiag struct {
	Round   int          `json:"round"` // 0-based
	Sims    int64        `json:"sims"`  // cumulative simulation count after the round
	Filters []FilterDiag `json:"filters"`
}

// ISBatchDiag is the stage-2 estimator state at one batch barrier: the
// running estimate, its 95% CI half-width, and the variance of the
// importance weights — the diagnostic that flags a proposal mismatch (the
// CI stops shrinking because Var stops falling).
type ISBatchDiag struct {
	Samples int     `json:"samples"` // IS draws folded so far
	Sims    int64   `json:"sims"`    // cumulative simulation count
	P       float64 `json:"p"`       // running estimate
	CIHalf  float64 `json:"ci_half"` // 95% CI half-width
	Var     float64 `json:"var"`     // sample variance of the IS terms
}

// NewFilterDiag derives the diagnostics from one filter's step record.
func NewFilterDiag(rec pfilter.StepRecord) FilterDiag {
	var sum, max float64
	for _, w := range rec.Weights {
		if w > 0 {
			sum += w
			if w > max {
				max = w
			}
		}
	}
	frac := 0.0
	if sum > 0 {
		frac = max / sum
	}
	return FilterDiag{
		Particles:     len(rec.Resampled),
		ESS:           pfilter.ESS(rec.Weights),
		MaxWeightFrac: frac,
		Unique:        rec.Unique,
		WeightSum:     rec.WeightSum,
	}
}

// HealthFilters converts a round's diagnostics into the watchdog's input
// form (obsv cannot import core — the dependency points the other way).
// Exported so CLIs can replay recorded diagnostics through a monitor.
func HealthFilters(fs []FilterDiag) []obsv.FilterHealth {
	out := make([]obsv.FilterHealth, len(fs))
	for i, f := range fs {
		out[i] = obsv.FilterHealth{
			Particles:     f.Particles,
			ESS:           f.ESS,
			MaxWeightFrac: f.MaxWeightFrac,
			Unique:        f.Unique,
		}
	}
	return out
}

// newISBatchDiag converts a stage-2 barrier point into its diagnostic form.
func newISBatchDiag(samples int, pt stats.Point) ISBatchDiag {
	return ISBatchDiag{Samples: samples, Sims: pt.Sims, P: pt.P, CIHalf: pt.CI95, Var: pt.Var}
}

// RoundSummary reduces per-filter diagnostics to the round's worst-case
// collapse signals (min ESS, max max-weight fraction, min unique survivors)
// for span attributes and one-line renderings.
func RoundSummary(filters []FilterDiag) (minESS, maxFrac float64, minUnique int) {
	for i, f := range filters {
		if i == 0 || f.ESS < minESS {
			minESS = f.ESS
		}
		if f.MaxWeightFrac > maxFrac {
			maxFrac = f.MaxWeightFrac
		}
		if i == 0 || f.Unique < minUnique {
			minUnique = f.Unique
		}
	}
	return
}
