package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"ecripse/internal/linalg"
	"ecripse/internal/montecarlo"
	"ecripse/internal/rtn"
	"ecripse/internal/sram"
)

// Reference values computed by large naive Monte Carlo runs (see
// EXPERIMENTS.md): at Vdd = 0.5 V the RDF-only failure probability is
// ≈ 3.86e-3 (193/50k and consistent 400k runs), and with RTN at α = 0.3 it
// is ≈ 1.57e-2 (1879/120k).
const (
	refRDF05 = 3.86e-3
	refRTN05 = 1.57e-2
)

func TestOptionsFillDefaults(t *testing.T) {
	var o Options
	o.fill()
	if o.Particles != 40 || o.Filters != 2 || o.PFIters != 10 {
		t.Fatalf("stage-1 defaults: %+v", o)
	}
	if o.PolyDegree != 4 || o.NIS != 20000 || o.M != 20 || o.Rho != 0.1 {
		t.Fatalf("stage-2 defaults: %+v", o)
	}
}

func TestRDFOnlyMatchesNaiveReference(t *testing.T) {
	cell := sram.NewCell(0.5)
	rng := rand.New(rand.NewSource(42))
	res := RDFOnly(rng, cell, Options{NIS: 120000})
	p := res.Estimate.P
	if p < refRDF05*0.7 || p > refRDF05*1.3 {
		t.Fatalf("RDF-only Pfail = %v, reference %v", p, refRDF05)
	}
	// Blockade effectiveness: far fewer simulations than IS samples.
	if res.Estimate.Sims > int64(res.Estimate.N/10) {
		t.Fatalf("too many simulations: %d for %d samples", res.Estimate.Sims, res.Estimate.N)
	}
}

func TestRTNMatchesNaiveReference(t *testing.T) {
	cell := sram.NewCell(0.5)
	cfg := rtn.TableIConfig(cell)
	rng := rand.New(rand.NewSource(43))
	eng := NewEngine(cell, nil, Options{NIS: 40000, M: 10})
	res := eng.Run(rng, rtn.NewSampler(cell, cfg, 0.3))
	p := res.Estimate.P
	if p < refRTN05*0.7 || p > refRTN05*1.3 {
		t.Fatalf("RTN Pfail = %v, reference %v", p, refRTN05)
	}
}

func TestRTNWorsensFailureProbability(t *testing.T) {
	// The paper's headline: ignoring RTN is optimistic by severalfold.
	cell := sram.NewCell(0.5)
	cfg := rtn.TableIConfig(cell)
	rng := rand.New(rand.NewSource(44))
	eng := NewEngine(cell, nil, Options{NIS: 60000, M: 10})
	rdf := eng.Run(rng, nil)
	rtnRes := eng.Run(rng, rtn.NewSampler(cell, cfg, 0.5))
	if rtnRes.Estimate.P < 1.5*rdf.Estimate.P {
		t.Fatalf("RTN-aware %v not clearly above RDF-only %v", rtnRes.Estimate.P, rdf.Estimate.P)
	}
}

func TestSharedInitializationSavesSims(t *testing.T) {
	cell := sram.NewCell(0.5)
	cfg := rtn.TableIConfig(cell)
	rng := rand.New(rand.NewSource(45))
	eng := NewEngine(cell, nil, Options{NIS: 5000, M: 5})
	first := eng.Run(rng, rtn.NewSampler(cell, cfg, 0.3))
	second := eng.Run(rng, rtn.NewSampler(cell, cfg, 0.5))
	// The second bias point reuses boundary particles and the trained
	// classifier (the Fig. 7(b) observation).
	if second.Estimate.Sims >= first.Estimate.Sims {
		t.Fatalf("no reuse saving: first %d, second %d", first.Estimate.Sims, second.Estimate.Sims)
	}
	if eng.Initial() == nil {
		t.Fatal("initial particles missing after runs")
	}
}

func TestSetInitialSkipsBoundarySearch(t *testing.T) {
	cell := sram.NewCell(0.5)
	rng := rand.New(rand.NewSource(46))
	a := NewEngine(cell, nil, Options{NIS: 2000})
	a.Init(rng)
	b := NewEngine(cell, nil, Options{NIS: 2000})
	b.SetInitial(a.Initial())
	before := b.Counter.Count()
	b.Init(rng)
	// SetInitial short-circuits Init's boundary search entirely.
	if got := b.Counter.Count() - before; got > int64(b.Opts.WarmupTrain) {
		t.Fatalf("boundary search ran despite SetInitial: %d sims", got)
	}
}

func TestDutySweepShape(t *testing.T) {
	// Min near alpha=0.5 and bilateral symmetry (coarse, 3 points).
	cell := sram.NewCell(0.5)
	cfg := rtn.TableIConfig(cell)
	rng := rand.New(rand.NewSource(47))
	pts := DutySweep(rng, cell, cfg, []float64{0, 0.5, 1}, Options{NIS: 40000, M: 10})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	p0, p5, p1 := pts[0].Result.Estimate.P, pts[1].Result.Estimate.P, pts[2].Result.Estimate.P
	if !(p5 < p0 && p5 < p1) {
		t.Fatalf("duty minimum not at 0.5: %v %v %v", p0, p5, p1)
	}
	if r := p0 / p1; r < 0.4 || r > 2.5 {
		t.Fatalf("bilateral symmetry broken: P(0)=%v P(1)=%v", p0, p1)
	}
}

func TestNoClassifierAgreesWithBlockade(t *testing.T) {
	cell := sram.NewCell(0.5)
	rngA := rand.New(rand.NewSource(48))
	withC := RDFOnly(rngA, cell, Options{NIS: 60000})
	rngB := rand.New(rand.NewSource(48))
	without := RDFOnly(rngB, cell, Options{NIS: 20000, NoClassifier: true})
	// Both must agree within generous combined confidence bounds.
	diff := math.Abs(withC.Estimate.P - without.Estimate.P)
	bound := 3 * (withC.Estimate.CI95 + without.Estimate.CI95)
	if diff > bound {
		t.Fatalf("blockade changed the estimate: %v vs %v (bound %v)",
			withC.Estimate.P, without.Estimate.P, bound)
	}
	if without.Estimate.Sims < int64(20000) {
		t.Fatalf("NoClassifier must simulate every IS sample: %d", without.Estimate.Sims)
	}
}

func TestConvergenceSeriesRecorded(t *testing.T) {
	cell := sram.NewCell(0.5)
	rng := rand.New(rand.NewSource(49))
	res := RDFOnly(rng, cell, Options{NIS: 20000, RecordEvery: 50})
	if len(res.Series) < 5 {
		t.Fatalf("series too short: %d", len(res.Series))
	}
	for i := 1; i < len(res.Series); i++ {
		if res.Series[i].Sims < res.Series[i-1].Sims {
			t.Fatal("series sims not monotone")
		}
	}
	if res.Series.Final().P != res.Estimate.P {
		t.Fatal("final series point disagrees with estimate")
	}
}

func TestResultString(t *testing.T) {
	r := Result{InitSims: 1, WarmupSims: 2, Stage1Sims: 3, Stage2Sims: 4}
	s := r.String()
	for _, want := range []string{"init=1", "warmup=2", "stage1=3", "stage2=4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestEngineSigmaMatchesCell(t *testing.T) {
	cell := sram.NewCell(0.7)
	eng := NewEngine(cell, nil, Options{})
	sig := eng.Sigma()
	want := cell.SigmaVth()
	for i := range sig {
		if sig[i] != want[i] {
			t.Fatalf("sigma mismatch at %d", i)
		}
	}
	// Returned slice must be a copy.
	sig[0] = 999
	if eng.Sigma()[0] == 999 {
		t.Fatal("Sigma leaked internal state")
	}
}

func TestSharedCounterAccounting(t *testing.T) {
	cell := sram.NewCell(0.5)
	c := &montecarlo.Counter{}
	rng := rand.New(rand.NewSource(50))
	eng := NewEngine(cell, c, Options{NIS: 2000})
	res := eng.Run(rng, nil)
	if c.Count() != res.Estimate.Sims {
		t.Fatalf("counter %d vs result %d", c.Count(), res.Estimate.Sims)
	}
}

func TestWriteFailureModeMatchesNaive(t *testing.T) {
	// Naive write-failure MC at 0.5 V gives ≈8.7e-3 (523/60k).
	cell := sram.NewCell(0.5)
	rng := rand.New(rand.NewSource(51))
	res := RDFOnly(rng, cell, Options{NIS: 40000, Mode: WriteFailure})
	const ref = 8.7e-3
	if res.Estimate.P < ref*0.7 || res.Estimate.P > ref*1.3 {
		t.Fatalf("write Pfail = %v, reference %v", res.Estimate.P, ref)
	}
}

func TestFailureModeOrdering(t *testing.T) {
	// At this design point reads are the dominant static failure mode at
	// nominal supply: hold failures must be rarer than read failures.
	cell := sram.NewCell(0.5)
	read := RDFOnly(rand.New(rand.NewSource(52)), cell, Options{NIS: 30000})
	hold := RDFOnly(rand.New(rand.NewSource(53)), cell, Options{NIS: 30000, Mode: HoldFailure})
	if hold.Estimate.P >= read.Estimate.P {
		t.Fatalf("hold Pfail %v not rarer than read %v", hold.Estimate.P, read.Estimate.P)
	}
}

func TestFailureModeString(t *testing.T) {
	if ReadFailure.String() != "read" || WriteFailure.String() != "write" || HoldFailure.String() != "hold" {
		t.Fatal("FailureMode.String broken")
	}
}

func TestCovarianceIdentityMatchesDefault(t *testing.T) {
	// A diagonal covariance diag(sigma^2) must reproduce the default flow.
	cell := sram.NewCell(0.5)
	sig := cell.SigmaVth()
	cov := linalg.NewMatrix(sram.NumTransistors, sram.NumTransistors)
	for i := 0; i < sram.NumTransistors; i++ {
		cov.Set(i, i, sig[i]*sig[i])
	}
	a := RDFOnly(rand.New(rand.NewSource(60)), cell, Options{NIS: 40000})
	b := RDFOnly(rand.New(rand.NewSource(60)), cell, Options{NIS: 40000, Covariance: cov})
	diff := math.Abs(a.Estimate.P - b.Estimate.P)
	if diff > 3*(a.Estimate.CI95+b.Estimate.CI95) {
		t.Fatalf("diagonal covariance changed the estimate: %v vs %v", a.Estimate.P, b.Estimate.P)
	}
}

func TestCovarianceCorrelationChangesPfail(t *testing.T) {
	// Strong positive correlation between all devices means common-mode Vth
	// shifts: mismatch (which drives failure) shrinks, so Pfail must drop.
	cell := sram.NewCell(0.5)
	sig := cell.SigmaVth()
	const rho = 0.8
	cov := linalg.NewMatrix(sram.NumTransistors, sram.NumTransistors)
	for i := 0; i < sram.NumTransistors; i++ {
		for j := 0; j < sram.NumTransistors; j++ {
			r := rho
			if i == j {
				r = 1
			}
			cov.Set(i, j, r*sig[i]*sig[j])
		}
	}
	indep := RDFOnly(rand.New(rand.NewSource(61)), cell, Options{NIS: 40000})
	corr := RDFOnly(rand.New(rand.NewSource(61)), cell, Options{NIS: 40000, Covariance: cov})
	if corr.Estimate.P >= indep.Estimate.P {
		t.Fatalf("correlated Pfail %v not below independent %v", corr.Estimate.P, indep.Estimate.P)
	}
}

func TestCovarianceInvalidPanics(t *testing.T) {
	cell := sram.NewCell(0.5)
	bad := linalg.NewMatrix(sram.NumTransistors, sram.NumTransistors) // all zeros: not PD
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine(cell, nil, Options{Covariance: bad})
}

func TestClassifiedAccounting(t *testing.T) {
	cell := sram.NewCell(0.5)
	rng := rand.New(rand.NewSource(70))
	res := RDFOnly(rng, cell, Options{NIS: 20000})
	// The blockade must answer the overwhelming majority of labels.
	if res.Classified < int64(10000) {
		t.Fatalf("classified = %d, expected most of %d samples", res.Classified, 20000)
	}
	if !strings.Contains(res.String(), "classified=") {
		t.Fatal("Result.String missing classified count")
	}
	// NoClassifier: nothing classified.
	res2 := RDFOnly(rand.New(rand.NewSource(71)), cell, Options{NIS: 3000, NoClassifier: true})
	if res2.Classified != 0 {
		t.Fatalf("NoClassifier classified = %d", res2.Classified)
	}
}

func TestRTNWithCovarianceWhitening(t *testing.T) {
	// RTN shifts must map correctly through the whitening transform: with a
	// diagonal covariance the RTN-aware estimate matches the default path.
	cell := sram.NewCell(0.5)
	sig := cell.SigmaVth()
	cov := linalg.NewMatrix(sram.NumTransistors, sram.NumTransistors)
	for i := 0; i < sram.NumTransistors; i++ {
		cov.Set(i, i, sig[i]*sig[i])
	}
	cfg := rtn.TableIConfig(cell)
	a := NewEngine(cell, nil, Options{NIS: 30000, M: 10}).
		Run(rand.New(rand.NewSource(80)), rtn.NewSampler(cell, cfg, 0.3))
	b := NewEngine(cell, nil, Options{NIS: 30000, M: 10, Covariance: cov}).
		Run(rand.New(rand.NewSource(80)), rtn.NewSampler(cell, cfg, 0.3))
	diff := math.Abs(a.Estimate.P - b.Estimate.P)
	if diff > 3*(a.Estimate.CI95+b.Estimate.CI95) {
		t.Fatalf("whitened RTN path diverged: %v vs %v", a.Estimate.P, b.Estimate.P)
	}
}
