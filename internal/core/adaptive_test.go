package core

import (
	"math/rand"
	"testing"

	"ecripse/internal/randx"
	"ecripse/internal/sram"
)

// TestAdaptiveAgreesWithExact probes the tiered-fidelity indicator against
// the exact full-grid indicator on >10^4 shift vectors chosen to span both
// failure lobes of the butterfly. The escalation band is conservative by
// design: a label flip would need the coarse margin to be wrong by more
// than the band, so the adaptive indicator must agree everywhere.
func TestAdaptiveAgreesWithExact(t *testing.T) {
	cell := sram.NewCell(0.5) // low-Vdd cell: failures are reachable
	exact := NewEngine(cell, nil, Options{})
	adaptive := NewEngine(cell, nil, Options{AdaptiveGrid: true})
	sigma := cell.SigmaVth()
	full := &sram.SNMOptions{GridN: 24, BisectIter: 24}

	rng := rand.New(rand.NewSource(7))
	dim := sram.NumTransistors
	const n = 10500
	flips, fails, lobe1, lobe2 := 0, 0, 0, 0
	for i := 0; i < n; i++ {
		// Mix radial probes (concentrated around the failure boundary at
		// r ~ 4-8 sigma) with inflated nominal draws, so passes, deep
		// failures, and near-boundary points all appear.
		var u = randx.SphereDirection(rng, dim).Scale(rng.Float64() * 8)
		if i%3 == 0 {
			u = randx.NormalVector(rng, dim).Scale(1 + 2*rng.Float64())
		}
		got := adaptive.simulate(u)
		want := exact.simulate(u)
		if got != want {
			flips++
			t.Errorf("probe %d: adaptive=%v exact=%v (u=%v)", i, got, want, u)
			if flips > 5 {
				t.Fatal("too many label flips")
			}
		}
		if want {
			fails++
			var sh sram.Shifts
			for j := range sh {
				sh[j] = u[j] * sigma[j]
			}
			res := cell.NoiseMargin(sh, full)
			if res.Lobe1 < res.Lobe2 {
				lobe1++
			} else {
				lobe2++
			}
		}
	}
	if fails < 100 || lobe1 == 0 || lobe2 == 0 {
		t.Fatalf("probe set does not span both failure lobes: fails=%d lobe1=%d lobe2=%d",
			fails, lobe1, lobe2)
	}
	coarse := adaptive.coarseSims
	esc := adaptive.escalated
	if coarse != n {
		t.Fatalf("coarse tier answered %d of %d probes", coarse, n)
	}
	if esc == 0 || esc == coarse {
		t.Fatalf("degenerate escalation count %d of %d (band does nothing or everything)", esc, coarse)
	}
	t.Logf("probes=%d fails=%d (lobe1=%d lobe2=%d) escalated=%d (%.1f%%)",
		n, fails, lobe1, lobe2, esc, 100*float64(esc)/float64(coarse))
}

// TestExactModeUntouchedByAdaptiveFields pins that AdaptiveGrid off (the
// default) never consults the coarse tier.
func TestExactModeUntouchedByAdaptiveFields(t *testing.T) {
	cell := sram.NewCell(0.5)
	eng := NewEngine(cell, nil, Options{})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		eng.simulate(randx.NormalVector(rng, sram.NumTransistors).Scale(5))
	}
	if eng.coarseSims != 0 || eng.escalated != 0 {
		t.Fatalf("exact mode touched the coarse tier: coarse=%d escalated=%d",
			eng.coarseSims, eng.escalated)
	}
	if eng.solver.Solves.Load() == 0 {
		t.Fatal("solver telemetry not wired")
	}
}
