package core

import (
	"context"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"ecripse/internal/linalg"
	"ecripse/internal/montecarlo"
	"ecripse/internal/obsv"
	"ecripse/internal/pfilter"
	"ecripse/internal/randx"
	"ecripse/internal/rtn"
	"ecripse/internal/sram"
	"ecripse/internal/stats"
	"ecripse/internal/svm"
)

// Engine is a reusable ECRIPSE estimator bound to one cell. The boundary
// particles and the trained classifier persist across Run calls, which is
// how the paper amortizes cost over multiple gate-bias conditions (the
// failure indicator depends only on the total threshold shift, not on the
// duty ratio, so both artifacts stay valid when alpha changes).
//
// All randomness is derived deterministically from the caller's rng: the
// sequential rng drives the control flow (round seeds, k-means, training
// shuffles), while every parallel unit of work — boundary direction, warm-up
// sample, particle candidate, importance draw — consumes its own
// counter-based substream keyed by its global index. Results are therefore
// bit-identical for any Opts.Parallelism setting.
type Engine struct {
	Cell    *sram.Cell
	Counter *montecarlo.Counter
	Opts    Options

	sigma      linalg.Vector // per-transistor RDF sigma [V]
	whiten     *linalg.Whitener
	snmOpts    *sram.SNMOptions // full-fidelity grid (the exact indicator)
	coarseOpts *sram.SNMOptions // coarse first-tier grid (AdaptiveGrid only)
	classifier *svm.Classifier
	initial    []linalg.Vector // shared boundary particles (normalized space)
	trustR     float64         // classifier trust radius (normalized units)
	warmed     bool            // initial came from SeedWarm, not boundary search
	startCloud []linalg.Vector // stage-1 starting cloud of the latest run (for Warm)

	// Cost accounting.
	initSims   int64
	warmupSims int64
	classified int64 // labels answered by the classifier (free); atomic
	coarseSims int64 // adaptive samples answered at the coarse tier; atomic
	escalated  int64 // adaptive samples escalated to the full grid; atomic
	solver     sram.SolveTelemetry

	// scratch holds the reusable batch-barrier buffers (see batchScratch);
	// barriers are single-threaded per engine, so one set suffices.
	scratch batchScratch
}

// NewEngine builds an estimator for the cell. The counter may be shared
// with other estimators for joint accounting; pass nil for a private one.
func NewEngine(cell *sram.Cell, counter *montecarlo.Counter, opts Options) *Engine {
	opts.fill()
	if counter == nil {
		counter = &montecarlo.Counter{}
	}
	e := &Engine{
		Cell:    cell,
		Counter: counter,
		Opts:    opts,
		sigma:   cell.SigmaVth(),
		snmOpts: &sram.SNMOptions{GridN: 24, BisectIter: 24},
	}
	e.snmOpts.Telemetry = &e.solver
	e.snmOpts.Lanes = opts.BatchLanes
	e.coarseOpts = &sram.SNMOptions{GridN: 16, BisectIter: 24, Lanes: opts.BatchLanes, Telemetry: &e.solver}
	if opts.Covariance != nil {
		w, err := linalg.NewWhitener(linalg.NewVector(sram.NumTransistors), opts.Covariance)
		if err != nil {
			panic("core: invalid covariance: " + err.Error())
		}
		e.whiten = w
	}
	return e
}

// Sigma returns the per-transistor RDF standard deviations [V].
func (e *Engine) Sigma() linalg.Vector { return e.sigma.Clone() }

// simulate evaluates the true indicator at a *total* normalized shift
// vector u (RDF + RTN combined, in units of the RDF sigma). One call is one
// transistor-level simulation. Safe for concurrent use: the counter is
// atomic and the cell is never mutated during evaluation. When
// Opts.IndicatorHist is set the call is timed into it; the timing never
// feeds back into the result.
func (e *Engine) simulate(u linalg.Vector) bool {
	h := e.Opts.IndicatorHist
	if h == nil {
		return e.indicator(u)
	}
	t0 := time.Now()
	failed := e.indicator(u)
	h.Observe(time.Since(t0).Seconds())
	return failed
}

// shifts converts a normalized variability point into the physical
// per-transistor threshold shifts the cell model takes.
func (e *Engine) shifts(u linalg.Vector) sram.Shifts {
	if e.whiten != nil {
		return sram.FromVector(e.whiten.Unwhiten(u))
	}
	var sh sram.Shifts
	for i := range sh {
		sh[i] = u[i] * e.sigma[i]
	}
	return sh
}

// indicator is the untimed indicator body.
func (e *Engine) indicator(u linalg.Vector) bool {
	e.Counter.Add(1)
	sh := e.shifts(u)
	if e.Opts.AdaptiveGrid {
		// Tiered fidelity: a coarse-grid margin decides most samples; only
		// those inside the conservative band around zero pay for the full
		// grid. Both tiers are pure functions of sh, so the label — and the
		// escalation decision itself — is deterministic and independent of
		// worker scheduling.
		atomic.AddInt64(&e.coarseSims, 1)
		if m := e.margin(sh, e.coarseOpts); math.Abs(m) >= e.Opts.EscalationBand {
			return m < 0
		}
		atomic.AddInt64(&e.escalated, 1)
	}
	return e.margin(sh, e.snmOpts) < 0
}

// margin evaluates the mode's signed margin [V]; every failure criterion is
// margin < 0 (read/hold: Seevinck SNM, write: static write margin).
func (e *Engine) margin(sh sram.Shifts, opts *sram.SNMOptions) float64 {
	switch e.Opts.Mode {
	case WriteFailure:
		return e.Cell.WriteMargin(sh, opts)
	case HoldFailure:
		return e.Cell.HoldSNM(sh, opts)
	default:
		return e.Cell.ReadSNM(sh, opts)
	}
}

// rtnValue computes Pfail_RTN(x) (eq. (17)) for an RDF point x: m RTN draws
// from rng added to x in the normalized space, each labeled by lab.
// sampler == nil (the RDF-only flow) reduces to a single lab(x) evaluation.
func (e *Engine) rtnValue(rng *rand.Rand, sampler *rtn.Sampler, m int, x linalg.Vector, lab func(linalg.Vector) bool) float64 {
	fails := 0
	for k := 0; k < m; k++ {
		u := x.Clone()
		if sampler != nil {
			sh := sampler.Sample(rng)
			if e.whiten != nil {
				// In the whitened space the additive physical shift maps
				// through L⁻¹ (zero-mean Whiten).
				u.AddInPlace(e.whiten.Whiten(sh.Vector()))
			} else {
				for i := range u {
					u[i] += sh[i] / e.sigma[i]
				}
			}
		}
		if lab(u) {
			fails++
		}
	}
	return float64(fails) / float64(m)
}

// Init performs the paper's step (1): boundary search along random
// directions (plus classifier warm-up training around the boundary). It is
// called implicitly by Run when needed; calling it explicitly lets several
// bias conditions share one initialization, as in Fig. 7(b). Both loops run
// under Opts.Parallelism workers; each direction and each warm-up sample
// draws from its own substream, so the outcome depends only on rng's state.
func (e *Engine) Init(rng *rand.Rand) {
	e.InitCtx(context.Background(), rng)
}

// InitCtx is Init with span recording: when ctx carries an obsv.Trace the
// boundary search and classifier warm-up appear as child spans. Randomness
// consumption is identical to Init.
func (e *Engine) InitCtx(ctx context.Context, rng *rand.Rand) {
	if e.initial != nil {
		return
	}
	start := e.Counter.Count()
	dim := sram.NumTransistors
	bseed := rng.Int63()
	_, bspan := obsv.StartSpan(ctx, "boundary.init")
	if e.Opts.scalarPath {
		e.initial = pfilter.BoundaryInitPar(bseed, dim, e.Opts.Directions, e.Opts.RMax, e.Opts.RTol, e.simulate, e.Opts.Parallelism)
	} else {
		e.initial = pfilter.BoundaryInitBatch(bseed, dim, e.Opts.Directions, e.Opts.RMax, e.Opts.RTol, e.simulateBatch, e.Opts.Parallelism)
	}
	if len(e.initial) == 0 {
		// Pathological cell: fall back to a ring at RMax so downstream code
		// stays functional; the estimate will come out ~0.
		for k := 0; k < e.Opts.Filters; k++ {
			e.initial = append(e.initial, randx.SphereDirection(rng, dim).Scale(e.Opts.RMax))
		}
	}
	e.initSims = e.Counter.Count() - start
	bspan.SetAttr(obsv.I("directions", int64(e.Opts.Directions)), obsv.I("found", int64(len(e.initial))), obsv.I("sims", e.initSims))
	bspan.End()

	// Trust the classifier only up to just beyond the farthest boundary
	// point it will be trained around; the tail beyond carries little
	// probability mass, so simulating it is cheap and removes the bias of
	// polynomial extrapolation.
	for _, p := range e.initial {
		if r := p.Norm(); r > e.trustR {
			e.trustR = r
		}
	}
	e.trustR *= 1.1

	if e.Opts.NoClassifier {
		return
	}
	// Classifier warm-up: jittered boundary points (balanced labels), plus
	// scaled-in pass points and scaled-out failure points so the polynomial
	// does not wander far from the data. Simulation of the warm-up set is
	// parallel (slot writes only); training stays sequential on rng.
	_, wspan := obsv.StartSpan(ctx, "blockade.train")
	start = e.Counter.Count()
	e.classifier = svm.NewClassifier(svm.NewPolyFeatures(dim, e.Opts.PolyDegree, 0), e.Opts.Lambda)
	wseed := rng.Int63()
	xs := make([]linalg.Vector, e.Opts.WarmupTrain)
	ys := make([]bool, e.Opts.WarmupTrain)
	workers := montecarlo.ClampWorkers(e.Opts.Parallelism, e.Opts.WarmupTrain)
	streams := randx.NewStreams(wseed, workers)
	montecarlo.ParFor(workers, e.Opts.WarmupTrain, func(w, i int) {
		r := streams.At(w, uint64(i))
		base := e.initial[r.Intn(len(e.initial))]
		var u linalg.Vector
		switch i % 4 {
		case 0, 1: // near boundary
			u = base.Add(randx.NormalVector(r, dim).Scale(e.Opts.Kernel))
		case 2: // interior (expected pass)
			u = base.Scale(0.3 + 0.4*r.Float64())
		default: // exterior (expected fail)
			u = base.Scale(1.2 + 0.5*r.Float64())
		}
		xs[i] = u
		if e.Opts.scalarPath {
			ys[i] = e.simulate(u)
		}
	})
	if !e.Opts.scalarPath {
		// The parallel loop above only staged the points (consuming exactly
		// the scalar path's randomness); label them in one batched sweep.
		e.simulateBatch(xs, ys)
	}
	e.classifier.Train(rng, xs, ys, e.Opts.Epochs)
	e.warmupSims = e.Counter.Count() - start
	wspan.SetAttr(obsv.I("train_points", int64(e.Opts.WarmupTrain)), obsv.I("sims", e.warmupSims))
	wspan.End()
}

// classifierOff reports whether this run labels everything with the true
// simulator: the NoClassifier ablation, or a cloud-only warm seed (SeedWarm
// without a classifier skips InitCtx, so none was ever trained). Stable for
// the whole run — the classifier is only created in InitCtx or SeedWarm,
// never mid-run.
func (e *Engine) classifierOff() bool {
	return e.Opts.NoClassifier || e.classifier == nil
}

// SetInitial installs boundary particles from another engine (shared
// initialization across bias conditions). The classifier is not shared.
func (e *Engine) SetInitial(initial []linalg.Vector) {
	e.initial = make([]linalg.Vector, len(initial))
	for i, p := range initial {
		e.initial[i] = p.Clone()
	}
}

// Initial returns the boundary particles found by Init (nil before Init).
func (e *Engine) Initial() []linalg.Vector { return e.initial }

// Run executes the full two-stage flow. sampler selects the RTN model
// (nil = RDF-only, the Fig. 6 configuration).
func (e *Engine) Run(rng *rand.Rand, sampler *rtn.Sampler) Result {
	res, _ := e.RunCtx(context.Background(), rng, sampler)
	return res
}

// RunCtx is Run with cancellation. The context is checked between
// particle-filter rounds and at stage-2 batch barriers; when it fires, the
// run stops cleanly at the next checkpoint — letting the in-flight batch
// complete — and the partial Result (whatever Series and cost split
// accumulated so far) is returned together with ctx.Err(). Batch membership
// does not depend on scheduling, so even budget-stopped partial results are
// deterministic — the property the service-layer result cache relies on.
func (e *Engine) RunCtx(ctx context.Context, rng *rand.Rand, sampler *rtn.Sampler) (Result, error) {
	start := e.Counter.Count()
	classifiedStart := atomic.LoadInt64(&e.classified)
	coarseStart := atomic.LoadInt64(&e.coarseSims)
	escalatedStart := atomic.LoadInt64(&e.escalated)
	solvesStart, itersStart := e.solver.Totals()
	laneSlotsStart, laneOccStart := e.solver.LaneTotals()
	// Telemetry carriers, resolved once: spans record the phase timeline,
	// the emitter streams convergence diagnostics, the health monitor
	// evaluates the statistical watchdog rules. All are nil/no-op when the
	// context carries none, and all operate strictly at phase/round/batch
	// barriers — never inside the sample loops. Health evaluation reads
	// deterministic diagnostics only and consumes no randomness, so result
	// bits are identical with or without a monitor attached.
	emit := obsv.EmitterFrom(ctx)
	hm := obsv.HealthFrom(ctx)
	e.InitCtx(ctx, rng)

	m := 1
	if sampler != nil {
		m = e.Opts.M
	}
	workers := e.Opts.Parallelism
	lab := newBatchLabeler(e)
	lab.countFlips = hm != nil

	// Stage 1: particle-filter estimation of the alternative distribution.
	// Each round is one batch: candidates are predicted and measured in
	// parallel on per-index substreams against the frozen classifier, then
	// the deferred label observations replay in index order at the barrier
	// before resampling.
	stage1Start := e.Counter.Count()
	weight := func(r *rand.Rand, idx int, x linalg.Vector) float64 {
		v := e.rtnValue(r, sampler, m, x, func(u linalg.Vector) bool {
			return lab.labelStage1(r, idx, u)
		})
		if v <= 0 {
			return 0
		}
		return v * randx.StdNormalPDF(x)
	}
	pfOpts := pfilter.Options{
		Particles: e.Opts.Particles,
		Filters:   e.Opts.Filters,
		KernelStd: e.Opts.Kernel,
	}
	var ens *pfilter.Ensemble
	if e.warmed {
		// A warm-seeded initial set is a neighbor point's starting cloud in
		// Particles() order; rebuilding it positionally preserves the original
		// per-filter grouping and consumes no randomness (there is no k-means
		// to run — the lobes were separated by the exporting engine).
		ens = pfilter.Warm(pfOpts, e.initial)
	} else {
		ens = pfilter.New(rng, pfOpts, e.initial)
	}
	// Snapshot the grouped starting cloud for Warm export. Deliberately the
	// pre-iteration cloud, not the final one: resampling collapses particle
	// diversity, and chaining collapsed clouds across sweep points compounds
	// into an importance proposal that misses failure mass (a systematic
	// underestimate). The starting cloud is the boundary-initialization
	// knowledge the paper shares across bias conditions (Fig. 7(b)) — it
	// rides a warm chain unchanged.
	startParticles := ens.Particles()
	e.startCloud = make([]linalg.Vector, len(startParticles))
	for i, p := range startParticles {
		e.startCloud[i] = p.Clone()
	}
	perRound := ens.NumFilters() * e.Opts.Particles
	var sv1 *stagedEval
	if !e.Opts.scalarPath {
		sv1 = newStagedEval(e, lab, sampler, m, true, perRound)
	}
	var pfRounds []PFRoundDiag
	var flipRep, flipDis int64 // labeler flip counters as of the last boundary
	for it := 0; it < e.Opts.PFIters && ctx.Err() == nil; it++ {
		roundSeed := rng.Int63()
		lab.begin(perRound)
		_, rspan := obsv.StartSpan(ctx, "pf.round", obsv.I("round", int64(it)))
		var recs []pfilter.StepRecord
		if sv1 != nil {
			recs = ens.StepParStaged(roundSeed, sv1, func(scored int) { lab.flushRange(0, scored) }, workers)
		} else {
			recs = ens.StepPar(roundSeed, weight, func(scored int) { lab.flushRange(0, scored) }, workers)
		}
		diag := PFRoundDiag{Round: it, Sims: e.Counter.Count() - start, Filters: make([]FilterDiag, len(recs))}
		for fi, rec := range recs {
			diag.Filters[fi] = NewFilterDiag(rec)
		}
		pfRounds = append(pfRounds, diag)
		if rspan != nil {
			minESS, maxFrac, minUnique := RoundSummary(diag.Filters)
			rspan.SetAttr(
				obsv.F("ess", minESS),
				obsv.F("max_weight_frac", maxFrac),
				obsv.I("unique", int64(minUnique)),
				obsv.I("filters", int64(len(diag.Filters))),
			)
			rspan.End()
		}
		if emit != nil {
			emit("pf_round", diag)
		}
		if hm != nil {
			hm.ObservePFRound(it, HealthFilters(diag.Filters))
			hm.ObserveFlips("pf", it, lab.flipReplayed-flipRep, lab.flipDisagree-flipDis)
			flipRep, flipDis = lab.flipReplayed, lab.flipDisagree
		}
	}
	stage1Sims := e.Counter.Count() - stage1Start

	// Stage 2: importance sampling from the particle GMM (eqs. (18), (19)),
	// defensively mixed with the nominal distribution to bound the weights.
	// Draw k consumes substream (seed2, k); classifier updates replay at
	// stage2Batch barriers.
	stage2Start := e.Counter.Count()
	q := ens.PoolGMM(nil, 600)
	proposal := &montecarlo.DefensiveMixture{Q: q, Rho: e.Opts.Rho, Dim: sram.NumTransistors}
	seed2 := rng.Int63()
	lab.begin(e.Opts.NIS)
	value := func(r *rand.Rand, k int, x linalg.Vector) float64 {
		return e.rtnValue(r, sampler, m, x, func(u linalg.Vector) bool {
			return lab.labelStage2(k, u)
		})
	}
	_, s2span := obsv.StartSpan(ctx, "stage2.is", obsv.I("n_is", int64(e.Opts.NIS)))
	var onBatch func(samples int, pt stats.Point)
	if emit != nil || hm != nil {
		barrier := 0
		onBatch = func(samples int, pt stats.Point) {
			// Barrier code: single-threaded in every driver, always after the
			// batch's Flush, so the flip deltas line up across paths.
			if emit != nil {
				emit("is_batch", newISBatchDiag(samples, pt))
			}
			if hm != nil {
				hm.ObserveISBatch(samples, pt.P, pt.CI95)
				hm.ObserveFlips("is", barrier, lab.flipReplayed-flipRep, lab.flipDisagree-flipDis)
				flipRep, flipDis = lab.flipReplayed, lab.flipDisagree
			}
			barrier++
		}
	}
	po := montecarlo.ParOptions{
		Seed:    seed2,
		Workers: workers,
		Batch:   stage2Batch,
		Flush:   lab.flushRange,
		OnBatch: onBatch,
	}
	var series stats.Series
	var pipe montecarlo.PipelineStats
	switch {
	case e.Opts.scalarPath:
		series = montecarlo.ImportanceSamplePar(ctx, proposal, value, e.Opts.NIS, po, e.Counter, e.Opts.RecordEvery)
	case e.Opts.NoPipeline:
		sv2 := newStagedEval(e, lab, sampler, m, false, stage2Batch)
		series = montecarlo.ImportanceSampleParStaged(ctx, proposal, sv2, e.Opts.NIS, po, e.Counter, e.Opts.RecordEvery)
	default:
		// Pipelined staged execution: the ring spans two batches so batch
		// k+1 can generate (draws + proposal log-densities, both
		// classifier-independent) while batch k settles; scoring replays
		// after the flush barrier, so the bits match the staged path.
		pv := newStagedEval(e, lab, sampler, m, false, 2*stage2Batch)
		po.PipeStats = &pipe
		series = montecarlo.ImportanceSampleParPipelined(ctx, proposal, pv, e.Opts.NIS, po, e.Counter, e.Opts.RecordEvery)
	}
	stage2Sims := e.Counter.Count() - stage2Start
	if hm != nil && pipe.Batches > 0 {
		// Wall-clock rule: flows to the observer/metrics only, never into
		// the deterministic report (see obsv.HealthMonitor.ObservePipeline).
		hm.ObservePipeline(pipe.Batches, pipe.GenNS, pipe.StallNS)
	}
	if s2span != nil {
		fin := series.Final()
		s2span.SetAttr(obsv.F("p", fin.P), obsv.F("ci_half", fin.CI95), obsv.I("sims", stage2Sims))
		s2span.End()
	}

	fin := series.Final()
	solves, iters := e.solver.Totals()
	laneSlots, laneOcc := e.solver.LaneTotals()
	return Result{
		Series: series,
		Estimate: stats.Estimate{
			P: fin.P, CI95: fin.CI95, RelErr: fin.RelErr,
			N: e.Opts.NIS, Sims: e.Counter.Count() - start,
		},
		InitSims:         e.initSims,
		WarmupSims:       e.warmupSims,
		Stage1Sims:       stage1Sims,
		Stage2Sims:       stage2Sims,
		Classified:       atomic.LoadInt64(&e.classified) - classifiedStart,
		RootSolves:       solves - solvesStart,
		SolverIters:      iters - itersStart,
		CoarseSims:       atomic.LoadInt64(&e.coarseSims) - coarseStart,
		Escalated:        atomic.LoadInt64(&e.escalated) - escalatedStart,
		LaneSlots:        laneSlots - laneSlotsStart,
		LaneOccupied:     laneOcc - laneOccStart,
		PipelinedBatches: pipe.Batches,
		PipelineGenNS:    pipe.GenNS,
		PipelineStallNS:  pipe.StallNS,
		PipelineSettleNS: pipe.SettleNS,
		PFRounds:         pfRounds,
		Proposal:         q,
	}, ctx.Err()
}
