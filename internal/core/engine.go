package core

import (
	"context"
	"math/rand"

	"ecripse/internal/linalg"
	"ecripse/internal/montecarlo"
	"ecripse/internal/pfilter"
	"ecripse/internal/randx"
	"ecripse/internal/rtn"
	"ecripse/internal/sram"
	"ecripse/internal/stats"
	"ecripse/internal/svm"
)

// Engine is a reusable ECRIPSE estimator bound to one cell. The boundary
// particles and the trained classifier persist across Run calls, which is
// how the paper amortizes cost over multiple gate-bias conditions (the
// failure indicator depends only on the total threshold shift, not on the
// duty ratio, so both artifacts stay valid when alpha changes).
type Engine struct {
	Cell    *sram.Cell
	Counter *montecarlo.Counter
	Opts    Options

	sigma      linalg.Vector // per-transistor RDF sigma [V]
	whiten     *linalg.Whitener
	snmOpts    *sram.SNMOptions
	classifier *svm.Classifier
	initial    []linalg.Vector // shared boundary particles (normalized space)
	trustR     float64         // classifier trust radius (normalized units)

	// Cost accounting.
	initSims   int64
	warmupSims int64
	classified int64 // labels answered by the classifier (free)
}

// NewEngine builds an estimator for the cell. The counter may be shared
// with other estimators for joint accounting; pass nil for a private one.
func NewEngine(cell *sram.Cell, counter *montecarlo.Counter, opts Options) *Engine {
	opts.fill()
	if counter == nil {
		counter = &montecarlo.Counter{}
	}
	e := &Engine{
		Cell:    cell,
		Counter: counter,
		Opts:    opts,
		sigma:   cell.SigmaVth(),
		snmOpts: &sram.SNMOptions{GridN: 24, BisectIter: 24},
	}
	if opts.Covariance != nil {
		w, err := linalg.NewWhitener(linalg.NewVector(sram.NumTransistors), opts.Covariance)
		if err != nil {
			panic("core: invalid covariance: " + err.Error())
		}
		e.whiten = w
	}
	return e
}

// Sigma returns the per-transistor RDF standard deviations [V].
func (e *Engine) Sigma() linalg.Vector { return e.sigma.Clone() }

// simulate evaluates the true indicator at a *total* normalized shift
// vector u (RDF + RTN combined, in units of the RDF sigma). One call is one
// transistor-level simulation.
func (e *Engine) simulate(u linalg.Vector) bool {
	e.Counter.Add(1)
	var sh sram.Shifts
	if e.whiten != nil {
		sh = sram.FromVector(e.whiten.Unwhiten(u))
	} else {
		for i := range sh {
			sh[i] = u[i] * e.sigma[i]
		}
	}
	switch e.Opts.Mode {
	case WriteFailure:
		return e.Cell.WriteFails(sh, e.snmOpts)
	case HoldFailure:
		return e.Cell.HoldSNM(sh, e.snmOpts) < 0
	default:
		return e.Cell.Fails(sh, e.snmOpts)
	}
}

// label returns the indicator value at u, preferring the classifier.
// Stage-1 semantics: a TrainFrac share of calls is simulated and fed back
// as training data; everything else is classified for free.
func (e *Engine) label(rng *rand.Rand, u linalg.Vector) bool {
	if e.Opts.NoClassifier || !e.classifier.Trained() || rng.Float64() < e.Opts.TrainFrac {
		failed := e.simulate(u)
		if !e.Opts.NoClassifier {
			e.classifier.Update(u, failed)
		}
		return failed
	}
	e.classified++
	return e.classifier.Predict(u)
}

// labelStage2 is the stage-2 path: samples inside the uncertainty band —
// or outside the classifier's trust radius, where a polynomial extrapolates
// unreliably — are simulated (and used to incrementally retrain); confident
// samples are classified.
func (e *Engine) labelStage2(u linalg.Vector) bool {
	if e.Opts.NoClassifier || !e.classifier.Trained() ||
		(e.trustR > 0 && u.Norm() > e.trustR) ||
		e.classifier.Uncertain(u, e.Opts.Band) {
		failed := e.simulate(u)
		if !e.Opts.NoClassifier {
			e.classifier.Update(u, failed)
		}
		return failed
	}
	e.classified++
	return e.classifier.Predict(u)
}

// Init performs the paper's step (1): boundary search along random
// directions (plus classifier warm-up training around the boundary). It is
// called implicitly by Run when needed; calling it explicitly lets several
// bias conditions share one initialization, as in Fig. 7(b).
func (e *Engine) Init(rng *rand.Rand) {
	if e.initial != nil {
		return
	}
	start := e.Counter.Count()
	dim := sram.NumTransistors
	e.initial = pfilter.BoundaryInit(rng, dim, e.Opts.Directions, e.Opts.RMax, e.Opts.RTol, e.simulate)
	if len(e.initial) == 0 {
		// Pathological cell: fall back to a ring at RMax so downstream code
		// stays functional; the estimate will come out ~0.
		for k := 0; k < e.Opts.Filters; k++ {
			e.initial = append(e.initial, randx.SphereDirection(rng, dim).Scale(e.Opts.RMax))
		}
	}
	e.initSims = e.Counter.Count() - start

	// Trust the classifier only up to just beyond the farthest boundary
	// point it will be trained around; the tail beyond carries little
	// probability mass, so simulating it is cheap and removes the bias of
	// polynomial extrapolation.
	for _, p := range e.initial {
		if r := p.Norm(); r > e.trustR {
			e.trustR = r
		}
	}
	e.trustR *= 1.1

	if e.Opts.NoClassifier {
		return
	}
	// Classifier warm-up: jittered boundary points (balanced labels), plus
	// scaled-in pass points and scaled-out failure points so the polynomial
	// does not wander far from the data.
	start = e.Counter.Count()
	e.classifier = svm.NewClassifier(svm.NewPolyFeatures(dim, e.Opts.PolyDegree, 0), e.Opts.Lambda)
	var xs []linalg.Vector
	var ys []bool
	for i := 0; i < e.Opts.WarmupTrain; i++ {
		base := e.initial[rng.Intn(len(e.initial))]
		var u linalg.Vector
		switch i % 4 {
		case 0, 1: // near boundary
			u = base.Add(randx.NormalVector(rng, dim).Scale(e.Opts.Kernel))
		case 2: // interior (expected pass)
			u = base.Scale(0.3 + 0.4*rng.Float64())
		default: // exterior (expected fail)
			u = base.Scale(1.2 + 0.5*rng.Float64())
		}
		xs = append(xs, u)
		ys = append(ys, e.simulate(u))
	}
	e.classifier.Train(rng, xs, ys, e.Opts.Epochs)
	e.warmupSims = e.Counter.Count() - start
}

// SetInitial installs boundary particles from another engine (shared
// initialization across bias conditions). The classifier is not shared.
func (e *Engine) SetInitial(initial []linalg.Vector) {
	e.initial = make([]linalg.Vector, len(initial))
	for i, p := range initial {
		e.initial[i] = p.Clone()
	}
}

// Initial returns the boundary particles found by Init (nil before Init).
func (e *Engine) Initial() []linalg.Vector { return e.initial }

// Run executes the full two-stage flow. sampler selects the RTN model
// (nil = RDF-only, the Fig. 6 configuration).
func (e *Engine) Run(rng *rand.Rand, sampler *rtn.Sampler) Result {
	res, _ := e.RunCtx(context.Background(), rng, sampler)
	return res
}

// RunCtx is Run with cancellation. The context is checked between
// particle-filter rounds and before every stage-2 importance-sampling draw;
// when it fires, the run stops cleanly at the next checkpoint and the
// partial Result (whatever Series and cost split accumulated so far) is
// returned together with ctx.Err(). The checkpoints consume no randomness,
// so with an uncancelled context RunCtx is bit-identical to Run — the
// property the service-layer result cache relies on.
func (e *Engine) RunCtx(ctx context.Context, rng *rand.Rand, sampler *rtn.Sampler) (Result, error) {
	start := e.Counter.Count()
	classifiedStart := e.classified
	e.Init(rng)

	m := 1
	if sampler != nil {
		m = e.Opts.M
	}

	// rtnValue computes Pfail_RTN(x) (eq. (17)) for an RDF point x using
	// labeler lab for each of the m total-shift points.
	rtnValue := func(rng *rand.Rand, x linalg.Vector, lab func(linalg.Vector) bool) float64 {
		fails := 0
		for k := 0; k < m; k++ {
			u := x.Clone()
			if sampler != nil {
				sh := sampler.Sample(rng)
				if e.whiten != nil {
					// In the whitened space the additive physical shift
					// maps through L⁻¹ (zero-mean Whiten).
					u.AddInPlace(e.whiten.Whiten(sh.Vector()))
				} else {
					for i := range u {
						u[i] += sh[i] / e.sigma[i]
					}
				}
			}
			if lab(u) {
				fails++
			}
		}
		return float64(fails) / float64(m)
	}

	// Stage 1: particle-filter estimation of the alternative distribution.
	stage1Start := e.Counter.Count()
	weight := func(x linalg.Vector) float64 {
		v := rtnValue(rng, x, func(u linalg.Vector) bool { return e.label(rng, u) })
		if v <= 0 {
			return 0
		}
		return v * randx.StdNormalPDF(x)
	}
	ens := pfilter.New(rng, pfilter.Options{
		Particles: e.Opts.Particles,
		Filters:   e.Opts.Filters,
		KernelStd: e.Opts.Kernel,
	}, e.initial)
	for it := 0; it < e.Opts.PFIters && ctx.Err() == nil; it++ {
		ens.Step(rng, weight)
	}
	stage1Sims := e.Counter.Count() - stage1Start

	// Stage 2: importance sampling from the particle GMM (eqs. (18), (19)),
	// defensively mixed with the nominal distribution to bound the weights.
	stage2Start := e.Counter.Count()
	q := ens.PoolGMM(nil, 600)
	proposal := &montecarlo.DefensiveMixture{Q: q, Rho: e.Opts.Rho, Dim: sram.NumTransistors}
	value := func(x linalg.Vector) float64 {
		return rtnValue(rng, x, e.labelStage2)
	}
	series := montecarlo.ImportanceSampleCtx(ctx, rng, proposal, value, e.Opts.NIS, e.Counter, e.Opts.RecordEvery)
	stage2Sims := e.Counter.Count() - stage2Start

	fin := series.Final()
	return Result{
		Series: series,
		Estimate: stats.Estimate{
			P: fin.P, CI95: fin.CI95, RelErr: fin.RelErr,
			N: e.Opts.NIS, Sims: e.Counter.Count() - start,
		},
		InitSims:   e.initSims,
		WarmupSims: e.warmupSims,
		Stage1Sims: stage1Sims,
		Stage2Sims: stage2Sims,
		Classified: e.classified - classifiedStart,
		Proposal:   q,
	}, ctx.Err()
}
