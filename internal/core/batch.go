package core

import (
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"ecripse/internal/linalg"
	"ecripse/internal/montecarlo"
	"ecripse/internal/randx"
	"ecripse/internal/rtn"
	"ecripse/internal/sram"
)

// simulateBatch evaluates the true indicator at every point of us in bulk,
// writing out[i] for us[i]. One call bills len(us) simulations, and every
// label is bit-identical to a simulate call on the same point — the batch
// exists purely for throughput: the margin evaluations march through the
// lockstep SRAM solver instead of one root-solve latency chain per sample.
// Called at batch barriers (single-threaded per engine); the margin work
// inside fans out across Opts.Parallelism workers in lane-width chunks.
func (e *Engine) simulateBatch(us []linalg.Vector, out []bool) {
	n := len(us)
	if n == 0 {
		return
	}
	h := e.Opts.IndicatorHist
	var t0 time.Time
	if h != nil {
		t0 = time.Now()
	}
	e.Counter.Add(int64(n))
	shs := make([]sram.Shifts, n)
	for i, u := range us {
		shs[i] = e.shifts(u)
	}
	margins := make([]float64, n)
	if e.Opts.AdaptiveGrid {
		// Tiered fidelity, batched: the coarse grid decides the whole batch
		// first, then the samples inside the conservative band escalate to
		// the full grid as one (smaller) batch. Tier decisions are the same
		// pure function of the shift vector as in the scalar indicator.
		atomic.AddInt64(&e.coarseSims, int64(n))
		e.marginBatch(shs, margins, e.coarseOpts)
		var esc []int
		for i, m := range margins {
			if math.Abs(m) >= e.Opts.EscalationBand {
				out[i] = m < 0
			} else {
				esc = append(esc, i)
			}
		}
		if len(esc) > 0 {
			atomic.AddInt64(&e.escalated, int64(len(esc)))
			escSh := make([]sram.Shifts, len(esc))
			for j, i := range esc {
				escSh[j] = shs[i]
			}
			escM := make([]float64, len(esc))
			e.marginBatch(escSh, escM, e.snmOpts)
			for j, i := range esc {
				out[i] = escM[j] < 0
			}
		}
	} else {
		e.marginBatch(shs, margins, e.snmOpts)
		for i, m := range margins {
			out[i] = m < 0
		}
	}
	if h != nil {
		// One observation per simulation, each billed the batch mean, so the
		// histogram's count keeps meaning "simulations" on both paths.
		h.ObserveN(time.Since(t0).Seconds()/float64(n), int64(n))
	}
}

// marginBatch evaluates the mode's signed margin [V] for every shift
// vector, chunked to the lockstep lane width; chunks spread across the
// engine's workers. Each margin is bit-identical to the scalar margin().
func (e *Engine) marginBatch(shs []sram.Shifts, out []float64, opts *sram.SNMOptions) {
	if e.Opts.Mode == WriteFailure {
		// No batched write-margin solver (yet): the write indicator keeps
		// the scalar solve, parallel across samples.
		montecarlo.ParFor(montecarlo.ClampWorkers(e.Opts.Parallelism, len(shs)), len(shs), func(w, i int) {
			out[i] = e.Cell.WriteMargin(shs[i], opts)
		})
		return
	}
	o := *opts
	if e.Opts.Mode == HoldFailure {
		o.Hold = true
	}
	lanes := o.Lanes
	if lanes <= 0 {
		lanes = sram.DefaultBatchLanes
	}
	chunks := (len(shs) + lanes - 1) / lanes
	montecarlo.ParFor(montecarlo.ClampWorkers(e.Opts.Parallelism, chunks), chunks, func(w, ci int) {
		lo := ci * lanes
		hi := lo + lanes
		if hi > len(shs) {
			hi = len(shs)
		}
		res := make([]sram.SNMResult, hi-lo)
		e.Cell.NoiseMarginBatch(shs[lo:hi], res, &o)
		for i, r := range res {
			out[lo+i] = r.SNM()
		}
	})
}

// stagedEval adapts the engine's labeling rules to the staged batch
// contract of montecarlo.ImportanceSampleParStaged and
// pfilter.StepParStaged. Prepare replays exactly the randomness and the
// classify-or-simulate decisions of the scalar labeler — decisions depend
// only on the point and on classifier state frozen at the barrier, never
// on pending simulation results, which is what makes the split exact —
// labeling classifier-decided draws immediately and parking the rest.
// Resolve settles every parked draw of the window through one
// simulateBatch sweep and records the observations for the classifier
// replay at the caller's flush barrier, preserving per-index draw order.
type stagedEval struct {
	e       *Engine
	lab     *batchLabeler
	sampler *rtn.Sampler
	m       int
	stage1  bool // labelStage1's rule; otherwise labelStage2's

	slots []stagedSlot // barrier window ring, indexed k mod len
	pts   []linalg.Vector
	outs  []bool
}

// stagedSlot is one sample's in-window state.
type stagedSlot struct {
	fails    int             // failures among classifier-decided draws, then all draws
	deferred []linalg.Vector // draws parked for the batched indicator
}

// newStagedEval sizes the ring for the widest barrier window the caller
// will resolve (the stage-2 batch size, or a whole stage-1 round).
func newStagedEval(e *Engine, lab *batchLabeler, sampler *rtn.Sampler, m int, stage1 bool, window int) *stagedEval {
	return &stagedEval{e: e, lab: lab, sampler: sampler, m: m, stage1: stage1, slots: make([]stagedSlot, window)}
}

// Prepare implements montecarlo.StagedValue. It consumes rng exactly as
// rtnValue under labelStage1/labelStage2 would: one RTN draw per inner
// sample, plus (stage 1, trained classifier) one uniform per draw for the
// train-fraction decision.
func (s *stagedEval) Prepare(rng *rand.Rand, k int, x linalg.Vector) {
	sl := &s.slots[k%len(s.slots)]
	sl.fails = 0
	sl.deferred = sl.deferred[:0]
	e := s.e
	for d := 0; d < s.m; d++ {
		u := x.Clone()
		if s.sampler != nil {
			sh := s.sampler.Sample(rng)
			if e.whiten != nil {
				u.AddInPlace(e.whiten.Whiten(sh.Vector()))
			} else {
				for i := range u {
					u[i] += sh[i] / e.sigma[i]
				}
			}
		}
		if s.stage1 {
			if e.classifierOff() || !s.lab.trained || rng.Float64() < e.Opts.TrainFrac {
				sl.deferred = append(sl.deferred, u)
			} else {
				atomic.AddInt64(&e.classified, 1)
				if s.lab.score(u) > 0 {
					sl.fails++
				}
			}
			continue
		}
		if !e.classifierOff() && s.lab.trained && (e.trustR <= 0 || u.Norm() <= e.trustR) {
			if sc := s.lab.score(u); sc <= -e.Opts.Band || sc >= e.Opts.Band {
				atomic.AddInt64(&e.classified, 1)
				if sc > 0 {
					sl.fails++
				}
				continue
			}
		}
		sl.deferred = append(sl.deferred, u)
	}
}

// Resolve implements montecarlo.StagedValue: one batched indicator sweep
// over every draw parked in [lo, hi), with the labels banked per slot and
// the observations recorded for the flush-barrier classifier replay.
func (s *stagedEval) Resolve(lo, hi int) {
	s.pts = s.pts[:0]
	for k := lo; k < hi; k++ {
		s.pts = append(s.pts, s.slots[k%len(s.slots)].deferred...)
	}
	if len(s.pts) == 0 {
		return
	}
	if cap(s.outs) < len(s.pts) {
		s.outs = make([]bool, len(s.pts))
	}
	s.outs = s.outs[:len(s.pts)]
	s.e.simulateBatch(s.pts, s.outs)
	i := 0
	for k := lo; k < hi; k++ {
		sl := &s.slots[k%len(s.slots)]
		for _, u := range sl.deferred {
			failed := s.outs[i]
			i++
			if failed {
				sl.fails++
			}
			s.lab.record(k, u, failed)
		}
	}
}

// Value implements montecarlo.StagedValue: sample k's conditional failure
// value — and, on the stage-1 rule, the particle weight v·P(x) of
// eq. (16). Safe for concurrent calls on distinct k (slot reads only).
func (s *stagedEval) Value(k int, x linalg.Vector) float64 {
	sl := &s.slots[k%len(s.slots)]
	v := float64(sl.fails) / float64(s.m)
	if !s.stage1 {
		return v
	}
	if v <= 0 {
		return 0
	}
	return v * randx.StdNormalPDF(x)
}
