package core

import (
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"ecripse/internal/linalg"
	"ecripse/internal/montecarlo"
	"ecripse/internal/randx"
	"ecripse/internal/rtn"
	"ecripse/internal/sram"
)

// batchScratch is the engine's reusable per-barrier buffer set. simulateBatch
// and marginBatch run single-threaded per engine (only their interior margin
// work fans out, into disjoint sub-slices), so one scratch instance per
// engine makes the steady-state barrier allocation-free.
type batchScratch struct {
	shs     []sram.Shifts
	margins []float64
	esc     []int
	escSh   []sram.Shifts
	escM    []float64
	res     []sram.SNMResult
	tallies []solverTally
}

// solverTally is a per-worker solver-telemetry accumulator, padded so that
// neighbouring workers' counters never share a cache line. The lockstep
// margin chunks bill their root-solve/iteration/lane counters here and the
// barrier merges the tallies once, instead of every worker hammering the
// engine's shared telemetry atomics mid-sweep.
type solverTally struct {
	t sram.SolveTelemetry
	_ [32]byte
}

// shiftsInto fills shs[i] for every us[i] (see shifts).
func (e *Engine) shiftsInto(us []linalg.Vector, shs []sram.Shifts) {
	for i, u := range us {
		shs[i] = e.shifts(u)
	}
}

// growShifts returns a length-n shift buffer backed by buf when it fits.
func growShifts(buf []sram.Shifts, n int) []sram.Shifts {
	if cap(buf) < n {
		return make([]sram.Shifts, n)
	}
	return buf[:n]
}

// growFloats returns a length-n float buffer backed by buf when it fits.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// simulateBatch evaluates the true indicator at every point of us in bulk,
// writing out[i] for us[i]. One call bills len(us) simulations, and every
// label is bit-identical to a simulate call on the same point — the batch
// exists purely for throughput: the margin evaluations march through the
// lockstep SRAM solver instead of one root-solve latency chain per sample.
// Called at batch barriers (single-threaded per engine); the margin work
// inside fans out across Opts.Parallelism workers in lane-width chunks.
// All working buffers come from the engine scratch, so a steady-state
// barrier allocates nothing.
func (e *Engine) simulateBatch(us []linalg.Vector, out []bool) {
	n := len(us)
	if n == 0 {
		return
	}
	h := e.Opts.IndicatorHist
	var t0 time.Time
	if h != nil {
		t0 = time.Now()
	}
	e.Counter.Add(int64(n))
	sc := &e.scratch
	sc.shs = growShifts(sc.shs, n)
	shs := sc.shs
	e.shiftsInto(us, shs)
	sc.margins = growFloats(sc.margins, n)
	margins := sc.margins
	if e.Opts.AdaptiveGrid {
		// Tiered fidelity, batched: the coarse grid decides the whole batch
		// first, then the samples inside the conservative band escalate to
		// the full grid as one (smaller) batch. Tier decisions are the same
		// pure function of the shift vector as in the scalar indicator.
		// The counters are single adds at the barrier — the per-worker
		// tallies live inside marginBatch.
		atomic.AddInt64(&e.coarseSims, int64(n))
		e.marginBatch(shs, margins, e.coarseOpts)
		esc := sc.esc[:0]
		for i, m := range margins {
			if math.Abs(m) >= e.Opts.EscalationBand {
				out[i] = m < 0
			} else {
				esc = append(esc, i)
			}
		}
		sc.esc = esc
		if len(esc) > 0 {
			atomic.AddInt64(&e.escalated, int64(len(esc)))
			sc.escSh = growShifts(sc.escSh, len(esc))
			escSh := sc.escSh
			for j, i := range esc {
				escSh[j] = shs[i]
			}
			sc.escM = growFloats(sc.escM, len(esc))
			escM := sc.escM
			e.marginBatch(escSh, escM, e.snmOpts)
			for j, i := range esc {
				out[i] = escM[j] < 0
			}
		}
	} else {
		e.marginBatch(shs, margins, e.snmOpts)
		for i, m := range margins {
			out[i] = m < 0
		}
	}
	if h != nil {
		// One observation per simulation, each billed the batch mean, so the
		// histogram's count keeps meaning "simulations" on both paths.
		h.ObserveN(time.Since(t0).Seconds()/float64(n), int64(n))
	}
}

// marginBatch evaluates the mode's signed margin [V] for every shift
// vector, chunked to the lockstep lane width; chunks spread across the
// engine's workers. Each margin is bit-identical to the scalar margin().
// Solver telemetry accumulates in padded per-worker tallies and merges into
// the options' telemetry once after the fan-out, so concurrent chunks never
// contend on the engine's shared counters.
func (e *Engine) marginBatch(shs []sram.Shifts, out []float64, opts *sram.SNMOptions) {
	if e.Opts.Mode == WriteFailure {
		// No batched write-margin solver (yet): the write indicator keeps
		// the scalar solve, parallel across samples.
		montecarlo.ParFor(montecarlo.ClampWorkers(e.Opts.Parallelism, len(shs)), len(shs), func(w, i int) {
			out[i] = e.Cell.WriteMargin(shs[i], opts)
		})
		return
	}
	o := *opts
	if e.Opts.Mode == HoldFailure {
		o.Hold = true
	}
	lanes := o.Lanes
	if lanes <= 0 {
		lanes = sram.DefaultBatchLanes
	}
	// Chunking is a pure function of (len, lanes) — never of the worker
	// count — so the lane-slot accounting (part of cached results) stays
	// parallelism-independent.
	chunks := (len(shs) + lanes - 1) / lanes
	workers := montecarlo.ClampWorkers(e.Opts.Parallelism, chunks)
	sc := &e.scratch
	if cap(sc.res) < len(shs) {
		sc.res = make([]sram.SNMResult, len(shs))
	}
	res := sc.res[:len(shs)]
	if len(sc.tallies) < workers {
		sc.tallies = make([]solverTally, workers)
	}
	tallies := sc.tallies
	montecarlo.ParFor(workers, chunks, func(w, ci int) {
		lo := ci * lanes
		hi := lo + lanes
		if hi > len(shs) {
			hi = len(shs)
		}
		co := o
		co.Telemetry = &tallies[w].t
		e.Cell.NoiseMarginBatch(shs[lo:hi], res[lo:hi], &co)
		for i := lo; i < hi; i++ {
			out[i] = res[i].SNM()
		}
	})
	for w := 0; w < workers; w++ {
		opts.Telemetry.Merge(&tallies[w].t)
		tallies[w].t.Reset()
	}
}

// stagedEval adapts the engine's labeling rules to the staged batch
// contract of montecarlo.ImportanceSampleParStaged and
// pfilter.StepParStaged, and — for the stage-2 rule — to the pipelined
// contract of montecarlo.ImportanceSampleParPipelined. Prepare replays
// exactly the randomness and the classify-or-simulate decisions of the
// scalar labeler — decisions depend only on the point and on classifier
// state frozen at the barrier, never on pending simulation results, which
// is what makes the split exact — labeling classifier-decided draws
// immediately and parking the rest. Generate/Score are Prepare cut at the
// classifier boundary: Generate stages the raw draws (randomness only, no
// classifier reads, safe to overlap with a settling barrier) and Score
// applies the same frozen-classifier decisions afterwards. Resolve settles
// every parked draw of the window through one simulateBatch sweep and
// records the observations for the classifier replay at the caller's flush
// barrier, preserving per-index draw order.
type stagedEval struct {
	e       *Engine
	lab     *batchLabeler
	sampler *rtn.Sampler
	m       int
	stage1  bool // labelStage1's rule; otherwise labelStage2's

	slots []stagedSlot // barrier window ring, indexed k mod len
	pts   []linalg.Vector
	outs  []bool
}

// stagedSlot is one sample's in-window state.
type stagedSlot struct {
	fails      int             // failures among classifier-decided draws, then all draws
	classified int             // draws answered by the classifier (folded at Resolve)
	draws      []linalg.Vector // staged RTN draws awaiting Score (pipelined path)
	deferred   []linalg.Vector // draws parked for the batched indicator
}

// newStagedEval sizes the ring for the widest barrier window the caller
// will resolve: the stage-2 batch size, a whole stage-1 round — or, on the
// pipelined path, twice the batch size, because batch k+1 generates into
// the ring while batch k is still being read.
func newStagedEval(e *Engine, lab *batchLabeler, sampler *rtn.Sampler, m int, stage1 bool, window int) *stagedEval {
	return &stagedEval{e: e, lab: lab, sampler: sampler, m: m, stage1: stage1, slots: make([]stagedSlot, window)}
}

// draw computes inner draw d of a sample: the RDF point x plus one RTN
// shift from rng, in the normalized space.
func (s *stagedEval) draw(rng *rand.Rand, x linalg.Vector) linalg.Vector {
	u := x.Clone()
	if s.sampler != nil {
		sh := s.sampler.Sample(rng)
		if s.e.whiten != nil {
			u.AddInPlace(s.e.whiten.Whiten(sh.Vector()))
		} else {
			for i := range u {
				u[i] += sh[i] / s.e.sigma[i]
			}
		}
	}
	return u
}

// Prepare implements montecarlo.StagedValue. It consumes rng exactly as
// rtnValue under labelStage1/labelStage2 would: one RTN draw per inner
// sample, plus (stage 1, trained classifier) one uniform per draw for the
// train-fraction decision.
func (s *stagedEval) Prepare(rng *rand.Rand, k int, x linalg.Vector) {
	sl := &s.slots[k%len(s.slots)]
	sl.fails = 0
	sl.classified = 0
	sl.deferred = sl.deferred[:0]
	e := s.e
	for d := 0; d < s.m; d++ {
		u := s.draw(rng, x)
		if s.stage1 {
			if e.classifierOff() || !s.lab.trained || rng.Float64() < e.Opts.TrainFrac {
				sl.deferred = append(sl.deferred, u)
			} else {
				sl.classified++
				if s.lab.score(u) > 0 {
					sl.fails++
				}
			}
			continue
		}
		if !e.classifierOff() && s.lab.trained && (e.trustR <= 0 || u.Norm() <= e.trustR) {
			if sc := s.lab.score(u); sc <= -e.Opts.Band || sc >= e.Opts.Band {
				sl.classified++
				if sc > 0 {
					sl.fails++
				}
				continue
			}
		}
		sl.deferred = append(sl.deferred, u)
	}
}

// Generate implements montecarlo.PipelinedValue: the classifier-free half
// of Prepare. It consumes rng exactly as Prepare would — the stage-2 rule
// draws no uniforms, so the whole consumption is the m RTN draws — and
// stages the candidate points in the slot for Score. It reads no classifier
// or labeler state, which is what lets it overlap the previous batch's
// settlement. Stage 1 has no such split (its train-fraction uniform is
// interleaved with classifier state), so the stage-1 rule is staged-only.
func (s *stagedEval) Generate(rng *rand.Rand, k int, x linalg.Vector) {
	if s.stage1 {
		panic("core: stage-1 rule cannot generate ahead of the barrier")
	}
	sl := &s.slots[k%len(s.slots)]
	sl.fails = 0
	sl.classified = 0
	sl.deferred = sl.deferred[:0]
	sl.draws = sl.draws[:0]
	for d := 0; d < s.m; d++ {
		sl.draws = append(sl.draws, s.draw(rng, x))
	}
}

// Score implements montecarlo.PipelinedValue: the frozen-classifier half of
// Prepare, run after the previous batch's flush barrier. Draw order is
// preserved, so the deferred list — and with it the simulateBatch ordering
// and the classifier replay — matches Prepare bit for bit. w indexes the
// per-worker scorer scratch.
func (s *stagedEval) Score(w, k int) {
	sl := &s.slots[k%len(s.slots)]
	e := s.e
	for _, u := range sl.draws {
		if !e.classifierOff() && s.lab.trained && (e.trustR <= 0 || u.Norm() <= e.trustR) {
			if sc := s.lab.scoreW(w, u); sc <= -e.Opts.Band || sc >= e.Opts.Band {
				sl.classified++
				if sc > 0 {
					sl.fails++
				}
				continue
			}
		}
		sl.deferred = append(sl.deferred, u)
	}
}

// Resolve implements montecarlo.StagedValue: one batched indicator sweep
// over every draw parked in [lo, hi), with the labels banked per slot and
// the observations recorded for the flush-barrier classifier replay. The
// slots' classified tallies fold into the engine counter here — one atomic
// add per barrier instead of one per classified draw.
func (s *stagedEval) Resolve(lo, hi int) {
	s.pts = s.pts[:0]
	classified := 0
	for k := lo; k < hi; k++ {
		sl := &s.slots[k%len(s.slots)]
		classified += sl.classified
		sl.classified = 0
		s.pts = append(s.pts, sl.deferred...)
	}
	if classified > 0 {
		atomic.AddInt64(&s.e.classified, int64(classified))
	}
	if len(s.pts) == 0 {
		return
	}
	if cap(s.outs) < len(s.pts) {
		s.outs = make([]bool, len(s.pts))
	}
	s.outs = s.outs[:len(s.pts)]
	s.e.simulateBatch(s.pts, s.outs)
	i := 0
	for k := lo; k < hi; k++ {
		sl := &s.slots[k%len(s.slots)]
		for _, u := range sl.deferred {
			failed := s.outs[i]
			i++
			if failed {
				sl.fails++
			}
			s.lab.record(k, u, failed)
		}
	}
}

// Value implements montecarlo.StagedValue: sample k's conditional failure
// value — and, on the stage-1 rule, the particle weight v·P(x) of
// eq. (16). Safe for concurrent calls on distinct k (slot reads only).
func (s *stagedEval) Value(k int, x linalg.Vector) float64 {
	sl := &s.slots[k%len(s.slots)]
	v := float64(sl.fails) / float64(s.m)
	if !s.stage1 {
		return v
	}
	if v <= 0 {
		return 0
	}
	return v * randx.StdNormalPDF(x)
}
