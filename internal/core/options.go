// Package core implements ECRIPSE itself: the two-stage, classifier-
// accelerated, particle-filter importance-sampling estimator of the paper's
// Section III, with the RTN model integrated per eqs. (11)–(13), shared
// boundary initialization across gate-bias conditions, and the duty-ratio
// sweep that regenerates Fig. 8.
package core

import (
	"ecripse/internal/linalg"
	"ecripse/internal/obsv"
)

// FailureMode selects which cell specification the indicator checks.
type FailureMode int

const (
	// ReadFailure is the paper's criterion: negative read noise margin.
	ReadFailure FailureMode = iota
	// WriteFailure is the extension criterion: negative static write margin
	// (the old state survives the write bias).
	WriteFailure
	// HoldFailure checks the retention butterfly (word line off).
	HoldFailure
)

// String implements fmt.Stringer.
func (m FailureMode) String() string {
	switch m {
	case WriteFailure:
		return "write"
	case HoldFailure:
		return "hold"
	default:
		return "read"
	}
}

// Options are the tuning knobs of the estimator. Zero values select the
// defaults given in the comments; they correspond to the paper's settings
// where the paper states them (ten particle-filter rounds, degree-4
// polynomial features, two filters for the two failure lobes).
type Options struct {
	// Mode selects the failure criterion (default ReadFailure, the paper's).
	Mode FailureMode

	// Covariance optionally replaces the independent Pelgrom sigmas with a
	// full 6x6 ΔVth covariance matrix [V²]. The engine whitens it (paper
	// §II-A: "any set of random variables can be uncorrelated using
	// whitening") so the estimator still works in a standard-normal space.
	Covariance *linalg.Matrix

	// Stage 1: alternative-distribution estimation.
	Particles int // particles per filter (default 40)
	Filters   int // particle filters in the ensemble (default 2)
	// PFIters is the number of prediction/measurement/resampling rounds
	// (default 10, as in the paper). A negative value skips stage 1
	// entirely — the single-stage ablation, where the alternative
	// distribution is built from the boundary particles alone.
	PFIters    int
	Kernel     float64 // prediction-kernel sigma in normalized units (default 0.3)
	Directions int     // boundary-search directions (default 256)
	RMax       float64 // boundary-search radius in sigmas (default 8)
	RTol       float64 // boundary bisection tolerance (default 0.05)

	// Classifier blockade.
	PolyDegree   int     // polynomial feature degree (default 4, as in the paper)
	Lambda       float64 // SVM regularization (default 1e-4)
	Band         float64 // stage-2 uncertainty band on the SVM score (default 0.15)
	WarmupTrain  int     // simulated labels for initial training (default 400)
	TrainFrac    float64 // stage-1 fraction of samples simulated for labels (default 0.05)
	Epochs       int     // batch-training epochs over the warm-up set (default 25)
	NoClassifier bool    // ablation: simulate everything (no blockade)

	// Stage 2: importance sampling.
	NIS         int     // importance samples (default 20000)
	M           int     // RTN draws per RDF sample; ignored without RTN (default 20)
	Rho         float64 // defensive-mixture weight of the nominal P (default 0.1)
	RecordEvery int     // convergence-series resolution in simulations

	// AdaptiveGrid enables the tiered-fidelity indicator: each simulated
	// sample first evaluates its margin on a coarse VTC grid (16 points per
	// curve instead of 24) and escalates to the full grid only when the
	// coarse margin falls inside the conservative EscalationBand around
	// zero. The tier decision is a pure function of the shift vector, so
	// determinism across Parallelism settings is unaffected. Default off:
	// exact mode evaluates every sample on the full grid and is bit-
	// identical to earlier releases.
	AdaptiveGrid bool
	// EscalationBand is the |margin| threshold [V] below which an adaptive
	// sample escalates to the full grid (default 0.025 — several times the
	// observed coarse-vs-full margin discrepancy, so label flips require a
	// coarse error larger than the band).
	EscalationBand float64

	// IndicatorHist, when non-nil, receives the wall-clock seconds of every
	// true-indicator evaluation (one transistor-level simulation). Purely
	// observational: timings go only to the histogram, never into results,
	// so determinism is unaffected. Nil (the default) costs one pointer
	// check per call.
	IndicatorHist *obsv.Histogram

	// BatchLanes is the lockstep lane width of the batched indicator: the
	// engine gathers the simulations deferred at each batch barrier and
	// marches them through the SRAM solver in chunks of this many shift
	// vectors (0 selects sram.DefaultBatchLanes). Pure grouping — labels,
	// estimates and series are bit-identical at any width; the knob only
	// trades kernel occupancy against per-lane cache footprint.
	BatchLanes int

	// NoPipeline disables the double-buffered stage-2 pipeline and falls
	// back to the plain staged barrier loop of the previous release: the
	// barrier settles completely before the next batch's draws generate.
	// Results are bit-identical either way (the pipeline only reorders
	// classifier-independent work), so the knob exists for A/B wall-clock
	// comparison — make bench-scaling records both modes — and as an
	// escape hatch on single-core hosts where the overlap cannot pay for
	// its extra goroutine. Default off: pipelined execution.
	NoPipeline bool

	// scalarPath forces the per-sample evaluation path that predates the
	// batched indicator: every simulate call runs its own root solves
	// inside the worker that drew the sample. Both paths produce
	// bit-identical results — this is the cross-check hook the staged-vs-
	// scalar equivalence suite uses, kept unexported because there is no
	// user-facing reason to give up the batch throughput.
	scalarPath bool

	// Parallelism is the worker-goroutine count for the engine's hot loops
	// (boundary search, classifier warm-up, particle-filter measurement,
	// stage-2 importance sampling). Results are bit-identical for any value:
	// every sample draws from a counter-based substream keyed by its global
	// index, and stateful classifier updates are replayed in index order at
	// fixed-size batch barriers. Default 1 (serial execution of the same
	// deterministic schedule); negative values also mean 1.
	Parallelism int
}

func (o *Options) fill() {
	if o.Particles == 0 {
		o.Particles = 40
	}
	if o.Filters == 0 {
		o.Filters = 2
	}
	if o.PFIters == 0 {
		o.PFIters = 10
	}
	if o.Kernel == 0 {
		o.Kernel = 0.3
	}
	if o.Directions == 0 {
		o.Directions = 256
	}
	if o.RMax == 0 {
		o.RMax = 8
	}
	if o.RTol == 0 {
		o.RTol = 0.05
	}
	if o.PolyDegree == 0 {
		o.PolyDegree = 4
	}
	if o.Lambda == 0 {
		o.Lambda = 1e-4
	}
	if o.Band == 0 {
		o.Band = 0.15
	}
	if o.WarmupTrain == 0 {
		o.WarmupTrain = 400
	}
	if o.TrainFrac == 0 {
		o.TrainFrac = 0.05
	}
	if o.Epochs == 0 {
		o.Epochs = 25
	}
	if o.NIS == 0 {
		o.NIS = 20000
	}
	if o.M == 0 {
		o.M = 20
	}
	if o.Rho == 0 {
		o.Rho = 0.1
	}
	if o.EscalationBand == 0 {
		o.EscalationBand = 0.025
	}
	if o.Parallelism < 1 {
		o.Parallelism = 1
	}
}
