package core

import (
	"encoding/json"
	"math/rand"
	"testing"

	"ecripse/internal/sram"
)

// TestWarmStateRoundTrip: exporting a run's warm state, shipping it through
// JSON (as the service cache does), and seeding a fresh engine must skip both
// init phases (zero init/warm-up simulations), produce a sane estimate, and
// be bit-deterministic — including across the JSON round trip.
func TestWarmStateRoundTrip(t *testing.T) {
	cell := sram.NewCell(0.5)
	opts := Options{NIS: 1500, Directions: 128, WarmupTrain: 200}

	cold := NewEngine(cell, nil, opts)
	r1 := cold.Run(rand.New(rand.NewSource(3)), nil)
	if r1.InitSims == 0 || r1.WarmupSims == 0 {
		t.Fatalf("cold run should pay init (%d) and warm-up (%d) sims", r1.InitSims, r1.WarmupSims)
	}
	ws, err := cold.Warm()
	if err != nil {
		t.Fatal(err)
	}
	if len(ws.Cloud) == 0 || len(ws.Classifier) == 0 || ws.TrustR <= 0 {
		t.Fatalf("incomplete warm state: %d cloud points, %d classifier bytes, trustR %v",
			len(ws.Cloud), len(ws.Classifier), ws.TrustR)
	}

	runWarm := func(w *WarmState) Result {
		eng := NewEngine(cell, nil, opts)
		if err := eng.SeedWarm(w); err != nil {
			t.Fatal(err)
		}
		if !eng.Warmed() {
			t.Fatal("engine not marked warmed")
		}
		return eng.Run(rand.New(rand.NewSource(3)), nil)
	}

	warm := runWarm(ws)
	if warm.InitSims != 0 || warm.WarmupSims != 0 {
		t.Fatalf("warm run paid init %d / warm-up %d sims, want 0/0", warm.InitSims, warm.WarmupSims)
	}
	if warm.Estimate.P <= 0 {
		t.Fatalf("warm estimate collapsed: %v", warm.Estimate)
	}
	if warm.Estimate.Sims >= r1.Estimate.Sims {
		t.Fatalf("warm run total %d sims >= cold %d — no saving", warm.Estimate.Sims, r1.Estimate.Sims)
	}

	// JSON round trip must not perturb a single bit of the outcome.
	raw, err := json.Marshal(ws)
	if err != nil {
		t.Fatal(err)
	}
	var ws2 WarmState
	if err := json.Unmarshal(raw, &ws2); err != nil {
		t.Fatal(err)
	}
	warm2 := runWarm(&ws2)
	if warm2.Estimate != warm.Estimate || warm2.Stage1Sims != warm.Stage1Sims || warm2.Stage2Sims != warm.Stage2Sims {
		t.Fatalf("JSON round trip changed the warm result:\n  %+v\n  %+v", warm.Estimate, warm2.Estimate)
	}

	// Seeding an already-initialized engine must refuse.
	if err := cold.SeedWarm(ws); err == nil {
		t.Fatal("SeedWarm on an initialized engine did not error")
	}
}
