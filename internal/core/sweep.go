package core

import (
	"math/rand"

	"ecripse/internal/rtn"
	"ecripse/internal/sram"
)

// SweepPoint is one duty-ratio sample of the Fig. 8 experiment.
type SweepPoint struct {
	Alpha  float64
	Result Result
}

// DutySweep reproduces the workload of the paper's Fig. 8: the RTN-aware
// failure probability at each duty ratio, with the boundary initialization
// (and the trained classifier) shared across all bias conditions — the
// optimization the paper highlights with Fig. 7(b).
func DutySweep(rng *rand.Rand, cell *sram.Cell, cfg rtn.Config, alphas []float64, opts Options) []SweepPoint {
	eng := NewEngine(cell, nil, opts)
	eng.Init(rng)
	out := make([]SweepPoint, 0, len(alphas))
	for _, a := range alphas {
		sampler := rtn.NewSampler(cell, cfg, a)
		res := eng.Run(rng, sampler)
		out = append(out, SweepPoint{Alpha: a, Result: res})
	}
	return out
}

// RDFOnly estimates the failure probability without RTN (the paper's
// reference value 1.33e-4) using a fresh engine.
func RDFOnly(rng *rand.Rand, cell *sram.Cell, opts Options) Result {
	eng := NewEngine(cell, nil, opts)
	return eng.Run(rng, nil)
}
