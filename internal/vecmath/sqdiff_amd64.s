#include "textflag.h"

// func sqdAVX2(q, m *float64, x, invs float64, n int)
// q[k] += ((x - m[k]) * invs)^2 for k in [0, n), four lanes at a time.
// n must be a positive multiple of 4. Plain packed sub/mul/add only — the
// scalar reference has no FMA contraction, so neither does the kernel and
// every lane is bit-identical to the scalar loop at any n.
TEXT ·sqdAVX2(SB), NOSPLIT, $0-40
	MOVQ q+0(FP), DI
	MOVQ m+8(FP), SI
	VBROADCASTSD x+16(FP), Y2
	VBROADCASTSD invs+24(FP), Y3
	MOVQ n+32(FP), CX

loop8:
	CMPQ CX, $8
	JL tail4
	VSUBPD 0(SI), Y2, Y0  // x - m
	VSUBPD 32(SI), Y2, Y1
	VMULPD Y3, Y0, Y0     // z = (x - m) * invs
	VMULPD Y3, Y1, Y1
	VMULPD Y0, Y0, Y0     // z * z
	VMULPD Y1, Y1, Y1
	VADDPD 0(DI), Y0, Y0  // q += z*z
	VADDPD 32(DI), Y1, Y1
	VMOVUPD Y0, 0(DI)
	VMOVUPD Y1, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $8, CX
	JMP loop8

tail4:
	CMPQ CX, $4
	JL done
	VSUBPD 0(SI), Y2, Y0
	VMULPD Y3, Y0, Y0
	VMULPD Y0, Y0, Y0
	VADDPD 0(DI), Y0, Y0
	VMOVUPD Y0, 0(DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX
	JMP tail4

done:
	VZEROUPPER
	RET
