package vecmath

// Implemented in cpu_amd64.s.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// Implemented in cpu_amd64.s.
func xgetbv0() (eax, edx uint32)

// spAVX2 is the 4-wide softplus kernel in softplus_amd64.s. n must be a
// positive multiple of 4; lanes outside the certified envelope produce
// garbage that Softplus's rescue pass overwrites.
//
//go:noescape
func spAVX2(dst, src *float64, n int)

// expAVX2 is the bare 4-wide exp kernel in softplus_amd64.s (the same
// EXPBODY stage softplus uses, stored directly). n must be a positive
// multiple of 4; lanes outside the certified envelope produce garbage that
// Exp's rescue pass overwrites.
//
//go:noescape
func expAVX2(dst, src *float64, n int)

// sqdAVX2 is the 4-wide squared-difference accumulator in sqdiff_amd64.s:
// q[k] += ((x-m[k])*invs)^2. n must be a positive multiple of 4.
//
//go:noescape
func sqdAVX2(q, m *float64, x, invs float64, n int)

// cpuSupportsAVX2 reports whether both the CPU and the OS support the
// AVX2+FMA kernel: the AVX2 and FMA instruction sets plus OS-managed YMM
// state (OSXSAVE with the XMM and YMM bits enabled in XCR0).
func cpuSupportsAVX2() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	_, _, ecx1, _ := cpuidex(1, 0)
	if ecx1&(fma|osxsave|avx) != fma|osxsave|avx {
		return false
	}
	if xlo, _ := xgetbv0(); xlo&6 != 6 {
		return false
	}
	const avx2 = 1 << 5
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&avx2 != 0
}
