//go:build amd64 && amd64.v3

package vecmath

// GOAMD64=v3 guarantees AVX2+FMA (the runtime refuses to start otherwise),
// so the kernel is enabled statically and the startup probe is skipped.
var useAVX2 = true

// Keep the probe referenced so the v3 build exercises the same code paths
// the default build ships.
var _ = cpuSupportsAVX2
