//go:build amd64 && !amd64.v3

package vecmath

// Default GOAMD64 levels probe the CPU once at startup; binaries built
// this way still get the vector kernel on any AVX2+FMA machine.
var useAVX2 = cpuSupportsAVX2()
