#include "textflag.h"

// 4-wide softplus(x) = log1p(exp(x)) over AVX2+FMA.
//
// Bit-exactness contract: inside the envelope (-708, 709) — see vecmath.go —
// every lane gets exactly the bits of math.Log1p(math.Exp(x)) with the ±35
// clamps of vecmath.Scalar. The exp stage below replicates math.archExp's
// FMA path (GOROOT/src/math/exp_amd64.s) instruction for instruction in
// packed form; the log1p stage replicates math.log1p (GOROOT/src/math/
// log1p.go, an FDLIBM translation) with plain packed mul/add/div only —
// no FMA contraction — because the scalar code has none. Both branches of
// every data-dependent scalar decision are computed on all lanes and
// resolved with VBLENDVPD masks, in an order that mirrors the scalar
// control flow (later blends override earlier ones exactly where the
// scalar branch would have been taken first).
//
// Lanes outside the envelope — where archExp would take its overflow,
// denormal or non-finite exits — produce garbage without faulting (all FP
// exceptions are masked) and are overwritten by the rescue pass in
// Softplus.

DATA spdata<>+0(SB)/8, $1.4426950408889634073599246810018920
DATA spdata<>+8(SB)/8, $1.4426950408889634073599246810018920
DATA spdata<>+16(SB)/8, $1.4426950408889634073599246810018920
DATA spdata<>+24(SB)/8, $1.4426950408889634073599246810018920
DATA spdata<>+32(SB)/8, $0.69314718055966295651160180568695068359375
DATA spdata<>+40(SB)/8, $0.69314718055966295651160180568695068359375
DATA spdata<>+48(SB)/8, $0.69314718055966295651160180568695068359375
DATA spdata<>+56(SB)/8, $0.69314718055966295651160180568695068359375
DATA spdata<>+64(SB)/8, $0.28235290563031577122588448175013436025525412068e-12
DATA spdata<>+72(SB)/8, $0.28235290563031577122588448175013436025525412068e-12
DATA spdata<>+80(SB)/8, $0.28235290563031577122588448175013436025525412068e-12
DATA spdata<>+88(SB)/8, $0.28235290563031577122588448175013436025525412068e-12
DATA spdata<>+96(SB)/8, $0.0625
DATA spdata<>+104(SB)/8, $0.0625
DATA spdata<>+112(SB)/8, $0.0625
DATA spdata<>+120(SB)/8, $0.0625
DATA spdata<>+128(SB)/8, $2.4801587301587301587e-5
DATA spdata<>+136(SB)/8, $2.4801587301587301587e-5
DATA spdata<>+144(SB)/8, $2.4801587301587301587e-5
DATA spdata<>+152(SB)/8, $2.4801587301587301587e-5
DATA spdata<>+160(SB)/8, $1.9841269841269841270e-4
DATA spdata<>+168(SB)/8, $1.9841269841269841270e-4
DATA spdata<>+176(SB)/8, $1.9841269841269841270e-4
DATA spdata<>+184(SB)/8, $1.9841269841269841270e-4
DATA spdata<>+192(SB)/8, $1.3888888888888888889e-3
DATA spdata<>+200(SB)/8, $1.3888888888888888889e-3
DATA spdata<>+208(SB)/8, $1.3888888888888888889e-3
DATA spdata<>+216(SB)/8, $1.3888888888888888889e-3
DATA spdata<>+224(SB)/8, $8.3333333333333333333e-3
DATA spdata<>+232(SB)/8, $8.3333333333333333333e-3
DATA spdata<>+240(SB)/8, $8.3333333333333333333e-3
DATA spdata<>+248(SB)/8, $8.3333333333333333333e-3
DATA spdata<>+256(SB)/8, $4.1666666666666666667e-2
DATA spdata<>+264(SB)/8, $4.1666666666666666667e-2
DATA spdata<>+272(SB)/8, $4.1666666666666666667e-2
DATA spdata<>+280(SB)/8, $4.1666666666666666667e-2
DATA spdata<>+288(SB)/8, $1.6666666666666666667e-1
DATA spdata<>+296(SB)/8, $1.6666666666666666667e-1
DATA spdata<>+304(SB)/8, $1.6666666666666666667e-1
DATA spdata<>+312(SB)/8, $1.6666666666666666667e-1
DATA spdata<>+320(SB)/8, $0.5
DATA spdata<>+328(SB)/8, $0.5
DATA spdata<>+336(SB)/8, $0.5
DATA spdata<>+344(SB)/8, $0.5
DATA spdata<>+352(SB)/8, $1.0
DATA spdata<>+360(SB)/8, $1.0
DATA spdata<>+368(SB)/8, $1.0
DATA spdata<>+376(SB)/8, $1.0
DATA spdata<>+384(SB)/8, $2.0
DATA spdata<>+392(SB)/8, $2.0
DATA spdata<>+400(SB)/8, $2.0
DATA spdata<>+408(SB)/8, $2.0
DATA spdata<>+416(SB)/8, $0x00000000000003FF
DATA spdata<>+424(SB)/8, $0x00000000000003FF
DATA spdata<>+432(SB)/8, $0x00000000000003FF
DATA spdata<>+440(SB)/8, $0x00000000000003FF
DATA spdata<>+448(SB)/8, $4.142135623730950488017e-01
DATA spdata<>+456(SB)/8, $4.142135623730950488017e-01
DATA spdata<>+464(SB)/8, $4.142135623730950488017e-01
DATA spdata<>+472(SB)/8, $4.142135623730950488017e-01
DATA spdata<>+480(SB)/8, $0x3E20000000000000
DATA spdata<>+488(SB)/8, $0x3E20000000000000
DATA spdata<>+496(SB)/8, $0x3E20000000000000
DATA spdata<>+504(SB)/8, $0x3E20000000000000
DATA spdata<>+512(SB)/8, $6.93147180369123816490e-01
DATA spdata<>+520(SB)/8, $6.93147180369123816490e-01
DATA spdata<>+528(SB)/8, $6.93147180369123816490e-01
DATA spdata<>+536(SB)/8, $6.93147180369123816490e-01
DATA spdata<>+544(SB)/8, $1.90821492927058770002e-10
DATA spdata<>+552(SB)/8, $1.90821492927058770002e-10
DATA spdata<>+560(SB)/8, $1.90821492927058770002e-10
DATA spdata<>+568(SB)/8, $1.90821492927058770002e-10
DATA spdata<>+576(SB)/8, $6.666666666666735130e-01
DATA spdata<>+584(SB)/8, $6.666666666666735130e-01
DATA spdata<>+592(SB)/8, $6.666666666666735130e-01
DATA spdata<>+600(SB)/8, $6.666666666666735130e-01
DATA spdata<>+608(SB)/8, $3.999999999940941908e-01
DATA spdata<>+616(SB)/8, $3.999999999940941908e-01
DATA spdata<>+624(SB)/8, $3.999999999940941908e-01
DATA spdata<>+632(SB)/8, $3.999999999940941908e-01
DATA spdata<>+640(SB)/8, $2.857142874366239149e-01
DATA spdata<>+648(SB)/8, $2.857142874366239149e-01
DATA spdata<>+656(SB)/8, $2.857142874366239149e-01
DATA spdata<>+664(SB)/8, $2.857142874366239149e-01
DATA spdata<>+672(SB)/8, $2.222219843214978396e-01
DATA spdata<>+680(SB)/8, $2.222219843214978396e-01
DATA spdata<>+688(SB)/8, $2.222219843214978396e-01
DATA spdata<>+696(SB)/8, $2.222219843214978396e-01
DATA spdata<>+704(SB)/8, $1.818357216161805012e-01
DATA spdata<>+712(SB)/8, $1.818357216161805012e-01
DATA spdata<>+720(SB)/8, $1.818357216161805012e-01
DATA spdata<>+728(SB)/8, $1.818357216161805012e-01
DATA spdata<>+736(SB)/8, $1.531383769920937332e-01
DATA spdata<>+744(SB)/8, $1.531383769920937332e-01
DATA spdata<>+752(SB)/8, $1.531383769920937332e-01
DATA spdata<>+760(SB)/8, $1.531383769920937332e-01
DATA spdata<>+768(SB)/8, $1.479819860511658591e-01
DATA spdata<>+776(SB)/8, $1.479819860511658591e-01
DATA spdata<>+784(SB)/8, $1.479819860511658591e-01
DATA spdata<>+792(SB)/8, $1.479819860511658591e-01
DATA spdata<>+800(SB)/8, $0x000FFFFFFFFFFFFF
DATA spdata<>+808(SB)/8, $0x000FFFFFFFFFFFFF
DATA spdata<>+816(SB)/8, $0x000FFFFFFFFFFFFF
DATA spdata<>+824(SB)/8, $0x000FFFFFFFFFFFFF
DATA spdata<>+832(SB)/8, $0x0006A09E667F3BCD
DATA spdata<>+840(SB)/8, $0x0006A09E667F3BCD
DATA spdata<>+848(SB)/8, $0x0006A09E667F3BCD
DATA spdata<>+856(SB)/8, $0x0006A09E667F3BCD
DATA spdata<>+864(SB)/8, $0x3FF0000000000000
DATA spdata<>+872(SB)/8, $0x3FF0000000000000
DATA spdata<>+880(SB)/8, $0x3FF0000000000000
DATA spdata<>+888(SB)/8, $0x3FF0000000000000
DATA spdata<>+896(SB)/8, $0x3FE0000000000000
DATA spdata<>+904(SB)/8, $0x3FE0000000000000
DATA spdata<>+912(SB)/8, $0x3FE0000000000000
DATA spdata<>+920(SB)/8, $0x3FE0000000000000
DATA spdata<>+928(SB)/8, $0x0010000000000000
DATA spdata<>+936(SB)/8, $0x0010000000000000
DATA spdata<>+944(SB)/8, $0x0010000000000000
DATA spdata<>+952(SB)/8, $0x0010000000000000
DATA spdata<>+960(SB)/8, $0x4330000000000000
DATA spdata<>+968(SB)/8, $0x4330000000000000
DATA spdata<>+976(SB)/8, $0x4330000000000000
DATA spdata<>+984(SB)/8, $0x4330000000000000
DATA spdata<>+992(SB)/8, $1023.0
DATA spdata<>+1000(SB)/8, $1023.0
DATA spdata<>+1008(SB)/8, $1023.0
DATA spdata<>+1016(SB)/8, $1023.0
DATA spdata<>+1024(SB)/8, $35.0
DATA spdata<>+1032(SB)/8, $35.0
DATA spdata<>+1040(SB)/8, $35.0
DATA spdata<>+1048(SB)/8, $35.0
DATA spdata<>+1056(SB)/8, $-35.0
DATA spdata<>+1064(SB)/8, $-35.0
DATA spdata<>+1072(SB)/8, $-35.0
DATA spdata<>+1080(SB)/8, $-35.0
DATA spdata<>+1088(SB)/8, $0.66666666666666666
DATA spdata<>+1096(SB)/8, $0.66666666666666666
DATA spdata<>+1104(SB)/8, $0.66666666666666666
DATA spdata<>+1112(SB)/8, $0.66666666666666666
GLOBL spdata<>+0(SB), RODATA, $1120

#define LOG2E spdata<>+0(SB)
#define LN2U spdata<>+32(SB)
#define LN2L spdata<>+64(SB)
#define SIXTEENTH spdata<>+96(SB)
#define EXPC8 spdata<>+128(SB)
#define EXPC7 spdata<>+160(SB)
#define EXPC6 spdata<>+192(SB)
#define EXPC5 spdata<>+224(SB)
#define EXPC4 spdata<>+256(SB)
#define EXPC3 spdata<>+288(SB)
#define HALF spdata<>+320(SB)
#define ONE spdata<>+352(SB)
#define TWO spdata<>+384(SB)
#define BIASQ spdata<>+416(SB)
#define SQRT2M1 spdata<>+448(SB)
#define SMALL spdata<>+480(SB)
#define LN2HI spdata<>+512(SB)
#define LN2LO spdata<>+544(SB)
#define LP1 spdata<>+576(SB)
#define LP2 spdata<>+608(SB)
#define LP3 spdata<>+640(SB)
#define LP4 spdata<>+672(SB)
#define LP5 spdata<>+704(SB)
#define LP6 spdata<>+736(SB)
#define LP7 spdata<>+768(SB)
#define MANTMASK spdata<>+800(SB)
#define SQRT2MANT spdata<>+832(SB)
#define EXPF1 spdata<>+864(SB)
#define EXPFHALF spdata<>+896(SB)
#define IMPBIT spdata<>+928(SB)
#define MAGIC52 spdata<>+960(SB)
#define C1023 spdata<>+992(SB)
#define P35 spdata<>+1024(SB)
#define N35 spdata<>+1056(SB)
#define TWOTHIRD spdata<>+1088(SB)

// EXPBODY computes e = exp(x) for the quad at xoff(SI) into eout,
// replicating math.archExp's FMA path. Clobbers Y0-Y5, X6.
#define EXPBODY(xoff, eout) \
	VMOVUPD xoff(SI), Y0;          \ // x
	VMULPD LOG2E, Y0, Y1;          \ // x * log2(e)
	VCVTPD2DQY Y1, X6;             \ // n = round-to-nearest (per MXCSR), as the scalar CVTSD2SL
	VCVTDQ2PD X6, Y3;              \ // float64(n)
	VMOVAPD Y0, Y1;                \ // r = x
	VFNMADD231PD LN2U, Y3, Y1;     \ // r -= n*LN2U
	VFNMADD231PD LN2L, Y3, Y1;     \ // r -= n*LN2L
	VMULPD SIXTEENTH, Y1, Y1;      \ // r *= 0.0625
	VMOVUPD EXPC8, Y4;             \
	VFMADD213PD EXPC7, Y1, Y4;     \ // u = u*r + c7
	VFMADD213PD EXPC6, Y1, Y4;     \
	VFMADD213PD EXPC5, Y1, Y4;     \
	VFMADD213PD EXPC4, Y1, Y4;     \
	VFMADD213PD EXPC3, Y1, Y4;     \
	VFMADD213PD HALF, Y1, Y4;      \
	VFMADD213PD ONE, Y1, Y4;       \ // u = u*r + 1.0
	VMULPD Y4, Y1, Y1;             \ // r *= u
	VADDPD TWO, Y1, Y4;            \ // u = r + 2
	VMULPD Y4, Y1, Y1;             \ // r *= u (×4 squaring steps: r was scaled by 1/16)
	VADDPD TWO, Y1, Y4;            \
	VMULPD Y4, Y1, Y1;             \
	VADDPD TWO, Y1, Y4;            \
	VMULPD Y4, Y1, Y1;             \
	VADDPD TWO, Y1, Y4;            \
	VFMADD213PD ONE, Y4, Y1;       \ // r = r*u + 1.0
	VPMOVSXDQ X6, Y5;              \ // int64(n)
	VPADDQ BIASQ, Y5, Y5;          \ // biased exponent (in (0, 0x7FF) inside the envelope)
	VPSLLQ $52, Y5, Y5;            \ // bits of 2**n
	VMULPD Y5, Y1, eout              // e = r * 2**n

// LOG1PBODY computes softplus from e (read-only) and x at xoff(SI),
// storing the result to xoff(DI): the FDLIBM log1p with plain packed
// mul/add/div (no FMA contraction — the scalar code has none), then the
// ±35 clamp blends. Clobbers Y0-Y11, Y14. Y15 must hold 1.0.
#define LOG1PBODY(e, xoff) \
	VADDPD Y15, e, Y2;             \ // u = 1 + e
	VPSRLQ $52, Y2, Y3;            \ // biased exponent of u (u >= 1 on live lanes)
	VPOR MAGIC52, Y3, Y3;          \ // bits of 2**52 + bexp
	VSUBPD MAGIC52, Y3, Y3;        \ // (MAGIC52 is also the double 2**52)
	VSUBPD C1023, Y3, Y3;          \ // kd = float64(k), exact
	VCMPPD $0x1D, ONE, Y3, Y4;     \ // kpos: kd >= 1.0  <=>  scalar k > 0
	VSUBPD e, Y2, Y5;              \ // u - e
	VSUBPD Y5, Y15, Y5;            \ // c (k>0 form): 1 - (u-e)
	VSUBPD ONE, Y2, Y6;            \ // u - 1
	VSUBPD Y6, e, Y6;              \ // c (k==0 form): e - (u-1)
	VBLENDVPD Y4, Y5, Y6, Y5;      \
	VDIVPD Y2, Y5, Y5;             \ // c /= u
	VPAND MANTMASK, Y2, Y6;        \ // m: mantissa field of u
	VMOVDQU SQRT2MANT, Y7;         \
	VPCMPGTQ Y6, Y7, Y7;           \ // lowmant: m < sqrt2's mantissa
	VANDNPD ONE, Y7, Y8;           \
	VADDPD Y8, Y3, Y3;             \ // kd++ on the high-mantissa lanes (scalar k++)
	VPOR EXPF1, Y6, Y8;            \ // u normalized to [1, sqrt2)
	VPOR EXPFHALF, Y6, Y9;         \ // u normalized to [sqrt2/2, 1)
	VBLENDVPD Y7, Y8, Y9, Y8;      \
	VMOVDQU IMPBIT, Y9;            \
	VPSUBQ Y6, Y9, Y9;             \ // implicit bit - m
	VPSRLQ $2, Y9, Y9;             \
	VBLENDVPD Y7, Y6, Y9, Y9;      \ // iu: scalar's masked mantissa after normalization
	VPXOR Y10, Y10, Y10;           \
	VPCMPEQQ Y10, Y9, Y9;          \ // iu0: iu == 0 (f fits the quadratic shortcut)
	VSUBPD ONE, Y8, Y8;            \ // f = u - 1
	VCMPPD $1, SQRT2M1, e, Y10;    \ // e < Sqrt2M1: scalar's shortcut branch (f = e, k = 0)
	VBLENDVPD Y10, e, Y8, Y8;      \ // f = e on those lanes (their kd is already 0)
	VPXOR Y10, Y10, Y10;           \
	VCMPPD $0, Y10, Y3, Y10;       \ // kz: final k == 0 — selects the no-c result forms
	VANDNPD Y5, Y10, Y5;           \ // c = 0 on k==0 lanes (scalar never reads c there)
	VMULPD HALF, Y8, Y2;           \
	VMULPD Y8, Y2, Y2;             \ // hfsq = (0.5*f)*f
	VADDPD TWO, Y8, Y4;            \
	VDIVPD Y4, Y8, Y4;             \ // s = f/(2+f)
	VMULPD Y4, Y4, Y6;             \ // z = s*s
	VMOVUPD LP7, Y7;               \
	VMULPD Y6, Y7, Y7;             \
	VADDPD LP6, Y7, Y7;            \ // Lp6 + z*Lp7
	VMULPD Y6, Y7, Y7;             \
	VADDPD LP5, Y7, Y7;            \
	VMULPD Y6, Y7, Y7;             \
	VADDPD LP4, Y7, Y7;            \
	VMULPD Y6, Y7, Y7;             \
	VADDPD LP3, Y7, Y7;            \
	VMULPD Y6, Y7, Y7;             \
	VADDPD LP2, Y7, Y7;            \
	VMULPD Y6, Y7, Y7;             \
	VADDPD LP1, Y7, Y7;            \
	VMULPD Y6, Y7, Y7;             \ // R = z*(Lp1 + z*(...))
	VADDPD Y7, Y2, Y6;             \ // hfsq + R
	VMULPD Y6, Y4, Y6;             \ // s*(hfsq+R)
	VSUBPD Y6, Y2, Y11;            \
	VSUBPD Y11, Y8, Y11;           \ // k==0 result: f - (hfsq - s*(hfsq+R))
	VMULPD LN2LO, Y3, Y0;          \ // kd*Ln2Lo
	VADDPD Y5, Y0, Y0;             \ // kd*Ln2Lo + c
	VADDPD Y0, Y6, Y0;             \ // s*(hfsq+R) + (kd*Ln2Lo + c)
	VSUBPD Y0, Y2, Y0;             \ // hfsq - (...)
	VSUBPD Y8, Y0, Y0;             \ // (...) - f
	VMULPD LN2HI, Y3, Y1;          \ // kd*Ln2Hi
	VSUBPD Y0, Y1, Y0;             \ // k>0 result: kd*Ln2Hi - (...)
	VMULPD TWOTHIRD, Y8, Y6;       \ // iu==0 shortcut, both sub-branches:
	VSUBPD Y6, Y15, Y6;            \
	VMULPD Y6, Y2, Y6;             \ // R2 = hfsq*(1 - (2/3)*f)
	VMULPD LN2LO, Y3, Y4;          \
	VADDPD Y4, Y5, Y4;             \ // c + kd*Ln2Lo
	VADDPD Y4, Y1, Y4;             \ // f==0 result: kd*Ln2Hi + (c + kd*Ln2Lo)
	VMULPD LN2LO, Y3, Y2;          \
	VADDPD Y5, Y2, Y2;             \ // kd*Ln2Lo + c
	VSUBPD Y2, Y6, Y2;             \ // R2 - (...)
	VSUBPD Y8, Y2, Y2;             \ // (...) - f
	VSUBPD Y2, Y1, Y2;             \ // f!=0 result: kd*Ln2Hi - (...)
	VPXOR Y6, Y6, Y6;              \
	VCMPPD $0, Y6, Y8, Y6;         \ // f == 0
	VBLENDVPD Y6, Y4, Y2, Y2;      \
	VBLENDVPD Y9, Y2, Y0, Y0;      \ // resolve in scalar priority order (later blends win):
	VBLENDVPD Y10, Y11, Y0, Y0;    \ // k==0 main result over the k>0 one
	VCMPPD $1, SMALL, e, Y2;       \ // e < Small
	VMULPD e, e, Y4;               \
	VMULPD HALF, Y4, Y4;           \
	VSUBPD Y4, e, Y4;              \ // e - (e*e)*0.5
	VBLENDVPD Y2, Y4, Y0, Y0;      \
	VMOVUPD xoff(SI), Y14;         \ // x
	VCMPPD $1, N35, Y14, Y2;       \ // x < -35: softplus(x) = exp(x)
	VBLENDVPD Y2, e, Y0, Y0;       \
	VCMPPD $0x1E, P35, Y14, Y2;    \ // x > 35: softplus(x) = x
	VBLENDVPD Y2, Y14, Y0, Y0;     \
	VMOVUPD Y0, xoff(DI)

// func spAVX2(dst, src *float64, n int)
// n must be a positive multiple of 4. Quads are processed two at a time in
// phase order (exp A, exp B, log1p A, log1p B): the two dependency chains
// are independent, so the out-of-order core overlaps them — one quad alone
// leaves the floating-point units half idle on its long serial chain.
TEXT ·spAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	VMOVUPD ONE, Y15 // 1.0, loop-invariant (needed in non-foldable positions)

loop8:
	CMPQ CX, $8
	JL tail4
	EXPBODY(0, Y13)
	EXPBODY(32, Y12)
	LOG1PBODY(Y13, 0)
	LOG1PBODY(Y12, 32)
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $8, CX
	JMP loop8

tail4:
	CMPQ CX, $4
	JL done
	EXPBODY(0, Y13)
	LOG1PBODY(Y13, 0)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX
	JMP tail4

done:
	VZEROUPPER
	RET

// func expAVX2(dst, src *float64, n int)
// Bare 4-wide exp: the same EXPBODY stage the softplus kernel certifies
// (math.archExp's FMA path, bit for bit inside the envelope), stored
// directly. n must be a positive multiple of 4; out-of-envelope lanes are
// garbage and must be rescued by the caller, exactly as in Softplus.
TEXT ·expAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

exploop8:
	CMPQ CX, $8
	JL exptail4
	EXPBODY(0, Y13)
	EXPBODY(32, Y12)
	VMOVUPD Y13, 0(DI)
	VMOVUPD Y12, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $8, CX
	JMP exploop8

exptail4:
	CMPQ CX, $4
	JL expdone
	EXPBODY(0, Y13)
	VMOVUPD Y13, 0(DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX
	JMP exptail4

expdone:
	VZEROUPPER
	RET
