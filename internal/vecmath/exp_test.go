package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

// checkExpLanes runs Exp on xs and requires every lane to match math.Exp
// bit for bit.
func checkExpLanes(t *testing.T, xs []float64) {
	t.Helper()
	out := make([]float64, len(xs))
	Exp(out, xs)
	for i, x := range xs {
		want := math.Exp(x)
		if math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Fatalf("lane %d: Exp(%v) = %v (%#x), math.Exp gives %v (%#x)",
				i, x, out[i], math.Float64bits(out[i]), want, math.Float64bits(want))
		}
	}
}

// TestExpBoundaries hits the envelope edges (where the rescue pass splices
// in math.Exp for the overflow/denormal/non-finite exits) plus the special
// values of the scalar implementation.
func TestExpBoundaries(t *testing.T) {
	xs := []float64{
		0, math.Copysign(0, -1), 1, -1, math.Ln2, -math.Ln2,
		minVecArg, math.Nextafter(minVecArg, 0), math.Nextafter(minVecArg, -709),
		maxVecArg, math.Nextafter(maxVecArg, 0), math.Nextafter(maxVecArg, 710),
		-700, -708.3, -708.5, -710, -744.4, -745, -746, -1000,
		700, 708, 709.4, 709.7, 709.8, 710, 1000,
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		6.9e-16, -6.9e-16, 1e-300, -1e-300,
	}
	checkExpLanes(t, xs)
}

// TestExpSweep covers the log-sum-exp working range densely — LogPDF only
// ever asks for arguments in (−∞, 0] with a −40 cutoff on the additive
// ones — and the full finite range coarsely.
func TestExpSweep(t *testing.T) {
	var xs []float64
	for x := -45.0; x <= 1.0; x += 0.0009765625 { // exact step: 2**-10
		xs = append(xs, x)
	}
	for x := -800.0; x <= 800.0; x += 0.8046875 {
		xs = append(xs, x)
	}
	checkExpLanes(t, xs)
}

// TestExpTails pins the scalar tail: every length mod 4 must agree.
func TestExpTails(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for n := 0; n <= 9; n++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = -45 * rng.Float64()
		}
		checkExpLanes(t, xs)
	}
}

// checkSqDiffLanes runs AccSqDiff over the given means and requires every
// accumulator to match the scalar loop bit for bit, including a non-zero
// starting value.
func checkSqDiffLanes(t *testing.T, means []float64, x, invs float64) {
	t.Helper()
	q := make([]float64, len(means))
	want := make([]float64, len(means))
	for i := range q {
		q[i] = float64(i) * 0.125
		want[i] = q[i]
		z := (x - means[i]) * invs
		want[i] += z * z
	}
	AccSqDiff(q, means, x, invs)
	for i := range q {
		if math.Float64bits(q[i]) != math.Float64bits(want[i]) {
			t.Fatalf("lane %d: got %v (%#x), scalar gives %v (%#x) for m=%v x=%v invs=%v",
				i, q[i], math.Float64bits(q[i]), want[i], math.Float64bits(want[i]), means[i], x, invs)
		}
	}
}

// TestAccSqDiff sweeps lengths across the quad boundaries with random
// operands, plus non-finite means.
func TestAccSqDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for n := 0; n <= 70; n++ {
		means := make([]float64, n)
		for i := range means {
			means[i] = 10 * rng.NormFloat64()
		}
		checkSqDiffLanes(t, means, 3*rng.NormFloat64(), math.Abs(rng.NormFloat64())+0.1)
	}
	checkSqDiffLanes(t, []float64{math.Inf(1), math.Inf(-1), math.NaN(), 0, 1e308, -1e308, 2.5}, 0.5, 2)
}

func BenchmarkExp(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 256)
	for i := range xs {
		xs[i] = -40 * rng.Float64()
	}
	out := make([]float64, len(xs))
	b.Run("vector", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Exp(out, xs)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, x := range xs {
				out[j] = math.Exp(x)
			}
		}
	})
}
