//go:build !amd64

package vecmath

var useAVX2 = false

// The kernels are unreachable without amd64: useAVX2 is constant false above.
func spAVX2(dst, src *float64, n int) {
	panic("vecmath: spAVX2 called on non-amd64")
}

func expAVX2(dst, src *float64, n int) {
	panic("vecmath: expAVX2 called on non-amd64")
}

func sqdAVX2(q, m *float64, x, invs float64, n int) {
	panic("vecmath: sqdAVX2 called on non-amd64")
}
