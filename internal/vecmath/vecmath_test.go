package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

// checkLanes runs Softplus on xs and requires every lane to match the
// scalar reference bit for bit.
func checkLanes(t *testing.T, xs []float64) {
	t.Helper()
	out := make([]float64, len(xs))
	Softplus(out, xs)
	for i, x := range xs {
		want := Scalar(x)
		if math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Fatalf("lane %d: softplus(%v) = %v (%#x), scalar gives %v (%#x)",
				i, x, out[i], math.Float64bits(out[i]), want, math.Float64bits(want))
		}
	}
}

// TestSoftplusBoundaries hits every branch boundary of the scalar
// reference and of the underlying exp/log1p implementations: the ±35
// clamps, the log1p Small (2⁻²⁹) and √2−1 thresholds, the mantissa
// threshold where log1p renormalizes and increments k, the iu==0
// quadratic shortcut around x ≈ 0, and the envelope edges where the
// rescue pass takes over from the vector kernel.
func TestSoftplusBoundaries(t *testing.T) {
	xs := []float64{
		0, math.Copysign(0, -1),
		35, math.Nextafter(35, 36), math.Nextafter(35, 0),
		-35, math.Nextafter(-35, -36), math.Nextafter(-35, 0),
		// e crosses Small = 2**-29 near x = -29 ln 2.
		-29 * math.Ln2, math.Nextafter(-29*math.Ln2, -30), -20.101268, -20.101269,
		// e crosses Sqrt2M1 near ln(√2−1).
		math.Log(math.Sqrt2 - 1), -0.8813735870195429, -0.8813735870195431,
		// u = 1+e crosses √2 (k increments) near ln(√2−1) from above.
		-0.88, -0.8813, -0.882,
		// iu==0 shortcut: u = 1+e lands exactly on a power of two.
		math.Log(1.0), // e = 1, u = 2
		6.9e-16, -6.9e-16, 1e-300, -1e-300,
		// Envelope edges: the rescue pass must splice seamlessly.
		minVecArg, math.Nextafter(minVecArg, 0), math.Nextafter(minVecArg, -709),
		maxVecArg, math.Nextafter(maxVecArg, 0), math.Nextafter(maxVecArg, 710),
		-700, -708.3, -708.5, -710, -745, -746, -1000,
		700, 708, 709.4, 709.8, 710, 1000,
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		1e308, -1e308, 4.9e-324, -4.9e-324,
	}
	checkLanes(t, xs)
}

// TestSoftplusSweep covers the working range of the device model densely
// and the full finite double range coarsely.
func TestSoftplusSweep(t *testing.T) {
	var xs []float64
	for x := -50.0; x <= 50.0; x += 0.001953125 { // exact step: 2**-9
		xs = append(xs, x)
	}
	for x := -800.0; x <= 800.0; x += 0.8046875 {
		xs = append(xs, x)
	}
	for e := -300; e <= 300; e += 3 {
		xs = append(xs, math.Ldexp(1.1, e), -math.Ldexp(1.3, e))
	}
	checkLanes(t, xs)
}

// TestSoftplusTails pins the scalar tail: every length mod 4 must agree.
func TestSoftplusTails(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 0; n <= 9; n++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 80*rng.Float64() - 40
		}
		checkLanes(t, xs)
	}
}

// TestSoftplusForcedScalar verifies the pure-Go path against the vector
// one directly (meaningful only where the kernel is enabled).
func TestSoftplusForcedScalar(t *testing.T) {
	if !Enabled() {
		t.Skip("vector kernel not available on this machine")
	}
	rng := rand.New(rand.NewSource(12))
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = 100*rng.NormFloat64() - 10
	}
	vec := make([]float64, len(xs))
	Softplus(vec, xs)
	useAVX2 = false
	scl := make([]float64, len(xs))
	Softplus(scl, xs)
	useAVX2 = true
	for i := range xs {
		if math.Float64bits(vec[i]) != math.Float64bits(scl[i]) {
			t.Fatalf("lane %d: vector %v != scalar %v for x=%v", i, vec[i], scl[i], xs[i])
		}
	}
}

// FuzzSoftplus feeds arbitrary bit patterns through a full quad plus a
// tail lane and requires bit-identity with the scalar reference.
func FuzzSoftplus(f *testing.F) {
	f.Add(0.3, -4.5, 40.0, -900.0, 1.25)
	f.Add(math.NaN(), math.Inf(1), math.Inf(-1), -0.0, 708.9)
	f.Add(-708.1, 709.5, -35.0, 35.0, -20.10127)
	f.Fuzz(func(t *testing.T, a, b, c, d, e float64) {
		checkLanes(t, []float64{a, b, c, d, e})
	})
}

func BenchmarkSoftplus(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 256)
	for i := range xs {
		xs[i] = 30*rng.NormFloat64() - 5
	}
	out := make([]float64, len(xs))
	b.Run("vector", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Softplus(out, xs)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, x := range xs {
				out[j] = Scalar(x)
			}
		}
	})
}
