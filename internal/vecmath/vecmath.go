// Package vecmath provides batched math kernels for the structure-of-arrays
// hot paths: Softplus for the device layer's lane-parallel
// softplus(x) = ln(1+eˣ), Exp for the mixture log-density's batched
// exponentials, and AccSqDiff for its quadratic forms. Every kernel is
// pinned bit-identical to its scalar reference: on AMD64 with AVX2+FMA the
// transcendentals replicate the exact operation sequence of math.Exp's FMA
// path and math.Log1p four lanes at a time, and AccSqDiff uses plain packed
// arithmetic with no FMA contraction — so vectorization changes throughput
// and nothing else. Everywhere else the package degrades to the scalar
// loops.
package vecmath

import "math"

// Enabled reports whether the vectorized kernel is active (AVX2+FMA
// detected, or the build was pinned to GOAMD64=v3). Exposed for cost
// telemetry and tests; results are bit-identical either way.
func Enabled() bool { return useAVX2 }

// The vector kernel certifies lanes strictly inside (minVecArg, maxVecArg):
// beyond these bounds the scalar exp takes overflow/denormal/non-finite
// exits that the branch-free kernel does not model. The bounds are
// deliberately tighter than the true exits (exp overflows above ~709.78 and
// denormalizes below ~-708.39) so the envelope check stays two compares.
// NaN fails both compares and is rescued too.
const (
	minVecArg = -708.0
	maxVecArg = 709.0
)

// Softplus fills dst[i] = Scalar(src[i]) for every lane. dst must be at
// least as long as src. The results are bit-identical to the scalar loop at
// any lane count and any ISA level.
func Softplus(dst, src []float64) {
	n := len(src)
	dst = dst[:n]
	if useAVX2 {
		q := n &^ 3
		if q > 0 {
			spAVX2(&dst[0], &src[0], q)
			// Rescue pass: recompute any lane outside the certified
			// envelope. The branch predicts perfectly on clean data.
			for i, x := range src[:q] {
				if !(x > minVecArg && x < maxVecArg) {
					dst[i] = Scalar(x)
				}
			}
		}
		for i := q; i < n; i++ {
			dst[i] = Scalar(src[i])
		}
		return
	}
	for i, x := range src {
		dst[i] = Scalar(x)
	}
}

// Exp fills dst[i] = math.Exp(src[i]) for every lane. dst must be at least
// as long as src. On AVX2+FMA hardware the results are bit-identical to the
// scalar loop (the kernel replicates math.archExp's FMA path, and lanes
// outside the certified envelope are rescued through math.Exp itself); the
// fallback is the scalar loop.
func Exp(dst, src []float64) {
	n := len(src)
	dst = dst[:n]
	if useAVX2 {
		q := n &^ 3
		if q > 0 {
			expAVX2(&dst[0], &src[0], q)
			for i, x := range src[:q] {
				if !(x > minVecArg && x < maxVecArg) {
					dst[i] = math.Exp(x)
				}
			}
		}
		for i := q; i < n; i++ {
			dst[i] = math.Exp(src[i])
		}
		return
	}
	for i, x := range src {
		dst[i] = math.Exp(x)
	}
}

// AccSqDiff accumulates q[k] += ((x − means[k]) · invs)² for every k.
// q must be at least as long as means. The kernel uses plain packed
// sub/mul/add with no FMA contraction, so the results are bit-identical to
// the scalar loop at any lane count and any ISA level. This is the inner
// quadratic of a shared-diagonal Gaussian mixture log-density, swept
// dimension-major over a structure-of-arrays means layout.
func AccSqDiff(q, means []float64, x, invs float64) {
	n := len(means)
	q = q[:n]
	k := 0
	if useAVX2 {
		if v := n &^ 3; v > 0 {
			sqdAVX2(&q[0], &means[0], x, invs, v)
			k = v
		}
	}
	for ; k < n; k++ {
		z := (x - means[k]) * invs
		q[k] += z * z
	}
}

// Scalar is the reference softplus the vector kernel is pinned against:
// ln(1+eˣ) with the same large/small-argument clamps as the device model
// (for x > 35 the +1 is far below double precision; for x < -35 the log1p
// is the identity to double precision).
func Scalar(x float64) float64 {
	switch {
	case x > 35:
		return x
	case x < -35:
		return math.Exp(x)
	default:
		return math.Log1p(math.Exp(x))
	}
}
