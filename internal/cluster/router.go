package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ecripse/internal/obsv"
	"ecripse/internal/service"
)

// Config assembles a Router.
type Config struct {
	// Shards is the fixed cluster membership (at least one entry; at most
	// one may be Local). Names must be unique.
	Shards []Shard

	// VirtualNodes is the ring's per-node point count (0 selects
	// DefaultVirtualNodes).
	VirtualNodes int

	// Store journals every dispatched job (submit, placement, terminal
	// state) so a router restart keeps routing old IDs and a dead shard's
	// jobs can be re-enqueued from the journal. Nil keeps the dispatch
	// table in process memory only.
	Store service.Store

	// Tenants enables API-key auth and fairness enforcement at the router,
	// the cluster's entry point. Forwarded traffic to the shards carries the
	// client's credentials but is never re-charged.
	Tenants *service.Tenants

	// MaxBodyBytes / MaxBatchJobs mirror service.Server's request bounds
	// (0 selects the service defaults).
	MaxBodyBytes int64
	MaxBatchJobs int

	// ProbeInterval is the health-probe period (0 selects 2s; negative
	// disables the prober — tests drive ProbeOnce directly).
	ProbeInterval time.Duration
	// ProbeFailures is the consecutive-failure threshold that marks a shard
	// down (0 selects 3).
	ProbeFailures int
	// ProbeTimeout bounds one /healthz probe (0 selects 1s).
	ProbeTimeout time.Duration

	// HTTPClient issues shard requests (nil selects a 30s-timeout client).
	HTTPClient *http.Client

	// Logger receives routing and failover logs (nil selects slog.Default).
	Logger *slog.Logger
}

// routedJob is one dispatched job in the router's ownership table. ID is the
// client-visible ID (as minted by the shard that first accepted the job);
// RemoteID is the job's ID on its current shard and differs from ID only
// after a failover re-enqueue. Placement fields are guarded by Router.mu.
type routedJob struct {
	ID     string
	Key    string
	Spec   json.RawMessage // normalized spec, the redispatch payload
	Tenant string

	Shard    string
	RemoteID string
	Terminal bool
}

// Router is the cluster dispatch layer, an http.Handler serving the full
// single-node ecripsed API across N shards. See the package comment for the
// topology; see NewRouter for construction.
type Router struct {
	ring    *Ring
	targets map[string]*target
	names   []string // sorted shard names
	local   string   // name of the Local shard, "" in the dedicated router
	tenants *service.Tenants
	st      service.Store
	log     *slog.Logger
	mux     *http.ServeMux

	maxBody  int64
	maxBatch int

	probeInterval time.Duration
	probeFails    int
	probeTimeout  time.Duration
	probeStop     chan struct{}
	probeWG       sync.WaitGroup

	mu    sync.Mutex
	jobs  map[string]*routedJob
	order []*routedJob // dispatch order, for listing dead-shard jobs

	// sweepTraces holds the router's own span tree (route + dispatch spans)
	// for recently dispatched sweeps, keyed by sweep ID and bounded FIFO at
	// maxSweepTraces; GET /v1/sweeps/{id}/trace grafts the owning shard's
	// reassembled tree under the successful dispatch span.
	sweepTraces     map[string]*routedSweepTrace
	sweepTraceOrder []string

	// counters surface at /metrics.
	forwards     map[string]*atomic.Int64 // dispatches per shard
	cacheRouted  atomic.Int64             // submits steered to a cache holder
	redispatched atomic.Int64             // jobs moved off a dead shard
	proxyErrs    atomic.Int64             // shard requests that failed in transit
	downEvents   atomic.Int64             // up→down transitions observed
	appendErrs   atomic.Int64             // journal appends that failed
}

// NewRouter validates the shard set, replays the dispatch journal (when a
// store is configured) and returns a ready handler. Call Start to run the
// health prober and Close to stop it.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: at least one shard required")
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeFailures <= 0 {
		cfg.ProbeFailures = 3
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = service.DefaultMaxBodyBytes
	}
	if cfg.MaxBatchJobs <= 0 {
		cfg.MaxBatchJobs = service.DefaultMaxBatchJobs
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = defaultHTTPClient()
	}

	rt := &Router{
		ring:          NewRing(cfg.VirtualNodes),
		targets:       make(map[string]*target, len(cfg.Shards)),
		tenants:       cfg.Tenants,
		st:            cfg.Store,
		log:           cfg.Logger,
		mux:           http.NewServeMux(),
		maxBody:       cfg.MaxBodyBytes,
		maxBatch:      cfg.MaxBatchJobs,
		probeInterval: cfg.ProbeInterval,
		probeFails:    cfg.ProbeFailures,
		probeTimeout:  cfg.ProbeTimeout,
		probeStop:     make(chan struct{}),
		jobs:          make(map[string]*routedJob),
		forwards:      make(map[string]*atomic.Int64, len(cfg.Shards)),
		sweepTraces:   make(map[string]*routedSweepTrace),
	}
	for _, s := range cfg.Shards {
		if s.Name == "" {
			return nil, errors.New("cluster: shard with empty name")
		}
		if _, dup := rt.targets[s.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard %q", s.Name)
		}
		if s.Local != nil {
			if rt.local != "" {
				return nil, fmt.Errorf("cluster: two local shards (%q, %q)", rt.local, s.Name)
			}
			rt.local = s.Name
		} else if s.URL == "" {
			return nil, fmt.Errorf("cluster: shard %q has neither URL nor Local handler", s.Name)
		}
		rt.targets[s.Name] = newTarget(s, hc)
		rt.names = append(rt.names, s.Name)
		rt.forwards[s.Name] = &atomic.Int64{}
		rt.ring.Add(s.Name)
	}
	sort.Strings(rt.names)

	if rt.st != nil {
		rt.recover()
	}

	rt.mux.HandleFunc("POST /v1/jobs", rt.handleSubmit)
	rt.mux.HandleFunc("POST /v1/jobs:batch", rt.handleBatch)
	rt.mux.HandleFunc("GET /v1/jobs", rt.handleList)
	rt.mux.HandleFunc("GET /v1/jobs/{id}", rt.handleGet)
	rt.mux.HandleFunc("GET /v1/jobs/{id}/events", rt.handleEvents)
	rt.mux.HandleFunc("GET /v1/jobs/{id}/trace", rt.handleTrace)
	rt.mux.HandleFunc("DELETE /v1/jobs/{id}", rt.handleCancel)
	rt.mux.HandleFunc("POST /v1/sweeps", rt.handleSweepSubmit)
	rt.mux.HandleFunc("GET /v1/sweeps", rt.handleSweepList)
	rt.mux.HandleFunc("GET /v1/sweeps/{id}", rt.handleSweepGet)
	rt.mux.HandleFunc("GET /v1/sweeps/{id}/events", rt.handleSweepEvents)
	rt.mux.HandleFunc("GET /v1/sweeps/{id}/trace", rt.handleSweepTrace)
	rt.mux.HandleFunc("DELETE /v1/sweeps/{id}", rt.handleSweepCancel)
	rt.mux.HandleFunc("GET /v1/cache/{key}", rt.handleCache)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	return rt, nil
}

// recover replays the dispatch journal: tenant usage back into the registry,
// then the ownership table. Jobs whose shard assignment predates an OpOwner
// record fall back to their ID prefix.
func (rt *Router) recover() {
	rec := rt.st.Recover()
	for name, u := range rec.Tenants {
		rt.tenants.SetUsage(name, u)
	}
	rt.tenants.OnUsage(func(name string, u service.TenantUsage) {
		if err := rt.st.AppendTenant(name, u); err != nil {
			rt.appendErrs.Add(1)
			rt.log.Error("persist tenant usage failed", "tenant", name, "err", err)
		}
	})
	for _, rj := range rec.Jobs {
		j := &routedJob{
			ID:       rj.ID,
			Key:      rj.Key,
			Spec:     rj.Spec,
			Tenant:   rj.Tenant,
			Terminal: rj.State.Terminal(),
		}
		if own, ok := rec.Owners[rj.ID]; ok {
			j.Shard, j.RemoteID = own.Shard, own.Remote
		} else {
			j.Shard, j.RemoteID = shardPrefix(rj.ID), rj.ID
		}
		rt.jobs[j.ID] = j
		rt.order = append(rt.order, j)
	}
	if n := len(rec.Jobs); n > 0 {
		rt.log.Info("router recovered dispatch table", "jobs", n)
	}
}

// shardPrefix extracts the shard name from a namespaced job ID
// ("s1-j000001" → "s1"), or "" when the ID carries no prefix.
func shardPrefix(id string) string {
	if i := strings.LastIndex(id, "-j"); i > 0 {
		return id[:i]
	}
	return ""
}

// sweepShardPrefix extracts the shard name from a namespaced sweep ID
// ("s1-sw000001" → "s1"), or "" when the ID carries no prefix.
func sweepShardPrefix(id string) string {
	if i := strings.LastIndex(id, "-sw"); i > 0 {
		return id[:i]
	}
	return ""
}

// Start launches the health prober. No-op when probing is disabled.
func (rt *Router) Start() {
	if rt.probeInterval < 0 {
		return
	}
	rt.probeWG.Add(1)
	go rt.probeLoop()
}

// Close stops the prober. The Router keeps serving (it holds no listener);
// closing the store is the caller's job.
func (rt *Router) Close() {
	select {
	case <-rt.probeStop:
	default:
		close(rt.probeStop)
	}
	rt.probeWG.Wait()
}

// ServeHTTP authenticates /v1/* (when tenants are configured), short-
// circuits cluster-internal traffic to the local shard, then dispatches.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if rt.tenants != nil && strings.HasPrefix(r.URL.Path, "/v1/") &&
		!strings.HasPrefix(r.URL.Path, "/v1/cache/") {
		t, err := rt.tenants.Authenticate(r)
		if err != nil {
			writeError(w, http.StatusUnauthorized, err.Error())
			return
		}
		r = r.WithContext(service.WithTenant(r.Context(), t))
	}
	// A forwarded request was already routed by a peer's dispatch layer:
	// serve it on the local shard without re-routing (this is what stops
	// forwarding loops in the embedded mode, where every node is a router).
	if rt.local != "" && isForwarded(r) && strings.HasPrefix(r.URL.Path, "/v1/") {
		rt.targets[rt.local].local.ServeHTTP(w, r)
		return
	}
	rt.mux.ServeHTTP(w, r)
}

func isForwarded(r *http.Request) bool { return r.Header.Get(service.ForwardedHeader) != "" }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// acquireStatus maps a tenant-admission error onto its response, setting
// Retry-After for 429s exactly like the single-node server.
func acquireStatus(w http.ResponseWriter, err error) int {
	var rle *service.RateLimitError
	if errors.As(err, &rle) {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(rle.RetryAfter.Seconds())))
		return http.StatusTooManyRequests
	}
	return http.StatusBadRequest
}

// relay copies a buffered shard response to the client: selected headers,
// status and body, verbatim.
func relay(w http.ResponseWriter, resp *bufferedResponse) {
	for _, h := range []string{"Content-Type", "Location", "Retry-After"} {
		if v := resp.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body)
}

// aliveTargets returns the currently-alive targets in sorted name order.
func (rt *Router) aliveTargets() []*target {
	out := make([]*target, 0, len(rt.names))
	for _, name := range rt.names {
		if t := rt.targets[name]; t.Alive() {
			out = append(out, t)
		}
	}
	return out
}

// findCached probes every alive shard's result cache for a key and returns
// the first holder in sorted name order (nil when no shard has it). The
// probes run concurrently under a short deadline — this sits on the submit
// path and must cost far less than the work it saves.
func (rt *Router) findCached(ctx context.Context, key string) *target {
	alive := rt.aliveTargets()
	if len(alive) < 2 {
		return nil // the single candidate answers its own cache on dispatch
	}
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	hits := make([]bool, len(alive))
	var wg sync.WaitGroup
	for i, t := range alive {
		wg.Add(1)
		go func(i int, t *target) {
			defer wg.Done()
			_, hits[i] = t.cacheLookup(ctx, key)
		}(i, t)
	}
	wg.Wait()
	for i, hit := range hits {
		if hit {
			return alive[i]
		}
	}
	return nil
}

// PeerCacheLookup probes the alive *remote* shards for a cached result —
// the service.Config.RemoteCache hook of the embedded -peers mode, called on
// a local cache miss (so the local shard is deliberately excluded). First
// hit in sorted shard order wins; determinism makes every holder's payload
// byte-identical.
func (rt *Router) PeerCacheLookup(ctx context.Context, key string) (json.RawMessage, bool) {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	for _, name := range rt.names {
		t := rt.targets[name]
		if t.isLocal() || !t.Alive() {
			continue
		}
		if payload, ok := t.cacheLookup(ctx, key); ok {
			return payload, true
		}
	}
	return nil, false
}

// pickTarget chooses the dispatch target for a spec key: the shard that
// already holds the cached result if any does (so a repeat submit through
// any entry point is answered without recomputation), otherwise the ring
// owner. The boolean reports a cache-steered choice.
func (rt *Router) pickTarget(ctx context.Context, key string) (*target, bool) {
	owner, ok := rt.ring.Owner(key)
	if holder := rt.findCached(ctx, key); holder != nil {
		if holder.name != owner {
			rt.cacheRouted.Add(1)
			return holder, true
		}
		return holder, false
	}
	if !ok {
		return nil, false
	}
	return rt.targets[owner], false
}

// dispatchSubmit posts one normalized spec to a target, walking the key's
// failover order on transport errors (the window between a shard dying and
// the prober noticing). Application-level answers — including 429 and 400 —
// are final and relayed as-is.
func (rt *Router) dispatchSubmit(ctx context.Context, first *target, key string, body []byte, src *http.Request) (*target, *bufferedResponse, error) {
	tried := map[string]bool{}
	try := func(t *target) (*bufferedResponse, error) {
		tried[t.name] = true
		rt.forwards[t.name].Add(1)
		return t.do(ctx, http.MethodPost, "/v1/jobs", body, src)
	}
	if first != nil {
		resp, err := try(first)
		if err == nil {
			return first, resp, nil
		}
		rt.proxyErrs.Add(1)
		rt.log.Warn("dispatch failed, trying successor", "shard", first.name, "err", err)
	}
	for _, name := range rt.ring.Owners(key, len(rt.names)) {
		t := rt.targets[name]
		if tried[name] || !t.Alive() {
			continue
		}
		resp, err := try(t)
		if err == nil {
			return t, resp, nil
		}
		rt.proxyErrs.Add(1)
		rt.log.Warn("dispatch failed, trying successor", "shard", name, "err", err)
	}
	return nil, nil, errors.New("cluster: no shard reachable")
}

// trackDispatch records an accepted job in the ownership table and journal.
func (rt *Router) trackDispatch(view *service.View, shard, key string, spec json.RawMessage, tenant string) {
	j := &routedJob{
		ID:       view.ID,
		Key:      key,
		Spec:     spec,
		Tenant:   tenant,
		Shard:    shard,
		RemoteID: view.ID,
		Terminal: view.State.Terminal(),
	}
	rt.mu.Lock()
	rt.jobs[j.ID] = j
	rt.order = append(rt.order, j)
	rt.mu.Unlock()
	if rt.st == nil {
		return
	}
	if err := rt.st.AppendSubmit(j.ID, spec, key, tenant, view.Cached, time.Now()); err != nil {
		rt.appendErrs.Add(1)
		rt.log.Error("journal dispatch failed", "job", j.ID, "err", err)
	}
	if err := rt.st.AppendOwner(j.ID, j.Shard, j.RemoteID); err != nil {
		rt.appendErrs.Add(1)
		rt.log.Error("journal placement failed", "job", j.ID, "err", err)
	}
	if j.Terminal {
		rt.journalTerminal(j, view.State, view.Error)
	}
}

// journalTerminal appends a terminal state once the router has observed it.
func (rt *Router) journalTerminal(j *routedJob, state service.State, errMsg string) {
	if rt.st == nil {
		return
	}
	if err := rt.st.AppendState(j.ID, state, errMsg, time.Now()); err != nil {
		rt.appendErrs.Add(1)
		rt.log.Error("journal terminal state failed", "job", j.ID, "err", err)
	}
}

// markTerminal folds an observed view into the ownership table, journaling
// the terminal transition the first time it is seen.
func (rt *Router) markTerminal(j *routedJob, view *service.View) {
	if j == nil || !view.State.Terminal() {
		return
	}
	rt.mu.Lock()
	already := j.Terminal
	j.Terminal = true
	rt.mu.Unlock()
	if !already {
		rt.journalTerminal(j, view.State, view.Error)
	}
}

func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if rt.maxBody > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, rt.maxBody)
	}
	var spec service.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("spec exceeds the %d-byte body limit", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "decode spec: "+err.Error())
		return
	}
	if err := spec.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	tenant := service.TenantFrom(r.Context())
	if err := rt.tenants.Acquire(tenant, 1); err != nil {
		writeError(w, acquireStatus(w, err), err.Error())
		return
	}
	key := spec.Key()
	raw, err := json.Marshal(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "marshal spec: "+err.Error())
		return
	}
	// Join the caller's distributed trace, or start one at the router: the
	// dispatched shard extracts the Traceparent header (copied by target.do)
	// and mints its job trace under the same trace ID.
	r.Header.Set(obsv.TraceparentHeader, rt.traceContext(r).Child().Traceparent())
	first, _ := rt.pickTarget(r.Context(), key)
	tgt, resp, err := rt.dispatchSubmit(r.Context(), first, key, raw, r)
	if err != nil {
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	if resp.status == http.StatusOK || resp.status == http.StatusAccepted {
		var view service.View
		if jerr := json.Unmarshal(resp.body, &view); jerr == nil {
			rt.trackDispatch(&view, tgt.name, key, raw, tenant.Name())
		}
	}
	relay(w, resp)
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	if rt.maxBody > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, rt.maxBody)
	}
	var specs []service.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&specs); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("batch exceeds the %d-byte body limit", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "decode batch: "+err.Error())
		return
	}
	if len(specs) == 0 || len(specs) > rt.maxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch must carry 1..%d specs (got %d)", rt.maxBatch, len(specs)))
		return
	}
	tenant := service.TenantFrom(r.Context())
	if err := rt.tenants.Acquire(tenant, len(specs)); err != nil {
		writeError(w, acquireStatus(w, err), err.Error())
		return
	}

	// One trace context covers the whole batch: set once before the fan-out,
	// so every sub-batch dispatch carries the same trace ID.
	r.Header.Set(obsv.TraceparentHeader, rt.traceContext(r).Child().Traceparent())

	// Partition the batch by ring owner, fan the sub-batches out to the
	// shards' own batch endpoints concurrently, then scatter the per-item
	// answers back into request order.
	items := make([]service.BatchItem, len(specs))
	groups := map[string][]int{} // shard → original indices
	keys := make([]string, len(specs))
	raws := make([]json.RawMessage, len(specs))
	for i := range specs {
		if err := specs[i].Normalize(); err != nil {
			items[i] = service.BatchItem{Status: http.StatusBadRequest, Error: err.Error()}
			continue
		}
		keys[i] = specs[i].Key()
		raw, err := json.Marshal(specs[i])
		if err != nil {
			items[i] = service.BatchItem{Status: http.StatusBadRequest, Error: err.Error()}
			continue
		}
		raws[i] = raw
		owner, ok := rt.ring.Owner(keys[i])
		if !ok {
			items[i] = service.BatchItem{Status: http.StatusBadGateway, Error: "no shard available"}
			continue
		}
		groups[owner] = append(groups[owner], i)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex // guards items writes from the group goroutines
	for shard, idxs := range groups {
		wg.Add(1)
		go func(shard string, idxs []int) {
			defer wg.Done()
			sub := make([]json.RawMessage, len(idxs))
			for i, idx := range idxs {
				sub[i] = raws[idx]
			}
			body, _ := json.Marshal(sub)
			rt.forwards[shard].Add(1)
			resp, err := rt.targets[shard].do(r.Context(), http.MethodPost, "/v1/jobs:batch", body, r)
			var got []service.BatchItem
			if err == nil && resp.status == http.StatusOK {
				if jerr := json.Unmarshal(resp.body, &got); jerr != nil || len(got) != len(idxs) {
					err = fmt.Errorf("cluster: shard %s returned a malformed batch response", shard)
				}
			} else if err == nil {
				err = fmt.Errorf("cluster: shard %s refused the batch: status %d", shard, resp.status)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				rt.proxyErrs.Add(1)
				for _, idx := range idxs {
					items[idx] = service.BatchItem{Status: http.StatusBadGateway, Error: err.Error()}
				}
				return
			}
			for i, idx := range idxs {
				items[idx] = got[i]
				if got[i].Job != nil {
					rt.trackDispatch(got[i].Job, shard, keys[idx], raws[idx], tenant.Name())
				}
			}
		}(shard, idxs)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, items)
}

// route resolves a client-visible job ID to its target and remote ID. Jobs
// the router never dispatched (e.g. submitted straight to a shard) fall back
// to their ID prefix, so a cluster fronting pre-existing shards still serves
// their jobs.
func (rt *Router) route(id string) (*target, string, *routedJob, error) {
	rt.mu.Lock()
	j := rt.jobs[id]
	shard, remote := "", id
	if j != nil {
		shard, remote = j.Shard, j.RemoteID
	} else {
		shard = shardPrefix(id)
	}
	rt.mu.Unlock()
	t, ok := rt.targets[shard]
	if !ok {
		return nil, "", nil, service.ErrNotFound
	}
	if !t.Alive() {
		return nil, "", nil, fmt.Errorf("cluster: shard %s is down", shard)
	}
	return t, remote, j, nil
}

// forwardJob proxies one buffered per-job request (GET, DELETE, trace),
// rewriting the response's job ID back to the client-visible one when a
// failover re-enqueue changed it.
func (rt *Router) forwardJob(w http.ResponseWriter, r *http.Request, method, path string) {
	id := r.PathValue("id")
	t, remote, j, err := rt.route(id)
	if err != nil {
		status := http.StatusNotFound
		if !errors.Is(err, service.ErrNotFound) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err.Error())
		return
	}
	rt.forwards[t.name].Add(1)
	resp, err := t.do(r.Context(), method, strings.Replace(path, "{id}", remote, 1), nil, r)
	if err != nil {
		rt.proxyErrs.Add(1)
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	if strings.HasSuffix(path, "/trace") {
		resp.body = rewriteTraceID(resp.body, remote, id)
	} else if resp.status < http.StatusBadRequest || resp.status == http.StatusConflict {
		var view service.View
		if jerr := json.Unmarshal(resp.body, &view); jerr == nil {
			rt.markTerminal(j, &view)
			if remote != id {
				view.ID = id
				if b, merr := json.Marshal(view); merr == nil {
					resp.body = b
				}
			}
		}
	}
	relay(w, resp)
}

// rewriteTraceID renames the trace payload's job ID (aliased jobs only).
func rewriteTraceID(body []byte, remote, id string) []byte {
	if remote == id {
		return body
	}
	var tr struct {
		ID      string          `json:"id"`
		State   service.State   `json:"state"`
		TraceID string          `json:"trace_id,omitempty"`
		Spans   json.RawMessage `json:"spans"`
	}
	if err := json.Unmarshal(body, &tr); err != nil {
		return body
	}
	tr.ID = id
	b, err := json.Marshal(tr)
	if err != nil {
		return body
	}
	return b
}

func (rt *Router) handleGet(w http.ResponseWriter, r *http.Request) {
	rt.forwardJob(w, r, http.MethodGet, "/v1/jobs/{id}")
}

func (rt *Router) handleCancel(w http.ResponseWriter, r *http.Request) {
	rt.forwardJob(w, r, http.MethodDelete, "/v1/jobs/{id}")
}

func (rt *Router) handleTrace(w http.ResponseWriter, r *http.Request) {
	rt.forwardJob(w, r, http.MethodGet, "/v1/jobs/{id}/trace")
}

func (rt *Router) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, remote, _, err := rt.route(id)
	if err != nil {
		status := http.StatusNotFound
		if !errors.Is(err, service.ErrNotFound) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err.Error())
		return
	}
	rt.forwards[t.name].Add(1)
	if err := t.proxy(w, r, "/v1/jobs/"+remote+"/events"); err != nil {
		rt.proxyErrs.Add(1)
		writeError(w, http.StatusBadGateway, err.Error())
	}
}

// handleSweepSubmit validates the sweep grid at the edge (junk grids never
// cross the wire), charges the tenant one unit per grid point, and
// dispatches the whole sweep to the ring owner of its content key, walking
// the failover order on transport errors. The owning shard runs the sweep
// controller; every completed point is content-cached there, so any shard
// that later receives the same point spec — or the resubmitted sweep after
// a failover — answers from the peer-cache lookup path instead of
// resimulating. Sweeps are deliberately not re-enqueued on shard death:
// the durable state is the per-point cache, and resubmitting the same spec
// (which hashes to a live owner) resumes from the completed points.
func (rt *Router) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	if rt.maxBody > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, rt.maxBody)
	}
	var spec service.SweepSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("spec exceeds the %d-byte body limit", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "decode sweep spec: "+err.Error())
		return
	}
	if err := spec.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	tenant := service.TenantFrom(r.Context())
	if err := rt.tenants.Acquire(tenant, spec.NumPoints()); err != nil {
		writeError(w, acquireStatus(w, err), err.Error())
		return
	}
	key := spec.Key()
	raw, err := json.Marshal(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "marshal sweep spec: "+err.Error())
		return
	}

	// The sweep joins the caller's distributed trace (or starts one here).
	// Each dispatch attempt gets its own child span ID, propagated in the
	// Traceparent header so the owning shard records it as its root's parent.
	tc := rt.traceContext(r)
	routeStart := time.Now()
	var tries []dispatchTry

	tried := map[string]bool{}
	try := func(t *target) (*bufferedResponse, error) {
		tried[t.name] = true
		rt.forwards[t.name].Add(1)
		child := tc.Child()
		r.Header.Set(obsv.TraceparentHeader, child.Traceparent())
		d := dispatchTry{shard: t.name, spanID: child.SpanID, start: time.Now()}
		resp, err := t.do(r.Context(), http.MethodPost, "/v1/sweeps", raw, r)
		d.end = time.Now()
		if err != nil {
			d.err = err.Error()
		} else {
			d.status = resp.status
		}
		tries = append(tries, d)
		return resp, err
	}
	accept := func(resp *bufferedResponse) {
		if resp.status == http.StatusAccepted || resp.status == http.StatusOK {
			var view service.SweepView
			if json.Unmarshal(resp.body, &view) == nil && view.ID != "" {
				rt.recordSweepTrace(view.ID, tc.TraceID, routeStart, tries)
			}
		}
		relay(w, resp)
	}
	if owner, ok := rt.ring.Owner(key); ok {
		if t := rt.targets[owner]; t.Alive() {
			if resp, err := try(t); err == nil {
				accept(resp)
				return
			} else {
				rt.proxyErrs.Add(1)
				rt.log.Warn("sweep dispatch failed, trying successor", "shard", owner, "err", err)
			}
		}
	}
	for _, name := range rt.ring.Owners(key, len(rt.names)) {
		t := rt.targets[name]
		if tried[name] || !t.Alive() {
			continue
		}
		if resp, err := try(t); err == nil {
			accept(resp)
			return
		} else {
			rt.proxyErrs.Add(1)
			rt.log.Warn("sweep dispatch failed, trying successor", "shard", name, "err", err)
		}
	}
	writeError(w, http.StatusBadGateway, "cluster: no shard reachable")
}

// traceContext returns the request's propagated trace context, or mints a
// fresh one when the caller sent none — the router is the trace root then.
func (rt *Router) traceContext(r *http.Request) obsv.TraceContext {
	if tc, ok := obsv.ParseTraceparent(r.Header.Get(obsv.TraceparentHeader)); ok {
		return tc
	}
	return obsv.NewTraceContext()
}

// dispatchTry records one sweep dispatch attempt for the router's trace.
type dispatchTry struct {
	shard      string
	spanID     string
	start, end time.Time
	status     int
	err        string
}

// routedSweepTrace is the router's own span tree for one dispatched sweep.
type routedSweepTrace struct {
	traceID string
	spans   []obsv.SpanView
	graft   int // index of the successful dispatch span (-1: none)
}

// maxSweepTraces bounds the router's per-sweep trace memory (FIFO eviction).
const maxSweepTraces = 256

// recordSweepTrace stores the router-side spans of an accepted sweep: a
// sweep.route root plus one dispatch span per attempt, the successful one
// marked as the graft point for the shard's tree.
func (rt *Router) recordSweepTrace(id, traceID string, start time.Time, tries []dispatchTry) {
	tr := obsv.NewTrace()
	tr.SetID(traceID)
	root := tr.Add("sweep.route", -1, start, time.Now(), obsv.S("sweep", id))
	graft := -1
	for _, d := range tries {
		attrs := []obsv.Attr{obsv.S("shard", d.shard), obsv.S("span_id", d.spanID)}
		if d.err != "" {
			attrs = append(attrs, obsv.S("error", d.err))
		} else {
			attrs = append(attrs, obsv.I("status", int64(d.status)))
		}
		idx := tr.Add("dispatch", root, d.start, d.end, attrs...)
		if d.err == "" && (d.status == http.StatusAccepted || d.status == http.StatusOK) {
			graft = idx
		}
	}
	st := &routedSweepTrace{traceID: traceID, spans: tr.Spans(), graft: graft}
	rt.mu.Lock()
	if _, exists := rt.sweepTraces[id]; !exists {
		rt.sweepTraceOrder = append(rt.sweepTraceOrder, id)
	}
	rt.sweepTraces[id] = st
	for len(rt.sweepTraceOrder) > maxSweepTraces {
		delete(rt.sweepTraces, rt.sweepTraceOrder[0])
		rt.sweepTraceOrder = rt.sweepTraceOrder[1:]
	}
	rt.mu.Unlock()
}

// handleSweepTrace reassembles the sweep's cluster-wide distributed trace:
// the router's route/dispatch spans with the owning shard's tree — itself
// the controller's spans plus every point job's engine spans — grafted under
// the successful dispatch span, all sharing one trace ID.
func (rt *Router) handleSweepTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, err := rt.routeSweep(id)
	if err != nil {
		status := http.StatusNotFound
		if !errors.Is(err, service.ErrSweepNotFound) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err.Error())
		return
	}
	rt.forwards[t.name].Add(1)
	resp, err := t.do(r.Context(), http.MethodGet, "/v1/sweeps/"+id+"/trace", nil, r)
	if err != nil {
		rt.proxyErrs.Add(1)
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	rt.mu.Lock()
	st := rt.sweepTraces[id]
	rt.mu.Unlock()
	if st == nil || resp.status != http.StatusOK {
		// A sweep the router never dispatched (or whose trace aged out):
		// the shard's own reassembled tree is the whole answer.
		relay(w, resp)
		return
	}
	var remote struct {
		ID      string          `json:"id"`
		State   service.State   `json:"state"`
		TraceID string          `json:"trace_id"`
		Spans   []obsv.SpanView `json:"spans"`
	}
	if json.Unmarshal(resp.body, &remote) != nil {
		relay(w, resp)
		return
	}
	out := append([]obsv.SpanView(nil), st.spans...)
	off := len(out)
	for _, sp := range remote.Spans {
		if sp.Parent >= 0 {
			sp.Parent += off
		} else {
			sp.Parent = st.graft
		}
		out = append(out, sp)
	}
	writeJSON(w, http.StatusOK, struct {
		ID      string          `json:"id"`
		State   service.State   `json:"state"`
		TraceID string          `json:"trace_id,omitempty"`
		Spans   []obsv.SpanView `json:"spans"`
	}{ID: id, State: remote.State, TraceID: st.traceID, Spans: out})
}

// routeSweep resolves a sweep ID to its shard purely by ID prefix: sweep
// IDs are minted by the accepting shard ("s1-sw000001"), so no ownership
// table is needed and failover never aliases them.
func (rt *Router) routeSweep(id string) (*target, error) {
	t, ok := rt.targets[sweepShardPrefix(id)]
	if !ok {
		return nil, service.ErrSweepNotFound
	}
	if !t.Alive() {
		return nil, fmt.Errorf("cluster: shard %s is down", t.name)
	}
	return t, nil
}

// forwardSweep proxies one buffered per-sweep request (GET, DELETE).
func (rt *Router) forwardSweep(w http.ResponseWriter, r *http.Request, method string) {
	id := r.PathValue("id")
	t, err := rt.routeSweep(id)
	if err != nil {
		status := http.StatusNotFound
		if !errors.Is(err, service.ErrSweepNotFound) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err.Error())
		return
	}
	rt.forwards[t.name].Add(1)
	resp, err := t.do(r.Context(), method, "/v1/sweeps/"+id, nil, r)
	if err != nil {
		rt.proxyErrs.Add(1)
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	relay(w, resp)
}

func (rt *Router) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	rt.forwardSweep(w, r, http.MethodGet)
}

func (rt *Router) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	rt.forwardSweep(w, r, http.MethodDelete)
}

func (rt *Router) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, err := rt.routeSweep(id)
	if err != nil {
		status := http.StatusNotFound
		if !errors.Is(err, service.ErrSweepNotFound) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err.Error())
		return
	}
	rt.forwards[t.name].Add(1)
	if err := t.proxy(w, r, "/v1/sweeps/"+id+"/events"); err != nil {
		rt.proxyErrs.Add(1)
		writeError(w, http.StatusBadGateway, err.Error())
	}
}

// handleSweepList merges the sweep lists of every alive shard. Sweep IDs
// never alias (no failover re-enqueue), so the merge is a plain union.
func (rt *Router) handleSweepList(w http.ResponseWriter, r *http.Request) {
	alive := rt.aliveTargets()
	lists := make([][]service.SweepView, len(alive))
	var wg sync.WaitGroup
	for i, t := range alive {
		wg.Add(1)
		go func(i int, t *target) {
			defer wg.Done()
			resp, err := t.do(r.Context(), http.MethodGet, "/v1/sweeps", nil, r)
			if err != nil || resp.status != http.StatusOK {
				rt.proxyErrs.Add(1)
				return
			}
			var views []service.SweepView
			if json.Unmarshal(resp.body, &views) == nil {
				lists[i] = views
			}
		}(i, t)
	}
	wg.Wait()

	merged := make([]service.SweepView, 0, 16)
	for i := range alive {
		merged = append(merged, lists[i]...)
	}
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].CreatedAt != merged[b].CreatedAt {
			return merged[a].CreatedAt < merged[b].CreatedAt
		}
		return merged[a].ID < merged[b].ID
	})
	writeJSON(w, http.StatusOK, merged)
}

func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	// Per-shard remote→client ID aliases, for jobs moved by failover.
	alias := map[string]map[string]string{}
	rt.mu.Lock()
	for _, j := range rt.jobs {
		if j.RemoteID != j.ID {
			m := alias[j.Shard]
			if m == nil {
				m = map[string]string{}
				alias[j.Shard] = m
			}
			m[j.RemoteID] = j.ID
		}
	}
	rt.mu.Unlock()

	alive := rt.aliveTargets()
	lists := make([][]service.View, len(alive))
	var wg sync.WaitGroup
	for i, t := range alive {
		wg.Add(1)
		go func(i int, t *target) {
			defer wg.Done()
			resp, err := t.do(r.Context(), http.MethodGet, "/v1/jobs", nil, r)
			if err != nil || resp.status != http.StatusOK {
				rt.proxyErrs.Add(1)
				return
			}
			var views []service.View
			if json.Unmarshal(resp.body, &views) == nil {
				lists[i] = views
			}
		}(i, t)
	}
	wg.Wait()

	merged := make([]service.View, 0, 64)
	for i, t := range alive {
		for _, v := range lists[i] {
			if clientID, ok := alias[t.name][v.ID]; ok {
				v.ID = clientID
			}
			merged = append(merged, v)
		}
	}
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].CreatedAt != merged[b].CreatedAt {
			return merged[a].CreatedAt < merged[b].CreatedAt
		}
		return merged[a].ID < merged[b].ID
	})
	writeJSON(w, http.StatusOK, merged)
}

func (rt *Router) handleCache(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	for _, t := range rt.aliveTargets() {
		if payload, ok := t.cacheLookup(r.Context(), key); ok {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(payload)
			return
		}
	}
	writeError(w, http.StatusNotFound, "key not cached")
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	shards := make(map[string]string, len(rt.names))
	up := 0
	for _, name := range rt.names {
		if rt.targets[name].Alive() {
			shards[name] = "up"
			up++
		} else {
			shards[name] = "down"
		}
	}
	body := map[string]any{"status": "ok", "shards": shards}
	if up == 0 {
		body["status"] = "no shards available"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}
