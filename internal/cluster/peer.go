package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"ecripse/internal/service"
)

// Shard declares one member of the cluster. Exactly one of URL and Local is
// used: a remote shard is reached over HTTP at URL, while Local short-
// circuits dispatch into an in-process handler (the embedded -peers mode,
// where the node itself is one of the shards it routes to).
type Shard struct {
	// Name is the shard's ring identity; it must match the shard's
	// -node-id so job-ID prefixes ("s1-j000001") route back to it.
	Name string
	// URL is the shard's base URL, e.g. "http://10.0.0.2:8080". Ignored
	// when Local is set.
	URL string
	// Local, when non-nil, dispatches to this handler instead of the
	// network — zero-copy self-routing for the embedded mode.
	Local http.Handler
}

// target is the dispatch-side view of a shard: a name plus a way to issue a
// request, either over the wire or straight into a local handler. It also
// carries the health state the prober maintains.
type target struct {
	name  string
	url   string // "" for local
	local http.Handler
	hc    *http.Client

	mu    sync.Mutex
	alive bool
	fails int // consecutive failed probes
}

func newTarget(s Shard, hc *http.Client) *target {
	return &target{
		name:  s.Name,
		url:   strings.TrimRight(s.URL, "/"),
		local: s.Local,
		hc:    hc,
		alive: true, // optimistic: the prober demotes, never the constructor
	}
}

// isLocal reports whether dispatch bypasses the network.
func (t *target) isLocal() bool { return t.local != nil }

// Alive reports the prober's current verdict. Local targets are always
// alive — a node does not probe itself.
func (t *target) Alive() bool {
	if t.isLocal() {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.alive
}

// markProbe folds one probe outcome into the consecutive-failure counter and
// reports the resulting transition: +1 for down→up, -1 for up→down once the
// failure threshold is crossed, 0 for no change.
func (t *target) markProbe(ok bool, threshold int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ok {
		t.fails = 0
		if !t.alive {
			t.alive = true
			return +1
		}
		return 0
	}
	t.fails++
	if t.alive && t.fails >= threshold {
		t.alive = false
		return -1
	}
	return 0
}

// bufferedResponse is a fully-read shard response: status, headers and body.
type bufferedResponse struct {
	status int
	header http.Header
	body   []byte
}

// respRecorder captures a local handler's response so local dispatch can be
// inspected exactly like a buffered remote one. It implements just enough of
// http.ResponseWriter for the service's JSON endpoints.
type respRecorder struct {
	status int
	header http.Header
	body   bytes.Buffer
}

func newRespRecorder() *respRecorder { return &respRecorder{header: make(http.Header)} }

func (r *respRecorder) Header() http.Header { return r.header }

func (r *respRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
}

func (r *respRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.body.Write(b)
}

func (r *respRecorder) response() *bufferedResponse {
	status := r.status
	if status == 0 {
		status = http.StatusOK
	}
	return &bufferedResponse{status: status, header: r.header, body: r.body.Bytes()}
}

// do issues one buffered request against the target: method and path (plus
// optional body) with the cluster-forwarded marker set and selected client
// headers carried over. src may be nil (prober and redispatch traffic).
func (t *target) do(ctx context.Context, method, path string, body []byte, src *http.Request) (*bufferedResponse, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, t.url+path, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set(service.ForwardedHeader, "1")
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if src != nil {
		// Pass the caller's credentials through: the entry point already
		// charged the tenant, but shards that enforce auth still demand a
		// valid key on forwarded traffic. Traceparent propagates the
		// distributed-trace context so shard spans join the router's tree.
		for _, h := range []string{"Authorization", "X-API-Key", "Accept", "Traceparent"} {
			if v := src.Header.Get(h); v != "" {
				req.Header.Set(h, v)
			}
		}
	}
	if t.isLocal() {
		req.URL.Path = path // no base URL to resolve against
		rec := newRespRecorder()
		t.local.ServeHTTP(rec, req)
		return rec.response(), nil
	}
	resp, err := t.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxShardResponse))
	if err != nil {
		return nil, err
	}
	return &bufferedResponse{status: resp.StatusCode, header: resp.Header, body: b}, nil
}

// maxShardResponse bounds one buffered shard response. Job views carry the
// full result payload (estimate series), which stays well under this.
const maxShardResponse = 64 << 20

// cacheLookup probes the shard's result cache for a content key.
func (t *target) cacheLookup(ctx context.Context, key string) (json.RawMessage, bool) {
	resp, err := t.do(ctx, http.MethodGet, "/v1/cache/"+key, nil, nil)
	if err != nil || resp.status != http.StatusOK {
		return nil, false
	}
	return resp.body, true
}

// healthz probes the shard's liveness endpoint. Any HTTP response — even 503
// while draining — proves the process is up; only transport errors count as
// failures, because a draining shard still answers status queries for the
// jobs it owns.
func (t *target) healthz(ctx context.Context) error {
	_, err := t.do(ctx, http.MethodGet, "/healthz", nil, nil)
	return err
}

// metricsJSON fetches the shard's expvar-style metrics snapshot.
func (t *target) metricsJSON(ctx context.Context) (*service.Metrics, error) {
	resp, err := t.do(ctx, http.MethodGet, "/metrics", nil, nil)
	if err != nil {
		return nil, err
	}
	if resp.status != http.StatusOK {
		return nil, fmt.Errorf("cluster: shard %s /metrics: status %d", t.name, resp.status)
	}
	var m service.Metrics
	if err := json.Unmarshal(resp.body, &m); err != nil {
		return nil, fmt.Errorf("cluster: shard %s /metrics: %w", t.name, err)
	}
	return &m, nil
}

// proxy streams a remote response (SSE /events) straight to the client,
// flushing after every read so progress events arrive as they are produced.
func (t *target) proxy(w http.ResponseWriter, r *http.Request, path string) error {
	if t.isLocal() {
		// Local SSE cannot be buffered (it runs until the job ends): hand the
		// client's writer to the handler directly, path rewritten.
		r2 := r.Clone(r.Context())
		r2.URL.Path = path
		r2.Header.Set(service.ForwardedHeader, "1")
		t.local.ServeHTTP(w, r2)
		return nil
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, t.url+path, nil)
	if err != nil {
		return err
	}
	req.Header.Set(service.ForwardedHeader, "1")
	for _, h := range []string{"Authorization", "X-API-Key", "Accept", "Last-Event-ID"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	// A bare client without the overall timeout: an SSE stream legitimately
	// outlives any request deadline, and the inbound request's context
	// already cancels the proxy when the client disconnects.
	stream := &http.Client{Transport: t.hc.Transport}
	resp, err := stream.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return nil // client went away
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			return nil // io.EOF or upstream close: stream is over either way
		}
	}
}

// defaultHTTPClient is the transport used for shard traffic when the caller
// does not supply one. Short timeouts: shards are LAN peers and every router
// request is retried by clients, so failing fast beats queueing.
func defaultHTTPClient() *http.Client {
	return &http.Client{Timeout: 30 * time.Second}
}
