package cluster

import (
	"fmt"
	"testing"
)

// syntheticKeys returns n distinct hex-ish keys shaped like spec hashes.
func syntheticKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", uint64(i)*0x9e3779b97f4a7c15+0x6a09e667f3bcc908)
	}
	return keys
}

// ownershipFixture pins ring placement for a 3-node, 64-vnode ring. The
// values were produced by this implementation and are asserted verbatim so
// any change to the hash, the vnode naming or the search breaks loudly —
// the router's dispatch tests and the failover tests both lean on exactly
// this placement function.
func ownershipFixture() (nodes []string, vnodes int, table [][3]string) {
	return []string{"s1", "s2", "s3"}, 64, [][3]string{
		{"0000000000000000000000000000000000000000000000000000000000000000", "s1", "s3"},
		{"6a09e667f3bcc908b2fb1366ea957d3e3adec17512774e31a7dbbf8e076a417f", "s2", "s1"},
		{"bb67ae8584caa73b25742d7078b83b8944da2ecfa268fb7d8ee8a36a20c8cf2f", "s1", "s2"},
		{"3c6ef372fe94f82ba54ff53a5f1d36f1e8c7b156e2b1d4b8b5d2c5a9f3e1d086", "s3", "s1"},
		{"a54ff53a5f1d36f16b0c8d2e4f7a9b3c1d5e7f90a2b4c6d8e0f1a3b5c7d9eb0d", "s1", "s3"},
		{"510e527fade682d19b05688c2b3e6c1f8d4a7e2b5c8f1a4d7b0e3c6f9a2d5b8e", "s1", "s2"},
		{"9b05688c2b3e6c1f510e527fade682d1f8d4a7e2b5c8f1a4d7b0e3c6f9a2d5b8", "s1", "s2"},
		{"1f83d9abfb41bd6b5be0cd19137e2179a2b4c6d8e0f1a3b5c7d9eb0d6a09e667", "s1", "s3"},
	}
}

func TestRingOwnershipFixture(t *testing.T) {
	nodes, vnodes, table := ownershipFixture()
	r := NewRing(vnodes)
	for _, n := range nodes {
		r.Add(n)
	}
	for _, row := range table {
		key, wantOwner, wantNext := row[0], row[1], row[2]
		owners := r.Owners(key, 2)
		if len(owners) != 2 {
			t.Fatalf("Owners(%s, 2) returned %v", key[:8], owners)
		}
		if owners[0] != wantOwner || owners[1] != wantNext {
			t.Errorf("key %s…: owners = %v, fixture wants [%s %s]", key[:8], owners, wantOwner, wantNext)
		}
		// The advertised failover property: the second owner is exactly who
		// owns the key once the first is removed from the ring.
		r.Remove(owners[0])
		succ, ok := r.Owner(key)
		if !ok || succ != wantNext {
			t.Errorf("key %s…: successor after removing %s = %s, want %s", key[:8], owners[0], succ, wantNext)
		}
		r.Add(owners[0])
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(0) // DefaultVirtualNodes
	nodes := []string{"s1", "s2", "s3"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := map[string]int{}
	keys := syntheticKeys(30000)
	for _, k := range keys {
		owner, ok := r.Owner(k)
		if !ok {
			t.Fatal("Owner on a populated ring returned !ok")
		}
		counts[owner]++
	}
	ideal := float64(len(keys)) / float64(len(nodes))
	for _, n := range nodes {
		share := float64(counts[n]) / ideal
		if share < 0.70 || share > 1.30 {
			t.Errorf("node %s owns %.2fx its ideal share (%d keys) — ring is unbalanced: %v",
				n, share, counts[n], counts)
		}
	}
}

func TestRingMinimalRemappingOnLeave(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"s1", "s2", "s3", "s4"} {
		r.Add(n)
	}
	keys := syntheticKeys(20000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}

	r.Remove("s2")
	moved := 0
	for _, k := range keys {
		after, _ := r.Owner(k)
		if before[k] == "s2" {
			// Every orphaned key must land somewhere else…
			if after == "s2" {
				t.Fatalf("key %s… still owned by the removed node", k[:8])
			}
			moved++
		} else if after != before[k] {
			// …and no key owned by a survivor may move at all.
			t.Fatalf("key %s… moved %s→%s though its owner never left", k[:8], before[k], after)
		}
	}
	if moved == 0 {
		t.Fatal("removed node owned no keys — balance test should have caught this")
	}

	// Re-adding restores the exact original placement: membership is the
	// only input to ownership.
	r.Add("s2")
	for _, k := range keys {
		if got, _ := r.Owner(k); got != before[k] {
			t.Fatalf("key %s… owner %s after rejoin, want %s", k[:8], got, before[k])
		}
	}
}

func TestRingMinimalRemappingOnJoin(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"s1", "s2", "s3", "s4"} {
		r.Add(n)
	}
	keys := syntheticKeys(20000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}

	r.Add("s5")
	moved := 0
	for _, k := range keys {
		after, _ := r.Owner(k)
		if after != before[k] {
			if after != "s5" {
				t.Fatalf("key %s… moved %s→%s on join — only moves onto the joiner are minimal", k[:8], before[k], after)
			}
			moved++
		}
	}
	// The joiner should take roughly 1/5 of the keyspace; well under the
	// 1/4-per-node it would disturb under naive modulo hashing.
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.32 {
		t.Errorf("join moved %.1f%% of keys, want ≈20%%", 100*frac)
	}
}

func TestRingEdgeCases(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Owner("anything"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if got := r.Owners("anything", 2); got != nil {
		t.Fatalf("empty ring Owners = %v, want nil", got)
	}

	r.Add("s1")
	r.Add("s1") // duplicate is a no-op
	if r.Len() != 1 {
		t.Fatalf("Len = %d after duplicate Add, want 1", r.Len())
	}
	if owners := r.Owners("k", 5); len(owners) != 1 || owners[0] != "s1" {
		t.Fatalf("Owners on 1-node ring = %v, want [s1]", owners)
	}
	r.Remove("absent") // no-op
	if !r.Has("s1") || r.Has("s2") {
		t.Fatal("Has is wrong")
	}

	r.Remove("s1")
	if r.Len() != 0 {
		t.Fatalf("Len = %d after removing the only node, want 0", r.Len())
	}
	if _, ok := r.Owner("k"); ok {
		t.Fatal("emptied ring still claims an owner")
	}
}
