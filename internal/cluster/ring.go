// Package cluster turns several ecripsed processes into one logical
// yield-analysis service. It partitions jobs across shards by their
// content-addressed spec hash over a consistent-hash ring (so a spec always
// lands on the same shard and a repeat submit through any entry point is a
// cache hit there), forwards the single-node HTTP API to the owning shard,
// fans batch submissions out shard-by-shard, probes peer health, and
// re-enqueues a dead shard's dispatched jobs onto its ring successor.
//
// Two deployments share the same dispatch code:
//
//   - a dedicated coordinator (cmd/ecripse-router) that owns no jobs itself
//     and proxies everything to its shards, and
//   - the embedded -peers mode of ecripsed, where every node is an entry
//     point: submits it owns run locally, the rest are forwarded.
//
// Determinism is untouched: routing only chooses *where* a spec runs. The
// spec hash, the estimator bits and the cached payloads are byte-identical
// to the single-node service.
package cluster

import (
	"sort"
	"strconv"
	"sync"
)

// DefaultVirtualNodes is the per-node virtual-point count of a Ring when the
// caller passes 0. 128 points per node keeps the largest/smallest ownership
// arc within a few percent of ideal for small clusters (see ring_test.go)
// while membership changes stay O(vnodes·log n).
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring with virtual nodes. Keys (hex spec hashes)
// map to the node owning the first ring point at or after the key's hash;
// adding or removing a node only remaps the arcs adjacent to its points, so
// membership changes move a minimal fraction of keys.
//
// All methods are safe for concurrent use.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []ringPoint // sorted by hash
	nodes  map[string]struct{}
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing creates an empty ring with the given virtual-node count per node
// (0 selects DefaultVirtualNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]struct{})}
}

// ringHash maps a string onto the ring: 64-bit FNV-1a followed by a full
// avalanche finalizer. Hand-rolled so ring placement is an explicit,
// platform-independent function of the node name and key bytes — the
// ownership fixture in ring_test.go pins it. The finalizer matters: bare
// FNV-1a of short structured inputs ("s1#17") leaves the high bits — the
// bits the sorted ring search keys on — poorly mixed, and the resulting
// point clustering skews node ownership by 50% or more (see TestRingBalance).
func ringHash(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	// Murmur3-style 64-bit finalizer: every input bit diffuses to every
	// output bit.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Add inserts a node's virtual points. Adding a present node is a no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: ringHash(node + "#" + strconv.Itoa(i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node's virtual points; keys it owned fall to the next
// point clockwise — its ring successors. Removing an absent node is a no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports whether the node is currently a ring member.
func (r *Ring) Has(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.nodes[node]
	return ok
}

// Nodes returns the current members in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of member nodes.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Owner returns the node owning key: the first ring point at or after the
// key's hash, wrapping at the top. ok is false on an empty ring.
func (r *Ring) Owner(key string) (node string, ok bool) {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return "", false
	}
	return owners[0], true
}

// Owners returns up to n distinct nodes in ring order starting at the key's
// owner: the owner itself, then its successors. This is the failover order —
// when the owner is down, the next entry is exactly the node that would own
// the key were the owner removed from the ring.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}
