package cluster

import (
	"context"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"ecripse/internal/obsv"
	"ecripse/internal/service"
)

// RouterStats is the router's own counter block inside the /metrics JSON.
type RouterStats struct {
	Shards       int              `json:"shards"`
	ShardsUp     int              `json:"shards_up"`
	JobsTracked  int              `json:"jobs_tracked"`
	Forwards     map[string]int64 `json:"forwards"`
	CacheRouted  int64            `json:"cache_routed"`
	Redispatched int64            `json:"redispatched"`
	ProxyErrors  int64            `json:"proxy_errors"`
	DownEvents   int64            `json:"down_events"`
	AppendErrors int64            `json:"append_errors,omitempty"`
}

// ClusterMetrics is the JSON body of the router's /metrics endpoint: the
// router's own dispatch counters plus every reachable shard's full snapshot.
type ClusterMetrics struct {
	Router RouterStats                 `json:"router"`
	Shards map[string]*service.Metrics `json:"shards"`
	// ShardErrors reports shards whose snapshot could not be fetched.
	ShardErrors map[string]string `json:"shard_errors,omitempty"`
}

func (rt *Router) stats() RouterStats {
	rs := RouterStats{
		Shards:       len(rt.names),
		Forwards:     make(map[string]int64, len(rt.names)),
		CacheRouted:  rt.cacheRouted.Load(),
		Redispatched: rt.redispatched.Load(),
		ProxyErrors:  rt.proxyErrs.Load(),
		DownEvents:   rt.downEvents.Load(),
		AppendErrors: rt.appendErrs.Load(),
	}
	for _, name := range rt.names {
		rs.Forwards[name] = rt.forwards[name].Load()
		if rt.targets[name].Alive() {
			rs.ShardsUp++
		}
	}
	rt.mu.Lock()
	rs.JobsTracked = len(rt.jobs)
	rt.mu.Unlock()
	return rs
}

// collectShardMetrics fetches every alive shard's JSON snapshot concurrently.
func (rt *Router) collectShardMetrics(ctx context.Context) (map[string]*service.Metrics, map[string]string) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	snaps := make(map[string]*service.Metrics, len(rt.names))
	errs := map[string]string{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, name := range rt.names {
		t := rt.targets[name]
		if !t.Alive() {
			errs[name] = "shard down"
			continue
		}
		wg.Add(1)
		go func(name string, t *target) {
			defer wg.Done()
			m, err := t.metricsJSON(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs[name] = err.Error()
				return
			}
			snaps[name] = m
		}(name, t)
	}
	wg.Wait()
	if len(errs) == 0 {
		errs = nil
	}
	return snaps, errs
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = rt.WritePrometheus(r.Context(), w)
		return
	}
	snaps, errs := rt.collectShardMetrics(r.Context())
	writeJSON(w, http.StatusOK, ClusterMetrics{Router: rt.stats(), Shards: snaps, ShardErrors: errs})
}

// WritePrometheus renders the cluster roll-up in the Prometheus text
// exposition format: the router's own ecripse_router_* series, one up gauge
// per shard, and the key per-shard ecripsed_* series re-emitted with a
// shard label so one scrape of the router shows the whole cluster.
func (rt *Router) WritePrometheus(ctx context.Context, w io.Writer) error {
	rs := rt.stats()
	snaps, _ := rt.collectShardMetrics(ctx)
	p := obsv.NewPromWriter(w)

	p.Gauge("ecripse_router_shards", "Shards configured in the ring.", float64(rs.Shards))
	p.Gauge("ecripse_router_jobs_tracked",
		"Jobs in the router's dispatch table.", float64(rs.JobsTracked))
	p.Counter("ecripse_router_cache_routed_total",
		"Submits steered to a non-owner shard that already held the cached result.", float64(rs.CacheRouted))
	p.Counter("ecripse_router_redispatched_total",
		"Jobs re-enqueued onto a ring successor after their shard died.", float64(rs.Redispatched))
	p.Counter("ecripse_router_proxy_errors_total",
		"Shard requests that failed in transit.", float64(rs.ProxyErrors))
	p.Counter("ecripse_router_shard_down_events_total",
		"Up-to-down shard transitions observed by the health prober.", float64(rs.DownEvents))

	for _, name := range rt.names {
		lbl := [2]string{"shard", name}
		up := 0.0
		if rt.targets[name].Alive() {
			up = 1
		}
		p.Gauge("ecripse_router_shard_up",
			"1 while the shard answers health probes, else 0.", up, lbl)
		p.Counter("ecripse_router_forwards_total",
			"Requests dispatched to the shard.", float64(rs.Forwards[name]), lbl)

		m, ok := snaps[name]
		if !ok {
			continue
		}
		for _, st := range []service.State{service.StateQueued, service.StateRunning,
			service.StateDone, service.StateCanceled, service.StateFailed} {
			p.Gauge("ecripsed_jobs",
				"Jobs currently known to the shard, by lifecycle state.",
				float64(m.Jobs[st]), lbl, [2]string{"state", string(st)})
		}
		p.Gauge("ecripsed_queue_depth", "Jobs waiting in the shard's queue.",
			float64(m.QueueDepth), lbl)
		p.Gauge("ecripsed_workers_busy", "Workers executing a job on the shard.",
			float64(m.WorkersBusy), lbl)
		p.Counter("ecripsed_cache_hits_total", "Result-cache hits on the shard.",
			float64(m.CacheHits), lbl)
		p.Counter("ecripsed_cache_misses_total", "Result-cache misses on the shard.",
			float64(m.CacheMisses), lbl)
		p.Counter("ecripsed_remote_cache_hits_total",
			"Shard submits answered from a peer's result cache.",
			float64(m.RemoteCacheHits), lbl)
		p.Counter("ecripsed_sims_total",
			"Transistor-level simulations consumed on the shard.",
			float64(m.SimsTotal), lbl)
		p.Gauge("ecripsed_uptime_seconds", "Seconds since the shard started.",
			m.UptimeSeconds, lbl)
		if len(m.HealthViolations) > 0 {
			rules := make([]string, 0, len(m.HealthViolations))
			for rule := range m.HealthViolations {
				rules = append(rules, rule)
			}
			sort.Strings(rules)
			for _, rule := range rules {
				p.Counter("ecripsed_health_violations_total",
					"Statistical-health watchdog violations on the shard, by rule.",
					float64(m.HealthViolations[rule]), lbl, [2]string{"rule", rule})
			}
		}
	}
	return p.Err()
}
