package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	"ecripse/internal/service"
)

// probeLoop drives periodic health probes until Close. Each tick probes
// every remote shard, folds the outcomes into the ring, and re-enqueues any
// journaled job still mapped to a dead shard onto its ring successor.
func (rt *Router) probeLoop() {
	defer rt.probeWG.Done()
	ticker := time.NewTicker(rt.probeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.probeStop:
			return
		case <-ticker.C:
			rt.ProbeOnce(context.Background())
		}
	}
}

// ProbeOnce runs one full probe round: every remote shard's /healthz under
// the probe timeout, ring membership updates on up/down transitions, then a
// redispatch sweep for jobs stranded on dead shards. Exported so tests (and
// operators embedding the router) can drive failover deterministically.
func (rt *Router) ProbeOnce(ctx context.Context) {
	for _, name := range rt.names {
		t := rt.targets[name]
		if t.isLocal() {
			continue // a node never probes itself
		}
		pctx, cancel := context.WithTimeout(ctx, rt.probeTimeout)
		err := t.healthz(pctx)
		cancel()
		switch t.markProbe(err == nil, rt.probeFails) {
		case -1:
			rt.downEvents.Add(1)
			rt.ring.Remove(name)
			rt.log.Warn("shard down, removed from ring", "shard", name, "err", err)
		case +1:
			rt.ring.Add(name)
			rt.log.Info("shard recovered, restored to ring", "shard", name)
		}
	}
	rt.redispatchStranded(ctx)
}

// redispatchStranded re-enqueues every non-terminal job whose shard is not
// alive onto the key's current ring owner — with the dead shard removed,
// that is exactly its ring successor. The sweep runs every probe round, so a
// redispatch that fails (successor briefly unreachable) is retried rather
// than lost. Specs are deterministic, so the re-run reproduces the result
// the dead shard would have produced; if any surviving shard has the key
// cached the re-enqueue is answered from cache without recomputation.
func (rt *Router) redispatchStranded(ctx context.Context) {
	rt.mu.Lock()
	var stranded []*routedJob
	for _, j := range rt.order {
		if j.Terminal || j.Spec == nil {
			continue
		}
		t, ok := rt.targets[j.Shard]
		if !ok || !t.Alive() {
			stranded = append(stranded, j)
		}
	}
	rt.mu.Unlock()
	for _, j := range stranded {
		rt.redispatch(ctx, j)
	}
}

// redispatch moves one stranded job: prefer a shard that already holds the
// cached result, else the ring owner, and re-submit the journaled spec as
// cluster-internal traffic re-authenticated as the original tenant (never
// re-charged — the client paid at the original submit).
func (rt *Router) redispatch(ctx context.Context, j *routedJob) {
	tgt, _ := rt.pickTarget(ctx, j.Key)
	if tgt == nil {
		rt.log.Warn("redispatch: no shard available", "job", j.ID)
		return
	}
	var src *http.Request
	if key, ok := rt.tenants.KeyFor(j.Tenant); ok {
		src = &http.Request{Header: http.Header{}}
		src.Header.Set("Authorization", "Bearer "+key)
	}
	rt.forwards[tgt.name].Add(1)
	resp, err := tgt.do(ctx, http.MethodPost, "/v1/jobs", j.Spec, src)
	if err != nil {
		rt.proxyErrs.Add(1)
		rt.log.Warn("redispatch failed", "job", j.ID, "shard", tgt.name, "err", err)
		return
	}
	if resp.status != http.StatusOK && resp.status != http.StatusAccepted {
		rt.log.Warn("redispatch refused", "job", j.ID, "shard", tgt.name, "status", resp.status)
		return
	}
	var view service.View
	if err := json.Unmarshal(resp.body, &view); err != nil {
		rt.log.Warn("redispatch: malformed view", "job", j.ID, "err", err)
		return
	}
	rt.mu.Lock()
	j.Shard, j.RemoteID = tgt.name, view.ID
	rt.mu.Unlock()
	rt.redispatched.Add(1)
	rt.log.Info("redispatched stranded job", "job", j.ID, "shard", tgt.name, "remote", view.ID)
	if rt.st != nil {
		if err := rt.st.AppendOwner(j.ID, tgt.name, view.ID); err != nil {
			rt.appendErrs.Add(1)
			rt.log.Error("journal placement failed", "job", j.ID, "err", err)
		}
	}
	rt.markTerminal(j, &view) // a cache-answered re-enqueue is born done
}
