package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ecripse/internal/montecarlo"
	"ecripse/internal/obsv"
	"ecripse/internal/service"
	"ecripse/internal/store"
)

// shardFixture is one real ecripsed shard behind a test listener: the
// service, its HTTP handler and the server it answers on.
type shardFixture struct {
	name string
	svc  *service.Service
	api  *service.Server
	srv  *httptest.Server
}

// newShard boots a shard named name whose runner is run (nil selects an
// instant fake that charges 100 sims).
func newShard(t *testing.T, name string, run func(context.Context, service.JobSpec, *montecarlo.Counter) (*service.RunResult, error)) *shardFixture {
	t.Helper()
	if run == nil {
		run = func(_ context.Context, _ service.JobSpec, c *montecarlo.Counter) (*service.RunResult, error) {
			c.Add(100)
			return &service.RunResult{}, nil
		}
	}
	svc := service.New(service.Config{
		Workers:       2,
		QueueCapacity: 64,
		CacheCapacity: 64,
		NodeID:        name,
		RunFunc:       run,
	})
	api := service.NewServer(svc)
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { _ = svc.Drain(context.Background()) })
	return &shardFixture{name: name, svc: svc, api: api, srv: srv}
}

// newCluster boots n remote shards plus a dedicated router fronting them,
// probing disabled (tests drive ProbeOnce themselves).
func newCluster(t *testing.T, n int, cfg Config) (*Router, *httptest.Server, []*shardFixture) {
	t.Helper()
	shards := make([]*shardFixture, n)
	for i := range shards {
		shards[i] = newShard(t, fmt.Sprintf("s%d", i+1), nil)
		cfg.Shards = append(cfg.Shards, Shard{Name: shards[i].name, URL: shards[i].srv.URL})
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)
	t.Cleanup(rt.Close)
	return rt, front, shards
}

// specKey normalizes a copy of spec and returns its content key.
func specKey(t *testing.T, spec service.JobSpec) string {
	t.Helper()
	tmp := spec
	if err := tmp.Normalize(); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	return tmp.Key()
}

// specOwnedBy scans seeds for a spec whose ring owner is the wanted shard.
func specOwnedBy(t *testing.T, rt *Router, want string) service.JobSpec {
	t.Helper()
	for seed := int64(1); seed < 4096; seed++ {
		spec := service.JobSpec{Seed: seed}
		if owner, ok := rt.ring.Owner(specKey(t, spec)); ok && owner == want {
			return spec
		}
	}
	t.Fatalf("no seed below 4096 maps to shard %s", want)
	return service.JobSpec{}
}

// postJSON posts v to url with optional bearer key and decodes the response.
func postJSON(t *testing.T, url, key string, v any, out any) (int, http.Header) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, _ := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode POST %s response: %v", url, err)
		}
	}
	return resp.StatusCode, resp.Header
}

func getJSON(t *testing.T, url, key string, out any) int {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode GET %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// waitDone polls the router for a job until it reaches a terminal state.
func waitDone(t *testing.T, base, key, id string, timeout time.Duration) service.View {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var v service.View
		if st := getJSON(t, base+"/v1/jobs/"+id, key, &v); st == http.StatusOK && v.State.Terminal() {
			return v
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s not terminal after %v", id, timeout)
	return service.View{}
}

func TestRouterDispatchByOwnership(t *testing.T) {
	rt, front, _ := newCluster(t, 3, Config{})
	for seed := int64(1); seed <= 12; seed++ {
		spec := service.JobSpec{Seed: seed}
		owner, _ := rt.ring.Owner(specKey(t, spec))
		var view service.View
		status, _ := postJSON(t, front.URL+"/v1/jobs", "", spec, &view)
		if status != http.StatusAccepted && status != http.StatusOK {
			t.Fatalf("seed %d: submit status %d", seed, status)
		}
		if got := shardPrefix(view.ID); got != owner {
			t.Errorf("seed %d: job %s landed on %s, ring owner is %s", seed, view.ID, got, owner)
		}
		done := waitDone(t, front.URL, "", view.ID, 5*time.Second)
		if done.State != service.StateDone {
			t.Errorf("seed %d: state %s, want done", seed, done.State)
		}
	}
	// Every shard should have seen work across 12 distinct specs.
	rs := rt.stats()
	for name, n := range rs.Forwards {
		if n == 0 {
			t.Errorf("shard %s received no dispatches: %v", name, rs.Forwards)
		}
	}
	if rs.JobsTracked != 12 {
		t.Errorf("jobs tracked = %d, want 12", rs.JobsTracked)
	}
}

func TestRouterCrossNodeCacheHit(t *testing.T) {
	rt, front, shards := newCluster(t, 3, Config{})

	// Find a spec owned by s1 and compute it directly on s2, bypassing the
	// router — the cluster now holds the result on a non-owner shard.
	spec := specOwnedBy(t, rt, "s1")
	var first service.View
	if st, _ := postJSON(t, shards[1].srv.URL+"/v1/jobs", "", spec, &first); st != http.StatusAccepted && st != http.StatusOK {
		t.Fatalf("direct submit to s2: status %d", st)
	}
	waitDone(t, shards[1].srv.URL, "", first.ID, 5*time.Second)

	// The same spec submitted through the router must be steered to s2 and
	// answered from its cache without recomputation.
	var view service.View
	if st, _ := postJSON(t, front.URL+"/v1/jobs", "", spec, &view); st != http.StatusOK && st != http.StatusAccepted {
		t.Fatalf("router submit: status %d", st)
	}
	done := waitDone(t, front.URL, "", view.ID, 5*time.Second)
	if shardPrefix(view.ID) != "s2" {
		t.Errorf("job %s not steered to the cache holder s2", view.ID)
	}
	if !done.Cached {
		t.Errorf("view.Cached = false, want a cache answer")
	}
	if got := rt.cacheRouted.Load(); got != 1 {
		t.Errorf("cacheRouted = %d, want 1", got)
	}

	// The cluster-wide cache endpoint serves the key from any entry point.
	key := specKey(t, spec)
	if st := getJSON(t, front.URL+"/v1/cache/"+key, "", nil); st != http.StatusOK {
		t.Errorf("GET /v1/cache/%s: status %d, want 200", key[:8], st)
	}
	if st := getJSON(t, front.URL+"/v1/cache/"+strings.Repeat("0", 64), "", nil); st != http.StatusNotFound {
		t.Errorf("GET /v1/cache/<absent>: status %d, want 404", st)
	}
}

func TestRouterBatchScatters(t *testing.T) {
	rt, front, _ := newCluster(t, 3, Config{})
	specs := []service.JobSpec{
		{Seed: 1}, {Seed: 2}, {Seed: 3}, {Seed: 4},
		{Seed: 5, Estimator: "no-such-estimator"}, // per-item 400, not a batch failure
		{Seed: 6},
	}
	var items []service.BatchItem
	status, _ := postJSON(t, front.URL+"/v1/jobs:batch", "", specs, &items)
	if status != http.StatusOK {
		t.Fatalf("batch status %d", status)
	}
	if len(items) != len(specs) {
		t.Fatalf("batch returned %d items, want %d", len(items), len(specs))
	}
	for i, it := range items {
		if i == 4 {
			if it.Status != http.StatusBadRequest || it.Job != nil {
				t.Errorf("item 4: status %d job %v, want a per-item 400", it.Status, it.Job)
			}
			continue
		}
		if it.Status != http.StatusAccepted && it.Status != http.StatusOK {
			t.Errorf("item %d: status %d, error %q", i, it.Status, it.Error)
			continue
		}
		owner, _ := rt.ring.Owner(specKey(t, specs[i]))
		if got := shardPrefix(it.Job.ID); got != owner {
			t.Errorf("item %d: landed on %s, ring owner is %s", i, got, owner)
		}
		waitDone(t, front.URL, "", it.Job.ID, 5*time.Second)
	}

	// Batch bounds: empty and oversized bodies answer 400.
	if st, _ := postJSON(t, front.URL+"/v1/jobs:batch", "", []service.JobSpec{}, nil); st != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", st)
	}
}

func TestRouterFailoverRedispatch(t *testing.T) {
	// s1's runner blocks while `blocking` is set, simulating a job caught
	// mid-run when the shard dies.
	var blocking atomic.Bool
	blocking.Store(true)
	run := func(ctx context.Context, _ service.JobSpec, c *montecarlo.Counter) (*service.RunResult, error) {
		for blocking.Load() {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(5 * time.Millisecond):
			}
		}
		c.Add(100)
		return &service.RunResult{}, nil
	}

	var shards []*shardFixture
	cfg := Config{ProbeInterval: -1, ProbeFailures: 3, ProbeTimeout: 200 * time.Millisecond}
	for _, name := range []string{"s1", "s2", "s3"} {
		sh := newShard(t, name, run)
		shards = append(shards, sh)
		cfg.Shards = append(cfg.Shards, Shard{Name: name, URL: sh.srv.URL})
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	spec := specOwnedBy(t, rt, "s1")
	var view service.View
	if st, _ := postJSON(t, front.URL+"/v1/jobs", "", spec, &view); st != http.StatusAccepted {
		t.Fatalf("submit: status %d", st)
	}
	if shardPrefix(view.ID) != "s1" {
		t.Fatalf("job %s not on s1", view.ID)
	}
	clientID := view.ID

	// Kill the shard mid-run, then let later runs complete instantly so the
	// redispatched copy finishes on the successor.
	shards[0].srv.Close()
	blocking.Store(false)

	for i := 0; i < 3; i++ {
		rt.ProbeOnce(context.Background())
	}
	if rt.ring.Has("s1") {
		t.Fatal("s1 still on the ring after 3 failed probes")
	}
	if got := rt.downEvents.Load(); got != 1 {
		t.Errorf("downEvents = %d, want 1", got)
	}
	if got := rt.redispatched.Load(); got != 1 {
		t.Errorf("redispatched = %d, want 1", got)
	}

	// The job completes on a survivor under its original client-visible ID.
	done := waitDone(t, front.URL, "", clientID, 5*time.Second)
	if done.State != service.StateDone {
		t.Fatalf("state %s, want done", done.State)
	}
	if done.ID != clientID {
		t.Errorf("view ID %s, want the original %s", done.ID, clientID)
	}
	rt.mu.Lock()
	j := rt.jobs[clientID]
	shard, remote := j.Shard, j.RemoteID
	rt.mu.Unlock()
	if shard == "s1" {
		t.Errorf("job still mapped to the dead shard")
	}
	if succ, _ := rt.ring.Owner(specKey(t, spec)); shard != succ {
		t.Errorf("job moved to %s, ring successor is %s", shard, succ)
	}
	if shardPrefix(remote) != shard {
		t.Errorf("remote ID %s does not carry the new shard prefix %s", remote, shard)
	}

	// The listing reports the job under its client ID, not the remote alias.
	var views []service.View
	if st := getJSON(t, front.URL+"/v1/jobs", "", &views); st != http.StatusOK {
		t.Fatalf("list: status %d", st)
	}
	found := false
	for _, v := range views {
		if v.ID == clientID {
			found = true
		}
	}
	if !found {
		t.Errorf("client ID %s missing from the merged listing", clientID)
	}
}

func TestRouterJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}

	rt, front, _ := newCluster(t, 2, Config{Store: st})
	var view service.View
	if s, _ := postJSON(t, front.URL+"/v1/jobs", "", service.JobSpec{Seed: 7}, &view); s != http.StatusAccepted && s != http.StatusOK {
		t.Fatalf("submit: status %d", s)
	}
	waitDone(t, front.URL, "", view.ID, 5*time.Second)
	if err := st.Close(); err != nil {
		t.Fatalf("close store: %v", err)
	}

	// A fresh router over the same journal keeps routing the old ID.
	st2, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	defer st2.Close()
	rt2cfg := Config{Store: st2, ProbeInterval: -1}
	for _, name := range rt.names {
		rt2cfg.Shards = append(rt2cfg.Shards, Shard{Name: name, URL: rt.targets[name].url})
	}
	rt2, err := NewRouter(rt2cfg)
	if err != nil {
		t.Fatalf("NewRouter (recovered): %v", err)
	}
	defer rt2.Close()
	rt2.mu.Lock()
	j := rt2.jobs[view.ID]
	rt2.mu.Unlock()
	if j == nil {
		t.Fatalf("recovered router lost job %s", view.ID)
	}
	if !j.Terminal {
		t.Errorf("recovered job %s not marked terminal", view.ID)
	}
	if j.Shard != shardPrefix(view.ID) {
		t.Errorf("recovered placement %s, want %s", j.Shard, shardPrefix(view.ID))
	}
	front2 := httptest.NewServer(rt2)
	defer front2.Close()
	var got service.View
	if s := getJSON(t, front2.URL+"/v1/jobs/"+view.ID, "", &got); s != http.StatusOK {
		t.Fatalf("GET recovered job: status %d", s)
	}
	if got.State != service.StateDone {
		t.Errorf("recovered job state %s, want done", got.State)
	}
}

func TestRouterAuthRateAndQuota(t *testing.T) {
	tenants, err := service.NewTenants([]service.TenantConfig{
		{Key: "limited-key", Name: "limited", RatePerSec: 1, Burst: 2},
		{Key: "capped-key", Name: "capped", QuotaJobs: 1},
	})
	if err != nil {
		t.Fatalf("NewTenants: %v", err)
	}
	_, front, _ := newCluster(t, 2, Config{Tenants: tenants})

	// No credentials: the router refuses before touching any shard.
	if st, _ := postJSON(t, front.URL+"/v1/jobs", "", service.JobSpec{Seed: 1}, nil); st != http.StatusUnauthorized {
		t.Errorf("anonymous submit: status %d, want 401", st)
	}
	if st := getJSON(t, front.URL+"/v1/jobs", "wrong-key", nil); st != http.StatusUnauthorized {
		t.Errorf("bad key list: status %d, want 401", st)
	}

	// Burst of 2, then the bucket is dry: 429 with a Retry-After hint.
	for i := int64(0); i < 2; i++ {
		if st, _ := postJSON(t, front.URL+"/v1/jobs", "limited-key", service.JobSpec{Seed: 10 + i}, nil); st != http.StatusAccepted && st != http.StatusOK {
			t.Fatalf("burst submit %d: status %d", i, st)
		}
	}
	st, hdr := postJSON(t, front.URL+"/v1/jobs", "limited-key", service.JobSpec{Seed: 20}, nil)
	if st != http.StatusTooManyRequests {
		t.Fatalf("rate-limited submit: status %d, want 429", st)
	}
	if ra := hdr.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("rate-limited 429 carries Retry-After %q, want a positive hint", ra)
	}

	// Quota exhaustion also answers 429, with the long quota back-off.
	if st, _ := postJSON(t, front.URL+"/v1/jobs", "capped-key", service.JobSpec{Seed: 30}, nil); st != http.StatusAccepted && st != http.StatusOK {
		t.Fatalf("quota submit 1: status %d", st)
	}
	st, hdr = postJSON(t, front.URL+"/v1/jobs", "capped-key", service.JobSpec{Seed: 31}, nil)
	if st != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429", st)
	}
	if ra := hdr.Get("Retry-After"); ra != "3600" {
		t.Errorf("over-quota Retry-After = %q, want 3600", ra)
	}

	// A batch is charged atomically: 2 specs against 0 remaining tokens.
	st, _ = postJSON(t, front.URL+"/v1/jobs:batch", "capped-key",
		[]service.JobSpec{{Seed: 40}, {Seed: 41}}, nil)
	if st != http.StatusTooManyRequests {
		t.Errorf("over-quota batch: status %d, want 429", st)
	}
}

func TestRouterBodyLimit(t *testing.T) {
	_, front, _ := newCluster(t, 2, Config{MaxBodyBytes: 512})
	huge := []byte(`{"estimator":"` + strings.Repeat("x", 2048) + `"}`)
	resp, err := http.Post(front.URL+"/v1/jobs", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized submit: status %d, want 413", resp.StatusCode)
	}
}

func TestRouterPrometheusRollup(t *testing.T) {
	rt, front, _ := newCluster(t, 2, Config{})
	var view service.View
	if st, _ := postJSON(t, front.URL+"/v1/jobs", "", service.JobSpec{Seed: 1}, &view); st != http.StatusAccepted && st != http.StatusOK {
		t.Fatalf("submit: status %d", st)
	}
	waitDone(t, front.URL, "", view.ID, 5*time.Second)

	var buf bytes.Buffer
	if err := rt.WritePrometheus(context.Background(), &buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	if problems := obsv.LintProm(text); len(problems) > 0 {
		t.Errorf("prometheus exposition fails lint:\n%s", strings.Join(problems, "\n"))
	}
	for _, want := range []string{
		"ecripse_router_shards 2",
		`ecripse_router_shard_up{shard="s1"} 1`,
		`ecripse_router_shard_up{shard="s2"} 1`,
		`ecripsed_jobs{shard="` + shardPrefix(view.ID) + `",state="done"} 1`,
		`ecripse_router_forwards_total{shard="`,
		"ecripse_router_jobs_tracked 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The HTTP endpoint serves both formats.
	resp, err := http.Get(front.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prometheus Content-Type = %q", ct)
	}
	var cm ClusterMetrics
	if st := getJSON(t, front.URL+"/metrics", "", &cm); st != http.StatusOK {
		t.Fatalf("GET /metrics JSON: status %d", st)
	}
	if cm.Router.Shards != 2 || len(cm.Shards) != 2 {
		t.Errorf("JSON roll-up: %d shards configured, %d snapshots", cm.Router.Shards, len(cm.Shards))
	}
}

func TestRouterSSEProxy(t *testing.T) {
	_, front, _ := newCluster(t, 2, Config{})
	var view service.View
	if st, _ := postJSON(t, front.URL+"/v1/jobs", "", service.JobSpec{Seed: 1}, &view); st != http.StatusAccepted && st != http.StatusOK {
		t.Fatalf("submit: status %d", st)
	}
	waitDone(t, front.URL, "", view.ID, 5*time.Second)

	resp, err := http.Get(front.URL + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("events Content-Type = %q", ct)
	}
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: done") {
			sawDone = true
		}
	}
	if !sawDone {
		t.Error("SSE stream never delivered the final done event")
	}
}

// TestEmbeddedPeersTopology exercises the -peers mode: two nodes, each an
// entry point with a local shard and the other as a remote peer. A spec
// submitted at either node runs on its ring owner; the repeat submit at the
// other node is forwarded to the same owner and answered from its cache.
func TestEmbeddedPeersTopology(t *testing.T) {
	type node struct {
		fix   *shardFixture
		rt    *Router
		front *httptest.Server
	}
	mk := func(name string) *node { return &node{fix: newShard(t, name, nil)} }
	n1, n2 := mk("s1"), mk("s2")
	wire := func(self, peer *node) {
		rt, err := NewRouter(Config{
			Shards: []Shard{
				{Name: self.fix.name, Local: self.fix.api},
				{Name: peer.fix.name, URL: peer.fix.srv.URL},
			},
			ProbeInterval: -1,
		})
		if err != nil {
			t.Fatalf("NewRouter(%s): %v", self.fix.name, err)
		}
		t.Cleanup(rt.Close)
		self.rt = rt
		self.front = httptest.NewServer(rt)
		t.Cleanup(self.front.Close)
	}
	wire(n1, n2)
	wire(n2, n1)

	for seed := int64(1); seed <= 6; seed++ {
		spec := service.JobSpec{Seed: seed}
		owner, _ := n1.rt.ring.Owner(specKey(t, spec))

		var v1 service.View
		if st, _ := postJSON(t, n1.front.URL+"/v1/jobs", "", spec, &v1); st != http.StatusAccepted && st != http.StatusOK {
			t.Fatalf("seed %d: node-1 submit status %d", seed, st)
		}
		if got := shardPrefix(v1.ID); got != owner {
			t.Errorf("seed %d: node-1 entry placed the job on %s, ring owner is %s", seed, got, owner)
		}
		waitDone(t, n1.front.URL, "", v1.ID, 5*time.Second)

		// Same spec through the other entry point: both rings agree on the
		// owner, so the repeat is a cache hit there.
		var v2 service.View
		if st, _ := postJSON(t, n2.front.URL+"/v1/jobs", "", spec, &v2); st != http.StatusAccepted && st != http.StatusOK {
			t.Fatalf("seed %d: node-2 submit status %d", seed, st)
		}
		d2 := waitDone(t, n2.front.URL, "", v2.ID, 5*time.Second)
		if shardPrefix(v2.ID) != owner {
			t.Errorf("seed %d: node-2 entry placed the repeat on %s, want %s", seed, shardPrefix(v2.ID), owner)
		}
		if !d2.Cached {
			t.Errorf("seed %d: repeat submit at the other entry point recomputed instead of hitting the cache", seed)
		}
	}
}

// TestClusterSweepTracePropagation is the distributed-tracing acceptance
// test: a sweep submitted through an embedded-peers entry point with an
// explicit client traceparent comes back from GET /v1/sweeps/{id}/trace as
// one coherent tree — the router's route/dispatch spans, the owning shard's
// sweep-controller span, and every point job's engine spans — all sharing
// the client's trace ID.
func TestClusterSweepTracePropagation(t *testing.T) {
	type node struct {
		fix   *shardFixture
		rt    *Router
		front *httptest.Server
	}
	mk := func(name string) *node { return &node{fix: newShard(t, name, nil)} }
	n1, n2 := mk("s1"), mk("s2")
	wire := func(self, peer *node) {
		rt, err := NewRouter(Config{
			Shards: []Shard{
				{Name: self.fix.name, Local: self.fix.api},
				{Name: peer.fix.name, URL: peer.fix.srv.URL},
			},
			ProbeInterval: -1,
		})
		if err != nil {
			t.Fatalf("NewRouter(%s): %v", self.fix.name, err)
		}
		t.Cleanup(rt.Close)
		self.rt = rt
		self.front = httptest.NewServer(rt)
		t.Cleanup(self.front.Close)
	}
	wire(n1, n2)
	wire(n2, n1)

	// Submit with a client-minted traceparent; the router must adopt the
	// client's trace ID rather than minting its own.
	client := obsv.NewTraceContext()
	spec := sweepSpecFixture()
	body, _ := json.Marshal(spec)
	req, _ := http.NewRequest(http.MethodPost, n1.front.URL+"/v1/sweeps", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obsv.TraceparentHeader, client.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/sweeps: %v", err)
	}
	var sv service.SweepView
	if derr := json.NewDecoder(resp.Body).Decode(&sv); derr != nil {
		t.Fatalf("decode sweep view: %v", derr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit status = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		var cur service.SweepView
		if st := getJSON(t, n1.front.URL+"/v1/sweeps/"+sv.ID, "", &cur); st != http.StatusOK {
			t.Fatalf("GET sweep: status %d", st)
		}
		if cur.State.Terminal() {
			if cur.State != service.StateDone {
				t.Fatalf("sweep ended %q", cur.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep not terminal within 10s (state %q)", cur.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	var tr struct {
		ID      string          `json:"id"`
		TraceID string          `json:"trace_id"`
		Spans   []obsv.SpanView `json:"spans"`
	}
	if st := getJSON(t, n1.front.URL+"/v1/sweeps/"+sv.ID+"/trace", "", &tr); st != http.StatusOK {
		t.Fatalf("GET sweep trace: status %d", st)
	}
	if tr.TraceID != client.TraceID {
		t.Fatalf("reassembled trace ID = %q, client sent %q", tr.TraceID, client.TraceID)
	}

	// One tree: route root -> dispatch -> shard sweep controller -> points,
	// with the point jobs' engine spans grafted alongside.
	routeIdx, dispatchIdx, sweepIdx := -1, -1, -1
	points, runs := 0, 0
	for i, sp := range tr.Spans {
		switch sp.Name {
		case "sweep.route":
			if routeIdx != -1 {
				t.Fatalf("two sweep.route spans: %+v", tr.Spans)
			}
			routeIdx = i
			if sp.Parent != -1 {
				t.Errorf("sweep.route parent = %d, want root", sp.Parent)
			}
		case "dispatch":
			dispatchIdx = i
			if _, ok := sp.Attrs["span_id"].(string); !ok {
				t.Errorf("dispatch span lacks span_id attr: %+v", sp)
			}
		case "sweep":
			sweepIdx = i
		case "point":
			points++
		case "run":
			runs++
		}
	}
	if routeIdx == -1 || dispatchIdx == -1 || sweepIdx == -1 {
		t.Fatalf("missing route/dispatch/sweep spans (route=%d dispatch=%d sweep=%d)", routeIdx, dispatchIdx, sweepIdx)
	}
	if got := tr.Spans[dispatchIdx].Parent; got != routeIdx {
		t.Errorf("dispatch span parent = %d, want route span %d", got, routeIdx)
	}
	if got := tr.Spans[sweepIdx].Parent; got != dispatchIdx {
		t.Errorf("shard sweep span parent = %d, want dispatch span %d", got, dispatchIdx)
	}
	if want := 3; points != want || runs != want {
		t.Errorf("trace has %d point / %d run spans, want %d of each", points, runs, want)
	}

	// Propagation proof: the owning shard's own trace endpoint answers with
	// the same client trace ID — it adopted the routed traceparent instead
	// of minting one.
	var direct struct {
		TraceID string `json:"trace_id"`
	}
	owner := n1.fix
	if sweepShardPrefix(sv.ID) == n2.fix.name {
		owner = n2.fix
	}
	if st := getJSON(t, owner.srv.URL+"/v1/sweeps/"+sv.ID+"/trace", "", &direct); st != http.StatusOK {
		t.Fatalf("direct shard trace: status %d", st)
	}
	if direct.TraceID != client.TraceID {
		t.Errorf("shard-side trace ID = %q, want the client's %q", direct.TraceID, client.TraceID)
	}

	// The repeat through the other entry point reaches the same owner, so
	// the trace stays reachable cluster-wide.
	var tr2 struct {
		TraceID string `json:"trace_id"`
	}
	if st := getJSON(t, n2.front.URL+"/v1/sweeps/"+sv.ID+"/trace", "", &tr2); st != http.StatusOK {
		t.Fatalf("GET sweep trace via peer: status %d", st)
	}
	if tr2.TraceID != client.TraceID {
		t.Errorf("peer-side trace ID = %q, want %q", tr2.TraceID, client.TraceID)
	}
}

// sweepSpecFixture is the 3-point temperature sweep the trace tests submit.
func sweepSpecFixture() service.SweepSpec {
	return service.SweepSpec{
		Base:  service.JobSpec{Estimator: "naive", N: 100, Seed: 5},
		TempK: &service.Axis{Values: []float64{300, 310, 320}},
	}
}

// TestRouterHealthRollup runs a real degenerate estimator job on one shard
// of a two-shard cluster and requires the router's Prometheus roll-up to
// re-emit that shard's watchdog counters — shard-labeled, lint-clean.
func TestRouterHealthRollup(t *testing.T) {
	mkReal := func(name string) *shardFixture {
		svc := service.New(service.Config{
			Workers: 1, QueueCapacity: 16, CacheCapacity: 16, NodeID: name,
		})
		api := service.NewServer(svc)
		srv := httptest.NewServer(api)
		t.Cleanup(srv.Close)
		t.Cleanup(func() { _ = svc.Drain(context.Background()) })
		return &shardFixture{name: name, svc: svc, api: api, srv: srv}
	}
	shards := []*shardFixture{mkReal("s1"), mkReal("s2")}
	cfg := Config{ProbeInterval: -1}
	for _, s := range shards {
		cfg.Shards = append(cfg.Shards, Shard{Name: s.name, URL: s.srv.URL})
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	// The degenerate hold-mode spec: its particle filters collapse mid-run,
	// so whichever shard owns it records ess_collapse violations.
	spec := service.JobSpec{Mode: "hold", Vdd: 0.45, N: 2000, Seed: 3}
	var view service.View
	if st, _ := postJSON(t, front.URL+"/v1/jobs", "", spec, &view); st != http.StatusAccepted && st != http.StatusOK {
		t.Fatalf("submit: status %d", st)
	}
	waitDone(t, front.URL, "", view.ID, 30*time.Second)

	var buf bytes.Buffer
	if err := rt.WritePrometheus(context.Background(), &buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	if problems := obsv.LintProm(text); len(problems) > 0 {
		t.Errorf("roll-up with health counters fails lint:\n%s", strings.Join(problems, "\n"))
	}
	want := `ecripsed_health_violations_total{shard="` + shardPrefix(view.ID) + `",rule="` + obsv.RuleESSCollapse + `"}`
	if !strings.Contains(text, want) {
		t.Errorf("roll-up missing the shard-labeled watchdog counter %q in:\n%s", want, text)
	}
}
