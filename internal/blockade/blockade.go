// Package blockade implements the statistical-blockade baseline of the
// paper's reference [12] (Singhee & Rutenbar, TCAD 2009): a classifier
// trained on an initial Monte Carlo batch filters the subsequent sample
// stream so that only candidate failures reach the transistor-level
// simulator.
//
// The paper's Section II-C discusses exactly this method and how ECRIPSE
// differs: the blockade still samples from the *nominal* distribution, so
// its cost to resolve a rare event is bounded below by the naive hit count;
// combining the classifier with importance sampling (ECRIPSE) removes that
// floor. This package exists to make that comparison runnable.
package blockade

import (
	"context"
	"math/rand"

	"ecripse/internal/linalg"
	"ecripse/internal/montecarlo"
	"ecripse/internal/randx"
	"ecripse/internal/stats"
	"ecripse/internal/svm"
)

// Options configures the statistical-blockade estimator.
type Options struct {
	TrainN      int     // initial fully-simulated training batch (default 2000)
	PolyDegree  int     // classifier feature degree (default 2, as in [12]-style blockades)
	Lambda      float64 // SVM regularization (default 1e-4)
	Band        float64 // conservative band: |score| < Band is simulated (default 1.0)
	Epochs      int     // training epochs (default 25)
	RecordEvery int     // series resolution (default n/50)
}

func (o *Options) fill() {
	if o.TrainN == 0 {
		o.TrainN = 2000
	}
	if o.PolyDegree == 0 {
		o.PolyDegree = 2
	}
	if o.Lambda == 0 {
		o.Lambda = 1e-4
	}
	if o.Band == 0 {
		o.Band = 1.0
	}
	if o.Epochs == 0 {
		o.Epochs = 25
	}
}

// Result carries the estimate, its trace, and the filter statistics.
type Result struct {
	Series    stats.Series
	Estimate  stats.Estimate
	TrainSims int64 // simulations spent on the training batch
	Passed    int64 // samples the filter let through to the simulator
	Blocked   int64 // samples answered by the classifier alone
}

// Estimate runs statistical blockade: train on an initial batch, then
// stream n nominal samples through the classifier, simulating only the
// predicted-fail and in-band samples. dim is the variability-space
// dimensionality; fails is the (counted) indicator.
func Estimate(rng *rand.Rand, dim int, fails func(linalg.Vector) bool, c *montecarlo.Counter, n int, opts *Options) Result {
	res, _ := EstimateCtx(context.Background(), rng, dim, fails, c, n, opts)
	return res
}

// EstimateCtx is Estimate with cancellation, checked before every simulated
// training label and before every streamed sample. On cancellation the
// partial Result is returned with ctx.Err(); with an uncancelled context it
// is bit-identical to Estimate.
func EstimateCtx(ctx context.Context, rng *rand.Rand, dim int, fails func(linalg.Vector) bool, c *montecarlo.Counter, n int, opts *Options) (Result, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	o.fill()
	if o.RecordEvery <= 0 {
		o.RecordEvery = n/50 + 1
	}

	// Training batch: plain Monte Carlo, every sample simulated.
	trainStart := c.Count()
	cls := svm.NewClassifier(svm.NewPolyFeatures(dim, o.PolyDegree, 0), o.Lambda)
	xs := make([]linalg.Vector, 0, o.TrainN)
	ys := make([]bool, 0, o.TrainN)
	positives := 0
	for i := 0; i < o.TrainN && ctx.Err() == nil; i++ {
		x := randx.NormalVector(rng, dim)
		y := fails(x)
		xs = append(xs, x)
		ys = append(ys, y)
		if y {
			positives++
		}
	}
	// Rare events leave the training set massively imbalanced; oversample
	// the failures to roughly 1:2 so the hyper-plane does not collapse onto
	// "always pass" (the class-weighting trick standard in blockade use).
	trained := positives > 0
	if trained {
		bx, by := xs, ys
		reps := (o.TrainN - positives) / (2 * positives)
		for r := 0; r < reps; r++ {
			for i := range xs {
				if ys[i] {
					bx = append(bx, xs[i])
					by = append(by, true)
				}
			}
		}
		cls.Train(rng, bx, by, o.Epochs)
	}
	trainSims := c.Count() - trainStart

	// Filtered stream. The training batch itself contributes to the
	// estimate (its labels are exact).
	var run stats.Running
	for _, y := range ys {
		v := 0.0
		if y {
			v = 1
		}
		run.Add(v)
	}
	var scorer *svm.CompiledScorer
	if trained {
		scorer = cls.Compile()
	}
	return stream(ctx, rng, dim, fails, c, n, o, scorer, &run, trainSims, trainStart)
}

// EstimateWarmCtx is the warm-start entry: it runs the filtered stream with a
// classifier trained elsewhere — typically at the adjacent point of a
// parameter sweep — and skips the TrainN simulation batch entirely, so
// TrainSims is always 0 and the estimate is built from the streamed samples
// alone. An untrained (or nil) classifier streams unfiltered, exactly like a
// cold run whose training batch found no failures. Randomness consumption
// matches the streaming phase of EstimateCtx draw-for-draw.
func EstimateWarmCtx(ctx context.Context, rng *rand.Rand, dim int, fails func(linalg.Vector) bool, c *montecarlo.Counter, n int, opts *Options, cls *svm.Classifier) (Result, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	o.fill()
	if o.RecordEvery <= 0 {
		o.RecordEvery = n/50 + 1
	}
	var scorer *svm.CompiledScorer
	if cls != nil && cls.Trained() {
		scorer = cls.Compile()
	}
	var run stats.Running
	return stream(ctx, rng, dim, fails, c, n, o, scorer, &run, 0, c.Count())
}

// stream is the shared filtered-stream body: n nominal draws scored in
// compiled batches, with only predicted-fail and in-band samples simulated.
// run may already carry the training batch's exact labels; startCount anchors
// the total-sims accounting.
func stream(ctx context.Context, rng *rand.Rand, dim int, fails func(linalg.Vector) bool, c *montecarlo.Counter, n int, o Options, scorer *svm.CompiledScorer, run *stats.Running, trainSims, startCount int64) (Result, error) {
	// The stream is processed in fixed-size batches so the classifier scores
	// go through the compiled SoA kernel. Only the draws consume the rng, and
	// the batch draw replicates randx.NormalVector's per-component order, so
	// the sample stream — and with it every simulate/block decision — is
	// bit-identical to the per-sample loop. The filter condition folds to a
	// single threshold: Predict ∨ Uncertain ⇔ score > −Band.
	const scoreBatchN = 256
	backing := make(linalg.Vector, scoreBatchN*dim)
	batch := make([]linalg.Vector, 0, scoreBatchN)
	scores := make([]float64, scoreBatchN)

	res := Result{TrainSims: trainSims}
	var series stats.Series
outer:
	for k := 0; k < n; {
		m := n - k
		if m > scoreBatchN {
			m = scoreBatchN
		}
		batch = batch[:0]
		for j := 0; j < m; j++ {
			if ctx.Err() != nil {
				break
			}
			x := backing[j*dim : (j+1)*dim : (j+1)*dim]
			for d := range x {
				x[d] = rng.NormFloat64()
			}
			batch = append(batch, x)
		}
		if scorer != nil && len(batch) > 0 {
			scorer.ScoreBatch(batch, scores[:len(batch)])
		}
		for j, x := range batch {
			if ctx.Err() != nil {
				break outer
			}
			var failed bool
			if scorer == nil || scores[j] > -o.Band {
				failed = fails(x) // candidate failure (or no filter): simulate
				res.Passed++
			} else {
				failed = false // blockaded: trusted pass
				res.Blocked++
			}
			v := 0.0
			if failed {
				v = 1
			}
			run.Add(v)
			if (k+1)%o.RecordEvery == 0 || k == n-1 {
				series = append(series, stats.Point{
					Sims: c.Count(), P: run.Mean(), CI95: run.CI95(), RelErr: run.RelErr(), Var: run.Var(),
				})
			}
			k++
		}
		if len(batch) < m {
			break // cancelled mid-draw
		}
	}
	if ctx.Err() != nil && run.N() > 0 && (len(series) == 0 || series.Final().Sims != c.Count()) {
		// Cancelled: close the partial trace at the stopping state.
		series = append(series, stats.Point{
			Sims: c.Count(), P: run.Mean(), CI95: run.CI95(), RelErr: run.RelErr(), Var: run.Var(),
		})
	}
	res.Series = series
	fin := series.Final()
	res.Estimate = stats.Estimate{
		P: fin.P, CI95: fin.CI95, RelErr: fin.RelErr,
		N: run.N(), Sims: c.Count() - startCount,
	}
	return res, ctx.Err()
}
