package blockade

import (
	"math"
	"math/rand"
	"testing"

	"ecripse/internal/linalg"
	"ecripse/internal/montecarlo"
	"ecripse/internal/sram"
)

// sphereFails is a radial failure region with a moderately rare probability:
// P(|x| > 3.3) in 2-D = exp(-3.3²/2) ≈ 4.32e-3 (chi-squared tail).
func sphereFails(c *montecarlo.Counter) func(linalg.Vector) bool {
	return func(x linalg.Vector) bool {
		c.Add(1)
		return x.Norm() > 3.3
	}
}

func TestBlockadeEstimatesKnownProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var c montecarlo.Counter
	res := Estimate(rng, 2, sphereFails(&c), &c, 150000, nil)
	want := math.Exp(-3.3 * 3.3 / 2)
	if res.Estimate.P < want*0.75 || res.Estimate.P > want*1.3 {
		t.Fatalf("P = %v want ~%v", res.Estimate.P, want)
	}
}

func TestBlockadeSavesSimulations(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var c montecarlo.Counter
	const n = 60000
	res := Estimate(rng, 2, sphereFails(&c), &c, n, nil)
	if res.Blocked == 0 {
		t.Fatal("nothing was blockaded")
	}
	// The filter must block the overwhelming majority of nominal samples.
	if float64(res.Blocked) < 0.8*float64(n) {
		t.Fatalf("blocked only %d of %d", res.Blocked, n)
	}
	if res.Estimate.Sims >= int64(n) {
		t.Fatalf("no simulation saving: %d sims for %d samples", res.Estimate.Sims, n)
	}
	if res.Passed+res.Blocked != int64(n) {
		t.Fatalf("accounting broken: %d + %d != %d", res.Passed, res.Blocked, n)
	}
}

func TestBlockadeCostFloorVsECRIPSE(t *testing.T) {
	// The structural point of the paper's Section II-C: blockade still needs
	// ~1/P nominal samples per failure hit, so at equal relative error its
	// simulation count is far above ECRIPSE's. Here: both resolve the SRAM
	// failure at 0.5 V; compare sims at their achieved errors.
	cell := sram.NewCell(0.5)
	sigma := cell.SigmaVth()
	opt := &sram.SNMOptions{GridN: 24, BisectIter: 24}
	var c montecarlo.Counter
	fails := func(x linalg.Vector) bool {
		c.Add(1)
		var sh sram.Shifts
		for i := range sh {
			sh[i] = x[i] * sigma[i]
		}
		return cell.Fails(sh, opt)
	}
	rng := rand.New(rand.NewSource(3))
	res := Estimate(rng, sram.NumTransistors, fails, &c, 40000, &Options{TrainN: 1500})
	// ~3.9e-3 truth. With only ~6 failures in the affordable training batch
	// the filter's recall is structurally limited, so the blockade's bias is
	// one-sided: it can silently *miss* failures (blocked false-passes) but
	// never invent them. This is precisely the weakness the paper's
	// Section II-C motivates ECRIPSE against.
	const truth = 3.9e-3
	if res.Estimate.P > truth*1.3 {
		t.Fatalf("blockade overestimated: %v vs truth %v", res.Estimate.P, truth)
	}
	if res.Estimate.P <= truth*0.05 {
		t.Fatalf("blockade found essentially nothing: %v", res.Estimate.P)
	}
	// And its cost floor: even with the filter, resolving this event takes
	// thousands of simulations (vs ECRIPSE's ~1.5k for a *5%* relerr).
	if res.Estimate.Sims < 1500 {
		t.Fatalf("implausibly few sims: %d", res.Estimate.Sims)
	}
}

func TestBlockadeOptionsDefaults(t *testing.T) {
	var o Options
	o.fill()
	if o.TrainN != 2000 || o.PolyDegree != 2 || o.Band != 1.0 {
		t.Fatalf("defaults: %+v", o)
	}
}

func TestBlockadeTrainingCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var c montecarlo.Counter
	res := Estimate(rng, 2, sphereFails(&c), &c, 1000, &Options{TrainN: 500})
	if res.TrainSims != 500 {
		t.Fatalf("train sims = %d", res.TrainSims)
	}
	if res.Estimate.Sims < res.TrainSims {
		t.Fatal("total sims exclude training")
	}
}
