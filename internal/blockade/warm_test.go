package blockade

import (
	"context"
	"math/rand"
	"testing"

	"ecripse/internal/linalg"
	"ecripse/internal/montecarlo"
	"ecripse/internal/randx"
	"ecripse/internal/svm"
)

// normIndicator is a cheap analytic stand-in for the transistor-level
// indicator: failure outside the radius-r ball (P ≈ 1.4e-2 at r=4, dim=6).
func normIndicator(c *montecarlo.Counter, r float64) func(linalg.Vector) bool {
	return func(x linalg.Vector) bool {
		c.Add(1)
		return x.Norm() > r
	}
}

// TestEstimateWarmSkipsTraining: the warm entry must spend zero simulations
// on training, actually filter the stream with the carried classifier, stay
// deterministic, and agree statistically with an unfiltered run.
func TestEstimateWarmSkipsTraining(t *testing.T) {
	const (
		dim = 6
		n   = 20000
		r   = 4.0
	)

	// Train a classifier "elsewhere" (the adjacent sweep point, in the real
	// flow) on exact labels around the boundary; no counted simulations.
	trng := rand.New(rand.NewSource(11))
	cls := svm.NewClassifier(svm.NewPolyFeatures(dim, 2, 0), 1e-4)
	xs := make([]linalg.Vector, 4000)
	ys := make([]bool, 4000)
	for i := range xs {
		xs[i] = randx.NormalVector(trng, dim).Scale(1 + 2*trng.Float64())
		ys[i] = xs[i].Norm() > r
	}
	cls.Train(trng, xs, ys, 25)
	if !cls.Trained() {
		t.Fatal("training classifier failed")
	}

	var cw montecarlo.Counter
	warm, err := EstimateWarmCtx(context.Background(), rand.New(rand.NewSource(42)), dim,
		normIndicator(&cw, r), &cw, n, nil, cls)
	if err != nil {
		t.Fatal(err)
	}
	if warm.TrainSims != 0 {
		t.Fatalf("warm TrainSims = %d, want 0", warm.TrainSims)
	}
	if warm.Passed+warm.Blocked != n {
		t.Fatalf("passed %d + blocked %d != n %d", warm.Passed, warm.Blocked, n)
	}
	if warm.Blocked == 0 {
		t.Fatal("carried classifier blocked nothing — filter not in effect")
	}
	if warm.Estimate.Sims >= int64(n) {
		t.Fatalf("warm run simulated %d of %d samples — no saving", warm.Estimate.Sims, n)
	}

	// Deterministic: same seed, same classifier → identical outcome.
	var cw2 montecarlo.Counter
	warm2, err := EstimateWarmCtx(context.Background(), rand.New(rand.NewSource(42)), dim,
		normIndicator(&cw2, r), &cw2, n, nil, cls)
	if err != nil {
		t.Fatal(err)
	}
	if warm2.Estimate != warm.Estimate || warm2.Passed != warm.Passed || warm2.Blocked != warm.Blocked {
		t.Fatalf("warm run not deterministic:\n  %+v\n  %+v", warm.Estimate, warm2.Estimate)
	}

	// Statistical agreement with the unfiltered estimate of the same quantity.
	var cn montecarlo.Counter
	naive, err := EstimateWarmCtx(context.Background(), rand.New(rand.NewSource(43)), dim,
		normIndicator(&cn, r), &cn, n, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Blocked != 0 || naive.Passed != n {
		t.Fatalf("nil-classifier warm run filtered: passed %d blocked %d", naive.Passed, naive.Blocked)
	}
	diff := warm.Estimate.P - naive.Estimate.P
	if diff < 0 {
		diff = -diff
	}
	if bound := 4 * (warm.Estimate.CI95 + naive.Estimate.CI95); diff > bound {
		t.Fatalf("warm-filtered estimate drifted: %v vs unfiltered %v (|diff| %.3e > %.3e)",
			warm.Estimate.P, naive.Estimate.P, diff, bound)
	}
}
