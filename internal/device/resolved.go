package device

import "math"

// Resolved is a Device with every bias-independent derived quantity
// precomputed: the thermal voltage, the specific current (which hides a
// math.Pow for the mobility temperature scaling), the threshold constants
// and the body-effect reference √Φ. The SRAM half-cell solver evaluates
// Ids thousands of times per indicator call on a fixed device triple, so
// hoisting this work out of the inner loop is a large share of the
// per-sample cost.
//
// Resolved.Ids returns exactly the same float64 as Device.Ids for every
// bias: the precomputed values are produced by the identical expressions
// (same operand order, same association) the per-call path used, and the
// remaining arithmetic is untouched. TestResolvedMatchesDevice pins this
// bit-for-bit.
type Resolved struct {
	pol Polarity

	vt0     float64 // VT0 + DVth: threshold magnitude incl. the sample shift
	gamma   float64
	phi     float64
	sqrtPhi float64 // √Φ, the body-effect reference
	dibl    float64
	lambda  float64
	theta   float64
	slope   float64

	ut      float64 // thermal voltage kT/q at the device temperature
	slopeUt float64 // n·kT/q, the overdrive scale of the degradation term
	tcvTerm float64 // TCV·(T−300): the threshold temperature shift
	ispec   float64 // EKV specific current (carries the Pow(T/300,−1.5))

	// fastVsb0 allows the Vsb = 0 shortcut: with the source tied to the
	// bulk the body-effect term is exactly zero and the sqrt-floor branch
	// cannot trigger (only when Φ itself clears the floor).
	fastVsb0 bool
}

// argFloor is the smooth clamp knee of the body-effect sqrt argument,
// shared with Device.idsN.
const argFloor = 0.05

// Resolve precomputes the bias-independent parts of the device model.
func (d *Device) Resolve() Resolved {
	r := Resolved{
		pol:     d.Pol,
		vt0:     d.VT0 + d.DVth,
		gamma:   d.Gamma,
		phi:     d.Phi,
		sqrtPhi: math.Sqrt(d.Phi),
		dibl:    d.DIBL,
		lambda:  d.Lambda,
		theta:   d.Theta,
		slope:   d.Slope,
		ut:      d.ut(),
		tcvTerm: d.tcv() * (d.temp() - RoomTempK),
		ispec:   d.ispec(),
	}
	r.slopeUt = r.slope * r.ut
	r.fastVsb0 = d.Phi >= argFloor
	return r
}

// Ids returns the DC drain current, identically to Device.Ids.
func (r *Resolved) Ids(vg, vd, vs, vb float64) float64 {
	if r.pol == PMOS {
		return -r.idsN(-vg, -vd, -vs, -vb)
	}
	return r.idsN(vg, vd, vs, vb)
}

func (r *Resolved) idsN(vg, vd, vs, vb float64) float64 {
	if vd < vs {
		return -r.idsN(vg, vs, vd, vb)
	}
	vds := vd - vs

	vsb := vs - vb
	var vt float64
	if vsb == 0 && r.fastVsb0 {
		// Source tied to bulk: the body-effect term is exactly
		// Gamma·(√Φ−√Φ) = 0, so only the DIBL and temperature shifts remain.
		vt = r.vt0 - r.dibl*vds - r.tcvTerm
	} else {
		arg := r.phi + vsb
		if arg < argFloor {
			arg = argFloor * math.Exp((arg-argFloor)/argFloor)
		}
		vt = r.vt0 + r.gamma*(math.Sqrt(arg)-r.sqrtPhi) - r.dibl*vds - r.tcvTerm
	}

	vp := (vg - vb - vt) / r.slope

	fwd := ekvF((vp - (vs - vb)) / r.ut)
	rev := ekvF((vp - (vd - vb)) / r.ut)
	clm := 1 + r.lambda*vds

	deg := 1.0
	if r.theta > 0 {
		od := r.slopeUt * softplus((vp-(vs-vb))/r.ut)
		deg = 1 / (1 + r.theta*od)
	}
	return r.ispec * (fwd - rev) * clm * deg
}
