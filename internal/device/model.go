// Package device implements the smooth EKV-style MOSFET compact model that
// stands in for the paper's HSPICE + PTM 16 nm HP BSIM setup.
//
// The estimator layers only ever consume the DC drain current Ids(Vg,Vd,Vs,Vb)
// of each transistor; the model below is continuous and continuously
// differentiable across the subthreshold, triode and saturation regions,
// which is what the Newton solver in internal/spice and the monotone
// bisection in internal/sram require. The parameter set in params.go is
// tuned to PTM-16HP-like magnitudes (|Vth0| ≈ 0.45–0.48 V, Vdd = 0.7 V
// nominal) so that the SRAM read noise margin and its sensitivity to ΔVth
// have realistic shape; see DESIGN.md §2 for the substitution rationale.
package device

import "math"

// Thermal voltage kT/q at 300 K, in volts.
const Ut = 0.02585

// RoomTempK is the reference temperature for the parameter sets.
const RoomTempK = 300.0

// boltzmannOverQ is k_B/q in V/K.
const boltzmannOverQ = 8.617333262e-5

// Polarity selects NMOS or PMOS behaviour.
type Polarity int

const (
	NMOS Polarity = iota
	PMOS
)

// String implements fmt.Stringer.
func (p Polarity) String() string {
	if p == PMOS {
		return "PMOS"
	}
	return "NMOS"
}

// Params is a technology parameter set for one device polarity.
type Params struct {
	Name   string   // e.g. "ptm16hp-nmos"
	Pol    Polarity // NMOS or PMOS
	VT0    float64  // zero-bias threshold magnitude [V] (positive for both polarities)
	Slope  float64  // subthreshold slope factor n (dimensionless, > 1)
	KP     float64  // transconductance μ·Cox [A/V²]
	Lambda float64  // channel-length modulation [1/V]
	Gamma  float64  // body-effect coefficient [√V]
	Phi    float64  // surface potential 2φF [V]
	DIBL   float64  // drain-induced barrier lowering [V/V]
	Theta  float64  // mobility degradation / velocity saturation [1/V]
	Tox    float64  // gate-oxide thickness [m]
	// TempK is the junction temperature [K]; 0 means RoomTempK. The model
	// applies the standard first-order dependences: the thermal voltage
	// kT/q, a threshold decrease of TCV volts per kelvin above 300 K, and
	// mobility reduction ∝ (T/300)^−1.5.
	TempK float64
	// TCV is the threshold temperature coefficient [V/K]; 0 means 0.8 mV/K.
	TCV float64
}

// temp returns the effective junction temperature.
func (p Params) temp() float64 {
	if p.TempK <= 0 {
		return RoomTempK
	}
	return p.TempK
}

// ut returns the thermal voltage kT/q at the device temperature [V].
func (p Params) ut() float64 { return boltzmannOverQ * p.temp() }

// tcv returns the threshold temperature coefficient [V/K].
func (p Params) tcv() float64 {
	if p.TCV == 0 {
		return 0.8e-3
	}
	return p.TCV
}

// Cox returns the gate capacitance per unit area [F/m²].
func (p Params) Cox() float64 {
	const eps0 = 8.8541878128e-12 // F/m
	const epsRelSiO2 = 3.9
	return eps0 * epsRelSiO2 / p.Tox
}

// Device is a sized transistor instance with an optional threshold-voltage
// shift. DVth is where both the RDF sample and the RTN sample enter the
// simulation: the effective threshold is VT0 + DVth (magnitude, for either
// polarity, so a positive DVth always weakens the device).
type Device struct {
	Params
	W, L float64 // channel width and length [m]
	DVth float64 // threshold shift magnitude [V]
}

// NewDevice builds a device from a parameter set and geometry in meters.
func NewDevice(p Params, w, l float64) *Device {
	if w <= 0 || l <= 0 {
		panic("device: non-positive geometry")
	}
	return &Device{Params: p, W: w, L: l}
}

// ispec returns the EKV specific current 2·n·KP(T)·(W/L)·Ut(T)², with the
// mobility scaled by (T/300)^−1.5.
func (d *Device) ispec() float64 {
	ut := d.ut()
	kp := d.KP * math.Pow(d.temp()/RoomTempK, -1.5)
	return 2 * d.Slope * kp * (d.W / d.L) * ut * ut
}

// softplus is ln(1+eˣ) with overflow/underflow guards.
func softplus(x float64) float64 {
	switch {
	case x > 35:
		return x
	case x < -35:
		return math.Exp(x)
	default:
		return math.Log1p(math.Exp(x))
	}
}

// ekvF is the EKV interpolation function F(u) = ln(1+exp(u/2))², which is
// ≈ exp(u) in weak inversion and ≈ (u/2)² in strong inversion.
func ekvF(u float64) float64 {
	s := softplus(u / 2)
	return s * s
}

// Ids returns the DC drain current flowing into the drain terminal, given
// absolute node voltages (Vg, Vd, Vs, Vb) against ground. For PMOS the sign
// conventions follow SPICE: a conducting PMOS with Vd < Vs yields Ids < 0.
func (d *Device) Ids(vg, vd, vs, vb float64) float64 {
	if d.Pol == PMOS {
		// A PMOS is an NMOS in the mirrored voltage space.
		return -d.idsN(-vg, -vd, -vs, -vb)
	}
	return d.idsN(vg, vd, vs, vb)
}

// idsN evaluates the NMOS-space model. Source/drain symmetry is enforced
// exactly by swap-and-negate, so the solvers may wire either diffusion node
// as "drain".
func (d *Device) idsN(vg, vd, vs, vb float64) float64 {
	if vd < vs {
		return -d.idsN(vg, vs, vd, vb)
	}
	vds := vd - vs

	// Threshold with body effect and DIBL. The sqrt argument is clamped
	// smoothly so forward body bias cannot produce a NaN.
	vsb := vs - vb
	arg := d.Phi + vsb
	const argFloor = 0.05
	if arg < argFloor {
		// Smooth exponential floor: continuous value and derivative.
		arg = argFloor * math.Exp((arg-argFloor)/argFloor)
	}
	vt := d.VT0 + d.DVth + d.Gamma*(math.Sqrt(arg)-math.Sqrt(d.Phi)) - d.DIBL*vds -
		d.tcv()*(d.temp()-RoomTempK)

	// EKV pinch-off voltage referenced to the bulk.
	vp := (vg - vb - vt) / d.Slope

	ut := d.ut()
	fwd := ekvF((vp - (vs - vb)) / ut)
	rev := ekvF((vp - (vd - vb)) / ut)
	clm := 1 + d.Lambda*vds

	// First-order mobility degradation / velocity saturation: the effective
	// gate overdrive (smoothly clamped at zero) divides the current. This is
	// what makes short-channel drive currents closer to linear than square
	// in overdrive — and what breaks the disturb-vs-trip-point cancellation
	// of the driver's ΔVth sensitivity in the SRAM read fight.
	deg := 1.0
	if d.Theta > 0 {
		od := d.Slope * ut * softplus((vp-(vs-vb))/ut)
		deg = 1 / (1 + d.Theta*od)
	}
	return d.ispec() * (fwd - rev) * clm * deg
}

// Gds returns the numerical output conductance dIds/dVd.
func (d *Device) Gds(vg, vd, vs, vb float64) float64 {
	const h = 1e-7
	return (d.Ids(vg, vd+h, vs, vb) - d.Ids(vg, vd-h, vs, vb)) / (2 * h)
}

// Gm returns the numerical transconductance dIds/dVg.
func (d *Device) Gm(vg, vd, vs, vb float64) float64 {
	const h = 1e-7
	return (d.Ids(vg+h, vd, vs, vb) - d.Ids(vg-h, vd, vs, vb)) / (2 * h)
}

// WithDVth returns a shallow copy of d with the given threshold shift.
func (d *Device) WithDVth(dv float64) *Device {
	out := *d
	out.DVth = dv
	return &out
}
