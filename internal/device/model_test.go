package device

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func nmos() *Device { return NewDevice(PTM16HPNMOS(), 30e-9, 16e-9) }
func pmos() *Device { return NewDevice(PTM16HPPMOS(), 60e-9, 16e-9) }

func TestZeroVdsZeroCurrent(t *testing.T) {
	d := nmos()
	for _, v := range []float64{0, 0.2, 0.5, 0.7} {
		if got := d.Ids(0.7, v, v, 0); got != 0 {
			t.Fatalf("Ids at Vds=0 (node %v) = %v", v, got)
		}
	}
}

func TestSourceDrainAntisymmetry(t *testing.T) {
	d := nmos()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		vg := rng.Float64()
		vd := rng.Float64()
		vs := rng.Float64()
		a := d.Ids(vg, vd, vs, 0)
		b := d.Ids(vg, vs, vd, 0)
		if math.Abs(a+b) > 1e-18+1e-12*math.Abs(a) {
			t.Fatalf("Ids(%v,%v,%v) = %v, swapped = %v", vg, vd, vs, a, b)
		}
	}
}

func TestNMOSOnOffRatio(t *testing.T) {
	d := nmos()
	on := d.Ids(0.7, 0.7, 0, 0)
	off := d.Ids(0, 0.7, 0, 0)
	if on <= 0 || off <= 0 {
		t.Fatalf("on=%v off=%v must be positive", on, off)
	}
	if on/off < 1e4 {
		t.Fatalf("on/off ratio too small: %v", on/off)
	}
}

func TestPMOSSigns(t *testing.T) {
	d := pmos()
	// Conducting PMOS: gate low, source at Vdd, drain low -> current out of drain (negative Ids).
	i := d.Ids(0, 0, 0.7, 0.7)
	if i >= 0 {
		t.Fatalf("conducting PMOS Ids = %v, want negative", i)
	}
	// Off PMOS: gate at Vdd.
	off := d.Ids(0.7, 0, 0.7, 0.7)
	if math.Abs(off) >= math.Abs(i)/1e4 {
		t.Fatalf("PMOS off current too large: on=%v off=%v", i, off)
	}
}

func TestMonotoneInVg(t *testing.T) {
	d := nmos()
	prev := -math.MaxFloat64
	for vg := 0.0; vg <= 0.9; vg += 0.01 {
		i := d.Ids(vg, 0.7, 0, 0)
		if i < prev {
			t.Fatalf("Ids not monotone in Vg at %v: %v < %v", vg, i, prev)
		}
		prev = i
	}
}

func TestMonotoneInVd(t *testing.T) {
	d := nmos()
	prev := -math.MaxFloat64
	for vd := 0.0; vd <= 0.9; vd += 0.01 {
		i := d.Ids(0.7, vd, 0, 0)
		if i < prev-1e-15 {
			t.Fatalf("Ids not monotone in Vd at %v: %v < %v", vd, i, prev)
		}
		prev = i
	}
}

func TestDVthWeakensDevice(t *testing.T) {
	d := nmos()
	base := d.Ids(0.7, 0.7, 0, 0)
	weak := d.WithDVth(0.05).Ids(0.7, 0.7, 0, 0)
	strong := d.WithDVth(-0.05).Ids(0.7, 0.7, 0, 0)
	if !(weak < base && base < strong) {
		t.Fatalf("DVth ordering violated: %v %v %v", weak, base, strong)
	}
	// PMOS: positive DVth must also weaken (reduce |Ids|).
	p := pmos()
	pb := math.Abs(p.Ids(0, 0, 0.7, 0.7))
	pw := math.Abs(p.WithDVth(0.05).Ids(0, 0, 0.7, 0.7))
	if pw >= pb {
		t.Fatalf("PMOS DVth did not weaken: %v vs %v", pw, pb)
	}
}

func TestBodyEffectRaisesThreshold(t *testing.T) {
	d := nmos()
	// Same Vgs/Vds but with raised source-body voltage: current must drop.
	base := d.Ids(0.7, 0.7, 0, 0)
	withVsb := d.Ids(0.9, 0.9, 0.2, 0) // identical Vgs=0.7, Vds=0.7, Vsb=0.2
	if withVsb >= base {
		t.Fatalf("body effect missing: %v >= %v", withVsb, base)
	}
}

func TestSubthresholdSlopeSanity(t *testing.T) {
	// In weak inversion, current decays ~ exp(Vgs/(n·Ut)); a 60·n mV gate
	// step must change current by close to 10x.
	// Deep subthreshold: stay well below the DIBL-lowered threshold
	// (VT0 − DIBL·Vds ≈ 0.30 V at Vds = 0.7 V).
	d := nmos()
	i1 := d.Ids(0.08, 0.7, 0, 0)
	step := d.Slope * Ut * math.Ln10
	i2 := d.Ids(0.08+step, 0.7, 0, 0)
	ratio := i2 / i1
	if ratio < 7 || ratio > 13 {
		t.Fatalf("subthreshold decade ratio = %v", ratio)
	}
}

func TestGmGdsPositiveInSaturation(t *testing.T) {
	d := nmos()
	if gm := d.Gm(0.7, 0.7, 0, 0); gm <= 0 {
		t.Fatalf("gm = %v", gm)
	}
	if gds := d.Gds(0.7, 0.7, 0, 0); gds <= 0 {
		t.Fatalf("gds = %v", gds)
	}
}

func TestContinuityNoJumps(t *testing.T) {
	// Fine sweep across all operating regions: relative jumps between
	// adjacent points must be tiny (smooth model).
	d := nmos()
	const h = 1e-4
	ion := d.Ids(0.8, 0.8, 0, 0)
	tol := 100 * ion * h // bounded slope: no step may exceed ~100·Ion per volt
	for vg := 0.0; vg <= 0.8; vg += 0.1 {
		prev := d.Ids(vg, 0, 0, 0)
		for vd := h; vd <= 0.8; vd += h {
			cur := d.Ids(vg, vd, 0, 0)
			if math.Abs(cur-prev) > tol {
				t.Fatalf("jump at vg=%v vd=%v: %v -> %v", vg, vd, prev, cur)
			}
			prev = cur
		}
	}
}

func TestCoxMagnitude(t *testing.T) {
	c := PTM16HPNMOS().Cox()
	// eps0*3.9/0.95nm ≈ 0.03634 F/m²
	if math.Abs(c-0.03634) > 0.001 {
		t.Fatalf("Cox = %v", c)
	}
}

func TestNewDevicePanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDevice(PTM16HPNMOS(), 0, 16e-9)
}

func TestPolarityString(t *testing.T) {
	if NMOS.String() != "NMOS" || PMOS.String() != "PMOS" {
		t.Fatal("Polarity.String broken")
	}
}

func TestWidthScalesCurrent(t *testing.T) {
	narrow := NewDevice(PTM16HPNMOS(), 30e-9, 16e-9)
	wide := NewDevice(PTM16HPNMOS(), 60e-9, 16e-9)
	in := narrow.Ids(0.7, 0.7, 0, 0)
	iw := wide.Ids(0.7, 0.7, 0, 0)
	if math.Abs(iw/in-2) > 1e-9 {
		t.Fatalf("width scaling ratio = %v", iw/in)
	}
}

// Property: current is finite and antisymmetric for random operating points,
// including negative and above-rail voltages.
func TestPropertyFiniteAntisymmetric(t *testing.T) {
	d := nmos()
	p := pmos()
	f := func(g, a, b int16) bool {
		vg := float64(g%2000) / 1000 // [-2, 2)
		vd := float64(a%2000) / 1000
		vs := float64(b%2000) / 1000
		for _, dev := range []*Device{d, p} {
			i1 := dev.Ids(vg, vd, vs, 0)
			i2 := dev.Ids(vg, vs, vd, 0)
			if math.IsNaN(i1) || math.IsInf(i1, 0) {
				return false
			}
			if math.Abs(i1+i2) > 1e-15+1e-10*math.Abs(i1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: a larger DVth never increases drive strength.
func TestPropertyDVthMonotone(t *testing.T) {
	d := nmos()
	f := func(a, b uint8) bool {
		dv1 := float64(a) / 1000 // 0..0.255 V
		dv2 := float64(b) / 1000
		if dv1 > dv2 {
			dv1, dv2 = dv2, dv1
		}
		i1 := d.WithDVth(dv1).Ids(0.7, 0.7, 0, 0)
		i2 := d.WithDVth(dv2).Ids(0.7, 0.7, 0, 0)
		return i2 <= i1+1e-18
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTemperatureDependence(t *testing.T) {
	cold := nmos()
	hot := nmos()
	hot.TempK = 400

	// Subthreshold: higher T -> lower Vth and more diffusion current.
	coldSub := cold.Ids(0.2, 0.7, 0, 0)
	hotSub := hot.Ids(0.2, 0.7, 0, 0)
	if hotSub <= coldSub {
		t.Fatalf("subthreshold current did not rise with T: %v vs %v", hotSub, coldSub)
	}

	// Strong inversion at high overdrive: mobility loss dominates and the
	// current drops (the classic temperature-inversion crossover).
	coldOn := cold.Ids(1.2, 1.2, 0, 0)
	hotOn := hot.Ids(1.2, 1.2, 0, 0)
	if hotOn >= coldOn {
		t.Fatalf("strong-inversion current did not drop with T: %v vs %v", hotOn, coldOn)
	}
}

func TestTemperatureDefaultIsRoom(t *testing.T) {
	a := nmos()
	b := nmos()
	b.TempK = RoomTempK
	if a.Ids(0.5, 0.5, 0, 0) != b.Ids(0.5, 0.5, 0, 0) {
		t.Fatal("explicit 300 K differs from default")
	}
}
