package device

import (
	"math/rand"
	"testing"
)

// TestResolvedMatchesDevice pins the bit-for-bit equivalence of the hoisted
// evaluator: the SRAM solver swaps Device.Ids for Resolved.Ids in its inner
// loop, which is only sound if every bias produces the identical float64.
func TestResolvedMatchesDevice(t *testing.T) {
	devices := []*Device{
		NewDevice(PTM16HPNMOS(), 30e-9, 16e-9),
		NewDevice(PTM16HPPMOS(), 60e-9, 16e-9),
	}
	// Shifted, heated, and degradation-free variants exercise every
	// precomputed constant (vt0, tcvTerm, ispec's Pow, the Theta branch).
	shifted := NewDevice(PTM16HPNMOS(), 30e-9, 16e-9)
	shifted.DVth = 0.083
	devices = append(devices, shifted)
	hot := NewDevice(PTM16HPPMOS(), 60e-9, 16e-9)
	hot.TempK = 358
	hot.DVth = -0.02
	devices = append(devices, hot)
	noTheta := NewDevice(PTM16HPNMOS(), 30e-9, 16e-9)
	noTheta.Theta = 0
	devices = append(devices, noTheta)
	// A low-Phi device drives the smooth sqrt floor (and disables the
	// Vsb = 0 fast path).
	lowPhi := NewDevice(PTM16HPNMOS(), 30e-9, 16e-9)
	lowPhi.Phi = 0.03
	devices = append(devices, lowPhi)

	rng := rand.New(rand.NewSource(7))
	grid := []float64{-0.9, -0.2, -1e-6, 0, 1e-6, 0.05, 0.35, 0.7, 0.9, 1.3}
	for di, d := range devices {
		r := d.Resolve()
		check := func(vg, vd, vs, vb float64) {
			want := d.Ids(vg, vd, vs, vb)
			got := r.Ids(vg, vd, vs, vb)
			if got != want {
				t.Fatalf("device %d (%s): Ids(%g,%g,%g,%g) = %g, resolved %g",
					di, d.Pol, vg, vd, vs, vb, want, got)
			}
		}
		// Dense structured grid: hits Vsb = 0, source/drain swaps, forward
		// body bias (sqrt floor), and both polarities' mirror path.
		for _, vg := range grid {
			for _, vd := range grid {
				for _, vs := range grid {
					check(vg, vd, vs, 0)
					check(vg, vd, vs, 0.7)
				}
			}
		}
		for k := 0; k < 2000; k++ {
			vg := rng.Float64()*2.4 - 0.9
			vd := rng.Float64()*2.4 - 0.9
			vs := rng.Float64()*2.4 - 0.9
			vb := rng.Float64()*2.4 - 0.9
			check(vg, vd, vs, vb)
		}
	}
}

func BenchmarkResolvedIds(b *testing.B) {
	d := NewDevice(PTM16HPNMOS(), 30e-9, 16e-9)
	r := d.Resolve()
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += r.Ids(0.35, 0.7, 0, 0)
	}
	_ = sink
}
