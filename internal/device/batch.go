package device

// ResolvedBatch is the structure-of-arrays counterpart of Resolved for a
// lane batch: many instances of one prototype device that differ only in
// their per-sample threshold shift. The SRAM batch solver marches 64–256
// shift vectors through the VTC root solve in lockstep, and at every
// lockstep step it needs the drain current of the *same* device position
// (load, driver or access) across all lanes — a loop whose per-lane
// arithmetic is independent, so the CPU can overlap the exp/sqrt latency
// chains that serialize the scalar solver.
//
// Only the threshold (VT0 + DVth + lane shift) varies per lane; every other
// resolved constant is shared, exactly as it would come out of
// Device.Resolve on each shifted copy. Per-lane currents are bit-identical
// to Resolved.Ids — TestResolvedBatchMatchesResolved and
// FuzzResolvedBatchIds pin this.
type ResolvedBatch struct {
	pol Polarity

	// vt0 is the per-lane threshold magnitude including the lane's shift.
	vt0 []float64

	// Lane-invariant constants, identical to the Resolved fields of any
	// shifted copy of the prototype (shifting only changes DVth).
	gamma   float64
	phi     float64
	sqrtPhi float64
	dibl    float64
	lambda  float64
	theta   float64
	slope   float64

	ut      float64
	slopeUt float64
	tcvTerm float64
	ispec   float64

	fastVsb0 bool

	// Softplus staging scratch for idsLanes (see batch_lanes.go). A batch
	// is owned by one solver goroutine; it is not safe for concurrent use.
	argF, argR, argO []float64
	spF, spR, spO    []float64
	clm              []float64
	neg              []bool
}

// ResolveLanes positions b on a lane batch of d: lane l behaves exactly like
// a copy of d with DVth increased by dvth[l], resolved. b's slices are
// reused when capacity allows, so a solver can re-resolve per batch without
// allocating.
func (d *Device) ResolveLanes(dvth []float64, b *ResolvedBatch) {
	r := d.Resolve()
	b.pol = r.pol
	b.gamma, b.phi, b.sqrtPhi = r.gamma, r.phi, r.sqrtPhi
	b.dibl, b.lambda, b.theta, b.slope = r.dibl, r.lambda, r.theta, r.slope
	b.ut, b.slopeUt, b.tcvTerm, b.ispec = r.ut, r.slopeUt, r.tcvTerm, r.ispec
	b.fastVsb0 = r.fastVsb0
	if cap(b.vt0) < len(dvth) {
		b.vt0 = make([]float64, len(dvth))
	}
	b.vt0 = b.vt0[:len(dvth)]
	for l, dv := range dvth {
		// Same association as the scalar path: the shifted copy first folds
		// the lane shift into DVth, then Resolve computes VT0 + DVth.
		shift := d.DVth + dv
		b.vt0[l] = d.VT0 + shift
	}
}

// Lanes returns the lane count of the current batch.
func (b *ResolvedBatch) Lanes() int { return len(b.vt0) }

// Lane returns lane l as a scalar Resolved (test/cross-check helper; the
// hot path never materializes one).
func (b *ResolvedBatch) Lane(l int) Resolved {
	return Resolved{
		pol: b.pol, vt0: b.vt0[l],
		gamma: b.gamma, phi: b.phi, sqrtPhi: b.sqrtPhi,
		dibl: b.dibl, lambda: b.lambda, theta: b.theta, slope: b.slope,
		ut: b.ut, slopeUt: b.slopeUt, tcvTerm: b.tcvTerm, ispec: b.ispec,
		fastVsb0: b.fastVsb0,
	}
}

// StoreIds writes each active lane's drain current at (vg, vd[l], vs, vb)
// into out[l]; inactive lanes are left untouched. active == nil means all
// lanes. Each lane's value is bit-identical to Resolved.Ids on that lane.
func (b *ResolvedBatch) StoreIds(vg float64, vd []float64, vs, vb float64, active []bool, out []float64) {
	b.idsLanes(vg, vd, vs, vb, active, out, false)
}

// AddIds adds each active lane's drain current at (vg, vd[l], vs, vb) onto
// out[l]. The KCL residual of the SRAM half-cell is built by one StoreIds
// followed by AddIds per remaining device, reproducing the scalar sum
// (iDrv + iLoad) + iAcc with identical association.
func (b *ResolvedBatch) AddIds(vg float64, vd []float64, vs, vb float64, active []bool, out []float64) {
	b.idsLanes(vg, vd, vs, vb, active, out, true)
}
