package device

import (
	"math"

	"ecripse/internal/vecmath"
)

// ensureScratch sizes the softplus staging arrays for n lanes, reusing
// capacity. The scratch lives on the batch (one batch per device position
// per solver goroutine), so the hot path never allocates.
func (b *ResolvedBatch) ensureScratch(n int) {
	if cap(b.argF) < n {
		b.argF = make([]float64, n)
		b.argR = make([]float64, n)
		b.argO = make([]float64, n)
		b.spF = make([]float64, n)
		b.spR = make([]float64, n)
		b.spO = make([]float64, n)
		b.clm = make([]float64, n)
		b.neg = make([]bool, n)
	}
}

// idsLanes is the lane kernel behind StoreIds/AddIds. It evaluates exactly
// the Resolved.Ids arithmetic per lane, restructured into three passes so
// the transcendental work — softplus dominates the scalar profile — runs
// through the batched vecmath kernel:
//
//  1. per lane, reduce the bias point to the three softplus arguments
//     (forward and reverse ekvF inputs, and the overdrive input when
//     mobility degradation is on) plus the channel-length factor;
//  2. one vecmath.Softplus sweep per argument array;
//  3. per lane, square, combine and sign the current.
//
// Inactive lanes stage a dummy zero argument (the vector kernel computes
// all lanes regardless) and are skipped when writing out. Every lane's
// value stays bit-identical to Resolved.Ids — vecmath.Softplus is pinned
// bit-exact to the scalar softplus, and the surrounding arithmetic is
// copied expression for expression — which TestResolvedBatchMatchesResolved
// and FuzzResolvedBatchIds verify.
func (b *ResolvedBatch) idsLanes(vg float64, vd []float64, vs, vb float64, active []bool, out []float64, add bool) {
	n := len(vd)
	b.ensureScratch(n)
	pmos := b.pol == PMOS
	g, s0, bb := vg, vs, vb
	if pmos {
		// A PMOS is an NMOS in the mirrored voltage space. The uniform
		// terminals mirror once here; vd mirrors per lane below.
		g, s0, bb = -g, -s0, -bb
	}
	useTheta := b.theta > 0
	argF, argR, argO := b.argF[:n], b.argR[:n], b.argO[:n]
	clm, neg := b.clm[:n], b.neg[:n]
	for l := 0; l < n; l++ {
		if active != nil && !active[l] {
			argF[l], argR[l], argO[l] = 0, 0, 0
			continue
		}
		dd, s := vd[l], s0
		if pmos {
			dd = -dd
		}
		// Source/drain symmetry by swap-and-negate, as in Resolved.idsN.
		nl := false
		if dd < s {
			dd, s = s, dd
			nl = true
		}
		neg[l] = nl
		vds := dd - s

		vsb := s - bb
		var vt float64
		if vsb == 0 && b.fastVsb0 {
			vt = b.vt0[l] - b.dibl*vds - b.tcvTerm
		} else {
			arg := b.phi + vsb
			if arg < argFloor {
				arg = argFloor * math.Exp((arg-argFloor)/argFloor)
			}
			vt = b.vt0[l] + b.gamma*(math.Sqrt(arg)-b.sqrtPhi) - b.dibl*vds - b.tcvTerm
		}

		vp := (g - bb - vt) / b.slope
		uf := (vp - (s - bb)) / b.ut
		ur := (vp - (dd - bb)) / b.ut
		argF[l] = uf / 2 // ekvF halves its argument before softplus
		argR[l] = ur / 2
		argO[l] = uf
		clm[l] = 1 + b.lambda*vds
	}

	vecmath.Softplus(b.spF[:n], argF)
	vecmath.Softplus(b.spR[:n], argR)
	if useTheta {
		vecmath.Softplus(b.spO[:n], argO)
	}

	for l := 0; l < n; l++ {
		if active != nil && !active[l] {
			continue
		}
		sf, sr := b.spF[l], b.spR[l]
		fwd := sf * sf // ekvF squares the softplus
		rev := sr * sr
		deg := 1.0
		if useTheta {
			od := b.slopeUt * b.spO[l]
			deg = 1 / (1 + b.theta*od)
		}
		cur := b.ispec * (fwd - rev) * clm[l] * deg
		if neg[l] {
			cur = -cur
		}
		if pmos {
			cur = -cur
		}
		if add {
			out[l] += cur
		} else {
			out[l] = cur
		}
	}
}
