package device

import (
	"math"
	"math/rand"
	"testing"
)

// batchPrototypes returns one NMOS and one PMOS device with every secondary
// effect enabled, so the lane kernel exercises the body-effect, DIBL,
// channel-length-modulation and mobility-degradation branches.
func batchPrototypes() []*Device {
	n := NewDevice(PTM16HPNMOS(), 80e-9, 16e-9)
	p := NewDevice(PTM16HPPMOS(), 60e-9, 16e-9)
	p.DVth = 0.013 // non-zero prototype shift: lanes add on top of it
	return []*Device{n, p}
}

// laneRefIds is the scalar reference for lane l: a copy of the prototype
// with the lane shift folded into DVth, resolved, evaluated.
func laneRefIds(d *Device, dv, vg, vd, vs, vb float64) float64 {
	c := *d
	c.DVth += dv
	r := c.Resolve()
	return r.Ids(vg, vd, vs, vb)
}

func TestResolvedBatchMatchesResolved(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, d := range batchPrototypes() {
		d := d
		t.Run(d.Pol.String(), func(t *testing.T) {
			for _, lanes := range []int{1, 3, 64, 65} {
				dvth := make([]float64, lanes)
				for l := range dvth {
					dvth[l] = 0.25 * rng.NormFloat64()
				}
				var b ResolvedBatch
				d.ResolveLanes(dvth, &b)
				if b.Lanes() != lanes {
					t.Fatalf("Lanes() = %d, want %d", b.Lanes(), lanes)
				}

				vd := make([]float64, lanes)
				out := make([]float64, lanes)
				for trial := 0; trial < 50; trial++ {
					vg := -0.2 + 1.2*rng.Float64()
					vs := -0.2 + 1.2*rng.Float64()
					vb := vs
					if trial%3 == 0 {
						vb = -0.2 + 1.2*rng.Float64() // exercise the body-effect path
					}
					if trial%5 == 0 {
						vs = 0
						vb = 0 // exercise the fastVsb0 path
					}
					for l := range vd {
						vd[l] = -0.3 + 1.3*rng.Float64() // both vd<vs and vd>vs orders
					}
					b.StoreIds(vg, vd, vs, vb, nil, out)
					for l := range out {
						want := laneRefIds(d, dvth[l], vg, vd[l], vs, vb)
						if math.Float64bits(out[l]) != math.Float64bits(want) {
							t.Fatalf("lane %d: StoreIds=%g (%#x) want %g (%#x) at vg=%g vd=%g vs=%g vb=%g",
								l, out[l], math.Float64bits(out[l]), want, math.Float64bits(want), vg, vd[l], vs, vb)
						}
					}
					// AddIds must reproduce out[l] + ids exactly.
					prev := append([]float64(nil), out...)
					b.AddIds(vg, vd, vs, vb, nil, out)
					for l := range out {
						want := prev[l] + laneRefIds(d, dvth[l], vg, vd[l], vs, vb)
						if math.Float64bits(out[l]) != math.Float64bits(want) {
							t.Fatalf("lane %d: AddIds=%g want %g", l, out[l], want)
						}
					}
				}
			}
		})
	}
}

func TestResolvedBatchActiveMask(t *testing.T) {
	d := batchPrototypes()[0]
	const lanes = 8
	dvth := make([]float64, lanes)
	for l := range dvth {
		dvth[l] = 0.01 * float64(l)
	}
	var b ResolvedBatch
	d.ResolveLanes(dvth, &b)

	vd := make([]float64, lanes)
	for l := range vd {
		vd[l] = 0.1 * float64(l+1)
	}
	active := make([]bool, lanes)
	out := make([]float64, lanes)
	const sentinel = -123.5
	for l := range out {
		out[l] = sentinel
		active[l] = l%2 == 0
	}
	b.StoreIds(0.7, vd, 0, 0, active, out)
	for l := range out {
		want := laneRefIds(d, dvth[l], 0.7, vd[l], 0, 0)
		if active[l] {
			if math.Float64bits(out[l]) != math.Float64bits(want) {
				t.Fatalf("active lane %d: got %g want %g", l, out[l], want)
			}
		} else if out[l] != sentinel {
			t.Fatalf("inactive lane %d was written: %g", l, out[l])
		}
	}
}

func TestResolvedBatchLaneMaterializes(t *testing.T) {
	for _, d := range batchPrototypes() {
		dvth := []float64{-0.05, 0, 0.08}
		var b ResolvedBatch
		d.ResolveLanes(dvth, &b)
		for l := range dvth {
			r := b.Lane(l)
			got := r.Ids(0.6, 0.4, 0, 0)
			want := laneRefIds(d, dvth[l], 0.6, 0.4, 0, 0)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s lane %d: Lane().Ids=%g want %g", d.Pol, l, got, want)
			}
		}
	}
}

// TestResolveLanesReusesCapacity pins the no-allocation contract the solver
// relies on when re-resolving per batch.
func TestResolveLanesReusesCapacity(t *testing.T) {
	d := batchPrototypes()[0]
	var b ResolvedBatch
	d.ResolveLanes(make([]float64, 256), &b)
	ptr := &b.vt0[0]
	d.ResolveLanes(make([]float64, 64), &b)
	if b.Lanes() != 64 {
		t.Fatalf("Lanes() = %d, want 64", b.Lanes())
	}
	if &b.vt0[0] != ptr {
		t.Fatal("ResolveLanes reallocated vt0 despite sufficient capacity")
	}
}

// FuzzResolvedBatchIds pins the lane kernel (whichever build-tag variant is
// compiled in) bit-for-bit against Resolved.Ids, including non-finite lane
// shifts and terminal voltages.
func FuzzResolvedBatchIds(f *testing.F) {
	f.Add(0.01, -0.02, 0.7, 0.35, 0.2, 0.0, 0.0, false)
	f.Add(-0.3, 0.4, 0.0, -0.1, 0.6, 0.1, -0.05, true)
	f.Add(math.Inf(1), 0.0, 0.7, 0.7, 0.0, 0.0, 0.0, false)
	f.Add(math.NaN(), 0.25, 0.5, -0.3, 0.4, 0.05, 0.0, true)
	f.Fuzz(func(t *testing.T, dv0, dv1, vg, vd0, vd1, vs, vb float64, pmos bool) {
		d := batchPrototypes()[0]
		if pmos {
			d = batchPrototypes()[1]
		}
		dvth := []float64{dv0, dv1}
		var b ResolvedBatch
		d.ResolveLanes(dvth, &b)
		vd := []float64{vd0, vd1}
		out := []float64{0, 0}
		b.StoreIds(vg, vd, vs, vb, nil, out)
		for l := range out {
			want := laneRefIds(d, dvth[l], vg, vd[l], vs, vb)
			if math.Float64bits(out[l]) != math.Float64bits(want) {
				t.Fatalf("lane %d: got %#x want %#x (dv=%g vg=%g vd=%g vs=%g vb=%g pmos=%v)",
					l, math.Float64bits(out[l]), math.Float64bits(want), dvth[l], vg, vd[l], vs, vb, pmos)
			}
		}
	})
}

func BenchmarkResolvedBatchIds(b *testing.B) {
	d := batchPrototypes()[0]
	const lanes = 64
	dvth := make([]float64, lanes)
	vd := make([]float64, lanes)
	rng := rand.New(rand.NewSource(7))
	for l := range dvth {
		dvth[l] = 0.1 * rng.NormFloat64()
		vd[l] = 0.7 * rng.Float64()
	}
	var rb ResolvedBatch
	d.ResolveLanes(dvth, &rb)
	out := make([]float64, lanes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.StoreIds(0.7, vd, 0, 0, nil, out)
	}
	b.ReportMetric(float64(lanes), "lanes/op")
}
