package device

// PTM-16HP-inspired parameter sets. The paper simulates with the 16 nm
// high-performance predictive technology model (PTM, ptm.asu.edu); the values
// below reproduce its headline magnitudes (|Vth| near 0.45–0.5 V at a 0.7 V
// nominal supply, tox = 0.95 nm as in the paper's Table I) inside the
// simplified EKV equations of this package. Absolute currents therefore
// differ from BSIM, but the SRAM-cell ratioed-fight behaviour that the
// failure indicator depends on is preserved.

// PTM16HPNMOS returns the NMOS parameter set.
func PTM16HPNMOS() Params {
	return Params{
		Name:   "ptm16hp-nmos",
		Pol:    NMOS,
		VT0:    0.48,
		Slope:  1.25,
		KP:     5.0e-4,
		Lambda: 0.15,
		Gamma:  0.30,
		Phi:    0.80,
		DIBL:   0.25,
		Tox:    0.95e-9,
	}
}

// PTM16HPPMOS returns the PMOS parameter set. VT0 is a magnitude; the model
// applies polarity internally.
func PTM16HPPMOS() Params {
	return Params{
		Name:   "ptm16hp-pmos",
		Pol:    PMOS,
		VT0:    0.43,
		Slope:  1.25,
		KP:     2.2e-4,
		Lambda: 0.17,
		Gamma:  0.28,
		Phi:    0.80,
		DIBL:   0.25,
		Tox:    0.95e-9,
	}
}

// VddNominal is the nominal supply of the 16 nm HP node [V].
const VddNominal = 0.7

// VddLow is the lowered supply used in the paper's Fig. 7 so that naive
// Monte Carlo converges [V].
const VddLow = 0.5
