package sram

import (
	"sync/atomic"
)

// SolveTelemetry accumulates root-solver effort counters. The estimators'
// cost model counts indicator calls; these counters expose what one
// indicator call costs underneath — how many half-cell root solves ran and
// how many Illinois iterations (one KCL residual evaluation, i.e. three
// Ids calls, each) they needed. Counters are plain sums of integers, so
// they are deterministic at any parallelism level.
//
// A *SolveTelemetry can be attached to VTCOptions/SNMOptions; the sweep
// routines accumulate locally and add once per curve, so the atomics stay
// off the inner loop.
type SolveTelemetry struct {
	Solves atomic.Int64 // half-cell root solves
	Iters  atomic.Int64 // Illinois iterations across those solves
}

// add folds a local tally into the telemetry (nil-safe).
func (t *SolveTelemetry) add(solves, iters int64) {
	if t == nil {
		return
	}
	t.Solves.Add(solves)
	t.Iters.Add(iters)
}

// Totals reads the accumulated counters.
func (t *SolveTelemetry) Totals() (solves, iters int64) {
	return t.Solves.Load(), t.Iters.Load()
}

// totalTelemetry is the process-wide tally behind TotalSolveTelemetry.
var totalTelemetry SolveTelemetry

// TotalSolveTelemetry reports the process-wide root-solve and iteration
// totals since start — the figures the service's /metrics endpoint exposes.
func TotalSolveTelemetry() (solves, iters int64) {
	return totalTelemetry.Solves.Load(), totalTelemetry.Iters.Load()
}

// SolveObserver receives per-curve solver tallies: v is the mean Illinois
// iteration count per root solve over the curve, n the number of solves. The
// service registers its root-solve-iterations histogram here; ObserveN on an
// atomic-bucket histogram satisfies the signature directly.
type SolveObserver interface {
	ObserveN(v float64, n int64)
}

// solveObserver is the registered observer, read with one atomic load per
// curve — nil (the default) costs a pointer load and a branch.
var solveObserver atomic.Pointer[SolveObserver]

// RegisterSolveObserver installs obs as the process-wide solver observer
// (nil unregisters). Later registrations replace earlier ones.
func RegisterSolveObserver(obs SolveObserver) {
	if obs == nil {
		solveObserver.Store(nil)
		return
	}
	solveObserver.Store(&obs)
}

// recordGlobal folds a per-curve tally into the process-wide counters and
// the registered observer, if any. Called once per curve/solve batch, never
// from the solver inner loop.
func recordGlobal(solves, iters int64) {
	totalTelemetry.add(solves, iters)
	if p := solveObserver.Load(); p != nil && solves > 0 {
		(*p).ObserveN(float64(iters)/float64(solves), solves)
	}
}
