package sram

import (
	"sync/atomic"
)

// SolveTelemetry accumulates root-solver effort counters. The estimators'
// cost model counts indicator calls; these counters expose what one
// indicator call costs underneath — how many half-cell root solves ran and
// how many Illinois iterations (one KCL residual evaluation, i.e. three
// Ids calls, each) they needed. Counters are plain sums of integers, so
// they are deterministic at any parallelism level.
//
// A *SolveTelemetry can be attached to VTCOptions/SNMOptions; the sweep
// routines accumulate locally and add once per curve, so the atomics stay
// off the inner loop.
type SolveTelemetry struct {
	Solves atomic.Int64 // half-cell root solves
	Iters  atomic.Int64 // residual evaluations across those solves

	// Lane-utilization counters, filled only by the batch solver: every
	// lockstep residual-evaluation round bills LaneSlots with the batch
	// width and LaneOccupied with the lanes actually evaluated, so
	// LaneOccupied/LaneSlots is the fraction of kernel work that was live
	// (converged lanes ride along masked out until their batch drains).
	// Both are exact integer tallies over a fixed chunking of the sample
	// stream, hence deterministic at any parallelism level.
	LaneSlots    atomic.Int64
	LaneOccupied atomic.Int64
}

// add folds a local tally into the telemetry (nil-safe).
func (t *SolveTelemetry) add(solves, iters int64) {
	if t == nil {
		return
	}
	t.Solves.Add(solves)
	t.Iters.Add(iters)
}

// addLanes folds a batch sweep's lane-occupancy tally in (nil-safe).
func (t *SolveTelemetry) addLanes(slots, occupied int64) {
	if t == nil {
		return
	}
	t.LaneSlots.Add(slots)
	t.LaneOccupied.Add(occupied)
}

// Merge folds another telemetry's counters into t (nil-safe on t). The
// engine's lockstep margin sweep points each worker at a padded private
// tally and merges them here once per barrier, so the shared counters are
// touched a bounded number of times per batch instead of per curve.
func (t *SolveTelemetry) Merge(from *SolveTelemetry) {
	if t == nil || from == nil {
		return
	}
	t.add(from.Solves.Load(), from.Iters.Load())
	t.addLanes(from.LaneSlots.Load(), from.LaneOccupied.Load())
}

// Reset zeroes the counters (for reusing a local tally across barriers).
func (t *SolveTelemetry) Reset() {
	t.Solves.Store(0)
	t.Iters.Store(0)
	t.LaneSlots.Store(0)
	t.LaneOccupied.Store(0)
}

// Totals reads the accumulated counters.
func (t *SolveTelemetry) Totals() (solves, iters int64) {
	return t.Solves.Load(), t.Iters.Load()
}

// LaneTotals reads the batch-path lane-occupancy counters.
func (t *SolveTelemetry) LaneTotals() (slots, occupied int64) {
	return t.LaneSlots.Load(), t.LaneOccupied.Load()
}

// totalTelemetry is the process-wide tally behind TotalSolveTelemetry.
var totalTelemetry SolveTelemetry

// TotalSolveTelemetry reports the process-wide root-solve and iteration
// totals since start — the figures the service's /metrics endpoint exposes.
func TotalSolveTelemetry() (solves, iters int64) {
	return totalTelemetry.Solves.Load(), totalTelemetry.Iters.Load()
}

// TotalLaneTelemetry reports the process-wide batch-kernel lane-occupancy
// totals since start (zero when only the scalar path has run).
func TotalLaneTelemetry() (slots, occupied int64) {
	return totalTelemetry.LaneSlots.Load(), totalTelemetry.LaneOccupied.Load()
}

// SolveObserver receives per-curve solver tallies: v is the mean Illinois
// iteration count per root solve over the curve, n the number of solves. The
// service registers its root-solve-iterations histogram here; ObserveN on an
// atomic-bucket histogram satisfies the signature directly.
type SolveObserver interface {
	ObserveN(v float64, n int64)
}

// solveObserver is the registered observer, read with one atomic load per
// curve — nil (the default) costs a pointer load and a branch.
var solveObserver atomic.Pointer[SolveObserver]

// RegisterSolveObserver installs obs as the process-wide solver observer
// (nil unregisters). Later registrations replace earlier ones.
func RegisterSolveObserver(obs SolveObserver) {
	if obs == nil {
		solveObserver.Store(nil)
		return
	}
	solveObserver.Store(&obs)
}

// recordGlobal folds a per-curve tally into the process-wide counters and
// the registered observer, if any. Called once per curve/solve batch, never
// from the solver inner loop.
func recordGlobal(solves, iters int64) {
	totalTelemetry.add(solves, iters)
	if p := solveObserver.Load(); p != nil && solves > 0 {
		(*p).ObserveN(float64(iters)/float64(solves), solves)
	}
}

// recordGlobalLanes folds a batch sweep's lane-occupancy tally into the
// process-wide counters. Called once per batched curve sweep.
func recordGlobalLanes(slots, occupied int64) {
	totalTelemetry.addLanes(slots, occupied)
}
