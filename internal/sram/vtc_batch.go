package sram

import (
	"math"

	"ecripse/internal/device"
)

// This file is the lockstep (structure-of-arrays) counterpart of vtc.go:
// the same anchor-and-sweep VTC solve, marched over a batch of shift
// vectors ("lanes") at once. Each lane performs bit-for-bit the same
// operation sequence as the scalar solver — the per-lane arithmetic below
// is copied expression-for-expression from halfCell.solve/readVTCInto, and
// lanes that converge are masked out of subsequent residual rounds, never
// re-ordered — so results are pinned identical to the scalar path (see
// FuzzNoiseMarginBatch). The throughput win is that every residual round
// evaluates the KCL current of all live lanes in one pass over parallel
// float64 slices, turning the latency-bound exp/sqrt chain of a single
// Illinois iteration into independent per-lane work the CPU can overlap.

// halfCellBatch is the SoA counterpart of halfCell: one resolved lane batch
// per device position, shared bias rails.
type halfCellBatch struct {
	load, driver, access device.ResolvedBatch
	vdd, wl, bl          float64
}

// gatherShifts collects shift component idx of every lane into buf.
func gatherShifts(shs []Shifts, idx int, buf []float64) []float64 {
	buf = buf[:0]
	for i := range shs {
		buf = append(buf, shs[i][idx])
	}
	return buf
}

// halfLanes positions h on one cell half for every lane in shs. buf is
// shift-gather scratch; the (possibly grown) buffer is returned for reuse.
func (c *Cell) halfLanes(side Side, shs []Shifts, o *VTCOptions, buf []float64, h *halfCellBatch) []float64 {
	li, di, ai := side.devices()
	buf = gatherShifts(shs, li, buf)
	c.Devs[li].ResolveLanes(buf, &h.load)
	buf = gatherShifts(shs, di, buf)
	c.Devs[di].ResolveLanes(buf, &h.driver)
	buf = gatherShifts(shs, ai, buf)
	c.Devs[ai].ResolveLanes(buf, &h.access)
	h.vdd, h.wl, h.bl = c.Vdd, o.WordLine, o.BitLine
	return buf
}

// current evaluates the KCL residual of every active lane at its node
// voltage v[l] into out[l]. Store-then-add reproduces the scalar sum
// (iDrv + iLoad) + iAcc with identical association — including signed
// zeros, which a zero-initialize-and-accumulate form would not.
func (h *halfCellBatch) current(vin float64, v []float64, active []bool, out []float64) {
	h.driver.StoreIds(vin, v, 0, 0, active, out)
	h.load.AddIds(vin, v, h.vdd, h.vdd, active, out)
	h.access.AddIds(h.wl, v, h.bl, 0, active, out)
}

// laneState is the per-lane solver state of one lockstep batch, reused
// across every solve of a sweep.
type laneState struct {
	lo, hi   []float64 // working bracket (caller loads per solve; mutated)
	flo, fhi []float64
	mid, fm  []float64
	ftol     []float64
	root     []float64
	iters    []int64 // billed residual evals per lane, per solve
	side     []int8
	done     []bool
	active   []bool

	// Lane-occupancy tally across a sweep: every residual round adds the
	// batch width to slots and the evaluated-lane count to occupied.
	slots, occupied int64
}

func growI64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	return buf[:n]
}

func growI8(buf []int8, n int) []int8 {
	if cap(buf) < n {
		return make([]int8, n)
	}
	return buf[:n]
}

func growB(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

func (s *laneState) resize(n int) {
	s.lo, s.hi = growF(s.lo, n), growF(s.hi, n)
	s.flo, s.fhi = growF(s.flo, n), growF(s.fhi, n)
	s.mid, s.fm = growF(s.mid, n), growF(s.fm, n)
	s.ftol = growF(s.ftol, n)
	s.root = growF(s.root, n)
	s.iters = growI64(s.iters, n)
	s.side = growI8(s.side, n)
	s.done = growB(s.done, n)
	s.active = growB(s.active, n)
}

// solveLanes runs halfCell.solve for every lane in lockstep: brackets come
// in via s.lo/s.hi, roots land in s.root, and s.iters[l] is exactly what
// the scalar solve would have returned for lane l. Every numeric step below
// mirrors the scalar code verbatim (including its NaN behaviour: a NaN
// residual never joins an expansion mask, forces the bisection fallback on
// the interpolated point, and routes the degenerate return to hi).
func (h *halfCellBatch) solveLanes(s *laneState, vin float64, maxIter int) {
	n := len(s.lo)
	lanes := int64(n)
	for l := 0; l < n; l++ {
		s.done[l] = false
		s.side[l] = 0
		s.iters[l] = 0
	}
	// Entry residuals at both bracket ends: two full-occupancy rounds.
	h.current(vin, s.lo, nil, s.flo)
	h.current(vin, s.hi, nil, s.fhi)
	s.slots += 2 * lanes
	s.occupied += 2 * lanes

	// Bracket expansion. A lane joins round k iff its own residual still
	// has the wrong sign — the same per-lane eval count as the scalar
	// loops, just synchronized.
	for k := 0; k < 8; k++ {
		cnt := 0
		for l := 0; l < n; l++ {
			a := s.flo[l] > 0
			s.active[l] = a
			if a {
				s.lo[l] -= 0.2
				cnt++
			}
		}
		if cnt == 0 {
			break
		}
		h.current(vin, s.lo, s.active, s.flo)
		for l := 0; l < n; l++ {
			if s.active[l] {
				s.iters[l]++
			}
		}
		s.slots += lanes
		s.occupied += int64(cnt)
	}
	for k := 0; k < 8; k++ {
		cnt := 0
		for l := 0; l < n; l++ {
			a := s.fhi[l] < 0
			s.active[l] = a
			if a {
				s.hi[l] += 0.2
				cnt++
			}
		}
		if cnt == 0 {
			break
		}
		h.current(vin, s.hi, s.active, s.fhi)
		for l := 0; l < n; l++ {
			if s.active[l] {
				s.iters[l]++
			}
		}
		s.slots += lanes
		s.occupied += int64(cnt)
	}

	// Post-bracket finalization: degenerate brackets and residual early
	// accepts retire their lanes before the iteration loop starts.
	for l := 0; l < n; l++ {
		flo, fhi := s.flo[l], s.fhi[l]
		if flo > 0 || fhi < 0 {
			if math.Abs(flo) < math.Abs(fhi) {
				s.root[l] = s.lo[l]
			} else {
				s.root[l] = s.hi[l]
			}
			s.done[l] = true
			continue
		}
		ftol := solveFtolRel * math.Max(-flo, fhi)
		s.ftol[l] = ftol
		if flo >= -ftol {
			s.root[l] = s.lo[l]
			s.done[l] = true
			continue
		}
		if fhi <= ftol {
			s.root[l] = s.hi[l]
			s.done[l] = true
		}
	}

	// Lockstep Illinois iteration. Converged lanes drop out of the mask;
	// live lanes step exactly as the scalar loop body does.
	for i := 0; i < maxIter; i++ {
		cnt := 0
		for l := 0; l < n; l++ {
			if s.done[l] {
				s.active[l] = false
				continue
			}
			lo, hi := s.lo[l], s.hi[l]
			if !(hi-lo > solveXtol) {
				s.root[l] = 0.5 * (lo + hi)
				s.done[l] = true
				s.active[l] = false
				continue
			}
			flo, fhi := s.flo[l], s.fhi[l]
			var mid float64
			if fhi != flo {
				mid = lo - flo*(hi-lo)/(fhi-flo)
			}
			// Keep the step inside the bracket; degrade to bisection otherwise.
			if !(mid > lo && mid < hi) {
				mid = 0.5 * (lo + hi)
			}
			s.mid[l] = mid
			s.active[l] = true
			cnt++
		}
		if cnt == 0 {
			return
		}
		h.current(vin, s.mid, s.active, s.fm)
		s.slots += lanes
		s.occupied += int64(cnt)
		for l := 0; l < n; l++ {
			if !s.active[l] {
				continue
			}
			s.iters[l]++
			fm := s.fm[l]
			if fm >= -s.ftol[l] && fm <= s.ftol[l] {
				s.root[l] = s.mid[l]
				s.done[l] = true
				continue
			}
			if fm > 0 {
				s.hi[l], s.fhi[l] = s.mid[l], fm
				if s.side[l] == +1 {
					s.flo[l] *= 0.5 // Illinois trick: avoid endpoint stagnation
				}
				s.side[l] = +1
			} else {
				s.lo[l], s.flo[l] = s.mid[l], fm
				if s.side[l] == -1 {
					s.fhi[l] *= 0.5
				}
				s.side[l] = -1
			}
		}
	}
	// Iteration budget exhausted: bracket midpoint, as in the scalar solver.
	for l := 0; l < n; l++ {
		if !s.done[l] {
			s.root[l] = 0.5 * (s.lo[l] + s.hi[l])
			s.done[l] = true
		}
	}
}

// readVTCLanes is the lockstep counterpart of readVTCInto: it sweeps the
// half-cell transfer curve of every lane in st over the shared input grid,
// writing grid-major rows (rows[i*lanes+l] = lane l's output at grid point
// i) and the shared grid into in (length n+1). Warm bracketing is per lane:
// each lane's anchor tightens its own lower endpoint and its previous root
// its own upper one, exactly as in the scalar sweep.
func (c *Cell) readVTCLanes(side Side, shs []Shifts, n int, o *VTCOptions, st *batchScratch, in, rows []float64) {
	lanes := len(shs)
	st.shiftBuf = c.halfLanes(side, shs, o, st.shiftBuf, &st.half)
	s := &st.lanes
	s.resize(lanes)
	s.slots, s.occupied = 0, 0

	// Anchor solve at vin = Vdd: each lane's curve minimum.
	for l := 0; l < lanes; l++ {
		s.lo[l] = -0.2
		s.hi[l] = c.Vdd + 0.2
	}
	st.half.solveLanes(s, c.Vdd, o.BisectIter)
	solves, iters := int64(lanes), int64(0)
	for l := 0; l < lanes; l++ {
		iters += s.iters[l]
		st.vmin[l] = s.root[l]
		// Guard band below the anchor, as in the scalar sweep.
		st.laneLo[l] = s.root[l] - 1e-6
		st.laneHi[l] = c.Vdd + 0.2
	}

	for i := 0; i <= n; i++ {
		vin := c.Vdd * float64(i) / float64(n)
		row := rows[i*lanes : (i+1)*lanes]
		if i == n {
			copy(row, st.vmin) // the anchor already solved this grid point
		} else {
			copy(s.lo, st.laneLo)
			copy(s.hi, st.laneHi)
			st.half.solveLanes(s, vin, o.BisectIter)
			solves += int64(lanes)
			for l := 0; l < lanes; l++ {
				iters += s.iters[l]
			}
			copy(row, s.root)
		}
		in[i] = vin
		// The VTC is non-increasing: each lane's next root lies at or
		// below its current one.
		for l := 0; l < lanes; l++ {
			st.laneHi[l] = row[l] + 1e-6
		}
	}
	o.Telemetry.add(solves, iters)
	o.Telemetry.addLanes(s.slots, s.occupied)
	recordGlobal(solves, iters)
	recordGlobalLanes(s.slots, s.occupied)
}
