package sram

import "sync"

// batchScratch carries every buffer one lockstep margin chunk needs. Pooled
// so the batch hot path — called from many goroutines at the engine's batch
// barriers — allocates nothing per chunk.
type batchScratch struct {
	shiftBuf             []float64
	half                 halfCellBatch
	lanes                laneState
	vmin, laneLo, laneHi []float64
	in                   []float64
	rowsA, rowsB         []float64 // grid-major: rows[i*lanes+l]
	aOut, bOut           []float64 // per-lane gather for the rotation step
	ra, rb               rotCurve
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func (st *batchScratch) resize(lanes, gridN int) {
	pts := gridN + 1
	st.vmin = growF(st.vmin, lanes)
	st.laneLo = growF(st.laneLo, lanes)
	st.laneHi = growF(st.laneHi, lanes)
	st.in = growF(st.in, pts)
	st.rowsA = growF(st.rowsA, pts*lanes)
	st.rowsB = growF(st.rowsB, pts*lanes)
	st.aOut = growF(st.aOut, pts)
	st.bOut = growF(st.bOut, pts)
	st.ra.u, st.ra.w = growF(st.ra.u, pts), growF(st.ra.w, pts)
	st.rb.u, st.rb.w = growF(st.rb.u, pts), growF(st.rb.w, pts)
}

// NoiseMarginBatch computes NoiseMargin for every shift vector in shs,
// writing out[i] for shs[i]. Batches wider than opts.Lanes (default 64) are
// processed in lockstep chunks of that width. Every result is bit-identical
// to the scalar NoiseMargin on the same shifts — the batch exists purely
// for throughput: each residual round of the root solver evaluates all live
// lanes in one structure-of-arrays pass instead of one latency chain per
// sample. Safe for concurrent use; all working memory comes from a pool.
func (c *Cell) NoiseMarginBatch(shs []Shifts, out []SNMResult, opts *SNMOptions) {
	if len(out) < len(shs) {
		panic("sram: NoiseMarginBatch output shorter than input")
	}
	var o SNMOptions
	if opts != nil {
		o = *opts
	}
	o.fill()
	// Fill the solver options exactly once; every chunk and both curve
	// sweeps share the same filled copy.
	vo := o.vtcOptions(c.Vdd)

	st := batchPool.Get().(*batchScratch)
	for start := 0; start < len(shs); start += o.Lanes {
		end := start + o.Lanes
		if end > len(shs) {
			end = len(shs)
		}
		chunk := shs[start:end]
		w := len(chunk)
		st.resize(w, o.GridN)
		c.readVTCLanes(Right, chunk, o.GridN, &vo, st, st.in, st.rowsA)
		c.readVTCLanes(Left, chunk, o.GridN, &vo, st, st.in, st.rowsB)
		// Seevinck rotation and lobe extraction are per-lane and cheap
		// relative to the solves; reuse the scalar helpers on gathered
		// columns. Both sweeps share the identical input grid.
		for l := 0; l < w; l++ {
			for i := 0; i <= o.GridN; i++ {
				st.aOut[i] = st.rowsA[i*w+l]
				st.bOut[i] = st.rowsB[i*w+l]
			}
			rotateCurves(st.in, st.aOut, st.in, st.bOut, st.ra, st.rb)
			out[start+l] = marginFromRot(st.ra, st.rb)
		}
	}
	batchPool.Put(st)
}

// FailsBatch evaluates the failure indicator for every shift vector in shs
// via the batch kernel; out[i] reports whether shs[i] fails.
func (c *Cell) FailsBatch(shs []Shifts, out []bool, res []SNMResult, opts *SNMOptions) {
	c.NoiseMarginBatch(shs, res, opts)
	for i := range shs {
		out[i] = res[i].Fails()
	}
}
