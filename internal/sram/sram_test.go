package sram

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"ecripse/internal/device"
)

func TestSigmaVthMagnitudes(t *testing.T) {
	c := NewCell(device.VddNominal)
	sig := c.SigmaVth()
	// Load: K · 500 mV·nm / sqrt(16·60 nm²) = K · 16.1 mV.
	if math.Abs(sig[L1]-CalibrationK*0.01614) > 2e-3 {
		t.Fatalf("sigma load = %v", sig[L1])
	}
	// Driver/access: K · 500/sqrt(16·30) = K · 22.8 mV.
	if math.Abs(sig[D1]-CalibrationK*0.02282) > 2e-3 {
		t.Fatalf("sigma driver = %v", sig[D1])
	}
	if sig[D1] != sig[A1] || sig[L1] != sig[L2] {
		t.Fatal("symmetric devices must share sigma")
	}
}

func TestHalfVTCEndpoints(t *testing.T) {
	c := NewCell(device.VddNominal)
	var sh Shifts
	// Input low: driver off, output held high (load + access both pull to Vdd).
	hi := c.HalfVTC(Right, 0, sh, nil)
	if hi < 0.6 || hi > 0.75 {
		t.Fatalf("output at vin=0: %v", hi)
	}
	// Input high during read: output is the read-disturb level — above
	// ground (access fights driver) but well below Vdd/2.
	lo := c.HalfVTC(Right, c.Vdd, sh, nil)
	if lo < 0.01 || lo > 0.35 {
		t.Fatalf("read-disturb level at vin=Vdd: %v", lo)
	}
	if hi-lo < 0.3 {
		t.Fatalf("VTC swing too small: %v..%v", lo, hi)
	}
}

func TestHalfVTCMonotoneDecreasing(t *testing.T) {
	c := NewCell(device.VddNominal)
	var sh Shifts
	prev := math.Inf(1)
	for i := 0; i <= 50; i++ {
		vin := c.Vdd * float64(i) / 50
		v := c.HalfVTC(Right, vin, sh, nil)
		if v > prev+1e-9 {
			t.Fatalf("VTC not decreasing at vin=%v: %v > %v", vin, v, prev)
		}
		prev = v
	}
}

func TestHalfVTCMatchesSpice(t *testing.T) {
	c := NewCell(device.VddNominal)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 12; trial++ {
		var sh Shifts
		for i := range sh {
			sh[i] = 0.03 * rng.NormFloat64()
		}
		vin := rng.Float64() * c.Vdd
		fast := c.HalfVTC(Right, vin, sh, nil)
		ref, err := c.HalfVTCSpice(Right, vin, sh)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(fast-ref) > 1e-4 {
			t.Fatalf("trial %d (vin=%v): fast %v vs spice %v", trial, vin, fast, ref)
		}
	}
}

func TestHoldVTCStrongerThanRead(t *testing.T) {
	c := NewCell(device.VddNominal)
	var sh Shifts
	read := c.HalfVTC(Right, c.Vdd, sh, nil)
	hold := c.HalfVTC(Right, c.Vdd, sh, &VTCOptions{AccessOff: true})
	// Without the access fight, the low level must be (much) lower.
	if hold >= read {
		t.Fatalf("hold low %v >= read low %v", hold, read)
	}
	if hold > 0.02 {
		t.Fatalf("hold low level too high: %v", hold)
	}
}

func TestNominalCellIsStable(t *testing.T) {
	c := NewCell(device.VddNominal)
	var sh Shifts
	res := c.NoiseMargin(sh, nil)
	if res.Fails() {
		t.Fatalf("nominal cell fails: %+v", res)
	}
	if res.SNM() < 0.02 || res.SNM() > 0.35 {
		t.Fatalf("nominal read SNM out of plausible band: %v", res.SNM())
	}
}

func TestSymmetricCellHasEqualLobes(t *testing.T) {
	c := NewCell(device.VddNominal)
	var sh Shifts
	res := c.NoiseMargin(sh, nil)
	if math.Abs(res.Lobe1-res.Lobe2) > 2e-3 {
		t.Fatalf("lobes differ for symmetric cell: %+v", res)
	}
}

func TestHoldSNMExceedsReadSNM(t *testing.T) {
	c := NewCell(device.VddNominal)
	var sh Shifts
	read := c.ReadSNM(sh, nil)
	hold := c.HoldSNM(sh, nil)
	if hold <= read {
		t.Fatalf("hold SNM %v <= read SNM %v", hold, read)
	}
}

func TestMismatchDegradesSNM(t *testing.T) {
	c := NewCell(device.VddNominal)
	var sh Shifts
	base := c.ReadSNM(sh, nil)
	// Weaken one driver: read stability of that side collapses.
	sh[D1] = 0.08
	degraded := c.ReadSNM(sh, nil)
	if degraded >= base {
		t.Fatalf("weakened driver did not degrade SNM: %v vs %v", degraded, base)
	}
}

func TestLargeMismatchCausesFailure(t *testing.T) {
	c := NewCell(device.VddNominal)
	var sh Shifts
	sh[D1] = 0.30  // driver 1 nearly dead
	sh[A1] = -0.18 // strong access on the same side: read disturb flips V1
	res := c.NoiseMargin(sh, nil)
	if !res.Fails() {
		t.Fatalf("expected failure, got %+v (SNM %v)", res, res.SNM())
	}
}

func TestFailureIsSymmetric(t *testing.T) {
	// Mirroring the shift vector across the cell symmetry swaps the lobes.
	c := NewCell(device.VddNominal)
	sh := Shifts{0.01, -0.02, 0.03, 0.01, -0.015, 0.02}
	mir := Shifts{sh[L2], sh[L1], sh[D2], sh[D1], sh[A2], sh[A1]}
	r1 := c.NoiseMargin(sh, nil)
	r2 := c.NoiseMargin(mir, nil)
	if math.Abs(r1.Lobe1-r2.Lobe2) > 2e-3 || math.Abs(r1.Lobe2-r2.Lobe1) > 2e-3 {
		t.Fatalf("mirror symmetry violated: %+v vs %+v", r1, r2)
	}
}

func TestLowerVddLowersSNM(t *testing.T) {
	var sh Shifts
	hi := NewCell(device.VddNominal).ReadSNM(sh, nil)
	lo := NewCell(device.VddLow).ReadSNM(sh, nil)
	if lo >= hi {
		t.Fatalf("SNM at 0.5 V (%v) >= SNM at 0.7 V (%v)", lo, hi)
	}
}

func TestShiftsVectorRoundTrip(t *testing.T) {
	sh := Shifts{1, 2, 3, 4, 5, 6}
	v := sh.Vector()
	back := FromVector(v)
	if back != sh {
		t.Fatalf("round trip %v -> %v", sh, back)
	}
	sum := sh.Add(Shifts{1, 1, 1, 1, 1, 1})
	if sum != (Shifts{2, 3, 4, 5, 6, 7}) {
		t.Fatalf("Add = %v", sum)
	}
}

func TestFromVectorPanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromVector(make([]float64, 5))
}

func TestButterflyCurvesCross(t *testing.T) {
	c := NewCell(device.VddNominal)
	var sh Shifts
	a, b := c.Butterfly(sh, nil)
	if len(a.In) != len(b.In) {
		t.Fatal("curve lengths differ")
	}
	// Both transfer curves must be monotone decreasing with a healthy swing;
	// for the symmetric nominal cell they coincide as functions (fR == fL),
	// forming the butterfly when one is transposed.
	for _, cur := range []Curve{a, b} {
		for i := 1; i < len(cur.Out); i++ {
			if cur.Out[i] > cur.Out[i-1]+1e-9 {
				t.Fatalf("curve not monotone at %d", i)
			}
		}
		if cur.Out[0]-cur.Out[len(cur.Out)-1] < 0.3 {
			t.Fatal("curve swing too small")
		}
	}
}

func TestGridRefinementConverges(t *testing.T) {
	c := NewCell(device.VddNominal)
	sh := Shifts{0.01, -0.01, 0.02, 0, -0.01, 0.015}
	coarse := c.ReadSNM(sh, &SNMOptions{GridN: 32})
	fine := c.ReadSNM(sh, &SNMOptions{GridN: 256})
	if math.Abs(coarse-fine) > 3e-3 {
		t.Fatalf("grid sensitivity too high: %v vs %v", coarse, fine)
	}
}

func TestBuildCircuitSolves(t *testing.T) {
	c := NewCell(device.VddNominal)
	var sh Shifts
	ckt := c.BuildCircuit(sh)
	// Bias one internal node via the bitline path is implicit; just check
	// the read operating point solves and sits at a valid storage state.
	sol, err := ckt.DCSolve(nil)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	v1, err := sol.VoltageOf(ckt, "v1")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := sol.VoltageOf(ckt, "v2")
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(v1) || math.IsNaN(v2) {
		t.Fatal("NaN node voltages")
	}
	if v1 < -0.05 || v1 > c.Vdd+0.05 || v2 < -0.05 || v2 > c.Vdd+0.05 {
		t.Fatalf("node voltages out of rails: v1=%v v2=%v", v1, v2)
	}
}

// Property: SNM never increases when any single device is weakened further
// on the failing side direction (local monotonicity along a degrading ray).
func TestPropertySNMDegradesAlongRay(t *testing.T) {
	c := NewCell(device.VddNominal)
	dir := Shifts{0, 0, 0.02, 0, 0, -0.01} // weaken D1, strengthen A2: classic read-failure direction
	prev := math.Inf(1)
	for k := 0; k <= 10; k++ {
		var sh Shifts
		for i := range sh {
			sh[i] = dir[i] * float64(k)
		}
		snm := c.ReadSNM(sh, nil)
		if snm > prev+1e-4 {
			t.Fatalf("SNM increased along degradation ray at step %d: %v > %v", k, snm, prev)
		}
		prev = snm
	}
}

// Property: noise margin is finite for random bounded shifts.
func TestPropertySNMFinite(t *testing.T) {
	c := NewCell(device.VddNominal)
	f := func(raw [6]int8) bool {
		var sh Shifts
		for i, r := range raw {
			sh[i] = float64(r) / 500 // ±0.254 V
		}
		res := c.NoiseMargin(sh, &SNMOptions{GridN: 24, BisectIter: 24})
		return !math.IsNaN(res.Lobe1) && !math.IsNaN(res.Lobe2) &&
			!math.IsInf(res.Lobe1, 0) && !math.IsInf(res.Lobe2, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReadSNMDefault(b *testing.B) {
	c := NewCell(device.VddNominal)
	sh := Shifts{0.01, -0.01, 0.02, 0, -0.01, 0.015}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.ReadSNM(sh, nil)
	}
}

func BenchmarkReadSNMFast(b *testing.B) {
	c := NewCell(device.VddNominal)
	sh := Shifts{0.01, -0.01, 0.02, 0, -0.01, 0.015}
	opt := &SNMOptions{GridN: 24, BisectIter: 24}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.ReadSNM(sh, opt)
	}
}

func TestWriteMarginNominalCellWritable(t *testing.T) {
	c := NewCell(device.VddNominal)
	var sh Shifts
	wm := c.WriteMargin(sh, nil)
	if wm <= 0 {
		t.Fatalf("nominal cell not writable: margin %v", wm)
	}
	if c.WriteFails(sh, nil) {
		t.Fatal("nominal cell write fails")
	}
}

func TestWriteMarginDegradesWithStrongLoad(t *testing.T) {
	// A very strong load (negative DVth on the PMOS holding V1 high) plus a
	// weak access transistor makes the old state hard to overwrite.
	c := NewCell(device.VddNominal)
	var sh Shifts
	base := c.WriteMargin(sh, nil)
	sh[L1] = -0.15 // stronger pull-up on V1
	sh[A1] = 0.15  // weaker access pull-down
	hard := c.WriteMargin(sh, nil)
	if hard >= base {
		t.Fatalf("write margin did not degrade: %v -> %v", base, hard)
	}
}

func TestWriteMarginCanGoNegative(t *testing.T) {
	c := NewCell(device.VddNominal)
	var sh Shifts
	sh[L1] = -0.4
	sh[A1] = 0.4
	if wm := c.WriteMargin(sh, nil); wm >= 0 {
		t.Fatalf("extreme mismatch still writable: %v", wm)
	}
}

func TestWriteVsReadTradeoff(t *testing.T) {
	// Strengthening the access transistor helps writes and hurts reads —
	// the classic 6T sizing trade-off; both margins must reflect it.
	c := NewCell(device.VddNominal)
	var sh Shifts
	read0, write0 := c.ReadSNM(sh, nil), c.WriteMargin(sh, nil)
	sh[A1], sh[A2] = -0.08, -0.08 // stronger access
	read1, write1 := c.ReadSNM(sh, nil), c.WriteMargin(sh, nil)
	if !(write1 > write0) {
		t.Fatalf("stronger access did not help write: %v -> %v", write0, write1)
	}
	if !(read1 < read0) {
		t.Fatalf("stronger access did not hurt read: %v -> %v", read0, read1)
	}
}

func TestNCurveNominalBistable(t *testing.T) {
	c := NewCell(device.VddNominal)
	var sh Shifts
	m := c.NCurveStability(sh, nil)
	if m.Zeros != 3 {
		t.Fatalf("nominal N-curve zeros = %d, want 3", m.Zeros)
	}
	if m.SVNM <= 0 || m.SINM <= 0 {
		t.Fatalf("margins not positive: %+v", m)
	}
	// SVNM should be commensurate with (and larger than) the read SNM.
	snm := c.ReadSNM(sh, nil)
	if m.SVNM < snm {
		t.Fatalf("SVNM %v smaller than SNM %v", m.SVNM, snm)
	}
}

func TestNCurveFailingCellLosesZeros(t *testing.T) {
	c := NewCell(device.VddNominal)
	sh := Shifts{0, 0, 0.35, 0, -0.2, 0} // the Fig. 5 defective cell
	m := c.NCurveStability(sh, nil)
	if m.Zeros >= 3 {
		t.Fatalf("failing cell still has %d zeros", m.Zeros)
	}
	if m.SVNM != 0 || m.SINM != 0 {
		t.Fatalf("failing cell reports margins: %+v", m)
	}
}

func TestNCurveMetricsDegradeWithMismatch(t *testing.T) {
	c := NewCell(device.VddNominal)
	var nominal Shifts
	weak := Shifts{0, 0, 0.15, 0, -0.08, 0}
	m0 := c.NCurveStability(nominal, nil)
	m1 := c.NCurveStability(weak, nil)
	if m1.SINM >= m0.SINM {
		t.Fatalf("SINM did not degrade: %v -> %v", m0.SINM, m1.SINM)
	}
	if m1.SVNM >= m0.SVNM {
		t.Fatalf("SVNM did not degrade: %v -> %v", m0.SVNM, m1.SVNM)
	}
}

func TestNCurveAgreesWithSNMIndicator(t *testing.T) {
	// The two stability views must agree on pass/fail for a spread of cells.
	c := NewCell(device.VddNominal)
	rng := rand.New(rand.NewSource(17))
	agree := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		var sh Shifts
		for j := range sh {
			sh[j] = 0.1 * rng.NormFloat64()
		}
		snmFails := c.Fails(sh, nil)
		nFails := c.NCurveStability(sh, nil).Zeros < 3
		if snmFails == nFails {
			agree++
		}
	}
	if agree < trials-2 { // tolerate borderline samples
		t.Fatalf("indicators agree on only %d/%d cells", agree, trials)
	}
}

func TestPrototypeOffsetComposesWithSampleShift(t *testing.T) {
	// A deterministic design offset on the prototype must compose with the
	// per-sample shift (they add).
	a := NewCell(device.VddNominal)
	a.Devs[A1].DVth = 0.03
	var sh Shifts
	sh[A1] = 0.02
	composed := a.ReadSNM(sh, nil)

	b := NewCell(device.VddNominal)
	var sh2 Shifts
	sh2[A1] = 0.05
	direct := b.ReadSNM(sh2, nil)
	if math.Abs(composed-direct) > 1e-12 {
		t.Fatalf("offset does not compose: %v vs %v", composed, direct)
	}
}

func TestDataRetentionVoltage(t *testing.T) {
	c := NewCell(device.VddNominal)
	var sh Shifts
	drv := c.DataRetentionVoltage(sh, 0.05, nil)
	// The nominal cell holds well below 0.3 V but not at 50 mV.
	if drv <= 0.05 || drv >= 0.5 {
		t.Fatalf("DRV = %v", drv)
	}
	// At the found DRV the hold margin is ~0 from above.
	probe := *c
	probe.Vdd = drv
	if m := probe.HoldSNM(sh, nil); m < 0 || m > 0.01 {
		t.Fatalf("hold margin at DRV = %v", m)
	}
	// A mismatched cell retains less well: higher DRV.
	bad := Shifts{0.08, -0.08, 0.08, -0.08, 0, 0}
	if c.DataRetentionVoltage(bad, 0.05, nil) <= drv {
		t.Fatal("mismatch did not raise DRV")
	}
	// The original cell is untouched.
	if c.Vdd != device.VddNominal {
		t.Fatal("DRV search mutated the cell")
	}
}

func TestTemperatureDegradesReadStability(t *testing.T) {
	var sh Shifts
	cold := NewCellAt(device.VddNominal, 250)
	hot := NewCellAt(device.VddNominal, 400)
	if hot.ReadSNM(sh, nil) >= cold.ReadSNM(sh, nil) {
		t.Fatal("read SNM did not degrade with temperature")
	}
	if hot.HoldSNM(sh, nil) >= cold.HoldSNM(sh, nil) {
		t.Fatal("hold SNM did not degrade with temperature")
	}
	// Writes get easier when the cell weakens.
	if hot.WriteMargin(sh, nil) <= cold.WriteMargin(sh, nil) {
		t.Fatal("write margin did not improve with temperature")
	}
}

func TestLeakageMagnitudeAndState(t *testing.T) {
	c := NewCell(device.VddNominal)
	var sh Shifts
	r := c.Leakage(sh, nil)
	// The held state: V1 near ground, V2 near Vdd.
	if r.V1 > 0.02 || r.V2 < c.Vdd-0.02 {
		t.Fatalf("held state wrong: V1=%v V2=%v", r.V1, r.V2)
	}
	if r.Total <= 0 {
		t.Fatalf("leakage %v", r.Total)
	}
	// Subthreshold leakage of 16nm devices: somewhere in pA..uA per cell.
	if r.Total < 1e-13 || r.Total > 1e-5 {
		t.Fatalf("implausible leakage %v A", r.Total)
	}
}

func TestLeakageGrowsWithTemperature(t *testing.T) {
	var sh Shifts
	cold := NewCellAt(device.VddNominal, 250).Leakage(sh, nil).Total
	hot := NewCellAt(device.VddNominal, 400).Leakage(sh, nil).Total
	if hot < 10*cold {
		t.Fatalf("leakage not strongly temperature-activated: %v -> %v", cold, hot)
	}
}

func TestLeakageDropsWithHigherVth(t *testing.T) {
	c := NewCell(device.VddNominal)
	var sh Shifts
	base := c.Leakage(sh, nil).Total
	// Raise every threshold 50 mV: leakage must drop a lot.
	for i := range sh {
		sh[i] = 0.05
	}
	hvt := c.Leakage(sh, nil).Total
	if hvt > base/2 {
		t.Fatalf("HVT leakage %v not well below %v", hvt, base)
	}
}

func TestCellConcurrentEvaluation(t *testing.T) {
	// A Cell is documented as safe for concurrent use: per-sample shifts
	// are applied to by-value device copies. Hammer it from goroutines
	// (run with -race to make this meaningful).
	c := NewCell(device.VddNominal)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				var sh Shifts
				for j := range sh {
					sh[j] = 0.05 * rng.NormFloat64()
				}
				if m := c.ReadSNM(sh, &SNMOptions{GridN: 16, BisectIter: 16}); math.IsNaN(m) {
					t.Error("NaN margin")
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestNewCellFromDefaultsMatchTableI(t *testing.T) {
	a := NewCellFrom(CellSpec{})
	b := NewCell(device.VddNominal)
	var sh Shifts
	if a.ReadSNM(sh, nil) != b.ReadSNM(sh, nil) {
		t.Fatal("zero spec does not reproduce the Table I cell")
	}
	if !a.SigmaVth().Equal(b.SigmaVth(), 0) {
		t.Fatal("sigma mismatch")
	}
}

func TestNewCellFromBetaRatio(t *testing.T) {
	// The classic knob: a wider driver (higher beta ratio) improves read
	// stability and increases the RDF sigma asymmetry.
	var sh Shifts
	weak := NewCellFrom(CellSpec{DriverW: 30e-9})
	strong := NewCellFrom(CellSpec{DriverW: 60e-9})
	if strong.ReadSNM(sh, nil) <= weak.ReadSNM(sh, nil) {
		t.Fatal("wider driver did not improve read SNM")
	}
	// Wider device -> smaller Pelgrom sigma.
	if strong.SigmaVth()[D1] >= weak.SigmaVth()[D1] {
		t.Fatal("wider driver did not reduce sigma")
	}
	// ...and harder writes (driver does not matter much for writes, but
	// confirm the margin stays sane).
	if strong.WriteMargin(sh, nil) <= 0 {
		t.Fatal("upsized cell no longer writable")
	}
}
