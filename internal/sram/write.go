package sram

// Write-ability analysis — an extension beyond the paper's read-failure
// experiments, using the same butterfly machinery.
//
// During a write of "0" into node V1, the bit line BL is driven low while
// the word line is high; the V1 half-cell now fights the access pull-down
// instead of being disturbed towards Vdd. The write succeeds when this bias
// destroys the bistability that retained the old state: the butterfly eye
// corresponding to "V1 high" must vanish.

// WriteMargin returns a signed static write margin [V]: the depth by which
// the state-retaining butterfly eye has collapsed under the write bias.
// Positive margin = the write succeeds (the old state is no longer an
// equilibrium); negative = the cell still retains V1 = 1 and the write
// fails. The magnitude is the Seevinck square side of the surviving
// (write-failure) eye or of the closest-approach gap.
func (c *Cell) WriteMargin(sh Shifts, opts *SNMOptions) float64 {
	var o SNMOptions
	if opts != nil {
		o = *opts
	}
	o.fill()

	// V1 half under write bias: access pulls V1 to BL = 0. BitLineSet marks
	// the zero as an explicit bias (a bare 0 means "default to Vdd").
	writeOpts := &VTCOptions{BisectIter: o.BisectIter, BitLine: 0, BitLineSet: true, Telemetry: o.Telemetry}
	// V2 half keeps the read bias: BLB stays precharged at Vdd.
	readOpts := &VTCOptions{BisectIter: o.BisectIter, Telemetry: o.Telemetry}

	// Curve B: V1 = fL(V2) under write bias; curve A: V2 = fR(V1) as usual.
	a := c.ReadVTC(Right, sh, o.GridN, readOpts)
	b := c.readVTCWith(Left, sh, o.GridN, writeOpts)

	res := noiseMarginFromCurves(a, b)
	// Lobe2 is the (V1 high, V2 low) eye — the eye that retains the old
	// "1". Its collapse (negative lobe) is exactly a successful write.
	return -res.Lobe2
}

// readVTCWith samples a transfer curve with explicit VTC options (ReadVTC
// always applies the read bias). It shares the warm-started sweep core of
// ReadVTC.
func (c *Cell) readVTCWith(side Side, sh Shifts, n int, opts *VTCOptions) Curve {
	var o VTCOptions
	if opts != nil {
		o = *opts
	}
	o.fill(c.Vdd)
	cur := Curve{In: make([]float64, n+1), Out: make([]float64, n+1)}
	c.readVTCInto(side, sh, n, &o, cur.In, cur.Out)
	return cur
}

// WriteFails reports whether the write-"0" operation fails for the shifted
// cell (the dual indicator to Fails for read stability).
func (c *Cell) WriteFails(sh Shifts, opts *SNMOptions) bool {
	return c.WriteMargin(sh, opts) < 0
}
