package sram

// Data-retention-voltage search — an extension built on the hold-margin
// analysis: the lowest supply at which the cell still holds its state.

// DataRetentionVoltage returns the minimum Vdd at which the cell's hold
// noise margin stays non-negative, found by bisection between vMin and the
// cell's own supply. It returns vMin when the cell holds even there, and
// the cell's Vdd when it cannot hold at its own supply (a broken sample).
//
// The search treats the cell geometry and shifts as fixed and rebuilds the
// supply-dependent bias internally; c itself is not modified.
func (c *Cell) DataRetentionVoltage(sh Shifts, vMin float64, opts *SNMOptions) float64 {
	if vMin <= 0 {
		vMin = 0.05
	}
	// A sub-millivolt guard keeps the bisection away from the numerical
	// noise floor of the margin extraction at very low supplies.
	const guard = 1e-4
	holdOK := func(vdd float64) bool {
		probe := *c
		probe.Vdd = vdd
		return probe.HoldSNM(sh, opts) > guard
	}
	if !holdOK(c.Vdd) {
		return c.Vdd
	}
	if holdOK(vMin) {
		return vMin
	}
	lo, hi := vMin, c.Vdd // lo fails, hi holds
	for hi-lo > 1e-4 {
		mid := 0.5 * (lo + hi)
		if holdOK(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
