package sram

import (
	"math"
	"math/rand"
	"testing"
)

func randShifts(rng *rand.Rand, n int, scale float64) []Shifts {
	shs := make([]Shifts, n)
	for i := range shs {
		for j := range shs[i] {
			shs[i][j] = scale * rng.NormFloat64()
		}
	}
	return shs
}

func assertBatchMatchesScalar(t *testing.T, c *Cell, shs []Shifts, opts *SNMOptions) {
	t.Helper()
	out := make([]SNMResult, len(shs))
	c.NoiseMarginBatch(shs, out, opts)
	for i, sh := range shs {
		want := c.NoiseMargin(sh, opts)
		if math.Float64bits(out[i].Lobe1) != math.Float64bits(want.Lobe1) ||
			math.Float64bits(out[i].Lobe2) != math.Float64bits(want.Lobe2) {
			t.Fatalf("sample %d/%d: batch=%+v scalar=%+v (shifts %v)", i, len(shs), out[i], want, sh)
		}
	}
}

// TestNoiseMarginBatchMatchesScalar pins the batch kernel bit-for-bit
// against the scalar path across the chunking edge cases the ISSUE calls
// out (1, 63, 64, 65, 257), both margin modes, and a non-default lane
// width.
func TestNoiseMarginBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	c := NewCell(0.7)
	opts := &SNMOptions{GridN: 24, BisectIter: 24}
	for _, n := range []int{1, 63, 64, 65} {
		assertBatchMatchesScalar(t, c, randShifts(rng, n, 0.08), opts)
	}
	// 257 spans five chunks at the default width; keep the grid small so
	// the scalar cross-check stays cheap.
	small := &SNMOptions{GridN: 8, BisectIter: 24}
	assertBatchMatchesScalar(t, c, randShifts(rng, 257, 0.08), small)

	hold := &SNMOptions{GridN: 16, BisectIter: 24, Hold: true}
	assertBatchMatchesScalar(t, c, randShifts(rng, 33, 0.1), hold)

	narrow := &SNMOptions{GridN: 12, BisectIter: 24, Lanes: 5}
	assertBatchMatchesScalar(t, c, randShifts(rng, 23, 0.12), narrow)
}

// TestNoiseMarginBatchNonFinite pins the batch kernel on NaN/Inf shifts:
// the scalar solver has defined (if degenerate) behaviour there, and the
// lockstep masks must reproduce it exactly rather than hang or diverge.
func TestNoiseMarginBatchNonFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewCell(0.7)
	opts := &SNMOptions{GridN: 8, BisectIter: 24}
	shs := randShifts(rng, 9, 0.05)
	shs[1][D1] = math.NaN()
	shs[3][L2] = math.Inf(1)
	shs[5][A1] = math.Inf(-1)
	shs[7][D2] = math.NaN()
	shs[7][L1] = math.Inf(1)
	assertBatchMatchesScalar(t, c, shs, opts)
}

// TestNoiseMarginBatchTelemetry requires the batch path to bill exactly the
// solver effort the scalar path would have billed for the same samples, and
// to report a sane lane-occupancy split.
func TestNoiseMarginBatchTelemetry(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := NewCell(0.7)
	shs := randShifts(rng, 70, 0.08)

	var scalarTel SolveTelemetry
	sOpts := &SNMOptions{GridN: 16, BisectIter: 24, Telemetry: &scalarTel}
	for _, sh := range shs {
		c.NoiseMargin(sh, sOpts)
	}

	var batchTel SolveTelemetry
	bOpts := &SNMOptions{GridN: 16, BisectIter: 24, Telemetry: &batchTel}
	out := make([]SNMResult, len(shs))
	c.NoiseMarginBatch(shs, out, bOpts)

	ss, si := scalarTel.Totals()
	bs, bi := batchTel.Totals()
	if ss != bs || si != bi {
		t.Fatalf("telemetry diverged: scalar (%d solves, %d iters) vs batch (%d, %d)", ss, si, bs, bi)
	}
	slots, occ := batchTel.LaneTotals()
	if slots <= 0 || occ <= 0 || occ > slots {
		t.Fatalf("implausible lane occupancy: %d/%d", occ, slots)
	}
	if s, o := scalarTel.LaneTotals(); s != 0 || o != 0 {
		t.Fatalf("scalar path billed lane occupancy: %d/%d", o, s)
	}
	// Every occupied lane slot beyond the two unbilled bracket-entry
	// evaluations per solve corresponds to exactly one billed iteration.
	if occ-2*bs != bi {
		t.Fatalf("occupied lanes (%d) minus entry evals (%d) != billed iters (%d)", occ, 2*bs, bi)
	}
}

// TestSolveCountsExpansionEvals pins the telemetry undercount fix: bracket
// expansion spends real residual evaluations and they must be billed.
func TestSolveCountsExpansionEvals(t *testing.T) {
	c := NewCell(0.8)
	var o VTCOptions
	o.fill(c.Vdd)
	h := c.half(Left, Shifts{}, &o)
	// Root near Vdd; a bracket entirely below it forces hi-expansion.
	_, iters := h.solve(0, -0.2, -0.1, o.BisectIter)
	if iters < 1 {
		t.Fatalf("expansion evaluations not billed: iters=%d", iters)
	}
}

// FuzzNoiseMarginBatch drives random shift batches — including non-finite
// components — through the batch kernel and requires bit-identity with the
// per-sample scalar NoiseMargin.
func FuzzNoiseMarginBatch(f *testing.F) {
	f.Add(int64(1), uint8(0), 0.05, false, uint8(0))
	f.Add(int64(2), uint8(1), 0.10, true, uint8(1))
	f.Add(int64(3), uint8(2), 0.20, false, uint8(2))
	f.Add(int64(4), uint8(3), 0.08, false, uint8(3))
	f.Add(int64(5), uint8(4), 0.15, true, uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, sizeSel uint8, scale float64, hold bool, nfSel uint8) {
		if math.IsNaN(scale) || math.IsInf(scale, 0) || math.Abs(scale) > 10 {
			t.Skip()
		}
		sizes := []int{1, 2, 5, 63, 64, 65}
		n := sizes[int(sizeSel)%len(sizes)]
		rng := rand.New(rand.NewSource(seed))
		shs := randShifts(rng, n, scale)
		// Sprinkle non-finite components deterministically from the seed.
		switch nfSel % 4 {
		case 1:
			shs[rng.Intn(n)][rng.Intn(NumTransistors)] = math.NaN()
		case 2:
			shs[rng.Intn(n)][rng.Intn(NumTransistors)] = math.Inf(1)
		case 3:
			shs[rng.Intn(n)][rng.Intn(NumTransistors)] = math.Inf(-1)
			shs[rng.Intn(n)][rng.Intn(NumTransistors)] = math.NaN()
		}
		opts := &SNMOptions{GridN: 8, BisectIter: 24, Hold: hold}
		out := make([]SNMResult, n)
		c := NewCell(0.7)
		c.NoiseMarginBatch(shs, out, opts)
		for i, sh := range shs {
			want := c.NoiseMargin(sh, opts)
			if math.Float64bits(out[i].Lobe1) != math.Float64bits(want.Lobe1) ||
				math.Float64bits(out[i].Lobe2) != math.Float64bits(want.Lobe2) {
				t.Fatalf("lane %d/%d diverged: batch=%+v scalar=%+v (shifts %v)", i, n, out[i], want, sh)
			}
		}
	})
}

func BenchmarkNoiseMarginBatch(b *testing.B) {
	c := NewCell(0.7)
	rng := rand.New(rand.NewSource(4))
	const n = 256
	shs := randShifts(rng, n, 0.08)
	out := make([]SNMResult, n)
	// Engine-shaped options: GridN 24, BisectIter 24 (see core.New).
	b.Run("scalar", func(b *testing.B) {
		opts := &SNMOptions{GridN: 24, BisectIter: 24}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, sh := range shs {
				c.NoiseMargin(sh, opts)
			}
		}
		b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "margins/s")
	})
	for _, lanes := range []int{64, 128, 256} {
		lanes := lanes
		b.Run("lanes"+itoa(lanes), func(b *testing.B) {
			opts := &SNMOptions{GridN: 24, BisectIter: 24, Lanes: lanes}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.NoiseMarginBatch(shs, out, opts)
			}
			b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "margins/s")
		})
	}
}

// itoa avoids pulling strconv into the test just for bench names.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
