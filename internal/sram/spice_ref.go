package sram

import (
	"fmt"

	"ecripse/internal/spice"
)

// BuildCircuit constructs the full 6T netlist in the generic simulator with
// independent word-line and bit-line sources. It is the reference
// implementation used to validate the fast bisection path and to let users
// run arbitrary analyses (sweeps, disturbed bitlines) on the same cell.
//
// Node names: "v1", "v2" internal nodes; "bl", "blb" bit lines; "wl" word
// line; "vdd" supply. Sources: "VDD", "VWL", "VBL", "VBLB".
func (c *Cell) BuildCircuit(sh Shifts) *spice.Circuit {
	ckt := spice.NewCircuit()
	vdd := ckt.Node("vdd")
	v1 := ckt.Node("v1")
	v2 := ckt.Node("v2")
	bl := ckt.Node("bl")
	blb := ckt.Node("blb")
	wl := ckt.Node("wl")

	ckt.AddVSource("VDD", vdd, spice.Ground, c.Vdd)
	ckt.AddVSource("VWL", wl, spice.Ground, c.Vdd)
	ckt.AddVSource("VBL", bl, spice.Ground, c.Vdd)
	ckt.AddVSource("VBLB", blb, spice.Ground, c.Vdd)

	l1 := c.shifted(L1, sh[L1])
	l2 := c.shifted(L2, sh[L2])
	d1 := c.shifted(D1, sh[D1])
	d2 := c.shifted(D2, sh[D2])
	a1 := c.shifted(A1, sh[A1])
	a2 := c.shifted(A2, sh[A2])

	ckt.AddMOSFET("L1", &l1, v2, v1, vdd, vdd)
	ckt.AddMOSFET("D1", &d1, v2, v1, spice.Ground, spice.Ground)
	ckt.AddMOSFET("A1", &a1, wl, v1, bl, spice.Ground)
	ckt.AddMOSFET("L2", &l2, v1, v2, vdd, vdd)
	ckt.AddMOSFET("D2", &d2, v1, v2, spice.Ground, spice.Ground)
	ckt.AddMOSFET("A2", &a2, wl, v2, blb, spice.Ground)
	return ckt
}

// HalfVTCSpice computes the half-cell read transfer point with the generic
// Newton solver instead of the fast bisection path. Used in tests.
func (c *Cell) HalfVTCSpice(side Side, vin float64, sh Shifts) (float64, error) {
	ckt := spice.NewCircuit()
	vdd := ckt.Node("vdd")
	in := ckt.Node("in")
	out := ckt.Node("out")
	blNode := ckt.Node("bl")
	wlNode := ckt.Node("wl")

	ckt.AddVSource("VDD", vdd, spice.Ground, c.Vdd)
	ckt.AddVSource("VIN", in, spice.Ground, vin)
	ckt.AddVSource("VBL", blNode, spice.Ground, c.Vdd)
	ckt.AddVSource("VWL", wlNode, spice.Ground, c.Vdd)

	li, di, ai := side.devices()
	load := c.shifted(li, sh[li])
	driver := c.shifted(di, sh[di])
	access := c.shifted(ai, sh[ai])
	ckt.AddMOSFET("ML", &load, in, out, vdd, vdd)
	ckt.AddMOSFET("MD", &driver, in, out, spice.Ground, spice.Ground)
	ckt.AddMOSFET("MA", &access, wlNode, out, blNode, spice.Ground)

	sol, err := ckt.DCSolve(nil)
	if err != nil {
		return 0, fmt.Errorf("sram: reference half-cell solve: %w", err)
	}
	return sol.V[out], nil
}
