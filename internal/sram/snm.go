package sram

import (
	"math"
	"sort"
	"sync"
)

// SNMOptions controls the butterfly sampling used for noise margins.
type SNMOptions struct {
	GridN      int  // VTC sample points per curve (default 64)
	BisectIter int  // half-cell bisection iterations (default 40)
	Hold       bool // compute the hold margin (WL = 0) instead of read

	// Lanes is the lockstep width of NoiseMarginBatch: batches larger than
	// this are processed in chunks of Lanes shift vectors (default 64).
	// Pure grouping — results are bit-identical at any width.
	Lanes int

	// Telemetry optionally accumulates root-solve effort counters across
	// every margin evaluation that uses these options (safe to share
	// between goroutines; the counters are atomic).
	Telemetry *SolveTelemetry
}

// DefaultBatchLanes is the default lockstep width of NoiseMarginBatch: wide
// enough to keep late Illinois iterations busy (lanes converge at different
// steps), narrow enough that the per-lane state stays L1-resident. See
// EXPERIMENTS.md for the width sweep behind the choice.
const DefaultBatchLanes = 64

func (o *SNMOptions) fill() {
	if o.GridN == 0 {
		o.GridN = 64
	}
	if o.BisectIter == 0 {
		o.BisectIter = 40
	}
	if o.Lanes == 0 {
		o.Lanes = DefaultBatchLanes
	}
}

// vtcOptions derives the filled half-cell solver options from the margin
// options. This is the single place SNM-level knobs map onto VTC-level
// ones — Butterfly, NoiseMargin and NoiseMarginBatch all go through it, so
// the scalar and batch paths cannot drift apart on defaults.
func (o *SNMOptions) vtcOptions(vdd float64) VTCOptions {
	vo := VTCOptions{BisectIter: o.BisectIter, AccessOff: o.Hold, Telemetry: o.Telemetry}
	vo.fill(vdd)
	return vo
}

// Sqrt2 is √2; SNM results are diagonal distances divided by this.
const sqrt2 = math.Sqrt2

// rotPoint maps a butterfly point (x, y) to the 45°-clockwise-rotated frame
// used by the Seevinck construction: u = (x−y)/√2 is the new abscissa and
// w = (x+y)/√2 the new ordinate.
func rotPoint(x, y float64) (u, w float64) {
	return (x - y) / sqrt2, (x + y) / sqrt2
}

// rotCurve holds a rotated curve sampled at increasing u.
type rotCurve struct {
	u, w []float64
}

// at linearly interpolates w(u); u must lie within the sampled range.
func (r rotCurve) at(u float64) float64 {
	i := sort.SearchFloat64s(r.u, u)
	if i == 0 {
		return r.w[0]
	}
	if i >= len(r.u) {
		return r.w[len(r.w)-1]
	}
	u0, u1 := r.u[i-1], r.u[i]
	if u1 == u0 {
		return r.w[i]
	}
	t := (u - u0) / (u1 - u0)
	return r.w[i-1]*(1-t) + r.w[i]*t
}

// SNMResult carries the two lobe margins of a butterfly plot. The cell's
// noise margin is the smaller lobe; a negative value means the butterfly has
// lost one of its eyes (the cell is monostable) and the sample fails.
type SNMResult struct {
	Lobe1, Lobe2 float64
}

// SNM returns the cell margin min(Lobe1, Lobe2).
func (r SNMResult) SNM() float64 { return math.Min(r.Lobe1, r.Lobe2) }

// Fails reports the paper's failure criterion: negative read margin.
func (r SNMResult) Fails() bool { return r.SNM() < 0 }

// Butterfly samples the two read (or hold) transfer curves of the cell under
// the given per-transistor threshold shifts.
//
// Curve A is V2 = fR(V1) (right half driven by node V1); curve B is
// V1 = fL(V2) plotted in the same (V1, V2) plane.
func (c *Cell) Butterfly(sh Shifts, opts *SNMOptions) (a, b Curve) {
	var o SNMOptions
	if opts != nil {
		o = *opts
	}
	o.fill()
	vo := o.vtcOptions(c.Vdd)
	a = c.ReadVTC(Right, sh, o.GridN, &vo)
	b = c.ReadVTC(Left, sh, o.GridN, &vo)
	return a, b
}

// snmScratch carries every buffer a NoiseMargin evaluation needs: the two
// sampled VTCs and their rotated forms. Pooled so the indicator hot path —
// millions of calls per estimate, from many goroutines — allocates nothing
// per call.
type snmScratch struct {
	aIn, aOut, bIn, bOut []float64
	ra, rb               rotCurve
}

var snmPool = sync.Pool{New: func() any { return new(snmScratch) }}

// growF resizes a float buffer to length n, reusing capacity when possible.
func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func (s *snmScratch) resize(n int) {
	s.aIn, s.aOut = growF(s.aIn, n), growF(s.aOut, n)
	s.bIn, s.bOut = growF(s.bIn, n), growF(s.bOut, n)
	s.ra.u, s.ra.w = growF(s.ra.u, n), growF(s.ra.w, n)
	s.rb.u, s.rb.w = growF(s.rb.u, n), growF(s.rb.w, n)
}

// NoiseMargin computes the static noise margin of the butterfly via the
// Seevinck rotation: in the 45°-rotated frame both curves are single-valued
// functions of u (a monotone-decreasing VTC has strictly increasing
// u = (x−y)/√2); the margin of each lobe is the extreme of the curve
// difference divided by √2. Safe for concurrent use; all working memory
// comes from a pool.
func (c *Cell) NoiseMargin(sh Shifts, opts *SNMOptions) SNMResult {
	var o SNMOptions
	if opts != nil {
		o = *opts
	}
	o.fill()
	vo := o.vtcOptions(c.Vdd)

	s := snmPool.Get().(*snmScratch)
	s.resize(o.GridN + 1)
	c.readVTCInto(Right, sh, o.GridN, &vo, s.aIn, s.aOut)
	c.readVTCInto(Left, sh, o.GridN, &vo, s.bIn, s.bOut)
	rotateCurves(s.aIn, s.aOut, s.bIn, s.bOut, s.ra, s.rb)
	res := marginFromRot(s.ra, s.rb)
	snmPool.Put(s)
	return res
}

// noiseMarginFromCurves is the allocating path over pre-sampled butterfly
// curves (kept for callers that already hold Curve values).
func noiseMarginFromCurves(a, b Curve) SNMResult {
	ra := rotCurve{u: make([]float64, len(a.In)), w: make([]float64, len(a.In))}
	rb := rotCurve{u: make([]float64, len(b.In)), w: make([]float64, len(b.In))}
	rotateCurves(a.In, a.Out, b.In, b.Out, ra, rb)
	return marginFromRot(ra, rb)
}

// rotateCurves fills ra/rb (pre-sized to the sample counts) with the
// Seevinck-rotated curves. Curve A: points (x=In, y=Out). Curve B: points
// (x=Out, y=In).
func rotateCurves(aIn, aOut, bIn, bOut []float64, ra, rb rotCurve) {
	for i := range aIn {
		ra.u[i], ra.w[i] = rotPoint(aIn[i], aOut[i])
	}
	for i := range bIn {
		// Reverse order so u increases: for curve B, u = (Out−In)/√2
		// decreases along the sweep.
		j := len(bIn) - 1 - i
		rb.u[i], rb.w[i] = rotPoint(bOut[j], bIn[j])
	}
	ensureIncreasing(ra)
	ensureIncreasing(rb)
}

func marginFromRot(ra, rb rotCurve) SNMResult {
	lo := math.Max(ra.u[0], rb.u[0])
	hi := math.Min(ra.u[len(ra.u)-1], rb.u[len(rb.u)-1])
	if !(hi > lo) {
		// Curves do not overlap in u at all: wildly broken sample.
		return SNMResult{Lobe1: -1, Lobe2: -1}
	}

	// Evaluate the difference on the union of both curves' sample points
	// (clipped to the overlap) — extremes of a piecewise-linear difference
	// occur at breakpoints. The two lobes live on opposite sides of the
	// butterfly diagonal V1 = V2, i.e. u < 0 and u > 0: lobe 1 (the eye with
	// V2 > V1) is the maximum of the difference at u ≤ 0, lobe 2 the
	// negated minimum at u ≥ 0. Splitting at a fixed u = 0 (instead of at a
	// curve crossing) is what lets a vanished eye come out *negative*: when
	// the cell has lost the V2 > V1 state, curve A runs below curve B for
	// all u < 0 and the lobe-1 value is the (negative) closest approach.
	max1, min2 := math.Inf(-1), math.Inf(1)
	scan := func(us []float64) {
		for _, u := range us {
			if u < lo || u > hi {
				continue
			}
			d := ra.at(u) - rb.at(u)
			if u <= 0 && d > max1 {
				max1 = d
			}
			if u >= 0 && d < min2 {
				min2 = d
			}
		}
	}
	scan(ra.u)
	scan(rb.u)
	// Always include the split point itself so neither side can be empty
	// when the overlap straddles zero.
	if lo <= 0 && hi >= 0 {
		d := ra.at(0) - rb.at(0)
		if d > max1 {
			max1 = d
		}
		if d < min2 {
			min2 = d
		}
	}
	if math.IsInf(max1, -1) { // overlap entirely at u > 0
		max1 = -(hi - lo)
	}
	if math.IsInf(min2, 1) { // overlap entirely at u < 0
		min2 = hi - lo
	}

	return SNMResult{Lobe1: max1 / sqrt2, Lobe2: -min2 / sqrt2}
}

// ensureIncreasing nudges any non-increasing u samples so interpolation is
// well-defined; VTC monotonicity makes violations vanishingly small (they
// arise only from bisection noise).
func ensureIncreasing(r rotCurve) {
	for i := 1; i < len(r.u); i++ {
		if r.u[i] <= r.u[i-1] {
			r.u[i] = r.u[i-1] + 1e-12
		}
	}
}

// ReadSNM is shorthand for the read noise margin under shifts sh.
func (c *Cell) ReadSNM(sh Shifts, opts *SNMOptions) float64 {
	return c.NoiseMargin(sh, opts).SNM()
}

// HoldSNM is the hold (retention) margin: the same construction with the
// access transistors off.
func (c *Cell) HoldSNM(sh Shifts, opts *SNMOptions) float64 {
	var o SNMOptions
	if opts != nil {
		o = *opts
	}
	o.Hold = true
	return c.NoiseMargin(sh, &o).SNM()
}

// Fails reports whether the cell with shifts sh violates the read-stability
// specification (negative RNM) — the indicator function I(x) of eq. (1).
func (c *Cell) Fails(sh Shifts, opts *SNMOptions) bool {
	return c.NoiseMargin(sh, opts).Fails()
}
