package sram

// N-curve analysis — the current-based stability metric that complements
// the Seevinck noise margin (Wann et al., "SRAM cell design for stability
// methodology"). Under read bias, current is injected into internal node V1
// while the opposite node follows its half-cell response; the injected
// current versus V1 crosses zero at every DC equilibrium. The positive peak
// between the "0" state and the metastable point is the static current
// noise margin (SINM); the voltage distance between those zeros is the
// static voltage noise margin (SVNM).

// NCurve samples the injected-current characteristic at node V1 on an
// (n+1)-point grid over [0, Vdd].
func (c *Cell) NCurve(sh Shifts, n int, opts *SNMOptions) (v, i []float64) {
	var o SNMOptions
	if opts != nil {
		o = *opts
	}
	o.fill()
	if n < 8 {
		n = o.GridN
	}
	vo := &VTCOptions{BisectIter: o.BisectIter}
	vo.fill(c.Vdd)
	right := c.half(Right, sh, vo)
	left := c.half(Left, sh, vo)

	v = make([]float64, n+1)
	i = make([]float64, n+1)
	hi := c.Vdd + 0.2
	for k := 0; k <= n; k++ {
		v1 := c.Vdd * float64(k) / float64(n)
		// Opposite node follows its own half-cell equilibrium.
		v2, _ := right.solve(v1, -0.2, hi, vo.BisectIter)
		hi = v2 + 1e-6
		// Injected current balances the net current leaving node V1.
		v[k] = v1
		i[k] = left.current(v2, v1)
	}
	return v, i
}

// NCurveMetrics are the current-based read-stability figures.
type NCurveMetrics struct {
	SVNM float64 // static voltage noise margin [V]: distance between the first two zero crossings
	SINM float64 // static current noise margin [A]: positive current peak between them
	// Zeros is the count of zero crossings found (3 for a bistable cell
	// under read, 1 when an eye has collapsed).
	Zeros int
}

// NCurveStability computes SVNM/SINM from a sampled N-curve. For a
// monostable (read-failing) cell there is no positive margin and both
// metrics are reported as zero with Zeros < 3.
func (c *Cell) NCurveStability(sh Shifts, opts *SNMOptions) NCurveMetrics {
	v, i := c.NCurve(sh, 200, opts)
	var zeros []float64
	for k := 1; k < len(i); k++ {
		if (i[k-1] < 0) != (i[k] < 0) {
			// Linear interpolation of the crossing.
			t := i[k-1] / (i[k-1] - i[k])
			zeros = append(zeros, v[k-1]+t*(v[k]-v[k-1]))
		}
	}
	m := NCurveMetrics{Zeros: len(zeros)}
	if len(zeros) < 3 {
		return m
	}
	m.SVNM = zeros[1] - zeros[0]
	for k := range v {
		if v[k] > zeros[0] && v[k] < zeros[1] && i[k] > m.SINM {
			m.SINM = i[k]
		}
	}
	return m
}
