// Package sram models the 6T SRAM cell of the paper's experiment (Fig. 5,
// Table I): read/hold butterfly curves, the Seevinck largest-embedded-square
// static noise margin, and the failure indicator I(x) that every estimator
// in this repository consumes.
//
// Two evaluation paths are provided. The fast path solves each half-cell
// output node by monotone bisection on the single KCL equation — this is
// what the Monte Carlo estimators call millions of times. The reference path
// builds the full netlist in internal/spice and runs the Newton solver; unit
// tests cross-validate the two.
package sram

import (
	"fmt"
	"math"

	"ecripse/internal/device"
	"ecripse/internal/linalg"
)

// Transistor indices in the cell's variability vector. The order is fixed
// and shared with the RTN model and the classifiers: loads (PMOS pull-ups),
// drivers (NMOS pull-downs), access devices. L1/D1/A1 belong to the half
// storing node V1, L2/D2/A2 to node V2.
const (
	L1 = iota
	L2
	D1
	D2
	A1
	A2
	NumTransistors
)

// TransistorNames maps index to the paper's device names.
var TransistorNames = [NumTransistors]string{"L1", "L2", "D1", "D2", "A1", "A2"}

// Geometry of Table I, in meters.
const (
	ChannelLength = 16e-9
	LoadWidth     = 60e-9
	DriverWidth   = 30e-9
	AccessWidth   = 30e-9
)

// AVthPelgrom is the Pelgrom coefficient of Table I: 5×10² mV·nm, expressed
// in V·m.
const AVthPelgrom = 5e2 * 1e-3 * 1e-9 // V·m

// CalibrationK scales every threshold-voltage disturbance (both the Pelgrom
// RDF sigma and the RTN per-trap amplitude) so that the substitute EKV
// compact model lands in the paper's failure-probability regime.
//
// The paper's HSPICE/BSIM setup reaches an RDF-only Pfail of 1.33e-4 with
// AVTH = 500 mV·nm; our smooth EKV substitute has ≈3× lower read-SNM
// sensitivity to ΔVth, so the unscaled Table I value would put the cell
// ~15 sigma from failure and no estimator (including the paper's) would have
// anything to estimate. Scaling *all* ΔVth disturbances by one factor
// preserves the paper's RDF:RTN magnitude ratio exactly, which is what the
// RTN-vs-RDF comparisons (Figs. 7, 8) depend on. The resulting effective
// AVTH of 1.0 mV·µm is within the range reported for bulk CMOS. With this
// value the RDF-only read failure probability at Vdd = 0.7 V is ≈1.5e-4
// (paper: 1.33e-4) and at 0.5 V ≈4e-3, matching the regimes of the paper's
// Figs. 6–8. See DESIGN.md §2.
const CalibrationK = 2.0

// Cell is a 6T SRAM cell instance: six prototype devices plus the supply.
// The prototypes carry zero DVth; per-sample threshold shifts are applied by
// value at evaluation time, so a Cell is safe for concurrent use.
type Cell struct {
	Vdd  float64
	CalK float64 // disturbance scale factor; NewCell sets CalibrationK
	Devs [NumTransistors]device.Device
}

// CellSpec describes a custom 6T geometry for design-space exploration
// (β-ratio studies, upsized cells). Zero fields take the Table I values.
type CellSpec struct {
	Vdd     float64 // supply [V] (default device.VddNominal)
	TempK   float64 // junction temperature [K] (default 300)
	Length  float64 // channel length [m] (default 16 nm)
	LoadW   float64 // PMOS pull-up width [m] (default 60 nm)
	DriverW float64 // NMOS pull-down width [m] (default 30 nm)
	AccessW float64 // NMOS access width [m] (default 30 nm)
	CalK    float64 // disturbance calibration (default CalibrationK)
}

// NewCellFrom builds a cell from a custom specification.
func NewCellFrom(spec CellSpec) *Cell {
	if spec.Vdd == 0 {
		spec.Vdd = device.VddNominal
	}
	if spec.Length == 0 {
		spec.Length = ChannelLength
	}
	if spec.LoadW == 0 {
		spec.LoadW = LoadWidth
	}
	if spec.DriverW == 0 {
		spec.DriverW = DriverWidth
	}
	if spec.AccessW == 0 {
		spec.AccessW = AccessWidth
	}
	if spec.CalK == 0 {
		spec.CalK = CalibrationK
	}
	np := device.PTM16HPNMOS()
	pp := device.PTM16HPPMOS()
	c := &Cell{Vdd: spec.Vdd, CalK: spec.CalK}
	c.Devs[L1] = *device.NewDevice(pp, spec.LoadW, spec.Length)
	c.Devs[L2] = *device.NewDevice(pp, spec.LoadW, spec.Length)
	c.Devs[D1] = *device.NewDevice(np, spec.DriverW, spec.Length)
	c.Devs[D2] = *device.NewDevice(np, spec.DriverW, spec.Length)
	c.Devs[A1] = *device.NewDevice(np, spec.AccessW, spec.Length)
	c.Devs[A2] = *device.NewDevice(np, spec.AccessW, spec.Length)
	if spec.TempK > 0 {
		for i := range c.Devs {
			c.Devs[i].TempK = spec.TempK
		}
	}
	return c
}

// NewCellAt builds the Table I cell at the given supply voltage and
// junction temperature [K].
func NewCellAt(vdd, tempK float64) *Cell {
	c := NewCell(vdd)
	for i := range c.Devs {
		c.Devs[i].TempK = tempK
	}
	return c
}

// NewCell builds the Table I cell at the given supply voltage.
func NewCell(vdd float64) *Cell {
	np := device.PTM16HPNMOS()
	pp := device.PTM16HPPMOS()
	c := &Cell{Vdd: vdd, CalK: CalibrationK}
	c.Devs[L1] = *device.NewDevice(pp, LoadWidth, ChannelLength)
	c.Devs[L2] = *device.NewDevice(pp, LoadWidth, ChannelLength)
	c.Devs[D1] = *device.NewDevice(np, DriverWidth, ChannelLength)
	c.Devs[D2] = *device.NewDevice(np, DriverWidth, ChannelLength)
	c.Devs[A1] = *device.NewDevice(np, AccessWidth, ChannelLength)
	c.Devs[A2] = *device.NewDevice(np, AccessWidth, ChannelLength)
	return c
}

// SigmaVth returns the per-transistor RDF standard deviation [V] from the
// Pelgrom law sigma = AVTH / sqrt(L*W) (paper eq. (20)), scaled by the
// cell's calibration factor.
func (c *Cell) SigmaVth() linalg.Vector {
	out := make(linalg.Vector, NumTransistors)
	for i := range c.Devs {
		d := &c.Devs[i]
		out[i] = c.CalK * AVthPelgrom / math.Sqrt(d.L*d.W)
	}
	return out
}

// Shifts is a per-transistor threshold-voltage shift vector [V].
type Shifts [NumTransistors]float64

// Add returns the element-wise sum of two shift vectors (RDF + RTN).
func (s Shifts) Add(t Shifts) Shifts {
	var out Shifts
	for i := range s {
		out[i] = s[i] + t[i]
	}
	return out
}

// FromVector converts a linalg.Vector of length 6 into Shifts.
func FromVector(v linalg.Vector) Shifts {
	if len(v) != NumTransistors {
		panic(fmt.Sprintf("sram: shift vector has length %d, want %d", len(v), NumTransistors))
	}
	var s Shifts
	copy(s[:], v)
	return s
}

// Vector converts Shifts to a linalg.Vector.
func (s Shifts) Vector() linalg.Vector {
	return append(linalg.Vector(nil), s[:]...)
}

// shifted returns a by-value copy of device i with the given DVth added on
// top of the prototype's own threshold shift, so deterministic design
// offsets installed on Devs compose with per-sample variability.
func (c *Cell) shifted(i int, dv float64) device.Device {
	d := c.Devs[i]
	d.DVth += dv
	return d
}
