package sram

import (
	"math"
	"testing"
)

// --- marginFromRot edge geometry -----------------------------------------
//
// These tests drive the Seevinck margin extraction with hand-built rotated
// curves, covering the degenerate geometries that real butterflies only
// produce under extreme shift vectors.

func TestMarginFromRotNonOverlappingCurves(t *testing.T) {
	ra := rotCurve{u: []float64{1, 2}, w: []float64{0, 0}}
	rb := rotCurve{u: []float64{3, 4}, w: []float64{0, 0}}
	res := marginFromRot(ra, rb)
	if res.Lobe1 != -1 || res.Lobe2 != -1 {
		t.Fatalf("non-overlapping curves: %+v, want {-1, -1}", res)
	}
	if !res.Fails() {
		t.Fatal("non-overlapping curves must classify as failed")
	}
}

func TestMarginFromRotOverlapEntirelyPositive(t *testing.T) {
	// Overlap [2, 3] lies wholly at u > 0: lobe 1 has no samples and must
	// come out as the negated overlap width, a definite failure.
	ra := rotCurve{u: []float64{1, 3}, w: []float64{0, 0}}
	rb := rotCurve{u: []float64{2, 4}, w: []float64{1, 1}}
	res := marginFromRot(ra, rb)
	if want := -1 / sqrt2; math.Abs(res.Lobe1-want) > 1e-15 {
		t.Fatalf("Lobe1 = %v, want -(hi-lo)/sqrt2 = %v", res.Lobe1, want)
	}
	// d = ra - rb = -1 on the overlap, so min2 = -1 and lobe 2 is +1/sqrt2.
	if want := 1 / sqrt2; math.Abs(res.Lobe2-want) > 1e-15 {
		t.Fatalf("Lobe2 = %v, want %v", res.Lobe2, want)
	}
}

func TestMarginFromRotOverlapEntirelyNegative(t *testing.T) {
	// Mirror case: overlap [-3, -2] wholly at u < 0, lobe 2 unsampled.
	ra := rotCurve{u: []float64{-3, -1}, w: []float64{2, 2}}
	rb := rotCurve{u: []float64{-4, -2}, w: []float64{0, 0}}
	res := marginFromRot(ra, rb)
	if want := -1 / sqrt2; math.Abs(res.Lobe2-want) > 1e-15 {
		t.Fatalf("Lobe2 = %v, want -(hi-lo)/sqrt2 = %v", res.Lobe2, want)
	}
	if want := 2 / sqrt2; math.Abs(res.Lobe1-want) > 1e-15 {
		t.Fatalf("Lobe1 = %v, want %v", res.Lobe1, want)
	}
}

func TestMarginFromRotVanishedEyeIsNegativeClosestApproach(t *testing.T) {
	// Curve A runs below curve B everywhere at u <= 0: the V2 > V1 eye has
	// vanished. Lobe 1 must report the closest approach as a *negative*
	// margin (distance still to collapse), not clamp at zero.
	ra := rotCurve{u: []float64{-2, 0, 2}, w: []float64{0, 0, 0}}
	rb := rotCurve{u: []float64{-2, 0, 2}, w: []float64{0.5, 0.3, -1}}
	res := marginFromRot(ra, rb)
	if want := -0.3 / sqrt2; math.Abs(res.Lobe1-want) > 1e-15 {
		t.Fatalf("Lobe1 = %v, want closest approach %v", res.Lobe1, want)
	}
	if !res.Fails() {
		t.Fatal("vanished eye must classify as failed")
	}
}

func TestEnsureIncreasingRepairsTies(t *testing.T) {
	r := rotCurve{u: []float64{0, 0, -1, 0.5}, w: []float64{0, 0, 0, 0}}
	ensureIncreasing(r)
	for i := 1; i < len(r.u); i++ {
		if r.u[i] <= r.u[i-1] {
			t.Fatalf("u not strictly increasing after repair: %v", r.u)
		}
	}
	if r.u[3] != 0.5 {
		t.Fatalf("already-increasing sample moved: %v", r.u)
	}
}

// --- root-solve degenerate bracket ---------------------------------------

func TestSolveDegenerateBracketFallsBackToEndpoint(t *testing.T) {
	c := NewCell(0.8)
	var o VTCOptions
	o.fill(c.Vdd)
	h := c.half(Left, Shifts{}, &o)

	// A bracket entirely above the root (~Vdd), beyond what the 8-step
	// expansion can recover: the solver must return the endpoint with the
	// smaller residual instead of iterating or panicking.
	v, iters := h.solve(0, 5, 5.1, o.BisectIter)
	// The 8 lo-expansion residual evaluations are real work and must be
	// billed; the Illinois loop itself never runs on a degenerate bracket.
	if iters != 8 {
		t.Fatalf("degenerate bracket billed %d residual evals, want the 8 expansion steps", iters)
	}
	// The expansion walks lo down 8 x 0.2; the returned endpoint must be
	// that expanded lo (smaller |residual| on a monotone current).
	if want := 5 - 8*0.2; math.Abs(v-want) > 1e-12 {
		t.Fatalf("degenerate fallback returned %v, want expanded lo %v", v, want)
	}
}

func TestSolveAgreesAcrossBrackets(t *testing.T) {
	// The warm-started sweep feeds solve tightened brackets; the root must
	// not depend on the bracket (up to tolerance).
	c := NewCell(0.8)
	var o VTCOptions
	o.fill(c.Vdd)
	h := c.half(Left, Shifts{}, &o)
	wide, _ := h.solve(0.3, -0.2, c.Vdd+0.2, o.BisectIter)
	tight, _ := h.solve(0.3, wide-0.05, wide+0.05, o.BisectIter)
	if math.Abs(wide-tight) > 1e-5 {
		t.Fatalf("root moved with the bracket: wide=%v tight=%v", wide, tight)
	}
}

// --- VTCOptions explicit-zero sentinel -----------------------------------

func TestVTCOptionsExplicitZeroBitLine(t *testing.T) {
	c := NewCell(0.8)
	var sh Shifts
	// Regression for the zero-value trap: an explicit 0 V bit line used to
	// be silently rewritten to Vdd. With the set flag it must act as a real
	// 0 V bias and therefore differ from the default read condition.
	def := c.HalfVTC(Left, 0, sh, nil)
	gnd := c.HalfVTC(Left, 0, sh, &VTCOptions{BitLine: 0, BitLineSet: true})
	if math.Abs(def-gnd) < 1e-3 {
		t.Fatalf("explicit BitLine=0 behaves like the default Vdd precharge: def=%v gnd=%v", def, gnd)
	}
	// NaN spells the same explicit zero.
	nan := c.HalfVTC(Left, 0, sh, &VTCOptions{BitLine: math.NaN()})
	if nan != gnd {
		t.Fatalf("NaN bit line %v != set-flag zero %v", nan, gnd)
	}
}

func TestVTCOptionsExplicitZeroWordLineMatchesAccessOff(t *testing.T) {
	c := NewCell(0.8)
	var sh Shifts
	for _, vin := range []float64{0, 0.25, 0.5, 0.8} {
		hold := c.HalfVTC(Left, vin, sh, &VTCOptions{AccessOff: true})
		wl0 := c.HalfVTC(Left, vin, sh, &VTCOptions{WordLine: 0, WordLineSet: true})
		nan := c.HalfVTC(Left, vin, sh, &VTCOptions{WordLine: math.NaN()})
		if wl0 != hold || nan != hold {
			t.Fatalf("vin=%v: explicit WL=0 (%v) / NaN (%v) differ from AccessOff (%v)",
				vin, wl0, nan, hold)
		}
	}
}

func TestVTCOptionsDefaultStillReadCondition(t *testing.T) {
	c := NewCell(0.8)
	var sh Shifts
	// The zero value must keep meaning the read condition (WL = BL = Vdd).
	def := c.HalfVTC(Left, 0, sh, nil)
	read := c.HalfVTC(Left, 0, sh, &VTCOptions{WordLine: c.Vdd, BitLine: c.Vdd})
	if def != read {
		t.Fatalf("zero-value options %v != explicit read condition %v", def, read)
	}
}
