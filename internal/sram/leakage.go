package sram

// Static leakage analysis — the standby current an SRAM array designer
// budgets against; strongly temperature-dependent through the subthreshold
// currents of the OFF devices.

// LeakageResult itemizes the standby current of one cell holding a state.
type LeakageResult struct {
	Total   float64                 // total supply current [A]
	PerPath [NumTransistors]float64 // leakage attributed to each device [A]
	V1, V2  float64                 // the internal node voltages of the held state
}

// Leakage computes the static standby current of the cell holding V1 = 0
// (word line off, bit lines precharged at Vdd), under threshold shifts sh.
//
// Leakage paths: the OFF driver of the "1" node, the OFF load of the "0"
// node, and the OFF access devices leaking from the precharged bit lines
// into the "0" node.
func (c *Cell) Leakage(sh Shifts, opts *SNMOptions) LeakageResult {
	var o SNMOptions
	if opts != nil {
		o = *opts
	}
	o.fill()
	vo := &VTCOptions{BisectIter: o.BisectIter, AccessOff: true}
	vo.fill(c.Vdd)

	// Held state V1 = 0, V2 = Vdd: solve the two half-cells for the exact
	// levels (V1 slightly above ground, V2 slightly below Vdd).
	left := c.half(Left, sh, vo)
	right := c.half(Right, sh, vo)
	// V2 follows input V1≈0; V1 follows input V2≈Vdd; one fixed-point pass
	// suffices at these strongly-driven levels.
	v2, _ := right.solve(0, -0.2, c.Vdd+0.2, vo.BisectIter)
	v1, _ := left.solve(v2, -0.2, c.Vdd+0.2, vo.BisectIter)
	v2, _ = right.solve(v1, -0.2, c.Vdd+0.2, vo.BisectIter)

	var res LeakageResult
	res.V1, res.V2 = v1, v2

	// OFF driver D2: its gate (V1) is low, its drain (V2) is high —
	// subthreshold leak V2 -> gnd.
	d2 := c.shifted(D2, sh[D2])
	res.PerPath[D2] = d2.Ids(v1, v2, 0, 0)
	// OFF load L1: gate (V2) high -> OFF, source at Vdd, drain at V1 low:
	// leak Vdd->V1 (Ids negative by PMOS convention; take magnitude).
	l1 := c.shifted(L1, sh[L1])
	res.PerPath[L1] = -l1.Ids(v2, v1, c.Vdd, c.Vdd)
	// OFF access devices: WL=0; A1 leaks BL(Vdd)->V1; A2 has ~0 V across.
	a1 := c.shifted(A1, sh[A1])
	res.PerPath[A1] = -a1.Ids(0, v1, c.Vdd, 0)
	a2 := c.shifted(A2, sh[A2])
	res.PerPath[A2] = -a2.Ids(0, v2, c.Vdd, 0)

	for _, p := range res.PerPath {
		if p > 0 {
			res.Total += p
		}
	}
	return res
}
