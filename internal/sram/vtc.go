package sram

import (
	"math"

	"ecripse/internal/device"
)

// Side selects one half of the symmetric cell.
type Side int

const (
	// Left is the half whose output is node V1 (devices L1, D1, A1).
	Left Side = iota
	// Right is the half whose output is node V2 (devices L2, D2, A2).
	Right
)

func (s Side) devices() (load, driver, access int) {
	if s == Left {
		return L1, D1, A1
	}
	return L2, D2, A2
}

// VTCOptions controls the half-cell solver.
//
// WordLine and BitLine default to Vdd (the read condition) when left at
// their zero value. A genuine 0 V bias is expressed either by setting the
// matching *Set flag or by passing NaN (both mean "this zero is explicit,
// not unset"); a bare WordLine: 0 keeps its historical default-to-Vdd
// meaning so zero-valued options stay the read condition.
type VTCOptions struct {
	BisectIter  int     // root-search iteration cap (default 40)
	WordLine    float64 // WL voltage; defaults to Vdd unless WordLineSet (NaN = explicit 0)
	BitLine     float64 // BL voltage; defaults to Vdd unless BitLineSet (NaN = explicit 0)
	WordLineSet bool    // treat WordLine as explicit even when it is 0
	BitLineSet  bool    // treat BitLine as explicit even when it is 0
	AccessOff   bool    // true for the hold condition (WL = 0)

	// Telemetry optionally accumulates root-solve effort counters.
	Telemetry *SolveTelemetry
}

func (o *VTCOptions) fill(vdd float64) {
	if o.BisectIter == 0 {
		o.BisectIter = 40
	}
	if math.IsNaN(o.WordLine) {
		o.WordLine, o.WordLineSet = 0, true
	}
	if math.IsNaN(o.BitLine) {
		o.BitLine, o.BitLineSet = 0, true
	}
	if o.WordLine == 0 && !o.WordLineSet && !o.AccessOff {
		o.WordLine = vdd
	}
	if o.BitLine == 0 && !o.BitLineSet {
		o.BitLine = vdd
	}
	if o.AccessOff {
		o.WordLine = 0
	}
}

// halfCell is the resolved device triple of one cell half with shifts
// applied and every derived device constant precomputed, hoisted out of
// the root-search inner loop.
type halfCell struct {
	load, driver, access device.Resolved
	vdd, wl, bl          float64
}

func (c *Cell) half(side Side, sh Shifts, o *VTCOptions) halfCell {
	li, di, ai := side.devices()
	load := c.shifted(li, sh[li])
	driver := c.shifted(di, sh[di])
	access := c.shifted(ai, sh[ai])
	return halfCell{
		load:   load.Resolve(),
		driver: driver.Resolve(),
		access: access.Resolve(),
		vdd:    c.Vdd,
		wl:     o.WordLine,
		bl:     o.BitLine,
	}
}

// current returns the net current leaving the output node held at voltage v
// with the opposite storage node (the gate input) at vin. It is strictly
// increasing in v: every device contributes non-negative conductance.
func (h *halfCell) current(vin, v float64) float64 {
	// Driver NMOS: gate=vin, drain=v, source=gnd.
	iDrv := h.driver.Ids(vin, v, 0, 0)
	// Load PMOS: gate=vin, drain=v, source=bulk=Vdd.
	iLoad := h.load.Ids(vin, v, h.vdd, h.vdd)
	// Access NMOS: gate=WL, between node and bit line, bulk=gnd.
	iAcc := h.access.Ids(h.wl, v, h.bl, 0)
	return iDrv + iLoad + iAcc
}

// Root-solve tolerances. xtol bounds the bracket width; the residual early
// exit accepts a root once |f| falls below solveFtolRel times the entry
// bracket's residual scale. The relative form matters: the KCL residual
// spans microamps at nominal supply down to picoamps in a data-retention
// search at tens of millivolts, so no absolute threshold is simultaneously
// safe and useful. Dividing by the local conductance, a 1e-6-relative
// residual pins the root to well under a microvolt of bracket width —
// far inside every downstream tolerance — while skipping the last
// interpolation steps, whose residuals shrink superlinearly.
const (
	solveXtol    = 1e-10
	solveFtolRel = 1e-6
)

// solve finds the output voltage root of current(vin, ·) within [lo, hi]
// using the Illinois variant of regula falsi (superlinear on this smooth
// monotone residual), falling back to plain bisection steps whenever the
// interpolated point stalls. The second return is the number of residual
// evaluations beyond the two bracket-entry ones — bracket-expansion steps
// plus iteration-loop steps — which is what the solver telemetry bills as
// "iterations": every one of them costs a full KCL residual (three Ids
// calls), wherever it happens.
func (h *halfCell) solve(vin, lo, hi float64, maxIter int) (float64, int) {
	flo := h.current(vin, lo)
	fhi := h.current(vin, hi)
	iters := 0
	// Expand the bracket in the rare case the root is outside.
	for k := 0; flo > 0 && k < 8; k++ {
		lo -= 0.2
		flo = h.current(vin, lo)
		iters++
	}
	for k := 0; fhi < 0 && k < 8; k++ {
		hi += 0.2
		fhi = h.current(vin, hi)
		iters++
	}
	if flo > 0 || fhi < 0 {
		// Degenerate bias: return the end with the smaller |residual|.
		if math.Abs(flo) < math.Abs(fhi) {
			return lo, iters
		}
		return hi, iters
	}
	ftol := solveFtolRel * math.Max(-flo, fhi)
	if flo >= -ftol {
		return lo, iters
	}
	if fhi <= ftol {
		return hi, iters
	}

	side := 0
	for i := 0; i < maxIter && hi-lo > solveXtol; i++ {
		var mid float64
		if fhi != flo {
			mid = lo - flo*(hi-lo)/(fhi-flo)
		}
		// Keep the step inside the bracket; degrade to bisection otherwise.
		if !(mid > lo && mid < hi) {
			mid = 0.5 * (lo + hi)
		}
		fm := h.current(vin, mid)
		iters++
		if fm >= -ftol && fm <= ftol {
			return mid, iters
		}
		if fm > 0 {
			hi, fhi = mid, fm
			if side == +1 {
				flo *= 0.5 // Illinois trick: avoid endpoint stagnation
			}
			side = +1
		} else {
			lo, flo = mid, fm
			if side == -1 {
				fhi *= 0.5
			}
			side = -1
		}
	}
	return 0.5 * (lo + hi), iters
}

// HalfVTC solves the half-cell output voltage for input vin.
func (c *Cell) HalfVTC(side Side, vin float64, sh Shifts, opts *VTCOptions) float64 {
	var o VTCOptions
	if opts != nil {
		o = *opts
	}
	o.fill(c.Vdd)
	h := c.half(side, sh, &o)
	v, iters := h.solve(vin, -0.2, c.Vdd+0.2, o.BisectIter)
	o.Telemetry.add(1, int64(iters))
	recordGlobal(1, int64(iters))
	return v
}

// Curve is a sampled voltage-transfer characteristic: Out[i] is the output
// voltage at input In[i].
type Curve struct {
	In, Out []float64
}

// ReadVTC samples the half-cell read transfer curve on a uniform input grid
// of n+1 points spanning [0, Vdd]. The sweep exploits monotonicity: each
// point's bracket is capped by the previous output.
func (c *Cell) ReadVTC(side Side, sh Shifts, n int, opts *VTCOptions) Curve {
	if n < 2 {
		panic("sram: VTC grid too small")
	}
	var o VTCOptions
	if opts != nil {
		o = *opts
	}
	o.fill(c.Vdd)
	cur := Curve{In: make([]float64, n+1), Out: make([]float64, n+1)}
	c.readVTCInto(side, sh, n, &o, cur.In, cur.Out)
	return cur
}

// readVTCInto is the allocation-free core of ReadVTC: it fills the
// caller-provided in/out buffers (length n+1) from already-filled options.
// The indicator hot path calls it with pooled buffers.
//
// The sweep exploits monotonicity from both ends. The anchor solve at
// vin = Vdd yields the curve's minimum output, which tightens the lower
// bracket endpoint of every grid point; the previous root tightens the
// upper one (the VTC is non-increasing). Warm brackets roughly halve the
// Illinois iterations per point, and the anchor doubles as the last grid
// point, so an n-point sweep still costs n+1 solves.
func (c *Cell) readVTCInto(side Side, sh Shifts, n int, o *VTCOptions, in, out []float64) {
	h := c.half(side, sh, o)
	vmin, it := h.solve(c.Vdd, -0.2, c.Vdd+0.2, o.BisectIter)
	solves, iters := int64(1), int64(it)
	// Guard band below the anchor: vmin is itself a solver output, so the
	// true minimum may sit a solver tolerance beneath it. solve re-expands
	// the bracket if even that is optimistic.
	lo := vmin - 1e-6
	hi := c.Vdd + 0.2
	for i := 0; i <= n; i++ {
		vin := c.Vdd * float64(i) / float64(n)
		var v float64
		if i == n {
			v = vmin // the anchor already solved this grid point
		} else {
			v, it = h.solve(vin, lo, hi, o.BisectIter)
			solves++
			iters += int64(it)
		}
		in[i] = vin
		out[i] = v
		// The VTC is non-increasing: the next root lies at or below v.
		hi = v + 1e-6
	}
	o.Telemetry.add(solves, iters)
	recordGlobal(solves, iters)
}
