package sram

import (
	"math"

	"ecripse/internal/device"
)

// Side selects one half of the symmetric cell.
type Side int

const (
	// Left is the half whose output is node V1 (devices L1, D1, A1).
	Left Side = iota
	// Right is the half whose output is node V2 (devices L2, D2, A2).
	Right
)

func (s Side) devices() (load, driver, access int) {
	if s == Left {
		return L1, D1, A1
	}
	return L2, D2, A2
}

// VTCOptions controls the half-cell solver.
type VTCOptions struct {
	BisectIter int     // root-search iteration cap (default 40)
	WordLine   float64 // WL voltage; defaults to Vdd (read condition)
	BitLine    float64 // BL voltage; defaults to Vdd (read condition)
	AccessOff  bool    // true for the hold condition (WL = 0)
}

func (o *VTCOptions) fill(vdd float64) {
	if o.BisectIter == 0 {
		o.BisectIter = 40
	}
	if o.WordLine == 0 && !o.AccessOff {
		o.WordLine = vdd
	}
	if o.BitLine == 0 {
		o.BitLine = vdd
	}
	if o.AccessOff {
		o.WordLine = 0
	}
}

// halfCell is the resolved device triple of one cell half with shifts
// applied, hoisted out of the root-search inner loop.
type halfCell struct {
	load, driver, access device.Device
	vdd, wl, bl          float64
}

func (c *Cell) half(side Side, sh Shifts, o *VTCOptions) halfCell {
	li, di, ai := side.devices()
	return halfCell{
		load:   c.shifted(li, sh[li]),
		driver: c.shifted(di, sh[di]),
		access: c.shifted(ai, sh[ai]),
		vdd:    c.Vdd,
		wl:     o.WordLine,
		bl:     o.BitLine,
	}
}

// current returns the net current leaving the output node held at voltage v
// with the opposite storage node (the gate input) at vin. It is strictly
// increasing in v: every device contributes non-negative conductance.
func (h *halfCell) current(vin, v float64) float64 {
	// Driver NMOS: gate=vin, drain=v, source=gnd.
	iDrv := h.driver.Ids(vin, v, 0, 0)
	// Load PMOS: gate=vin, drain=v, source=bulk=Vdd.
	iLoad := h.load.Ids(vin, v, h.vdd, h.vdd)
	// Access NMOS: gate=WL, between node and bit line, bulk=gnd.
	iAcc := h.access.Ids(h.wl, v, h.bl, 0)
	return iDrv + iLoad + iAcc
}

// solve finds the output voltage root of current(vin, ·) within [lo, hi]
// using the Illinois variant of regula falsi (superlinear on this smooth
// monotone residual), falling back to plain bisection steps whenever the
// interpolated point stalls.
func (h *halfCell) solve(vin, lo, hi float64, maxIter int) float64 {
	flo := h.current(vin, lo)
	fhi := h.current(vin, hi)
	// Expand the bracket in the rare case the root is outside.
	for k := 0; flo > 0 && k < 8; k++ {
		lo -= 0.2
		flo = h.current(vin, lo)
	}
	for k := 0; fhi < 0 && k < 8; k++ {
		hi += 0.2
		fhi = h.current(vin, hi)
	}
	if flo > 0 || fhi < 0 {
		// Degenerate bias: return the end with the smaller |residual|.
		if math.Abs(flo) < math.Abs(fhi) {
			return lo
		}
		return hi
	}
	if flo == 0 {
		return lo
	}
	if fhi == 0 {
		return hi
	}

	const xtol = 1e-10
	side := 0
	for i := 0; i < maxIter && hi-lo > xtol; i++ {
		var mid float64
		if fhi != flo {
			mid = lo - flo*(hi-lo)/(fhi-flo)
		}
		// Keep the step inside the bracket; degrade to bisection otherwise.
		if !(mid > lo && mid < hi) {
			mid = 0.5 * (lo + hi)
		}
		fm := h.current(vin, mid)
		if fm == 0 {
			return mid
		}
		if fm > 0 {
			hi, fhi = mid, fm
			if side == +1 {
				flo *= 0.5 // Illinois trick: avoid endpoint stagnation
			}
			side = +1
		} else {
			lo, flo = mid, fm
			if side == -1 {
				fhi *= 0.5
			}
			side = -1
		}
	}
	return 0.5 * (lo + hi)
}

// HalfVTC solves the half-cell output voltage for input vin.
func (c *Cell) HalfVTC(side Side, vin float64, sh Shifts, opts *VTCOptions) float64 {
	var o VTCOptions
	if opts != nil {
		o = *opts
	}
	o.fill(c.Vdd)
	h := c.half(side, sh, &o)
	return h.solve(vin, -0.2, c.Vdd+0.2, o.BisectIter)
}

// Curve is a sampled voltage-transfer characteristic: Out[i] is the output
// voltage at input In[i].
type Curve struct {
	In, Out []float64
}

// ReadVTC samples the half-cell read transfer curve on a uniform input grid
// of n+1 points spanning [0, Vdd]. The sweep exploits monotonicity: each
// point's bracket is capped by the previous output.
func (c *Cell) ReadVTC(side Side, sh Shifts, n int, opts *VTCOptions) Curve {
	if n < 2 {
		panic("sram: VTC grid too small")
	}
	var o VTCOptions
	if opts != nil {
		o = *opts
	}
	o.fill(c.Vdd)
	cur := Curve{In: make([]float64, n+1), Out: make([]float64, n+1)}
	c.readVTCInto(side, sh, n, &o, cur.In, cur.Out)
	return cur
}

// readVTCInto is the allocation-free core of ReadVTC: it fills the
// caller-provided in/out buffers (length n+1) from already-filled options.
// The indicator hot path calls it with pooled buffers.
func (c *Cell) readVTCInto(side Side, sh Shifts, n int, o *VTCOptions, in, out []float64) {
	h := c.half(side, sh, o)
	hi := c.Vdd + 0.2
	for i := 0; i <= n; i++ {
		vin := c.Vdd * float64(i) / float64(n)
		v := h.solve(vin, -0.2, hi, o.BisectIter)
		in[i] = vin
		out[i] = v
		// The VTC is non-increasing: the next root lies at or below v.
		hi = v + 1e-6
	}
}
