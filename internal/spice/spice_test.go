package spice

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ecripse/internal/device"
	"ecripse/internal/linalg"
)

func TestResistorDivider(t *testing.T) {
	c := NewCircuit()
	vdd := c.Node("vdd")
	mid := c.Node("mid")
	c.AddVSource("V1", vdd, Ground, 1.0)
	c.AddResistor(vdd, mid, 1e3)
	c.AddResistor(mid, Ground, 3e3)
	sol, err := c.DCSolve(nil)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	got, err := sol.VoltageOf(c, "mid")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("divider mid = %v want 0.75", got)
	}
	// Branch current through the source: 1V across 4k, flowing out of +.
	if math.Abs(sol.BranchI[0]+0.25e-3) > 1e-9 {
		t.Fatalf("branch current = %v want -0.25mA", sol.BranchI[0])
	}
}

func TestCurrentSourceIntoResistor(t *testing.T) {
	c := NewCircuit()
	n := c.Node("n")
	c.AddCurrentSource(Ground, n, 1e-3) // 1 mA into node n
	c.AddResistor(n, Ground, 2e3)
	sol, err := c.DCSolve(nil)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if math.Abs(sol.V[n]-2.0) > 1e-6 {
		t.Fatalf("V(n) = %v want 2.0", sol.V[n])
	}
}

func TestTwoVSourcesSeries(t *testing.T) {
	c := NewCircuit()
	a := c.Node("a")
	b := c.Node("b")
	c.AddVSource("VA", a, Ground, 1.0)
	c.AddVSource("VAB", b, a, 0.5) // node b should be at 1.5 V
	c.AddResistor(b, Ground, 1e3)
	sol, err := c.DCSolve(nil)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if math.Abs(sol.V[b]-1.5) > 1e-9 {
		t.Fatalf("V(b) = %v", sol.V[b])
	}
}

func buildInverter(vddVal float64) (*Circuit, int, int) {
	c := NewCircuit()
	vdd := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	c.AddVSource("VDD", vdd, Ground, vddVal)
	c.AddVSource("VIN", in, Ground, 0)
	nm := device.NewDevice(device.PTM16HPNMOS(), 30e-9, 16e-9)
	pm := device.NewDevice(device.PTM16HPPMOS(), 60e-9, 16e-9)
	c.AddMOSFET("MN", nm, in, out, Ground, Ground)
	c.AddMOSFET("MP", pm, in, out, vdd, vdd)
	return c, in, out
}

func TestInverterRails(t *testing.T) {
	c, _, out := buildInverter(0.7)
	vin := c.FindVSource("VIN")
	if vin == nil {
		t.Fatal("VIN not found")
	}

	vin.V = 0
	sol, err := c.DCSolve(nil)
	if err != nil {
		t.Fatalf("solve at Vin=0: %v", err)
	}
	if sol.V[out] < 0.65 {
		t.Fatalf("inverter high output = %v", sol.V[out])
	}

	vin.V = 0.7
	sol, err = c.DCSolve(nil)
	if err != nil {
		t.Fatalf("solve at Vin=0.7: %v", err)
	}
	if sol.V[out] > 0.05 {
		t.Fatalf("inverter low output = %v", sol.V[out])
	}
}

func TestInverterVTCMonotoneDecreasing(t *testing.T) {
	c, _, out := buildInverter(0.7)
	var vals []float64
	for v := 0.0; v <= 0.701; v += 0.02 {
		vals = append(vals, v)
	}
	sols, err := c.DCSweep("VIN", vals, nil)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	prev := math.Inf(1)
	for i, s := range sols {
		vo := s.V[out]
		if vo > prev+1e-6 {
			t.Fatalf("VTC not monotone at point %d: %v > %v", i, vo, prev)
		}
		prev = vo
	}
	if first, last := sols[0].V[out], sols[len(sols)-1].V[out]; first-last < 0.6 {
		t.Fatalf("VTC swing too small: %v -> %v", first, last)
	}
}

func TestDiodeConnectedNMOS(t *testing.T) {
	// Current forced through a diode-connected NMOS: the solved gate voltage
	// must be above threshold-ish and reproduce the forced current.
	c := NewCircuit()
	d := c.Node("d")
	c.AddCurrentSource(Ground, d, 10e-6)
	nm := device.NewDevice(device.PTM16HPNMOS(), 60e-9, 16e-9)
	c.AddMOSFET("MD", nm, d, d, Ground, Ground)
	sol, err := c.DCSolve(nil)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	v := sol.V[d]
	if v < 0.3 || v > 0.8 {
		t.Fatalf("diode voltage = %v", v)
	}
	if got := nm.Ids(v, v, 0, 0); math.Abs(got-10e-6) > 1e-9 {
		t.Fatalf("device current = %v want 10uA", got)
	}
}

func TestSweepWarmStartMatchesColdSolve(t *testing.T) {
	c, _, out := buildInverter(0.7)
	sols, err := c.DCSweep("VIN", []float64{0.0, 0.35, 0.7}, nil)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	// Cold-solve the middle point independently.
	c2, _, out2 := buildInverter(0.7)
	c2.FindVSource("VIN").V = 0.35
	cold, err := c2.DCSolve(nil)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	if math.Abs(sols[1].V[out]-cold.V[out2]) > 1e-6 {
		t.Fatalf("warm %v vs cold %v", sols[1].V[out], cold.V[out2])
	}
}

func TestSweepRestoresSourceValue(t *testing.T) {
	c, _, _ := buildInverter(0.7)
	src := c.FindVSource("VIN")
	src.V = 0.123
	if _, err := c.DCSweep("VIN", []float64{0, 0.5}, nil); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if src.V != 0.123 {
		t.Fatalf("sweep did not restore source value: %v", src.V)
	}
}

func TestUnknownSweepSource(t *testing.T) {
	c := NewCircuit()
	c.AddResistor(c.Node("a"), Ground, 1)
	if _, err := c.DCSweep("nope", []float64{0}, nil); err == nil {
		t.Fatal("expected error for unknown source")
	}
}

func TestUnknownNodeVoltage(t *testing.T) {
	c := NewCircuit()
	n := c.Node("x")
	c.AddVSource("V", n, Ground, 1)
	sol, err := c.DCSolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sol.VoltageOf(c, "missing"); err == nil {
		t.Fatal("expected error for unknown node")
	}
}

func TestNodeNamesAndAliases(t *testing.T) {
	c := NewCircuit()
	if c.Node("gnd") != Ground || c.Node("0") != Ground {
		t.Fatal("ground aliases broken")
	}
	a := c.Node("a")
	if c.Node("a") != a {
		t.Fatal("node not idempotent")
	}
	if c.NodeName(a) != "a" {
		t.Fatalf("NodeName = %q", c.NodeName(a))
	}
	if c.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
}

func TestBadResistorPanics(t *testing.T) {
	c := NewCircuit()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.AddResistor(Ground, Ground, 0)
}

func TestFloatingNodeHandledByGmin(t *testing.T) {
	// A node connected only through a device gate would be singular without
	// gmin; with gmin it settles to a finite value.
	c := NewCircuit()
	g := c.Node("g")
	out := c.Node("out")
	vdd := c.Node("vdd")
	c.AddVSource("VDD", vdd, Ground, 0.7)
	c.AddResistor(vdd, out, 1e5)
	nm := device.NewDevice(device.PTM16HPNMOS(), 30e-9, 16e-9)
	c.AddMOSFET("MN", nm, g, out, Ground, Ground)
	sol, err := c.DCSolve(nil)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if math.IsNaN(sol.V[g]) || math.IsNaN(sol.V[out]) {
		t.Fatal("NaN solution")
	}
}

func TestKCLHoldsAtSolution(t *testing.T) {
	// At the solution, the net current into every internal node is ~0.
	c, _, _ := buildInverter(0.7)
	c.FindVSource("VIN").V = 0.3
	sol, err := c.DCSolve(nil)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	f := make([]float64, c.numUnknowns())
	x := sol.flat(c)
	o := &SolveOptions{}
	o.fill()
	c.residual(x, 1.0, o, f, nil)
	for i, r := range f {
		if math.Abs(r) > 1e-9 {
			t.Fatalf("residual[%d] = %v", i, r)
		}
	}
}

func TestVCCSTransconductor(t *testing.T) {
	// G = 1 mS sensing a 1 V control, dumping into 1 kΩ: output = 1 V.
	c := NewCircuit()
	ctrl := c.Node("ctrl")
	out := c.Node("out")
	c.AddVSource("VC", ctrl, Ground, 1)
	c.AddVCCS(Ground, out, ctrl, Ground, 1e-3) // current 1 mA into out
	c.AddResistor(out, Ground, 1e3)
	sol, err := c.DCSolve(nil)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if math.Abs(sol.V[out]-1) > 1e-6 {
		t.Fatalf("V(out) = %v", sol.V[out])
	}
}

func TestVCCSNegativeFeedbackAmplifier(t *testing.T) {
	// A VCCS with its own output as the inverting control implements a
	// one-pole feedback stage; the DC solution is the resistive balance
	// v = gm*R/(1+gm*R) * vin.
	c := NewCircuit()
	in := c.Node("in")
	out := c.Node("out")
	c.AddVSource("VIN", in, Ground, 0.5)
	gm, r := 5e-3, 10e3
	c.AddVCCS(Ground, out, in, out, gm) // i = gm (v_in - v_out)
	c.AddResistor(out, Ground, r)
	sol, err := c.DCSolve(nil)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	want := gm * r / (1 + gm*r) * 0.5
	if math.Abs(sol.V[out]-want) > 1e-9 {
		t.Fatalf("V(out) = %v want %v", sol.V[out], want)
	}
}

// Property: random resistive ladder networks solved by the nonlinear Newton
// machinery must agree with a direct linear solve of the nodal equations
// built independently with the linalg package.
func TestPropertyResistiveNetworkMatchesLinearSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		nNodes := 3 + rng.Intn(5) // free nodes 1..nNodes (0 is ground)
		c := NewCircuit()
		nodes := make([]int, nNodes+1)
		nodes[0] = Ground
		for i := 1; i <= nNodes; i++ {
			nodes[i] = c.Node(fmt.Sprintf("n%d", i))
		}
		vsrc := 0.5 + rng.Float64()
		c.AddVSource("V", nodes[1], Ground, vsrc)

		// Conductance matrix over free nodes 2..nNodes (node 1 is pinned by
		// the source); RHS collects current injected via conductances to the
		// pinned node.
		dim := nNodes - 1
		gmat := linalg.NewMatrix(dim, dim)
		rhs := make(linalg.Vector, dim)

		addR := func(a, b int, r float64) {
			c.AddResistor(nodes[a], nodes[b], r)
			g := 1 / r
			ai, bi := a-2, b-2 // index into free unknowns; -1 => pinned/ground
			if ai >= 0 {
				gmat.Set(ai, ai, gmat.At(ai, ai)+g)
			}
			if bi >= 0 {
				gmat.Set(bi, bi, gmat.At(bi, bi)+g)
			}
			if ai >= 0 && bi >= 0 {
				gmat.Set(ai, bi, gmat.At(ai, bi)-g)
				gmat.Set(bi, ai, gmat.At(bi, ai)-g)
			}
			// Injections from the pinned node (a or b == 1).
			if a == 1 && bi >= 0 {
				rhs[bi] += g * vsrc
			}
			if b == 1 && ai >= 0 {
				rhs[ai] += g * vsrc
			}
		}

		// A connected random ladder: chain plus random extra rungs and
		// ground returns.
		for i := 1; i < nNodes; i++ {
			addR(i, i+1, 100+rng.Float64()*10e3)
		}
		addR(nNodes, 0, 100+rng.Float64()*10e3)
		for k := 0; k < rng.Intn(4); k++ {
			a := 1 + rng.Intn(nNodes)
			b := rng.Intn(nNodes + 1) // may be ground (index 0)
			if a == b {
				continue
			}
			addR(a, b, 100+rng.Float64()*10e3)
		}

		sol, err := c.DCSolve(nil)
		if err != nil {
			t.Fatalf("trial %d: solve: %v", trial, err)
		}
		want, err := gmat.LUSolve(rhs)
		if err != nil {
			continue // singular draw (disconnected); spice handled it via gmin
		}
		for i := 0; i < dim; i++ {
			got := sol.V[nodes[i+2]]
			if math.Abs(got-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d node %d: spice %v vs linear %v", trial, i+2, got, want[i])
			}
		}
	}
}
