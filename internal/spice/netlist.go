package spice

// A parser for a compact SPICE-deck dialect, so circuits can be described
// as text rather than Go code:
//
//	* comment lines start with '*' (or '//'); blank lines are ignored
//	R<name> <n+> <n-> <value>
//	C<name> <n+> <n-> <value>
//	I<name> <from> <to> <value>
//	V<name> <n+> <n-> <value>
//	V<name> <n+> <n-> PULSE(<v1> <v2> <delay> <rise> <width> <fall>)
//	G<name> <n+> <n-> <ctrl+> <ctrl-> <gm>
//	M<name> <drain> <gate> <source> <bulk> <model> W=<value> L=<value> [DVTH=<value>]
//	.model <model> <builtin>     — builtin: ptm16hp-nmos or ptm16hp-pmos
//	.end                         — optional terminator
//
// Values accept the usual SPICE magnitude suffixes (f p n u m k meg g t).
// Node "0" (or "gnd") is ground. Model cards may appear anywhere in the
// deck; device lines are resolved after the whole deck is read.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ecripse/internal/device"
)

// ParseNetlist reads a deck and builds the circuit.
func ParseNetlist(r io.Reader) (*Circuit, error) {
	ckt := NewCircuit()
	models := map[string]device.Params{}
	type pendingFET struct {
		line       int
		name       string
		d, g, s, b int
		model      string
		w, l, dvth float64
	}
	var fets []pendingFET

	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "*") || strings.HasPrefix(line, "//") {
			continue
		}
		fields := strings.Fields(line)
		head := strings.ToUpper(fields[0])

		fail := func(format string, args ...any) error {
			return fmt.Errorf("spice: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}

		switch {
		case head == ".END":
			goto done
		case head == ".MODEL":
			if len(fields) != 3 {
				return nil, fail(".model needs a name and a builtin")
			}
			p, err := builtinModel(fields[2])
			if err != nil {
				return nil, fail("%v", err)
			}
			models[strings.ToUpper(fields[1])] = p
		case head[0] == 'R', head[0] == 'C', head[0] == 'I':
			if len(fields) != 4 {
				return nil, fail("%s element needs 2 nodes and a value", head[:1])
			}
			val, err := ParseValue(fields[3])
			if err != nil {
				return nil, fail("bad value %q: %v", fields[3], err)
			}
			a, b := ckt.Node(fields[1]), ckt.Node(fields[2])
			switch head[0] {
			case 'R':
				if val <= 0 {
					return nil, fail("resistance must be positive")
				}
				ckt.AddResistor(a, b, val)
			case 'C':
				if val <= 0 {
					return nil, fail("capacitance must be positive")
				}
				ckt.AddCapacitor(a, b, val)
			case 'I':
				ckt.AddCurrentSource(a, b, val)
			}
		case head[0] == 'G':
			if len(fields) != 6 {
				return nil, fail("G element needs 4 nodes and a transconductance")
			}
			gm, err := ParseValue(fields[5])
			if err != nil {
				return nil, fail("bad transconductance %q: %v", fields[5], err)
			}
			ckt.AddVCCS(ckt.Node(fields[1]), ckt.Node(fields[2]), ckt.Node(fields[3]), ckt.Node(fields[4]), gm)
		case head[0] == 'V':
			if len(fields) < 4 {
				return nil, fail("V element needs 2 nodes and a value")
			}
			a, b := ckt.Node(fields[1]), ckt.Node(fields[2])
			rest := strings.Join(fields[3:], " ")
			if up := strings.ToUpper(rest); strings.HasPrefix(up, "PULSE(") {
				args, err := parseArgList(rest[len("PULSE("):])
				if err != nil || len(args) != 6 {
					return nil, fail("PULSE needs 6 arguments (v1 v2 delay rise width fall)")
				}
				src := ckt.AddVSource(fields[0], a, b, args[0])
				src.Wave = Pulse(args[0], args[1], args[2], args[3], args[4], args[5])
			} else {
				val, err := ParseValue(fields[3])
				if err != nil {
					return nil, fail("bad value %q: %v", fields[3], err)
				}
				ckt.AddVSource(fields[0], a, b, val)
			}
		case head[0] == 'M':
			if len(fields) < 8 {
				return nil, fail("M element needs 4 nodes, a model, W= and L=")
			}
			f := pendingFET{
				line: lineNo, name: fields[0],
				d: ckt.Node(fields[1]), g: ckt.Node(fields[2]),
				s: ckt.Node(fields[3]), b: ckt.Node(fields[4]),
				model: strings.ToUpper(fields[5]),
			}
			for _, kv := range fields[6:] {
				parts := strings.SplitN(kv, "=", 2)
				if len(parts) != 2 {
					return nil, fail("bad device parameter %q", kv)
				}
				val, err := ParseValue(parts[1])
				if err != nil {
					return nil, fail("bad device parameter %q: %v", kv, err)
				}
				switch strings.ToUpper(parts[0]) {
				case "W":
					f.w = val
				case "L":
					f.l = val
				case "DVTH":
					f.dvth = val
				default:
					return nil, fail("unknown device parameter %q", parts[0])
				}
			}
			if f.w <= 0 || f.l <= 0 {
				return nil, fail("device %s needs positive W= and L=", fields[0])
			}
			fets = append(fets, f)
		default:
			return nil, fmt.Errorf("spice: line %d: unknown element %q", lineNo, fields[0])
		}
	}
done:
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("spice: reading netlist: %w", err)
	}
	for _, f := range fets {
		p, ok := models[f.model]
		if !ok {
			return nil, fmt.Errorf("spice: line %d: device %s references undefined model %q", f.line, f.name, f.model)
		}
		dev := device.NewDevice(p, f.w, f.l)
		dev.DVth = f.dvth
		ckt.AddMOSFET(f.name, dev, f.g, f.d, f.s, f.b)
	}
	return ckt, nil
}

func builtinModel(name string) (device.Params, error) {
	switch strings.ToLower(name) {
	case "ptm16hp-nmos", "nmos16":
		return device.PTM16HPNMOS(), nil
	case "ptm16hp-pmos", "pmos16":
		return device.PTM16HPPMOS(), nil
	}
	return device.Params{}, fmt.Errorf("unknown builtin model %q", name)
}

// parseArgList parses "a b c)" — a PULSE argument tail.
func parseArgList(s string) ([]float64, error) {
	s = strings.TrimSpace(s)
	if !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("missing closing parenthesis")
	}
	fields := strings.Fields(strings.TrimSuffix(s, ")"))
	out := make([]float64, 0, len(fields))
	for _, f := range fields {
		v, err := ParseValue(f)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseValue parses a number with an optional SPICE magnitude suffix
// (case-insensitive): f p n u m k meg g t. "30n" = 30e-9, "4.7k" = 4700.
func ParseValue(s string) (float64, error) {
	ls := strings.ToLower(strings.TrimSpace(s))
	mult := 1.0
	switch {
	case strings.HasSuffix(ls, "meg"):
		mult, ls = 1e6, strings.TrimSuffix(ls, "meg")
	case strings.HasSuffix(ls, "f"):
		mult, ls = 1e-15, strings.TrimSuffix(ls, "f")
	case strings.HasSuffix(ls, "p"):
		mult, ls = 1e-12, strings.TrimSuffix(ls, "p")
	case strings.HasSuffix(ls, "n"):
		mult, ls = 1e-9, strings.TrimSuffix(ls, "n")
	case strings.HasSuffix(ls, "u"):
		mult, ls = 1e-6, strings.TrimSuffix(ls, "u")
	case strings.HasSuffix(ls, "m"):
		mult, ls = 1e-3, strings.TrimSuffix(ls, "m")
	case strings.HasSuffix(ls, "k"):
		mult, ls = 1e3, strings.TrimSuffix(ls, "k")
	case strings.HasSuffix(ls, "g"):
		mult, ls = 1e9, strings.TrimSuffix(ls, "g")
	case strings.HasSuffix(ls, "t"):
		mult, ls = 1e12, strings.TrimSuffix(ls, "t")
	}
	v, err := strconv.ParseFloat(ls, 64)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}
