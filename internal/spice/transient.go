package spice

import (
	"fmt"
	"math"
)

// dynCtx carries the state of one transient timestep through the residual:
// backward-Euler companion currents for capacitors and time-evaluated
// source values.
type dynCtx struct {
	t     float64   // absolute time of the step being solved
	h     float64   // step size
	vPrev []float64 // node voltages at the previous accepted step
}

// TransientResult holds a fixed-step transient waveform.
type TransientResult struct {
	Times []float64
	// V[k] are the node voltages (indexed by node id) at Times[k].
	V [][]float64
}

// VoltageOf returns the waveform of a named node.
func (r *TransientResult) VoltageOf(c *Circuit, name string) ([]float64, error) {
	i, ok := c.nodeIndex[name]
	if !ok {
		return nil, fmt.Errorf("spice: unknown node %q", name)
	}
	out := make([]float64, len(r.V))
	for k, v := range r.V {
		out[k] = v[i]
	}
	return out, nil
}

// Final returns the node voltages at the last step.
func (r *TransientResult) Final() []float64 {
	if len(r.V) == 0 {
		return nil
	}
	return r.V[len(r.V)-1]
}

// TransientAdaptive integrates with local-error-controlled step sizes: each
// step is taken once at h and once as two half-steps; the difference bounds
// the local truncation error of backward Euler. Steps shrink at waveform
// edges and grow through quiet regions, which typically cuts the solve
// count by an order of magnitude on pulse-driven circuits compared to a
// fixed step small enough for the edges.
//
// tol is the per-step voltage error target (default 1e-4 V); hInit/hMin/hMax
// bound the step size (defaults tstop/1e3, tstop/1e7, tstop/20).
func (c *Circuit) TransientAdaptive(tstop, tol float64, opts *SolveOptions) (*TransientResult, error) {
	if !(tstop > 0) {
		return nil, fmt.Errorf("spice: bad transient window tstop=%g", tstop)
	}
	if tol <= 0 {
		tol = 1e-4
	}
	var o SolveOptions
	if opts != nil {
		o = *opts
	}
	o.fill()

	hInit := tstop / 1e3
	hMin := tstop / 1e7
	hMax := tstop / 20

	restore := make([]float64, len(c.vsources))
	for i, s := range c.vsources {
		restore[i] = s.V
		s.V = s.valueAt(0)
	}
	op, err := c.DCSolve(&o)
	for i, s := range c.vsources {
		s.V = restore[i]
	}
	if err != nil {
		return nil, fmt.Errorf("spice: transient initial operating point: %w", err)
	}

	res := &TransientResult{}
	record := func(t float64, v []float64) {
		res.Times = append(res.Times, t)
		res.V = append(res.V, append([]float64(nil), v...))
	}
	record(0, op.V)

	x := op.flat(c)
	vPrev := append([]float64(nil), op.V...)
	t, h := 0.0, hInit
	for t < tstop {
		if t+h > tstop {
			h = tstop - t
		}
		// Full step.
		full, err := c.newtonCtx(x, 1.0, &o, &dynCtx{t: t + h, h: h, vPrev: vPrev})
		if err != nil {
			return nil, fmt.Errorf("spice: adaptive step at t=%.4g: %w", t, err)
		}
		// Two half steps.
		halfA, err := c.newtonCtx(x, 1.0, &o, &dynCtx{t: t + h/2, h: h / 2, vPrev: vPrev})
		if err != nil {
			return nil, fmt.Errorf("spice: adaptive half-step at t=%.4g: %w", t, err)
		}
		halfB, err := c.newtonCtx(halfA.flat(c), 1.0, &o, &dynCtx{t: t + h, h: h / 2, vPrev: halfA.V})
		if err != nil {
			return nil, fmt.Errorf("spice: adaptive half-step at t=%.4g: %w", t+h/2, err)
		}
		// Local error estimate over node voltages.
		errMax := 0.0
		for i := range full.V {
			if d := math.Abs(full.V[i] - halfB.V[i]); d > errMax {
				errMax = d
			}
		}
		if errMax > tol && h > hMin {
			h = math.Max(h/2, hMin)
			continue // reject, retry smaller
		}
		// Accept the more accurate two-half-step solution.
		t += h
		record(t, halfB.V)
		vPrev = append(vPrev[:0], halfB.V...)
		x = halfB.flat(c)
		if errMax < tol/4 && h < hMax {
			h = math.Min(2*h, hMax)
		}
	}
	return res, nil
}

// Transient integrates the circuit from its t = 0 operating point to tstop
// with fixed step h, using backward Euler (A-stable, no ringing on the
// stiff RC networks an SRAM cell presents). Time-varying sources follow
// their Wave functions; capacitors use companion currents.
func (c *Circuit) Transient(tstop, h float64, opts *SolveOptions) (*TransientResult, error) {
	if !(tstop > 0) || !(h > 0) || h > tstop {
		return nil, fmt.Errorf("spice: bad transient window tstop=%g h=%g", tstop, h)
	}
	var o SolveOptions
	if opts != nil {
		o = *opts
	}
	o.fill()

	// Initial operating point with the waveforms frozen at t = 0.
	restore := make([]float64, len(c.vsources))
	for i, s := range c.vsources {
		restore[i] = s.V
		s.V = s.valueAt(0)
	}
	op, err := c.DCSolve(&o)
	for i, s := range c.vsources {
		s.V = restore[i]
	}
	if err != nil {
		return nil, fmt.Errorf("spice: transient initial operating point: %w", err)
	}

	steps := int(math.Ceil(tstop / h))
	res := &TransientResult{
		Times: make([]float64, 0, steps+1),
		V:     make([][]float64, 0, steps+1),
	}
	record := func(t float64, v []float64) {
		res.Times = append(res.Times, t)
		res.V = append(res.V, append([]float64(nil), v...))
	}
	record(0, op.V)

	x := op.flat(c)
	vPrev := append([]float64(nil), op.V...)
	for k := 1; k <= steps; k++ {
		t := math.Min(float64(k)*h, tstop)
		ctx := &dynCtx{t: t, h: t - res.Times[len(res.Times)-1], vPrev: vPrev}
		sol, err := c.newtonCtx(x, 1.0, &o, ctx)
		if err != nil {
			return nil, fmt.Errorf("spice: transient step %d (t=%.4g): %w", k, t, err)
		}
		record(t, sol.V)
		vPrev = append(vPrev[:0], sol.V...)
		x = sol.flat(c)
	}
	return res, nil
}
