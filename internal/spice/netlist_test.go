package spice

import (
	"math"
	"strings"
	"testing"
)

func TestParseValueSuffixes(t *testing.T) {
	cases := map[string]float64{
		"30n": 30e-9, "4.7k": 4700, "1meg": 1e6, "0.95n": 0.95e-9,
		"10f": 10e-15, "2p": 2e-12, "5u": 5e-6, "3m": 3e-3,
		"2g": 2e9, "1t": 1e12, "0.7": 0.7, "-1.5m": -1.5e-3,
	}
	for in, want := range cases {
		got, err := ParseValue(in)
		if err != nil {
			t.Fatalf("ParseValue(%q): %v", in, err)
		}
		if math.Abs(got-want) > 1e-12*math.Abs(want) {
			t.Fatalf("ParseValue(%q) = %v want %v", in, got, want)
		}
	}
	if _, err := ParseValue("abc"); err == nil {
		t.Fatal("expected error")
	}
}

func TestParseNetlistDivider(t *testing.T) {
	deck := `
* a resistor divider
V1 vdd 0 1.0
R1 vdd mid 1k
R2 mid 0 3k
.end
`
	ckt, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sol, err := ckt.DCSolve(nil)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	v, err := sol.VoltageOf(ckt, "mid")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.75) > 1e-9 {
		t.Fatalf("mid = %v", v)
	}
}

func TestParseNetlistSRAMCell(t *testing.T) {
	deck := `
* 6T SRAM cell, Table I geometry
.model NMOS ptm16hp-nmos
.model PMOS ptm16hp-pmos
VDD vdd 0 0.7
VWL wl 0 0.7
VBL bl 0 0.7
VBLB blb 0 0.7
ML1 v1 v2 vdd vdd PMOS W=60n L=16n
MD1 v1 v2 0 0 NMOS W=30n L=16n
MA1 v1 wl bl 0 NMOS W=30n L=16n
ML2 v2 v1 vdd vdd PMOS W=60n L=16n
MD2 v2 v1 0 0 NMOS W=30n L=16n DVTH=0.01
MA2 v2 wl blb 0 NMOS W=30n L=16n
`
	ckt, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sol, err := ckt.DCSolve(nil)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	v1, _ := sol.VoltageOf(ckt, "v1")
	v2, _ := sol.VoltageOf(ckt, "v2")
	if math.IsNaN(v1) || math.IsNaN(v2) || v1 < -0.05 || v2 < -0.05 {
		t.Fatalf("bad operating point: v1=%v v2=%v", v1, v2)
	}
}

func TestParseNetlistPulseTransient(t *testing.T) {
	deck := `
VIN in 0 PULSE(0 1 0 1n 1 1n)
R1 in out 1k
C1 out 0 1u
`
	ckt, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := ckt.Transient(2e-3, 1e-5, nil)
	if err != nil {
		t.Fatalf("transient: %v", err)
	}
	v, err := res.VoltageOf(ckt, "out")
	if err != nil {
		t.Fatal(err)
	}
	// tau = 1 ms: after 2 ms the output is ~1 - e^-2 = 0.865.
	final := v[len(v)-1]
	if math.Abs(final-0.8647) > 0.02 {
		t.Fatalf("final = %v", final)
	}
}

func TestParseNetlistErrors(t *testing.T) {
	cases := map[string]string{
		"unknown element":   "X1 a b 1k",
		"bad value":         "R1 a b xx",
		"negative R":        "R1 a b -5",
		"short M line":      "M1 d g s b",
		"undefined model":   "M1 d g s b NMOS W=30n L=16n",
		"bad model builtin": ".model NMOS bsim4",
		"bad pulse":         "V1 a 0 PULSE(1 2 3)",
		"bad param":         ".model NMOS ptm16hp-nmos\nM1 d g s b NMOS W=30n L=16n FOO=1",
		"missing W":         ".model NMOS ptm16hp-nmos\nM1 d g s b NMOS L=16n DVTH=0",
	}
	for name, deck := range cases {
		if _, err := ParseNetlist(strings.NewReader(deck)); err == nil {
			t.Fatalf("%s: expected parse error for %q", name, deck)
		}
	}
}

func TestParseNetlistCommentsAndEnd(t *testing.T) {
	deck := `
* comment
// another comment

V1 a 0 1
R1 a 0 1k
.end
R2 ignored 0 1k
`
	ckt, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	// .end stops parsing: only nodes a and ground exist.
	if ckt.NumNodes() != 2 {
		t.Fatalf("nodes = %d", ckt.NumNodes())
	}
}

func TestParseNetlistMatchesProgrammaticCell(t *testing.T) {
	// The deck-built inverter must agree with the Go-built one.
	deck := `
.model N ptm16hp-nmos
.model P ptm16hp-pmos
VDD vdd 0 0.7
VIN in 0 0.35
MN out in 0 0 N W=30n L=16n
MP out in vdd vdd P W=60n L=16n
`
	ckt, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sol, err := ckt.DCSolve(nil)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	vDeck, _ := sol.VoltageOf(ckt, "out")

	ref, _, outNode := buildInverter(0.7)
	ref.FindVSource("VIN").V = 0.35
	solRef, err := ref.DCSolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vDeck-solRef.V[outNode]) > 1e-6 {
		t.Fatalf("deck %v vs programmatic %v", vDeck, solRef.V[outNode])
	}
}

func TestParseNetlistVCCS(t *testing.T) {
	deck := `
VC ctrl 0 1
G1 0 out ctrl 0 1m
R1 out 0 1k
`
	ckt, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sol, err := ckt.DCSolve(nil)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	v, _ := sol.VoltageOf(ckt, "out")
	if math.Abs(v-1) > 1e-6 {
		t.Fatalf("V(out) = %v", v)
	}
}

func TestParseNetlistVCCSErrors(t *testing.T) {
	for _, deck := range []string{"G1 a b c 1m", "G1 a b c d xx"} {
		if _, err := ParseNetlist(strings.NewReader(deck)); err == nil {
			t.Fatalf("accepted %q", deck)
		}
	}
}
