package spice

import (
	"strings"
	"testing"
)

// FuzzParseNetlist checks that arbitrary deck text never panics the parser
// and that accepted decks always produce a structurally sane circuit.
func FuzzParseNetlist(f *testing.F) {
	seeds := []string{
		"V1 a 0 1\nR1 a 0 1k",
		"* comment\n.model N ptm16hp-nmos\nM1 d g s b N W=30n L=16n",
		"VIN in 0 PULSE(0 1 0 1n 1 1n)\nC1 in 0 1u",
		"G1 0 out ctrl 0 1m\nR1 out 0 1k",
		".end",
		"R1 a b -5",
		"I1 0 n 1u\nR1 n 0 2k",
		"V1 a 0 PULSE(",
		"M1 a b c d",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, deck string) {
		ckt, err := ParseNetlist(strings.NewReader(deck))
		if err != nil {
			return
		}
		if ckt.NumNodes() < 1 {
			t.Fatal("parsed circuit lost its ground node")
		}
		for i := 0; i < ckt.NumNodes(); i++ {
			if ckt.NodeName(i) == "" {
				t.Fatalf("node %d has empty name", i)
			}
		}
	})
}

// FuzzParseValue checks the suffix parser never panics and parses
// round-trippable canonical inputs correctly.
func FuzzParseValue(f *testing.F) {
	for _, s := range []string{"1", "-2.5", "30n", "4.7k", "1meg", "1e-9", "abc", "", "n", "1kk"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		v, err := ParseValue(in)
		if err != nil {
			return
		}
		if v != v && in != "nan" && !strings.Contains(strings.ToLower(in), "nan") {
			t.Fatalf("ParseValue(%q) produced NaN without a NaN input", in)
		}
	})
}
