package spice

import (
	"fmt"
	"math"

	"ecripse/internal/linalg"
)

// SolveOptions configures the DC operating-point solver.
type SolveOptions struct {
	MaxIter   int     // Newton iterations per attempt (default 200)
	AbsTol    float64 // residual current tolerance [A] (default 1e-12)
	StepTol   float64 // voltage update tolerance [V] (default 1e-10)
	Gmin      float64 // conductance from every node to ground [S] (default 1e-12)
	MaxStep   float64 // Newton step clamp per unknown [V] (default 0.25)
	RampSteps int     // source-stepping ramp points on fallback (default 12)
	Guess     []float64
}

func (o *SolveOptions) fill() {
	if o.MaxIter == 0 {
		o.MaxIter = 200
	}
	if o.AbsTol == 0 {
		o.AbsTol = 1e-12
	}
	if o.StepTol == 0 {
		o.StepTol = 1e-10
	}
	if o.Gmin == 0 {
		o.Gmin = 1e-12
	}
	if o.MaxStep == 0 {
		o.MaxStep = 0.25
	}
	if o.RampSteps == 0 {
		o.RampSteps = 12
	}
}

// Solution is a DC operating point.
type Solution struct {
	V          []float64 // node voltages, indexed by node id (V[Ground]==0)
	BranchI    []float64 // voltage-source branch currents, by source order
	Iterations int
}

// VoltageOf returns the solved voltage of a named node.
func (s *Solution) VoltageOf(c *Circuit, name string) (float64, error) {
	i, ok := c.nodeIndex[name]
	if !ok {
		return 0, fmt.Errorf("spice: unknown node %q", name)
	}
	return s.V[i], nil
}

// DCSolve computes a DC operating point. It first attempts a plain damped
// Newton solve from the guess (or zeros); if that fails it falls back to
// source stepping: all independent sources are ramped from 0 to their values
// while re-solving with warm starts.
func (c *Circuit) DCSolve(opts *SolveOptions) (*Solution, error) {
	var o SolveOptions
	if opts != nil {
		o = *opts
	}
	o.fill()
	for _, e := range c.elements {
		switch el := e.(type) {
		case *Resistor:
			if err := c.checkNode(el.A); err != nil {
				return nil, err
			}
			if err := c.checkNode(el.B); err != nil {
				return nil, err
			}
		}
	}

	x := c.initialX(o.Guess)
	sol, err := c.newton(x, 1.0, &o)
	if err == nil {
		return sol, nil
	}

	// Source-stepping fallback.
	x = c.initialX(nil)
	for i := range x {
		x[i] = 0
	}
	for k := 1; k <= o.RampSteps; k++ {
		scale := float64(k) / float64(o.RampSteps)
		s, rampErr := c.newton(x, scale, &o)
		if rampErr != nil {
			return nil, fmt.Errorf("spice: no convergence (direct: %v; ramp at %.0f%%: %w)", err, scale*100, rampErr)
		}
		copy(x, s.flat(c))
		if k == o.RampSteps {
			return s, nil
		}
	}
	panic("unreachable")
}

// unknown layout: [v1..v_{n-1}, ibr0..ibr_{m-1}] (ground voltage excluded).
func (c *Circuit) numUnknowns() int { return c.NumNodes() - 1 + len(c.vsources) }

func (c *Circuit) initialX(guess []float64) []float64 {
	x := make([]float64, c.numUnknowns())
	if guess != nil {
		copy(x, guess)
	}
	return x
}

func (s *Solution) flat(c *Circuit) []float64 {
	x := make([]float64, c.numUnknowns())
	copy(x, s.V[1:])
	copy(x[c.NumNodes()-1:], s.BranchI)
	return x
}

// residual computes F(x) with all voltage sources scaled by srcScale. A
// non-nil ctx switches to transient semantics: capacitors contribute
// backward-Euler companion currents and sources follow their waveforms.
func (c *Circuit) residual(x []float64, srcScale float64, o *SolveOptions, f []float64, ctx *dynCtx) {
	n := c.NumNodes()
	v := make([]float64, n)
	copy(v[1:], x[:n-1])

	kcl := make([]float64, n)
	for _, e := range c.elements {
		switch el := e.(type) {
		case *CurrentSource:
			kcl[el.A] += srcScale * el.I
			kcl[el.B] -= srcScale * el.I
		case *Capacitor:
			if ctx != nil {
				// Backward Euler: i = C·(Δv_now − Δv_prev)/h.
				dvNow := v[el.A] - v[el.B]
				dvPrev := ctx.vPrev[el.A] - ctx.vPrev[el.B]
				ic := el.C * (dvNow - dvPrev) / ctx.h
				kcl[el.A] += ic
				kcl[el.B] -= ic
			}
		default:
			e.AddCurrents(v, kcl)
		}
	}
	// Branch currents of voltage sources enter their node KCL.
	for bi, s := range c.vsources {
		ibr := x[n-1+bi]
		kcl[s.A] += ibr
		kcl[s.B] -= ibr
	}
	// gmin conditioning.
	for i := 1; i < n; i++ {
		kcl[i] += o.Gmin * v[i]
	}
	copy(f, kcl[1:])
	// Voltage-source constraint rows.
	for bi, s := range c.vsources {
		val := srcScale * s.V
		if ctx != nil {
			val = s.valueAt(ctx.t)
		}
		f[n-1+bi] = v[s.A] - v[s.B] - val
	}
}

func (c *Circuit) newton(x0 []float64, srcScale float64, o *SolveOptions) (*Solution, error) {
	return c.newtonCtx(x0, srcScale, o, nil)
}

func (c *Circuit) newtonCtx(x0 []float64, srcScale float64, o *SolveOptions, ctx *dynCtx) (*Solution, error) {
	nu := c.numUnknowns()
	x := append([]float64(nil), x0...)
	f := make([]float64, nu)
	fp := make([]float64, nu)

	for iter := 1; iter <= o.MaxIter; iter++ {
		c.residual(x, srcScale, o, f, ctx)

		maxRes := 0.0
		for _, r := range f {
			if a := math.Abs(r); a > maxRes {
				maxRes = a
			}
		}
		if maxRes < o.AbsTol {
			return c.pack(x, iter), nil
		}

		// Numeric Jacobian by forward differences.
		jac := linalg.NewMatrix(nu, nu)
		for j := 0; j < nu; j++ {
			h := 1e-7 * (1 + math.Abs(x[j]))
			old := x[j]
			x[j] = old + h
			c.residual(x, srcScale, o, fp, ctx)
			x[j] = old
			for i := 0; i < nu; i++ {
				jac.Set(i, j, (fp[i]-f[i])/h)
			}
		}
		rhs := make(linalg.Vector, nu)
		for i := range rhs {
			rhs[i] = -f[i]
		}
		dx, err := jac.LUSolve(rhs)
		if err != nil {
			return nil, fmt.Errorf("spice: singular Jacobian at iteration %d: %w", iter, err)
		}

		// Damped update: clamp per-unknown voltage steps.
		step := 1.0
		for i := 0; i < c.NumNodes()-1; i++ {
			if a := math.Abs(dx[i]); a > o.MaxStep {
				if s := o.MaxStep / a; s < step {
					step = s
				}
			}
		}
		maxDx := 0.0
		for i := range x {
			x[i] += step * dx[i]
			if a := math.Abs(step * dx[i]); a > maxDx {
				maxDx = a
			}
		}
		if maxDx < o.StepTol {
			c.residual(x, srcScale, o, f, ctx)
			maxRes = 0
			for _, r := range f {
				if a := math.Abs(r); a > maxRes {
					maxRes = a
				}
			}
			if maxRes < 1e3*o.AbsTol {
				return c.pack(x, iter), nil
			}
			return nil, fmt.Errorf("spice: stalled with residual %.3g A", maxRes)
		}
	}
	return nil, fmt.Errorf("spice: Newton did not converge in %d iterations", o.MaxIter)
}

func (c *Circuit) pack(x []float64, iters int) *Solution {
	n := c.NumNodes()
	sol := &Solution{
		V:          make([]float64, n),
		BranchI:    make([]float64, len(c.vsources)),
		Iterations: iters,
	}
	copy(sol.V[1:], x[:n-1])
	copy(sol.BranchI, x[n-1:])
	return sol
}

// DCSweep solves operating points for each value of the named voltage
// source, warm-starting each point from the previous solution. It returns
// one Solution per sweep value.
func (c *Circuit) DCSweep(sourceName string, values []float64, opts *SolveOptions) ([]*Solution, error) {
	src := c.FindVSource(sourceName)
	if src == nil {
		return nil, fmt.Errorf("spice: no voltage source named %q", sourceName)
	}
	orig := src.V
	defer func() { src.V = orig }()

	var o SolveOptions
	if opts != nil {
		o = *opts
	}
	o.fill()

	out := make([]*Solution, 0, len(values))
	var guess []float64
	for _, val := range values {
		src.V = val
		stepOpts := o
		stepOpts.Guess = guess
		sol, err := c.DCSolve(&stepOpts)
		if err != nil {
			return nil, fmt.Errorf("spice: sweep %s=%.4g: %w", sourceName, val, err)
		}
		out = append(out, sol)
		guess = sol.flat(c)
	}
	return out, nil
}
