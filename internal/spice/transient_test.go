package spice

import (
	"math"
	"testing"

	"ecripse/internal/device"
)

func TestTransientRCDischarge(t *testing.T) {
	// A charged capacitor discharging through a resistor: v(t) = V0·e^(−t/RC).
	// Drive the node to 1 V with a pulse source that drops at t=0+, then
	// compare against the analytic decay. R=1k, C=1µF → τ=1ms.
	c := NewCircuit()
	n := c.Node("n")
	src := c.AddVSource("VS", c.Node("drive"), Ground, 1)
	c.AddResistor(c.Node("drive"), n, 1) // tiny resistor couples source initially
	c.AddResistor(n, Ground, 1e3)
	c.AddCapacitor(n, Ground, 1e-6)
	src.Wave = func(tm float64) float64 {
		if tm <= 0 {
			return 1
		}
		return 0
	}
	res, err := c.Transient(5e-3, 1e-5, nil)
	if err != nil {
		t.Fatalf("transient: %v", err)
	}
	v, err := res.VoltageOf(c, "n")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[0]-1) > 2e-3 {
		t.Fatalf("initial condition %v", v[0])
	}
	// After t=0 the 1Ω source path pulls to 0 almost instantly; effective
	// discharge is then dominated by the 1Ω... so instead check monotone
	// decay to zero and ballpark the fast time constant.
	final := v[len(v)-1]
	if math.Abs(final) > 1e-3 {
		t.Fatalf("did not discharge: %v", final)
	}
	for i := 1; i < len(v); i++ {
		if v[i] > v[i-1]+1e-9 {
			t.Fatalf("non-monotone discharge at step %d", i)
		}
	}
}

func TestTransientRCChargingMatchesAnalytic(t *testing.T) {
	// Series R into C driven by a step: v(t) = V·(1 − e^(−t/RC)), τ = 1 ms.
	c := NewCircuit()
	in := c.Node("in")
	out := c.Node("out")
	src := c.AddVSource("VS", in, Ground, 0)
	c.AddResistor(in, out, 1e3)
	c.AddCapacitor(out, Ground, 1e-6)
	src.Wave = Pulse(0, 1, 0, 1e-9, 1, 1e-9)

	const tau = 1e-3
	res, err := c.Transient(3e-3, 5e-6, nil)
	if err != nil {
		t.Fatalf("transient: %v", err)
	}
	v, _ := res.VoltageOf(c, "out")
	for k, tm := range res.Times {
		want := 1 - math.Exp(-tm/tau)
		if math.Abs(v[k]-want) > 0.02 {
			t.Fatalf("t=%v: v=%v want %v", tm, v[k], want)
		}
	}
}

func TestTransientPulseShape(t *testing.T) {
	w := Pulse(0, 1, 1e-9, 1e-9, 5e-9, 1e-9)
	cases := []struct{ t, want float64 }{
		{0, 0}, {1.5e-9, 0.5}, {3e-9, 1}, {6.9e-9, 1}, {7.5e-9, 0.5}, {10e-9, 0},
	}
	for _, tc := range cases {
		if got := w(tc.t); math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("pulse(%v) = %v want %v", tc.t, got, tc.want)
		}
	}
}

func TestTransientBadWindow(t *testing.T) {
	c := NewCircuit()
	c.AddResistor(c.Node("a"), Ground, 1)
	if _, err := c.Transient(0, 1e-9, nil); err == nil {
		t.Fatal("expected error for tstop=0")
	}
	if _, err := c.Transient(1e-9, 1e-6, nil); err == nil {
		t.Fatal("expected error for h>tstop")
	}
}

func TestTransientCapacitorOpenAtDC(t *testing.T) {
	// At DC a capacitor must not load the divider.
	c := NewCircuit()
	vdd := c.Node("vdd")
	mid := c.Node("mid")
	c.AddVSource("V1", vdd, Ground, 1)
	c.AddResistor(vdd, mid, 1e3)
	c.AddResistor(mid, Ground, 1e3)
	c.AddCapacitor(mid, Ground, 1e-9)
	sol, err := c.DCSolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.V[mid]-0.5) > 1e-9 {
		t.Fatalf("capacitor loaded DC divider: %v", sol.V[mid])
	}
}

func TestTransientBadCapacitorPanics(t *testing.T) {
	c := NewCircuit()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.AddCapacitor(Ground, Ground, 0)
}

// TestTransientSRAMWriteFlipsCell integrates a full 6T write operation: the
// cell starts storing V1 = 1; pulling BL low with the word line pulsed high
// must flip it. This cross-validates the dynamic substrate against the
// static write-margin analysis in internal/sram.
func TestTransientSRAMWriteFlipsCell(t *testing.T) {
	c := NewCircuit()
	vdd := c.Node("vdd")
	v1 := c.Node("v1")
	v2 := c.Node("v2")
	bl := c.Node("bl")
	blb := c.Node("blb")
	wl := c.Node("wl")

	const V = 0.7
	c.AddVSource("VDD", vdd, Ground, V)
	wlSrc := c.AddVSource("VWL", wl, Ground, 0)
	blSrc := c.AddVSource("VBL", bl, Ground, V)
	c.AddVSource("VBLB", blb, Ground, V)

	np := device.PTM16HPNMOS()
	pp := device.PTM16HPPMOS()
	l1 := device.NewDevice(pp, 60e-9, 16e-9)
	l2 := device.NewDevice(pp, 60e-9, 16e-9)
	d1 := device.NewDevice(np, 30e-9, 16e-9)
	d2 := device.NewDevice(np, 30e-9, 16e-9)
	a1 := device.NewDevice(np, 30e-9, 16e-9)
	a2 := device.NewDevice(np, 30e-9, 16e-9)
	c.AddMOSFET("L1", l1, v2, v1, vdd, vdd)
	c.AddMOSFET("D1", d1, v2, v1, Ground, Ground)
	c.AddMOSFET("A1", a1, wl, v1, bl, Ground)
	c.AddMOSFET("L2", l2, v1, v2, vdd, vdd)
	c.AddMOSFET("D2", d2, v1, v2, Ground, Ground)
	c.AddMOSFET("A2", a2, wl, v2, blb, Ground)

	// Node capacitances (generous, to set the flip timescale).
	c.AddCapacitor(v1, Ground, 1e-16)
	c.AddCapacitor(v2, Ground, 1e-16)

	// Bias the initial state to V1 = 1: a weak pull-up on v1 through a big
	// resistor that is swamped once the cell regenerates.
	c.AddResistor(vdd, v1, 1e8)

	// Write pulse: BL dives low while WL is high.
	wlSrc.Wave = Pulse(0, V, 1e-10, 2e-11, 8e-10, 2e-11)
	blSrc.Wave = Pulse(V, 0, 5e-11, 2e-11, 9.5e-10, 2e-11)

	res, err := c.Transient(1.5e-9, 5e-12, nil)
	if err != nil {
		t.Fatalf("transient: %v", err)
	}
	v1Wave, _ := res.VoltageOf(c, "v1")
	v2Wave, _ := res.VoltageOf(c, "v2")

	if v1Wave[0] < 0.5*V {
		t.Fatalf("initial state wrong: v1(0)=%v", v1Wave[0])
	}
	finalV1 := v1Wave[len(v1Wave)-1]
	finalV2 := v2Wave[len(v2Wave)-1]
	if finalV1 > 0.2*V || finalV2 < 0.8*V {
		t.Fatalf("write did not flip the cell: v1=%v v2=%v", finalV1, finalV2)
	}
}

func TestTransientAdaptiveMatchesAnalytic(t *testing.T) {
	// The RC charging circuit again, but with adaptive stepping: the result
	// must match the analytic curve with far fewer accepted steps than the
	// fixed-step run needs.
	c := NewCircuit()
	in := c.Node("in")
	out := c.Node("out")
	src := c.AddVSource("VS", in, Ground, 0)
	c.AddResistor(in, out, 1e3)
	c.AddCapacitor(out, Ground, 1e-6)
	src.Wave = Pulse(0, 1, 0, 1e-9, 1, 1e-9)

	res, err := c.TransientAdaptive(3e-3, 2e-4, nil)
	if err != nil {
		t.Fatalf("adaptive transient: %v", err)
	}
	v, _ := res.VoltageOf(c, "out")
	const tau = 1e-3
	for k, tm := range res.Times {
		want := 1 - math.Exp(-tm/tau)
		if math.Abs(v[k]-want) > 0.02 {
			t.Fatalf("t=%v: v=%v want %v", tm, v[k], want)
		}
	}
	if len(res.Times) > 400 {
		t.Fatalf("adaptive run took %d steps; expected far fewer than fixed-step 600", len(res.Times))
	}
}

func TestTransientAdaptiveStepsShrinkAtEdge(t *testing.T) {
	// A sharp pulse in the middle of a quiet window: the accepted step
	// sequence must shrink near the edge and grow back afterwards.
	c := NewCircuit()
	in := c.Node("in")
	out := c.Node("out")
	src := c.AddVSource("VS", in, Ground, 0)
	c.AddResistor(in, out, 1e3)
	c.AddCapacitor(out, Ground, 1e-7) // tau = 0.1 ms
	src.Wave = Pulse(0, 1, 5e-3, 1e-6, 1, 1e-6)

	res, err := c.TransientAdaptive(8e-3, 1e-4, nil)
	if err != nil {
		t.Fatalf("adaptive transient: %v", err)
	}
	// Find the smallest accepted step after the edge vs the largest before.
	var maxBefore, minAfter float64 = 0, math.Inf(1)
	for k := 1; k < len(res.Times); k++ {
		h := res.Times[k] - res.Times[k-1]
		switch {
		case res.Times[k] < 4.9e-3:
			if h > maxBefore {
				maxBefore = h
			}
		case res.Times[k] > 5e-3 && res.Times[k] < 5.3e-3:
			if h < minAfter {
				minAfter = h
			}
		}
	}
	if !(minAfter < maxBefore/4) {
		t.Fatalf("no step adaptation: max-before %v, min-at-edge %v", maxBefore, minAfter)
	}
}

func TestTransientAdaptiveBadInputs(t *testing.T) {
	c := NewCircuit()
	c.AddResistor(c.Node("a"), Ground, 1)
	if _, err := c.TransientAdaptive(0, 1e-4, nil); err == nil {
		t.Fatal("expected error for tstop=0")
	}
}
