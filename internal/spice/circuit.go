// Package spice is a small transistor-level DC circuit simulator: a netlist
// of resistors, independent sources and MOSFETs solved by damped
// Newton–Raphson on the modified-nodal-analysis (MNA) equations, with gmin
// conditioning and source-stepping fallback.
//
// It is the "transistor-level simulation" substrate that the paper assumes
// (there, HSPICE). The hot estimator paths use the specialized monotone
// solver in internal/sram instead; this package provides the general solver
// that the specialized path is validated against, plus DC sweep support used
// to trace butterfly curves.
package spice

import (
	"fmt"

	"ecripse/internal/device"
)

// Ground is the node index of the reference node.
const Ground = 0

// Circuit is a netlist under construction. The zero value is not usable;
// call NewCircuit.
type Circuit struct {
	nodeNames []string
	nodeIndex map[string]int
	elements  []Element
	vsources  []*VSource
}

// NewCircuit returns an empty circuit containing only the ground node "0".
func NewCircuit() *Circuit {
	c := &Circuit{nodeIndex: make(map[string]int)}
	c.nodeNames = append(c.nodeNames, "0")
	c.nodeIndex["0"] = Ground
	return c
}

// Node returns the index of the named node, creating it on first use.
// The name "0" (or "gnd") is the ground node.
func (c *Circuit) Node(name string) int {
	if name == "gnd" || name == "GND" {
		name = "0"
	}
	if i, ok := c.nodeIndex[name]; ok {
		return i
	}
	i := len(c.nodeNames)
	c.nodeNames = append(c.nodeNames, name)
	c.nodeIndex[name] = i
	return i
}

// NodeName returns the name of node i.
func (c *Circuit) NodeName(i int) string { return c.nodeNames[i] }

// NumNodes returns the node count including ground.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// Element is a netlist element that adds its terminal currents into the KCL
// residual. f is indexed by node id; the convention is that f[n] accumulates
// current *leaving* node n into the element.
type Element interface {
	// AddCurrents accumulates element currents into f given node voltages v
	// (both indexed by node id, v[Ground] == 0).
	AddCurrents(v, f []float64)
}

// Resistor is a linear two-terminal resistor.
type Resistor struct {
	A, B int
	R    float64
}

// AddCurrents implements Element.
func (r *Resistor) AddCurrents(v, f []float64) {
	i := (v[r.A] - v[r.B]) / r.R
	f[r.A] += i
	f[r.B] -= i
}

// CurrentSource forces a constant current I from node A to node B.
type CurrentSource struct {
	A, B int
	I    float64
}

// AddCurrents implements Element.
func (s *CurrentSource) AddCurrents(v, f []float64) {
	f[s.A] += s.I
	f[s.B] -= s.I
}

// VSource is an independent voltage source V between nodes A (+) and B (−).
// Its branch current is an MNA unknown. If Wave is non-nil it overrides V
// during transient analysis (V is still used for DC operating points).
type VSource struct {
	Name   string
	A, B   int
	V      float64
	Wave   func(t float64) float64
	branch int // index into the branch-current unknowns
}

// valueAt returns the source voltage at time t (DC value when Wave is nil).
func (s *VSource) valueAt(t float64) float64 {
	if s.Wave != nil {
		return s.Wave(t)
	}
	return s.V
}

// Pulse builds a SPICE-style pulse waveform: v1 before delay, a linear rise
// to v2 over rise seconds, v2 held for width, a linear fall back over fall
// seconds, then v1 again (single-shot; no period).
func Pulse(v1, v2, delay, rise, width, fall float64) func(float64) float64 {
	return func(t float64) float64 {
		switch {
		case t < delay:
			return v1
		case t < delay+rise:
			return v1 + (v2-v1)*(t-delay)/rise
		case t < delay+rise+width:
			return v2
		case t < delay+rise+width+fall:
			return v2 + (v1-v2)*(t-delay-rise-width)/fall
		default:
			return v1
		}
	}
}

// Capacitor is a linear two-terminal capacitor; it contributes current only
// during transient analysis (open circuit at DC).
type Capacitor struct {
	A, B int
	C    float64
}

// AddCurrents implements Element; a capacitor is open at DC.
func (c *Capacitor) AddCurrents(v, f []float64) {}

// AddCurrents implements Element. The branch current itself is stamped by
// the solver (it is an unknown), so a VSource contributes nothing here.
func (s *VSource) AddCurrents(v, f []float64) {}

// VCCS is a voltage-controlled current source (SPICE "G" element): a
// current Gm·(V(CP)−V(CN)) flows from node A to node B.
type VCCS struct {
	A, B   int // current path
	CP, CN int // controlling nodes
	Gm     float64
}

// AddCurrents implements Element.
func (g *VCCS) AddCurrents(v, f []float64) {
	i := g.Gm * (v[g.CP] - v[g.CN])
	f[g.A] += i
	f[g.B] -= i
}

// MOSFET is a four-terminal transistor element wrapping a device model.
type MOSFET struct {
	Name       string
	Dev        *device.Device
	G, D, S, B int
}

// AddCurrents implements Element.
func (m *MOSFET) AddCurrents(v, f []float64) {
	id := m.Dev.Ids(v[m.G], v[m.D], v[m.S], v[m.B])
	f[m.D] += id
	f[m.S] -= id
}

// AddResistor appends a resistor between nodes a and b.
func (c *Circuit) AddResistor(a, b int, r float64) *Resistor {
	if r <= 0 {
		panic("spice: non-positive resistance")
	}
	e := &Resistor{A: a, B: b, R: r}
	c.elements = append(c.elements, e)
	return e
}

// AddCurrentSource appends a current source driving I from a to b.
func (c *Circuit) AddCurrentSource(a, b int, i float64) *CurrentSource {
	e := &CurrentSource{A: a, B: b, I: i}
	c.elements = append(c.elements, e)
	return e
}

// AddVSource appends a named voltage source (a positive, b negative).
func (c *Circuit) AddVSource(name string, a, b int, v float64) *VSource {
	e := &VSource{Name: name, A: a, B: b, V: v, branch: len(c.vsources)}
	c.elements = append(c.elements, e)
	c.vsources = append(c.vsources, e)
	return e
}

// AddCapacitor appends a capacitor between nodes a and b.
func (c *Circuit) AddCapacitor(a, b int, farads float64) *Capacitor {
	if farads <= 0 {
		panic("spice: non-positive capacitance")
	}
	e := &Capacitor{A: a, B: b, C: farads}
	c.elements = append(c.elements, e)
	return e
}

// AddVCCS appends a voltage-controlled current source: Gm·(V(cp)−V(cn))
// flowing from a to b.
func (c *Circuit) AddVCCS(a, b, cp, cn int, gm float64) *VCCS {
	e := &VCCS{A: a, B: b, CP: cp, CN: cn, Gm: gm}
	c.elements = append(c.elements, e)
	return e
}

// AddMOSFET appends a transistor with the given terminal nodes.
func (c *Circuit) AddMOSFET(name string, dev *device.Device, g, d, s, b int) *MOSFET {
	e := &MOSFET{Name: name, Dev: dev, G: g, D: d, S: s, B: b}
	c.elements = append(c.elements, e)
	return e
}

// FindVSource returns the named source or nil.
func (c *Circuit) FindVSource(name string) *VSource {
	for _, s := range c.vsources {
		if s.Name == name {
			return s
		}
	}
	return nil
}

func (c *Circuit) checkNode(i int) error {
	if i < 0 || i >= len(c.nodeNames) {
		return fmt.Errorf("spice: node index %d out of range", i)
	}
	return nil
}
