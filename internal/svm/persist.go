package svm

import (
	"encoding/json"
	"fmt"
	"io"

	"ecripse/internal/linalg"
)

// model is the JSON wire format of a trained classifier.
type model struct {
	Dim     int           `json:"dim"`
	Degree  int           `json:"degree"`
	Scale   float64       `json:"scale"`
	Lambda  float64       `json:"lambda"`
	Steps   int           `json:"steps"`
	Weights linalg.Vector `json:"weights"`
}

// Save writes the classifier (features shape, schedule position and
// weights) as JSON, so an expensively trained blockade can be reused across
// processes or archived with experiment results.
func (c *Classifier) Save(w io.Writer) error {
	m := model{
		Dim:     c.Features.Dim,
		Degree:  c.Features.Degree,
		Scale:   c.Features.Scale,
		Lambda:  c.Lambda,
		Steps:   c.t,
		Weights: c.w,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(m)
}

// Load reads a classifier saved by Save. Incremental training can continue
// from the restored step-size schedule position.
func Load(r io.Reader) (*Classifier, error) {
	var m model
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("svm: decoding model: %w", err)
	}
	if m.Dim <= 0 || m.Degree < 1 || m.Lambda <= 0 || m.Steps < 0 {
		return nil, fmt.Errorf("svm: invalid model shape dim=%d degree=%d lambda=%g steps=%d",
			m.Dim, m.Degree, m.Lambda, m.Steps)
	}
	pf := NewPolyFeatures(m.Dim, m.Degree, m.Scale)
	if len(m.Weights) != pf.NumFeatures() {
		return nil, fmt.Errorf("svm: weight vector has %d entries, want %d", len(m.Weights), pf.NumFeatures())
	}
	c := NewClassifier(pf, m.Lambda)
	copy(c.w, m.Weights)
	c.t = m.Steps
	return c, nil
}
