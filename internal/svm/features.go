// Package svm implements the paper's simulation blockade (Sections II-C,
// III-B): a linear soft-margin SVM trained on a degree-4 polynomial
// transform of the variability vector, with Pegasos-style stochastic
// subgradient training, incremental updates, and a margin-band query that
// tells the stage-2 estimator which samples are too close to the separating
// hyper-plane to trust.
package svm

import (
	"fmt"

	"ecripse/internal/linalg"
)

// PolyFeatures maps a D-dimensional input to all monomials of total degree
// <= Degree (the feature vector f of paper eq. (6); for [x1, x2] and degree
// 2 this is [1, x1, x2, x1², x1·x2, x2²]).
type PolyFeatures struct {
	Dim    int
	Degree int
	// Scale divides inputs before the transform so high powers stay
	// numerically tame (inputs here are normalized-sigma coordinates with
	// magnitudes up to ~6-8).
	Scale float64
	exps  [][]int // one exponent tuple per feature
	prog  program // compiled incremental-product evaluation plan
}

// NewPolyFeatures enumerates the monomial basis. scale <= 0 defaults to 4.
func NewPolyFeatures(dim, degree int, scale float64) *PolyFeatures {
	if dim <= 0 || degree < 1 {
		panic(fmt.Sprintf("svm: invalid feature shape dim=%d degree=%d", dim, degree))
	}
	if scale <= 0 {
		scale = 4
	}
	pf := &PolyFeatures{Dim: dim, Degree: degree, Scale: scale}
	exp := make([]int, dim)
	var rec func(pos, remaining int)
	rec = func(pos, remaining int) {
		if pos == dim {
			tup := make([]int, dim)
			copy(tup, exp)
			pf.exps = append(pf.exps, tup)
			return
		}
		for k := 0; k <= remaining; k++ {
			exp[pos] = k
			rec(pos+1, remaining-k)
		}
		exp[pos] = 0
	}
	rec(0, degree)
	pf.prog = pf.compile()
	return pf
}

// NumFeatures returns the basis size C(dim+degree, degree).
func (pf *PolyFeatures) NumFeatures() int { return len(pf.exps) }

// Transform computes the feature vector of x.
func (pf *PolyFeatures) Transform(x linalg.Vector) linalg.Vector {
	out := make(linalg.Vector, len(pf.exps))
	pf.TransformInto(x, out)
	return out
}

// TransformInto computes the feature vector of x into dst, which must have
// length NumFeatures. It performs no allocations beyond a small fixed-size
// power table, so hot paths (the blockade answers millions of queries per
// estimate) can reuse buffers. The evaluation runs the compiled incremental
// program — one multiply per feature — and is bit-identical to the naive
// per-tuple walk (see program for the argument).
func (pf *PolyFeatures) TransformInto(x linalg.Vector, dst linalg.Vector) {
	if len(x) != pf.Dim {
		panic(fmt.Sprintf("svm: input dim %d, want %d", len(x), pf.Dim))
	}
	if len(dst) != len(pf.exps) {
		panic(fmt.Sprintf("svm: destination has %d entries, want %d", len(dst), len(pf.exps)))
	}
	// Powers per dimension up to Degree, in a stack-friendly flat table.
	const maxTable = 64
	var table [maxTable]float64
	stride := pf.Degree + 1
	var pows []float64
	if pf.Dim*stride <= maxTable {
		pows = table[:pf.Dim*stride]
	} else {
		pows = make([]float64, pf.Dim*stride)
	}
	pf.fillPows(x, pows)
	pf.prog.features(pows, dst)
}
