package svm

import (
	"fmt"
	"math/rand"

	"ecripse/internal/linalg"
)

// Classifier is a linear SVM over polynomial features, trained by the
// Pegasos stochastic subgradient method (hinge loss, L2 regularization).
// Labels are booleans: true = failure (y = +1), false = pass (y = −1).
type Classifier struct {
	Features *PolyFeatures
	Lambda   float64 // regularization strength
	w        linalg.Vector
	t        int // cumulative SGD step count (drives the 1/(λt) step size)

	// scratch is the reusable feature buffer for Score/Predict/Update. A
	// Classifier is therefore NOT safe for concurrent use — matching the
	// estimator design, where one engine owns one classifier.
	scratch linalg.Vector
}

// NewClassifier builds an untrained classifier. lambda <= 0 defaults to 1e-4.
func NewClassifier(pf *PolyFeatures, lambda float64) *Classifier {
	if lambda <= 0 {
		lambda = 1e-4
	}
	return &Classifier{
		Features: pf,
		Lambda:   lambda,
		w:        make(linalg.Vector, pf.NumFeatures()),
	}
}

// Score returns the signed decision value w·f(x); positive means predicted
// failure. Magnitude grows with distance from the separating hyper-plane.
func (c *Classifier) Score(x linalg.Vector) float64 {
	if c.scratch == nil {
		c.scratch = make(linalg.Vector, c.Features.NumFeatures())
	}
	c.Features.TransformInto(x, c.scratch)
	return c.scoreFeatures(c.scratch)
}

func (c *Classifier) scoreFeatures(f linalg.Vector) float64 { return c.w.Dot(f) }

// Predict reports the predicted failure label of x.
func (c *Classifier) Predict(x linalg.Vector) bool { return c.Score(x) > 0 }

// Uncertain reports whether x lies within the margin band (|score| < band):
// the stage-2 flow simulates such samples instead of trusting the blockade.
func (c *Classifier) Uncertain(x linalg.Vector, band float64) bool {
	s := c.Score(x)
	return s > -band && s < band
}

// Trained reports whether any training has occurred.
func (c *Classifier) Trained() bool { return c.t > 0 }

// step performs one Pegasos update with feature vector f and label y∈{±1}.
func (c *Classifier) step(f linalg.Vector, y float64) {
	c.t++
	eta := 1 / (c.Lambda * float64(c.t))
	margin := y * c.scoreFeatures(f)
	decay := 1 - eta*c.Lambda
	for i := range c.w {
		c.w[i] *= decay
	}
	if margin < 1 {
		for i := range c.w {
			c.w[i] += eta * y * f[i]
		}
	}
}

// Train runs epochs passes of shuffled SGD over the labelled set.
func (c *Classifier) Train(rng *rand.Rand, xs []linalg.Vector, fails []bool, epochs int) {
	if len(xs) != len(fails) {
		panic("svm: labels do not match inputs")
	}
	if len(xs) == 0 {
		return
	}
	if epochs <= 0 {
		epochs = 20
	}
	feats := make([]linalg.Vector, len(xs))
	for i, x := range xs {
		feats[i] = c.Features.Transform(x)
	}
	for e := 0; e < epochs; e++ {
		for _, i := range rng.Perm(len(feats)) {
			y := -1.0
			if fails[i] {
				y = 1
			}
			c.step(feats[i], y)
		}
	}
}

// Update performs a single incremental step with a freshly simulated label,
// continuing the existing step-size schedule (the stage-2 "incrementally
// train the classifier" path). The feature transform reuses the classifier's
// scratch buffer, so the hot retraining path allocates nothing.
func (c *Classifier) Update(x linalg.Vector, failed bool) {
	y := -1.0
	if failed {
		y = 1
	}
	if c.scratch == nil {
		c.scratch = make(linalg.Vector, c.Features.NumFeatures())
	}
	c.Features.TransformInto(x, c.scratch)
	c.step(c.scratch, y)
}

// Scorer is a read-only scoring view of a Classifier with its own feature
// scratch buffer. Any number of Scorers may evaluate concurrently as long as
// no Train/Update runs at the same time — exactly the batch-barrier contract
// of the parallel estimator, which freezes the weights while workers score
// and applies updates single-threaded at the barrier.
type Scorer struct {
	c       *Classifier
	scratch linalg.Vector
	pows    []float64
}

// NewScorer builds a scoring view over the classifier.
func (c *Classifier) NewScorer() *Scorer {
	return &Scorer{
		c:       c,
		scratch: make(linalg.Vector, c.Features.NumFeatures()),
		pows:    make([]float64, c.Features.Dim*(c.Features.Degree+1)),
	}
}

// Score returns the signed decision value w·f(x), bit-identical to
// Classifier.Score against the same (frozen) weights: the fused
// program pass accumulates the dot product in feature-index order.
func (s *Scorer) Score(x linalg.Vector) float64 {
	pf := s.c.Features
	if len(x) != pf.Dim {
		panic(fmt.Sprintf("svm: input dim %d, want %d", len(x), pf.Dim))
	}
	pf.fillPows(x, s.pows)
	return pf.prog.score(s.c.w, s.pows, s.scratch)
}

// Predict reports the predicted failure label of x.
func (s *Scorer) Predict(x linalg.Vector) bool { return s.Score(x) > 0 }

// Accuracy returns the fraction of correct predictions on a labelled set.
func (c *Classifier) Accuracy(xs []linalg.Vector, fails []bool) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i, x := range xs {
		if c.Predict(x) == fails[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}
