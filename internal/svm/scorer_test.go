package svm

import (
	"math/rand"
	"sync"
	"testing"

	"ecripse/internal/linalg"
	"ecripse/internal/randx"
)

// trainedClassifier builds a small classifier separating ‖x‖ > 2.
func trainedClassifier(t *testing.T) *Classifier {
	t.Helper()
	rng := rand.New(rand.NewSource(4))
	c := NewClassifier(NewPolyFeatures(3, 2, 0), 1e-3)
	var xs []linalg.Vector
	var ys []bool
	for i := 0; i < 400; i++ {
		x := randx.NormalVector(rng, 3).Scale(1.5)
		xs = append(xs, x)
		ys = append(ys, x.Norm() > 2)
	}
	c.Train(rng, xs, ys, 20)
	return c
}

// TestScorerMatchesClassifier: a Scorer must agree exactly with the owning
// classifier's Score/Predict.
func TestScorerMatchesClassifier(t *testing.T) {
	c := trainedClassifier(t)
	s := c.NewScorer()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		x := randx.NormalVector(rng, 3).Scale(2)
		if got, want := s.Score(x), c.Score(x); got != want {
			t.Fatalf("Score mismatch at %v: %v vs %v", x, got, want)
		}
		if s.Predict(x) != c.Predict(x) {
			t.Fatalf("Predict mismatch at %v", x)
		}
	}
}

// TestScorerConcurrent hammers independent Scorers from many goroutines
// while no updates run — the frozen-weights phase of the batch-barrier
// contract. Run under -race this guards the per-scorer scratch isolation
// (the shared Classifier scratch would trip the detector immediately).
func TestScorerConcurrent(t *testing.T) {
	c := trainedClassifier(t)
	points := make([]linalg.Vector, 256)
	want := make([]float64, len(points))
	rng := rand.New(rand.NewSource(6))
	for i := range points {
		points[i] = randx.NormalVector(rng, 3).Scale(2)
		want[i] = c.Score(points[i])
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := c.NewScorer()
			for rep := 0; rep < 50; rep++ {
				for i, x := range points {
					if got := s.Score(x); got != want[i] {
						t.Errorf("concurrent Score(%d) = %v, want %v", i, got, want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestUpdateNoAlloc: the incremental-retrain path must not allocate (it sits
// inside the stage-2 barrier on the hot path).
func TestUpdateNoAlloc(t *testing.T) {
	c := trainedClassifier(t)
	x := linalg.Vector{0.5, -1, 2}
	allocs := testing.AllocsPerRun(100, func() { c.Update(x, true) })
	if allocs > 0 {
		t.Fatalf("Update allocates %.1f objects per call, want 0", allocs)
	}
}
