package svm

import (
	"fmt"

	"ecripse/internal/linalg"
)

// program is the compiled evaluation plan of a monomial basis. The naive
// transform walks every exponent tuple and multiplies one power-table
// factor per nonzero dimension — ~Dim branchy operations per feature. The
// program exploits the enumeration's structure instead: every monomial
// extends an earlier ("parent") monomial — the same tuple with its last
// nonzero dimension zeroed — by exactly one power-table factor, so the
// whole feature vector is one sequential pass of a single multiply each.
//
// The incremental product reproduces the tuple walk bit-for-bit: the walk
// computes each feature as a left-fold v = ((t_{d1}·t_{d2})·…)·t_{dk} over
// its nonzero dimensions in increasing-dimension order, and the parent's
// value is exactly the fold over the first k−1 factors. The basis
// enumeration emits parents before children (lexicographic order, smaller
// last exponent first), so one forward pass suffices.
//
// A program is weight-independent — pure basis structure — so it is built
// once in NewPolyFeatures and shared by every classifier, scorer and
// compiled scorer over the basis, no matter how the weights evolve.
type program struct {
	parent []int32 // feature index this monomial extends (entry 0 unused)
	pow    []int32 // flat power-table index (dim*stride + exponent) of the extension factor
}

// compile builds the program for the enumerated basis.
func (pf *PolyFeatures) compile() program {
	stride := pf.Degree + 1
	index := make(map[string]int32, len(pf.exps))
	keyBuf := make([]byte, pf.Dim)
	key := func(tup []int) string {
		for d, e := range tup {
			keyBuf[d] = byte(e)
		}
		return string(keyBuf)
	}
	for i, tup := range pf.exps {
		index[key(tup)] = int32(i)
	}
	p := program{
		parent: make([]int32, len(pf.exps)),
		pow:    make([]int32, len(pf.exps)),
	}
	parentTup := make([]int, pf.Dim)
	for i, tup := range pf.exps {
		last := -1
		for d, e := range tup {
			if e > 0 {
				last = d
			}
		}
		if last < 0 {
			continue // the constant feature; evaluated as the literal 1
		}
		copy(parentTup, tup)
		parentTup[last] = 0
		j, ok := index[key(parentTup)]
		if !ok || int(j) >= i {
			panic(fmt.Sprintf("svm: basis enumeration lost parent of tuple %v", tup))
		}
		p.parent[i] = j
		p.pow[i] = int32(last*stride + tup[last])
	}
	return p
}

// fillPows fills the per-dimension power table (stride Degree+1) for x,
// identically to the naive transform's table.
func (pf *PolyFeatures) fillPows(x linalg.Vector, pows []float64) {
	stride := pf.Degree + 1
	for d := 0; d < pf.Dim; d++ {
		pows[d*stride] = 1
		xv := x[d] / pf.Scale
		for k := 1; k <= pf.Degree; k++ {
			pows[d*stride+k] = pows[d*stride+k-1] * xv
		}
	}
}

// features evaluates the program into f (length NumFeatures) from a filled
// power table.
func (p *program) features(pows, f []float64) {
	f[0] = 1
	for i := 1; i < len(f); i++ {
		f[i] = f[p.parent[i]] * pows[p.pow[i]]
	}
}

// score evaluates the program and accumulates w·f in one pass. The
// accumulation visits features in index order, so the result is
// bit-identical to linalg.Vector.Dot over the separately-materialized
// feature vector.
func (p *program) score(w linalg.Vector, pows, f []float64) float64 {
	f[0] = 1
	s := 0.0
	s += w[0] // w[0]·1
	for i := 1; i < len(f); i++ {
		v := f[p.parent[i]] * pows[p.pow[i]]
		f[i] = v
		s += w[i] * v
	}
	return s
}

// CompiledScorer is a frozen-weight scoring kernel: a snapshot of the
// classifier's weights bound to the shared basis program, with its own
// scratch. Scores are bit-identical to Classifier.Score at the snapshot
// state. Not safe for concurrent use (per-instance scratch); compile one
// per goroutine, or one per batch under a frozen-weights barrier.
type CompiledScorer struct {
	pf   *PolyFeatures
	w    linalg.Vector
	pows []float64
	f    []float64

	// SoA batch scratch (scoreBlock samples wide), built on first ScoreBatch.
	powsB []float64
	fB    []float64
}

// Compile snapshots the classifier's current weights into a scoring kernel.
// Later Train/Update calls do not affect the compiled scorer.
func (c *Classifier) Compile() *CompiledScorer {
	pf := c.Features
	stride := pf.Degree + 1
	return &CompiledScorer{
		pf:   pf,
		w:    append(linalg.Vector(nil), c.w...),
		pows: make([]float64, pf.Dim*stride),
		f:    make([]float64, pf.NumFeatures()),
	}
}

// Score returns the signed decision value w·f(x), bit-identical to
// Classifier.Score at the compiled snapshot.
func (s *CompiledScorer) Score(x linalg.Vector) float64 {
	if len(x) != s.pf.Dim {
		panic(fmt.Sprintf("svm: input dim %d, want %d", len(x), s.pf.Dim))
	}
	s.pf.fillPows(x, s.pows)
	return s.pf.prog.score(s.w, s.pows, s.f)
}

// scoreBlock is the SoA block width of ScoreBatch: wide enough for the
// compiler to vectorize the per-feature inner loop, narrow enough that the
// feature wavefront (NumFeatures × scoreBlock floats) stays cache-resident.
const scoreBlock = 16

// ScoreBatch scores a batch of inputs into out (len(out) >= len(xs)),
// each bit-identical to Score. The batch is processed in SoA blocks:
// powers and features are laid out sample-minor, so the per-feature
// dependency chain (parent lookup) runs once per feature while the
// per-sample multiplies within a block are independent and vectorize.
// This is the scoring path for the estimators' fixed-size batch barriers.
func (s *CompiledScorer) ScoreBatch(xs []linalg.Vector, out []float64) {
	pf := s.pf
	stride := pf.Degree + 1
	nf := pf.NumFeatures()
	if s.fB == nil {
		s.powsB = make([]float64, pf.Dim*stride*scoreBlock)
		s.fB = make([]float64, nf*scoreBlock)
	}
	for base := 0; base < len(xs); base += scoreBlock {
		nb := len(xs) - base
		if nb > scoreBlock {
			nb = scoreBlock
		}
		block := xs[base : base+nb]
		// Power tables, sample-minor: powsB[k*scoreBlock+b] = pows_b[k].
		for b, x := range block {
			if len(x) != pf.Dim {
				panic(fmt.Sprintf("svm: input dim %d, want %d", len(x), pf.Dim))
			}
			for d := 0; d < pf.Dim; d++ {
				s.powsB[d*stride*scoreBlock+b] = 1
				xv := x[d] / pf.Scale
				for k := 1; k <= pf.Degree; k++ {
					s.powsB[(d*stride+k)*scoreBlock+b] = s.powsB[(d*stride+k-1)*scoreBlock+b] * xv
				}
			}
			out[base+b] = s.w[0] // w[0]·1, the constant feature
		}
		prog := &pf.prog
		fB := s.fB
		for b := 0; b < nb; b++ {
			fB[b] = 1
		}
		for i := 1; i < nf; i++ {
			pRow := fB[int(prog.parent[i])*scoreBlock:]
			powRow := s.powsB[int(prog.pow[i])*scoreBlock:]
			fRow := fB[i*scoreBlock:]
			wi := s.w[i]
			for b := 0; b < nb; b++ {
				v := pRow[b] * powRow[b]
				fRow[b] = v
				out[base+b] += wi * v
			}
		}
	}
}
