package svm

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ecripse/internal/linalg"
)

func TestPolyFeatureCount(t *testing.T) {
	// C(dim+degree, degree)
	cases := []struct{ dim, deg, want int }{
		{2, 2, 6},
		{2, 4, 15},
		{6, 4, 210},
		{1, 3, 4},
	}
	for _, tc := range cases {
		pf := NewPolyFeatures(tc.dim, tc.deg, 1)
		if got := pf.NumFeatures(); got != tc.want {
			t.Fatalf("dim=%d deg=%d: features = %d want %d", tc.dim, tc.deg, got, tc.want)
		}
	}
}

func TestPolyTransformKnownValues(t *testing.T) {
	pf := NewPolyFeatures(2, 2, 1)
	f := pf.Transform(linalg.Vector{2, 3})
	// Features are the monomials {1, x2, x2², x1, x1x2, x1²} in some fixed
	// enumeration order; verify as a multiset.
	want := map[float64]int{1: 1, 3: 1, 9: 1, 2: 1, 6: 1, 4: 1}
	got := map[float64]int{}
	for _, v := range f {
		got[v]++
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("feature multiset mismatch: got %v", f)
		}
	}
}

func TestPolyTransformScale(t *testing.T) {
	pf := NewPolyFeatures(1, 2, 2)
	f := pf.Transform(linalg.Vector{4}) // scaled to 2 -> {1, 2, 4}
	sum := 0.0
	for _, v := range f {
		sum += v
	}
	if math.Abs(sum-7) > 1e-12 {
		t.Fatalf("scaled features = %v", f)
	}
}

func TestPolyTransformPanics(t *testing.T) {
	pf := NewPolyFeatures(2, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pf.Transform(linalg.Vector{1})
}

func makeLinearSet(rng *rand.Rand, n int) ([]linalg.Vector, []bool) {
	xs := make([]linalg.Vector, n)
	ys := make([]bool, n)
	for i := range xs {
		x := linalg.Vector{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		xs[i] = x
		ys[i] = x[0]+0.5*x[1] > 1
	}
	return xs, ys
}

func TestTrainLinearlySeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs, ys := makeLinearSet(rng, 400)
	c := NewClassifier(NewPolyFeatures(2, 1, 1), 1e-4)
	c.Train(rng, xs, ys, 40)
	if acc := c.Accuracy(xs, ys); acc < 0.97 {
		t.Fatalf("train accuracy = %v", acc)
	}
	tx, ty := makeLinearSet(rng, 400)
	if acc := c.Accuracy(tx, ty); acc < 0.95 {
		t.Fatalf("test accuracy = %v", acc)
	}
}

func TestTrainCircularBoundaryNeedsPoly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gen := func(n int) ([]linalg.Vector, []bool) {
		xs := make([]linalg.Vector, n)
		ys := make([]bool, n)
		for i := range xs {
			x := linalg.Vector{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
			xs[i] = x
			ys[i] = x.Norm() > 3 // radial failure region like the SRAM boundary
		}
		return xs, ys
	}
	xs, ys := gen(600)

	lin := NewClassifier(NewPolyFeatures(2, 1, 3), 1e-4)
	lin.Train(rng, xs, ys, 40)
	poly := NewClassifier(NewPolyFeatures(2, 4, 3), 1e-4)
	poly.Train(rng, xs, ys, 40)

	tx, ty := gen(600)
	accLin := lin.Accuracy(tx, ty)
	accPoly := poly.Accuracy(tx, ty)
	if accPoly < 0.9 {
		t.Fatalf("poly accuracy = %v", accPoly)
	}
	if accPoly <= accLin {
		t.Fatalf("poly (%v) must beat linear (%v) on circular boundary", accPoly, accLin)
	}
}

func TestIncrementalUpdateImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs, ys := makeLinearSet(rng, 60)
	c := NewClassifier(NewPolyFeatures(2, 1, 1), 1e-3)
	c.Train(rng, xs, ys, 5)
	tx, ty := makeLinearSet(rng, 500)
	before := c.Accuracy(tx, ty)
	// Stream additional labelled samples through Update.
	ux, uy := makeLinearSet(rng, 2000)
	for i := range ux {
		c.Update(ux[i], uy[i])
	}
	after := c.Accuracy(tx, ty)
	if after < before-0.02 {
		t.Fatalf("incremental updates degraded accuracy: %v -> %v", before, after)
	}
	if after < 0.93 {
		t.Fatalf("accuracy after updates = %v", after)
	}
}

func TestUncertainBand(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs, ys := makeLinearSet(rng, 500)
	c := NewClassifier(NewPolyFeatures(2, 1, 1), 1e-4)
	c.Train(rng, xs, ys, 40)

	// Points exactly on the true boundary should mostly be uncertain;
	// points far away should not.
	onBoundary := linalg.Vector{1, 0} // x0+0.5x1 = 1
	farFail := linalg.Vector{10, 10}
	farPass := linalg.Vector{-10, -10}
	s := math.Abs(c.Score(onBoundary))
	if !c.Uncertain(onBoundary, s+1e-9) {
		t.Fatal("boundary point not uncertain within its own band")
	}
	if c.Uncertain(farFail, s) || c.Uncertain(farPass, s) {
		t.Fatalf("far points flagged uncertain (scores %v, %v, band %v)",
			c.Score(farFail), c.Score(farPass), s)
	}
	if !c.Predict(farFail) || c.Predict(farPass) {
		t.Fatal("far points misclassified")
	}
}

func TestTrainedFlagAndEmptyTrain(t *testing.T) {
	c := NewClassifier(NewPolyFeatures(2, 1, 1), 0)
	if c.Trained() {
		t.Fatal("untrained classifier reports trained")
	}
	c.Train(rand.New(rand.NewSource(5)), nil, nil, 10)
	if c.Trained() {
		t.Fatal("empty training set must not mark trained")
	}
	c.Update(linalg.Vector{1, 1}, true)
	if !c.Trained() {
		t.Fatal("Update must mark trained")
	}
}

func TestTrainPanicsOnMismatch(t *testing.T) {
	c := NewClassifier(NewPolyFeatures(2, 1, 1), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Train(rand.New(rand.NewSource(6)), []linalg.Vector{{1, 1}}, nil, 1)
}

func TestAccuracyEmpty(t *testing.T) {
	c := NewClassifier(NewPolyFeatures(2, 1, 1), 0)
	if c.Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy not 0")
	}
}

// Property: scores are finite for bounded inputs after training.
func TestPropertyScoresFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs, ys := makeLinearSet(rng, 200)
	c := NewClassifier(NewPolyFeatures(2, 4, 4), 1e-4)
	c.Train(rng, xs, ys, 10)
	f := func(a, b int16) bool {
		x := linalg.Vector{float64(a) / 1000, float64(b) / 1000}
		s := c.Score(x)
		return !math.IsNaN(s) && !math.IsInf(s, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs, ys := makeLinearSet(rng, 300)
	c := NewClassifier(NewPolyFeatures(2, 3, 2), 1e-4)
	c.Train(rng, xs, ys, 20)

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	// Identical scores everywhere we look.
	for i := 0; i < 50; i++ {
		x := linalg.Vector{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		if math.Abs(c.Score(x)-back.Score(x)) > 1e-12 {
			t.Fatalf("scores differ at %v", x)
		}
	}
	if !back.Trained() {
		t.Fatal("restored model reports untrained")
	}
	// Incremental training must continue smoothly (same step schedule).
	ux, uy := makeLinearSet(rng, 200)
	for i := range ux {
		back.Update(ux[i], uy[i])
	}
	tx, ty := makeLinearSet(rng, 400)
	if acc := back.Accuracy(tx, ty); acc < 0.93 {
		t.Fatalf("post-restore accuracy = %v", acc)
	}
}

func TestLoadRejectsCorruptModels(t *testing.T) {
	cases := []string{
		`not json`,
		`{"dim":0,"degree":2,"scale":1,"lambda":1e-4,"steps":1,"weights":[]}`,
		`{"dim":2,"degree":2,"scale":1,"lambda":1e-4,"steps":1,"weights":[1,2]}`, // wrong weight count
		`{"dim":2,"degree":2,"scale":1,"lambda":0,"steps":1,"weights":[0,0,0,0,0,0]}`,
	}
	for _, raw := range cases {
		if _, err := Load(strings.NewReader(raw)); err == nil {
			t.Fatalf("Load accepted %q", raw)
		}
	}
}
