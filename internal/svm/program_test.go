package svm

import (
	"math/rand"
	"testing"

	"ecripse/internal/linalg"
)

// naiveTransform is the original per-tuple walk, kept as the reference the
// compiled program must reproduce bit-for-bit.
func naiveTransform(pf *PolyFeatures, x linalg.Vector, dst linalg.Vector) {
	stride := pf.Degree + 1
	pows := make([]float64, pf.Dim*stride)
	for d := 0; d < pf.Dim; d++ {
		pows[d*stride] = 1
		xv := x[d] / pf.Scale
		for k := 1; k <= pf.Degree; k++ {
			pows[d*stride+k] = pows[d*stride+k-1] * xv
		}
	}
	for i, tup := range pf.exps {
		v := 1.0
		for d, e := range tup {
			if e > 0 {
				v *= pows[d*stride+e]
			}
		}
		dst[i] = v
	}
}

// TestProgramMatchesNaiveTransform pins the bit-for-bit equivalence of the
// compiled incremental-product transform and the tuple walk, across shapes.
func TestProgramMatchesNaiveTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shapes := []struct{ dim, degree int }{
		{1, 1}, {1, 4}, {2, 2}, {3, 5}, {6, 4}, {8, 3},
	}
	for _, sh := range shapes {
		pf := NewPolyFeatures(sh.dim, sh.degree, 0)
		want := make(linalg.Vector, pf.NumFeatures())
		got := make(linalg.Vector, pf.NumFeatures())
		for trial := 0; trial < 200; trial++ {
			x := make(linalg.Vector, sh.dim)
			for d := range x {
				x[d] = rng.NormFloat64() * 5
			}
			naiveTransform(pf, x, want)
			pf.TransformInto(x, got)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("dim=%d deg=%d feature %d: naive %g, program %g",
						sh.dim, sh.degree, i, want[i], got[i])
				}
			}
		}
	}
}

// TestCompiledScorerMatchesClassifier pins Score/ScoreBatch/Scorer against
// Classifier.Score: all four paths must produce the identical float64, and
// the compiled snapshot must stay frozen across later updates.
func TestCompiledScorerMatchesClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pf := NewPolyFeatures(6, 4, 0)
	c := NewClassifier(pf, 1e-4)
	// Train on a signed-distance toy problem so the weights are dense.
	xs := make([]linalg.Vector, 400)
	ys := make([]bool, 400)
	for i := range xs {
		x := make(linalg.Vector, 6)
		for d := range x {
			x[d] = rng.NormFloat64() * 4
		}
		xs[i] = x
		ys[i] = x.Norm() > 4
	}
	c.Train(rng, xs, ys, 5)

	compiled := c.Compile()
	scorer := c.NewScorer()
	probe := make([]linalg.Vector, 100)
	for i := range probe {
		x := make(linalg.Vector, 6)
		for d := range x {
			x[d] = rng.NormFloat64() * 4
		}
		probe[i] = x
	}
	batch := make([]float64, len(probe))
	compiled.ScoreBatch(probe, batch)
	for i, x := range probe {
		want := c.Score(x)
		if got := compiled.Score(x); got != want {
			t.Fatalf("compiled.Score(%d) = %g, classifier %g", i, got, want)
		}
		if got := scorer.Score(x); got != want {
			t.Fatalf("scorer.Score(%d) = %g, classifier %g", i, got, want)
		}
		if batch[i] != want {
			t.Fatalf("ScoreBatch[%d] = %g, classifier %g", i, batch[i], want)
		}
	}

	// The snapshot is frozen: updating the classifier must not move it.
	before := compiled.Score(probe[0])
	c.Update(probe[0], true)
	if got := compiled.Score(probe[0]); got != before {
		t.Fatalf("compiled scorer drifted after Update: %g -> %g", before, got)
	}
	if c.Score(probe[0]) == before {
		t.Fatal("classifier did not move after Update (test is vacuous)")
	}
}

func BenchmarkTransformInto(b *testing.B) {
	pf := NewPolyFeatures(6, 4, 0)
	x := linalg.Vector{0.3, -1.2, 2.4, 0.1, -0.7, 1.9}
	dst := make(linalg.Vector, pf.NumFeatures())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pf.TransformInto(x, dst)
	}
}
