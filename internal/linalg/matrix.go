package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with d on its diagonal.
func Diag(d Vector) *Matrix {
	m := NewMatrix(len(d), len(d))
	for i, x := range d {
		m.Set(i, i, x)
	}
	return m
}

// At returns the (i, j) element.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the (i, j) element.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m in a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns m*b in a new matrix. It panics on shape mismatch.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: matmul shape mismatch (%dx%d)*(%dx%d)", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns m*v in a new vector. It panics on shape mismatch.
func (m *Matrix) MulVec(v Vector) Vector {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: matvec shape mismatch (%dx%d)*%d", m.Rows, m.Cols, len(v)))
	}
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// Cholesky computes the lower-triangular factor L with m = L*Lᵀ. The input
// must be symmetric positive definite; otherwise an error is returned.
func (m *Matrix) Cholesky() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		sum := m.At(j, j)
		for k := 0; k < j; k++ {
			sum -= l.At(j, k) * l.At(j, k)
		}
		if sum <= 0 {
			return nil, fmt.Errorf("linalg: matrix not positive definite (pivot %d: %g)", j, sum)
		}
		ljj := math.Sqrt(sum)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := m.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return l, nil
}

// SolveLower solves L*x = b for lower-triangular L by forward substitution.
func (m *Matrix) SolveLower(b Vector) Vector {
	n := m.Rows
	checkLen(n, len(b))
	x := make(Vector, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= m.At(i, j) * x[j]
		}
		d := m.At(i, i)
		if d == 0 {
			panic("linalg: singular triangular solve")
		}
		x[i] = s / d
	}
	return x
}

// SolveUpper solves U*x = b for upper-triangular U by back substitution.
func (m *Matrix) SolveUpper(b Vector) Vector {
	n := m.Rows
	checkLen(n, len(b))
	x := make(Vector, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		d := m.At(i, i)
		if d == 0 {
			panic("linalg: singular triangular solve")
		}
		x[i] = s / d
	}
	return x
}

// SolveSPD solves m*x = b for symmetric positive-definite m via Cholesky.
func (m *Matrix) SolveSPD(b Vector) (Vector, error) {
	l, err := m.Cholesky()
	if err != nil {
		return nil, err
	}
	y := l.SolveLower(b)
	return l.T().SolveUpper(y), nil
}

// LUSolve solves m*x = b for a general square m using Gaussian elimination
// with partial pivoting. m and b are left unmodified.
func (m *Matrix) LUSolve(b Vector) (Vector, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: LUSolve of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	checkLen(n, len(b))
	a := m.Clone()
	x := b.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		p, best := col, math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				p, best = r, v
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("linalg: singular matrix (column %d)", col)
		}
		if p != col {
			for j := 0; j < n; j++ {
				a.Data[col*n+j], a.Data[p*n+j] = a.Data[p*n+j], a.Data[col*n+j]
			}
			x[col], x[p] = x[p], x[col]
		}
		piv := a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) / piv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * x[j]
		}
		x[i] = s / a.At(i, i)
	}
	return x, nil
}
