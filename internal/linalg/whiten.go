package linalg

import "fmt"

// Whitener maps samples of a correlated Gaussian N(mu, Sigma) to the
// standard normal N(0, I) and back. The paper (Section II-A) assumes the
// variability space has been whitened; this type is how a user with a
// correlated process-variation covariance gets there.
type Whitener struct {
	mean Vector
	l    *Matrix // lower Cholesky factor of Sigma
}

// NewWhitener builds a Whitener for N(mean, sigma). sigma must be symmetric
// positive definite.
func NewWhitener(mean Vector, sigma *Matrix) (*Whitener, error) {
	if sigma.Rows != len(mean) || sigma.Cols != len(mean) {
		return nil, fmt.Errorf("linalg: covariance %dx%d does not match mean dimension %d", sigma.Rows, sigma.Cols, len(mean))
	}
	l, err := sigma.Cholesky()
	if err != nil {
		return nil, fmt.Errorf("linalg: whitening: %w", err)
	}
	return &Whitener{mean: mean.Clone(), l: l}, nil
}

// Dim returns the dimensionality of the space.
func (w *Whitener) Dim() int { return len(w.mean) }

// Whiten maps a physical-space sample x to the standard-normal space:
// z = L⁻¹ (x − mean).
func (w *Whitener) Whiten(x Vector) Vector {
	return w.l.SolveLower(x.Sub(w.mean))
}

// Unwhiten maps a standard-normal sample z back to the physical space:
// x = mean + L z.
func (w *Whitener) Unwhiten(z Vector) Vector {
	return w.l.MulVec(z).Add(w.mean)
}
