// Package linalg provides the small dense linear-algebra kernel used by the
// rest of the library: vectors, column-major-free dense matrices, Cholesky
// factorization and whitening transforms.
//
// The estimators in this repository operate in a low-dimensional variability
// space (typically D = 6, one threshold-voltage shift per transistor of a 6T
// SRAM cell), so the implementation favours clarity and zero external
// dependencies over asymptotic cleverness.
package linalg

import (
	"fmt"
	"math"
)

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Add returns v + w in a new vector. It panics when lengths differ.
func (v Vector) Add(w Vector) Vector {
	checkLen(len(v), len(w))
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w in a new vector. It panics when lengths differ.
func (v Vector) Sub(w Vector) Vector {
	checkLen(len(v), len(w))
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns a*v in a new vector.
func (v Vector) Scale(a float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = a * v[i]
	}
	return out
}

// AddInPlace accumulates w into v.
func (v Vector) AddInPlace(w Vector) {
	checkLen(len(v), len(w))
	for i := range v {
		v[i] += w[i]
	}
}

// Dot returns the inner product of v and w. It panics when lengths differ.
func (v Vector) Dot(w Vector) float64 {
	checkLen(len(v), len(w))
	s := 0.0
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean norm of v.
func (v Vector) Norm2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vector) Dist(w Vector) float64 {
	checkLen(len(v), len(w))
	s := 0.0
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Normalize returns v scaled to unit norm. A zero vector is returned
// unchanged (as a copy).
func (v Vector) Normalize() Vector {
	n := v.Norm()
	if n == 0 {
		return v.Clone()
	}
	return v.Scale(1 / n)
}

// MaxAbs returns the largest absolute entry of v, or 0 for an empty vector.
func (v Vector) MaxAbs() float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Equal reports whether v and w agree to within tol in every component.
func (v Vector) Equal(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

func checkLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("linalg: dimension mismatch %d vs %d", a, b))
	}
}
