package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorAddSubScale(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Add(w); !got.Equal(Vector{5, 7, 9}, 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := w.Sub(v); !got.Equal(Vector{3, 3, 3}, 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := v.Scale(2); !got.Equal(Vector{2, 4, 6}, 0) {
		t.Fatalf("Scale = %v", got)
	}
}

func TestVectorDotNorm(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Dot(v); got != 25 {
		t.Fatalf("Dot = %v", got)
	}
	if got := v.Norm(); got != 5 {
		t.Fatalf("Norm = %v", got)
	}
	if got := v.Norm2(); got != 25 {
		t.Fatalf("Norm2 = %v", got)
	}
	if got := v.Dist(Vector{0, 0}); got != 5 {
		t.Fatalf("Dist = %v", got)
	}
}

func TestVectorNormalize(t *testing.T) {
	v := Vector{0, 0, 7}
	u := v.Normalize()
	if !u.Equal(Vector{0, 0, 1}, 1e-15) {
		t.Fatalf("Normalize = %v", u)
	}
	z := Vector{0, 0}
	if got := z.Normalize(); !got.Equal(z, 0) {
		t.Fatalf("Normalize(0) = %v", got)
	}
}

func TestVectorMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vector{1}.Add(Vector{1, 2})
}

func TestVectorMaxAbs(t *testing.T) {
	if got := (Vector{-3, 2, 1}).MaxAbs(); got != 3 {
		t.Fatalf("MaxAbs = %v", got)
	}
	if got := (Vector{}).MaxAbs(); got != 0 {
		t.Fatalf("MaxAbs(empty) = %v", got)
	}
}

func TestMatrixMulIdentity(t *testing.T) {
	m := NewMatrix(2, 3)
	for i := 0; i < 6; i++ {
		m.Data[i] = float64(i + 1)
	}
	got := Identity(2).Mul(m)
	for i := range m.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatalf("I*m mismatch at %d: %v vs %v", i, got.Data[i], m.Data[i])
		}
	}
}

func TestMatrixTranspose(t *testing.T) {
	m := NewMatrix(2, 3)
	for i := 0; i < 6; i++ {
		m.Data[i] = float64(i)
	}
	tt := m.T()
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	got := m.MulVec(Vector{1, 1})
	if !got.Equal(Vector{3, 7}, 0) {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	// Sigma = A*Aᵀ + n*I is SPD for any A.
	rng := rand.New(rand.NewSource(1))
	n := 5
	a := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	sigma := a.Mul(a.T())
	for i := 0; i < n; i++ {
		sigma.Set(i, i, sigma.At(i, i)+float64(n))
	}
	l, err := sigma.Cholesky()
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	back := l.Mul(l.T())
	for i := range sigma.Data {
		if !almostEq(back.Data[i], sigma.Data[i], 1e-9) {
			t.Fatalf("L*Lᵀ mismatch at %d: %v vs %v", i, back.Data[i], sigma.Data[i])
		}
	}
	// Upper part of L must be zero.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if l.At(i, j) != 0 {
				t.Fatalf("L not lower triangular at (%d,%d)", i, j)
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 1) // eigenvalues 3, -1
	if _, err := m.Cholesky(); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
}

func TestSolveSPD(t *testing.T) {
	m := NewMatrix(3, 3)
	vals := []float64{4, 1, 0, 1, 3, 1, 0, 1, 2}
	copy(m.Data, vals)
	want := Vector{1, -2, 3}
	b := m.MulVec(want)
	got, err := m.SolveSPD(b)
	if err != nil {
		t.Fatalf("SolveSPD: %v", err)
	}
	if !got.Equal(want, 1e-10) {
		t.Fatalf("SolveSPD = %v want %v", got, want)
	}
}

func TestLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		want := make(Vector, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := m.MulVec(want)
		got, err := m.LUSolve(b)
		if err != nil {
			continue // singular random draw; acceptable
		}
		if !got.Equal(want, 1e-8) {
			t.Fatalf("trial %d: LUSolve = %v want %v", trial, got, want)
		}
	}
}

func TestLUSolveSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := m.LUSolve(Vector{1, 2}); err == nil {
		t.Fatal("expected singular-matrix error")
	}
}

func TestWhitenRoundTrip(t *testing.T) {
	mean := Vector{1, -2, 0.5}
	sigma := NewMatrix(3, 3)
	copy(sigma.Data, []float64{2, 0.3, 0.1, 0.3, 1.5, -0.2, 0.1, -0.2, 1.0})
	w, err := NewWhitener(mean, sigma)
	if err != nil {
		t.Fatalf("NewWhitener: %v", err)
	}
	if w.Dim() != 3 {
		t.Fatalf("Dim = %d", w.Dim())
	}
	x := Vector{0.7, 0.1, -1.2}
	z := w.Whiten(x)
	back := w.Unwhiten(z)
	if !back.Equal(x, 1e-12) {
		t.Fatalf("round trip %v -> %v -> %v", x, z, back)
	}
}

func TestWhitenStatistics(t *testing.T) {
	// Samples drawn with Unwhiten(z), z~N(0,I), must have covariance Sigma.
	mean := Vector{0.5, -0.5}
	sigma := NewMatrix(2, 2)
	copy(sigma.Data, []float64{1.0, 0.6, 0.6, 2.0})
	w, err := NewWhitener(mean, sigma)
	if err != nil {
		t.Fatalf("NewWhitener: %v", err)
	}
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	var sx, sy, sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		x := w.Unwhiten(Vector{rng.NormFloat64(), rng.NormFloat64()})
		sx += x[0]
		sy += x[1]
		sxx += x[0] * x[0]
		syy += x[1] * x[1]
		sxy += x[0] * x[1]
	}
	mx, my := sx/n, sy/n
	cxx := sxx/n - mx*mx
	cyy := syy/n - my*my
	cxy := sxy/n - mx*my
	if !almostEq(mx, 0.5, 0.02) || !almostEq(my, -0.5, 0.02) {
		t.Fatalf("mean = (%v,%v)", mx, my)
	}
	if !almostEq(cxx, 1.0, 0.05) || !almostEq(cyy, 2.0, 0.05) || !almostEq(cxy, 0.6, 0.05) {
		t.Fatalf("cov = (%v,%v,%v)", cxx, cyy, cxy)
	}
}

func TestWhitenerShapeMismatch(t *testing.T) {
	if _, err := NewWhitener(Vector{1, 2}, Identity(3)); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
}

// Property: for any vectors, dot product is symmetric and Cauchy–Schwarz holds.
func TestPropertyDotCauchySchwarz(t *testing.T) {
	f := func(a, b [6]float64) bool {
		v, w := Vector(a[:]), Vector(b[:])
		for _, x := range append(v.Clone(), w...) {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological inputs
			}
		}
		d1, d2 := v.Dot(w), w.Dot(v)
		if d1 != d2 {
			return false
		}
		return math.Abs(d1) <= v.Norm()*w.Norm()*(1+1e-9)+1e-300
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: LUSolve(m, m*x) recovers x for well-conditioned random m.
func TestPropertyLUSolveRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 2 + int(seed&3)
		m := Identity(n)
		for i := range m.Data {
			m.Data[i] += 0.3 * r.NormFloat64() // diagonally dominant-ish
		}
		x := make(Vector, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		got, err := m.LUSolve(m.MulVec(x))
		if err != nil {
			return true
		}
		return got.Equal(x, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
