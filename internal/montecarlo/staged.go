package montecarlo

import (
	"context"
	"math"
	"math/rand"
	"runtime"

	"ecripse/internal/linalg"
	"ecripse/internal/randx"
	"ecripse/internal/stats"
)

// StagedValue is the batched counterpart of IndexedValue: the per-sample
// evaluation is split so the expensive indicator evaluations of a whole
// barrier batch can be settled together (and marched through the lockstep
// SRAM solver) instead of one latency chain at a time.
//
//   - Prepare(rng, k, x) runs in parallel, one call per sample: it must
//     consume exactly the randomness the scalar evaluation would (so the
//     two paths stay bit-identical), decide which draws it can answer from
//     frozen adaptive state, and park the rest in sample k's slot.
//   - Resolve(lo, hi) runs single-threaded at the barrier after every
//     sample of [lo, hi) has been prepared; it settles the parked draws —
//     typically one batched indicator sweep — and banks the labels.
//   - Value(k, x) assembles sample k's value in [0, 1] from the banked
//     labels; it must be safe to call concurrently for distinct k.
//
// The contract mirrors the engine's batch-barrier discipline: within a
// batch, decisions see adaptive state frozen at the batch start, and any
// state mutation is the caller's to replay in index order at its flush
// barrier.
type StagedValue interface {
	Prepare(rng *rand.Rand, k int, x linalg.Vector)
	Resolve(lo, hi int)
	Value(k int, x linalg.Vector) float64
}

// ImportanceSampleParStaged is ImportanceSamplePar with the per-sample
// evaluation routed through a StagedValue, so each barrier batch settles
// its deferred indicator evaluations in bulk. Sample k draws x_k and all
// evaluation randomness from substream (Seed, k) exactly as the scalar
// path does, and terms fold in index order — the estimate and recorded
// series are bit-identical to ImportanceSamplePar over an IndexedValue
// that implements the same evaluation rule, at any Workers setting.
func ImportanceSampleParStaged(ctx context.Context, q Proposal, sv StagedValue, n int, po ParOptions, c *Counter, recordEvery int) stats.Series {
	if recordEvery <= 0 {
		recordEvery = n/50 + 1
	}
	batch := po.Batch
	if batch <= 0 {
		batch = DefaultBatch
	}
	workers := po.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	terms := make([]float64, batch)
	xs := make([]linalg.Vector, batch)
	streams := randx.NewStreams(po.Seed, workers)
	var run stats.Running
	var series stats.Series
	recorded := 0
	for lo := 0; lo < n; lo += batch {
		if ctx.Err() != nil {
			return finishSeries(series, &run, c)
		}
		hi := lo + batch
		if hi > n {
			hi = n
		}
		ParFor(workers, hi-lo, func(w, i int) {
			k := lo + i
			rng := streams.At(w, uint64(k))
			x := q.Sample(rng)
			xs[i] = x
			sv.Prepare(rng, k, x)
		})
		sv.Resolve(lo, hi)
		// Terms are slot writes, so the weight evaluation (the proposal
		// log-density is not free) stays parallel; the fold below is what
		// must run in index order.
		ParFor(workers, hi-lo, func(w, i int) {
			v := sv.Value(lo+i, xs[i])
			term := 0.0
			if v > 0 {
				logW := randx.StdNormalLogPDF(xs[i]) - q.LogPDF(xs[i])
				term = v * math.Exp(logW)
			}
			terms[i] = term
		})
		if po.Flush != nil {
			po.Flush(lo, hi)
		}
		for i := 0; i < hi-lo; i++ {
			run.Add(terms[i])
		}
		pt := stats.Point{
			Sims: c.Count(), P: run.Mean(), CI95: run.CI95(), RelErr: run.RelErr(), Var: run.Var(),
		}
		if po.OnBatch != nil {
			po.OnBatch(hi, pt)
		}
		if hi/recordEvery > recorded/recordEvery || hi == n {
			series = append(series, pt)
		}
		recorded = hi
	}
	return series
}

// NaiveBatched runs n naive Monte Carlo trials with the indicator
// evaluations settled in batches: draw(rng, slot) stages trial i's sample
// point into the given batch slot — consuming exactly the randomness the
// scalar Trial would, in the same sequential order on rng — and
// label(slots, fails) settles the staged slots [0, slots) in one batched
// indicator evaluation, billing the counter for them.
//
// Each trial must cost exactly one counted simulation and c must be
// private to this run; under that contract the recording schedule —
// Naive checks the counter after every trial — is replayed exactly, so
// the returned series is bit-identical to Naive over the equivalent
// scalar Trial. The context is checked at batch boundaries (Naive checks
// per trial); an uncancelled run is unaffected.
func NaiveBatched(ctx context.Context, rng *rand.Rand, draw func(rng *rand.Rand, slot int), label func(slots int, fails []bool), n, batch int, c *Counter, recordEvery int) stats.Series {
	if recordEvery <= 0 {
		recordEvery = n/50 + 1
	}
	if batch <= 0 {
		batch = DefaultBatch
	}
	var run stats.Running
	var series stats.Series
	fails := make([]bool, batch)
	nextRecord := c.Count() + int64(recordEvery)
	for lo := 0; lo < n; lo += batch {
		if ctx.Err() != nil {
			return finishSeries(series, &run, c)
		}
		hi := lo + batch
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			draw(rng, i-lo)
		}
		base := c.Count()
		label(hi-lo, fails[:hi-lo])
		// Replay the scalar recording tail: after trial i the scalar
		// counter reads base + (i−lo+1), one simulation per trial.
		for i := lo; i < hi; i++ {
			v := 0.0
			if fails[i-lo] {
				v = 1
			}
			run.Add(v)
			sims := base + int64(i-lo+1)
			if sims >= nextRecord || i == n-1 {
				series = append(series, stats.Point{
					Sims: sims, P: run.Mean(), CI95: run.CI95(), RelErr: run.RelErr(), Var: run.Var(),
				})
				nextRecord = sims + int64(recordEvery)
			}
		}
	}
	return series
}
