package montecarlo

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"ecripse/internal/linalg"
)

// uniformSigma builds a constant per-dimension sigma vector.
func uniformSigma(dim int, s float64) linalg.Vector {
	v := linalg.NewVector(dim)
	for i := range v {
		v[i] = s
	}
	return v
}

// stagedRule is a StagedValue implementing the same evaluation rule as the
// IndexedValue below: consume one uniform from the sample substream, then
// value = 1 when the draw lands inside a ball around a shifted center
// (roughly a rare event under the proposal).
type stagedRule struct {
	us []float64
}

func (s *stagedRule) Prepare(rng *rand.Rand, k int, x linalg.Vector) {
	s.us[k%len(s.us)] = rng.Float64()
}

func (s *stagedRule) Resolve(lo, hi int) {}

func (s *stagedRule) Value(k int, x linalg.Vector) float64 {
	return ruleValue(s.us[k%len(s.us)], x)
}

func ruleValue(u float64, x linalg.Vector) float64 {
	d := 0.0
	for _, v := range x {
		d += (v - 2) * (v - 2)
	}
	if d < 4+u {
		return 1
	}
	return 0
}

// TestImportanceSampleParStagedMatchesScalar pins the staged driver to
// ImportanceSamplePar over an equivalent IndexedValue: same series, at
// lengths that exercise partial final batches, and at several worker
// counts.
func TestImportanceSampleParStagedMatchesScalar(t *testing.T) {
	dim := 4
	q := &GMM{Means: []linalg.Vector{linalg.NewVector(dim)}, Sigma: uniformSigma(dim, 1.5)}
	scalar := func(rng *rand.Rand, k int, x linalg.Vector) float64 {
		return ruleValue(rng.Float64(), x)
	}
	for _, n := range []int{100, 256, 700} {
		for _, workers := range []int{1, 3} {
			var c Counter
			want := ImportanceSamplePar(context.Background(), q, scalar,
				n, ParOptions{Seed: 5, Workers: workers, Batch: 128}, &c, 64)
			sv := &stagedRule{us: make([]float64, 128)}
			var c2 Counter
			got := ImportanceSampleParStaged(context.Background(), q, sv,
				n, ParOptions{Seed: 5, Workers: workers, Batch: 128}, &c2, 64)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d workers=%d: staged series diverged\nstaged %v\nscalar %v", n, workers, got, want)
			}
		}
	}
}

// TestNaiveBatchedMatchesNaive pins NaiveBatched's replayed recording
// schedule to Naive over an equivalent scalar Trial, at batch-aligned and
// ragged lengths.
func TestNaiveBatchedMatchesNaive(t *testing.T) {
	trial := func(c *Counter) Trial {
		return func(rng *rand.Rand) bool {
			c.Add(1)
			return rng.NormFloat64() > 1.8
		}
	}
	for _, n := range []int{50, 256, 777} {
		for _, recordEvery := range []int{0, 37} {
			var c Counter
			want := Naive(rand.New(rand.NewSource(7)), trial(&c), n, &c, recordEvery)

			var c2 Counter
			staged := make([]float64, 64)
			draw := func(rng *rand.Rand, slot int) { staged[slot] = rng.NormFloat64() }
			label := func(slots int, fails []bool) {
				c2.Add(int64(slots))
				for i := 0; i < slots; i++ {
					fails[i] = staged[i] > 1.8
				}
			}
			got := NaiveBatched(context.Background(), rand.New(rand.NewSource(7)), draw, label, n, 64, &c2, recordEvery)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d recordEvery=%d: batched series diverged\nbatched %v\nscalar %v", n, recordEvery, got, want)
			}
			if c.Count() != c2.Count() {
				t.Fatalf("counter diverged: %d vs %d", c.Count(), c2.Count())
			}
		}
	}
}

// TestStagedCancellation checks that a cancelled staged run returns a
// partial series ending at the stop state, like the scalar driver.
func TestStagedCancellation(t *testing.T) {
	dim := 2
	q := &GMM{Means: []linalg.Vector{linalg.NewVector(dim)}, Sigma: uniformSigma(dim, 1)}
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	sv := &countingStaged{onPrepare: func() {
		n++
		if n == 300 {
			cancel()
		}
	}}
	sv.us = make([]float64, 256)
	var c Counter
	series := ImportanceSampleParStaged(ctx, q, sv, 10000, ParOptions{Seed: 3, Workers: 1}, &c, 0)
	if len(series) == 0 {
		t.Fatalf("cancelled run lost its partial series")
	}
	if fin := series.Final(); fin.P < 0 || math.IsNaN(fin.P) {
		t.Fatalf("bad final point %v", fin)
	}
	if n >= 10000 {
		t.Fatalf("cancellation did not stop the run")
	}
}

type countingStaged struct {
	stagedRule
	onPrepare func()
}

func (s *countingStaged) Prepare(rng *rand.Rand, k int, x linalg.Vector) {
	s.onPrepare()
	s.stagedRule.Prepare(rng, k, x)
}

var _ StagedValue = (*countingStaged)(nil)
