// Package montecarlo provides the estimation engines shared by the baseline
// and proposed methods: a simulation counter (the paper's x-axis is always
// "number of transistor-level simulations"), naive Monte Carlo, and
// importance sampling from Gaussian-mixture alternative distributions
// (paper eqs. (2), (4), (18), (19)), all with convergence-series recording.
package montecarlo

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"ecripse/internal/linalg"
	"ecripse/internal/randx"
	"ecripse/internal/stats"
	"ecripse/internal/vecmath"
)

// Counter tallies transistor-level simulations. Every estimator in this
// repository routes its indicator evaluations through one Counter so that
// method-to-method comparisons count work identically.
//
// The count is maintained atomically, so a Counter owned by a running
// estimator can be read concurrently (progress reporting, service metrics).
type Counter struct {
	n int64

	limit   int64
	fired   int32
	onLimit func()
}

// Add records k simulations. If a budget installed with SetLimit is reached
// by this addition, the limit callback fires (exactly once).
func (c *Counter) Add(k int64) {
	n := atomic.AddInt64(&c.n, k)
	if lim := atomic.LoadInt64(&c.limit); lim > 0 && n >= lim {
		if atomic.CompareAndSwapInt32(&c.fired, 0, 1) && c.onLimit != nil {
			c.onLimit()
		}
	}
}

// Count returns the simulations so far.
func (c *Counter) Count() int64 { return atomic.LoadInt64(&c.n) }

// Reset zeroes the counter.
func (c *Counter) Reset() { atomic.StoreInt64(&c.n, 0) }

// SetLimit installs a simulation budget: the first Add that takes the count
// to max or beyond invokes stop (typically a context.CancelFunc), after
// which the estimator unwinds at its next cancellation checkpoint with a
// partial result. SetLimit must be called before the estimator starts; it is
// not safe to call concurrently with Add.
func (c *Counter) SetLimit(max int64, stop func()) {
	atomic.StoreInt64(&c.limit, max)
	atomic.StoreInt32(&c.fired, 0)
	c.onLimit = stop
}

// Value is a function giving the (conditional) failure value of a point in
// the normalized variability space: either a 0/1 indicator or, for the
// RTN-aware flow, the inner estimate Pfail_RTN(x) ∈ [0,1] of eq. (13).
type Value func(x linalg.Vector) float64

// Trial draws one sample from the nominal distribution and reports failure;
// used by naive Monte Carlo where each trial costs one simulation.
type Trial func(rng *rand.Rand) bool

// Naive runs n naive Monte Carlo trials (paper eq. (2)), recording a
// convergence point roughly every recordEvery simulations as counted by c.
func Naive(rng *rand.Rand, trial Trial, n int, c *Counter, recordEvery int) stats.Series {
	return NaiveCtx(context.Background(), rng, trial, n, c, recordEvery)
}

// NaiveCtx is Naive with cancellation: the context is checked before every
// trial, and on cancellation the partial convergence series accumulated so
// far is returned (with a final point appended so the trace ends at the
// cancellation state). No randomness is consumed by the checks, so for an
// uncancelled context the result is identical to Naive.
func NaiveCtx(ctx context.Context, rng *rand.Rand, trial Trial, n int, c *Counter, recordEvery int) stats.Series {
	if recordEvery <= 0 {
		recordEvery = n/50 + 1
	}
	var run stats.Running
	var series stats.Series
	nextRecord := c.Count() + int64(recordEvery)
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return finishSeries(series, &run, c)
		}
		v := 0.0
		if trial(rng) {
			v = 1
		}
		run.Add(v)
		if c.Count() >= nextRecord || i == n-1 {
			series = append(series, stats.Point{
				Sims: c.Count(), P: run.Mean(), CI95: run.CI95(), RelErr: run.RelErr(), Var: run.Var(),
			})
			nextRecord = c.Count() + int64(recordEvery)
		}
	}
	return series
}

// finishSeries appends the current estimator state as a last point of a
// cancelled run, so partial traces end exactly where the work stopped.
func finishSeries(series stats.Series, run *stats.Running, c *Counter) stats.Series {
	if run.N() == 0 {
		return series
	}
	if last := series.Final(); last.Sims == c.Count() && len(series) > 0 {
		return series
	}
	return append(series, stats.Point{
		Sims: c.Count(), P: run.Mean(), CI95: run.CI95(), RelErr: run.RelErr(), Var: run.Var(),
	})
}

// Proposal is an alternative distribution Q(x) that can be sampled and
// evaluated; importance sampling weighs draws by P(x)/Q(x).
type Proposal interface {
	Sample(rng *rand.Rand) linalg.Vector
	LogPDF(x linalg.Vector) float64
}

// NaiveQMC is the quasi-Monte Carlo variant of the naive estimator: the
// sample points come from a Halton sequence mapped to N(0, I) instead of a
// pseudorandom stream. For *mean* estimation QMC improves the convergence
// constant; for rare events it cannot beat the hit-count limit, which is
// exactly the ablation this function supports. The reported confidence
// interval uses the i.i.d. formula and is therefore only indicative (a
// randomized QMC would be needed for rigorous intervals).
func NaiveQMC(dim int, value Value, n int, c *Counter, recordEvery int) stats.Series {
	if recordEvery <= 0 {
		recordEvery = n/50 + 1
	}
	h := randx.NewHalton(dim)
	var run stats.Running
	var series stats.Series
	for k := 0; k < n; k++ {
		run.Add(value(h.NextNormal()))
		if (k+1)%recordEvery == 0 || k == n-1 {
			series = append(series, stats.Point{
				Sims: c.Count(), P: run.Mean(), CI95: run.CI95(), RelErr: run.RelErr(), Var: run.Var(),
			})
		}
	}
	return series
}

// GMM is a Gaussian mixture with shared diagonal covariance — the
// alternative-distribution family of eq. (18), whose component means are
// particle positions. Weights are optional (nil means equal weights); a
// weighted mixture lets the proposal use the final measurement round's
// weights directly instead of losing diversity to resampling.
type GMM struct {
	Means   []linalg.Vector
	Sigma   linalg.Vector // shared per-dimension standard deviations
	Weights []float64     // optional; non-negative, need not be normalized

	// Cached terms for the fast LogPDF path (built lazily on first LogPDF
	// call). The sync.Once makes concurrent first calls safe: stage-2
	// importance sampling evaluates a shared proposal from many goroutines.
	once      sync.Once
	invSigma  linalg.Vector
	logCoeffs []float64 // per-component log(w_i/Σw) − Σ log σ_d − D/2·log 2π

	// Structure-of-arrays means for the batched LogPDF: meansT[d*kpad+i] is
	// component i's coordinate d, rows padded to a multiple of the kernel
	// width so AccSqDiff can sweep them without a tail. scratch pools the
	// per-call work buffers (LogPDF runs concurrently from the stage-2
	// workers).
	kpad    int
	meansT  []float64
	scratch sync.Pool
}

// gmmScratch is one worker's LogPDF buffers: the per-component quadratics,
// the collected exponential arguments and results, and the fold-event tags
// (opAdd/opRescale) that let the replay skip the pruned components.
type gmmScratch struct {
	q, args, exps []float64
	ops           []uint8
}

// prepare builds the LogPDF caches exactly once; Means/Sigma/Weights must
// not be mutated after the first LogPDF/PDF call.
func (g *GMM) prepare() { g.once.Do(g.buildCaches) }

func (g *GMM) buildCaches() {
	d := len(g.Sigma)
	g.invSigma = make(linalg.Vector, d)
	base := -0.5 * float64(d) * randx.Log2Pi
	for i, s := range g.Sigma {
		g.invSigma[i] = 1 / s
		base -= math.Log(s)
	}
	totalW := 0.0
	if g.Weights != nil {
		for _, w := range g.Weights {
			if w > 0 {
				totalW += w
			}
		}
	}
	g.logCoeffs = make([]float64, len(g.Means))
	for i := range g.Means {
		c := base
		switch {
		case g.Weights == nil:
			c -= math.Log(float64(len(g.Means)))
		case g.Weights[i] > 0 && totalW > 0:
			c += math.Log(g.Weights[i] / totalW)
		default:
			c = math.Inf(-1)
		}
		g.logCoeffs[i] = c
	}
	g.kpad = (len(g.Means) + 3) &^ 3
	g.meansT = make([]float64, d*g.kpad)
	for i, m := range g.Means {
		for dd := 0; dd < d && dd < len(m); dd++ {
			g.meansT[dd*g.kpad+i] = m[dd]
		}
	}
}

// Dim returns the dimensionality.
func (g *GMM) Dim() int { return len(g.Sigma) }

// Sample draws one point: a component chosen by weight plus diagonal
// Gaussian noise.
func (g *GMM) Sample(rng *rand.Rand) linalg.Vector {
	var m linalg.Vector
	if g.Weights == nil {
		m = g.Means[rng.Intn(len(g.Means))]
	} else {
		m = g.Means[randx.Categorical(rng, g.Weights)]
	}
	x := make(linalg.Vector, len(m))
	for i := range x {
		x[i] = m[i] + g.Sigma[i]*rng.NormFloat64()
	}
	return x
}

// LogPDF returns log Q(x) via a numerically stable log-sum-exp over the
// mixture components.
//
// Large mixtures take a staged path that batches the arithmetic through the
// vecmath kernels: the per-component quadratics sweep the SoA means
// dimension-major, and — because the running-rescale control flow below
// depends only on the component log-densities, never on the exponentials it
// triggers — the exp arguments are collected in a first sweep, settled in
// one bit-exact vectorized batch, and consumed by an identical replay
// sweep. The result is bit-for-bit the scalar fold at any mixture size.
func (g *GMM) LogPDF(x linalg.Vector) float64 {
	g.prepare()
	k := len(g.Means)
	if k < 8 {
		return g.logPDFScalar(x)
	}
	s, _ := g.scratch.Get().(*gmmScratch)
	if s == nil || cap(s.q) < g.kpad {
		s = &gmmScratch{
			q:    make([]float64, g.kpad),
			args: make([]float64, 0, k),
			exps: make([]float64, k),
			ops:  make([]uint8, 0, k),
		}
	}
	defer g.scratch.Put(s)

	// Pass 1: per-component quadratics Σ_d z², accumulated in the same
	// per-component dimension order as the scalar loop.
	q := s.q[:g.kpad]
	for i := range q {
		q[i] = 0
	}
	for d := range x {
		vecmath.AccSqDiff(q, g.meansT[d*g.kpad:(d+1)*g.kpad], x[d], g.invSigma[d])
	}

	// Pass 2: run the running-rescale control flow on the component
	// log-densities l_i = logCoeff_i − ½q_i, collecting each exp argument
	// and its fold event in order instead of calling exp inline. The first
	// finite l always becomes the maximum (contributing the bare s++), a
	// later maximum rescales the accumulator, and a component within the
	// −40 cutoff adds to it. Zero-weight components (logCoeff −Inf) fall
	// out as l = −Inf and are skipped exactly as the scalar `continue`
	// skips them; a NaN l fails both comparisons on both paths.
	const (
		opAdd     = uint8(0) // sum += e
		opRescale = uint8(1) // sum = sum*e, then sum++
	)
	args, ops := s.args[:0], s.ops[:0]
	maxLog := math.Inf(-1)
	for i, c := range g.logCoeffs {
		li := c - 0.5*q[i]
		switch {
		case li > maxLog:
			if !math.IsInf(maxLog, -1) {
				args = append(args, maxLog-li)
				ops = append(ops, opRescale)
			}
			maxLog = li
		case li-maxLog > -40:
			args = append(args, li-maxLog)
			ops = append(ops, opAdd)
		}
	}
	s.args, s.ops = args, ops
	if math.IsInf(maxLog, -1) {
		return math.Inf(-1)
	}

	// Pass 3: settle every exponential in one bit-exact batch, then replay
	// the fold events in order — the identical sequence of multiplies and
	// adds the scalar fold performs on its accumulator.
	exps := s.exps[:cap(s.exps)]
	if len(args) > len(exps) {
		exps = make([]float64, len(args))
		s.exps = exps
	}
	vecmath.Exp(exps, args)
	sum := 1.0 // the first maximum's own s++
	for j, op := range ops {
		if op == opRescale {
			sum *= exps[j]
			sum++
		} else {
			sum += exps[j]
		}
	}
	return maxLog + math.Log(sum)
}

// logPDFScalar is the reference fold the staged path is pinned against; it
// also serves small mixtures, where the batch setup costs more than it
// saves. Running log-sum-exp: rescale the accumulator whenever a new
// maximum appears, so no per-call buffer is needed.
func (g *GMM) logPDFScalar(x linalg.Vector) float64 {
	maxLog := math.Inf(-1)
	s := 0.0
	for i, m := range g.Means {
		c := g.logCoeffs[i]
		if math.IsInf(c, -1) {
			continue
		}
		q := 0.0
		for d := range x {
			z := (x[d] - m[d]) * g.invSigma[d]
			q += z * z
		}
		l := c - 0.5*q
		switch {
		case l > maxLog:
			if !math.IsInf(maxLog, -1) {
				s *= math.Exp(maxLog - l)
			}
			maxLog = l
			s++
		case l-maxLog > -40:
			s += math.Exp(l - maxLog)
		}
	}
	if math.IsInf(maxLog, -1) {
		return math.Inf(-1)
	}
	return maxLog + math.Log(s)
}

// PDF returns Q(x).
func (g *GMM) PDF(x linalg.Vector) float64 { return math.Exp(g.LogPDF(x)) }

// DefensiveMixture blends a proposal with the nominal standard normal:
// Q'(x) = rho·P(x) + (1−rho)·Q(x). The blend bounds the importance weight
// P/Q' by 1/rho, taming the heavy weight tail that a narrow particle-cloud
// proposal produces for failure-region points it does not cover (the
// mixture-importance-sampling idea of Kanj et al., DAC 2006 — the paper's
// reference [4]).
type DefensiveMixture struct {
	Q   Proposal
	Rho float64 // weight of the nominal component, in (0,1)
	Dim int
}

// Sample implements Proposal.
func (d *DefensiveMixture) Sample(rng *rand.Rand) linalg.Vector {
	if rng.Float64() < d.Rho {
		return randx.NormalVector(rng, d.Dim)
	}
	return d.Q.Sample(rng)
}

// LogPDF implements Proposal.
func (d *DefensiveMixture) LogPDF(x linalg.Vector) float64 {
	lp := randx.StdNormalLogPDF(x) + math.Log(d.Rho)
	lq := d.Q.LogPDF(x) + math.Log(1-d.Rho)
	hi, lo := lp, lq
	if lq > lp {
		hi, lo = lq, lp
	}
	return hi + math.Log1p(math.Exp(lo-hi))
}

// ImportanceSample estimates E_P[value] with n draws from proposal q
// (paper eq. (19)): the k-th term is value(x_k)·P(x_k)/Q(x_k) with
// P the standard normal. Convergence points are recorded against c.
func ImportanceSample(rng *rand.Rand, q Proposal, value Value, n int, c *Counter, recordEvery int) stats.Series {
	return ImportanceSampleCtx(context.Background(), rng, q, value, n, c, recordEvery)
}

// ImportanceSampleCtx is ImportanceSample with cancellation: the context is
// checked before every draw, and on cancellation the partial series is
// returned with a final point recording the state at the stop. The checks
// consume no randomness, so an uncancelled context reproduces
// ImportanceSample exactly.
func ImportanceSampleCtx(ctx context.Context, rng *rand.Rand, q Proposal, value Value, n int, c *Counter, recordEvery int) stats.Series {
	if recordEvery <= 0 {
		recordEvery = n/50 + 1
	}
	var run stats.Running
	var series stats.Series
	for k := 0; k < n; k++ {
		if ctx.Err() != nil {
			return finishSeries(series, &run, c)
		}
		x := q.Sample(rng)
		v := value(x)
		term := 0.0
		if v > 0 {
			logW := randx.StdNormalLogPDF(x) - q.LogPDF(x)
			term = v * math.Exp(logW)
		}
		run.Add(term)
		// Record every recordEvery samples; the x-coordinate is the
		// simulation counter (the paper's cost axis), which advances only
		// when the blockade lets a simulation through.
		if (k+1)%recordEvery == 0 || k == n-1 {
			series = append(series, stats.Point{
				Sims: c.Count(), P: run.Mean(), CI95: run.CI95(), RelErr: run.RelErr(), Var: run.Var(),
			})
		}
	}
	return series
}
