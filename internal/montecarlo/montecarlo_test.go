package montecarlo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ecripse/internal/linalg"
	"ecripse/internal/randx"
	"ecripse/internal/stats"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(4)
	if c.Count() != 7 {
		t.Fatalf("count = %d", c.Count())
	}
	c.Reset()
	if c.Count() != 0 {
		t.Fatal("reset failed")
	}
}

func TestNaiveEstimatesKnownProbability(t *testing.T) {
	// 1-D threshold problem: P(x > 2) for x~N(0,1) = 0.02275.
	rng := rand.New(rand.NewSource(1))
	var c Counter
	trial := func(r *rand.Rand) bool {
		c.Add(1)
		return r.NormFloat64() > 2
	}
	series := Naive(rng, trial, 400000, &c, 0)
	got := series.Final().P
	want := 0.02275
	if math.Abs(got-want) > 0.002 {
		t.Fatalf("P = %v want %v", got, want)
	}
	if series.Final().Sims != 400000 {
		t.Fatalf("sims = %d", series.Final().Sims)
	}
}

func TestNaiveSeriesMonotoneSims(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var c Counter
	trial := func(r *rand.Rand) bool { c.Add(1); return r.Float64() < 0.5 }
	series := Naive(rng, trial, 10000, &c, 500)
	if len(series) < 10 {
		t.Fatalf("too few points: %d", len(series))
	}
	for i := 1; i < len(series); i++ {
		if series[i].Sims <= series[i-1].Sims {
			t.Fatalf("sims not increasing at %d", i)
		}
	}
}

func TestGMMSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := &GMM{
		Means: []linalg.Vector{{-2, 0}, {2, 0}},
		Sigma: linalg.Vector{0.5, 1.5},
	}
	const n = 200000
	var sx, sxx, sy, syy float64
	for i := 0; i < n; i++ {
		x := g.Sample(rng)
		sx += x[0]
		sxx += x[0] * x[0]
		sy += x[1]
		syy += x[1] * x[1]
	}
	mx, my := sx/n, sy/n
	if math.Abs(mx) > 0.02 || math.Abs(my) > 0.02 {
		t.Fatalf("means %v %v", mx, my)
	}
	// Var(x0) = E[mean²] + sigma² = 4 + 0.25.
	vx := sxx/n - mx*mx
	if math.Abs(vx-4.25) > 0.1 {
		t.Fatalf("var x0 = %v", vx)
	}
	vy := syy/n - my*my
	if math.Abs(vy-2.25) > 0.05 {
		t.Fatalf("var x1 = %v", vy)
	}
}

func TestGMMPDFIntegratesToOne(t *testing.T) {
	// 1-D trapezoid integration of the density.
	g := &GMM{Means: []linalg.Vector{{-1}, {2}}, Sigma: linalg.Vector{0.7}}
	sum := 0.0
	const h = 0.01
	for x := -8.0; x <= 10; x += h {
		sum += g.PDF(linalg.Vector{x}) * h
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("integral = %v", sum)
	}
}

func TestGMMSingleComponentMatchesNormal(t *testing.T) {
	g := &GMM{Means: []linalg.Vector{{0, 0, 0}}, Sigma: linalg.Vector{1, 1, 1}}
	for _, x := range []linalg.Vector{{0, 0, 0}, {1, -1, 2}, {3, 3, 3}} {
		want := randx.StdNormalLogPDF(x)
		if got := g.LogPDF(x); math.Abs(got-want) > 1e-12 {
			t.Fatalf("LogPDF(%v) = %v want %v", x, got, want)
		}
	}
}

func TestGMMLogPDFFarTail(t *testing.T) {
	g := &GMM{Means: []linalg.Vector{{0}}, Sigma: linalg.Vector{1}}
	lp := g.LogPDF(linalg.Vector{40})
	if math.IsNaN(lp) || math.IsInf(lp, 0) {
		t.Fatalf("far-tail log pdf = %v", lp)
	}
	if lp > -700 {
		t.Fatalf("far-tail log pdf suspiciously large: %v", lp)
	}
}

func TestImportanceSampleUnbiasedOnIndicator(t *testing.T) {
	// Estimate P(x0 > 2.5) in 2-D with a proposal centered in the failure
	// region; compare with the analytic 0.0062097.
	rng := rand.New(rand.NewSource(4))
	var c Counter
	value := func(x linalg.Vector) float64 {
		c.Add(1)
		if x[0] > 2.5 {
			return 1
		}
		return 0
	}
	q := &GMM{Means: []linalg.Vector{{2.8, 0}}, Sigma: linalg.Vector{0.6, 1.0}}
	series := ImportanceSample(rng, q, value, 60000, &c, 0)
	got := series.Final().P
	want := 0.0062097
	if math.Abs(got-want)/want > 0.08 {
		t.Fatalf("IS estimate %v want %v", got, want)
	}
}

func TestImportanceSampleBeatsNaiveVariance(t *testing.T) {
	// For the same sample budget, a good proposal must give a smaller CI
	// than naive MC on a rare event.
	want := 0.0062097
	const n = 20000

	rngA := rand.New(rand.NewSource(5))
	var cA Counter
	trial := func(r *rand.Rand) bool { cA.Add(1); return r.NormFloat64() > 2.5 }
	naive := Naive(rngA, trial, n, &cA, 0).Final()

	rngB := rand.New(rand.NewSource(6))
	var cB Counter
	value := func(x linalg.Vector) float64 {
		cB.Add(1)
		if x[0] > 2.5 {
			return 1
		}
		return 0
	}
	q := &GMM{Means: []linalg.Vector{{2.9}}, Sigma: linalg.Vector{0.7}}
	is := ImportanceSample(rngB, q, value, n, &cB, 0).Final()

	if is.CI95 >= naive.CI95 {
		t.Fatalf("IS CI %v not better than naive CI %v", is.CI95, naive.CI95)
	}
	if math.Abs(is.P-want)/want > 0.15 {
		t.Fatalf("IS estimate off: %v", is.P)
	}
}

func TestImportanceSampleFractionalValues(t *testing.T) {
	// Values in (0,1) (the RTN-aware inner probability) are averaged, not
	// thresholded: E_P[v(x)] with v(x)=Φ-like smooth function.
	rng := rand.New(rand.NewSource(7))
	var c Counter
	value := func(x linalg.Vector) float64 {
		c.Add(1)
		return 1 / (1 + math.Exp(-2*(x[0]-2))) // smooth step around 2
	}
	q := &GMM{Means: []linalg.Vector{{2}}, Sigma: linalg.Vector{1.2}}
	got := ImportanceSample(rng, q, value, 80000, &c, 0).Final().P

	// Reference by plain MC with many samples.
	rng2 := rand.New(rand.NewSource(8))
	var ref stats.Running
	for i := 0; i < 400000; i++ {
		x := rng2.NormFloat64()
		ref.Add(1 / (1 + math.Exp(-2*(x-2))))
	}
	if math.Abs(got-ref.Mean())/ref.Mean() > 0.05 {
		t.Fatalf("IS %v vs reference %v", got, ref.Mean())
	}
}

func TestImportanceSampleRecordsAgainstSharedCounter(t *testing.T) {
	// When stage 1 already consumed simulations, series points must start
	// beyond that offset.
	rng := rand.New(rand.NewSource(9))
	var c Counter
	c.Add(5000)
	value := func(x linalg.Vector) float64 { c.Add(1); return 1 }
	q := &GMM{Means: []linalg.Vector{{0}}, Sigma: linalg.Vector{1}}
	series := ImportanceSample(rng, q, value, 100, &c, 10)
	if series[0].Sims <= 5000 {
		t.Fatalf("first point at %d sims", series[0].Sims)
	}
	if series.Final().Sims != 5100 {
		t.Fatalf("final point at %d sims", series.Final().Sims)
	}
}

// Property: GMM log-pdf is maximal at a component mean for symmetric mixtures.
func TestPropertyGMMPeakAtMean(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := linalg.Vector{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		g := &GMM{Means: []linalg.Vector{m}, Sigma: linalg.Vector{1, 1}}
		peak := g.LogPDF(m)
		for i := 0; i < 10; i++ {
			x := m.Add(randx.NormalVector(rng, 2))
			if g.LogPDF(x) > peak+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveQMCEstimatesMean(t *testing.T) {
	// E[sigmoid-ish value] estimated by QMC must match plain MC tightly.
	var c Counter
	value := func(x linalg.Vector) float64 {
		c.Add(1)
		if x[0]+x[1] > 1 {
			return 1
		}
		return 0
	}
	series := NaiveQMC(2, value, 40000, &c, 0)
	// P(x0+x1 > 1), x_i iid N(0,1): 1 - Phi(1/sqrt(2)) = 0.23975.
	got := series.Final().P
	if math.Abs(got-0.23975) > 0.003 {
		t.Fatalf("QMC estimate = %v", got)
	}
	if c.Count() != 40000 {
		t.Fatalf("sims = %d", c.Count())
	}
}

func TestNaiveQMCBeatsMCOnSmoothMean(t *testing.T) {
	// On a smooth integrand the deterministic QMC error at n samples should
	// be well below the typical MC standard error.
	value := func(x linalg.Vector) float64 {
		return 1 / (1 + math.Exp(-x[0])) // E = 0.5 exactly by symmetry
	}
	var c Counter
	const n = 20000
	qmc := NaiveQMC(1, func(x linalg.Vector) float64 { c.Add(1); return value(x) }, n, &c, 0).Final().P
	qmcErr := math.Abs(qmc - 0.5)
	// MC standard error of this integrand is ~0.21/sqrt(n) ≈ 1.5e-3.
	if qmcErr > 5e-4 {
		t.Fatalf("QMC error %v too large", qmcErr)
	}
}

func TestDefensiveMixtureProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	q := &GMM{Means: []linalg.Vector{{4, 0}}, Sigma: linalg.Vector{0.5, 0.5}}
	d := &DefensiveMixture{Q: q, Rho: 0.3, Dim: 2}

	// Density: Q'(x) = 0.3·P(x) + 0.7·Q(x); check against direct evaluation.
	for _, x := range []linalg.Vector{{0, 0}, {4, 0}, {2, 1}, {-3, 2}} {
		want := math.Log(0.3*randx.StdNormalPDF(x) + 0.7*q.PDF(x))
		if got := d.LogPDF(x); math.Abs(got-want) > 1e-9 {
			t.Fatalf("LogPDF(%v) = %v want %v", x, got, want)
		}
	}

	// The importance weight P/Q' is bounded by 1/Rho everywhere.
	for i := 0; i < 5000; i++ {
		x := d.Sample(rng)
		w := math.Exp(randx.StdNormalLogPDF(x) - d.LogPDF(x))
		if w > 1/0.3+1e-9 {
			t.Fatalf("weight %v exceeds 1/rho", w)
		}
	}

	// Sampling moments: mixture mean = 0.7·(4,0).
	var sx float64
	const n = 200000
	for i := 0; i < n; i++ {
		sx += d.Sample(rng)[0]
	}
	if got := sx / n; math.Abs(got-2.8) > 0.03 {
		t.Fatalf("mixture mean = %v want 2.8", got)
	}
}

func TestGMMDim(t *testing.T) {
	g := &GMM{Means: []linalg.Vector{{0, 0, 0}}, Sigma: linalg.Vector{1, 1, 1}}
	if g.Dim() != 3 {
		t.Fatalf("Dim = %d", g.Dim())
	}
}

func TestGMMZeroWeightComponentNeverSampled(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := &GMM{
		Means:   []linalg.Vector{{-100}, {5}},
		Sigma:   linalg.Vector{0.1},
		Weights: []float64{0, 1},
	}
	for i := 0; i < 5000; i++ {
		if x := g.Sample(rng); x[0] < 0 {
			t.Fatalf("zero-weight component sampled: %v", x)
		}
	}
	// And it contributes nothing to the density.
	lp := g.LogPDF(linalg.Vector{-100})
	if lp > -1000 {
		t.Fatalf("zero-weight component leaks density: %v", lp)
	}
}

func TestNaiveParallelMatchesSerialStatistics(t *testing.T) {
	// Same event probability, deterministic for fixed seed/workers.
	var c1 Counter
	trial := func(r *rand.Rand) bool { c1.Add(1); return r.NormFloat64() > 1.5 }
	a := NaiveParallel(7, trial, 100000, 4, &c1)
	var c2 Counter
	trial2 := func(r *rand.Rand) bool { c2.Add(1); return r.NormFloat64() > 1.5 }
	b := NaiveParallel(7, trial2, 100000, 4, &c2)
	if a.P != b.P {
		t.Fatalf("not deterministic: %v vs %v", a.P, b.P)
	}
	want := 0.0668072 // P(Z > 1.5)
	if math.Abs(a.P-want) > 0.003 {
		t.Fatalf("P = %v want %v", a.P, want)
	}
	if a.N != 100000 {
		t.Fatalf("N = %d", a.N)
	}
}

func TestNaiveParallelWorkerEdgeCases(t *testing.T) {
	trial := func(r *rand.Rand) bool { return true }
	var c Counter
	// workers > n collapses to a single worker.
	res := NaiveParallel(1, trial, 3, 100, &c)
	if res.N != 3 || res.P != 1 {
		t.Fatalf("edge case: %+v", res)
	}
	// workers = 0 uses GOMAXPROCS.
	res = NaiveParallel(1, trial, 50, 0, &c)
	if res.N != 50 {
		t.Fatalf("auto workers: %+v", res)
	}
}

func TestImportanceSampleZeroFailures(t *testing.T) {
	// A value that never fails: the estimate is exactly 0 and the series
	// never satisfies any relative-error target.
	rng := rand.New(rand.NewSource(12))
	var c Counter
	value := func(x linalg.Vector) float64 { c.Add(1); return 0 }
	q := &GMM{Means: []linalg.Vector{{0}}, Sigma: linalg.Vector{1}}
	series := ImportanceSample(rng, q, value, 500, &c, 50)
	if series.Final().P != 0 {
		t.Fatalf("P = %v", series.Final().P)
	}
	if _, ok := series.SimsToRelErr(0.5); ok {
		t.Fatal("zero estimate must not satisfy a relerr target")
	}
	if _, ok := series.SimsToRelErrStable(0.5); ok {
		t.Fatal("zero estimate must not satisfy a stable relerr target")
	}
}
