package montecarlo

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"ecripse/internal/linalg"
)

// pipelinedRule implements PipelinedValue over the same evaluation rule as
// stagedRule: Generate stages the sample's uniform (classifier-free half),
// Score is a no-op (the rule has no frozen-state decisions). The ring spans
// two batches, as the pipelined contract requires.
type pipelinedRule struct {
	us     []float64
	scored []bool
}

func (s *pipelinedRule) Generate(rng *rand.Rand, k int, x linalg.Vector) {
	s.us[k%len(s.us)] = rng.Float64()
	s.scored[k%len(s.us)] = false
}

func (s *pipelinedRule) Score(w, k int) {
	s.scored[k%len(s.us)] = true
}

func (s *pipelinedRule) Resolve(lo, hi int) {
	for k := lo; k < hi; k++ {
		if !s.scored[k%len(s.us)] {
			panic("resolve before score")
		}
	}
}

func (s *pipelinedRule) Value(k int, x linalg.Vector) float64 {
	return ruleValue(s.us[k%len(s.us)], x)
}

var _ PipelinedValue = (*pipelinedRule)(nil)

// TestImportanceSampleParPipelinedMatchesScalar pins the double-buffered
// pipelined driver to ImportanceSamplePar over an equivalent IndexedValue:
// same series bit for bit, at lengths that exercise partial final batches
// and at several worker counts.
func TestImportanceSampleParPipelinedMatchesScalar(t *testing.T) {
	dim := 4
	q := &GMM{Means: []linalg.Vector{linalg.NewVector(dim)}, Sigma: uniformSigma(dim, 1.5)}
	scalar := func(rng *rand.Rand, k int, x linalg.Vector) float64 {
		return ruleValue(rng.Float64(), x)
	}
	for _, n := range []int{100, 256, 700} {
		for _, workers := range []int{1, 3} {
			var c Counter
			want := ImportanceSamplePar(context.Background(), q, scalar,
				n, ParOptions{Seed: 5, Workers: workers, Batch: 128}, &c, 64)
			pv := &pipelinedRule{us: make([]float64, 256), scored: make([]bool, 256)}
			var c2 Counter
			var ps PipelineStats
			got := ImportanceSampleParPipelined(context.Background(), q, pv,
				n, ParOptions{Seed: 5, Workers: workers, Batch: 128, PipeStats: &ps}, &c2, 64)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d workers=%d: pipelined series diverged\npipelined %v\nscalar %v", n, workers, got, want)
			}
			wantBatches := int64((n + 127) / 128)
			if ps.Batches != wantBatches {
				t.Fatalf("n=%d: %d pipelined batches, want %d", n, ps.Batches, wantBatches)
			}
			if ps.GenNS <= 0 {
				t.Fatalf("n=%d: no generation time recorded", n)
			}
		}
	}
}

// TestImportanceSampleParPipelinedWorkerInvariance pins the pipelined
// driver's series across worker counts (the CI determinism suite runs this
// under the race detector).
func TestImportanceSampleParPipelinedWorkerInvariance(t *testing.T) {
	dim := 3
	q := &GMM{Means: []linalg.Vector{linalg.NewVector(dim)}, Sigma: uniformSigma(dim, 1.2)}
	run := func(workers int) interface{} {
		pv := &pipelinedRule{us: make([]float64, 512), scored: make([]bool, 512)}
		var c Counter
		return ImportanceSampleParPipelined(context.Background(), q, pv,
			1000, ParOptions{Seed: 11, Workers: workers}, &c, 100)
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: series diverged from serial run", workers)
		}
	}
}

// TestPipelinedCancellation checks that a cancelled pipelined run awaits
// its in-flight generation and returns a partial series, like the staged
// driver.
func TestPipelinedCancellation(t *testing.T) {
	dim := 2
	q := &GMM{Means: []linalg.Vector{linalg.NewVector(dim)}, Sigma: uniformSigma(dim, 1)}
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	pv := &countingPipelined{onGenerate: func() {
		n++
		if n == 300 {
			cancel()
		}
	}}
	pv.us = make([]float64, 512)
	pv.scored = make([]bool, 512)
	var c Counter
	series := ImportanceSampleParPipelined(ctx, q, pv, 10000, ParOptions{Seed: 3, Workers: 1}, &c, 0)
	if len(series) == 0 {
		t.Fatalf("cancelled run lost its partial series")
	}
	if fin := series.Final(); fin.P < 0 || math.IsNaN(fin.P) {
		t.Fatalf("bad final point %v", fin)
	}
	if n >= 10000 {
		t.Fatalf("cancellation did not stop the run")
	}
}

type countingPipelined struct {
	pipelinedRule
	onGenerate func()
}

func (s *countingPipelined) Generate(rng *rand.Rand, k int, x linalg.Vector) {
	s.onGenerate()
	s.pipelinedRule.Generate(rng, k, x)
}

// TestPipelineStatsOverlapFraction checks the derived overlap share and its
// clamping.
func TestPipelineStatsOverlapFraction(t *testing.T) {
	cases := []struct {
		ps   PipelineStats
		want float64
	}{
		{PipelineStats{}, 0},
		{PipelineStats{GenNS: 100, StallNS: 25}, 0.75},
		{PipelineStats{GenNS: 100, StallNS: 0}, 1},
		{PipelineStats{GenNS: 100, StallNS: 250}, 0}, // stall beyond gen clamps
	}
	for _, tc := range cases {
		if got := tc.ps.OverlapFraction(); got != tc.want {
			t.Fatalf("OverlapFraction(%+v) = %v, want %v", tc.ps, got, tc.want)
		}
	}
}

// TestTotalPipelineStats checks that runs fold into the process-wide tally.
func TestTotalPipelineStats(t *testing.T) {
	before := TotalPipelineStats()
	dim := 2
	q := &GMM{Means: []linalg.Vector{linalg.NewVector(dim)}, Sigma: uniformSigma(dim, 1)}
	pv := &pipelinedRule{us: make([]float64, 512), scored: make([]bool, 512)}
	var c Counter
	ImportanceSampleParPipelined(context.Background(), q, pv, 600, ParOptions{Seed: 9, Workers: 2}, &c, 0)
	after := TotalPipelineStats()
	if after.Batches-before.Batches != 3 {
		t.Fatalf("global batch count advanced by %d, want 3", after.Batches-before.Batches)
	}
	if after.GenNS <= before.GenNS {
		t.Fatalf("global generation time did not advance")
	}
}
