package montecarlo

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"ecripse/internal/linalg"
	"ecripse/internal/randx"
	"ecripse/internal/stats"
)

// TestParForCoversAllIndices: every index runs exactly once, for worker
// counts spanning inline, clamped and oversubscribed cases.
func TestParForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		const n = 93
		var hits [n]int32
		ParFor(workers, n, func(w, i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
	ParFor(4, 0, func(w, i int) { t.Fatal("fn called for n=0") })
}

// TestParForSlotDeterminism: a function that writes substream-derived data
// into its own slot produces identical output at any worker count.
func TestParForSlotDeterminism(t *testing.T) {
	run := func(workers int) []float64 {
		const n = 500
		out := make([]float64, n)
		streams := randx.NewStreams(3, ClampWorkers(workers, n))
		ParFor(workers, n, func(w, i int) {
			out[i] = streams.At(w, uint64(i)).NormFloat64()
		})
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 3, 8} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("ParFor output differs at workers=%d", workers)
		}
	}
}

// TestNaiveParallelWorkerInvariance: the estimate must be bit-identical for
// any worker count — the post-rework contract (the old implementation was
// only deterministic per (seed, workers) pair).
func TestNaiveParallelWorkerInvariance(t *testing.T) {
	trial := func(rng *rand.Rand) bool { return rng.NormFloat64() > 1.5 }
	var c Counter
	want := NaiveParallel(7, trial, 20000, 1, &c)
	for _, workers := range []int{2, 3, 8} {
		got := NaiveParallel(7, trial, 20000, workers, &c)
		if got.P != want.P || got.CI95 != want.CI95 || got.N != want.N {
			t.Fatalf("workers=%d: %+v != %+v", workers, got, want)
		}
	}
	// And the statistics must be right: P(Z > 1.5) ≈ 0.0668.
	if math.Abs(want.P-0.0668) > 0.005 {
		t.Fatalf("P = %v, want ≈ 0.0668", want.P)
	}
}

// gaussianBump is a minimal deterministic proposal for sampler tests.
type gaussianBump struct{ dim int }

func (g gaussianBump) Sample(rng *rand.Rand) linalg.Vector {
	x := make(linalg.Vector, g.dim)
	for i := range x {
		x[i] = 2 + rng.NormFloat64()
	}
	return x
}

func (g gaussianBump) LogPDF(x linalg.Vector) float64 {
	q := 0.0
	for _, v := range x {
		q += (v - 2) * (v - 2)
	}
	return -0.5*q - 0.5*float64(g.dim)*randx.Log2Pi
}

// TestImportanceSampleParWorkerInvariance: series and estimate bit-identical
// across worker counts, including the recorded points.
func TestImportanceSampleParWorkerInvariance(t *testing.T) {
	run := func(workers int) stats.Series {
		var c Counter
		value := func(rng *rand.Rand, k int, x linalg.Vector) float64 {
			c.Add(1) // pretend every draw simulates once
			if x.Norm() > 3 {
				return 1
			}
			return 0
		}
		return ImportanceSamplePar(context.Background(), gaussianBump{dim: 4}, value, 3000,
			ParOptions{Seed: 11, Workers: workers, Batch: 128}, &c, 500)
	}
	want := run(1)
	if len(want) == 0 || want.Final().P <= 0 {
		t.Fatalf("degenerate baseline series: %+v", want)
	}
	for _, workers := range []int{2, 5, 8} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("series differs at workers=%d:\n got  %+v\n want %+v", workers, got, want)
		}
	}
}

// TestImportanceSampleParFlushBarrier: Flush must see contiguous, in-order,
// non-overlapping ranges covering [0, n) exactly once, after all samples of
// the range have been evaluated.
func TestImportanceSampleParFlushBarrier(t *testing.T) {
	const n, batch = 1000, 128
	var c Counter
	done := make([]int32, n)
	next := 0
	value := func(rng *rand.Rand, k int, x linalg.Vector) float64 {
		atomic.StoreInt32(&done[k], 1)
		return 0
	}
	flush := func(lo, hi int) {
		if lo != next {
			t.Fatalf("flush [%d,%d): expected lo=%d", lo, hi, next)
		}
		for k := lo; k < hi; k++ {
			if atomic.LoadInt32(&done[k]) != 1 {
				t.Fatalf("flush [%d,%d): sample %d not evaluated yet", lo, hi, k)
			}
		}
		next = hi
	}
	ImportanceSamplePar(context.Background(), gaussianBump{dim: 2}, value, n,
		ParOptions{Seed: 1, Workers: 4, Batch: batch, Flush: flush}, &c, 0)
	if next != n {
		t.Fatalf("flush covered [0,%d), want [0,%d)", next, n)
	}
}

// TestImportanceSampleParCancellation: a cancelled context stops the run at
// a batch boundary with a partial, finishable series.
func TestImportanceSampleParCancellation(t *testing.T) {
	var c Counter
	ctx, cancel := context.WithCancel(context.Background())
	evals := int32(0)
	value := func(rng *rand.Rand, k int, x linalg.Vector) float64 {
		if atomic.AddInt32(&evals, 1) == 200 {
			cancel()
		}
		c.Add(1)
		return 1
	}
	series := ImportanceSamplePar(ctx, gaussianBump{dim: 2}, value, 100000,
		ParOptions{Seed: 5, Workers: 4, Batch: 64}, &c, 0)
	total := atomic.LoadInt32(&evals)
	if total >= 100000 {
		t.Fatal("cancellation did not stop the run")
	}
	// The in-flight batch completes, so the evaluation count lands on a
	// batch boundary — the deterministic-stop property.
	if total%64 != 0 {
		t.Fatalf("stopped mid-batch after %d evaluations", total)
	}
	if len(series) == 0 {
		t.Fatal("partial run recorded no series")
	}
}

// TestGMMLogPDFConcurrent exercises the lazy prepare() from many goroutines;
// under -race this is the regression test for the sync.Once fix.
func TestGMMLogPDFConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := &GMM{Sigma: linalg.Vector{0.5, 0.5, 0.5}}
	for i := 0; i < 20; i++ {
		g.Means = append(g.Means, randx.NormalVector(rng, 3))
	}
	x := linalg.Vector{0.1, -0.2, 0.3}
	got := make([]float64, 64)
	ParFor(8, 64, func(w, i int) {
		got[i] = g.LogPDF(x)
	})
	want := g.LogPDF(x)
	if math.IsNaN(want) || math.IsInf(want, 0) {
		t.Fatalf("LogPDF degenerate: %v", want)
	}
	for i, v := range got {
		if v != want {
			t.Fatalf("concurrent LogPDF %d inconsistent: %v vs %v", i, v, want)
		}
	}
}
