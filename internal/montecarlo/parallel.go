package montecarlo

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"ecripse/internal/linalg"
	"ecripse/internal/randx"
	"ecripse/internal/stats"
)

// ParFor evaluates fn(worker, i) for every i in [0, n) across workers
// goroutines (0 = GOMAXPROCS; clamped to n). Indices are handed out
// dynamically from a shared atomic counter, so uneven per-index cost —
// classified-for-free versus fully simulated samples — load-balances
// automatically. Determinism is the caller's contract: fn must confine its
// effects to index-i state (write slot i, draw from substream i), so the
// outcome is independent of which worker runs which index and of the order
// indices complete. workers == 1 runs inline with no goroutines.
func ParFor(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// ClampWorkers resolves a worker-count option against a unit-of-work count:
// 0 (or negative) means GOMAXPROCS, and the result never exceeds n or drops
// below 1. Callers use it to size per-worker scratch before a ParFor.
func ClampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// NaiveParallel runs n naive Monte Carlo trials across workers goroutines
// (0 = GOMAXPROCS) and merges the results. Each trial draws from its own
// counter-based substream keyed by the global trial index, so the estimate
// depends only on (seed, n) — bit-identical at any worker count. The trial
// function must be safe for concurrent use (the SRAM indicator is: cells are
// never mutated during evaluation).
//
// Unlike Naive, no intermediate convergence series is recorded — parallel
// runs are for bulk reference computations where only the final estimate
// matters.
func NaiveParallel(seed int64, trial Trial, n, workers int, c *Counter) stats.Estimate {
	if n <= 0 {
		return stats.Estimate{Sims: c.Count()}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	// Per-worker tallies, merged after the barrier — no shared mutable state
	// inside the loop beyond the atomic index cursor.
	fails := make([]int, workers)
	streams := randx.NewStreams(seed, workers)
	ParFor(workers, n, func(w, k int) {
		if trial(streams.At(w, uint64(k))) {
			fails[w]++
		}
	})
	total := 0
	for _, f := range fails {
		total += f
	}
	var run stats.Running
	for i := 0; i < total; i++ {
		run.Add(1)
	}
	for i := total; i < n; i++ {
		run.Add(0)
	}
	return stats.Estimate{
		P: run.Mean(), CI95: run.CI95(), RelErr: run.RelErr(),
		N: n, Sims: c.Count(),
	}
}

// IndexedValue evaluates one importance-sampling draw: rng is positioned on
// the substream of global sample index k, and x is the proposal draw made
// from that same substream. The return is the (conditional) failure value in
// [0, 1], as in Value.
type IndexedValue func(rng *rand.Rand, k int, x linalg.Vector) float64

// ParOptions configures ImportanceSamplePar.
type ParOptions struct {
	// Seed keys every per-sample substream; same seed ⇒ same result.
	Seed int64
	// Workers is the goroutine count (0 = GOMAXPROCS, 1 = inline serial).
	Workers int
	// Batch is the barrier size in samples. It must not depend on Workers —
	// adaptive state evolves at batch boundaries, so changing it changes the
	// result (deterministically). 0 selects DefaultBatch.
	Batch int
	// Flush, if set, is called after each batch's samples [lo, hi) have all
	// been evaluated and before their terms are folded into the estimate.
	// This is the barrier where the caller applies deferred stateful work
	// (classifier updates) in index order.
	Flush func(lo, hi int)
	// OnBatch, if set, is called after each batch's terms have been folded,
	// with the number of samples consumed so far and the estimator state as a
	// Point (Sims carries the counter's simulation count). It runs on the
	// barrier (single-threaded) and sees deterministic values, so it is safe
	// to stream as a convergence diagnostic without perturbing results.
	OnBatch func(samples int, pt stats.Point)
	// PipeStats, if set, receives the overlap/stall tally of a pipelined
	// run (ImportanceSampleParPipelined only). Wall-clock, observational:
	// the drivers never read it back.
	PipeStats *PipelineStats
}

// DefaultBatch is the stage-2 barrier size: small enough that the classifier
// adapts throughout the run and budget stops stay tight, large enough that
// barrier synchronization is noise against per-sample simulation cost.
const DefaultBatch = 256

// ImportanceSamplePar estimates E_P[value] with n draws from proposal q
// (paper eq. (19)) evaluated in parallel batches. Sample k draws x_k and any
// evaluation randomness from substream (Seed, k) and writes only its own
// term slot, so the estimate — including the recorded convergence series —
// is bit-identical for any Workers setting. Within a batch all samples see
// the caller's state as frozen at the batch start; Flush runs at the barrier.
//
// Cancellation is checked at batch boundaries only: a fired context (or a
// Counter budget, which cancels via SetLimit) lets the in-flight batch
// complete and then returns the partial series — a deterministic stop,
// because batch membership does not depend on scheduling.
func ImportanceSamplePar(ctx context.Context, q Proposal, value IndexedValue, n int, po ParOptions, c *Counter, recordEvery int) stats.Series {
	if recordEvery <= 0 {
		recordEvery = n/50 + 1
	}
	batch := po.Batch
	if batch <= 0 {
		batch = DefaultBatch
	}
	workers := po.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	terms := make([]float64, batch)
	streams := randx.NewStreams(po.Seed, workers)
	var run stats.Running
	var series stats.Series
	recorded := 0 // samples folded at the last recorded point
	for lo := 0; lo < n; lo += batch {
		if ctx.Err() != nil {
			return finishSeries(series, &run, c)
		}
		hi := lo + batch
		if hi > n {
			hi = n
		}
		ParFor(workers, hi-lo, func(w, i int) {
			k := lo + i
			rng := streams.At(w, uint64(k))
			x := q.Sample(rng)
			v := value(rng, k, x)
			term := 0.0
			if v > 0 {
				logW := randx.StdNormalLogPDF(x) - q.LogPDF(x)
				term = v * math.Exp(logW)
			}
			terms[i] = term
		})
		if po.Flush != nil {
			po.Flush(lo, hi)
		}
		// Merge strictly in index order: Welford folding is floating-point
		// order-sensitive, so this is part of the determinism contract.
		for i := 0; i < hi-lo; i++ {
			run.Add(terms[i])
		}
		// Record at batch boundaries. The simulation-count coordinate is
		// exact here: every simulation of samples < hi has completed and
		// none of sample >= hi has started.
		pt := stats.Point{
			Sims: c.Count(), P: run.Mean(), CI95: run.CI95(), RelErr: run.RelErr(), Var: run.Var(),
		}
		if po.OnBatch != nil {
			po.OnBatch(hi, pt)
		}
		if hi/recordEvery > recorded/recordEvery || hi == n {
			series = append(series, pt)
		}
		recorded = hi
	}
	return series
}
