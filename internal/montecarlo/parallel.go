package montecarlo

import (
	"math/rand"
	"runtime"
	"sync"

	"ecripse/internal/stats"
)

// NaiveParallel runs n naive Monte Carlo trials across workers goroutines
// (0 = GOMAXPROCS), each with its own deterministic substream derived from
// seed, and merges the results. The trial function must be safe for
// concurrent use (the SRAM indicator is: cells are never mutated during
// evaluation). The result is deterministic for a fixed (seed, workers)
// pair.
//
// Unlike Naive, no intermediate convergence series is recorded — parallel
// runs are for bulk reference computations where only the final estimate
// matters.
func NaiveParallel(seed int64, trial Trial, n, workers int, c *Counter) stats.Estimate {
	if n <= 0 {
		return stats.Estimate{Sims: c.Count()}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	type partial struct {
		n     int
		fails int
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	var mu sync.Mutex // serializes the shared counter
	per := n / workers
	extra := n % workers

	for w := 0; w < workers; w++ {
		count := per
		if w < extra {
			count++
		}
		wg.Add(1)
		go func(w, count int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*0x3779B97F4A7C15))
			local := partial{}
			for i := 0; i < count; i++ {
				if trial(rng) {
					local.fails++
				}
				local.n++
			}
			mu.Lock()
			parts[w] = local
			mu.Unlock()
		}(w, count)
	}
	wg.Wait()

	total, fails := 0, 0
	for _, p := range parts {
		total += p.n
		fails += p.fails
	}
	var run stats.Running
	for i := 0; i < fails; i++ {
		run.Add(1)
	}
	for i := fails; i < total; i++ {
		run.Add(0)
	}
	return stats.Estimate{
		P: run.Mean(), CI95: run.CI95(), RelErr: run.RelErr(),
		N: total, Sims: c.Count(),
	}
}
