package montecarlo

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"ecripse/internal/linalg"
	"ecripse/internal/randx"
	"ecripse/internal/stats"
)

// PipelinedValue splits StagedValue's Prepare into the two halves the
// double-buffered driver overlaps:
//
//   - Generate(rng, k, x) is the classifier-independent half: it must
//     consume exactly the randomness Prepare would for sample k (so the
//     staged and pipelined paths stay bit-identical) and stage the sample's
//     raw draws in slot k — but it must not read any state that a flush
//     barrier mutates. It runs concurrently with the previous batch's
//     Resolve/Value/Flush, so this restriction is load-bearing.
//   - Score(w, k) is the classifier-dependent half: it labels sample k's
//     staged draws against state frozen at the last flush barrier,
//     classifying what it can and parking the rest for Resolve. w is the
//     worker index (for per-worker scratch); distinct k are scored
//     concurrently, always after the barrier that precedes their batch.
//
// Resolve and Value keep the StagedValue contract. A batch's slots must
// survive one extra barrier window: the ring a PipelinedValue sizes has to
// span two batches, because batch k+1 generates while batch k is still
// being read.
type PipelinedValue interface {
	Generate(rng *rand.Rand, k int, x linalg.Vector)
	Score(w, k int)
	Resolve(lo, hi int)
	Value(k int, x linalg.Vector) float64
}

// PipelineStats accumulates the pipelined driver's overlap accounting. All
// fields are wall-clock (except Batches) and therefore observational only:
// they must never enter content-addressed results. Batches is a
// deterministic count of completed barrier windows.
type PipelineStats struct {
	Batches  int64 // barrier windows driven to completion
	GenNS    int64 // wall ns generating and staging next-batch draws
	StallNS  int64 // wall ns the barrier waited on an unfinished generation
	SettleNS int64 // wall ns settling deferred indicator work (Resolve)
}

// OverlapFraction is the share of generation wall-clock hidden behind
// barrier settlement: 1 − Stall/Gen, clamped to [0, 1]. Zero when no
// generation ran.
func (p PipelineStats) OverlapFraction() float64 {
	if p.GenNS <= 0 {
		return 0
	}
	f := 1 - float64(p.StallNS)/float64(p.GenNS)
	return math.Min(1, math.Max(0, f))
}

// StallFraction is the complementary view OverlapFraction hides: wall-clock
// the barrier spent waiting on generation, as a share of generation time.
// Zero when no generation ran; can exceed 1 on a badly starved pipeline.
// The health watchdog's pipeline_stall rule thresholds this number.
func (p PipelineStats) StallFraction() float64 {
	if p.GenNS <= 0 {
		return 0
	}
	return float64(p.StallNS) / float64(p.GenNS)
}

// add folds another tally in.
func (p *PipelineStats) add(o PipelineStats) {
	p.Batches += o.Batches
	p.GenNS += o.GenNS
	p.StallNS += o.StallNS
	p.SettleNS += o.SettleNS
}

// totalPipeline is the process-wide tally behind TotalPipelineStats, folded
// once per pipelined run (never per batch).
var totalPipeline struct {
	batches, gen, stall, settle atomic.Int64
}

// TotalPipelineStats reports the process-wide pipelined-execution totals
// since start — the figures the service's /metrics endpoint exposes.
func TotalPipelineStats() PipelineStats {
	return PipelineStats{
		Batches:  totalPipeline.batches.Load(),
		GenNS:    totalPipeline.gen.Load(),
		StallNS:  totalPipeline.stall.Load(),
		SettleNS: totalPipeline.settle.Load(),
	}
}

// recordPipelineTotals folds one run's tally into the process-wide counters.
func recordPipelineTotals(p PipelineStats) {
	totalPipeline.batches.Add(p.Batches)
	totalPipeline.gen.Add(p.GenNS)
	totalPipeline.stall.Add(p.StallNS)
	totalPipeline.settle.Add(p.SettleNS)
}

// ImportanceSampleParPipelined is ImportanceSampleParStaged with the batch
// barrier double-buffered: while batch k's deferred indicator work settles
// (Resolve), its terms assemble and its classifier updates replay, the
// workers are already generating batch k+1's proposal draws and staging
// their evaluation points — a pure function of (Seed, sample index), which
// is why it may run before the barrier lands. Scoring of batch k+1
// happens only after batch k's Flush, exactly where the staged driver
// would run it, so the estimate, the recorded series and every classifier
// decision are bit-identical to the staged (and scalar) drivers at any
// Workers setting.
//
// The importance weight exp(log φ(x) − log q(x)) is evaluated lazily on
// the settle side, only for samples whose value is positive — exactly as
// the staged driver does. Hoisting it into generation would be
// bit-identical too, but it would evaluate the proposal log-density for
// every draw instead of the positive few, and that extra work costs more
// than the overlap hides on most workloads.
//
// Overlap accounting lands in po.PipeStats when set, and always in the
// process-wide TotalPipelineStats totals.
func ImportanceSampleParPipelined(ctx context.Context, q Proposal, pv PipelinedValue, n int, po ParOptions, c *Counter, recordEvery int) stats.Series {
	if recordEvery <= 0 {
		recordEvery = n/50 + 1
	}
	batch := po.Batch
	if batch <= 0 {
		batch = DefaultBatch
	}
	workers := po.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Double buffers: batch k reads parity k%2 while batch k+1 generates
	// into the other. terms is only touched between Resolve and the fold,
	// never by the generator, so one buffer suffices.
	var xs [2][]linalg.Vector
	for p := range xs {
		xs[p] = make([]linalg.Vector, batch)
	}
	terms := make([]float64, batch)
	// The stream pool is touched only by generation passes, which never
	// overlap each other (each is awaited before the next launches) — the
	// settlement half of the pipeline draws no randomness.
	streams := randx.NewStreams(po.Seed, workers)

	gen := func(p, lo, hi int) {
		ParFor(workers, hi-lo, func(w, i int) {
			k := lo + i
			rng := streams.At(w, uint64(k))
			x := q.Sample(rng)
			xs[p][i] = x
			pv.Generate(rng, k, x)
		})
	}
	score := func(lo, hi int) {
		ParFor(workers, hi-lo, func(w, i int) {
			pv.Score(w, lo+i)
		})
	}

	var ps PipelineStats
	defer func() {
		if po.PipeStats != nil {
			po.PipeStats.add(ps)
		}
		recordPipelineTotals(ps)
	}()

	// In-flight generation of the next batch: genDone is non-nil while one
	// runs; genDur is written by the goroutine before the close, so the
	// channel receive orders the read.
	var genDone chan struct{}
	var genDur time.Duration
	launch := func(p, lo, hi int) {
		done := make(chan struct{})
		genDone = done
		go func() {
			t0 := time.Now()
			gen(p, lo, hi)
			genDur = time.Since(t0)
			close(done)
		}()
	}
	waitGen := func() {
		if genDone == nil {
			return
		}
		t0 := time.Now()
		<-genDone
		genDone = nil
		ps.StallNS += int64(time.Since(t0))
		ps.GenNS += int64(genDur)
	}

	var run stats.Running
	var series stats.Series
	recorded := 0

	// Prologue: batch 0 has nothing to hide behind — generate and score it
	// in line.
	if n > 0 {
		hi0 := batch
		if hi0 > n {
			hi0 = n
		}
		t0 := time.Now()
		gen(0, 0, hi0)
		ps.GenNS += int64(time.Since(t0))
		score(0, hi0)
	}

	for lo := 0; lo < n; lo += batch {
		if ctx.Err() != nil {
			waitGen()
			return finishSeries(series, &run, c)
		}
		p := (lo / batch) % 2
		hi := lo + batch
		if hi > n {
			hi = n
		}
		// Overlap: batch k+1's draws and log-densities generate while batch
		// k settles below.
		if hi < n {
			nhi := hi + batch
			if nhi > n {
				nhi = n
			}
			launch(1-p, hi, nhi)
		}
		t0 := time.Now()
		pv.Resolve(lo, hi)
		ps.SettleNS += int64(time.Since(t0))
		ParFor(workers, hi-lo, func(w, i int) {
			v := pv.Value(lo+i, xs[p][i])
			term := 0.0
			if v > 0 {
				logW := randx.StdNormalLogPDF(xs[p][i]) - q.LogPDF(xs[p][i])
				term = v * math.Exp(logW)
			}
			terms[i] = term
		})
		if po.Flush != nil {
			po.Flush(lo, hi)
		}
		for i := 0; i < hi-lo; i++ {
			run.Add(terms[i])
		}
		pt := stats.Point{
			Sims: c.Count(), P: run.Mean(), CI95: run.CI95(), RelErr: run.RelErr(), Var: run.Var(),
		}
		if po.OnBatch != nil {
			po.OnBatch(hi, pt)
		}
		if hi/recordEvery > recorded/recordEvery || hi == n {
			series = append(series, pt)
		}
		recorded = hi
		ps.Batches++
		// Barrier: batch k+1 may not score before this batch's classifier
		// replay (Flush above) has landed.
		waitGen()
		if hi < n {
			nhi := hi + batch
			if nhi > n {
				nhi = n
			}
			score(hi, nhi)
		}
	}
	return series
}
