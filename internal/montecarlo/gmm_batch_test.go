package montecarlo

import (
	"math"
	"math/rand"
	"testing"

	"ecripse/internal/linalg"
)

// randomGMM builds a mixture with the requested size and weighting,
// including dead (zero-weight) components when weighted.
func randomGMM(rng *rand.Rand, dim, k int, weighted bool) *GMM {
	g := &GMM{Sigma: make(linalg.Vector, dim)}
	for d := range g.Sigma {
		g.Sigma[d] = 0.2 + rng.Float64()
	}
	g.Means = make([]linalg.Vector, k)
	for i := range g.Means {
		m := make(linalg.Vector, dim)
		for d := range m {
			m[d] = 4 * rng.NormFloat64()
		}
		g.Means[i] = m
	}
	if weighted {
		g.Weights = make([]float64, k)
		for i := range g.Weights {
			if rng.Float64() < 0.15 {
				g.Weights[i] = 0 // dead component: skipped by both folds
			} else {
				g.Weights[i] = rng.Float64()
			}
		}
	}
	return g
}

// TestGMMLogPDFBatchedMatchesScalar pins the staged LogPDF (SoA quadratics
// plus one batched exp sweep) bit-for-bit against the scalar reference fold
// across mixture sizes, weightings, and query points from the bulk to the
// far tail (where the −40 cutoff and the running rescale fire).
func TestGMMLogPDFBatchedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, dim := range []int{1, 2, 6} {
		for _, k := range []int{1, 5, 8, 9, 64, 301} {
			for _, weighted := range []bool{false, true} {
				g := randomGMM(rng, dim, k, weighted)
				for trial := 0; trial < 40; trial++ {
					x := make(linalg.Vector, dim)
					scale := 1.0
					if trial%3 == 1 {
						scale = 20 // tail: spreads the component log-densities far past the cutoff
					}
					for d := range x {
						x[d] = scale * rng.NormFloat64()
					}
					got := g.LogPDF(x)
					want := g.logPDFScalar(x)
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("dim=%d k=%d weighted=%v x=%v: batched %v (%#x) != scalar %v (%#x)",
							dim, k, weighted, x, got, math.Float64bits(got), want, math.Float64bits(want))
					}
				}
			}
		}
	}
}

// TestGMMLogPDFBatchedSpecials exercises the degenerate inputs the scalar
// fold defines behavior for: all-dead mixtures (−Inf), NaN and infinite
// query coordinates.
func TestGMMLogPDFBatchedSpecials(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	dead := randomGMM(rng, 3, 16, true)
	for i := range dead.Weights {
		dead.Weights[i] = 0
	}
	if got := dead.LogPDF(linalg.Vector{0, 0, 0}); !math.IsInf(got, -1) {
		t.Fatalf("all-dead mixture: got %v want -Inf", got)
	}

	g := randomGMM(rng, 3, 33, false)
	for _, x := range []linalg.Vector{
		{math.NaN(), 0, 0},
		{math.Inf(1), 0, 0},
		{math.Inf(-1), 1, 2},
	} {
		got := g.LogPDF(x)
		want := g.logPDFScalar(x)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("x=%v: batched %v != scalar %v", x, got, want)
		}
	}
}

func BenchmarkGMMLogPDF(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	g := randomGMM(rng, 6, 600, true)
	x := make(linalg.Vector, 6)
	for d := range x {
		x[d] = 2 * rng.NormFloat64()
	}
	g.LogPDF(x) // warm the caches
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.LogPDF(x)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.logPDFScalar(x)
		}
	})
}
