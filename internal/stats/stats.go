// Package stats implements the statistical accounting shared by every
// estimator in this repository: running moments, Monte Carlo and
// importance-sampling estimators with 95 % confidence intervals, the paper's
// relative-error figure of merit (the ratio of the 95 % confidence interval
// to the estimate, Fig. 6(b)), histograms and convergence series.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Z95 is the two-sided 95 % standard-normal quantile used for confidence
// intervals throughout the paper's evaluation.
const Z95 = 1.959963984540054

// Running accumulates mean and variance online (Welford's algorithm).
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance (0 for fewer than 2 samples).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// StdErr returns the standard error of the mean.
func (r *Running) StdErr() float64 {
	if r.n == 0 {
		return 0
	}
	return r.Std() / math.Sqrt(float64(r.n))
}

// CI95 returns the half-width of the 95 % confidence interval of the mean.
func (r *Running) CI95() float64 { return Z95 * r.StdErr() }

// RelErr returns the paper's relative-error metric: the 95 % CI half-width
// divided by the estimate. It returns +Inf while the estimate is zero.
func (r *Running) RelErr() float64 {
	if r.mean == 0 {
		return math.Inf(1)
	}
	return r.CI95() / math.Abs(r.mean)
}

// Estimate bundles a point estimate with its confidence interval; this is
// the row format every experiment harness prints.
type Estimate struct {
	P      float64 // estimated failure probability
	CI95   float64 // 95% confidence half-width
	RelErr float64 // CI95 / P
	N      int     // samples used by the estimator
	Sims   int64   // transistor-level simulations consumed
}

// String renders the estimate in the form used by the cmd/ harnesses.
func (e Estimate) String() string {
	return fmt.Sprintf("Pfail=%.4e  CI95=±%.4e  relerr=%.4f  N=%d  sims=%d",
		e.P, e.CI95, e.RelErr, e.N, e.Sims)
}

// FromRunning converts accumulated observations into an Estimate.
func FromRunning(r *Running, sims int64) Estimate {
	return Estimate{P: r.Mean(), CI95: r.CI95(), RelErr: r.RelErr(), N: r.N(), Sims: sims}
}

// Point is one step of a convergence series: the estimator state after a
// given number of transistor-level simulations. Figures 6 and 7 of the paper
// are plots of these series.
type Point struct {
	Sims   int64
	P      float64
	CI95   float64
	RelErr float64
	// Var is the unbiased sample variance of the estimator's terms at this
	// point — for importance sampling, the weight variance, the convergence
	// diagnostic that stalls when the proposal has stopped matching the
	// integrand. Deterministic, so safe to persist alongside the estimate.
	Var float64
}

// Series is an ordered convergence trace.
type Series []Point

// Final returns the last point, or a zero Point for an empty series.
func (s Series) Final() Point {
	if len(s) == 0 {
		return Point{}
	}
	return s[len(s)-1]
}

// SimsToRelErr returns the smallest simulation count at which the series
// reaches relative error <= target, or (0, false) if it never does.
func (s Series) SimsToRelErr(target float64) (int64, bool) {
	for _, p := range s {
		if p.RelErr <= target && p.P > 0 {
			return p.Sims, true
		}
	}
	return 0, false
}

// SimsToRelErrStable returns the simulation count of the first point from
// which the relative error stays at or below target for the remainder of
// the series. Early points of a rare-event trace can have spuriously small
// confidence intervals (few or no hits yet), so the stable crossing is the
// honest cost-to-accuracy metric.
func (s Series) SimsToRelErrStable(target float64) (int64, bool) {
	idx := -1
	for i := len(s) - 1; i >= 0; i-- {
		if s[i].RelErr <= target && s[i].P > 0 {
			idx = i
		} else {
			break
		}
	}
	if idx < 0 {
		return 0, false
	}
	return s[idx].Sims, true
}

// Histogram is a fixed-width bin histogram over [Min, Max).
type Histogram struct {
	Min, Max float64
	Counts   []int
	under    int
	over     int
	total    int
}

// NewHistogram creates a histogram with n bins spanning [min, max).
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 || !(max > min) {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Min:
		h.under++
	case x >= h.Max:
		h.over++
	default:
		i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if i == len(h.Counts) { // boundary guard
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// OutOfRange returns the counts below Min and at/above Max.
func (h *Histogram) OutOfRange() (under, over int) { return h.under, h.over }

// Quantile returns the q-th sample quantile (0 <= q <= 1) of xs using linear
// interpolation. It panics on an empty slice or out-of-range q.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for n < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}
