package stats

import "math"

// Array-level yield utilities: converting a per-cell failure probability
// into the survival probability of a memory array, with and without
// error-correcting codes. These are the numbers a designer actually signs
// off on — the paper's motivation ("tens of megabytes of on-chip cache"
// makes even 1e-4 per-cell failure catastrophic).

// ArrayYield returns the probability that an array of cells bits has no
// failing cell: (1 − pCell)^cells, computed in log space for numerical
// stability at large cell counts.
func ArrayYield(pCell float64, cells float64) float64 {
	if pCell <= 0 {
		return 1
	}
	if pCell >= 1 {
		return 0
	}
	return math.Exp(cells * math.Log1p(-pCell))
}

// ECCWordYield returns the probability that a word of wordBits survives
// when the code corrects up to correctable failing bits:
// Σ_{k=0..t} C(n,k) p^k (1−p)^(n−k).
func ECCWordYield(pCell float64, wordBits, correctable int) float64 {
	if pCell <= 0 {
		return 1
	}
	if pCell >= 1 {
		return 0
	}
	if correctable >= wordBits {
		return 1
	}
	sum := 0.0
	logP := math.Log(pCell)
	logQ := math.Log1p(-pCell)
	for k := 0; k <= correctable; k++ {
		lc := logChoose(wordBits, k)
		sum += math.Exp(lc + float64(k)*logP + float64(wordBits-k)*logQ)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// ECCArrayYield returns the yield of an array of words wordBits wide with
// t-bit correction per word.
func ECCArrayYield(pCell float64, words float64, wordBits, correctable int) float64 {
	pw := ECCWordYield(pCell, wordBits, correctable)
	if pw <= 0 {
		return 0
	}
	return math.Exp(words * math.Log(pw))
}

// CellsForYield returns the largest array size (in cells) that still meets
// the target yield without ECC: n = log(yield)/log(1−pCell).
func CellsForYield(pCell, targetYield float64) float64 {
	if pCell <= 0 {
		return math.Inf(1)
	}
	if pCell >= 1 || targetYield >= 1 {
		return 0
	}
	return math.Log(targetYield) / math.Log1p(-pCell)
}

func logChoose(n, k int) float64 {
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln - lk - lnk
}
