package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRunningAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var r Running
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 5
		r.Add(xs[i])
	}
	if r.N() != len(xs) {
		t.Fatalf("N = %d", r.N())
	}
	if m := Mean(xs); math.Abs(r.Mean()-m) > 1e-12 {
		t.Fatalf("mean %v vs %v", r.Mean(), m)
	}
	if v := Variance(xs); math.Abs(r.Var()-v) > 1e-9 {
		t.Fatalf("var %v vs %v", r.Var(), v)
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.StdErr() != 0 {
		t.Fatal("empty Running not zero")
	}
	r.Add(4)
	if r.Mean() != 4 || r.Var() != 0 {
		t.Fatalf("single obs: mean %v var %v", r.Mean(), r.Var())
	}
}

func TestRunningCI95Coverage(t *testing.T) {
	// Empirical coverage of the CI over repeated experiments should be ~95%.
	rng := rand.New(rand.NewSource(2))
	const trials = 2000
	covered := 0
	for i := 0; i < trials; i++ {
		var r Running
		for j := 0; j < 100; j++ {
			r.Add(rng.NormFloat64())
		}
		if math.Abs(r.Mean()) <= r.CI95() {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.92 || frac > 0.98 {
		t.Fatalf("coverage = %v", frac)
	}
}

func TestRelErr(t *testing.T) {
	var r Running
	if !math.IsInf(r.RelErr(), 1) {
		t.Fatal("empty RelErr not +Inf")
	}
	for i := 0; i < 100; i++ {
		r.Add(float64(i % 2)) // mean 0.5
	}
	want := r.CI95() / 0.5
	if math.Abs(r.RelErr()-want) > 1e-15 {
		t.Fatalf("RelErr = %v want %v", r.RelErr(), want)
	}
}

func TestEstimateString(t *testing.T) {
	e := Estimate{P: 1.33e-4, CI95: 1e-6, RelErr: 0.0075, N: 1000, Sims: 24000}
	s := e.String()
	for _, want := range []string{"1.3300e-04", "sims=24000", "relerr=0.0075"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestSeriesSimsToRelErr(t *testing.T) {
	s := Series{
		{Sims: 100, P: 1e-4, RelErr: 0.5},
		{Sims: 1000, P: 1.2e-4, RelErr: 0.05},
		{Sims: 10000, P: 1.3e-4, RelErr: 0.008},
	}
	n, ok := s.SimsToRelErr(0.01)
	if !ok || n != 10000 {
		t.Fatalf("got %d %v", n, ok)
	}
	if _, ok := s.SimsToRelErr(0.001); ok {
		t.Fatal("unexpected success for unreachable target")
	}
	if got := s.Final(); got.Sims != 10000 {
		t.Fatalf("Final = %+v", got)
	}
	if got := (Series{}).Final(); got.Sims != 0 {
		t.Fatalf("empty Final = %+v", got)
	}
}

func TestSeriesSimsToRelErrIgnoresZeroEstimate(t *testing.T) {
	s := Series{{Sims: 10, P: 0, RelErr: 0}}
	if _, ok := s.SimsToRelErr(0.5); ok {
		t.Fatal("zero-estimate point must not satisfy the target")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(10)
	h.Add(11)
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("bin %d count %d", i, c)
		}
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Fatalf("out of range %d %d", under, over)
	}
	if h.Total() != 13 {
		t.Fatalf("total %d", h.Total())
	}
}

func TestHistogramBoundary(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	h.Add(math.Nextafter(1, 0)) // just below max: last bin
	if h.Counts[2] != 1 {
		t.Fatalf("counts %v", h.Counts)
	}
}

func TestHistogramInvalidShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 0, 5)
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 3 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 2 {
		t.Fatalf("q.5 = %v", q)
	}
	if q := Quantile(xs, 0.25); math.Abs(q-1.5) > 1e-15 {
		t.Fatalf("q.25 = %v", q)
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, tc := range []struct {
		xs []float64
		q  float64
	}{{nil, 0.5}, {[]float64{1}, -0.1}, {[]float64{1}, 1.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %v q=%v", tc.xs, tc.q)
				}
			}()
			Quantile(tc.xs, tc.q)
		}()
	}
}

// Property: Running mean is always between min and max of inputs.
func TestPropertyRunningMeanBounded(t *testing.T) {
	f := func(raw []float64) bool {
		var r Running
		lo, hi := math.Inf(1), math.Inf(-1)
		n := 0
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				continue
			}
			r.Add(x)
			n++
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if n == 0 {
			return true
		}
		return r.Mean() >= lo-1e-9*(math.Abs(lo)+1) && r.Mean() <= hi+1e-9*(math.Abs(hi)+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is non-negative.
func TestPropertyVarianceNonNegative(t *testing.T) {
	f := func(raw []float64) bool {
		var r Running
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				continue
			}
			r.Add(x)
		}
		return r.Var() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSimsToRelErrStable(t *testing.T) {
	s := Series{
		{Sims: 10, P: 1e-4, RelErr: 0.005}, // spurious early dip
		{Sims: 100, P: 1e-4, RelErr: 0.5},
		{Sims: 1000, P: 1.2e-4, RelErr: 0.05},
		{Sims: 2000, P: 1.2e-4, RelErr: 0.03},
	}
	n, ok := s.SimsToRelErrStable(0.06)
	if !ok || n != 1000 {
		t.Fatalf("got %d %v, want stable crossing at 1000", n, ok)
	}
	// First-crossing metric would be fooled by the dip.
	if first, _ := s.SimsToRelErr(0.06); first != 10 {
		t.Fatalf("first crossing = %d", first)
	}
	if _, ok := s.SimsToRelErrStable(0.001); ok {
		t.Fatal("unreachable target must fail")
	}
}

func TestArrayYield(t *testing.T) {
	// 1 Mb array at p=1e-6: yield = (1-1e-6)^2^20 ≈ e^-1.0486 ≈ 0.3504.
	got := ArrayYield(1e-6, 1<<20)
	if math.Abs(got-0.3504) > 0.001 {
		t.Fatalf("ArrayYield = %v", got)
	}
	if ArrayYield(0, 1e9) != 1 || ArrayYield(1, 10) != 0 {
		t.Fatal("edge cases broken")
	}
}

func TestECCWordYield(t *testing.T) {
	// t=0 reduces to the plain product.
	p := 1e-3
	if got, want := ECCWordYield(p, 64, 0), math.Pow(1-p, 64); math.Abs(got-want) > 1e-12 {
		t.Fatalf("t=0: %v want %v", got, want)
	}
	// Single-error correction on a 72-bit word: survives k<=1 failures.
	n := 72
	want := math.Pow(1-p, float64(n)) + float64(n)*p*math.Pow(1-p, float64(n-1))
	if got := ECCWordYield(p, n, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("t=1: %v want %v", got, want)
	}
	// Full correction is a guaranteed pass.
	if ECCWordYield(0.5, 8, 8) != 1 {
		t.Fatal("t>=n must yield 1")
	}
}

func TestECCArrayYieldImprovesOnRaw(t *testing.T) {
	p := 1e-4        // the paper's regime
	words := 1 << 17 // 1 Mb in 8-bit words... cells = words*8
	raw := ArrayYield(p, float64(words*8))
	ecc := ECCArrayYield(p, float64(words), 8, 1)
	if ecc <= raw {
		t.Fatalf("ECC did not improve yield: %v vs %v", ecc, raw)
	}
	if ecc < 0.95 {
		t.Fatalf("SEC on small words should nearly eliminate loss: %v", ecc)
	}
}

func TestCellsForYield(t *testing.T) {
	p := 1.33e-4 // the paper's RDF-only failure probability
	n := CellsForYield(p, 0.9)
	// Round trip: that many cells must give yield 0.9.
	if got := ArrayYield(p, n); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("round trip yield = %v", got)
	}
	// ~792 cells: the paper's point that 1e-4 per cell is hopeless for MB arrays.
	if n < 700 || n > 900 {
		t.Fatalf("cells for 90%% yield = %v", n)
	}
	if !math.IsInf(CellsForYield(0, 0.9), 1) {
		t.Fatal("p=0 must allow unlimited cells")
	}
}
