package service

import (
	"bytes"
	"encoding/json"
	"testing"
)

// reorderJSON round-trips a canonical spec encoding through a generic map,
// which marshals keys alphabetically — a different field order than the
// struct's declaration order. UseNumber keeps int64 seeds exact.
func reorderJSON(t *testing.T, b []byte) []byte {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.UseNumber()
	var m map[string]any
	if err := dec.Decode(&m); err != nil {
		t.Fatalf("decode spec into map: %v", err)
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("re-marshal map: %v", err)
	}
	return out
}

// FuzzSpecHash checks the invariants the result cache and the persistent
// store both lean on: the normalize→hash pipeline is insensitive to JSON
// field order, Normalize is idempotent, and two specs share a cache key
// exactly when their canonical encodings are byte-identical.
func FuzzSpecHash(f *testing.F) {
	f.Add(0.0, 0.0, "", "", false, 0.0, int64(0), 0, 0, false, int64(0), 0.0, false)
	f.Add(0.7, 300.0, "read", EstSIS, false, 0.0, int64(42), 20000, 0, false, int64(0), 0.0, false)
	f.Add(0.5, 350.0, "hold", EstNaive, true, 0.25, int64(7), 1000, 10, false, int64(500), 0.0, false)
	f.Add(0.6, 0.0, "write", EstECRIPSE, true, 0.0, int64(-3), 0, 0, true, int64(0), 0.5, true)
	f.Add(0.45, 0.0, "read", EstBlockade, false, 0.0, int64(1), 100000, 0, false, int64(0), 0.0, false)

	f.Fuzz(func(t *testing.T, vdd, tempK float64, mode, estimator string, rtn bool,
		alpha float64, seed int64, n, m int, noClassifier bool, maxSims int64,
		sweepAlpha float64, sweep bool) {

		spec := JobSpec{
			Vdd: vdd, TempK: tempK, Mode: mode, Estimator: estimator,
			RTN: rtn, Alpha: alpha, Seed: seed, N: n, M: m,
			NoClassifier: noClassifier, MaxSims: maxSims,
		}
		if sweep {
			spec.Sweep = []float64{sweepAlpha, sweepAlpha / 2}
		}
		if err := spec.Normalize(); err != nil {
			return // invalid input is rejected, not hashed
		}
		key := spec.Key()
		canon, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("normalized spec does not marshal: %v", err)
		}

		// Idempotence: normalizing a normalized spec changes nothing.
		again := spec
		if err := again.Normalize(); err != nil {
			t.Fatalf("re-normalize failed: %v", err)
		}
		if k := again.Key(); k != key {
			t.Fatalf("Normalize is not idempotent: %s -> %s", key, k)
		}

		// Field-order insensitivity: the same spec arriving with JSON keys
		// in any order must land on the same cache key.
		var reordered JobSpec
		if err := json.Unmarshal(reorderJSON(t, canon), &reordered); err != nil {
			t.Fatalf("decode reordered spec: %v", err)
		}
		if err := reordered.Normalize(); err != nil {
			t.Fatalf("reordered spec failed Normalize: %v", err)
		}
		if k := reordered.Key(); k != key {
			t.Fatalf("key depends on field order: %s vs %s\ncanon: %s", key, k, canon)
		}

		// Injectivity on the cache-key path: a spec that differs after
		// normalization must not collide, and equal keys must mean equal
		// canonical bytes.
		distinct := spec
		distinct.Seed = spec.Seed + 1
		if err := distinct.Normalize(); err != nil {
			t.Fatalf("seed perturbation failed Normalize: %v", err)
		}
		if distinct.Key() == key {
			t.Fatalf("distinct specs collided on key %s", key)
		}
		if other, err := json.Marshal(distinct); err == nil && bytes.Equal(other, canon) {
			t.Fatalf("seed perturbation produced identical canonical bytes: %s", canon)
		}
	})
}
