package service

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// sweepGoldenPath is the sweep-equivalence baseline, checked in so CI
// compares every run against the same numbers. Regenerate after an
// intentional estimator or planner change with:
//
//	REGRESS_UPDATE=1 go test -run TestSweepMatchesIndependentPoints ./internal/service/
const sweepGoldenPath = "../../results/golden/sweep_equiv.json"

// sweepGoldenPoint pins one grid point: the warm-started sweep estimate and
// the independent cold run of the identical point spec, as recorded when the
// baseline was written.
type sweepGoldenPoint struct {
	Alpha    float64 `json:"alpha"`
	WarmP    float64 `json:"warm_p"`
	WarmCI95 float64 `json:"warm_ci95"`
	WarmSims int64   `json:"warm_sims"`
	ColdP    float64 `json:"cold_p"`
	ColdCI95 float64 `json:"cold_ci95"`
	ColdSims int64   `json:"cold_sims"`
}

type sweepGolden struct {
	// TolCI is the equivalence band in units of the larger CI95 half-width:
	// warm and cold estimates of the same point (different deterministic
	// random realizations) must satisfy |warm - cold| <= TolCI * max(ci95),
	// and each side must stay within TolCI of its own pinned golden value.
	TolCI  float64            `json:"tol_ci"`
	Base   JobSpec            `json:"base"`
	Points []sweepGoldenPoint `json:"points"`
}

// equivSweepSpec rebuilds the sweep the baseline pins, at the requested
// intra-point parallelism.
func equivSweepSpec(g *sweepGolden, parallelism int) SweepSpec {
	base := g.Base
	base.Parallelism = parallelism
	alphas := make([]float64, len(g.Points))
	for i, p := range g.Points {
		alphas[i] = p.Alpha
	}
	return SweepSpec{Base: base, Alpha: &Axis{Values: alphas}, WarmStart: true}
}

// TestSweepMatchesIndependentPoints is the sweep-equivalence regression
// suite: a warm-started sweep must produce, at every grid point, an estimate
// statistically equivalent to an independent cold run of the same point spec
// (warm seeding reuses the neighbor's boundary knowledge but must not bias
// the estimator), and the whole sweep must be bit-identical at any
// parallelism level. Both sides are pinned against a checked-in golden
// baseline so a bias or variance regression on either path is caught even
// when the two paths drift together. Skipped under -short; REGRESS_UPDATE=1
// rewrites the baseline.
func TestSweepMatchesIndependentPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep equivalence suite skipped in -short mode")
	}

	raw, err := os.ReadFile(sweepGoldenPath)
	if err != nil {
		t.Fatalf("read golden baseline: %v (regenerate with REGRESS_UPDATE=1)", err)
	}
	var golden sweepGolden
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatalf("decode %s: %v", sweepGoldenPath, err)
	}
	update := os.Getenv("REGRESS_UPDATE") != ""
	if (golden.TolCI <= 0 || len(golden.Points) == 0) && !update {
		t.Fatalf("golden baseline malformed: %+v", golden)
	}

	ctx := context.Background()
	start := time.Now()
	warm, err := RunSweepLocal(ctx, equivSweepSpec(&golden, 1), nil)
	if err != nil {
		t.Fatalf("warm sweep: %v", err)
	}
	t.Logf("warm sweep: %d points, %d sims, ~%d saved (%.1fs)",
		len(warm.Points), warm.TotalSims, warm.SimsSaved, time.Since(start).Seconds())

	// Independent cold runs of the identical point specs (the planner's
	// point spec minus the warm linkage fields).
	cold := make([]*RunResult, len(golden.Points))
	for i, gp := range golden.Points {
		spec := golden.Base
		spec.Parallelism = 1
		spec.Sweep = []float64{gp.Alpha}
		out, err := RunSpec(ctx, spec, nil)
		if err != nil {
			t.Fatalf("cold point alpha=%v: %v", gp.Alpha, err)
		}
		cold[i] = out
	}

	for i := range golden.Points {
		gp := &golden.Points[i]
		wp, cp := warm.Points[i], cold[i]
		t.Run(fmt.Sprintf("alpha=%v", gp.Alpha), func(t *testing.T) {
			if update {
				gp.WarmP, gp.WarmCI95, gp.WarmSims = wp.Estimate.P, wp.Estimate.CI95, wp.Estimate.Sims
				gp.ColdP, gp.ColdCI95, gp.ColdSims = cp.Estimate.P, cp.Estimate.CI95, cp.Estimate.Sims
				return
			}
			if wp.Estimate.P <= 0 || cp.Estimate.P <= 0 {
				t.Fatalf("estimate collapsed: warm %v cold %v", wp.Estimate.P, cp.Estimate.P)
			}
			// Warm vs cold equivalence on this run's own numbers.
			bound := golden.TolCI * max(wp.Estimate.CI95, cp.Estimate.CI95)
			if diff := wp.Estimate.P - cp.Estimate.P; diff < -bound || diff > bound {
				t.Errorf("warm sweep diverged from the independent run:\n warm %.6e (CI95 ±%.3e)\n cold %.6e (CI95 ±%.3e)\n |diff| > %g×CI95 = %.3e",
					wp.Estimate.P, wp.Estimate.CI95, cp.Estimate.P, cp.Estimate.CI95, golden.TolCI, bound)
			}
			// Each side against its pinned golden value.
			if diff, b := wp.Estimate.P-gp.WarmP, golden.TolCI*gp.WarmCI95; diff < -b || diff > b {
				t.Errorf("warm estimate drifted from golden: %.6e vs %.6e (band %.3e)", wp.Estimate.P, gp.WarmP, b)
			}
			if diff, b := cp.Estimate.P-gp.ColdP, golden.TolCI*gp.ColdCI95; diff < -b || diff > b {
				t.Errorf("cold estimate drifted from golden: %.6e vs %.6e (band %.3e)", cp.Estimate.P, gp.ColdP, b)
			}
			// A variance blow-up is a regression even when the means agree.
			if gp.WarmCI95 > 0 && wp.Estimate.CI95 > 4*gp.WarmCI95 {
				t.Errorf("warm CI95 blew up: %.3e vs golden %.3e", wp.Estimate.CI95, gp.WarmCI95)
			}
			if gp.ColdCI95 > 0 && cp.Estimate.CI95 > 4*gp.ColdCI95 {
				t.Errorf("cold CI95 blew up: %.3e vs golden %.3e", cp.Estimate.CI95, gp.ColdCI95)
			}
		})
	}

	if update {
		out, err := json.MarshalIndent(golden, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(sweepGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(sweepGoldenPath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", sweepGoldenPath)
		return
	}

	// Parallelism determinism: the whole warm sweep — estimates, costs,
	// warm linkage, sims-saved accounting — must be bit-identical at any
	// intra-point worker count.
	for _, par := range []int{2, 8} {
		got, err := RunSweepLocal(ctx, equivSweepSpec(&golden, par), nil)
		if err != nil {
			t.Fatalf("warm sweep at parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(warm, got) {
			t.Errorf("sweep result differs at parallelism %d vs 1:\n p=1: %+v\n p=%d: %+v", par, warm, par, got)
		}
	}
}
