package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ecripse/internal/montecarlo"
	"ecripse/internal/obsv"
)

// TestMetricsPrometheusLint is the exposition acceptance test: after real
// traffic, /metrics?format=prometheus must pass the promtool-style lint
// rules, carry the expected families, and leave the JSON default untouched.
func TestMetricsPrometheusLint(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCapacity: 4})
	defer svc.Drain(context.Background())
	svc.runFn = func(_ context.Context, s JobSpec, c *montecarlo.Counter) (*RunResult, error) {
		c.Add(int64(s.N))
		return &RunResult{}, nil
	}
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()

	// One executed job and one cache hit so counters and the job-duration
	// and queue-wait histograms all have samples.
	for range 2 {
		if _, status := postJob(t, ts.URL, `{"estimator": "naive", "n": 100, "seed": 9}`); status >= 300 {
			t.Fatalf("submit status = %d", status)
		}
		deadline := time.Now().Add(5 * time.Second)
		for svc.Snapshot().Jobs[StateDone] == 0 {
			if time.Now().After(deadline) {
				t.Fatal("job never finished")
			}
			time.Sleep(time.Millisecond)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q, want text/plain exposition", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)

	if problems := obsv.LintProm(text); len(problems) > 0 {
		t.Fatalf("exposition fails lint:\n%s\n--- exposition ---\n%s",
			strings.Join(problems, "\n"), text)
	}
	for _, want := range []string{
		"ecripsed_jobs{state=\"done\"} ",
		"ecripsed_cache_hits_total 1",
		"ecripsed_workers 1",
		"ecripsed_build_info{",
		"ecripsed_job_duration_seconds_bucket{le=\"+Inf\"}",
		"ecripsed_queue_wait_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The default stays JSON.
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics (json): %v", err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default metrics content type = %q", ct)
	}
	var m Metrics
	if err := json.NewDecoder(resp2.Body).Decode(&m); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	if m.UptimeSeconds <= 0 || m.Build.GoVersion == "" {
		t.Fatalf("snapshot lacks uptime/build info: %+v", m)
	}
}

// TestServerTraceEndpoint runs a real ECRIPSE job and requires the trace
// endpoint to return the full span timeline: the service phases plus the
// engine phases, with convergence attributes on every particle-filter round.
func TestServerTraceEndpoint(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCapacity: 4})
	defer svc.Drain(context.Background())
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()

	v, status := postJob(t, ts.URL, `{"n": 2000, "seed": 7}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	waitJobHTTP(t, ts.URL, v.ID, StateDone, 2*time.Minute)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/trace")
	if err != nil {
		t.Fatalf("GET trace: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", resp.StatusCode)
	}
	var tr struct {
		ID    string          `json:"id"`
		State State           `json:"state"`
		Spans []obsv.SpanView `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	if tr.ID != v.ID || tr.State != StateDone {
		t.Fatalf("trace header = %+v", tr)
	}

	count := map[string]int{}
	for _, sp := range tr.Spans {
		count[sp.Name]++
		if sp.DurMS < 0 {
			t.Errorf("span %q still in flight in a terminal trace", sp.Name)
		}
		if sp.Name == "pf.round" {
			for _, attr := range []string{"round", "ess", "max_weight_frac", "unique", "filters"} {
				if _, ok := sp.Attrs[attr]; !ok {
					t.Errorf("pf.round span lacks attr %q: %v", attr, sp.Attrs)
				}
			}
		}
	}
	for _, name := range []string{"queue.wait", "run", "persist", "boundary.init", "blockade.train", "stage2.is"} {
		if count[name] != 1 {
			t.Errorf("span %q appears %d times, want 1 (spans: %v)", name, count[name], count)
		}
	}
	if count["pf.round"] == 0 {
		t.Error("no pf.round spans recorded")
	}

	// Unknown job → 404.
	resp2, err := http.Get(ts.URL + "/v1/jobs/jxxxxxx/trace")
	if err != nil {
		t.Fatalf("GET unknown trace: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace status = %d, want 404", resp2.StatusCode)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	event string
	data  string
}

func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			events = append(events, sseEvent{event: event, data: strings.TrimPrefix(line, "data: ")})
		}
	}
	return events
}

// TestServerEventsLifecycleOrdering pins the SSE contract across a full job
// lifecycle: diagnostic events arrive in sequence order before the final
// "done" event, which is last and carries the result.
func TestServerEventsLifecycleOrdering(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCapacity: 4})
	defer svc.Drain(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	svc.runFn = func(ctx context.Context, s JobSpec, c *montecarlo.Counter) (*RunResult, error) {
		emit := obsv.EmitterFrom(ctx)
		if emit == nil {
			t.Error("runner context carries no emitter")
			return &RunResult{}, nil
		}
		close(started)
		<-release
		for i := range 5 {
			emit("pf_round", map[string]int{"round": i})
		}
		emit("is_batch", map[string]int{"samples": 100})
		c.Add(int64(s.N))
		return &RunResult{}, nil
	}
	srv := NewServer(svc)
	srv.EventInterval = 5 * time.Millisecond
	ts := httptest.NewServer(srv)
	defer ts.Close()

	v, status := postJob(t, ts.URL, `{"estimator": "naive", "n": 100, "seed": 21}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	<-started
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	close(release)

	events := readSSE(t, resp.Body)
	if len(events) == 0 {
		t.Fatal("no events received")
	}
	if last := events[len(events)-1]; last.event != "done" {
		t.Fatalf("last event = %q, want done", last.event)
	}
	var kinds []string
	lastSeq := int64(-1)
	for _, ev := range events {
		if ev.event != "diag" {
			continue
		}
		var de DiagEvent
		if err := json.Unmarshal([]byte(ev.data), &de); err != nil {
			t.Fatalf("decode diag %q: %v", ev.data, err)
		}
		if int64(de.Seq) <= lastSeq {
			t.Fatalf("diag seq %d not increasing after %d", de.Seq, lastSeq)
		}
		lastSeq = int64(de.Seq)
		kinds = append(kinds, de.Kind)
	}
	want := []string{"pf_round", "pf_round", "pf_round", "pf_round", "pf_round", "is_batch"}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("diag kinds = %v, want %v", kinds, want)
	}
	var progress int
	for _, ev := range events {
		if ev.event == "progress" {
			progress++
		}
	}
	if progress == 0 {
		t.Fatal("no progress events interleaved")
	}
}

// TestServerEventsSlowConsumerDrop fills a small diagnostic ring before any
// consumer connects: the stream must report how many events were evicted and
// then deliver the survivors in order — a slow consumer never blocks or
// crashes the estimator.
func TestServerEventsSlowConsumerDrop(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCapacity: 4, EventBuffer: 4})
	defer svc.Drain(context.Background())
	emitted := make(chan struct{})
	release := make(chan struct{})
	svc.runFn = func(ctx context.Context, s JobSpec, c *montecarlo.Counter) (*RunResult, error) {
		emit := obsv.EmitterFrom(ctx)
		for i := range 10 {
			emit("pf_round", map[string]int{"round": i})
		}
		close(emitted)
		<-release
		return &RunResult{}, nil
	}
	srv := NewServer(svc)
	srv.EventInterval = 5 * time.Millisecond
	ts := httptest.NewServer(srv)
	defer ts.Close()

	v, status := postJob(t, ts.URL, `{"estimator": "naive", "n": 100, "seed": 22}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	<-emitted
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	close(release)

	events := readSSE(t, resp.Body)
	var missed uint64
	var seqs []uint64
	for _, ev := range events {
		switch ev.event {
		case "dropped":
			var d map[string]uint64
			if err := json.Unmarshal([]byte(ev.data), &d); err != nil {
				t.Fatalf("decode dropped %q: %v", ev.data, err)
			}
			missed += d["missed"]
		case "diag":
			var de DiagEvent
			if err := json.Unmarshal([]byte(ev.data), &de); err != nil {
				t.Fatalf("decode diag %q: %v", ev.data, err)
			}
			seqs = append(seqs, de.Seq)
		}
	}
	if missed != 6 {
		t.Fatalf("dropped reported %d missed, want 6 (10 published into a ring of 4)", missed)
	}
	if fmt.Sprint(seqs) != fmt.Sprint([]uint64{6, 7, 8, 9}) {
		t.Fatalf("surviving diag seqs = %v, want [6 7 8 9]", seqs)
	}
}

// TestEventRing pins the cursor arithmetic of the diagnostic ring.
func TestEventRing(t *testing.T) {
	r := newEventRing(3)
	if ev, dropped, next := r.since(0); len(ev) != 0 || dropped != 0 || next != 0 {
		t.Fatalf("empty ring: %v %d %d", ev, dropped, next)
	}
	for i := range 5 {
		r.publish("k", i)
	}
	ev, dropped, next := r.since(0)
	if dropped != 2 || next != 5 {
		t.Fatalf("since(0): dropped=%d next=%d", dropped, next)
	}
	if len(ev) != 3 || ev[0].Seq != 2 || ev[2].Seq != 4 {
		t.Fatalf("since(0) events = %+v", ev)
	}
	// A caught-up cursor reads nothing, drops nothing.
	if ev, dropped, _ := r.since(next); len(ev) != 0 || dropped != 0 {
		t.Fatalf("caught-up read: %v %d", ev, dropped)
	}
	// A partially-behind cursor inside the buffer drops nothing.
	if ev, dropped, _ := r.since(3); dropped != 0 || len(ev) != 2 || ev[0].Seq != 3 {
		t.Fatalf("partial read: %v %d", ev, dropped)
	}
}
