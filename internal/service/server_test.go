package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ecripse"
	"ecripse/internal/montecarlo"
)

func postJob(t *testing.T, base string, spec string) (View, int) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var v View
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("decode submit response %s: %v", body, err)
		}
	}
	return v, resp.StatusCode
}

func getJob(t *testing.T, base, id string) View {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET job %s: status %d: %s", id, resp.StatusCode, body)
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode job view: %v", err)
	}
	return v
}

func waitJobHTTP(t *testing.T, base, id string, want State, within time.Duration) View {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		v := getJob(t, base, id)
		if v.State == want {
			return v
		}
		if v.State.Terminal() {
			t.Fatalf("job %s reached %q (error %q), want %q", id, v.State, v.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach %q within %s", id, want, within)
	return View{}
}

// TestServerEndToEnd is the acceptance integration test: submit an RDF-only
// ECRIPSE job over HTTP, poll it to completion, and require the estimate to
// match the same-seed library call exactly; then resubmit the identical
// spec and require a byte-identical cache answer with zero additional
// simulations; then cancel a long naive-MC job and require its simulation
// counter to stop advancing.
func TestServerEndToEnd(t *testing.T) {
	svc := New(Config{Workers: 2, QueueCapacity: 8})
	defer svc.Drain(context.Background())
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()

	const (
		nis  = 2000
		seed = 7
	)

	// Submit → poll to completion.
	v, status := postJob(t, ts.URL, fmt.Sprintf(`{"n": %d, "seed": %d}`, nis, seed))
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", status)
	}
	done := waitJobHTTP(t, ts.URL, v.ID, StateDone, 2*time.Minute)
	var got RunResult
	if err := json.Unmarshal(done.Result, &got); err != nil {
		t.Fatalf("decode result: %v", err)
	}

	// The service result must equal the same-seed library call exactly.
	cell := ecripse.NewCell(ecripse.VddNominal)
	want := ecripse.New(cell, ecripse.Options{NIS: nis}).FailureProbability(seed)
	if got.Estimate.Stats() != want.Estimate {
		t.Fatalf("service estimate %+v != library estimate %+v", got.Estimate.Stats(), want.Estimate)
	}
	if len(got.Series) != len(want.Series) {
		t.Fatalf("series length %d != library %d", len(got.Series), len(want.Series))
	}
	for i, p := range want.Series {
		q := got.Series[i]
		if q.Sims != p.Sims || q.P != p.P || q.CI95 != p.CI95 {
			t.Fatalf("series[%d] %+v != library %+v", i, q, p)
		}
	}
	if got.Cost.Total != want.Estimate.Sims {
		t.Fatalf("cost total %d != sims %d", got.Cost.Total, want.Estimate.Sims)
	}

	// Duplicate submission: answered inline from the cache, byte-identical,
	// zero new simulations.
	simsBefore := svc.Snapshot().SimsTotal
	dup, status := postJob(t, ts.URL, fmt.Sprintf(`{"n": %d, "seed": %d}`, nis, seed))
	if status != http.StatusOK {
		t.Fatalf("duplicate submit status = %d, want 200 (cache hit)", status)
	}
	if !dup.Cached {
		t.Fatal("duplicate submission not flagged cached")
	}
	if dup.State != StateDone {
		t.Fatalf("duplicate state = %q, want done", dup.State)
	}
	if !bytes.Equal(dup.Result, done.Result) {
		t.Fatalf("cached result not byte-identical:\n%s\n%s", dup.Result, done.Result)
	}
	m := svc.Snapshot()
	if m.SimsTotal != simsBefore {
		t.Fatalf("cache hit cost simulations: %d -> %d", simsBefore, m.SimsTotal)
	}
	if m.CacheHits == 0 {
		t.Fatal("metrics did not record the cache hit")
	}

	// Cancellation: a huge naive-MC job is stopped mid-run and its
	// simulation counter freezes.
	v, status = postJob(t, ts.URL, `{"estimator": "naive", "n": 50000000, "seed": 3}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit naive: status %d", status)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		if jv := getJob(t, ts.URL, v.ID); jv.State == StateRunning && jv.Sims > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("naive job never started simulating")
		}
		time.Sleep(5 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE status = %d, want 202", resp.StatusCode)
	}
	canceled := waitJobHTTP(t, ts.URL, v.ID, StateCanceled, 30*time.Second)
	time.Sleep(100 * time.Millisecond)
	if again := getJob(t, ts.URL, v.ID); again.Sims != canceled.Sims {
		t.Fatalf("counter advanced after cancel: %d -> %d", canceled.Sims, again.Sims)
	}
}

func TestServerEventsStream(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCapacity: 4})
	defer svc.Drain(context.Background())
	srv := NewServer(svc)
	srv.EventInterval = 10 * time.Millisecond
	ts := httptest.NewServer(srv)
	defer ts.Close()

	v, status := postJob(t, ts.URL, `{"estimator": "naive", "n": 4000, "seed": 5}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	var progress int
	var final View
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if event == "progress" {
				progress++
			}
			if event == "done" {
				if err := json.Unmarshal([]byte(data), &final); err != nil {
					t.Fatalf("decode done event: %v", err)
				}
			}
		}
	}
	if final.ID != v.ID || final.State != StateDone {
		t.Fatalf("final event = %+v, want done view of %s", final, v.ID)
	}
	if final.Result == nil {
		t.Fatal("done event carries no result")
	}
	if progress == 0 {
		t.Fatal("no progress events before completion")
	}
}

// TestServerDeleteCompletedConflict pins the contract for cancelling a job
// that already reached a terminal state: DELETE answers 409 Conflict and the
// body carries the job's terminal view, so clients can tell "too late to
// cancel" apart from "no such job" (404) and from an accepted cancel (202).
func TestServerDeleteCompletedConflict(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCapacity: 4})
	defer svc.Drain(context.Background())
	svc.runFn = func(context.Context, JobSpec, *montecarlo.Counter) (*RunResult, error) {
		return &RunResult{}, nil
	}
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()

	v, status := postJob(t, ts.URL, `{"seed": 11}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	waitJobHTTP(t, ts.URL, v.ID, StateDone, 10*time.Second)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE done job: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE on completed job: status = %d, want 409", resp.StatusCode)
	}
	var got View
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("decode 409 body: %v", err)
	}
	if got.ID != v.ID || got.State != StateDone {
		t.Fatalf("409 body = %+v, want terminal view of %s", got, v.ID)
	}

	// The job is untouched: still done, still retrievable.
	if after := getJob(t, ts.URL, v.ID); after.State != StateDone {
		t.Fatalf("job state after rejected cancel = %q", after.State)
	}
}

func TestServerBackpressureAndErrors(t *testing.T) {
	svc := New(Config{Workers: 1, QueueCapacity: 1})
	release := make(chan struct{})
	svc.runFn = func(ctx context.Context, _ JobSpec, _ *montecarlo.Counter) (*RunResult, error) {
		select {
		case <-release:
			return &RunResult{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()

	j1, status := postJob(t, ts.URL, `{"seed": 1}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit 1 status = %d", status)
	}
	waitJobHTTP(t, ts.URL, j1.ID, StateRunning, 5*time.Second)
	if _, status = postJob(t, ts.URL, `{"seed": 2}`); status != http.StatusAccepted {
		t.Fatalf("submit 2 status = %d", status)
	}
	if _, status = postJob(t, ts.URL, `{"seed": 3}`); status != http.StatusTooManyRequests {
		t.Fatalf("submit beyond capacity: status = %d, want 429", status)
	}

	// Malformed and invalid specs → 400.
	if _, status = postJob(t, ts.URL, `{"estimator": "quantum"}`); status != http.StatusBadRequest {
		t.Fatalf("invalid estimator: status = %d, want 400", status)
	}
	if _, status = postJob(t, ts.URL, `{"nope": 1}`); status != http.StatusBadRequest {
		t.Fatalf("unknown field: status = %d, want 400", status)
	}

	// Unknown job → 404.
	resp, err := http.Get(ts.URL + "/v1/jobs/jxxxxxx")
	if err != nil {
		t.Fatalf("GET unknown: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", resp.StatusCode)
	}

	// healthz flips to 503 once draining.
	resp, _ = http.Get(ts.URL + "/healthz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	close(release)
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, _ = http.Get(ts.URL + "/healthz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	if _, status = postJob(t, ts.URL, `{"seed": 4}`); status != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status = %d, want 503", status)
	}

	// Metrics endpoint stays readable and reflects the final state.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	if !m.Draining || m.Workers != 1 || m.Jobs[StateDone] != 2 {
		t.Fatalf("metrics = %+v", m)
	}
}
