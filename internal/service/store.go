package service

import (
	"encoding/json"
	"time"
)

// Store persists job lifecycle events and completed results so that a
// service restart can rebuild its state. The service appends one record per
// observable event; the store is expected to make each append durable (or
// at least ordered) and to hand the accumulated state back through Recover.
//
// Append ordering matters for crash consistency and the service guarantees
// it per job: the submit record precedes every state record, a result
// record precedes the done record it belongs to, and states follow the job
// lifecycle. Across jobs no ordering is promised.
//
// The zero-configuration default is the process-memory nopStore: every
// append succeeds without touching disk and Recover finds nothing, which is
// exactly the pre-persistence behavior.
type Store interface {
	// Recover returns the state accumulated before this process started.
	// The service calls it exactly once, before its workers see any job.
	Recover() *Recovery
	// AppendSubmit records a newly accepted job. cached marks a submission
	// answered inline from the result cache (it is born terminal); tenant
	// names the submitting API client ("" when auth is off).
	AppendSubmit(id string, spec json.RawMessage, key, tenant string, cached bool, at time.Time) error
	// AppendState records a lifecycle transition of a known job.
	AppendState(id string, state State, errMsg string, at time.Time) error
	// AppendResult records a completed, cacheable result payload under the
	// spec's content address. It is appended before the job's done record,
	// so a crash between the two replays the job as still running — safe,
	// because re-running a deterministic spec reproduces the same payload.
	AppendResult(key string, payload json.RawMessage) error
	// AppendDrop voids a submit record whose enqueue failed (queue full):
	// replay must not resurrect the job.
	AppendDrop(id string) error
	// AppendTrace records a finished job's span timeline (the marshaled
	// obsv span views). Unlike results, traces are keyed by job — wall-clock
	// timings are not deterministic, so they never enter the content-
	// addressed result set.
	AppendTrace(id string, trace json.RawMessage) error
	// AppendTenant records a tenant's accumulated usage (latest snapshot
	// wins on replay), so quota accounting survives restarts.
	AppendTenant(name string, u TenantUsage) error
	// AppendOwner records which shard a dispatched job currently lives on
	// (the cluster router's ownership table; remote is the job's ID on that
	// shard). Re-appends update the assignment — the failover path moves a
	// dead shard's jobs to their ring successor.
	AppendOwner(id, shard, remote string) error
	// AppendSweep records a newly accepted sweep: id, the normalized
	// SweepSpec, its content key, and the submitting tenant.
	AppendSweep(id string, spec json.RawMessage, key, tenant string, at time.Time) error
	// AppendSweepState records a sweep lifecycle transition. Terminal done
	// records carry the aggregate result payload — sweep aggregates embed
	// nondeterministic job IDs, so they live in the journal keyed by sweep,
	// never in the content-addressed result set.
	AppendSweepState(id string, state State, errMsg string, result json.RawMessage, at time.Time) error
	// Stats reports persistence counters for /metrics; a store without
	// durability returns the zero value.
	Stats() StoreStats
	// Close releases the store. Appends after Close fail.
	Close() error
}

// Recovery is the state a Store rebuilt from disk: every job it knew about
// in submission order, the completed result payloads keyed by spec content
// address, per-tenant usage, and — for the cluster router — the shard
// ownership table.
type Recovery struct {
	Jobs    []RecoveredJob
	Results map[string]json.RawMessage
	// Sweeps is every persisted sweep in submission order. Terminal sweeps
	// restore with their aggregate; interrupted ones restart their
	// controllers, re-answering completed points from Results.
	Sweeps []RecoveredSweep
	// Tenants is the last persisted usage per tenant name (may be nil).
	Tenants map[string]TenantUsage
	// Owners is the last persisted shard assignment per dispatched job ID
	// (may be nil; populated only by cluster routers).
	Owners map[string]OwnerRecord
}

// OwnerRecord is one dispatched job's current placement.
type OwnerRecord struct {
	// Shard is the owning node's name.
	Shard string `json:"shard"`
	// Remote is the job's ID on that shard (differs from the dispatch ID
	// after a failover re-enqueue).
	Remote string `json:"remote"`
}

// RecoveredJob is one persisted job as of the last durable record. Jobs
// that were queued or running at crash time are re-enqueued by the service
// (specs and seeds are deterministic, so a re-run reproduces the lost
// work); terminal jobs are restored as-is, with done results re-attached
// from Recovery.Results.
type RecoveredJob struct {
	ID       string
	Spec     json.RawMessage
	Key      string
	State    State
	Error    string
	Cached   bool
	Tenant   string
	Created  time.Time
	Started  time.Time
	Finished time.Time
	// Trace is the persisted span timeline of a finished job (nil when the
	// job never finished or predates trace persistence).
	Trace json.RawMessage
}

// RecoveredSweep is one persisted sweep as of the last durable record.
type RecoveredSweep struct {
	ID       string
	Spec     json.RawMessage
	Key      string
	State    State
	Error    string
	Tenant   string
	Created  time.Time
	Started  time.Time
	Finished time.Time
	// Result is the persisted aggregate of a done sweep (nil otherwise).
	Result json.RawMessage
}

// StoreStats are the persistence counters surfaced at /metrics.
type StoreStats struct {
	// Appends counts journal records written since the process started.
	Appends int64 `json:"appends"`
	// Compactions counts snapshot compactions since the process started.
	Compactions int64 `json:"compactions"`
	// SegmentBytes is the size of the live journal segment.
	SegmentBytes int64 `json:"segment_bytes"`
	// AppendErrors counts appends that failed (the service keeps serving;
	// durability of those events is lost).
	AppendErrors int64 `json:"append_errors,omitempty"`
}

// nopStore is the in-memory default: no persistence, nothing to recover.
type nopStore struct{}

func (nopStore) Recover() *Recovery { return &Recovery{} }
func (nopStore) AppendSubmit(string, json.RawMessage, string, string, bool, time.Time) error {
	return nil
}
func (nopStore) AppendState(string, State, string, time.Time) error                   { return nil }
func (nopStore) AppendResult(string, json.RawMessage) error                           { return nil }
func (nopStore) AppendDrop(string) error                                              { return nil }
func (nopStore) AppendTrace(string, json.RawMessage) error                            { return nil }
func (nopStore) AppendTenant(string, TenantUsage) error                               { return nil }
func (nopStore) AppendOwner(string, string, string) error                             { return nil }
func (nopStore) AppendSweep(string, json.RawMessage, string, string, time.Time) error { return nil }
func (nopStore) AppendSweepState(string, State, string, json.RawMessage, time.Time) error {
	return nil
}
func (nopStore) Stats() StoreStats { return StoreStats{} }
func (nopStore) Close() error      { return nil }
