package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"ecripse/internal/montecarlo"
	"ecripse/internal/obsv"
)

// ErrSweepNotFound is returned for unknown sweep IDs.
var ErrSweepNotFound = errors.New("service: no such sweep")

// Sweep is one submitted sweep: a grid of point jobs planned from a
// SweepSpec and driven by a controller goroutine. Point jobs are ordinary
// jobs — content-addressed, cached, persisted — so a re-submitted or
// recovered sweep answers its completed points from the cache and only
// computes the remainder.
type Sweep struct {
	ID     string
	Spec   SweepSpec
	Key    string // content address of the sweep spec
	Tenant string

	points []PointPlan

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	events *eventRing
	trace  *obsv.Trace
	// parentSpan is the remote parent span ID propagated with the sweep
	// (the router's dispatch span); recorded on the root span so the
	// router can graft this shard's tree into its own.
	parentSpan string

	// onState observes committed sweep transitions (the service persists
	// them); result rides the terminal record so the aggregate — which
	// contains nondeterministic job IDs and is therefore not content-
	// addressable — survives restarts without entering the result cache.
	onState func(sw *Sweep, state State, errMsg string, result json.RawMessage, at time.Time)

	mu        sync.Mutex
	state     State
	errMsg    string
	result    *SweepResult
	rawResult json.RawMessage // recovered terminal sweeps
	pstate    []SweepPointStatus
	created   time.Time
	started   time.Time
	finished  time.Time
}

// SweepPointStatus is the live per-point progress of a sweep.
type SweepPointStatus struct {
	Index  int    `json:"index"`
	State  State  `json:"state"`
	JobID  string `json:"job_id,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
}

// SweepPointResult is one finished grid point in the sweep's aggregate.
type SweepPointResult struct {
	Index  int      `json:"index"`
	Alpha  *float64 `json:"alpha,omitempty"`
	Vdd    *float64 `json:"vdd,omitempty"`
	TempK  *float64 `json:"temp_k,omitempty"`
	JobID  string   `json:"job_id,omitempty"`
	Key    string   `json:"key"`
	Cached bool     `json:"cached,omitempty"`
	Warm   bool     `json:"warm,omitempty"`
	Error  string   `json:"error,omitempty"`

	Estimate Estimate  `json:"estimate"`
	Cost     CostSplit `json:"cost"`
}

// SweepResult aggregates a finished sweep. TotalSims and SimsSaved are
// derived from the deterministic point payloads, so two runs of the same
// sweep — cached or not — report identical figures.
type SweepResult struct {
	Points []SweepPointResult `json:"points"`
	// TotalSims sums every point payload's total simulation cost (what the
	// grid costs to compute once, regardless of how many points this
	// particular run answered from cache).
	TotalSims int64 `json:"total_sims"`
	// SimsSaved estimates the simulations warm seeding avoided: for every
	// warm-seeded point, the boundary-init (and, unless cloud-only, the
	// classifier warm-up) cost its nearest cold predecessor actually paid.
	SimsSaved int64 `json:"sims_saved,omitempty"`
	// CachedPoints counts points this run answered without new computation;
	// WarmPoints counts points seeded from their predecessor.
	CachedPoints int `json:"cached_points,omitempty"`
	WarmPoints   int `json:"warm_points,omitempty"`
}

// newSweep creates a running-ready sweep whose context descends from parent.
// The sweep's trace is minted with a fresh distributed trace ID (overridden
// when a traceparent propagated in); every point job joins the same ID.
func newSweep(parent context.Context, id string, spec SweepSpec, key, tenant string, points []PointPlan, eventCap int) *Sweep {
	ctx, cancel := context.WithCancel(parent)
	tr := obsv.NewTrace()
	tr.SetID(obsv.NewTraceID())
	sw := &Sweep{
		ID:      id,
		Spec:    spec,
		Key:     key,
		Tenant:  tenant,
		points:  points,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		events:  newEventRing(eventCap),
		trace:   tr,
		state:   StateQueued,
		created: time.Now(),
		pstate:  make([]SweepPointStatus, len(points)),
	}
	for i := range sw.pstate {
		sw.pstate[i] = SweepPointStatus{Index: i, State: StateQueued}
	}
	return sw
}

// restoreSweep rebuilds a terminal sweep from the persistent store.
func restoreSweep(r RecoveredSweep, spec SweepSpec, points []PointPlan) *Sweep {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sw := &Sweep{
		ID:        r.ID,
		Spec:      spec,
		Key:       r.Key,
		Tenant:    r.Tenant,
		points:    points,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		events:    newEventRing(0),
		trace:     obsv.NewTrace(),
		state:     r.State,
		errMsg:    r.Error,
		rawResult: r.Result,
		created:   r.Created,
		started:   r.Started,
		finished:  r.Finished,
	}
	close(sw.done)
	return sw
}

// State returns the sweep's lifecycle state.
func (sw *Sweep) State() State {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.state
}

// Done returns a channel closed when the sweep reaches a terminal state.
func (sw *Sweep) Done() <-chan struct{} { return sw.done }

// Result returns the aggregate (nil while unfinished). For sweeps recovered
// from disk it is the persisted payload decoded lazily.
func (sw *Sweep) Result() *SweepResult {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.result == nil && len(sw.rawResult) > 0 {
		var r SweepResult
		if err := json.Unmarshal(sw.rawResult, &r); err == nil {
			sw.result = &r
		}
	}
	return sw.result
}

// Cancel requests cancellation of the sweep and its in-flight points.
// Reports false once terminal.
func (sw *Sweep) Cancel() bool {
	sw.mu.Lock()
	if sw.state.Terminal() {
		sw.mu.Unlock()
		return false
	}
	sw.mu.Unlock()
	sw.cancel() // the controller observes it and finishes as canceled
	return true
}

// markRunning transitions queued → running (the controller's first act).
func (sw *Sweep) markRunning() {
	sw.mu.Lock()
	sw.state = StateRunning
	sw.started = time.Now()
	at := sw.started
	sw.mu.Unlock()
	if sw.onState != nil {
		sw.onState(sw, StateRunning, "", nil, at)
	}
}

// finish commits the terminal state (idempotent, like Job.finish).
func (sw *Sweep) finish(state State, res *SweepResult, errMsg string) {
	sw.mu.Lock()
	if sw.state.Terminal() {
		sw.mu.Unlock()
		return
	}
	sw.state = state
	sw.result = res
	sw.errMsg = errMsg
	sw.finished = time.Now()
	at := sw.finished
	sw.mu.Unlock()
	sw.cancel()
	var raw json.RawMessage
	if res != nil {
		raw, _ = json.Marshal(res)
	}
	// Publish the terminal transition into the event ring BEFORE closing the
	// done channel: SSE consumers drain the ring once more when done closes,
	// so every subscriber observes the terminal "sweep" event ahead of the
	// final "done" — including subscribers to a sweep torn down by DELETE.
	sw.events.publish("sweep", sweepTerminal{
		ID: sw.ID, State: state, Error: errMsg, PointsDone: sw.PointsDone(), NumPoints: len(sw.points),
	})
	close(sw.done)
	if sw.onState != nil {
		sw.onState(sw, state, errMsg, raw, at)
	}
}

// sweepTerminal is the payload of the terminal "sweep" SSE event.
type sweepTerminal struct {
	ID         string `json:"id"`
	State      State  `json:"state"`
	Error      string `json:"error,omitempty"`
	PointsDone int    `json:"points_done"`
	NumPoints  int    `json:"num_points"`
}

// pointJobIDs returns the job IDs of points not yet terminal.
func (sw *Sweep) pointJobIDs() []string {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	ids := make([]string, 0, len(sw.pstate))
	for _, p := range sw.pstate {
		if p.JobID != "" && !p.State.Terminal() {
			ids = append(ids, p.JobID)
		}
	}
	return ids
}

// setPoint commits one point's progress and publishes it to SSE consumers.
func (sw *Sweep) setPoint(i int, st SweepPointStatus) {
	sw.mu.Lock()
	if i < len(sw.pstate) {
		sw.pstate[i] = st
	}
	sw.mu.Unlock()
	sw.events.publish("point", st)
}

// DiagSince drains sweep events (per-point progress) at or after cursor.
func (sw *Sweep) DiagSince(cursor uint64) (events []DiagEvent, dropped uint64, next uint64) {
	return sw.events.since(cursor)
}

// PointsDone counts points in a terminal state.
func (sw *Sweep) PointsDone() int {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	n := 0
	for _, p := range sw.pstate {
		if p.State.Terminal() {
			n++
		}
	}
	return n
}

// SweepView is the JSON representation of a sweep served by the API.
type SweepView struct {
	ID         string             `json:"id"`
	State      State              `json:"state"`
	Tenant     string             `json:"tenant,omitempty"`
	Error      string             `json:"error,omitempty"`
	Key        string             `json:"key"`
	NumPoints  int                `json:"num_points"`
	PointsDone int                `json:"points_done"`
	WarmStart  bool               `json:"warm_start,omitempty"`
	CreatedAt  string             `json:"created_at"`
	StartedAt  string             `json:"started_at,omitempty"`
	FinishedAt string             `json:"finished_at,omitempty"`
	Spec       SweepSpec          `json:"spec"`
	Points     []SweepPointStatus `json:"points,omitempty"`
	Result     *SweepResult       `json:"result,omitempty"`
}

// Snapshot renders the sweep for the API; withDetail adds per-point status
// and, when finished, the aggregate result.
func (sw *Sweep) Snapshot(withDetail bool) SweepView {
	res := sw.Result() // before taking the lock (Result locks too)
	sw.mu.Lock()
	defer sw.mu.Unlock()
	v := SweepView{
		ID:        sw.ID,
		State:     sw.state,
		Tenant:    sw.Tenant,
		Error:     sw.errMsg,
		Key:       sw.Key,
		NumPoints: len(sw.points),
		WarmStart: sw.Spec.WarmStart,
		CreatedAt: sw.created.UTC().Format(time.RFC3339Nano),
		Spec:      sw.Spec,
	}
	for _, p := range sw.pstate {
		if p.State.Terminal() {
			v.PointsDone++
		}
	}
	if sw.state.Terminal() && len(sw.pstate) == 0 {
		v.PointsDone = len(sw.points) // recovered terminal sweep
	}
	if !sw.started.IsZero() {
		v.StartedAt = sw.started.UTC().Format(time.RFC3339Nano)
	}
	if !sw.finished.IsZero() {
		v.FinishedAt = sw.finished.UTC().Format(time.RFC3339Nano)
	}
	if withDetail {
		v.Points = append([]SweepPointStatus(nil), sw.pstate...)
		v.Result = res
	}
	return v
}

// runSweep is the controller: it drives every planned point through the
// regular job pipeline and assembles the aggregate. Warm sweeps run their
// points strictly sequentially — point i's spec names point i-1's result by
// content key, so there is no intra-chain parallelism to exploit; cold
// sweeps fan all points out to the worker pool at once. Either way the
// points are plain cached jobs, so a crashed or re-submitted sweep only
// recomputes what the journal and cache do not already hold.
func (s *Service) runSweep(sw *Sweep) {
	defer s.sweepWG.Done()
	sw.markRunning()
	tctx := obsv.WithTrace(context.Background(), sw.trace)
	_, span := obsv.StartSpan(tctx, "sweep", obsv.S("sweep", sw.ID), obsv.I("points", int64(len(sw.points))))
	if sw.parentSpan != "" {
		span.SetAttr(obsv.S("parent_span", sw.parentSpan))
	}

	var jobs []*Job
	var firstErr error
	if sw.Spec.WarmStart {
		for i := range sw.points {
			j, err := s.submitPoint(sw, i)
			if err != nil {
				firstErr = fmt.Errorf("point %d: %w", i, err)
				break
			}
			jobs = append(jobs, j)
			if err := s.waitPoint(sw, i, j, span); err != nil {
				firstErr = fmt.Errorf("point %d (%s): %w", i, j.ID, err)
				break
			}
		}
	} else {
		for i := range sw.points {
			j, err := s.submitPoint(sw, i)
			if err != nil {
				firstErr = fmt.Errorf("point %d: %w", i, err)
				break
			}
			jobs = append(jobs, j)
		}
		for i, j := range jobs {
			if err := s.waitPoint(sw, i, j, span); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("point %d (%s): %w", i, j.ID, err)
			}
		}
	}

	if firstErr != nil {
		// Cancel whatever this sweep still has in flight, then fail. The
		// completed points are cached and journaled: re-submitting the same
		// sweep answers them instantly and resumes from the failure point.
		for _, j := range jobs {
			j.Cancel()
		}
		state := StateFailed
		if errors.Is(firstErr, context.Canceled) || sw.ctx.Err() != nil {
			state = StateCanceled
		}
		span.SetAttr(obsv.S("error", firstErr.Error()))
		span.End()
		sw.finish(state, nil, firstErr.Error()+" — completed points are cached; resubmit the sweep to resume")
		return
	}

	res := s.assembleSweep(sw, jobs)
	s.sweepPointsDone.Add(int64(len(res.Points)))
	s.sweepWarmPoints.Add(int64(res.WarmPoints))
	s.sweepSimsSaved.Add(res.SimsSaved)
	span.SetAttr(obsv.I("total_sims", res.TotalSims), obsv.I("sims_saved", res.SimsSaved))
	span.End()
	sw.finish(StateDone, res, "")
}

// submitPoint hands one planned point to the job pipeline. An active job
// with the same content key — typically a crash-recovered re-enqueue — is
// adopted instead of duplicated; a full queue is retried with backoff until
// the sweep is canceled (cold sweeps can be far larger than the queue).
func (s *Service) submitPoint(sw *Sweep, i int) (*Job, error) {
	p := sw.points[i]
	if j := s.findActiveByKey(p.Key); j != nil {
		sw.setPoint(i, SweepPointStatus{Index: i, State: j.State(), JobID: j.ID})
		return j, nil
	}
	for {
		// Point jobs join the sweep's distributed trace, so the reassembled
		// tree carries one consistent trace ID from router to engine spans.
		j, err := s.SubmitTraced(sw.Tenant, p.Spec, obsv.TraceContext{TraceID: sw.trace.ID()})
		if err == nil {
			sw.setPoint(i, SweepPointStatus{Index: i, State: j.State(), JobID: j.ID})
			return j, nil
		}
		if !errors.Is(err, ErrQueueFull) {
			sw.setPoint(i, SweepPointStatus{Index: i, State: StateFailed, Error: err.Error()})
			return nil, err
		}
		select {
		case <-sw.ctx.Done():
			return nil, sw.ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// waitPoint blocks until the point's job is terminal (or the sweep is
// canceled), records a span for it under the sweep span, and commits the
// point status. A non-done terminal state is the point's error.
func (s *Service) waitPoint(sw *Sweep, i int, j *Job, parent *obsv.Span) error {
	start := time.Now()
	select {
	case <-j.Done():
	case <-sw.ctx.Done():
		return sw.ctx.Err()
	}
	v := j.Snapshot(false)
	sw.trace.Add("point", parent.Index(), start, time.Now(),
		obsv.I("index", int64(i)), obsv.S("job", j.ID), obsv.I("sims", v.Sims))
	st := SweepPointStatus{Index: i, State: v.State, JobID: j.ID, Cached: v.Cached, Error: v.Error}
	sw.setPoint(i, st)
	if v.State != StateDone {
		if v.Error != "" {
			return errors.New(v.Error)
		}
		return fmt.Errorf("job ended %s", v.State)
	}
	return nil
}

// findActiveByKey returns a queued or running job computing the given
// content key, if any.
func (s *Service) findActiveByKey(key string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.order {
		if j.Key == key && !j.State().Terminal() {
			return j
		}
	}
	return nil
}

// assembleSweep folds the finished point jobs into the aggregate.
func (s *Service) assembleSweep(sw *Sweep, jobs []*Job) *SweepResult {
	res := &SweepResult{Points: make([]SweepPointResult, 0, len(jobs))}
	var lastColdInit, lastColdWarmup int64
	for i, j := range jobs {
		p := sw.points[i]
		v := j.Snapshot(true)
		pr := SweepPointResult{
			Index: i, Alpha: p.Alpha, Vdd: p.Vdd, TempK: p.TempK,
			JobID: j.ID, Key: p.Key, Cached: v.Cached, Warm: p.Warm,
		}
		var rr RunResult
		if err := json.Unmarshal(v.Result, &rr); err == nil {
			pr.Estimate, pr.Cost = rr.Estimate, rr.Cost
			pr.Cost.Total = rr.Cost.Total
		}
		res.TotalSims += pr.Cost.Total
		if v.Cached {
			res.CachedPoints++
		}
		if p.Warm {
			res.WarmPoints++
			saved := lastColdInit
			if !p.CloudOnly {
				saved += lastColdWarmup
			}
			res.SimsSaved += saved
		} else {
			lastColdInit, lastColdWarmup = pr.Cost.Init, pr.Cost.Warmup
		}
		res.Points = append(res.Points, pr)
	}
	return res
}

// RunSweepLocal executes a normalized sweep in-process, without a service:
// the CLI entry point (cmd/ecripse, cmd/dutysweep) and the equivalence tests
// drive it directly. Points run sequentially in grid order; warm linkage is
// resolved from an in-memory map of this run's own payloads. runFn nil
// selects the real estimator runner.
//
// A warm sweep stops at the first point error (its successors' inputs are
// gone); a cold sweep runs every point and reports each failure in its
// point's Error field. Either way the error return joins every per-point
// failure — callers must treat a non-nil error as a failed sweep even though
// the partial aggregate is returned for inspection.
func RunSweepLocal(ctx context.Context, spec SweepSpec, runFn func(context.Context, JobSpec, *montecarlo.Counter) (*RunResult, error)) (*SweepResult, error) {
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	points, err := spec.Points()
	if err != nil {
		return nil, err
	}
	if runFn == nil {
		runFn = runSpec
	}
	payloads := make(map[string]json.RawMessage, len(points))
	hooks := runHooks{warmResolver: func(key string) (json.RawMessage, bool) {
		p, ok := payloads[key]
		return p, ok
	}}

	res := &SweepResult{Points: make([]SweepPointResult, 0, len(points))}
	var errs []error
	var lastColdInit, lastColdWarmup int64
	for _, p := range points {
		pr := SweepPointResult{
			Index: p.Index, Alpha: p.Alpha, Vdd: p.Vdd, TempK: p.TempK,
			Key: p.Key, Warm: p.Warm,
		}
		counter := &montecarlo.Counter{}
		out, rerr := runFn(withRunHooks(ctx, hooks), p.Spec, counter)
		if rerr != nil {
			pr.Error = rerr.Error()
			res.Points = append(res.Points, pr)
			errs = append(errs, fmt.Errorf("point %d: %w", p.Index, rerr))
			if spec.WarmStart {
				break // successors would need this point's warm state
			}
			continue
		}
		raw, merr := json.Marshal(out)
		if merr != nil {
			pr.Error = merr.Error()
			res.Points = append(res.Points, pr)
			errs = append(errs, fmt.Errorf("point %d: marshal: %w", p.Index, merr))
			if spec.WarmStart {
				break
			}
			continue
		}
		payloads[p.Key] = raw
		pr.Estimate, pr.Cost = out.Estimate, out.Cost
		res.TotalSims += out.Cost.Total
		if p.Warm {
			res.WarmPoints++
			saved := lastColdInit
			if !p.CloudOnly {
				saved += lastColdWarmup
			}
			res.SimsSaved += saved
		} else {
			lastColdInit, lastColdWarmup = out.Cost.Init, out.Cost.Warmup
		}
		res.Points = append(res.Points, pr)
	}
	return res, errors.Join(errs...)
}
