package service

import (
	"context"
	"sync"
	"sync/atomic"
)

// pool is a fixed-size worker pool consuming the job queue. Each worker
// executes one job at a time through the handler; panic recovery lives in
// the handler (Service.execute) so a poisoned job spec can never take a
// worker down.
type pool struct {
	workers int
	busy    atomic.Int64
	wg      sync.WaitGroup
}

// startPool launches n workers draining q into handle. Workers exit when
// the queue is closed and empty.
func startPool(n int, q *queue, handle func(*Job)) *pool {
	if n <= 0 {
		n = 4
	}
	p := &pool{workers: n}
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for j := range q.ch {
				p.busy.Add(1)
				handle(j)
				p.busy.Add(-1)
			}
		}()
	}
	return p
}

// wait blocks until every worker has exited (the queue must be closed
// first) or ctx fires; it reports whether the drain completed.
func (p *pool) wait(ctx context.Context) bool {
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-ctx.Done():
		return false
	}
}
