package service

import "sync"

// DiagEvent is one streamed diagnostic event: Kind names the payload shape
// ("pf_round", "is_batch"), Seq is a per-job monotonic sequence number that
// lets a consumer detect drops.
type DiagEvent struct {
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"`
	Data any    `json:"data"`
}

// eventRing is a bounded per-job buffer of diagnostic events. The engine
// publishes at round/batch barriers; SSE consumers drain with a cursor. When
// a consumer falls behind the ring's capacity, the oldest events are
// discarded and the consumer learns how many it missed — slow consumers
// never block the estimator.
type eventRing struct {
	mu  sync.Mutex
	buf []DiagEvent // at most cap entries, oldest first
	cap int
	// next is the sequence number the next published event receives; the
	// oldest buffered event has seq next-len(buf).
	next uint64
}

func newEventRing(capacity int) *eventRing {
	if capacity <= 0 {
		capacity = 256
	}
	return &eventRing{cap: capacity}
}

// publish appends one event, evicting the oldest when full.
func (r *eventRing) publish(kind string, data any) {
	r.mu.Lock()
	if len(r.buf) == r.cap {
		copy(r.buf, r.buf[1:])
		r.buf = r.buf[:len(r.buf)-1]
	}
	r.buf = append(r.buf, DiagEvent{Seq: r.next, Kind: kind, Data: data})
	r.next++
	r.mu.Unlock()
}

// since returns the buffered events with seq >= cursor, how many events the
// cursor missed entirely (evicted before this read), and the cursor to use
// for the next read.
func (r *eventRing) since(cursor uint64) (events []DiagEvent, dropped uint64, next uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	oldest := r.next - uint64(len(r.buf))
	if cursor < oldest {
		dropped = oldest - cursor
		cursor = oldest
	}
	if cursor < r.next {
		events = append([]DiagEvent(nil), r.buf[cursor-oldest:]...)
	}
	return events, dropped, r.next
}
