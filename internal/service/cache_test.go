package service

import (
	"encoding/json"
	"fmt"
	"testing"
)

// TestCacheEvictsByCostNotCount pins the cost-weighted eviction policy: when
// the cache overflows, the cheapest entry near the LRU end goes first, not
// blindly the oldest.
func TestCacheEvictsByCostNotCount(t *testing.T) {
	c := newCache(4)
	pay := func(i int) json.RawMessage { return json.RawMessage(fmt.Sprintf(`{"i":%d}`, i)) }

	// Oldest entry is the most expensive; the next three are cheap.
	c.put("expensive", pay(0), 1_000_000)
	c.put("cheap1", pay(1), 10)
	c.put("cheap2", pay(2), 10)
	c.put("cheap3", pay(3), 10)
	c.put("new", pay(4), 500) // overflows: should evict a cheap one, not "expensive"

	if _, ok := c.get("expensive"); !ok {
		t.Fatal("cost-weighted eviction dropped the most expensive entry")
	}
	if _, ok := c.get("cheap1"); ok {
		t.Fatal("expected the oldest cheap entry to be the eviction victim")
	}
	st := c.stats()
	if st.evictions != 1 || st.evictedCost != 10 {
		t.Fatalf("eviction counters = (%d, %d), want (1, 10)", st.evictions, st.evictedCost)
	}
	if st.size != 4 {
		t.Fatalf("size = %d, want 4", st.size)
	}
}

// TestCacheEqualCostFallsBackToLRU pins the tie-break: equal costs evict in
// plain LRU order.
func TestCacheEqualCostFallsBackToLRU(t *testing.T) {
	c := newCache(3)
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), json.RawMessage(`{}`), 7)
	}
	c.get("k0") // refresh k0: k1 becomes least recently used
	c.put("k3", json.RawMessage(`{}`), 7)
	if _, ok := c.get("k1"); ok {
		t.Fatal("equal-cost eviction did not follow LRU order")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("entry %s evicted unexpectedly", k)
		}
	}
}

// TestCostFromPayload pins the partial unmarshal used to restore costs for
// boot-recovered cache entries.
func TestCostFromPayload(t *testing.T) {
	if got := costFromPayload(json.RawMessage(`{"estimate":{"p":1e-9},"cost":{"stage2":5,"total":1234}}`)); got != 1234 {
		t.Fatalf("costFromPayload = %d, want 1234", got)
	}
	if got := costFromPayload(json.RawMessage(`not json`)); got != 0 {
		t.Fatalf("unreadable payload cost = %d, want 0", got)
	}
}
