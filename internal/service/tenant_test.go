package service

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeClock substitutes the registry's clock and rewinds every bucket's
// refill anchor to the fake epoch so tests control elapsed time exactly.
func fakeClock(ts *Tenants) func(d time.Duration) {
	start := time.Unix(1_700_000_000, 0)
	now := start
	var mu sync.Mutex
	ts.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	for _, t := range ts.byName {
		t.last = start
	}
	return func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
}

func TestTokenBucketRefill(t *testing.T) {
	ts, err := NewTenants([]TenantConfig{{Key: "k", Name: "acme", RatePerSec: 2, Burst: 4}})
	if err != nil {
		t.Fatalf("NewTenants: %v", err)
	}
	advance := fakeClock(ts)
	acme := ts.byName["acme"]

	// The full burst is available up front, then the bucket runs dry.
	for i := 0; i < 4; i++ {
		if err := ts.Acquire(acme, 1); err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
	}
	err = ts.Acquire(acme, 1)
	var rle *RateLimitError
	if !errors.As(err, &rle) || rle.Reason != "rate" {
		t.Fatalf("dry bucket: err = %v, want a rate RateLimitError", err)
	}
	// 1 token at 2/s is 0.5s away; Retry-After rounds up to whole seconds.
	if rle.RetryAfter != time.Second {
		t.Errorf("RetryAfter = %v, want 1s", rle.RetryAfter)
	}

	// 1s at 2 tokens/s refills 2 submits, not more.
	advance(time.Second)
	for i := 0; i < 2; i++ {
		if err := ts.Acquire(acme, 1); err != nil {
			t.Fatalf("post-refill submit %d: %v", i, err)
		}
	}
	if err := ts.Acquire(acme, 1); err == nil {
		t.Fatal("third post-refill submit admitted — bucket refilled too much")
	}

	// A long idle period caps the refill at the burst.
	advance(time.Hour)
	for i := 0; i < 4; i++ {
		if err := ts.Acquire(acme, 1); err != nil {
			t.Fatalf("post-idle submit %d: %v", i, err)
		}
	}
	if err := ts.Acquire(acme, 1); err == nil {
		t.Fatal("burst cap not enforced after a long idle period")
	}
}

func TestBatchAcquireAtomic(t *testing.T) {
	ts, err := NewTenants([]TenantConfig{{Key: "k", Name: "acme", RatePerSec: 1, Burst: 3}})
	if err != nil {
		t.Fatalf("NewTenants: %v", err)
	}
	fakeClock(ts)
	acme := ts.byName["acme"]

	// 4 > burst of 3: the whole batch is refused and nothing is consumed.
	if err := ts.Acquire(acme, 4); err == nil {
		t.Fatal("oversized batch admitted")
	}
	if u := acme.Usage(); u.Jobs != 0 {
		t.Fatalf("refused batch still charged %d jobs", u.Jobs)
	}
	if err := ts.Acquire(acme, 3); err != nil {
		t.Fatalf("exact-burst batch refused: %v", err)
	}
	if u := acme.Usage(); u.Jobs != 3 {
		t.Fatalf("usage = %d jobs, want 3", u.Jobs)
	}
}

func TestQuotaBeforeRate(t *testing.T) {
	ts, err := NewTenants([]TenantConfig{
		{Key: "k", Name: "acme", RatePerSec: 1, Burst: 1, QuotaJobs: 1},
	})
	if err != nil {
		t.Fatalf("NewTenants: %v", err)
	}
	fakeClock(ts)
	acme := ts.byName["acme"]

	if err := ts.Acquire(acme, 1); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	// Both the bucket and the quota are now exhausted. Quota wins: the
	// client must see the long back-off, not a 1-second rate hint.
	err = ts.Acquire(acme, 1)
	var rle *RateLimitError
	if !errors.As(err, &rle) {
		t.Fatalf("err = %v, want RateLimitError", err)
	}
	if rle.Reason != "quota" || rle.RetryAfter != quotaRetryAfter {
		t.Errorf("got %s/%v, want quota/%v", rle.Reason, rle.RetryAfter, quotaRetryAfter)
	}
}

func TestSimsQuota(t *testing.T) {
	ts, err := NewTenants([]TenantConfig{{Key: "k", Name: "acme", QuotaSims: 1000}})
	if err != nil {
		t.Fatalf("NewTenants: %v", err)
	}
	acme := ts.byName["acme"]
	if err := ts.Acquire(acme, 1); err != nil {
		t.Fatalf("submit under sims quota: %v", err)
	}
	ts.AddSims("acme", 1000)
	err = ts.Acquire(acme, 1)
	var rle *RateLimitError
	if !errors.As(err, &rle) || rle.Reason != "quota" {
		t.Fatalf("over sims quota: err = %v, want a quota RateLimitError", err)
	}
	ts.AddSims("ghost", 50) // unknown names are ignored, not a panic
}

func TestAuthenticateAndKeyPrecedence(t *testing.T) {
	ts, err := NewTenants([]TenantConfig{
		{Key: "alpha-key", Name: "alpha"},
		{Key: "beta-key", Name: "beta"},
	})
	if err != nil {
		t.Fatalf("NewTenants: %v", err)
	}

	mk := func(bearer, xkey string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/v1/jobs", nil)
		if bearer != "" {
			r.Header.Set("Authorization", "Bearer "+bearer)
		}
		if xkey != "" {
			r.Header.Set("X-API-Key", xkey)
		}
		return r
	}

	if _, err := ts.Authenticate(mk("", "")); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("no key: err = %v, want ErrUnauthorized", err)
	}
	if _, err := ts.Authenticate(mk("bogus", "")); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("unknown key: err = %v, want ErrUnauthorized", err)
	}
	if got, err := ts.Authenticate(mk("alpha-key", "")); err != nil || got.Name() != "alpha" {
		t.Errorf("bearer auth: (%v, %v), want alpha", got.Name(), err)
	}
	if got, err := ts.Authenticate(mk("", "beta-key")); err != nil || got.Name() != "beta" {
		t.Errorf("X-API-Key auth: (%v, %v), want beta", got.Name(), err)
	}
	// Authorization: Bearer wins over X-API-Key when both are present.
	if got, err := ts.Authenticate(mk("alpha-key", "beta-key")); err != nil || got.Name() != "alpha" {
		t.Errorf("header precedence: (%v, %v), want alpha", got.Name(), err)
	}

	// Open access: a nil registry admits everything with a nil tenant, and
	// the nil tenant is charge-free.
	var open *Tenants
	tn, err := open.Authenticate(mk("", ""))
	if err != nil || tn != nil {
		t.Errorf("nil registry: (%v, %v), want (nil, nil)", tn, err)
	}
	if err := open.Acquire(nil, 100); err != nil {
		t.Errorf("nil registry Acquire: %v", err)
	}
	if tn.Name() != "" {
		t.Errorf("nil tenant name = %q, want empty", tn.Name())
	}
}

func TestNewTenantsValidation(t *testing.T) {
	for name, cfgs := range map[string][]TenantConfig{
		"missing key":    {{Name: "a"}},
		"missing name":   {{Key: "k"}},
		"negative rate":  {{Key: "k", Name: "a", RatePerSec: -1}},
		"negative quota": {{Key: "k", Name: "a", QuotaJobs: -1}},
		"duplicate key":  {{Key: "k", Name: "a"}, {Key: "k", Name: "b"}},
		"duplicate name": {{Key: "k1", Name: "a"}, {Key: "k2", Name: "a"}},
	} {
		if _, err := NewTenants(cfgs); err == nil {
			t.Errorf("%s: NewTenants accepted %+v", name, cfgs)
		}
	}

	// Burst defaults to ceil(rate), floored at 1.
	ts, err := NewTenants([]TenantConfig{
		{Key: "k1", Name: "slow", RatePerSec: 0.2},
		{Key: "k2", Name: "fast", RatePerSec: 2.5},
	})
	if err != nil {
		t.Fatalf("NewTenants: %v", err)
	}
	if got := ts.byName["slow"].cfg.Burst; got != 1 {
		t.Errorf("slow burst = %d, want 1", got)
	}
	if got := ts.byName["fast"].cfg.Burst; got != 3 {
		t.Errorf("fast burst = %d, want 3", got)
	}
}

func TestLoadTenants(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys.json")
	if err := os.WriteFile(path, []byte(
		`[{"key":"k1","name":"acme","rate_per_sec":5,"quota_jobs":100}]`), 0o600); err != nil {
		t.Fatal(err)
	}
	ts, err := LoadTenants(path)
	if err != nil {
		t.Fatalf("LoadTenants: %v", err)
	}
	if key, ok := ts.KeyFor("acme"); !ok || key != "k1" {
		t.Errorf("KeyFor(acme) = (%q, %v), want (k1, true)", key, ok)
	}
	if _, ok := ts.KeyFor("ghost"); ok {
		t.Error("KeyFor(ghost) = true, want false")
	}
	if _, err := LoadTenants(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("LoadTenants on an absent file succeeded")
	}
	if err := os.WriteFile(path, []byte("not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTenants(path); err == nil {
		t.Error("LoadTenants on malformed JSON succeeded")
	}
}

func TestUsagePersistenceHooks(t *testing.T) {
	ts, err := NewTenants([]TenantConfig{{Key: "k", Name: "acme"}})
	if err != nil {
		t.Fatalf("NewTenants: %v", err)
	}
	var seen []TenantUsage
	ts.OnUsage(func(name string, u TenantUsage) {
		if name != "acme" {
			t.Errorf("usage observer saw tenant %q", name)
		}
		seen = append(seen, u)
	})
	acme := ts.byName["acme"]
	if err := ts.Acquire(acme, 2); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	ts.AddSims("acme", 500)
	if len(seen) != 2 {
		t.Fatalf("observer fired %d times, want 2", len(seen))
	}
	if last := seen[len(seen)-1]; last.Jobs != 2 || last.Sims != 500 {
		t.Errorf("final usage = %+v, want {Jobs:2 Sims:500}", last)
	}

	// SetUsage restores recovered state wholesale (boot-time replay).
	ts.SetUsage("acme", TenantUsage{Jobs: 9, Sims: 900})
	if u := acme.Usage(); u.Jobs != 9 || u.Sims != 900 {
		t.Errorf("restored usage = %+v", u)
	}
	ts.SetUsage("ghost", TenantUsage{Jobs: 1}) // ignored, not a panic

	views := ts.Views()
	if v := views["acme"]; v.Jobs != 9 || v.Sims != 900 {
		t.Errorf("view = %+v, want Jobs 9 Sims 900", v)
	}
}
